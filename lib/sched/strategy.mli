(** Scheduling strategies for the deterministic scheduler.

    A strategy decides, at each step, which enabled thread runs next. All
    strategies are deterministic given their parameters, so any run can be
    reproduced exactly. *)

type t =
  | Round_robin
      (** Cycle through threads; switches only at yield points, so this is
          the gentlest interleaving. *)
  | Random of int
      (** Uniform choice among enabled threads, seeded. The workhorse for
          stress testing. *)
  | Pct of { seed : int; change_points : int }
      (** Probabilistic concurrency testing (Burckhardt et al.): random
          thread priorities, lowered at [change_points] random steps.
          Finds bugs of small preemption depth with high probability. *)
  | Scripted of { prefix : int array; tail_seed : int option }
      (** Follow [prefix] exactly (each entry must be enabled at its step),
          then fall back to first-enabled ([tail_seed = None]) or seeded
          random. Used for replay and by the exhaustive explorer. *)
  | Handicap of { seed : int; victim : int; period : int }
      (** Seeded-random with a duty-cycle stall: thread [victim] runs
          normally for [period] steps, then is frozen for [period] steps,
          repeatedly — so the freeze can catch it mid-operation (e.g.
          holding a lock). The experiment that separates lock-free
          structures (others progress) from lock-based ones (a stalled
          lock holder stalls the world). *)

type state

val start : t -> expected_steps:int -> state

val choose : state -> step:int -> enabled:int -> last:int -> int
(** [choose st ~step ~enabled ~last] picks a thread id from the non-empty
    [enabled] bitmask; [last] is the previously run thread (-1 at the first
    step). *)

exception Script_diverged of { step : int; wanted : int; enabled : int }
(** Raised by [Scripted] when the recorded decision is no longer enabled —
    the program under test is not deterministic between runs. *)

val describe : t -> string
(** Compact one-token description including every parameter needed for
    exact replay, e.g. ["random:17"] or ["handicap:3:1:50"]. Embedded in
    failure payloads so an error message alone reproduces the run.
    [Scripted] strategies are described but cannot be parsed back. *)

val of_string : string -> t option
(** Inverse of {!describe} for the replayable strategies ([Round_robin],
    [Random], [Pct], [Handicap]); [None] for anything else. *)
