(** Deterministic cooperative scheduler built on OCaml effects.

    Simulated threads are ordinary closures that call {!point} at every
    shared-memory operation (the atomics layer does this automatically).
    Between two yield points a thread runs atomically, so each primitive
    memory operation is indivisible with respect to other simulated
    threads — exactly the granularity at which the paper's algorithms must
    be correct.

    The same algorithm code runs unchanged under real domains: outside a
    simulation {!point} is a no-op.

    A scheduler run is single-domain and must not be nested. *)

exception Step_limit_exceeded of int
(** Raised (inside [run]) when the run exceeds its step budget — the
    livelock detector for randomized checking. *)

exception
  Thread_failure of {
    tid : int;
    exn : exn;
    trace : Trace.t option;
    repro : string;
  }
(** Raised by [run] when a simulated thread raised; carries the trace when
    recording was on and a replay token ([strategy=… max_steps=…], with the
    strategy rendered by {!Strategy.describe}) so the failure is
    reproducible from its error message alone. A printer including the
    token is registered with [Printexc]. *)

type outcome = {
  steps : int;  (** total scheduling decisions taken *)
  per_thread_steps : int array;
  trace : Trace.t option;  (** present iff [record] was true *)
  crashed : int list;  (** threads killed by [inject_crash], in crash order *)
}

val run :
  ?max_steps:int ->
  ?record:bool ->
  ?inject_crash:(tid:int -> step:int -> bool) ->
  Strategy.t ->
  (unit -> unit) ->
  outcome
(** [run strategy main] executes [main] as thread 0, scheduling it and any
    threads it {!spawn}s until all have finished. [max_steps] defaults to
    10 million; [record] (default [false]) keeps the full trace.

    [inject_crash] is the fault-injection hook: it is consulted each time
    the scheduler is about to resume a thread parked at a yield point
    (including a thread's very first activation), and answering [true]
    permanently fails that thread there — it never runs again and no
    cleanup code executes, modelling a thread crash ({!kill}'s semantics,
    but driven at an exact {!point}). Crashed threads count as finished
    for {!join} and appear in [outcome.crashed]. *)

val spawn : ?name:string -> (unit -> unit) -> int
(** Create a new simulated thread; returns its id. Must be called from
    inside a run. The spawner keeps running (spawn is not a yield point). *)

exception Stuck of { unfinished : int list }
(** Raised by [run] when no thread is runnable but some have not finished
    (a join cycle — cannot happen with well-formed fork/join use). *)

val join : int list -> unit
(** Block the calling simulated thread until all the given threads have
    finished. Must be called from inside a run. *)

val kill : int -> unit
(** Permanently fail a simulated thread: it is never scheduled again and
    its pending work simply vanishes — the paper's footnote 3 scenario
    ("it is possible for garbage to exist and never be freed in the case
    where a thread fails permanently"). Joins waiting on it are released
    (the thread is finished, albeit abnormally). Must be called from
    inside a run; killing the current thread is not supported. *)

val point : unit -> unit
(** Yield point. Inside a simulation: hand control to the scheduler.
    Outside: no-op. *)

val active : unit -> bool
(** Whether the calling code is executing inside a simulation run. *)

val tid : unit -> int
(** Current simulated thread id; 0 outside a simulation. *)

val steps_so_far : unit -> int
(** Scheduling decisions taken so far in the current run; usable as a
    simulated clock by harness code. 0 outside a simulation. *)

val name_of : int -> string
(** The thread's name in the current run ("main", a [spawn ~name], or the
    default ["t<id>"]); falls back to ["t<id>"] outside a simulation or
    for an unknown id. For diagnostics (sanitizer witnesses). *)

val crashed_so_far : unit -> int list
(** Threads crash-injected so far in the current run, in crash order —
    the survivors' view of who has failed permanently, so in-run code
    (helping/adoption protocols) can take over a dead peer's orphaned
    state without waiting for the run to end. [] outside a simulation. *)
