exception Step_limit_exceeded of int

exception
  Thread_failure of {
    tid : int;
    exn : exn;
    trace : Trace.t option;
    repro : string;
  }

exception Stuck of { unfinished : int list }

let () =
  Printexc.register_printer (function
    | Thread_failure { tid; exn; repro; _ } ->
        Some
          (Printf.sprintf "Sched.Thread_failure(tid=%d, %s) [replay: %s]" tid
             (Printexc.to_string exn) repro)
    | _ -> None)

type outcome = {
  steps : int;
  per_thread_steps : int array;
  trace : Trace.t option;
  crashed : int list;
}

type _ Effect.t += Yield : unit Effect.t
type _ Effect.t += Spawn : (string * (unit -> unit)) -> int Effect.t
type _ Effect.t += Join : int list -> unit Effect.t

type thread_state =
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Waiting of int list * (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

type thread = { id : int; name : string; mutable state : thread_state }

type sched = {
  mutable threads : thread array;
  mutable n_threads : int;
  mutable current : int;
  mutable steps : int;
  mutable per_thread : int array;
  mutable failure : (int * exn) option;
  mutable aborting : bool;
  record : bool;
  mutable trace_buf : Trace.step list; (* reversed *)
  mutable crashed : int list; (* reversed crash order *)
  max_steps : int;
  strategy : Strategy.state;
}

(* The scheduler is single-domain; a plain global distinguishes "inside a
   simulation" from real-parallel execution because real domains never call
   [run]. Spawning domains from inside a simulation is not supported. *)
let current_sched : sched option ref = ref None

let active () = !current_sched <> None
let tid () = match !current_sched with None -> 0 | Some s -> s.current
let steps_so_far () = match !current_sched with None -> 0 | Some s -> s.steps

let name_of tid =
  match !current_sched with
  | Some s when tid >= 0 && tid < s.n_threads -> s.threads.(tid).name
  | _ -> Printf.sprintf "t%d" tid

let crashed_so_far () =
  match !current_sched with None -> [] | Some s -> List.rev s.crashed

let point () = if !current_sched <> None then Effect.perform Yield

let spawn ?name body =
  if !current_sched = None then
    invalid_arg "Sched.spawn: not inside a simulation run";
  let name = match name with Some n -> n | None -> "" in
  Effect.perform (Spawn (name, body))

let join tids =
  if !current_sched = None then
    invalid_arg "Sched.join: not inside a simulation run";
  Effect.perform (Join tids)

let kill tid =
  match !current_sched with
  | None -> invalid_arg "Sched.kill: not inside a simulation run"
  | Some s ->
      if tid = s.current then invalid_arg "Sched.kill: cannot kill self";
      if tid < 0 || tid >= s.n_threads then
        invalid_arg "Sched.kill: no such thread";
      let th = s.threads.(tid) in
      (match th.state with
      | Suspended _ | Waiting _ | Not_started _ ->
          (* Drop the continuation without unwinding: a crashed thread
             runs no cleanup, which is the point of the model. *)
          th.state <- Finished
      | Running | Finished -> ())

let add_thread s name body =
  let id = s.n_threads in
  if id > 61 then invalid_arg "Sched: more than 62 threads";
  if id >= Array.length s.threads then begin
    let nt = Array.make (2 * Array.length s.threads) s.threads.(0) in
    Array.blit s.threads 0 nt 0 (Array.length s.threads);
    s.threads <- nt;
    let np = Array.make (2 * Array.length s.per_thread) 0 in
    Array.blit s.per_thread 0 np 0 (Array.length s.per_thread);
    s.per_thread <- np
  end;
  let name = if name = "" then Printf.sprintf "t%d" id else name in
  s.threads.(id) <- { id; name; state = Not_started body };
  s.n_threads <- id + 1;
  id

let all_finished s tids =
  List.for_all (fun t -> t < s.n_threads && s.threads.(t).state = Finished) tids

let enabled_mask s =
  let mask = ref 0 in
  for i = 0 to s.n_threads - 1 do
    match s.threads.(i).state with
    | Not_started _ | Suspended _ -> mask := !mask lor (1 lsl i)
    | Waiting (tids, _) -> if all_finished s tids then mask := !mask lor (1 lsl i)
    | Running | Finished -> ()
  done;
  !mask

(* Run one thread until it yields, finishes, or fails. *)
let step_thread s th =
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> th.state <- Finished);
      exnc =
        (fun exn ->
          th.state <- Finished;
          if (not s.aborting) && s.failure = None then
            s.failure <- Some (th.id, exn));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if s.aborting then Effect.Deep.continue k ()
                  else th.state <- Suspended k)
          | Spawn (name, body) ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let id = add_thread s name body in
                  Effect.Deep.continue k id)
          | Join tids ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if s.aborting || all_finished s tids then
                    Effect.Deep.continue k ()
                  else th.state <- Waiting (tids, k))
          | _ -> None);
    }
  in
  match th.state with
  | Not_started body ->
      th.state <- Running;
      Effect.Deep.match_with body () handler
  | Suspended k | Waiting (_, k) ->
      th.state <- Running;
      Effect.Deep.continue k ()
  | Running | Finished -> assert false

(* Unwind any still-suspended fibers so their resources are released; their
   exceptions are deliberately not recorded. *)
let cleanup s =
  s.aborting <- true;
  for i = 0 to s.n_threads - 1 do
    let th = s.threads.(i) in
    match th.state with
    | Suspended k | Waiting (_, k) -> (
        th.state <- Finished;
        try Effect.Deep.discontinue k Exit with _ -> ())
    | Not_started _ -> th.state <- Finished
    | Running | Finished -> ()
  done

let run ?(max_steps = 10_000_000) ?(record = false)
    ?(inject_crash = fun ~tid:_ ~step:_ -> false) strategy main =
  if active () then invalid_arg "Sched.run: nested simulation";
  let repro =
    Printf.sprintf "strategy=%s max_steps=%d" (Strategy.describe strategy)
      max_steps
  in
  let s =
    {
      threads = Array.make 8 { id = 0; name = "main"; state = Finished };
      n_threads = 0;
      current = -1;
      steps = 0;
      per_thread = Array.make 8 0;
      failure = None;
      aborting = false;
      record;
      trace_buf = [];
      crashed = [];
      max_steps;
      strategy = Strategy.start strategy ~expected_steps:max_steps;
    }
  in
  ignore (add_thread s "main" main);
  current_sched := Some s;
  let result =
    try
      let rec loop last =
        if s.failure <> None then ()
        else begin
          let enabled = enabled_mask s in
          if enabled = 0 then begin
            let unfinished = ref [] in
            for i = s.n_threads - 1 downto 0 do
              if s.threads.(i).state <> Finished then
                unfinished := i :: !unfinished
            done;
            if !unfinished <> [] then raise (Stuck { unfinished = !unfinished })
          end
          else begin
            if s.steps >= s.max_steps then raise (Step_limit_exceeded s.steps);
            let choice =
              Strategy.choose s.strategy ~step:s.steps ~enabled ~last
            in
            if s.record then
              s.trace_buf <- { Trace.tid = choice; enabled } :: s.trace_buf;
            s.steps <- s.steps + 1;
            s.per_thread.(choice) <- s.per_thread.(choice) + 1;
            let th = s.threads.(choice) in
            let crash_here =
              (match th.state with
              | Not_started _ | Suspended _ -> true
              | Waiting _ | Running | Finished -> false)
              && inject_crash ~tid:choice ~step:(s.steps - 1)
            in
            if crash_here then begin
              (* Crash injection: the thread is parked at a yield point and
                 simply never runs again — no unwinding, no cleanup, exactly
                 like [kill]. *)
              th.state <- Finished;
              s.crashed <- choice :: s.crashed
            end
            else begin
              s.current <- choice;
              step_thread s th;
              s.current <- -1
            end;
            loop choice
          end
        end
      in
      loop (-1);
      Ok ()
    with exn ->
      let bt = Printexc.get_raw_backtrace () in
      Error (exn, bt)
  in
  cleanup s;
  current_sched := None;
  let trace =
    if record then Some (Array.of_list (List.rev s.trace_buf)) else None
  in
  match result with
  | Error (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | Ok () -> (
      match s.failure with
      | Some (tid, exn) -> raise (Thread_failure { tid; exn; trace; repro })
      | None ->
          {
            steps = s.steps;
            per_thread_steps = Array.sub s.per_thread 0 s.n_threads;
            trace;
            crashed = List.rev s.crashed;
          })
