type t =
  | Round_robin
  | Random of int
  | Pct of { seed : int; change_points : int }
  | Scripted of { prefix : int array; tail_seed : int option }
  | Handicap of { seed : int; victim : int; period : int }

exception Script_diverged of { step : int; wanted : int; enabled : int }

(* One-token descriptions, parseable back by [of_string] so a failure
   message alone is enough to reproduce a randomized run. [Scripted] is
   the exception: its prefix can be arbitrarily long, so it is described
   but not parseable. *)
let describe = function
  | Round_robin -> "rr"
  | Random seed -> Printf.sprintf "random:%d" seed
  | Pct { seed; change_points } -> Printf.sprintf "pct:%d:%d" seed change_points
  | Scripted { prefix; tail_seed } ->
      Printf.sprintf "scripted:%d%s" (Array.length prefix)
        (match tail_seed with None -> "" | Some s -> Printf.sprintf ":%d" s)
  | Handicap { seed; victim; period } ->
      Printf.sprintf "handicap:%d:%d:%d" seed victim period

let of_string s =
  match String.split_on_char ':' s with
  | [ "rr" ] -> Some Round_robin
  | [ "random"; seed ] -> Option.map (fun s -> Random s) (int_of_string_opt seed)
  | [ "pct"; seed; cp ] -> (
      match (int_of_string_opt seed, int_of_string_opt cp) with
      | Some seed, Some change_points -> Some (Pct { seed; change_points })
      | _ -> None)
  | [ "handicap"; seed; victim; period ] -> (
      match
        (int_of_string_opt seed, int_of_string_opt victim,
         int_of_string_opt period)
      with
      | Some seed, Some victim, Some period ->
          Some (Handicap { seed; victim; period })
      | _ -> None)
  | _ -> None

type state =
  | Rr_state
  | Random_state of Lfrc_util.Rng.t
  | Pct_state of {
      rng : Lfrc_util.Rng.t;
      priorities : float array; (* lower value = runs first *)
      change_steps : int array; (* sorted step indices where priority drops *)
    }
  | Scripted_state of { prefix : int array; tail : Lfrc_util.Rng.t option }
  | Handicap_state of { rng : Lfrc_util.Rng.t; victim : int; period : int }

let max_threads = 62

let bits_of enabled =
  let rec go i acc =
    if i > max_threads then List.rev acc
    else go (i + 1) (if enabled land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 0 []

let start t ~expected_steps =
  match t with
  | Round_robin -> Rr_state
  | Random seed -> Random_state (Lfrc_util.Rng.create seed)
  | Pct { seed; change_points } ->
      let rng = Lfrc_util.Rng.create seed in
      let priorities =
        Array.init max_threads (fun _ -> Lfrc_util.Rng.float rng)
      in
      let change_steps =
        Array.init change_points (fun _ ->
            Lfrc_util.Rng.int rng (max expected_steps 1))
      in
      Array.sort compare change_steps;
      Pct_state { rng; priorities; change_steps }
  | Scripted { prefix; tail_seed } ->
      Scripted_state
        { prefix; tail = Option.map Lfrc_util.Rng.create tail_seed }
  | Handicap { seed; victim; period } ->
      Handicap_state { rng = Lfrc_util.Rng.create seed; victim; period }

let first_enabled enabled =
  let rec go i =
    if enabled land (1 lsl i) <> 0 then i
    else if i >= max_threads then invalid_arg "Strategy: empty enabled set"
    else go (i + 1)
  in
  go 0

let choose st ~step ~enabled ~last =
  match st with
  | Rr_state ->
      (* Next enabled thread after [last], wrapping. *)
      let rec go i =
        let i = if i > max_threads then 0 else i in
        if enabled land (1 lsl i) <> 0 then i else go (i + 1)
      in
      go (last + 1)
  | Random_state rng ->
      let ids = bits_of enabled in
      List.nth ids (Lfrc_util.Rng.int rng (List.length ids))
  | Pct_state { rng; priorities; change_steps } ->
      (* At a change point, demote the currently highest-priority enabled
         thread to the back of the priority order. *)
      if Array.exists (fun s -> s = step) change_steps then begin
        let ids = bits_of enabled in
        let best =
          List.fold_left
            (fun acc i ->
              if priorities.(i) < priorities.(acc) then i else acc)
            (List.hd ids) ids
        in
        priorities.(best) <- 1.0 +. Lfrc_util.Rng.float rng
      end;
      let ids = bits_of enabled in
      List.fold_left
        (fun acc i -> if priorities.(i) < priorities.(acc) then i else acc)
        (List.hd ids) ids
  | Handicap_state { rng; victim; period } ->
      (* Duty-cycle stall: the victim runs normally for [period] steps,
         then freezes for [period] steps, repeatedly — so it can be
         caught mid-operation (e.g. holding a lock) when the freeze
         begins. If it is the only enabled thread it runs regardless. *)
      let frozen = step mod (2 * period) >= period in
      let eligible =
        if frozen && enabled <> 1 lsl victim then
          enabled land lnot (1 lsl victim)
        else enabled
      in
      let ids = bits_of eligible in
      List.nth ids (Lfrc_util.Rng.int rng (List.length ids))
  | Scripted_state { prefix; tail } ->
      if step < Array.length prefix then begin
        let wanted = prefix.(step) in
        if enabled land (1 lsl wanted) = 0 then
          raise (Script_diverged { step; wanted; enabled });
        wanted
      end
      else begin
        match tail with
        | None -> first_enabled enabled
        | Some rng ->
            let ids = bits_of enabled in
            List.nth ids (Lfrc_util.Rng.int rng (List.length ids))
      end
