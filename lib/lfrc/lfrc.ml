module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Layout = Lfrc_simmem.Layout
module Dcas = Lfrc_atomics.Dcas
module Metrics = Lfrc_obs.Metrics
module Tracer = Lfrc_obs.Tracer
module Lineage = Lfrc_obs.Lineage
module Profile = Lfrc_obs.Profile
module Blame = Lfrc_obs.Blame
module Shadow = Lfrc_sanitize.Shadow

type ptr = Heap.ptr

let null = Heap.null

exception Symbolic_bypass of string

(* Under a symbolic (analysis) environment no real LFRC operation may run:
   structure code is being recorded through an {!Ops_intf.OPS} instance,
   and a direct call here means the code bypassed its functor argument.
   Raising identifies the offending operation to the analyser. *)
let guard env op = if Env.symbolic env then raise (Symbolic_bypass op)

(* Observability shims. Every public operation counts itself under an
   [lfrc.*] series and, when tracing/profiling/lineage is on, opens a span
   that closes even on the exceptional (OOM) paths. The span name doubles
   as the profiler call site and the lineage originating-op context, so a
   count transition or a failed DCAS underneath always knows which
   operation it belongs to. With observability off each shim is a single
   branch — the policy {!Env.create} documents. *)

let retry env counter =
  Metrics.incr (Env.metrics env) counter;
  Tracer.emit (Env.tracer env) Retry counter;
  Profile.op_retry (Env.profile env)

(* The hot retry loops hoist the obs-enabled check out of the loop: the
   retry *count* is staged in the loop's existing burst accumulator and
   recorded once after the loop ([Metrics.add] — totals identical to the
   per-retry [incr] they replace), and only the per-event sinks (tracer
   timeline, profiler frame charge) still run per retry — behind a single
   branch computed before the first attempt. With observability off a
   retry costs nothing at all. *)
let retry_slow env counter =
  Tracer.emit (Env.tracer env) Retry counter;
  Profile.op_retry (Env.profile env)

let per_retry_obs env =
  Tracer.enabled (Env.tracer env) || Profile.enabled (Env.profile env)

let record_retries env counter burst =
  if burst > 0 then Metrics.add (Env.metrics env) counter burst

let span env name f =
  Metrics.incr (Env.metrics env) name;
  let tr = Env.tracer env
  and pr = Env.profile env
  and ln = Env.lineage env
  and bl = Env.blame env in
  if
    not
      (Tracer.enabled tr || Profile.enabled pr || Lineage.enabled ln
      || Blame.enabled bl)
  then f ()
  else begin
    Tracer.emit tr Begin name;
    Profile.op_begin pr name;
    Lineage.op_begin ln name;
    Blame.op_begin bl name;
    Fun.protect
      ~finally:(fun () ->
        Blame.op_end bl;
        Lineage.op_end ln;
        Profile.op_end pr;
        Tracer.emit tr End name)
      f
  end

(* add_to_rc (Figure 2, lines 16..20). The caller holds a counted
   reference, so the object cannot be freed while the loop runs. *)
let add_to_rc env p v =
  guard env "add_to_rc";
  let rc = Heap.rc_cell (Env.heap env) p in
  let d = Env.dcas env in
  Blame.bind_owner (Env.blame env) ~cell:(Cell.id rc) ~addr:p;
  let slow = per_retry_obs env in
  let rec go burst =
    let oldrc = Dcas.read d rc in
    if Dcas.cas d rc oldrc (oldrc + v) then begin
      record_retries env "lfrc.rc_retry" burst;
      (* Contended transitions record their retry burst; the quiet common
         case stays out of the histogram. *)
      if burst > 0 then
        Metrics.observe (Env.metrics env) "lfrc.rc_retry"
          (float_of_int burst);
      Lineage.record_rc (Env.lineage env) ~addr:p ~old_rc:oldrc ~delta:v ();
      oldrc
    end
    else begin
      if slow then retry_slow env "lfrc.rc_retry";
      go (burst + 1)
    end
  in
  go 0

let alloc env layout =
  guard env "alloc";
  span env "lfrc.alloc" @@ fun () -> Heap.alloc (Env.heap env) layout

(* Allocation with graceful OOM: a simulated allocation failure surfaces as
   a result before any count or cell is touched, so the caller can abort
   its operation with the heap intact. *)
let try_alloc env layout =
  guard env "try_alloc";
  span env "lfrc.alloc" @@ fun () ->
  match Heap.alloc (Env.heap env) layout with
  | p -> Ok p
  | exception Heap.Simulated_oom ->
      Metrics.incr (Env.metrics env) "lfrc.alloc_oom";
      Tracer.emit (Env.tracer env) Fault "oom";
      Error `Out_of_memory

(* Destroying the last pointer to an object frees it and destroys the
   pointers it contains. Three policies; all call [release_one] to drop a
   single count and report whether the object died. *)

(* The sanitizer learns that an object entered its destruction epoch at the
   zero-detect itself — atomically with the winning decrement, before any
   destroy-path read of the dead object's slots. *)
let release_one env p =
  let died = add_to_rc env p (-1) = 1 in
  if died then Shadow.note_dying (Env.sanitizer env) p;
  died

(* [counter] separates eager frees (destroy paths) from deferred-queue
   frees, the paper-§7 distinction the metrics surface. *)
let free_obj env counter p =
  Metrics.incr (Env.metrics env) counter;
  Heap.free (Env.heap env) p

(* --- wait-free weighted rc (Blelloch–Wei split counts) ---

   With [Env.wf_on], the count word holds the object's *total weight*:
   the sum over every live reference of the weight that reference
   carries. Heap slots carry weight in [Env.wf_slot_*] (absent = 1);
   each thread's locals pool theirs in its pouch [Env.wf_pool_*]
   (addr -> (w, n): n covered refs sharing w pooled weight, w >= n;
   untracked refs carry implicit weight 1). Count adjustments are single
   [Dcas.fetch_add]s — no retry loop anywhere on the rc path — and most
   copies/destroys move weight between carriers without touching the
   count at all. The Figure-2 DCAS survives only as [load]'s fallback on
   an exhausted slot. The weight invariant, fallback conditions and
   crash-recovery adoption are argued in DESIGN.md §17. *)

(* Drop one reference to [p], whose pending drop the caller registered in
   the destroy registry. Fast path: the ref was pool-covered alongside
   others — uncover it, weight stays pooled, no heap traffic. Slow path:
   flush the ref's whole carried weight with one fetch-add. Zero-detect
   is exact: only the add that returns prev = w observed every other
   carrier's weight already gone. Returns whether [p] died (the caller
   tears it down; the registration stays until then). *)
let wf_release env p =
  if Env.wf_pool_try_drop_shared env ~addr:p then begin
    Metrics.incr (Env.metrics env) "lfrc.weight_absorb";
    false
  end
  else begin
    let w = Env.wf_pool_weight env ~addr:p in
    let rc = Heap.rc_cell (Env.heap env) p in
    Blame.bind_owner (Env.blame env) ~cell:(Cell.id rc) ~addr:p;
    let prev = Dcas.fetch_add (Env.dcas env) rc (-w) in
    (* No yield since the add landed: removing the pouch entry is atomic
       with it, so a crashed thread can never double-spend its weight
       (a crash at the add's own yield point means nothing happened and
       the pouch is intact). *)
    Env.wf_pool_remove env ~addr:p;
    Metrics.incr (Env.metrics env) "lfrc.weight_release";
    Lineage.record_rc (Env.lineage env) ~addr:p ~old_rc:prev ~delta:(-w) ();
    let died = prev = w in
    if died then Shadow.note_dying (Env.sanitizer env) p;
    died
  end

(* Tear down a dead object (count at zero, registered by the caller):
   same slot-nulling discipline as the eager work-list destroy, except
   each claimed child converts its slot weight into a pouch entry in the
   same atomic step, so the weight ledger never dangles. *)
let wf_teardown_registered env p =
  let heap = Env.heap env in
  let d = Env.dcas env in
  let work = ref [ p ] in
  while !work <> [] do
    match !work with
    | [] -> ()
    | q :: rest ->
        work := rest;
        let n = Heap.n_ptr_slots heap q in
        for i = 0 to n - 1 do
          let cell = Heap.ptr_cell heap q i in
          let child = Dcas.read d cell in
          if child <> null then begin
            Env.begin_destroy env child;
            let ws = Env.wf_slot_take env ~cell in
            Env.wf_pool_add env ~addr:child ~w:ws ~n:1;
            Cell.set cell null;
            if wf_release env child then work := child :: !work
            else Env.end_destroy env child
          end
        done;
        free_obj env "lfrc.frees" q;
        Env.end_destroy env q
  done

(* --- deferred-rc coalescing ---

   With [Env.rc_epoch > 0], the ±1 count traffic from store/copy/cas/dcas
   increments and from every destroy is parked in per-thread buffers
   ({!Env.rc_park}) instead of CASing the heap count, and a global flush
   applies the per-address *net* deltas — one CAS per address instead of
   one per adjustment. [load]'s DCAS stays eager: it is the safety
   mechanism (increment-while-checking-the-pointer), not an accounting
   convenience.

   Why coalescing preserves the weak invariant: a parked +1 only ever
   under-counts (heap rc may be below the true reference count, never
   above), and a parked -1 leaves the heap rc conservatively high — an
   object is freed only by the flush, after its net delta lands at zero
   *and* a same-instant re-check shows no adjustment was parked while the
   CAS was in flight. Since in deferred mode no eager decrement exists,
   nothing else can free on a transient zero. DESIGN.md §12 carries the
   full argument. *)

let flush_rc env =
  if not (Env.rc_deferred env && Env.rc_try_begin_flush env) then 0
  else begin
    let metrics = Env.metrics env in
    let heap = Env.heap env in
    let d = Env.dcas env in
    let ln = Env.lineage env in
    let freed = ref 0 in
    Fun.protect ~finally:(fun () -> Env.rc_end_flush env) @@ fun () ->
    Metrics.incr metrics "lfrc.rc_flush";
    (* Crash safety: every delta this flush is working on lives in the
       environment's applying table (staged atomically out of the buffers),
       never only in this function's locals. A CAS success unstages its
       delta in the same atomic step; a crash at any yield point leaves the
       leftovers staged, where they stay anchored and a recovery pass
       re-parks them for the next flush. *)
    let rec apply addr =
      if addr <> null then begin
        let rc = Heap.rc_cell heap addr in
        Blame.bind_owner (Env.blame env) ~cell:(Cell.id rc) ~addr;
        let oldrc = Dcas.read d rc in
        (* Fold in anything parked up to this instant so the CAS below
           applies the complete net and a success at zero means zero
           adjustments remain anywhere; the net stays staged until the CAS
           lands. *)
        let v = Env.rc_restage env ~addr in
        if v <> 0 then begin
          Metrics.incr metrics "lfrc.rc_flush_cas";
          if Dcas.cas d rc oldrc (oldrc + v) then begin
            (* No yield since the CAS: unstaging is atomic with it, so a
               crashed flush can never re-apply a landed delta. *)
            Env.rc_apply_done env ~addr;
            Lineage.record_rc ln ~op:"lfrc.flush" ~addr ~old_rc:oldrc ~delta:v
              ();
            Lineage.record ln ~op:"lfrc.flush" ~addr (Lineage.Flush { net = v });
            if oldrc + v = 0 then begin
              (* Still atomic with the CAS: a delta parked while it was in
                 flight (a late +1 from a racing store) resurrects the
                 object instead of freeing it. *)
              let late = Env.rc_absorb env ~addr in
              if late <> 0 then ignore (Env.rc_park env ~addr ~delta:late)
              else begin
                Shadow.note_dying (Env.sanitizer env) addr;
                Env.begin_destroy env addr;
                let n = Heap.n_ptr_slots heap addr in
                for i = 0 to n - 1 do
                  let cell = Heap.ptr_cell heap addr i in
                  let child = Dcas.read d cell in
                  if child <> null then begin
                    (* Park the child's decrement and null the slot in one
                       atomic step: the remaining non-null slots of this
                       dead parent are exactly the drops not yet committed,
                       so an adopter resuming a crashed flush never
                       double-drops. *)
                    Lineage.record ln ~op:"lfrc.flush" ~addr:child
                      Lineage.Defer_dec;
                    ignore (Env.rc_park env ~addr:child ~delta:(-1));
                    Cell.set cell null
                  end
                done;
                free_obj env "lfrc.frees" addr;
                incr freed;
                Env.end_destroy env addr
              end
            end
          end
          else begin
            retry env "lfrc.rc_retry";
            apply addr
          end
        end
      end
    in
    let rec rounds () =
      ignore (Env.rc_drain_into_applying env);
      let work = Env.rc_applying_snapshot env in
      if work <> [] then begin
        (* Positive nets land before negative ones so a count only dips to
           zero once its pending increments are in; address order breaks
           ties for deterministic replay. *)
        let work =
          List.sort
            (fun (a1, v1) (a2, v2) ->
              if v1 <> v2 then compare v2 v1 else compare a1 a2)
            work
        in
        List.iter (fun (addr, _) -> apply addr) work;
        rounds ()
      end
    in
    rounds ();
    !freed
  end

let defer_rc env p delta =
  if p <> null then begin
    let metrics = Env.metrics env in
    Metrics.incr metrics (if delta > 0 then "lfrc.defer_inc" else "lfrc.defer_dec");
    Lineage.record (Env.lineage env) ~addr:p
      (if delta > 0 then Lineage.Defer_inc else Lineage.Defer_dec);
    let parked = Env.rc_park env ~addr:p ~delta in
    Metrics.set_gauge metrics "lfrc.rc_parked" parked;
    if parked >= Env.rc_epoch env then ignore (flush_rc env)
  end

(* One increment of [p]'s count, made ahead of a publishing CAS — eager
   CAS loop normally, parked when deferred-rc is on. The +1 exists
   before any heap-visible pointer justifies it, so it is recorded in the
   publication registry in the same atomic step it lands (eager: no yield
   after add_to_rc's winning CAS; deferred: before the flush trigger can
   yield). The caller ends the publication once the CAS resolves — on
   success atomically with it, on failure atomically with registering the
   compensating destroy — so no crash can separate the speculative count
   from its record. *)
let rc_incr_for_publish env p =
  if p <> null then begin
    if Env.rc_deferred env then begin
      let metrics = Env.metrics env in
      Metrics.incr metrics "lfrc.defer_inc";
      Lineage.record (Env.lineage env) ~addr:p Lineage.Defer_inc;
      let parked = Env.rc_park env ~addr:p ~delta:1 in
      Env.begin_publish env p;
      Metrics.set_gauge metrics "lfrc.rc_parked" parked;
      if parked >= Env.rc_epoch env then ignore (flush_rc env)
    end
    else begin
      ignore (add_to_rc env p 1);
      Env.begin_publish env p
    end
  end

(* From the moment a destroy is committed to dropping a reference until the
   object is freed (or handed to the deferred queue), that reference exists
   only in OCaml locals — invisible to the heap. [Env.begin_destroy]
   republishes the object for the post-mortem fault auditor covering that
   whole span. Registry calls are mutex-only (no yield points), so no
   simulated crash can separate a reference from its registration. *)

(* Once an object's count reaches zero it is dead: only its destroyer ever
   reads its pointer slots again. All destroy paths therefore null each
   slot in the same atomic step that commits the child's drop (registry
   entry, parked delta, or work-list push) — so a dead parent's remaining
   non-null slots are exactly the drops not yet committed, and an adopter
   resuming a crashed destroy never double-drops a child. *)

(* The [_registered] variants assume [p]'s pending drop is already in the
   destroy registry (placed by the caller, atomically with the CAS that
   committed the drop) and consume that registration. The multi-drop sites
   (DCAS success drops two references) need this: both drops are registered
   atomically with the DCAS, so the second stays anchored while the first
   cascades. *)

(* Figure 2, lines 13..15: recursive destroy, faithful to the paper. *)
let rec destroy_recursive_registered env p =
  if release_one env p then begin
    let heap = Env.heap env in
    let d = Env.dcas env in
    let n = Heap.n_ptr_slots heap p in
    for i = 0 to n - 1 do
      let cell = Heap.ptr_cell heap p i in
      let child = Dcas.read d cell in
      if child <> null then begin
        Env.begin_destroy env child;
        Cell.set cell null;
        destroy_recursive_registered env child
      end
    done;
    free_obj env "lfrc.frees" p
  end;
  Env.end_destroy env p

let destroy_recursive env p =
  if p <> null then begin
    Env.begin_destroy env p;
    destroy_recursive_registered env p
  end

(* Same semantics with an explicit work list: survives arbitrarily long
   chains of dead objects. *)
let destroy_iterative_registered env p =
  if not (release_one env p) then Env.end_destroy env p
  else begin
    let heap = Env.heap env in
    let d = Env.dcas env in
    let work = ref [ p ] in
    while !work <> [] do
      match !work with
      | [] -> ()
      | q :: rest ->
          work := rest;
          let n = Heap.n_ptr_slots heap q in
          for i = 0 to n - 1 do
            let cell = Heap.ptr_cell heap q i in
            let child = Dcas.read d cell in
            if child <> null then begin
              (* A dead child outlives its parent's registration (the
                 parent is freed first), so it gets its own — placed, with
                 the slot nulling, atomically before the drop. *)
              Env.begin_destroy env child;
              Cell.set cell null;
              if release_one env child then work := child :: !work
              else Env.end_destroy env child
            end
          done;
          free_obj env "lfrc.frees" q;
          Env.end_destroy env q
    done
  end

let destroy_iterative env p =
  if p <> null then begin
    Env.begin_destroy env p;
    destroy_iterative_registered env p
  end

(* Deferred policy: dead objects go to the environment's queue; each later
   LFRC operation frees a bounded number ([pump]), so no single operation
   pays for a long chain (paper §7, incremental collection). *)
let defer_dead env p =
  Lineage.record (Env.lineage env) ~addr:p Lineage.Defer;
  Env.defer env p

let pump_deferred env ~budget =
  (* Keep draining until the budget is spent: processing a dead object can
     enqueue its children, and those count against the same slice. *)
  let heap = Env.heap env in
  let d = Env.dcas env in
  let freed = ref 0 in
  let exhausted = ref false in
  while (not !exhausted) && (budget < 0 || !freed < budget) do
    match Env.drain_deferred env ~max:1 with
    | [] -> exhausted := true
    | q :: _ ->
        (* The dequeue and this registration are atomic, so [q] is never
           anchored by neither the queue nor the registry. *)
        Env.begin_destroy env q;
        (* Destruction ownership hands off through the queue: the pumping
           thread re-owns the dying object so its teardown reads are not
           mistaken for third-party use-after-retire. *)
        Shadow.note_dying (Env.sanitizer env) q;
        incr freed;
        let n = Heap.n_ptr_slots heap q in
        for i = 0 to n - 1 do
          let cell = Heap.ptr_cell heap q i in
          let child = Dcas.read d cell in
          if child <> null then begin
            Env.begin_destroy env child;
            if Env.wf_on env then begin
              (* Weighted drop: the slot's carried weight moves to the
                 pouch atomically with the claim, then flushes in one
                 fetch-add inside [wf_release]. *)
              let ws = Env.wf_slot_take env ~cell in
              Env.wf_pool_add env ~addr:child ~w:ws ~n:1;
              Cell.set cell null;
              if wf_release env child then defer_dead env child
            end
            else begin
              Cell.set cell null;
              if release_one env child then defer_dead env child
            end;
            Env.end_destroy env child
          end
        done;
        free_obj env "lfrc.deferred_frees" q;
        Env.end_destroy env q
  done;
  !freed

(* Wait-free commit of a drop whose registration the caller already
   placed: released references either uncover from the pouch or flush
   their weight; a death cascades through the weighted teardown (or the
   deferred queue under that policy). *)
let wf_commit_drop env p =
  match Env.policy env with
  | Env.Deferred { budget_per_op } ->
      if wf_release env p then defer_dead env p;
      Env.end_destroy env p;
      ignore (pump_deferred env ~budget:budget_per_op)
  | Env.Recursive | Env.Iterative ->
      (* Recursion depth is an eager-mode concern; the weighted teardown
         is always the explicit work list. *)
      if wf_release env p then wf_teardown_registered env p
      else Env.end_destroy env p

(* Commit a drop whose registry entry the caller already placed (atomically
   with the CAS that removed the reference from the heap); [p <> null]. *)
let destroy_registered env p =
  Metrics.incr (Env.metrics env) "lfrc.destroy";
  if Env.wf_on env then wf_commit_drop env p
  else if Env.rc_deferred env then begin
    let metrics = Env.metrics env in
    Metrics.incr metrics "lfrc.defer_dec";
    Lineage.record (Env.lineage env) ~addr:p Lineage.Defer_dec;
    (* Parking the decrement re-anchors the drop; consuming the
       registration in the same atomic step keeps exactly one anchor. *)
    let parked = Env.rc_park env ~addr:p ~delta:(-1) in
    Env.end_destroy env p;
    Metrics.set_gauge metrics "lfrc.rc_parked" parked;
    if parked >= Env.rc_epoch env then ignore (flush_rc env)
  end
  else
    match Env.policy env with
    | Env.Recursive -> destroy_recursive_registered env p
    | Env.Iterative -> destroy_iterative_registered env p
    | Env.Deferred { budget_per_op } ->
        if release_one env p then defer_dead env p;
        Env.end_destroy env p;
        ignore (pump_deferred env ~budget:budget_per_op)

let flush env =
  let coalesced = if Env.rc_deferred env then flush_rc env else 0 in
  coalesced + pump_deferred env ~budget:(-1)

let destroy env p =
  guard env "destroy";
  span env "lfrc.destroy" @@ fun () ->
  if Env.wf_on env then begin
    if p <> null then begin
      Env.begin_destroy env p;
      wf_commit_drop env p
    end
    else
      match Env.policy env with
      | Env.Deferred { budget_per_op } ->
          ignore (pump_deferred env ~budget:budget_per_op)
      | Env.Recursive | Env.Iterative -> ()
  end
  else if Env.rc_deferred env then
    (* Park the decrement; zero detection (and the free) happens in the
       flush, which alone may move a heap count downward in this mode. *)
    defer_rc env p (-1)
  else
    match Env.policy env with
    | Env.Recursive -> destroy_recursive env p
    | Env.Iterative -> destroy_iterative env p
    | Env.Deferred { budget_per_op } ->
        if p <> null then begin
          Env.begin_destroy env p;
          if release_one env p then defer_dead env p;
          Env.end_destroy env p
        end;
        ignore (pump_deferred env ~budget:budget_per_op)

(* Weight-batch publication for the wait-free CAS publishing sites: mint
   a whole batch with one fetch-add; the registry entry carries the batch
   size so a crash before the CAS resolves is compensated weight-exactly
   by recovery. *)
let wf_publish env p =
  if p <> null then begin
    let wt = Env.wf_weight env in
    let rc = Heap.rc_cell (Env.heap env) p in
    Blame.bind_owner (Env.blame env) ~cell:(Cell.id rc) ~addr:p;
    let prev = Dcas.fetch_add (Env.dcas env) rc wt in
    (* Atomic with the add: the speculative batch is never unanchored. *)
    Env.begin_publish ~weight:wt env p;
    Metrics.incr (Env.metrics env) "lfrc.weight_pub";
    Lineage.record_rc (Env.lineage env) ~addr:p ~old_rc:prev ~delta:wt ()
  end

(* Return an unspent publication batch after a failed CAS. Preferred:
   merge it into the thread's pouch entry for [p] (the caller's local
   still covers it). With no entry to absorb into, return it through the
   count word as a phantom-reference drop — which also handles the case
   where the publication was the last thing keeping [p] alive. *)
let wf_give_back env p =
  if p <> null then begin
    let wt = Env.wf_weight env in
    if not (Env.wf_pool_give env ~addr:p ~w:wt) then begin
      Env.begin_destroy env p;
      Env.wf_pool_add env ~addr:p ~w:wt ~n:1;
      wf_commit_drop env p
    end
  end

(* Bookkeeping for a winning publish CAS over [cell] that replaced
   [oldv]: claim the old pointer's slot weight into the pouch (and
   register its pending drop), then install the new slot weight — all in
   the same atomic step as the CAS itself. Claiming old-first keeps the
   ledger right when the CAS reinstalls the same pointer. *)
let wf_swap_slot env ~cell ~oldv ~neww =
  if oldv <> null then begin
    Env.begin_destroy env oldv;
    let ws = Env.wf_slot_take env ~cell in
    Env.wf_pool_add env ~addr:oldv ~w:ws ~n:1
  end
  else ignore (Env.wf_slot_take env ~cell);
  match neww with Some w -> Env.wf_slot_set env ~cell ~w | None -> ()

(* The committed drop a [wf_swap_slot] registered. *)
let wf_drop_swapped env oldv =
  if oldv <> null then begin
    Metrics.incr (Env.metrics env) "lfrc.destroy";
    wf_commit_drop env oldv
  end

(* Wait-free LFRCLoad: the pointer read and the weight borrow are one
   atomic step — the simulator analogue of the single RMW a real
   implementation issues on the packed (pointer, weight) word. The
   Figure-2 DCAS survives only as the exhausted-slot fallback, which
   refills the slot with a fresh batch so the next [weight] loads borrow
   again; its retries count as [lfrc.load_retry] (so [lfrc.rc_retry]
   stays exactly 0 in this mode). The borrow fast path is disabled under
   [Software_mcas], whose cells can transiently hold descriptor words a
   raw peek must not trust. *)
let wf_load env ~src ~dest =
  let heap = Env.heap env in
  let d = Env.dcas env in
  let olddest = !dest in
  let can_borrow = Dcas.impl d <> Dcas.Software_mcas in
  let wt = Env.wf_weight env in
  let slow = per_retry_obs env in
  let rec go burst =
    let a = Dcas.read d src in
    if a = null then begin
      dest := null;
      burst
    end
    else if can_borrow && Env.wf_slot_try_borrow env ~cell:src then begin
      (* Same no-yield window as the read: the slot still holds [a], so
         the borrowed unit provably covers a live reference. *)
      Env.wf_pool_add env ~addr:a ~w:1 ~n:1;
      dest := a;
      Metrics.incr (Env.metrics env) "lfrc.weight_borrow";
      Lineage.record (Env.lineage env) ~addr:a Lineage.Wborrow;
      burst
    end
    else begin
      let rc = Heap.rc_cell heap a in
      Blame.bind_owner (Env.blame env) ~cell:(Cell.id rc) ~addr:a;
      let r = Dcas.read d rc in
      (* Exhaustion fallback: mint [wt + 1] while atomically checking the
         slot still holds [a] — [wt] refills the slot, 1 covers the new
         reference. *)
      if Dcas.dcas d src rc ~old0:a ~old1:r ~new0:a ~new1:(r + wt + 1) then begin
        Env.wf_slot_give env ~cell:src ~w:wt;
        Env.wf_pool_add env ~addr:a ~w:1 ~n:1;
        dest := a;
        Metrics.incr (Env.metrics env) "lfrc.weight_exhaust";
        Lineage.record_rc (Env.lineage env) ~addr:a ~old_rc:r ~delta:(wt + 1)
          ();
        burst
      end
      else begin
        if slow then retry_slow env "lfrc.load_retry";
        go (burst + 1)
      end
    end
  in
  let burst = go 0 in
  record_retries env "lfrc.load_retry" burst;
  Metrics.observe (Env.metrics env) "lfrc.load.retries" (float_of_int burst);
  destroy env olddest

(* LFRCLoad (Figure 2, lines 1..12). *)
let load env ~src ~dest =
  guard env "load";
  span env "lfrc.load" @@ fun () ->
  if Env.wf_on env then wf_load env ~src ~dest
  else
  let heap = Env.heap env in
  let d = Env.dcas env in
  let olddest = !dest in
  let slow = per_retry_obs env in
  let rec go burst =
    let a = Dcas.read d src in
    if a = null then begin
      dest := null;
      burst
    end
    else begin
      let rc = Heap.rc_cell heap a in
      Blame.bind_owner (Env.blame env) ~cell:(Cell.id rc) ~addr:a;
      let r = Dcas.read d rc in
      (* Increment the count while atomically checking that [src] still
         points at [a]: the object cannot have been freed and recycled
         under us if the pointer still exists. *)
      if Dcas.dcas d src rc ~old0:a ~old1:r ~new0:a ~new1:(r + 1) then begin
        Lineage.record_rc (Env.lineage env) ~addr:a ~old_rc:r ~delta:1 ();
        dest := a;
        burst
      end
      else begin
        if slow then retry_slow env "lfrc.load_retry";
        go (burst + 1)
      end
    end
  in
  let burst = go 0 in
  record_retries env "lfrc.load_retry" burst;
  (* Every load contributes its burst — zeros included — so the retry
     histogram is populated even in uncontended runs. *)
  Metrics.observe (Env.metrics env) "lfrc.load.retries" (float_of_int burst);
  destroy env olddest

let wf_store env ~dst v =
  wf_publish env v;
  let d = Env.dcas env in
  let wt = Env.wf_weight env in
  let slow = per_retry_obs env in
  let rec go burst =
    let oldval = Dcas.read d dst in
    if Dcas.cas d dst oldval v then begin
      (* All of this rides the winning CAS's atomic step: the published
         batch becomes the slot's carried weight, the displaced pointer's
         slot weight moves to the pouch with its drop registered. *)
      Env.end_publish env v;
      wf_swap_slot env ~cell:dst ~oldv:oldval
        ~neww:(if v <> null then Some wt else None);
      record_retries env "lfrc.store_retry" burst;
      Metrics.observe (Env.metrics env) "lfrc.store.retries"
        (float_of_int burst);
      wf_drop_swapped env oldval
    end
    else begin
      if slow then retry_slow env "lfrc.store_retry";
      go (burst + 1)
    end
  in
  go 0

(* LFRCStore (Figure 2, lines 21..28). *)
let store env ~dst v =
  guard env "store";
  span env "lfrc.store" @@ fun () ->
  if Env.wf_on env then wf_store env ~dst v
  else begin
  rc_incr_for_publish env v;
  let d = Env.dcas env in
  let slow = per_retry_obs env in
  let rec go burst =
    let oldval = Dcas.read d dst in
    if Dcas.cas d dst oldval v then begin
      (* The winning CAS made the +1 heap-justified; ending the publication
         is atomic with it. *)
      Env.end_publish env v;
      record_retries env "lfrc.store_retry" burst;
      Metrics.observe (Env.metrics env) "lfrc.store.retries"
        (float_of_int burst);
      destroy env oldval
    end
    else begin
      if slow then retry_slow env "lfrc.store_retry";
      go (burst + 1)
    end
  in
  go 0
  end

(* Wait-free store of an owned allocation: no publication — the local
   reference's carried weight transfers to the slot on the winning CAS.
   [clear] (for the crash-safe [_from] variant) nulls the source local in
   the same atomic step. *)
let wf_store_alloc env ~dst v ~clear =
  let d = Env.dcas env in
  let slow = per_retry_obs env in
  let rec go burst =
    let oldval = Dcas.read d dst in
    if Dcas.cas d dst oldval v then begin
      clear ();
      let wtk =
        if v <> null then Env.wf_pool_take_for_transfer env ~addr:v else 1
      in
      wf_swap_slot env ~cell:dst ~oldv:oldval
        ~neww:(if v <> null then Some wtk else None);
      record_retries env "lfrc.store_retry" burst;
      wf_drop_swapped env oldval
    end
    else begin
      if slow then retry_slow env "lfrc.store_retry";
      go (burst + 1)
    end
  in
  go 0

(* LFRCStoreAlloc (paper Figure 1, line 35): consume the allocation's
   count instead of raising it. *)
let store_alloc env ~dst v =
  guard env "store_alloc";
  span env "lfrc.store_alloc" @@ fun () ->
  if Env.wf_on env then wf_store_alloc env ~dst v ~clear:ignore
  else
  let d = Env.dcas env in
  let slow = per_retry_obs env in
  let rec go burst =
    let oldval = Dcas.read d dst in
    if Dcas.cas d dst oldval v then begin
      record_retries env "lfrc.store_retry" burst;
      destroy env oldval
    end
    else begin
      if slow then retry_slow env "lfrc.store_retry";
      go (burst + 1)
    end
  in
  go 0

(* Crash-safe variant: the source is a (registered-local) ref, cleared in
   the same atomic step as the winning CAS, so the allocation's count has
   exactly one owner — the local or the heap slot — at every yield point. *)
let store_alloc_from env ~dst r =
  guard env "store_alloc";
  span env "lfrc.store_alloc" @@ fun () ->
  let d = Env.dcas env in
  let v = !r in
  if Env.wf_on env then wf_store_alloc env ~dst v ~clear:(fun () -> r := null)
  else
  let slow = per_retry_obs env in
  let rec go burst =
    let oldval = Dcas.read d dst in
    if Dcas.cas d dst oldval v then begin
      r := null;
      record_retries env "lfrc.store_retry" burst;
      destroy env oldval
    end
    else begin
      if slow then retry_slow env "lfrc.store_retry";
      go (burst + 1)
    end
  in
  go 0

(* Wait-free LFRCCopy: cover the new reference from the thread's pooled
   weight when the pouch has spare units (no shared-memory traffic at
   all); refill the pouch with a whole fetch-add batch otherwise. Either
   way, no compare loop. *)
let wf_copy env ~dest w =
  if w <> null then begin
    if Env.wf_pool_try_share env ~addr:w then begin
      Metrics.incr (Env.metrics env) "lfrc.weight_share";
      Lineage.record (Env.lineage env) ~addr:w Lineage.Wshare
    end
    else begin
      let wt = Env.wf_weight env in
      let rc = Heap.rc_cell (Env.heap env) w in
      Blame.bind_owner (Env.blame env) ~cell:(Cell.id rc) ~addr:w;
      let prev = Dcas.fetch_add (Env.dcas env) rc wt in
      (* Atomic with the add: pouch the batch before any yield. *)
      Env.wf_pool_add env ~addr:w ~w:wt ~n:1;
      Metrics.incr (Env.metrics env) "lfrc.weight_refill";
      Lineage.record_rc (Env.lineage env) ~addr:w ~old_rc:prev ~delta:wt ()
    end
  end;
  let old = !dest in
  dest := w;
  destroy env old

(* LFRCCopy (Figure 2, lines 29..32). *)
let copy env ~dest w =
  guard env "copy";
  span env "lfrc.copy" @@ fun () ->
  if Env.wf_on env then wf_copy env ~dest w
  else begin
    (* The deferred-mode increment can trigger a flush (which yields) before
       [dest] holds [w], so the +1 rides the publication registry until the
       assignment lands. *)
    rc_incr_for_publish env w;
    let old = !dest in
    dest := w;
    Env.end_publish env w;
    destroy env old
  end

(* Wait-free LFRCDCAS: publish whole weight batches with two fetch-adds,
   attempt the DCAS once per call from the caller's retry loop, and move
   slot weights on success. A failure returns both unspent batches — one
   at a time, so [new1]'s batch stays registered (crash-anchored) across
   any destroy cascade [new0]'s give-back triggers. *)
let wf_dcas env c0 c1 ~old0 ~old1 ~new0 ~new1 =
  let wt = Env.wf_weight env in
  wf_publish env new0;
  wf_publish env new1;
  if Dcas.dcas (Env.dcas env) c0 c1 ~old0 ~old1 ~new0 ~new1 then begin
    Env.end_publish env new0;
    Env.end_publish env new1;
    wf_swap_slot env ~cell:c0 ~oldv:old0
      ~neww:(if new0 <> null then Some wt else None);
    wf_swap_slot env ~cell:c1 ~oldv:old1
      ~neww:(if new1 <> null then Some wt else None);
    wf_drop_swapped env old0;
    wf_drop_swapped env old1;
    true
  end
  else begin
    Env.end_publish env new0;
    wf_give_back env new0;
    Env.end_publish env new1;
    wf_give_back env new1;
    false
  end

(* LFRCDCAS (Figure 2, lines 33..39). *)
let dcas env c0 c1 ~old0 ~old1 ~new0 ~new1 =
  guard env "dcas";
  span env "lfrc.dcas" @@ fun () ->
  if Env.wf_on env then wf_dcas env c0 c1 ~old0 ~old1 ~new0 ~new1
  else begin
    rc_incr_for_publish env new0;
    rc_incr_for_publish env new1;
    if Dcas.dcas (Env.dcas env) c0 c1 ~old0 ~old1 ~new0 ~new1 then begin
      Env.end_publish env new0;
      Env.end_publish env new1;
      (* Register BOTH committed drops atomically with the DCAS, then commit
         them one at a time: the second stays anchored while the first's
         cascade yields. *)
      if old0 <> null then Env.begin_destroy env old0;
      if old1 <> null then Env.begin_destroy env old1;
      if old0 <> null then destroy_registered env old0;
      if old1 <> null then destroy_registered env old1;
      true
    end
    else begin
      (* Resolve one publication at a time: [new1] stays registered across
         [new0]'s destroy cascade (which can yield), so a crash inside it
         never leaves [new1]'s speculative +1 unanchored. *)
      Env.end_publish env new0;
      destroy env new0;
      Env.end_publish env new1;
      destroy env new1;
      false
    end
  end

(* Wait-free LFRCCAS: single-cell [wf_dcas] shape. *)
let wf_cas env c ~old_ptr ~new_ptr =
  wf_publish env new_ptr;
  if Dcas.cas (Env.dcas env) c old_ptr new_ptr then begin
    Env.end_publish env new_ptr;
    wf_swap_slot env ~cell:c ~oldv:old_ptr
      ~neww:(if new_ptr <> null then Some (Env.wf_weight env) else None);
    wf_drop_swapped env old_ptr;
    true
  end
  else begin
    Env.end_publish env new_ptr;
    wf_give_back env new_ptr;
    false
  end

(* LFRCCAS: the paper's "obvious simplification" of LFRCDCAS. *)
let cas env c ~old_ptr ~new_ptr =
  guard env "cas";
  span env "lfrc.cas" @@ fun () ->
  if Env.wf_on env then wf_cas env c ~old_ptr ~new_ptr
  else begin
    rc_incr_for_publish env new_ptr;
    if Dcas.cas (Env.dcas env) c old_ptr new_ptr then begin
      Env.end_publish env new_ptr;
      destroy env old_ptr;
      true
    end
    else begin
      Env.end_publish env new_ptr;
      destroy env new_ptr;
      false
    end
  end

(* Extension: DCAS over one pointer cell and one plain-value cell.
   Reference counting applies to the pointer side only. *)
let dcas_ptr_val env ~ptr_cell ~val_cell ~old_ptr ~new_ptr ~old_val ~new_val =
  guard env "dcas_ptr_val";
  span env "lfrc.dcas_ptr_val" @@ fun () ->
  if Env.wf_on env then begin
    (* Weight tables track the pointer word only; the value word carries
       no references. *)
    wf_publish env new_ptr;
    if
      Dcas.dcas (Env.dcas env) ptr_cell val_cell ~old0:old_ptr ~old1:old_val
        ~new0:new_ptr ~new1:new_val
    then begin
      Env.end_publish env new_ptr;
      wf_swap_slot env ~cell:ptr_cell ~oldv:old_ptr
        ~neww:(if new_ptr <> null then Some (Env.wf_weight env) else None);
      wf_drop_swapped env old_ptr;
      true
    end
    else begin
      Env.end_publish env new_ptr;
      wf_give_back env new_ptr;
      false
    end
  end
  else begin
    rc_incr_for_publish env new_ptr;
    if
      Dcas.dcas (Env.dcas env) ptr_cell val_cell ~old0:old_ptr ~old1:old_val
        ~new0:new_ptr ~new1:new_val
    then begin
      Env.end_publish env new_ptr;
      destroy env old_ptr;
      true
    end
    else begin
      Env.end_publish env new_ptr;
      destroy env new_ptr;
      false
    end
  end

(* Finish a destroy whose owner crashed after taking the count to zero
   (used by crash recovery). Under the slot-nulling discipline every
   committed child drop also nulled its slot, so the husk's remaining
   non-null slots are exactly the drops never committed: perform each
   one, then free the husk. In wait-free mode each claimed child's slot
   weight moves to the adopter's pouch before its drop commits, so the
   weight ledger balances exactly as in a live teardown. *)
let finish_teardown env p =
  let heap = Env.heap env in
  for i = 0 to Heap.n_ptr_slots heap p - 1 do
    let cell = Heap.ptr_cell heap p i in
    let child = Cell.get cell in
    if child <> null then
      if Env.wf_on env then begin
        Env.begin_destroy env child;
        let ws = Env.wf_slot_take env ~cell in
        Env.wf_pool_add env ~addr:child ~w:ws ~n:1;
        Cell.set cell null;
        wf_commit_drop env child
      end
      else begin
        Cell.set cell null;
        destroy env child
      end
  done;
  free_obj env "lfrc.frees" p

let with_locals env n f =
  let locals = Array.init n (fun _ -> ref null) in
  Fun.protect
    ~finally:(fun () -> Array.iter (fun r -> destroy env !r) locals)
    (fun () -> f locals)

let read_ptr env c = Dcas.read (Env.dcas env) c
