module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Layout = Lfrc_simmem.Layout
module Dcas = Lfrc_atomics.Dcas
module Metrics = Lfrc_obs.Metrics
module Tracer = Lfrc_obs.Tracer
module Lineage = Lfrc_obs.Lineage
module Profile = Lfrc_obs.Profile

type ptr = Heap.ptr

let null = Heap.null

exception Symbolic_bypass of string

(* Under a symbolic (analysis) environment no real LFRC operation may run:
   structure code is being recorded through an {!Ops_intf.OPS} instance,
   and a direct call here means the code bypassed its functor argument.
   Raising identifies the offending operation to the analyser. *)
let guard env op = if Env.symbolic env then raise (Symbolic_bypass op)

(* Observability shims. Every public operation counts itself under an
   [lfrc.*] series and, when tracing/profiling/lineage is on, opens a span
   that closes even on the exceptional (OOM) paths. The span name doubles
   as the profiler call site and the lineage originating-op context, so a
   count transition or a failed DCAS underneath always knows which
   operation it belongs to. With observability off each shim is a single
   branch — the policy {!Env.create} documents. *)

let retry env counter =
  Metrics.incr (Env.metrics env) counter;
  Tracer.emit (Env.tracer env) Retry counter;
  Profile.op_retry (Env.profile env)

let span env name f =
  Metrics.incr (Env.metrics env) name;
  let tr = Env.tracer env
  and pr = Env.profile env
  and ln = Env.lineage env in
  if
    not (Tracer.enabled tr || Profile.enabled pr || Lineage.enabled ln)
  then f ()
  else begin
    Tracer.emit tr Begin name;
    Profile.op_begin pr name;
    Lineage.op_begin ln name;
    Fun.protect
      ~finally:(fun () ->
        Lineage.op_end ln;
        Profile.op_end pr;
        Tracer.emit tr End name)
      f
  end

(* add_to_rc (Figure 2, lines 16..20). The caller holds a counted
   reference, so the object cannot be freed while the loop runs. *)
let add_to_rc env p v =
  guard env "add_to_rc";
  let rc = Heap.rc_cell (Env.heap env) p in
  let d = Env.dcas env in
  let rec go burst =
    let oldrc = Dcas.read d rc in
    if Dcas.cas d rc oldrc (oldrc + v) then begin
      (* Contended transitions record their retry burst; the quiet common
         case stays out of the histogram. *)
      if burst > 0 then
        Metrics.observe (Env.metrics env) "lfrc.rc_retry"
          (float_of_int burst);
      Lineage.record_rc (Env.lineage env) ~addr:p ~old_rc:oldrc ~delta:v ();
      oldrc
    end
    else begin
      retry env "lfrc.rc_retry";
      go (burst + 1)
    end
  in
  go 0

let alloc env layout =
  guard env "alloc";
  span env "lfrc.alloc" @@ fun () -> Heap.alloc (Env.heap env) layout

(* Allocation with graceful OOM: a simulated allocation failure surfaces as
   a result before any count or cell is touched, so the caller can abort
   its operation with the heap intact. *)
let try_alloc env layout =
  guard env "try_alloc";
  span env "lfrc.alloc" @@ fun () ->
  match Heap.alloc (Env.heap env) layout with
  | p -> Ok p
  | exception Heap.Simulated_oom ->
      Metrics.incr (Env.metrics env) "lfrc.alloc_oom";
      Tracer.emit (Env.tracer env) Fault "oom";
      Error `Out_of_memory

(* Destroying the last pointer to an object frees it and destroys the
   pointers it contains. Three policies; all call [release_one] to drop a
   single count and report whether the object died. *)

let release_one env p = add_to_rc env p (-1) = 1

(* [counter] separates eager frees (destroy paths) from deferred-queue
   frees, the paper-§7 distinction the metrics surface. *)
let free_obj env counter p =
  Metrics.incr (Env.metrics env) counter;
  Heap.free (Env.heap env) p

let ptr_slot_contents env p =
  let heap = Env.heap env in
  let n = Heap.n_ptr_slots heap p in
  List.init n (fun i -> Dcas.read (Env.dcas env) (Heap.ptr_cell heap p i))

(* From the moment a destroy is committed to dropping a reference until the
   object is freed (or handed to the deferred queue), that reference exists
   only in OCaml locals — invisible to the heap. [Env.begin_destroy]
   republishes the object for the post-mortem fault auditor covering that
   whole span. Registry calls are mutex-only (no yield points), so no
   simulated crash can separate a reference from its registration. *)

(* Figure 2, lines 13..15: recursive destroy, faithful to the paper. *)
let rec destroy_recursive env p =
  if p <> null then begin
    Env.begin_destroy env p;
    if release_one env p then begin
      List.iter (destroy_recursive env) (ptr_slot_contents env p);
      free_obj env "lfrc.frees" p
    end;
    Env.end_destroy env p
  end

(* Same semantics with an explicit work list: survives arbitrarily long
   chains of dead objects. *)
let destroy_iterative env p =
  if p <> null then begin
    Env.begin_destroy env p;
    if not (release_one env p) then Env.end_destroy env p
    else begin
      let work = ref [ p ] in
      while !work <> [] do
        match !work with
        | [] -> ()
        | q :: rest ->
            work := rest;
            List.iter
              (fun child ->
                (* A dead child outlives its parent's registration (the
                   parent is freed first), so it gets its own. *)
                if child <> null then begin
                  Env.begin_destroy env child;
                  if release_one env child then work := child :: !work
                  else Env.end_destroy env child
                end)
              (ptr_slot_contents env q);
            free_obj env "lfrc.frees" q;
            Env.end_destroy env q
      done
    end
  end

(* Deferred policy: dead objects go to the environment's queue; each later
   LFRC operation frees a bounded number ([pump]), so no single operation
   pays for a long chain (paper §7, incremental collection). *)
let defer_dead env p =
  Lineage.record (Env.lineage env) ~addr:p Lineage.Defer;
  Env.defer env p

let pump_deferred env ~budget =
  (* Keep draining until the budget is spent: processing a dead object can
     enqueue its children, and those count against the same slice. *)
  let freed = ref 0 in
  let exhausted = ref false in
  while (not !exhausted) && (budget < 0 || !freed < budget) do
    match Env.drain_deferred env ~max:1 with
    | [] -> exhausted := true
    | q :: _ ->
        Env.begin_destroy env q;
        incr freed;
        List.iter
          (fun child ->
            if child <> null && release_one env child then
              defer_dead env child)
          (ptr_slot_contents env q);
        free_obj env "lfrc.deferred_frees" q;
        Env.end_destroy env q
  done;
  !freed

let flush env = pump_deferred env ~budget:(-1)

let destroy env p =
  guard env "destroy";
  span env "lfrc.destroy" @@ fun () ->
  match Env.policy env with
  | Env.Recursive -> destroy_recursive env p
  | Env.Iterative -> destroy_iterative env p
  | Env.Deferred { budget_per_op } ->
      if p <> null then begin
        Env.begin_destroy env p;
        if release_one env p then defer_dead env p;
        Env.end_destroy env p
      end;
      ignore (pump_deferred env ~budget:budget_per_op)

(* LFRCLoad (Figure 2, lines 1..12). *)
let load env ~src ~dest =
  guard env "load";
  span env "lfrc.load" @@ fun () ->
  let heap = Env.heap env in
  let d = Env.dcas env in
  let olddest = !dest in
  let rec go burst =
    let a = Dcas.read d src in
    if a = null then begin
      dest := null;
      burst
    end
    else begin
      let rc = Heap.rc_cell heap a in
      let r = Dcas.read d rc in
      (* Increment the count while atomically checking that [src] still
         points at [a]: the object cannot have been freed and recycled
         under us if the pointer still exists. *)
      if Dcas.dcas d src rc ~old0:a ~old1:r ~new0:a ~new1:(r + 1) then begin
        Lineage.record_rc (Env.lineage env) ~addr:a ~old_rc:r ~delta:1 ();
        dest := a;
        burst
      end
      else begin
        retry env "lfrc.load_retry";
        go (burst + 1)
      end
    end
  in
  let burst = go 0 in
  (* Every load contributes its burst — zeros included — so the retry
     histogram is populated even in uncontended runs. *)
  Metrics.observe (Env.metrics env) "lfrc.load.retries" (float_of_int burst);
  destroy env olddest

(* LFRCStore (Figure 2, lines 21..28). *)
let store env ~dst v =
  guard env "store";
  span env "lfrc.store" @@ fun () ->
  if v <> null then ignore (add_to_rc env v 1);
  let d = Env.dcas env in
  let rec go burst =
    let oldval = Dcas.read d dst in
    if Dcas.cas d dst oldval v then begin
      Metrics.observe (Env.metrics env) "lfrc.store.retries"
        (float_of_int burst);
      destroy env oldval
    end
    else begin
      retry env "lfrc.store_retry";
      go (burst + 1)
    end
  in
  go 0

(* LFRCStoreAlloc (paper Figure 1, line 35): consume the allocation's
   count instead of raising it. *)
let store_alloc env ~dst v =
  guard env "store_alloc";
  span env "lfrc.store_alloc" @@ fun () ->
  let d = Env.dcas env in
  let rec go () =
    let oldval = Dcas.read d dst in
    if Dcas.cas d dst oldval v then destroy env oldval
    else begin
      retry env "lfrc.store_retry";
      go ()
    end
  in
  go ()

(* LFRCCopy (Figure 2, lines 29..32). *)
let copy env ~dest w =
  guard env "copy";
  span env "lfrc.copy" @@ fun () ->
  if w <> null then ignore (add_to_rc env w 1);
  let old = !dest in
  dest := w;
  destroy env old

(* LFRCDCAS (Figure 2, lines 33..39). *)
let dcas env c0 c1 ~old0 ~old1 ~new0 ~new1 =
  guard env "dcas";
  span env "lfrc.dcas" @@ fun () ->
  if new0 <> null then ignore (add_to_rc env new0 1);
  if new1 <> null then ignore (add_to_rc env new1 1);
  if Dcas.dcas (Env.dcas env) c0 c1 ~old0 ~old1 ~new0 ~new1 then begin
    destroy env old0;
    destroy env old1;
    true
  end
  else begin
    destroy env new0;
    destroy env new1;
    false
  end

(* LFRCCAS: the paper's "obvious simplification" of LFRCDCAS. *)
let cas env c ~old_ptr ~new_ptr =
  guard env "cas";
  span env "lfrc.cas" @@ fun () ->
  if new_ptr <> null then ignore (add_to_rc env new_ptr 1);
  if Dcas.cas (Env.dcas env) c old_ptr new_ptr then begin
    destroy env old_ptr;
    true
  end
  else begin
    destroy env new_ptr;
    false
  end

(* Extension: DCAS over one pointer cell and one plain-value cell.
   Reference counting applies to the pointer side only. *)
let dcas_ptr_val env ~ptr_cell ~val_cell ~old_ptr ~new_ptr ~old_val ~new_val =
  guard env "dcas_ptr_val";
  span env "lfrc.dcas_ptr_val" @@ fun () ->
  if new_ptr <> null then ignore (add_to_rc env new_ptr 1);
  if
    Dcas.dcas (Env.dcas env) ptr_cell val_cell ~old0:old_ptr ~old1:old_val
      ~new0:new_ptr ~new1:new_val
  then begin
    destroy env old_ptr;
    true
  end
  else begin
    destroy env new_ptr;
    false
  end

let with_locals env n f =
  let locals = Array.init n (fun _ -> ref null) in
  Fun.protect
    ~finally:(fun () -> Array.iter (fun r -> destroy env !r) locals)
    (fun () -> f locals)

let read_ptr env c = Dcas.read (Env.dcas env) c
