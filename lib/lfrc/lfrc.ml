module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Layout = Lfrc_simmem.Layout
module Dcas = Lfrc_atomics.Dcas
module Metrics = Lfrc_obs.Metrics
module Tracer = Lfrc_obs.Tracer
module Lineage = Lfrc_obs.Lineage
module Profile = Lfrc_obs.Profile

type ptr = Heap.ptr

let null = Heap.null

exception Symbolic_bypass of string

(* Under a symbolic (analysis) environment no real LFRC operation may run:
   structure code is being recorded through an {!Ops_intf.OPS} instance,
   and a direct call here means the code bypassed its functor argument.
   Raising identifies the offending operation to the analyser. *)
let guard env op = if Env.symbolic env then raise (Symbolic_bypass op)

(* Observability shims. Every public operation counts itself under an
   [lfrc.*] series and, when tracing/profiling/lineage is on, opens a span
   that closes even on the exceptional (OOM) paths. The span name doubles
   as the profiler call site and the lineage originating-op context, so a
   count transition or a failed DCAS underneath always knows which
   operation it belongs to. With observability off each shim is a single
   branch — the policy {!Env.create} documents. *)

let retry env counter =
  Metrics.incr (Env.metrics env) counter;
  Tracer.emit (Env.tracer env) Retry counter;
  Profile.op_retry (Env.profile env)

let span env name f =
  Metrics.incr (Env.metrics env) name;
  let tr = Env.tracer env
  and pr = Env.profile env
  and ln = Env.lineage env in
  if
    not (Tracer.enabled tr || Profile.enabled pr || Lineage.enabled ln)
  then f ()
  else begin
    Tracer.emit tr Begin name;
    Profile.op_begin pr name;
    Lineage.op_begin ln name;
    Fun.protect
      ~finally:(fun () ->
        Lineage.op_end ln;
        Profile.op_end pr;
        Tracer.emit tr End name)
      f
  end

(* add_to_rc (Figure 2, lines 16..20). The caller holds a counted
   reference, so the object cannot be freed while the loop runs. *)
let add_to_rc env p v =
  guard env "add_to_rc";
  let rc = Heap.rc_cell (Env.heap env) p in
  let d = Env.dcas env in
  let rec go burst =
    let oldrc = Dcas.read d rc in
    if Dcas.cas d rc oldrc (oldrc + v) then begin
      (* Contended transitions record their retry burst; the quiet common
         case stays out of the histogram. *)
      if burst > 0 then
        Metrics.observe (Env.metrics env) "lfrc.rc_retry"
          (float_of_int burst);
      Lineage.record_rc (Env.lineage env) ~addr:p ~old_rc:oldrc ~delta:v ();
      oldrc
    end
    else begin
      retry env "lfrc.rc_retry";
      go (burst + 1)
    end
  in
  go 0

let alloc env layout =
  guard env "alloc";
  span env "lfrc.alloc" @@ fun () -> Heap.alloc (Env.heap env) layout

(* Allocation with graceful OOM: a simulated allocation failure surfaces as
   a result before any count or cell is touched, so the caller can abort
   its operation with the heap intact. *)
let try_alloc env layout =
  guard env "try_alloc";
  span env "lfrc.alloc" @@ fun () ->
  match Heap.alloc (Env.heap env) layout with
  | p -> Ok p
  | exception Heap.Simulated_oom ->
      Metrics.incr (Env.metrics env) "lfrc.alloc_oom";
      Tracer.emit (Env.tracer env) Fault "oom";
      Error `Out_of_memory

(* Destroying the last pointer to an object frees it and destroys the
   pointers it contains. Three policies; all call [release_one] to drop a
   single count and report whether the object died. *)

let release_one env p = add_to_rc env p (-1) = 1

(* [counter] separates eager frees (destroy paths) from deferred-queue
   frees, the paper-§7 distinction the metrics surface. *)
let free_obj env counter p =
  Metrics.incr (Env.metrics env) counter;
  Heap.free (Env.heap env) p

let ptr_slot_contents env p =
  let heap = Env.heap env in
  let n = Heap.n_ptr_slots heap p in
  List.init n (fun i -> Dcas.read (Env.dcas env) (Heap.ptr_cell heap p i))

(* --- deferred-rc coalescing ---

   With [Env.rc_epoch > 0], the ±1 count traffic from store/copy/cas/dcas
   increments and from every destroy is parked in per-thread buffers
   ({!Env.rc_park}) instead of CASing the heap count, and a global flush
   applies the per-address *net* deltas — one CAS per address instead of
   one per adjustment. [load]'s DCAS stays eager: it is the safety
   mechanism (increment-while-checking-the-pointer), not an accounting
   convenience.

   Why coalescing preserves the weak invariant: a parked +1 only ever
   under-counts (heap rc may be below the true reference count, never
   above), and a parked -1 leaves the heap rc conservatively high — an
   object is freed only by the flush, after its net delta lands at zero
   *and* a same-instant re-check shows no adjustment was parked while the
   CAS was in flight. Since in deferred mode no eager decrement exists,
   nothing else can free on a transient zero. DESIGN.md §12 carries the
   full argument. *)

let flush_rc env =
  if not (Env.rc_deferred env && Env.rc_try_begin_flush env) then 0
  else begin
    let metrics = Env.metrics env in
    let heap = Env.heap env in
    let d = Env.dcas env in
    let ln = Env.lineage env in
    let freed = ref 0 in
    Fun.protect ~finally:(fun () -> Env.rc_end_flush env) @@ fun () ->
    Metrics.incr metrics "lfrc.rc_flush";
    let todo = ref [] in
    let push addr v = todo := (addr, v) :: !todo in
    let rec apply addr v =
      if addr <> null && v <> 0 then begin
        let rc = Heap.rc_cell heap addr in
        let oldrc = Dcas.read d rc in
        (* Absorb anything parked for this address since the drain, so the
           CAS below applies the complete net and a success at zero means
           zero adjustments remain anywhere. *)
        let v = v + Env.rc_steal env ~addr in
        if v = 0 then ()
        else begin
          Metrics.incr metrics "lfrc.rc_flush_cas";
          if Dcas.cas d rc oldrc (oldrc + v) then begin
            Lineage.record_rc ln ~op:"lfrc.flush" ~addr ~old_rc:oldrc ~delta:v
              ();
            Lineage.record ln ~op:"lfrc.flush" ~addr (Lineage.Flush { net = v });
            if oldrc + v = 0 then begin
              (* No yield since the CAS: this re-check is atomic with it.
                 A delta parked between the steal above and the CAS (a
                 late +1 from a racing store) resurrects the object
                 instead of freeing it. *)
              let late = Env.rc_steal env ~addr in
              if late <> 0 then push addr late
              else begin
                Env.begin_destroy env addr;
                let children = ptr_slot_contents env addr in
                free_obj env "lfrc.frees" addr;
                incr freed;
                List.iter
                  (fun child ->
                    if child <> null then begin
                      Lineage.record ln ~op:"lfrc.flush" ~addr:child
                        Lineage.Defer_dec;
                      push child (-1)
                    end)
                  children;
                Env.end_destroy env addr
              end
            end
          end
          else begin
            retry env "lfrc.rc_retry";
            apply addr v
          end
        end
      end
    in
    let rec rounds () =
      let batch = Env.rc_drain_all env in
      if batch <> [] || !todo <> [] then begin
        let agg = Hashtbl.create 32 in
        List.iter
          (fun (addr, v) ->
            let prev =
              match Hashtbl.find_opt agg addr with Some p -> p | None -> 0
            in
            Hashtbl.replace agg addr (prev + v))
          (batch @ !todo);
        todo := [];
        let work = Hashtbl.fold (fun a v acc -> (a, v) :: acc) agg [] in
        (* Positive nets land before negative ones so a count only dips to
           zero once its pending increments are in; address order breaks
           ties for deterministic replay. *)
        let work =
          List.sort
            (fun (a1, v1) (a2, v2) ->
              if v1 <> v2 then compare v2 v1 else compare a1 a2)
            (List.filter (fun (_, v) -> v <> 0) work)
        in
        List.iter (fun (addr, v) -> apply addr v) work;
        rounds ()
      end
    in
    rounds ();
    !freed
  end

let defer_rc env p delta =
  if p <> null then begin
    let metrics = Env.metrics env in
    Metrics.incr metrics (if delta > 0 then "lfrc.defer_inc" else "lfrc.defer_dec");
    Lineage.record (Env.lineage env) ~addr:p
      (if delta > 0 then Lineage.Defer_inc else Lineage.Defer_dec);
    let parked = Env.rc_park env ~addr:p ~delta in
    Metrics.set_gauge metrics "lfrc.rc_parked" parked;
    if parked >= Env.rc_epoch env then ignore (flush_rc env)
  end

(* One increment of [p]'s count before a pointer to it is published —
   eager CAS loop normally, parked when deferred-rc is on. *)
let rc_incr env p =
  if p <> null then
    if Env.rc_deferred env then defer_rc env p 1
    else ignore (add_to_rc env p 1)

(* From the moment a destroy is committed to dropping a reference until the
   object is freed (or handed to the deferred queue), that reference exists
   only in OCaml locals — invisible to the heap. [Env.begin_destroy]
   republishes the object for the post-mortem fault auditor covering that
   whole span. Registry calls are mutex-only (no yield points), so no
   simulated crash can separate a reference from its registration. *)

(* Figure 2, lines 13..15: recursive destroy, faithful to the paper. *)
let rec destroy_recursive env p =
  if p <> null then begin
    Env.begin_destroy env p;
    if release_one env p then begin
      List.iter (destroy_recursive env) (ptr_slot_contents env p);
      free_obj env "lfrc.frees" p
    end;
    Env.end_destroy env p
  end

(* Same semantics with an explicit work list: survives arbitrarily long
   chains of dead objects. *)
let destroy_iterative env p =
  if p <> null then begin
    Env.begin_destroy env p;
    if not (release_one env p) then Env.end_destroy env p
    else begin
      let work = ref [ p ] in
      while !work <> [] do
        match !work with
        | [] -> ()
        | q :: rest ->
            work := rest;
            List.iter
              (fun child ->
                (* A dead child outlives its parent's registration (the
                   parent is freed first), so it gets its own. *)
                if child <> null then begin
                  Env.begin_destroy env child;
                  if release_one env child then work := child :: !work
                  else Env.end_destroy env child
                end)
              (ptr_slot_contents env q);
            free_obj env "lfrc.frees" q;
            Env.end_destroy env q
      done
    end
  end

(* Deferred policy: dead objects go to the environment's queue; each later
   LFRC operation frees a bounded number ([pump]), so no single operation
   pays for a long chain (paper §7, incremental collection). *)
let defer_dead env p =
  Lineage.record (Env.lineage env) ~addr:p Lineage.Defer;
  Env.defer env p

let pump_deferred env ~budget =
  (* Keep draining until the budget is spent: processing a dead object can
     enqueue its children, and those count against the same slice. *)
  let freed = ref 0 in
  let exhausted = ref false in
  while (not !exhausted) && (budget < 0 || !freed < budget) do
    match Env.drain_deferred env ~max:1 with
    | [] -> exhausted := true
    | q :: _ ->
        Env.begin_destroy env q;
        incr freed;
        List.iter
          (fun child ->
            if child <> null && release_one env child then
              defer_dead env child)
          (ptr_slot_contents env q);
        free_obj env "lfrc.deferred_frees" q;
        Env.end_destroy env q
  done;
  !freed

let flush env =
  let coalesced = if Env.rc_deferred env then flush_rc env else 0 in
  coalesced + pump_deferred env ~budget:(-1)

let destroy env p =
  guard env "destroy";
  span env "lfrc.destroy" @@ fun () ->
  if Env.rc_deferred env then
    (* Park the decrement; zero detection (and the free) happens in the
       flush, which alone may move a heap count downward in this mode. *)
    defer_rc env p (-1)
  else
    match Env.policy env with
    | Env.Recursive -> destroy_recursive env p
    | Env.Iterative -> destroy_iterative env p
    | Env.Deferred { budget_per_op } ->
        if p <> null then begin
          Env.begin_destroy env p;
          if release_one env p then defer_dead env p;
          Env.end_destroy env p
        end;
        ignore (pump_deferred env ~budget:budget_per_op)

(* LFRCLoad (Figure 2, lines 1..12). *)
let load env ~src ~dest =
  guard env "load";
  span env "lfrc.load" @@ fun () ->
  let heap = Env.heap env in
  let d = Env.dcas env in
  let olddest = !dest in
  let rec go burst =
    let a = Dcas.read d src in
    if a = null then begin
      dest := null;
      burst
    end
    else begin
      let rc = Heap.rc_cell heap a in
      let r = Dcas.read d rc in
      (* Increment the count while atomically checking that [src] still
         points at [a]: the object cannot have been freed and recycled
         under us if the pointer still exists. *)
      if Dcas.dcas d src rc ~old0:a ~old1:r ~new0:a ~new1:(r + 1) then begin
        Lineage.record_rc (Env.lineage env) ~addr:a ~old_rc:r ~delta:1 ();
        dest := a;
        burst
      end
      else begin
        retry env "lfrc.load_retry";
        go (burst + 1)
      end
    end
  in
  let burst = go 0 in
  (* Every load contributes its burst — zeros included — so the retry
     histogram is populated even in uncontended runs. *)
  Metrics.observe (Env.metrics env) "lfrc.load.retries" (float_of_int burst);
  destroy env olddest

(* LFRCStore (Figure 2, lines 21..28). *)
let store env ~dst v =
  guard env "store";
  span env "lfrc.store" @@ fun () ->
  rc_incr env v;
  let d = Env.dcas env in
  let rec go burst =
    let oldval = Dcas.read d dst in
    if Dcas.cas d dst oldval v then begin
      Metrics.observe (Env.metrics env) "lfrc.store.retries"
        (float_of_int burst);
      destroy env oldval
    end
    else begin
      retry env "lfrc.store_retry";
      go (burst + 1)
    end
  in
  go 0

(* LFRCStoreAlloc (paper Figure 1, line 35): consume the allocation's
   count instead of raising it. *)
let store_alloc env ~dst v =
  guard env "store_alloc";
  span env "lfrc.store_alloc" @@ fun () ->
  let d = Env.dcas env in
  let rec go () =
    let oldval = Dcas.read d dst in
    if Dcas.cas d dst oldval v then destroy env oldval
    else begin
      retry env "lfrc.store_retry";
      go ()
    end
  in
  go ()

(* LFRCCopy (Figure 2, lines 29..32). *)
let copy env ~dest w =
  guard env "copy";
  span env "lfrc.copy" @@ fun () ->
  rc_incr env w;
  let old = !dest in
  dest := w;
  destroy env old

(* LFRCDCAS (Figure 2, lines 33..39). *)
let dcas env c0 c1 ~old0 ~old1 ~new0 ~new1 =
  guard env "dcas";
  span env "lfrc.dcas" @@ fun () ->
  rc_incr env new0;
  rc_incr env new1;
  if Dcas.dcas (Env.dcas env) c0 c1 ~old0 ~old1 ~new0 ~new1 then begin
    destroy env old0;
    destroy env old1;
    true
  end
  else begin
    destroy env new0;
    destroy env new1;
    false
  end

(* LFRCCAS: the paper's "obvious simplification" of LFRCDCAS. *)
let cas env c ~old_ptr ~new_ptr =
  guard env "cas";
  span env "lfrc.cas" @@ fun () ->
  rc_incr env new_ptr;
  if Dcas.cas (Env.dcas env) c old_ptr new_ptr then begin
    destroy env old_ptr;
    true
  end
  else begin
    destroy env new_ptr;
    false
  end

(* Extension: DCAS over one pointer cell and one plain-value cell.
   Reference counting applies to the pointer side only. *)
let dcas_ptr_val env ~ptr_cell ~val_cell ~old_ptr ~new_ptr ~old_val ~new_val =
  guard env "dcas_ptr_val";
  span env "lfrc.dcas_ptr_val" @@ fun () ->
  rc_incr env new_ptr;
  if
    Dcas.dcas (Env.dcas env) ptr_cell val_cell ~old0:old_ptr ~old1:old_val
      ~new0:new_ptr ~new1:new_val
  then begin
    destroy env old_ptr;
    true
  end
  else begin
    destroy env new_ptr;
    false
  end

let with_locals env n f =
  let locals = Array.init n (fun _ -> ref null) in
  Fun.protect
    ~finally:(fun () -> Array.iter (fun r -> destroy env !r) locals)
    (fun () -> f locals)

let read_ptr env c = Dcas.read (Env.dcas env) c
