(** The pointer-operation interface — the paper's "LFRC Compliance"
    criterion (Section 2.1) made into a module type, split by primitive
    tier.

    A data-structure implementation that manipulates pointers *only*
    through these operations can be written once, as a functor over the
    operation signature, and instantiated both in a garbage-collected
    environment ({!Gc_ops}) and in a manual-memory environment
    ({!Lfrc_ops}). Applying the paper's transformation methodology
    (Section 3, Table 1) is then literally the act of changing the functor
    argument — the type checker enforces that no pointer is touched
    outside the sanctioned operation set (no pointer arithmetic, no raw
    loads).

    The signature comes in two tiers, mirroring the catalog's
    {!Lfrc_structures.Catalog.tier}:

    - {!OPS_CAS} — single-word primitives only: loads, stores, copies,
      CAS, allocation, flush, and the value-slot accessors. A structure
      written as a functor over [OPS_CAS] (e.g. the Sundell–Tsigas deque)
      provably never issues a DCAS: the operation simply is not in its
      vocabulary, so the claim "CAS-only" is discharged by the type
      checker rather than by inspection.
    - {!OPS_DCAS} — everything in [OPS_CAS] plus the two double-word
      operations ([dcas], [dcas_ptr_val]) the paper's Snark requires.

    Both real implementations ({!Gc_ops}, {!Lfrc_ops}) and the analyzer's
    recording instance satisfy [OPS_DCAS], and therefore — by first-class-
    module width subtyping — can be passed wherever an [OPS_CAS] is
    expected. [OPS] remains as an alias for [OPS_DCAS] so existing
    functors keep compiling unchanged.

    Thread-local pointer variables are abstract ([local]) so that the
    GC-dependent implementation can register them as roots with the
    tracing collector (playing the role of stack scanning) and the LFRC
    implementation can count them. *)

(** Single-word tier: every pointer operation expressible with loads,
    stores and one-word CAS. *)
module type OPS_CAS = sig
  val name : string

  type ctx
  (** Per-thread context. Create one per (simulated or real) thread. *)

  val make_ctx : Env.t -> ctx
  val dispose_ctx : ctx -> unit
  val env : ctx -> Env.t

  type local
  (** A thread-local pointer variable, initialized to null. *)

  val declare : ctx -> local
  val retire : ctx -> local -> unit
  (** The variable is dead (paper step 6: call LFRCDestroy on locals going
      out of scope). *)

  val get : local -> Lfrc_simmem.Heap.ptr
  (** Read the local variable for comparisons and as an operand. The
      returned id must not outlive the variable. *)

  (* Pointer operations: Table 1's left column, minus the DCAS rows. *)

  val load : ctx -> Lfrc_simmem.Cell.t -> local -> unit
  (** [x0 = *A0] *)

  val store : ctx -> Lfrc_simmem.Cell.t -> Lfrc_simmem.Heap.ptr -> unit
  (** [*A0 = x0] *)

  val store_alloc : ctx -> Lfrc_simmem.Cell.t -> local -> unit
  (** Store a just-allocated object, transferring the allocation
      reference; clears the local. *)

  val copy : ctx -> local -> Lfrc_simmem.Heap.ptr -> unit
  (** [x0 = x1] *)

  val set_null : ctx -> local -> unit

  val cas :
    ctx ->
    Lfrc_simmem.Cell.t ->
    old_ptr:Lfrc_simmem.Heap.ptr ->
    new_ptr:Lfrc_simmem.Heap.ptr ->
    bool

  val alloc : ctx -> Lfrc_simmem.Layout.t -> local -> unit
  (** [x0 = new T]: allocate into a local (destroying its previous
      content). In GC-dependent mode allocation may trigger a tracing
      collection first. *)

  val try_alloc : ctx -> Lfrc_simmem.Layout.t -> local -> bool
  (** Like {!alloc} but fallible: on a simulated allocator failure
      ({!Lfrc_simmem.Heap.Simulated_oom}) returns [false] with the local —
      and every reference count — untouched, so the enclosing structure
      operation can report out-of-memory instead of dying mid-update. *)

  val flush : ctx -> unit
  (** Settle deferred bookkeeping at a structure-chosen quiescent point:
      under LFRC this applies parked deferred-rc deltas and drains the
      deferred-destroy queue ({!Lfrc.flush}); under GC it polls the
      incremental collector. Never required for correctness — every
      implementation also flushes at its own forced points (epoch
      overflow, context disposal, crash audits) — but a structure may call
      it to bound how much bookkeeping a later operation inherits. *)

  (* Value-slot access (not pointer operations; always permitted). *)

  val read_val : ctx -> Lfrc_simmem.Cell.t -> int
  val write_val : ctx -> Lfrc_simmem.Cell.t -> int -> unit
  val cas_val : ctx -> Lfrc_simmem.Cell.t -> int -> int -> bool
end

(** Double-word tier: the single-word tier plus the paper's DCAS
    operations. *)
module type OPS_DCAS = sig
  include OPS_CAS

  val dcas :
    ctx ->
    Lfrc_simmem.Cell.t ->
    Lfrc_simmem.Cell.t ->
    old0:Lfrc_simmem.Heap.ptr ->
    old1:Lfrc_simmem.Heap.ptr ->
    new0:Lfrc_simmem.Heap.ptr ->
    new1:Lfrc_simmem.Heap.ptr ->
    bool

  val dcas_ptr_val :
    ctx ->
    ptr_cell:Lfrc_simmem.Cell.t ->
    val_cell:Lfrc_simmem.Cell.t ->
    old_ptr:Lfrc_simmem.Heap.ptr ->
    new_ptr:Lfrc_simmem.Heap.ptr ->
    old_val:int ->
    new_val:int ->
    bool
  (** Mixed pointer/value DCAS (our documented extension of the paper's
      operation set; see {!Lfrc.dcas_ptr_val}). *)
end

module type OPS = OPS_DCAS
(** Compatibility alias: the historical monolithic signature is exactly
    the DCAS tier. *)
