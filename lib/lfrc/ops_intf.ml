(** The pointer-operation interface — the paper's "LFRC Compliance"
    criterion (Section 2.1) made into a module type.

    A data-structure implementation that manipulates pointers *only*
    through these operations can be written once, as a functor over [OPS],
    and instantiated both in a garbage-collected environment ({!Gc_ops})
    and in a manual-memory environment ({!Lfrc_ops}). Applying the paper's
    transformation methodology (Section 3, Table 1) is then literally the
    act of changing the functor argument — the type checker enforces that
    no pointer is touched outside the sanctioned operation set (no pointer
    arithmetic, no raw loads).

    Thread-local pointer variables are abstract ([local]) so that the
    GC-dependent implementation can register them as roots with the
    tracing collector (playing the role of stack scanning) and the LFRC
    implementation can count them. *)

module type OPS = sig
  val name : string

  type ctx
  (** Per-thread context. Create one per (simulated or real) thread. *)

  val make_ctx : Env.t -> ctx
  val dispose_ctx : ctx -> unit
  val env : ctx -> Env.t

  type local
  (** A thread-local pointer variable, initialized to null. *)

  val declare : ctx -> local
  val retire : ctx -> local -> unit
  (** The variable is dead (paper step 6: call LFRCDestroy on locals going
      out of scope). *)

  val get : local -> Lfrc_simmem.Heap.ptr
  (** Read the local variable for comparisons and as an operand. The
      returned id must not outlive the variable. *)

  (* Pointer operations: Table 1's left column. *)

  val load : ctx -> Lfrc_simmem.Cell.t -> local -> unit
  (** [x0 = *A0] *)

  val store : ctx -> Lfrc_simmem.Cell.t -> Lfrc_simmem.Heap.ptr -> unit
  (** [*A0 = x0] *)

  val store_alloc : ctx -> Lfrc_simmem.Cell.t -> local -> unit
  (** Store a just-allocated object, transferring the allocation
      reference; clears the local. *)

  val copy : ctx -> local -> Lfrc_simmem.Heap.ptr -> unit
  (** [x0 = x1] *)

  val set_null : ctx -> local -> unit

  val cas :
    ctx ->
    Lfrc_simmem.Cell.t ->
    old_ptr:Lfrc_simmem.Heap.ptr ->
    new_ptr:Lfrc_simmem.Heap.ptr ->
    bool

  val dcas :
    ctx ->
    Lfrc_simmem.Cell.t ->
    Lfrc_simmem.Cell.t ->
    old0:Lfrc_simmem.Heap.ptr ->
    old1:Lfrc_simmem.Heap.ptr ->
    new0:Lfrc_simmem.Heap.ptr ->
    new1:Lfrc_simmem.Heap.ptr ->
    bool

  val dcas_ptr_val :
    ctx ->
    ptr_cell:Lfrc_simmem.Cell.t ->
    val_cell:Lfrc_simmem.Cell.t ->
    old_ptr:Lfrc_simmem.Heap.ptr ->
    new_ptr:Lfrc_simmem.Heap.ptr ->
    old_val:int ->
    new_val:int ->
    bool
  (** Mixed pointer/value DCAS (our documented extension of the paper's
      operation set; see {!Lfrc.dcas_ptr_val}). *)

  val alloc : ctx -> Lfrc_simmem.Layout.t -> local -> unit
  (** [x0 = new T]: allocate into a local (destroying its previous
      content). In GC-dependent mode allocation may trigger a tracing
      collection first. *)

  val try_alloc : ctx -> Lfrc_simmem.Layout.t -> local -> bool
  (** Like {!alloc} but fallible: on a simulated allocator failure
      ({!Lfrc_simmem.Heap.Simulated_oom}) returns [false] with the local —
      and every reference count — untouched, so the enclosing structure
      operation can report out-of-memory instead of dying mid-update. *)

  val flush : ctx -> unit
  (** Settle deferred bookkeeping at a structure-chosen quiescent point:
      under LFRC this applies parked deferred-rc deltas and drains the
      deferred-destroy queue ({!Lfrc.flush}); under GC it polls the
      incremental collector. Never required for correctness — every
      implementation also flushes at its own forced points (epoch
      overflow, context disposal, crash audits) — but a structure may call
      it to bound how much bookkeeping a later operation inherits. *)

  (* Value-slot access (not pointer operations; always permitted). *)

  val read_val : ctx -> Lfrc_simmem.Cell.t -> int
  val write_val : ctx -> Lfrc_simmem.Cell.t -> int -> unit
  val cas_val : ctx -> Lfrc_simmem.Cell.t -> int -> int -> bool
end
