(** Execution environment threaded through every LFRC operation: the heap,
    the DCAS substrate, and the destroy policy.

    The destroy policy governs what happens when a reference count falls to
    zero:

    - [Recursive]: free the object and recursively destroy its pointers —
      the paper's Figure 2 verbatim. A long chain destroys with deep
      recursion and an unbounded pause.
    - [Iterative]: semantically identical, but with an explicit work list,
      so arbitrarily long chains cannot overflow the stack. The default.
    - [Deferred]: enqueue the dead object and free at most
      [budget_per_op] objects per subsequent LFRC operation — the paper's
      Section 7 "incremental collection" future-work extension, bounding
      pause times (experiment E6). [flush] drains the queue. *)

type policy =
  | Recursive
  | Iterative
  | Deferred of { budget_per_op : int }

(** How reference-count adjustments reach the heap:

    - [Eager] — every ±1 is a CAS on the object's count word, the paper's
      Figure-2 behaviour. The default.
    - [Deferred { epoch }] — deferred-rc coalescing: {!Lfrc}'s increment
      and decrement sites park ±1 adjustments in per-thread buffers (see
      the [rc_*] accessors below) instead of CASing the heap count, and a
      global flush applies the netted deltas once [epoch] adjustments have
      been parked (or earlier, at forced flush points). [epoch] must be
      positive.
    - [Wait_free { weight }] — weighted (split) reference counts,
      Blelloch–Wei style: the count word holds the object's {e total
      weight} (the sum over every live reference of the weight it
      carries), [copy]/[destroy] adjust it with a single
      {!Lfrc_atomics.Dcas.fetch_add} — no retry loop — and pointer
      handoffs move weight instead of touching the count at all. The
      Figure-2 DCAS survives only as [load]'s fallback when a heap slot's
      weight is exhausted; [weight] (clamped to >= 2) is the batch minted
      per refill. See the [wf_*] accessors below and DESIGN.md §17. *)
type rc_mode =
  | Eager
  | Deferred_rc of { epoch : int }
  | Wait_free of { weight : int }

val rc_mode_of_epoch : int -> rc_mode
(** [Eager] for 0 (and anything non-positive), [Deferred_rc { epoch }]
    otherwise — the bridge for callers still holding a raw epoch. *)

type t

val create :
  ?dcas_impl:Lfrc_atomics.Dcas.impl ->
  ?policy:policy ->
  ?rc_mode:rc_mode ->
  ?gc_threshold:int ->
  ?metrics:Lfrc_obs.Metrics.t ->
  ?tracer:Lfrc_obs.Tracer.t ->
  ?lineage:Lfrc_obs.Lineage.t ->
  ?profile:Lfrc_obs.Profile.t ->
  ?blame:Lfrc_obs.Blame.t ->
  ?sanitize:Lfrc_sanitize.Shadow.t ->
  ?symbolic:bool ->
  Lfrc_simmem.Heap.t ->
  t
(** Defaults: [dcas_impl] is [Atomic_step] when called under the simulator
    and [Striped_lock] otherwise; [policy] is [Iterative]; [gc_threshold]
    (live-object count that triggers a tracing collection in GC-dependent
    mode; 0 disables) is 0.

    [rc_mode] selects eager Figure-2 counts or deferred-rc coalescing; see
    {!type:rc_mode}. (The pre-PR-7 [?rc_epoch] integer alias is gone;
    callers still holding an epoch convert with {!rc_mode_of_epoch}.)

    [blame] (default disabled, one branch per event) wires the contention
    causality layer: the DCAS substrate stamps every successful write and
    charges every failed compare to its stamped culprit, and {!Lfrc}
    binds reference-count cells to their owning object so rc contention
    is named. Attaching a registry calls {!Lfrc_obs.Blame.new_run} first:
    cell ids restart per heap, so stamps must not leak across
    environments (aggregated pairs survive).

    [metrics], [tracer], [lineage] and [profile] default to the disabled
    singletons — the no-op
    observability implementations, chosen here once so every instrumented
    hot path below pays a single branch when observability is off.
    Passing enabled instances wires the whole environment: the DCAS
    substrate ({!Lfrc_atomics.Dcas.attach_obs}), the heap's alloc/free
    observer ({!Lfrc_simmem.Heap.set_observer}), the deferred-destroy
    queue, and {!Lfrc}'s operations all report into them. Sharing one
    registry across several environments aggregates their series.

    [sanitize] (default {!Lfrc_sanitize.Shadow.disabled}, one branch per
    access) wires the LFRC-San shadow-memory sanitizer: it is bound to
    this heap and observability ({!Lfrc_sanitize.Shadow.attach}), attached
    to the DCAS substrate's access hooks
    ({!Lfrc_atomics.Dcas.attach_sanitizer}), fed alloc/free events through
    the heap observer, and notified by {!Lfrc}'s zero-detect paths when a
    thread takes ownership of a dead object's destruction.

    [symbolic] marks the environment as belonging to the static analyser
    ([lib/analysis]): structure code running over it is being *recorded*,
    not executed, so no real LFRC operation may touch it. Every {!Lfrc}
    entry point checks the flag and raises {!Lfrc.Symbolic_bypass} — which
    is how the analyser catches client code that side-steps the
    {!Ops_intf.OPS} functor argument and calls {!Lfrc} directly (a
    discipline violation the type checker alone cannot see, because the
    environment is reachable through the structure record). *)

val heap : t -> Lfrc_simmem.Heap.t
val dcas : t -> Lfrc_atomics.Dcas.t

val symbolic : t -> bool
(** Whether this environment is a static-analysis recording environment
    (created with [~symbolic:true]); see {!create}. *)

val policy : t -> policy
val gc_threshold : t -> int

val metrics : t -> Lfrc_obs.Metrics.t
val tracer : t -> Lfrc_obs.Tracer.t

val lineage : t -> Lfrc_obs.Lineage.t
(** The per-object lifecycle recorder ({!Lfrc_obs.Lineage}); the heap
    observer feeds it alloc/free events and {!Lfrc} feeds it count
    transitions, retires and deferrals. *)

val profile : t -> Lfrc_obs.Profile.t
(** The call-site contention profiler ({!Lfrc_obs.Profile}); {!Lfrc}'s
    spans open/close frames on it and the DCAS substrate charges failed
    attempts to the innermost frame. *)

val blame : t -> Lfrc_obs.Blame.t
(** The contention-causality registry ({!Lfrc_obs.Blame}); {!Lfrc}'s
    spans open/close blame frames on it and bind rc cells to their
    owners, the DCAS substrate stamps winners and charges losers. *)

val sanitizer : t -> Lfrc_sanitize.Shadow.t
(** The LFRC-San shadow-memory sanitizer this environment was created
    with; the disabled singleton unless [~sanitize] was passed. *)

val set_incremental : t -> collector:Lfrc_simmem.Gc_incr.t -> budget:int -> unit
(** Attach an incremental collector for GC-dependent mode: {!Gc_ops} will
    discharge its write-barrier and allocation-color obligations and
    advance the cycle by [budget] units per operation. Mutually exclusive
    in spirit with [gc_threshold]-driven stop-the-world collection (the
    incremental collector takes precedence when attached). *)

val incremental : t -> (Lfrc_simmem.Gc_incr.t * int) option

(** {2 Deferred-rc coalescing buffers}

    Raw buffer plumbing for {!Lfrc}'s deferred-rc mode; structure code
    never calls these. Every operation here is mutex-only — no scheduler
    yield points — so under the simulator each is atomic with respect to
    interleaving. *)

val rc_mode : t -> rc_mode
(** The count-update mode this environment was created with. *)

val rc_epoch : t -> int
(** Parked-adjustment budget that triggers an automatic flush; [0] means
    deferred-rc is off (eager Figure-2 counts). Equals the epoch of
    {!rc_mode} when it is [Deferred_rc], else [0]. *)

val rc_deferred : t -> bool
(** [rc_epoch t > 0]. *)

val rc_park : t -> addr:int -> delta:int -> int
(** Park a ±1 count adjustment for [addr] in the calling thread's buffer,
    netting it against any adjustment already parked there (a +1 and a -1
    cancel without ever touching the heap). Returns the number of park
    operations since the last drain, for the epoch trigger. *)

val rc_drain_all : t -> (int * int) list
(** Atomically empty {e every} thread's buffer and return the per-address
    net deltas (zero nets omitted, order unspecified). Resets the park
    counter. *)

val rc_steal : t -> addr:int -> int
(** Atomically remove [addr]'s parked deltas from every thread's buffer
    and return their sum (0 when nothing was parked). Used by the flush
    to absorb adjustments parked while it runs. *)

val rc_parked : t -> int list
(** Addresses with a nonzero parked net, across all threads (duplicates
    possible); folded into {!anchors}. *)

val rc_try_begin_flush : t -> bool
(** Claim the flush-in-progress flag; [false] means another thread is
    already flushing and the caller may skip (its parked deltas will be
    picked up by that flush's re-drain loop). The claiming thread's id is
    recorded so {!rc_recover_flush} can tell a stuck flag (dead owner)
    from a live flush. *)

val rc_end_flush : t -> unit

(** {3 Crash-safe flush staging}

    A flush drains parked deltas into an environment-owned applying table
    and removes each only once its heap effect has landed; the flusher's
    OCaml locals never hold the only copy. A flusher that crashes mid-apply
    therefore loses nothing: {!rc_recover_flush} re-parks the leftovers. *)

val rc_drain_into_applying : t -> bool
(** Atomically move every thread's parked deltas into the applying table
    (netting against anything already staged there). Returns whether any
    buffer had content. Caller must hold the flush flag. *)

val rc_applying_snapshot : t -> (int * int) list
(** The staged (addr, net delta) pairs not yet applied, order unspecified. *)

val rc_absorb : t -> addr:int -> int
(** Atomically remove [addr]'s deltas from every thread's buffer {e and}
    the applying table, returning the net. The zero-detect path uses this
    so a concurrently staged delta cannot resurrect or double-free. *)

val rc_apply_done : t -> addr:int -> unit
(** The staged delta for [addr] has landed on the heap; unstage it. *)

val rc_restage : t -> addr:int -> int
(** Fold any freshly parked deltas for [addr] into its staged entry and
    return the staged net (0 when nothing anywhere). The entry stays
    staged until {!rc_apply_done}, so a crash in between loses nothing. *)

val rc_recover_flush : t -> crashed:int list -> int
(** If the thread holding the flush flag is in [crashed], re-park its
    staged deltas (into the dead owner's buffer, where they stay anchored)
    and release the flag; otherwise do nothing. Returns the number of
    re-parked deltas. *)

val rc_parked_of : t -> tids:int list -> int
(** Number of addresses with parked deltas in the given threads' buffers
    (adoption accounting aid). *)

(** {2 Wait-free weighted-rc side tables}

    Raw weight plumbing for {!Lfrc}'s [Wait_free] mode; structure code
    never calls these. The count word holds total weight; each thread's
    {e pouch} maps addr -> (pooled weight [w], covered refs [n]) — the
    side-table stand-in for the weight bits a real implementation packs
    into each local pointer word (invariant [w >= n >= 1]; a reference
    with no pouch entry carries implicit weight 1). [wf_slot_*] does the
    same for heap pointer slots, keyed by cell id (absent = weight 1);
    callers remove a slot's entry in the same atomic step that nulls or
    overwrites the slot, so recycled cell ids never inherit stale weight.
    Every operation here is mutex-only — atomic under the simulator. *)

val wf_on : t -> bool
(** Whether this environment runs weighted (wait-free) counts. *)

val wf_weight : t -> int
(** The batch weight minted per refill/publication; [0] when off. *)

val wf_pool_add : t -> addr:int -> w:int -> n:int -> unit
(** Merge [w] weight covering [n] more references into the calling
    thread's pouch entry for [addr] (creating it if absent). *)

val wf_pool_try_share : t -> addr:int -> bool
(** If the calling thread's pouch entry for [addr] has spare weight
    ([w > n]), cover one more reference from the pool ([n + 1]) and
    return [true] — the copy fast path that never touches the heap. *)

val wf_pool_try_drop_shared : t -> addr:int -> bool
(** If the entry covers more than one reference, drop one ([n - 1]),
    leaving its weight pooled for the survivors, and return [true] — the
    destroy fast path that never touches the heap. *)

val wf_pool_weight : t -> addr:int -> int
(** Peek the pooled weight for [addr] in the calling thread's pouch
    (1 if absent — the implicit weight of an untracked reference). *)

val wf_pool_remove : t -> addr:int -> unit
(** Drop the calling thread's pouch entry for [addr] (after its weight
    landed on the heap count). *)

val wf_pool_give : t -> addr:int -> w:int -> bool
(** Merge [w] weight into an existing entry {e without} covering a new
    reference — returning unspent publication weight to a pouch that
    still holds the pointer. [false] if no entry exists (the caller must
    then return the weight through the count word instead). *)

val wf_pool_take_for_transfer : t -> addr:int -> int
(** Surrender the weight a reference to [addr] hands off to a heap slot:
    the whole pool if this was the last covered reference (entry
    removed), else 1 (leaving [w - 1 >= n - 1] pooled). 1 if absent. *)

val wf_slot_take : t -> cell:Lfrc_simmem.Cell.t -> int
(** Remove and return the weight carried by this heap slot (1 if
    untracked). Call in the same atomic step that claims or nulls the
    slot's pointer. *)

val wf_slot_set : t -> cell:Lfrc_simmem.Cell.t -> w:int -> unit
(** The slot now carries weight [w] (for the pointer just installed). *)

val wf_slot_give : t -> cell:Lfrc_simmem.Cell.t -> w:int -> unit
(** Add [w] to the slot's carried weight — [load]'s exhaustion-refill
    deposits the freshly minted batch here. *)

val wf_slot_try_borrow : t -> cell:Lfrc_simmem.Cell.t -> bool
(** If the slot carries weight >= 2, take 1 and return [true] — [load]'s
    borrow-on-handoff fast path. [false] on an exhausted slot. *)

val wf_pooled : t -> int list
(** Addresses with pouch entries, across all threads; folded into
    {!anchors}. *)

val wf_adopt_pools : t -> tids:int list -> int
(** Merge the given (crashed) threads' pouches into the calling thread's,
    so the recovery pass's adoption destroys consume the orphaned weight.
    Returns the number of entries merged. *)

val defer : t -> int -> unit
(** Enqueue a dead object for deferred freeing. Only valid under the
    [Deferred] policy. *)

val drain_deferred : t -> max:int -> int list
(** Dequeue up to [max] pending dead objects (all of them if [max < 0]). *)

val deferred_pending : t -> int

(** {2 Audit publication}

    From the moment a destroy commits to dropping a reference until the
    object is freed (or parked in the deferred queue), that reference is
    held only in the destroying thread's OCaml locals — invisible to the
    heap. The destroy registry republishes such objects (keyed by
    simulated thread id), and {!register_locals} does the same for a
    thread's local pointer variables, so the post-mortem fault auditor can
    attribute a crashed thread's leaks to its lost references instead of
    flagging them as unaccounted.

    None of this is visible to the heap: heap frames feed the tracing
    collectors and invariant checkers, whose semantics must not change
    under LFRC (a dead thread's stack is gone in the real world, and a
    counted local mid-ownership-transfer is not an extra reference).
    {!Lfrc}'s destroy paths and {!Lfrc_ops} maintain these registries;
    user code never needs to. *)

val begin_destroy : t -> int -> unit
(** Record that the current simulated thread holds an unpublished
    reference to this object while tearing it down. *)

val end_destroy : t -> int -> unit
(** The object has been freed (or handed to the deferred queue); drop it
    from the current thread's registry entry. *)

val destroying_now : t -> int list
(** All registered in-flight destroys, across threads (auditing aid). *)

val adopt_destroying : t -> tids:int list -> int list
(** Surrender and clear the destroy-registry entries of the given
    (crashed) threads. Each entry is one distinct committed-but-unfinished
    drop; duplicates are multiple pending drops and are all returned. *)

val begin_publish : ?weight:int -> t -> int -> unit
(** Record a speculative count increment the current thread has made ahead
    of a publishing CAS (store/cas/dcas raise the new pointer's count
    first). [weight] (default 1) is the size of the increment — wait-free
    mode publishes whole weight batches — and is what a recovery pass
    must compensate. No-op on null. *)

val end_publish : t -> int -> unit
(** The publication resolved — the CAS landed, or the compensating destroy
    is about to be registered; drop one occurrence. No-op on null. *)

val publishing_now : t -> int list
(** All pending publications, across threads (auditing aid). *)

val adopt_publications : t -> tids:int list -> (int * int) list
(** Surrender and clear the pending publications of the given (crashed)
    threads, one [(addr, weight)] entry per uncompensated increment. *)

type local_frame

val register_locals :
  t -> view:(unit -> int list) -> take:(unit -> int list) -> local_frame
(** Publish a thread's local pointer variables for the auditor. [view]
    reads them non-destructively (anchoring); [take] surrenders them —
    reads and clears — so a recovery pass can adopt them exactly once.
    The calling simulated thread is recorded as the frame's owner.
    Returns a token for {!unregister_locals}. *)

val unregister_locals : t -> local_frame -> unit

val adopt_locals : t -> tids:int list -> (int * int list) list
(** Take over (surrender + unregister) the local frames owned by the given
    (crashed) threads; returns [(owner tid, refs)] per frame. *)

val on_recover : t -> (crashed:int list -> int) -> unit
(** Register a recovery hook. Reclamation baselines (EBR/HP) use this to
    evict crashed threads' pinned epochs / hazard slots without the fault
    layer depending on the reclaim library. The hook returns how many
    slots/objects it recovered. *)

val run_recovery_hooks : t -> crashed:int list -> int
(** Run all registered recovery hooks; returns the summed counts. *)

val anchors : t -> int list
(** Everything the auditor may treat as a lost-reference anchor: in-flight
    destroys, the deferred queue's contents, addresses with parked or
    flush-staged rc deltas, pouched weight entries, pending publications,
    and all registered locals (with duplicates and nulls possible; the
    caller filters). *)
