(** The LFRC operations — the paper's primary contribution (Figure 2).

    Each operation maintains the paper's *weak* reference-count invariant:
    an object's count is always at least the number of pointers to it
    (never freed prematurely), and reaches zero once no pointers remain
    (never leaked, cycles excepted). Counts are raised conservatively
    *before* a pointer is created and compensated if creation fails; the
    one step plain CAS cannot do safely — incrementing the count of an
    object the thread does not yet own — is done by DCAS on the source
    pointer and the count simultaneously ({!load}).

    Local pointer variables are [int ref]s holding object ids; they must be
    initialized to null ({!Heap.null}) before first use and destroyed with
    {!destroy} when they die (the paper's step 6). {!with_locals} automates
    that discipline.

    All operations are lock-free given a lock-free DCAS substrate: every
    internal loop re-runs only if a shared value changed, and whichever
    thread changed it completed an operation.

    Under {!Env.Wait_free} the count path is stronger than lock-free:
    the count word holds the object's total {e weight} (every live
    reference carries part of it — heap slots in the environment's slot
    table, locals pooled per-thread), copy and destroy adjust it with a
    single {!Lfrc_atomics.Dcas.fetch_add} (no retry loop — [rc_retry]
    is exactly 0), and the Figure-2 DCAS survives only as {!load}'s
    fallback on a weight-exhausted slot. DESIGN.md §17 states the weight
    invariant and the fallback/recovery argument. *)

type ptr = Lfrc_simmem.Heap.ptr

exception Symbolic_bypass of string
(** Raised (with the operation name) by every operation below when called
    on a symbolic analysis environment ({!Env.create} with
    [~symbolic:true]): structure code under static analysis must reach its
    pointer operations only through its {!Ops_intf.OPS} functor argument,
    and a direct {!Lfrc} call is itself a discipline violation the
    analyser reports. *)

val alloc : Env.t -> Lfrc_simmem.Layout.t -> ptr
(** New object with reference count 1 — the count for the reference this
    function returns (the paper's constructor, step 1). *)

val try_alloc :
  Env.t -> Lfrc_simmem.Layout.t -> (ptr, [ `Out_of_memory ]) result
(** Like {!alloc}, but turns a simulated allocator failure
    ({!Lfrc_simmem.Heap.Simulated_oom}) into [Error `Out_of_memory]. The
    failure is observed before any count or cell is touched, so the caller
    can abort its operation with all reference counts intact. *)

val load : Env.t -> src:Lfrc_simmem.Cell.t -> dest:ptr ref -> unit
(** [LFRCLoad(A, p)]: load the shared pointer at [src] into the local
    variable [dest], incrementing the target's count via DCAS on
    [(src, target.rc)] so the increment cannot hit freed memory; then
    destroy the pointer [dest] previously held. *)

val store : Env.t -> dst:Lfrc_simmem.Cell.t -> ptr -> unit
(** [LFRCStore(A, v)]: raise [v]'s count, then CAS-install [v] into [dst]
    (retrying on interference) and destroy the overwritten pointer. *)

val store_alloc : Env.t -> dst:Lfrc_simmem.Cell.t -> ptr -> unit
(** [LFRCStoreAlloc]: like {!store} but consumes the caller's counted
    reference to [v] instead of raising the count — the idiom for storing
    a just-allocated object (paper Figure 1, line 35). *)

val store_alloc_from : Env.t -> dst:Lfrc_simmem.Cell.t -> ptr ref -> unit
(** Crash-safe {!store_alloc}: takes the source as a (registered-local)
    ref and clears it in the same atomic step as the winning CAS, so the
    consumed count has exactly one owner — the local or the heap slot —
    at every scheduler yield point. Structure code via {!Lfrc_ops} uses
    this form. *)

val copy : Env.t -> dest:ptr ref -> ptr -> unit
(** [LFRCCopy(p, v)]: local-to-local assignment; raises [v]'s count,
    destroys the previous content of [dest]. *)

val destroy : Env.t -> ptr -> unit
(** [LFRCDestroy(v)]: account for the death of one pointer to [v]; frees
    the object (per the environment's destroy policy) when the count
    reaches zero, destroying its outgoing pointers in turn. *)

val cas :
  Env.t -> Lfrc_simmem.Cell.t -> old_ptr:ptr -> new_ptr:ptr -> bool
(** [LFRCCAS]: the single-location simplification of {!dcas}. *)

val dcas :
  Env.t ->
  Lfrc_simmem.Cell.t ->
  Lfrc_simmem.Cell.t ->
  old0:ptr ->
  old1:ptr ->
  new0:ptr ->
  new1:ptr ->
  bool
(** [LFRCDCAS]: raise the counts of both new values, attempt the DCAS,
    then destroy either the two replaced pointers (success) or compensate
    the two increments (failure). *)

val dcas_ptr_val :
  Env.t ->
  ptr_cell:Lfrc_simmem.Cell.t ->
  val_cell:Lfrc_simmem.Cell.t ->
  old_ptr:ptr ->
  new_ptr:ptr ->
  old_val:int ->
  new_val:int ->
  bool
(** Mixed DCAS on one pointer location and one plain value location;
    reference counting is applied to the pointer side only. Not in the
    paper's Figure 2, but constructed exactly as the paper's Section 2.1
    anticipates ("straightforward to extend our methodology to support
    other operations"); the corrected Snark deque's value-claiming pops
    need it. *)

val add_to_rc : Env.t -> ptr -> int -> int
(** CAS-loop adjustment of an object's count, returning the previous
    value. Safe only when the caller holds a counted reference (the
    paper's stated precondition). Exposed for tests and extensions. *)

val pump_deferred : Env.t -> budget:int -> int
(** Free up to [budget] objects from the deferred-destroy queue; returns
    how many were freed. No-op under other policies. *)

val flush : Env.t -> int
(** Settle all deferred work: apply every parked deferred-rc delta
    (when the environment was created with [rc_epoch > 0]), freeing the
    objects whose net count lands at zero, then drain the
    deferred-destroy queue completely ([pump_deferred ~budget:(-1)]).
    Returns how many objects were freed. Surviving threads call this
    after a peer crashes — and the chaos runner forces it before an
    audit — so parked deltas and deferred garbage do not masquerade as
    leaks. *)

val finish_teardown : Env.t -> ptr -> unit
(** Finish a teardown whose owner crashed after taking the count to zero
    (crash recovery's adoption path): commit the drop of every child
    still in a slot — in wait-free mode claiming each slot's carried
    weight first — then free the husk. Callable only on a live object
    whose count is zero. *)

val with_locals : Env.t -> int -> (ptr ref array -> 'a) -> 'a
(** [with_locals env n f] runs [f] with [n] null-initialized local pointer
    variables and destroys whatever they hold on exit, normal or
    exceptional — the paper's step 6 made impossible to forget. *)

val read_ptr : Env.t -> Lfrc_simmem.Cell.t -> ptr
(** Raw read of a pointer cell *without* touching reference counts. This
    is **not** an LFRC operation: the value is unprotected and must only
    be used for comparisons (never dereferenced). Exposed for baselines
    and diagnostics. *)
