type policy =
  | Recursive
  | Iterative
  | Deferred of { budget_per_op : int }

(* Count-update mode: eager Figure-2 CASes, deferred-rc coalescing with a
   parked-adjustment budget, or wait-free weighted (split) counts where
   the count word holds total weight and the hot path is a single
   fetch-and-add. The environment stores the resolved knobs (epoch 0 =
   not deferred, weight 0 = not weighted) — the variant exists so callers
   say what they mean instead of passing magic integers. *)
type rc_mode =
  | Eager
  | Deferred_rc of { epoch : int }
  | Wait_free of { weight : int }

let rc_mode_of_epoch n = if n > 0 then Deferred_rc { epoch = n } else Eager

(* A registered thread-local pointer frame. [fr_view] reads the current
   locals non-destructively (auditor anchors); [fr_take] surrenders them —
   reads and clears — so a recovery pass can adopt a crashed owner's
   references exactly once. *)
type frame = {
  fr_id : int;
  fr_tid : int;
  fr_view : unit -> int list;
  fr_take : unit -> int list;
}

type t = {
  env_heap : Lfrc_simmem.Heap.t;
  env_dcas : Lfrc_atomics.Dcas.t;
  env_policy : policy;
  pending : int Queue.t;
  pending_lock : Mutex.t;
  (* Objects a destroy is in the middle of tearing down, keyed by simulated
     thread id. While a destroy runs, the reference being dropped is held
     only in OCaml locals, invisible to the heap; this registry republishes
     it so the post-mortem fault auditor can account for it if the
     destroying thread crashes. Deliberately NOT a heap frame: heap frames
     feed the tracing collectors and invariant checkers, whose semantics
     must not change under LFRC. *)
  destroying : (int, int list ref) Hashtbl.t;
  destroying_lock : Mutex.t;
  (* Speculative count increments not yet justified by a heap-visible
     pointer: store/cas/dcas raise the new pointer's count before the
     publishing CAS, and a crash in between leaves a +1 no destroy will
     ever compensate. Keyed by thread id so recovery can compensate a
     crashed thread's pending publications. *)
  publishing : (int, (int * int) list ref) Hashtbl.t;
  publishing_lock : Mutex.t;
  (* Thread-local pointer variables published for the same auditor (their
     heap-frame analogue, kept off the heap for the same reason). Each
     frame records its owning thread and a [take] closure that surrenders
     the locals, so recovery can adopt a crashed thread's references. *)
  mutable local_frames : frame list;
  mutable local_frame_ctr : int;
  local_frames_lock : Mutex.t;
  (* Recovery hooks: reclamation baselines (EBR/HP) register a closure at
     create time that evicts crashed threads' pinned epochs / hazard slots.
     The registry lives here — not in the fault layer — so the reclaim
     library needs no dependency on faults and vice versa. *)
  mutable recover_hooks : (crashed:int list -> int) list;
  (* Deferred-rc coalescing (PPoPP-2022-style batched count updates):
     per-thread buffers of parked ±1 count adjustments, keyed by thread id
     then by address, netted in place. The buffers live in the environment
     — not in thread-locals — so a crashed thread's parked deltas survive
     it and a later flush still applies them; until then the parked
     addresses are republished through [anchors] for the fault auditor. *)
  env_rc_epoch : int;
  rc_buffers : (int, (int, int) Hashtbl.t) Hashtbl.t;
  rc_lock : Mutex.t;
  mutable rc_park_ops : int;  (* park events since the last drain *)
  mutable rc_in_flush : bool;
  mutable rc_flush_tid : int;  (* owner of the flush flag, while held *)
  (* Deltas the in-progress flush has drained but not yet applied; keeping
     them here (not in the flusher's OCaml locals) means a crashed flusher
     loses nothing — recovery re-parks them and a later flush lands them. *)
  rc_applying : (int, int) Hashtbl.t;
  (* Wait-free weighted rc (Blelloch–Wei-style split counts): the count
     word holds the object's *total weight* — the sum of the weights
     carried by every live reference. [wf_pools] is the per-thread weight
     pouch: addr -> (pooled weight w, covered refs n), the side-table
     stand-in for the weight bits a real implementation packs into each
     local pointer word (invariant w >= n >= 1; refs with no entry carry
     implicit weight 1). [wf_slots] plays the same role for heap pointer
     slots, keyed by cell id (absent = weight 1); entries are removed in
     the same atomic step that nulls or overwrites the slot, so recycled
     cell ids can never inherit stale weight. All operations are
     mutex-only — atomic under the simulator. *)
  env_wf_weight : int;  (* batch weight; 0 = wait-free mode off *)
  wf_pools : (int, (int, int * int) Hashtbl.t) Hashtbl.t;
  wf_slots : (int, int) Hashtbl.t;
  wf_lock : Mutex.t;
  env_gc_threshold : int;
  mutable env_incremental : (Lfrc_simmem.Gc_incr.t * int) option;
  env_metrics : Lfrc_obs.Metrics.t;
  env_tracer : Lfrc_obs.Tracer.t;
  env_lineage : Lfrc_obs.Lineage.t;
  env_profile : Lfrc_obs.Profile.t;
  env_blame : Lfrc_obs.Blame.t;
  env_sanitizer : Lfrc_sanitize.Shadow.t;
  env_symbolic : bool;
}

let create ?dcas_impl ?(policy = Iterative) ?(rc_mode = Eager)
    ?(gc_threshold = 0)
    ?(metrics = Lfrc_obs.Metrics.disabled) ?(tracer = Lfrc_obs.Tracer.disabled)
    ?(lineage = Lfrc_obs.Lineage.disabled)
    ?(profile = Lfrc_obs.Profile.disabled)
    ?(blame = Lfrc_obs.Blame.disabled)
    ?(sanitize = Lfrc_sanitize.Shadow.disabled) ?(symbolic = false) heap =
  let rc_epoch, wf_weight =
    match rc_mode with
    | Eager -> (0, 0)
    | Deferred_rc { epoch } -> (max 1 epoch, 0)
    | Wait_free { weight } -> (0, max 2 weight)
  in
  let impl =
    match dcas_impl with
    | Some i -> i
    | None ->
        if Lfrc_sched.Sched.active () then Lfrc_atomics.Dcas.Atomic_step
        else Lfrc_atomics.Dcas.Striped_lock
  in
  let d = Lfrc_atomics.Dcas.create impl in
  (* A blame registry may outlive several environments; cell ids restart
     per heap, so stale stamps must be dropped before they can be blamed
     for this run's failures. *)
  Lfrc_obs.Blame.new_run blame;
  Lfrc_atomics.Dcas.attach_obs ~profile ~blame d ~metrics ~tracer;
  Lfrc_sanitize.Shadow.attach sanitize ~heap ~metrics ~tracer ~profile;
  Lfrc_atomics.Dcas.attach_sanitizer d sanitize;
  let obs_on =
    Lfrc_obs.Metrics.enabled metrics
    || Lfrc_obs.Tracer.enabled tracer
    || Lfrc_obs.Lineage.enabled lineage
  in
  let san_on = Lfrc_sanitize.Shadow.enabled sanitize in
  if obs_on || san_on then
    Lfrc_simmem.Heap.set_observer heap
      (Some
         (fun ev ->
           if obs_on then
             (match ev with
             | Lfrc_simmem.Heap.Obs_alloc { p; gen; live } ->
                 Lfrc_obs.Metrics.incr metrics "heap.allocs";
                 Lfrc_obs.Metrics.set_gauge metrics "heap.live" live;
                 Lfrc_obs.Lineage.record lineage ~addr:p
                   (Lfrc_obs.Lineage.Alloc { gen })
             | Lfrc_simmem.Heap.Obs_free { p; gen; live } ->
                 Lfrc_obs.Metrics.incr metrics "heap.frees";
                 Lfrc_obs.Metrics.set_gauge metrics "heap.live" live;
                 Lfrc_obs.Tracer.emit tracer ~arg:p Free "free";
                 Lfrc_obs.Lineage.record lineage ~addr:p
                   (Lfrc_obs.Lineage.Free { gen }));
           Lfrc_sanitize.Shadow.on_heap_event sanitize ev));
  {
    env_heap = heap;
    env_dcas = d;
    env_policy = policy;
    pending = Queue.create ();
    pending_lock = Mutex.create ();
    destroying = Hashtbl.create 8;
    destroying_lock = Mutex.create ();
    publishing = Hashtbl.create 8;
    publishing_lock = Mutex.create ();
    local_frames = [];
    local_frame_ctr = 0;
    local_frames_lock = Mutex.create ();
    recover_hooks = [];
    env_rc_epoch = rc_epoch;
    rc_buffers = Hashtbl.create 8;
    rc_lock = Mutex.create ();
    rc_park_ops = 0;
    rc_in_flush = false;
    rc_flush_tid = -1;
    rc_applying = Hashtbl.create 32;
    env_wf_weight = wf_weight;
    wf_pools = Hashtbl.create 8;
    wf_slots = Hashtbl.create 64;
    wf_lock = Mutex.create ();
    env_gc_threshold = gc_threshold;
    env_incremental = None;
    env_metrics = metrics;
    env_tracer = tracer;
    env_lineage = lineage;
    env_profile = profile;
    env_blame = blame;
    env_sanitizer = sanitize;
    env_symbolic = symbolic;
  }

let heap t = t.env_heap
let dcas t = t.env_dcas
let symbolic t = t.env_symbolic
let policy t = t.env_policy
let gc_threshold t = t.env_gc_threshold
let metrics t = t.env_metrics
let tracer t = t.env_tracer
let lineage t = t.env_lineage
let profile t = t.env_profile
let blame t = t.env_blame
let sanitizer t = t.env_sanitizer

let set_incremental t ~collector ~budget =
  t.env_incremental <- Some (collector, budget)

let incremental t = t.env_incremental

let defer t p =
  Mutex.lock t.pending_lock;
  Queue.add p t.pending;
  let depth = Queue.length t.pending in
  Mutex.unlock t.pending_lock;
  Lfrc_obs.Metrics.incr t.env_metrics "lfrc.deferred";
  Lfrc_obs.Metrics.set_gauge t.env_metrics "lfrc.deferred_depth" depth

let drain_deferred t ~max =
  Mutex.lock t.pending_lock;
  let rec go n acc =
    if (max >= 0 && n >= max) || Queue.is_empty t.pending then List.rev acc
    else go (n + 1) (Queue.pop t.pending :: acc)
  in
  let out = go 0 [] in
  let depth = Queue.length t.pending in
  Mutex.unlock t.pending_lock;
  if out <> [] then
    Lfrc_obs.Metrics.set_gauge t.env_metrics "lfrc.deferred_depth" depth;
  out

let deferred_pending t =
  Mutex.lock t.pending_lock;
  let n = Queue.length t.pending in
  Mutex.unlock t.pending_lock;
  n

(* --- deferred-rc buffers ---

   All buffer operations are mutex-only (no scheduler yield points), so in
   a simulation each is atomic with respect to interleaving: a parked delta
   is either fully visible to a concurrent drain/steal or not parked yet,
   never half-recorded. *)

let rc_mode t =
  if t.env_wf_weight > 0 then Wait_free { weight = t.env_wf_weight }
  else rc_mode_of_epoch t.env_rc_epoch

let rc_epoch t = t.env_rc_epoch
let rc_deferred t = t.env_rc_epoch > 0
let wf_on t = t.env_wf_weight > 0
let wf_weight t = t.env_wf_weight

let rc_park t ~addr ~delta =
  let tid = Lfrc_sched.Sched.tid () in
  Mutex.lock t.rc_lock;
  let buf =
    match Hashtbl.find_opt t.rc_buffers tid with
    | Some b -> b
    | None ->
        let b = Hashtbl.create 16 in
        Hashtbl.add t.rc_buffers tid b;
        b
  in
  let net = (match Hashtbl.find_opt buf addr with Some v -> v | None -> 0) + delta in
  (* A +1 and a -1 on the same address cancel right here, without ever
     touching the heap count — the coalescing fast path. *)
  if net = 0 then Hashtbl.remove buf addr else Hashtbl.replace buf addr net;
  t.rc_park_ops <- t.rc_park_ops + 1;
  let parked = t.rc_park_ops in
  Mutex.unlock t.rc_lock;
  parked

let rc_drain_all t =
  Mutex.lock t.rc_lock;
  let agg = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _tid buf ->
      Hashtbl.iter
        (fun addr v ->
          let prev =
            match Hashtbl.find_opt agg addr with Some p -> p | None -> 0
          in
          Hashtbl.replace agg addr (prev + v))
        buf)
    t.rc_buffers;
  Hashtbl.reset t.rc_buffers;
  t.rc_park_ops <- 0;
  Mutex.unlock t.rc_lock;
  Hashtbl.fold (fun addr v acc -> if v = 0 then acc else (addr, v) :: acc) agg []

let rc_steal t ~addr =
  Mutex.lock t.rc_lock;
  let stolen = ref 0 in
  Hashtbl.iter
    (fun _tid buf ->
      match Hashtbl.find_opt buf addr with
      | Some v ->
          stolen := !stolen + v;
          Hashtbl.remove buf addr
      | None -> ())
    t.rc_buffers;
  Mutex.unlock t.rc_lock;
  !stolen

let rc_parked t =
  Mutex.lock t.rc_lock;
  let addrs =
    Hashtbl.fold
      (fun _tid buf acc ->
        Hashtbl.fold (fun addr _ acc -> addr :: acc) buf acc)
      t.rc_buffers []
  in
  Mutex.unlock t.rc_lock;
  addrs

let rc_try_begin_flush t =
  Mutex.lock t.rc_lock;
  let won = not t.rc_in_flush in
  if won then begin
    t.rc_in_flush <- true;
    t.rc_flush_tid <- Lfrc_sched.Sched.tid ()
  end;
  Mutex.unlock t.rc_lock;
  won

let rc_end_flush t =
  Mutex.lock t.rc_lock;
  t.rc_in_flush <- false;
  t.rc_flush_tid <- -1;
  Mutex.unlock t.rc_lock

(* --- crash-safe flush staging ---

   A flush drains parked deltas into [rc_applying] (atomically, under the
   same lock) and removes each entry only once its heap effect has landed.
   The table — not the flusher's OCaml locals — is the authoritative record
   of drained-but-unapplied deltas, so a flusher that crashes mid-apply
   loses nothing: [rc_recover_flush] re-parks the leftovers and releases
   the flush flag, and the next flush lands them. *)

let rc_drain_into_applying t =
  Mutex.lock t.rc_lock;
  let had = t.rc_park_ops > 0 || Hashtbl.length t.rc_buffers > 0 in
  Hashtbl.iter
    (fun _tid buf ->
      Hashtbl.iter
        (fun addr v ->
          let prev =
            match Hashtbl.find_opt t.rc_applying addr with
            | Some p -> p
            | None -> 0
          in
          let net = prev + v in
          if net = 0 then Hashtbl.remove t.rc_applying addr
          else Hashtbl.replace t.rc_applying addr net)
        buf)
    t.rc_buffers;
  Hashtbl.reset t.rc_buffers;
  t.rc_park_ops <- 0;
  Mutex.unlock t.rc_lock;
  had

let rc_applying_snapshot t =
  Mutex.lock t.rc_lock;
  let l = Hashtbl.fold (fun addr v acc -> (addr, v) :: acc) t.rc_applying [] in
  Mutex.unlock t.rc_lock;
  l

(* Steal any parked delta for [addr] from the per-thread buffers AND the
   applying table, returning the net. Used by the zero-detect path so a
   concurrent flush's staged delta cannot resurrect or double-free. *)
let rc_absorb t ~addr =
  Mutex.lock t.rc_lock;
  let stolen = ref 0 in
  Hashtbl.iter
    (fun _tid buf ->
      match Hashtbl.find_opt buf addr with
      | Some v ->
          stolen := !stolen + v;
          Hashtbl.remove buf addr
      | None -> ())
    t.rc_buffers;
  (match Hashtbl.find_opt t.rc_applying addr with
  | Some v ->
      stolen := !stolen + v;
      Hashtbl.remove t.rc_applying addr
  | None -> ());
  Mutex.unlock t.rc_lock;
  !stolen

let rc_apply_done t ~addr =
  Mutex.lock t.rc_lock;
  Hashtbl.remove t.rc_applying addr;
  Mutex.unlock t.rc_lock

(* Fold any freshly parked deltas for [addr] into its staged entry and
   return the staged net. The entry stays staged — the caller unstages
   with [rc_apply_done] once the heap CAS lands — so a crash in between
   loses nothing. *)
let rc_restage t ~addr =
  Mutex.lock t.rc_lock;
  let net =
    ref
      (match Hashtbl.find_opt t.rc_applying addr with Some v -> v | None -> 0)
  in
  Hashtbl.iter
    (fun _tid buf ->
      match Hashtbl.find_opt buf addr with
      | Some v ->
          net := !net + v;
          Hashtbl.remove buf addr
      | None -> ())
    t.rc_buffers;
  if !net = 0 then Hashtbl.remove t.rc_applying addr
  else Hashtbl.replace t.rc_applying addr !net;
  Mutex.unlock t.rc_lock;
  !net

(* If (and only if) the thread holding the flush flag crashed, re-park its
   drained-but-unapplied deltas and release the flag. A live flusher always
   clears both itself (Fun.protect), so a stuck flag implies a dead owner.
   Returns the number of re-parked deltas. *)
let rc_recover_flush t ~crashed =
  Mutex.lock t.rc_lock;
  let n = ref 0 in
  if t.rc_in_flush && List.mem t.rc_flush_tid crashed then begin
    let buf =
      match Hashtbl.find_opt t.rc_buffers t.rc_flush_tid with
      | Some b -> b
      | None ->
          let b = Hashtbl.create 16 in
          Hashtbl.add t.rc_buffers t.rc_flush_tid b;
          b
    in
    Hashtbl.iter
      (fun addr v ->
        incr n;
        let prev =
          match Hashtbl.find_opt buf addr with Some p -> p | None -> 0
        in
        let net = prev + v in
        if net = 0 then Hashtbl.remove buf addr
        else Hashtbl.replace buf addr net)
      t.rc_applying;
    Hashtbl.reset t.rc_applying;
    if !n > 0 then t.rc_park_ops <- t.rc_park_ops + !n;
    t.rc_in_flush <- false;
    t.rc_flush_tid <- -1
  end;
  Mutex.unlock t.rc_lock;
  !n

let rc_parked_of t ~tids =
  Mutex.lock t.rc_lock;
  let n = ref 0 in
  List.iter
    (fun tid ->
      match Hashtbl.find_opt t.rc_buffers tid with
      | Some buf -> n := !n + Hashtbl.length buf
      | None -> ())
    tids;
  Mutex.unlock t.rc_lock;
  !n

(* --- wait-free weighted-rc side tables ---

   Mutex-only, like the rc buffers above: each operation is atomic with
   respect to simulated interleaving, which is exactly the atomicity a
   real implementation gets from packing the weight bits into the pointer
   word it updates with one RMW. *)

let wf_pool_of t tid =
  match Hashtbl.find_opt t.wf_pools tid with
  | Some p -> p
  | None ->
      let p = Hashtbl.create 16 in
      Hashtbl.add t.wf_pools tid p;
      p

let wf_pool_add t ~addr ~w ~n =
  let tid = Lfrc_sched.Sched.tid () in
  Mutex.lock t.wf_lock;
  let pool = wf_pool_of t tid in
  (match Hashtbl.find_opt pool addr with
  | Some (w0, n0) -> Hashtbl.replace pool addr (w0 + w, n0 + n)
  | None -> Hashtbl.add pool addr (w, n));
  Mutex.unlock t.wf_lock

let wf_pool_try_share t ~addr =
  let tid = Lfrc_sched.Sched.tid () in
  Mutex.lock t.wf_lock;
  let ok =
    match Hashtbl.find_opt (wf_pool_of t tid) addr with
    | Some (w, n) when w > n ->
        Hashtbl.replace (wf_pool_of t tid) addr (w, n + 1);
        true
    | _ -> false
  in
  Mutex.unlock t.wf_lock;
  ok

let wf_pool_try_drop_shared t ~addr =
  let tid = Lfrc_sched.Sched.tid () in
  Mutex.lock t.wf_lock;
  let ok =
    match Hashtbl.find_opt (wf_pool_of t tid) addr with
    | Some (w, n) when n > 1 ->
        Hashtbl.replace (wf_pool_of t tid) addr (w, n - 1);
        true
    | _ -> false
  in
  Mutex.unlock t.wf_lock;
  ok

let wf_pool_weight t ~addr =
  let tid = Lfrc_sched.Sched.tid () in
  Mutex.lock t.wf_lock;
  let w =
    match Hashtbl.find_opt (wf_pool_of t tid) addr with
    | Some (w, _) -> w
    | None -> 1
  in
  Mutex.unlock t.wf_lock;
  w

let wf_pool_remove t ~addr =
  let tid = Lfrc_sched.Sched.tid () in
  Mutex.lock t.wf_lock;
  Hashtbl.remove (wf_pool_of t tid) addr;
  Mutex.unlock t.wf_lock

let wf_pool_give t ~addr ~w =
  let tid = Lfrc_sched.Sched.tid () in
  Mutex.lock t.wf_lock;
  let ok =
    match Hashtbl.find_opt (wf_pool_of t tid) addr with
    | Some (w0, n0) ->
        Hashtbl.replace (wf_pool_of t tid) addr (w0 + w, n0);
        true
    | None -> false
  in
  Mutex.unlock t.wf_lock;
  ok

let wf_pool_take_for_transfer t ~addr =
  let tid = Lfrc_sched.Sched.tid () in
  Mutex.lock t.wf_lock;
  let pool = wf_pool_of t tid in
  let w =
    match Hashtbl.find_opt pool addr with
    | Some (w, 1) ->
        Hashtbl.remove pool addr;
        w
    | Some (w, n) ->
        (* Other covered refs keep their pooled weight; the transferred
           reference leaves with the minimum (w >= n keeps every
           remaining ref covered). *)
        Hashtbl.replace pool addr (w - 1, n - 1);
        1
    | None -> 1
  in
  Mutex.unlock t.wf_lock;
  w

let wf_slot_take t ~cell =
  let id = Lfrc_simmem.Cell.id cell in
  Mutex.lock t.wf_lock;
  let w =
    match Hashtbl.find_opt t.wf_slots id with
    | Some w ->
        Hashtbl.remove t.wf_slots id;
        w
    | None -> 1
  in
  Mutex.unlock t.wf_lock;
  w

let wf_slot_set t ~cell ~w =
  let id = Lfrc_simmem.Cell.id cell in
  Mutex.lock t.wf_lock;
  if w = 1 then Hashtbl.remove t.wf_slots id
  else Hashtbl.replace t.wf_slots id w;
  Mutex.unlock t.wf_lock

let wf_slot_give t ~cell ~w =
  let id = Lfrc_simmem.Cell.id cell in
  Mutex.lock t.wf_lock;
  let w0 =
    match Hashtbl.find_opt t.wf_slots id with Some w0 -> w0 | None -> 1
  in
  Hashtbl.replace t.wf_slots id (w0 + w);
  Mutex.unlock t.wf_lock

let wf_slot_try_borrow t ~cell =
  let id = Lfrc_simmem.Cell.id cell in
  Mutex.lock t.wf_lock;
  let ok =
    match Hashtbl.find_opt t.wf_slots id with
    | Some w when w >= 2 ->
        if w - 1 = 1 then Hashtbl.remove t.wf_slots id
        else Hashtbl.replace t.wf_slots id (w - 1);
        true
    | _ -> false
  in
  Mutex.unlock t.wf_lock;
  ok

let wf_pooled t =
  Mutex.lock t.wf_lock;
  let addrs =
    Hashtbl.fold
      (fun _tid pool acc ->
        Hashtbl.fold (fun addr _ acc -> addr :: acc) pool acc)
      t.wf_pools []
  in
  Mutex.unlock t.wf_lock;
  addrs

let wf_adopt_pools t ~tids =
  let me = Lfrc_sched.Sched.tid () in
  Mutex.lock t.wf_lock;
  let mine = wf_pool_of t me in
  let merged = ref 0 in
  List.iter
    (fun tid ->
      if tid <> me then
        match Hashtbl.find_opt t.wf_pools tid with
        | Some pool ->
            Hashtbl.iter
              (fun addr (w, n) ->
                incr merged;
                match Hashtbl.find_opt mine addr with
                | Some (w0, n0) -> Hashtbl.replace mine addr (w0 + w, n0 + n)
                | None -> Hashtbl.add mine addr (w, n))
              pool;
            Hashtbl.remove t.wf_pools tid
        | None -> ())
    tids;
  Mutex.unlock t.wf_lock;
  !merged

let begin_destroy t p =
  let tid = Lfrc_sched.Sched.tid () in
  Mutex.lock t.destroying_lock;
  (match Hashtbl.find_opt t.destroying tid with
  | Some l -> l := p :: !l
  | None -> Hashtbl.add t.destroying tid (ref [ p ]));
  Mutex.unlock t.destroying_lock

let end_destroy t p =
  let tid = Lfrc_sched.Sched.tid () in
  Mutex.lock t.destroying_lock;
  (match Hashtbl.find_opt t.destroying tid with
  | Some l ->
      let rec remove = function
        | [] -> []
        | x :: rest -> if x = p then rest else x :: remove rest
      in
      l := remove !l
  | None -> ());
  Mutex.unlock t.destroying_lock

let destroying_now t =
  Mutex.lock t.destroying_lock;
  let ds = Hashtbl.fold (fun _ l acc -> !l @ acc) t.destroying [] in
  Mutex.unlock t.destroying_lock;
  ds

(* Surrender the destroy-registry entries of crashed threads: each entry is
   one distinct committed-but-unfinished drop (duplicates are multiple
   pending drops — do NOT dedupe). *)
let adopt_destroying t ~tids =
  Mutex.lock t.destroying_lock;
  let out = ref [] in
  List.iter
    (fun tid ->
      match Hashtbl.find_opt t.destroying tid with
      | Some l ->
          out := !l @ !out;
          Hashtbl.remove t.destroying tid
      | None -> ())
    tids;
  Mutex.unlock t.destroying_lock;
  !out

let begin_publish ?(weight = 1) t p =
  if p <> Lfrc_simmem.Heap.null then begin
    let tid = Lfrc_sched.Sched.tid () in
    Mutex.lock t.publishing_lock;
    (match Hashtbl.find_opt t.publishing tid with
    | Some l -> l := (p, weight) :: !l
    | None -> Hashtbl.add t.publishing tid (ref [ (p, weight) ]));
    Mutex.unlock t.publishing_lock
  end

let end_publish t p =
  if p <> Lfrc_simmem.Heap.null then begin
    let tid = Lfrc_sched.Sched.tid () in
    Mutex.lock t.publishing_lock;
    (match Hashtbl.find_opt t.publishing tid with
    | Some l ->
        let rec remove = function
          | [] -> []
          | (x, _) :: rest when x = p -> rest
          | x :: rest -> x :: remove rest
        in
        l := remove !l
    | None -> ());
    Mutex.unlock t.publishing_lock
  end

let publishing_now t =
  Mutex.lock t.publishing_lock;
  let ps =
    Hashtbl.fold (fun _ l acc -> List.map fst !l @ acc) t.publishing []
  in
  Mutex.unlock t.publishing_lock;
  ps

let adopt_publications t ~tids =
  Mutex.lock t.publishing_lock;
  let out = ref [] in
  List.iter
    (fun tid ->
      match Hashtbl.find_opt t.publishing tid with
      | Some l ->
          out := !l @ !out;
          Hashtbl.remove t.publishing tid
      | None -> ())
    tids;
  Mutex.unlock t.publishing_lock;
  !out

type local_frame = int

let register_locals t ~view ~take =
  let tid = Lfrc_sched.Sched.tid () in
  Mutex.lock t.local_frames_lock;
  t.local_frame_ctr <- t.local_frame_ctr + 1;
  let id = t.local_frame_ctr in
  t.local_frames <-
    { fr_id = id; fr_tid = tid; fr_view = view; fr_take = take }
    :: t.local_frames;
  Mutex.unlock t.local_frames_lock;
  id

let unregister_locals t id =
  Mutex.lock t.local_frames_lock;
  t.local_frames <- List.filter (fun f -> f.fr_id <> id) t.local_frames;
  Mutex.unlock t.local_frames_lock

(* Take over the local frames of crashed threads: surrender each frame's
   references and unregister it, returning (owner tid, refs) per frame. *)
let adopt_locals t ~tids =
  Mutex.lock t.local_frames_lock;
  let mine, rest =
    List.partition (fun f -> List.mem f.fr_tid tids) t.local_frames
  in
  t.local_frames <- rest;
  Mutex.unlock t.local_frames_lock;
  List.map (fun f -> (f.fr_tid, f.fr_take ())) mine

let on_recover t hook = t.recover_hooks <- hook :: t.recover_hooks

let run_recovery_hooks t ~crashed =
  List.fold_left (fun acc hook -> acc + hook ~crashed) 0 t.recover_hooks

let rc_applying_addrs t =
  Mutex.lock t.rc_lock;
  let addrs = Hashtbl.fold (fun addr _ acc -> addr :: acc) t.rc_applying [] in
  Mutex.unlock t.rc_lock;
  addrs

let anchors t =
  Mutex.lock t.local_frames_lock;
  let frames = t.local_frames in
  Mutex.unlock t.local_frames_lock;
  let locals = List.concat_map (fun f -> f.fr_view ()) frames in
  Mutex.lock t.pending_lock;
  let pend = Queue.fold (fun acc p -> p :: acc) [] t.pending in
  Mutex.unlock t.pending_lock;
  (* A parked -1 means a reference died whose count adjustment has not
     landed; a parked +1 means a published pointer's count is still short.
     Either way the address is in the middle of an accounting transfer, so
     it is republished for the auditor exactly like an in-flight destroy.
     The same goes for flush-staged deltas and pre-CAS publications. *)
  destroying_now t @ pend
  @ rc_parked t
  @ rc_applying_addrs t
  @ wf_pooled t
  @ publishing_now t @ locals
