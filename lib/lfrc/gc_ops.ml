module Heap = Lfrc_simmem.Heap
module Gc_trace = Lfrc_simmem.Gc_trace
module Gc_incr = Lfrc_simmem.Gc_incr
module Dcas = Lfrc_atomics.Dcas

let name = "gc"

type local = Heap.ptr ref

type ctx = {
  ctx_env : Env.t;
  locals : local list ref; (* the shadow stack *)
  frame : Heap.frame;
}

let make_ctx env =
  let locals = ref [] in
  let frame =
    Heap.register_frame (Env.heap env) (fun () -> List.map ( ! ) !locals)
  in
  { ctx_env = env; locals; frame }

let dispose_ctx ctx = Heap.unregister_frame (Env.heap ctx.ctx_env) ctx.frame

let env ctx = ctx.ctx_env

let declare ctx =
  let l = ref Heap.null in
  ctx.locals := l :: !(ctx.locals);
  l

let retire ctx local =
  local := Heap.null;
  ctx.locals := List.filter (fun l -> l != local) !(ctx.locals)

let get local = !local

let d ctx = Env.dcas ctx.ctx_env

(* Incremental-collector obligations: shade overwritten pointers (SATB
   write barrier) and advance the running cycle a little on every
   mutating operation. *)

let incr_of ctx = Env.incremental ctx.ctx_env

let poll ctx =
  match incr_of ctx with
  | Some (gc, budget) -> Gc_incr.poll gc ~budget
  | None -> ()

let barrier ctx overwritten =
  match incr_of ctx with
  | Some (gc, _) -> Gc_incr.barrier gc overwritten
  | None -> ()

(* GC-dependent mode has no count bookkeeping to settle; the nearest
   analogue of a quiescent-point flush is advancing the incremental
   collector. *)
let flush ctx = poll ctx

let load ctx cell local = local := Dcas.read (d ctx) cell

let store ctx cell p =
  (match incr_of ctx with
  | None -> Dcas.write (d ctx) cell p
  | Some _ ->
      (* The barrier needs the overwritten value, so the write becomes a
         CAS loop that captures it — the same shape LFRCStore uses. *)
      let rec go () =
        let old = Dcas.read (d ctx) cell in
        if Dcas.cas (d ctx) cell old p then barrier ctx old else go ()
      in
      go ());
  poll ctx

let store_alloc ctx cell local =
  store ctx cell !local;
  local := Heap.null

let copy _ctx local p = local := p

let set_null _ctx local = local := Heap.null

let cas ctx cell ~old_ptr ~new_ptr =
  let ok = Dcas.cas (d ctx) cell old_ptr new_ptr in
  if ok then barrier ctx old_ptr;
  poll ctx;
  ok

let dcas ctx c0 c1 ~old0 ~old1 ~new0 ~new1 =
  let ok = Dcas.dcas (d ctx) c0 c1 ~old0 ~old1 ~new0 ~new1 in
  if ok then begin
    barrier ctx old0;
    barrier ctx old1
  end;
  poll ctx;
  ok

let dcas_ptr_val ctx ~ptr_cell ~val_cell ~old_ptr ~new_ptr ~old_val ~new_val =
  let ok =
    Dcas.dcas (d ctx) ptr_cell val_cell ~old0:old_ptr ~old1:old_val
      ~new0:new_ptr ~new1:new_val
  in
  if ok then barrier ctx old_ptr;
  poll ctx;
  ok

let alloc ctx layout local =
  (* Stop-the-world collection happens before allocating, never after:
     the fresh object would be unreachable until the local is assigned.
     Collection is only taken when it is safe — under the simulator every
     other thread is parked at a yield point with its shadow stack
     registered. The incremental collector needs no such care: the new
     object is born black. *)
  (match incr_of ctx with
  | Some _ -> ()
  | None ->
      let threshold = Env.gc_threshold ctx.ctx_env in
      if threshold > 0 && Lfrc_sched.Sched.active () then
        ignore (Gc_trace.maybe_collect (Env.heap ctx.ctx_env) ~threshold));
  let p = Heap.alloc (Env.heap ctx.ctx_env) layout in
  (* The local (a registered frame root) must hold the object before the
     collector is polled: a cycle that starts and finishes its marking
     inside the poll would otherwise never see the fresh object. *)
  local := p;
  match incr_of ctx with
  | Some (gc, budget) ->
      Gc_incr.on_alloc gc p;
      Gc_incr.poll gc ~budget
  | None -> ()

let try_alloc ctx layout local =
  match alloc ctx layout local with
  | () -> true
  | exception Heap.Simulated_oom -> false

let read_val ctx cell = Dcas.read (d ctx) cell
let write_val ctx cell v = Dcas.write (d ctx) cell v
let cas_val ctx cell old_v new_v = Dcas.cas (d ctx) cell old_v new_v
