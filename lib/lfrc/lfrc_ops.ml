module Heap = Lfrc_simmem.Heap

let name = "lfrc"

type local = Heap.ptr ref

(* Locals hold counted references, so LFRC itself never needs them
   published. The registration with {!Env} (not with the heap — heap
   frames would change what the tracing collectors and invariant checkers
   see) exists for the fault auditor: when a simulated thread crashes, its
   registered locals are the "lost references" that account for any
   objects it leaks. *)
type ctx = {
  ctx_env : Env.t;
  locals : local list ref;
  frame : Env.local_frame;
}

let make_ctx env =
  let locals = ref [] in
  let frame =
    Env.register_locals env
      ~view:(fun () -> List.map ( ! ) !locals)
      ~take:(fun () ->
        (* Surrender the locals to an adopter: read and clear in one
           atomic step so the references change owner exactly once. *)
        List.map
          (fun l ->
            let v = !l in
            l := Heap.null;
            v)
          !locals)
  in
  { ctx_env = env; locals; frame }

let dispose_ctx ctx =
  (* Context disposal is a forced settle point: the thread is done, so its
     parked deferred-rc deltas must land (and any dead objects free) while
     its locals registration still anchors them for the auditor. *)
  if Env.rc_deferred ctx.ctx_env then ignore (Lfrc.flush ctx.ctx_env);
  Env.unregister_locals ctx.ctx_env ctx.frame

let flush ctx = ignore (Lfrc.flush ctx.ctx_env)

let env ctx = ctx.ctx_env

let declare ctx =
  let l = ref Heap.null in
  ctx.locals := l :: !(ctx.locals);
  l

let retire ctx local =
  (* Take the reference out of the frame first: clearing the local is
     atomic with destroy's own re-anchoring (registry entry or parked
     delta), so at every yield point exactly one owner holds it — were the
     frame still showing the pointer during the destroy cascade, a crash
     there would make an adopter drop it a second time. *)
  let p = !local in
  local := Heap.null;
  ctx.locals := List.filter (fun l -> l != local) !(ctx.locals);
  Lfrc.destroy ctx.ctx_env p

let get local = !local

let load ctx cell local = Lfrc.load ctx.ctx_env ~src:cell ~dest:local

let store ctx cell p = Lfrc.store ctx.ctx_env ~dst:cell p

let store_alloc ctx cell local =
  (* The allocation reference moves from the local to the cell atomically
     with the winning CAS (inside [store_alloc_from]), never owned by
     both or neither. *)
  Lfrc.store_alloc_from ctx.ctx_env ~dst:cell local

let copy ctx local p = Lfrc.copy ctx.ctx_env ~dest:local p

let set_null ctx local =
  (* Same single-owner discipline as [retire]. *)
  let p = !local in
  local := Heap.null;
  Lfrc.destroy ctx.ctx_env p

let cas ctx cell ~old_ptr ~new_ptr =
  Lfrc.cas ctx.ctx_env cell ~old_ptr ~new_ptr

let dcas ctx c0 c1 ~old0 ~old1 ~new0 ~new1 =
  Lfrc.dcas ctx.ctx_env c0 c1 ~old0 ~old1 ~new0 ~new1

let dcas_ptr_val ctx ~ptr_cell ~val_cell ~old_ptr ~new_ptr ~old_val ~new_val =
  Lfrc.dcas_ptr_val ctx.ctx_env ~ptr_cell ~val_cell ~old_ptr ~new_ptr
    ~old_val ~new_val

let alloc ctx layout local =
  let p = Lfrc.alloc ctx.ctx_env layout in
  (* The previous content dies; the new object's count of 1 is carried by
     the local. Plain assignment plus destroy keeps the counts exact. *)
  let old = !local in
  local := p;
  Lfrc.destroy ctx.ctx_env old

let try_alloc ctx layout local =
  match Lfrc.try_alloc ctx.ctx_env layout with
  | Error `Out_of_memory -> false
  | Ok p ->
      let old = !local in
      local := p;
      Lfrc.destroy ctx.ctx_env old;
      true

let read_val ctx cell = Lfrc_atomics.Dcas.read (Env.dcas ctx.ctx_env) cell

let write_val ctx cell v =
  Lfrc_atomics.Dcas.write (Env.dcas ctx.ctx_env) cell v

let cas_val ctx cell old_v new_v =
  Lfrc_atomics.Dcas.cas (Env.dcas ctx.ctx_env) cell old_v new_v
