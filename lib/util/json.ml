type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

(* Single mutable cursor over the input; the parser is strict (no
   trailing garbage) and recursive-descent, one function per grammar
   production. *)
type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    &&
    match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c.pos (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then (
    c.pos <- c.pos + n;
    value)
  else fail c.pos (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> fail c.pos "unterminated escape"
        | Some e ->
            c.pos <- c.pos + 1;
            (match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.s then
                  fail c.pos "truncated \\u escape";
                let hex = String.sub c.s c.pos 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some n -> n
                  | None -> fail c.pos "bad \\u escape"
                in
                c.pos <- c.pos + 4;
                (* Encode the code unit as UTF-8; surrogate pairs are not
                   recombined (the writers never emit them). *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then (
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
                else (
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
            | _ -> fail (c.pos - 1) "bad escape");
            go ())
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.s && is_num_char c.s.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let tok = String.sub c.s start (c.pos - start) in
  match float_of_string_opt tok with
  | Some f -> f
  | None -> fail start (Printf.sprintf "bad number %S" tok)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '{' -> parse_obj c
  | Some '[' -> parse_list c
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c.pos (Printf.sprintf "unexpected %C" ch)

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then (
    c.pos <- c.pos + 1;
    Obj [])
  else
    let rec fields acc =
      skip_ws c;
      let key = parse_string c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
          c.pos <- c.pos + 1;
          fields ((key, v) :: acc)
      | Some '}' ->
          c.pos <- c.pos + 1;
          Obj (List.rev ((key, v) :: acc))
      | _ -> fail c.pos "expected ',' or '}'"
    in
    fields []

and parse_list c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then (
    c.pos <- c.pos + 1;
    List [])
  else
    let rec elems acc =
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
          c.pos <- c.pos + 1;
          elems (v :: acc)
      | Some ']' ->
          c.pos <- c.pos + 1;
          List (List.rev (v :: acc))
      | _ -> fail c.pos "expected ',' or ']'"
    in
    elems []

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
      else Ok v
  | exception Fail (pos, msg) ->
      Error (Printf.sprintf "%s at offset %d" msg pos)

let parse_file file =
  match In_channel.with_open_text file In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let path keys v =
  List.fold_left
    (fun acc key -> Option.bind acc (member key))
    (Some v) keys

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let obj_fields = function Obj fields -> fields | _ -> []
