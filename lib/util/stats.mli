(** Summary statistics for benchmark and experiment measurements. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val summarize : float array -> summary
(** [summarize xs] computes the summary of a non-empty sample. The input
    array is not modified. *)

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]]; [sorted] must be sorted
    ascending. Linear interpolation between ranks. *)

val quantile : float array -> float -> float
(** [quantile xs q] is {!percentile} over an unsorted non-empty sample:
    sorts a private copy first. *)

val merge : summary -> summary -> summary
(** Combine the summaries of two {e disjoint} samples, as when aggregating
    per-environment metrics. [n], [mean], [stddev], [min] and [max] are
    exact (pooled variance); the quantiles are the size-weighted average
    of the inputs' quantiles — an approximation, since the raw samples are
    gone. A summary with [n = 0] is an identity element. *)

val pp_summary : Format.formatter -> summary -> unit

(** Fixed-width histogram used for pause-time distributions (E8). *)
module Histogram : sig
  type t

  val create : buckets:float array -> t
  (** [create ~buckets] uses [buckets] as ascending upper bounds; an
      implicit overflow bucket catches the rest. *)

  val add : t -> float -> unit
  val count : t -> int
  val bucket_counts : t -> (string * int) list
  (** Label/count pairs, labels rendered from bounds. *)
end
