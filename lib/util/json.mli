(** Minimal JSON reader for the benchmark baselines.

    The repository hand-rolls its JSON {e writers} (metrics snapshots,
    bench files, analyzer reports) because the dependency budget has no
    JSON library; [bench --compare] needs the matching {e reader} to diff
    a fresh run against a committed baseline. This is a small strict
    recursive-descent parser over the subset those writers emit — which
    is to say all of RFC 8259 except [\uXXXX] surrogate pairs (decoded
    as-is into the raw code unit's UTF-8 bytes). Numbers are [float]s,
    matching the writers' output. Not a streaming parser; inputs are a
    few hundred KB at most. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** fields in document order *)

val parse : string -> (t, string) result
(** [parse s] reads exactly one JSON value (trailing whitespace allowed).
    The error string carries the byte offset of the failure. *)

val parse_file : string -> (t, string) result
(** [parse] of the file's contents; [Error] also covers I/O failure. *)

(** {2 Focused accessors}

    Total functions used to walk a parsed baseline; each returns [None]
    on a shape mismatch so comparison code degrades field-by-field
    instead of raising mid-report. *)

val member : string -> t -> t option
(** Field of an [Obj], [None] otherwise. *)

val path : string list -> t -> t option
(** Nested [member]. *)

val to_num : t -> float option
val to_str : t -> string option
val to_list : t -> t list option

val obj_fields : t -> (string * t) list
(** Fields of an [Obj], [[]] for any other constructor. *)
