(** Monotonic wall-clock timing helpers for benchmarks. *)

val now_ns : unit -> int
(** Monotonic clock reading in nanoseconds. *)

val time_ns : (unit -> 'a) -> 'a * int
(** [time_ns f] runs [f] and returns its result with the elapsed time. *)

val ns_per_op : total_ns:int -> ops:int -> float

val time_per_op_ns : iters:int -> (unit -> unit) -> float
(** Wall-clock nanoseconds per call, after a small warmup of
    [min 1000 (iters / 10)] calls — the shared timing loop of the
    experiment harness and the benchmark runner. *)
