type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. Float.of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.)) 0.0 xs in
    sqrt (acc /. Float.of_int (n - 1))
  end

let percentile sorted q =
  let n = Array.length sorted in
  assert (n > 0);
  if n = 1 then sorted.(0)
  else begin
    let rank = q *. Float.of_int (n - 1) in
    let lo = Float.to_int (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. Float.of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let summarize xs =
  assert (Array.length xs > 0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    p50 = percentile sorted 0.5;
    p90 = percentile sorted 0.9;
    p99 = percentile sorted 0.99;
    max = sorted.(Array.length sorted - 1);
  }

let quantile xs q =
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  percentile sorted q

let merge a b =
  if a.n = 0 then b
  else if b.n = 0 then a
  else begin
    let na = Float.of_int a.n and nb = Float.of_int b.n in
    let n = na +. nb in
    let mean = ((na *. a.mean) +. (nb *. b.mean)) /. n in
    (* Pooled sum of squared deviations about the combined mean. *)
    let ss s k m =
      ((Float.of_int k -. 1.0) *. s *. s)
      +. (Float.of_int k *. ((m -. mean) ** 2.))
    in
    let stddev =
      if a.n + b.n < 2 then 0.0
      else sqrt ((ss a.stddev a.n a.mean +. ss b.stddev b.n b.mean) /. (n -. 1.0))
    in
    let weighted qa qb = ((na *. qa) +. (nb *. qb)) /. n in
    {
      n = a.n + b.n;
      mean;
      stddev;
      min = Float.min a.min b.min;
      p50 = weighted a.p50 b.p50;
      p90 = weighted a.p90 b.p90;
      p99 = weighted a.p99 b.p99;
      max = Float.max a.max b.max;
    }
  end

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3g sd=%.3g min=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g" s.n
    s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

module Histogram = struct
  type t = { bounds : float array; counts : int array }

  let create ~buckets =
    { bounds = Array.copy buckets; counts = Array.make (Array.length buckets + 1) 0 }

  let add t x =
    let n = Array.length t.bounds in
    let rec find i = if i >= n || x <= t.bounds.(i) then i else find (i + 1) in
    let i = find 0 in
    t.counts.(i) <- t.counts.(i) + 1

  let count t = Array.fold_left ( + ) 0 t.counts

  let bucket_counts t =
    let n = Array.length t.bounds in
    List.init (n + 1) (fun i ->
        let label =
          if i = 0 then Printf.sprintf "<=%.3g" t.bounds.(0)
          else if i = n then Printf.sprintf ">%.3g" t.bounds.(n - 1)
          else Printf.sprintf "<=%.3g" t.bounds.(i)
        in
        (label, t.counts.(i)))
end
