let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let time_ns f =
  let t0 = now_ns () in
  let r = f () in
  let t1 = now_ns () in
  (r, t1 - t0)

let ns_per_op ~total_ns ~ops =
  if ops = 0 then 0.0 else Float.of_int total_ns /. Float.of_int ops

let time_per_op_ns ~iters f =
  for _ = 1 to min 1000 (iters / 10) do
    f ()
  done;
  let t0 = now_ns () in
  for _ = 1 to iters do
    f ()
  done;
  let t1 = now_ns () in
  Float.of_int (t1 - t0) /. Float.of_int iters
