module Cell = Lfrc_simmem.Cell
module Heap = Lfrc_simmem.Heap
module Sched = Lfrc_sched.Sched
module Metrics = Lfrc_obs.Metrics
module Tracer = Lfrc_obs.Tracer
module Profile = Lfrc_obs.Profile

(* The scheduler caps simulations at 62 threads; fixed-width vector
   clocks keep every join/copy allocation-free. *)
let max_threads = 64

type kind = Race | Use_after_free | Use_after_retire | Aba

let kind_name = function
  | Race -> "race"
  | Use_after_free -> "use-after-free"
  | Use_after_retire -> "use-after-retire"
  | Aba -> "aba"

let kind_counter = function
  | Race -> "san.races"
  | Use_after_free -> "san.uaf"
  | Use_after_retire -> "san.uar"
  | Aba -> "san.aba_harmful"

type access = {
  a_tid : int;
  a_thread : string;
  a_site : string;
  a_step : int;
}

(* A plain access paired with the accessor's clock component at the time —
   the happens-before test is [clk <= vc_other.(a_tid)]. *)
type plain = { pa : access; clk : int }

type cell_kind = K_rc | K_ptr of int | K_val of int | K_root

type cshadow = {
  mutable c_kind : cell_kind;
  mutable c_owner : Heap.ptr; (* 0 for roots / unbound cells *)
  sync : int array; (* release clock: joined in by atomic readers *)
  mutable last_write : plain option; (* plain-access epochs (val cells) *)
  plain_reads : (int, plain) Hashtbl.t; (* tid -> last plain read *)
  mutable aba_value : int; (* mirror of the slot, atomic updates only *)
  mutable aba_version : int; (* bumped on every value-changing update *)
  aba_reads : (int, int * int * int) Hashtbl.t;
      (* tid -> (value read, version then, target generation then) *)
}

type liveness = Live | Dying of int (* destroyer tid *) | Dead

type oshadow = { mutable status : liveness; mutable o_gen : int }

type finding = {
  f_kind : kind;
  f_cell : int;
  f_slot : string;
  f_addr : Heap.ptr;
  f_gen : int;
  f_access : access;
  f_prev : access option;
  f_count : int;
  f_message : string;
}

type totals = {
  checks : int;
  races : int;
  uaf : int;
  uar : int;
  aba : int;
  aba_harmful : int;
}

type entry = { base : finding; mutable n : int }

type state = {
  vcs : int array array; (* per-thread vector clocks *)
  cells : (int, cshadow) Hashtbl.t; (* cell id -> shadow *)
  objs : (Heap.ptr, oshadow) Hashtbl.t;
  mutable heap : Heap.t option;
  mutable metrics : Metrics.t;
  mutable tracer : Tracer.t;
  mutable profile : Profile.t;
  mutable checks : int;
  mutable races : int;
  mutable uaf : int;
  mutable uar : int;
  mutable aba_all : int;
  mutable aba_harmful : int;
  dedup : (string, entry) Hashtbl.t;
  mutable order : string list; (* dedup keys, reversed insertion order *)
  aba_sites : (string, int ref) Hashtbl.t;
}

type t = Disabled | On of state

let disabled = Disabled

let enabled = function Disabled -> false | On _ -> true

let create () =
  On
    {
      vcs = Array.init max_threads (fun _ -> Array.make max_threads 0);
      cells = Hashtbl.create 256;
      objs = Hashtbl.create 64;
      heap = None;
      metrics = Metrics.disabled;
      tracer = Tracer.disabled;
      profile = Profile.disabled;
      checks = 0;
      races = 0;
      uaf = 0;
      uar = 0;
      aba_all = 0;
      aba_harmful = 0;
      dedup = Hashtbl.create 16;
      order = [];
      aba_sites = Hashtbl.create 16;
    }

let attach t ~heap ~metrics ~tracer ~profile =
  match t with
  | Disabled -> ()
  | On st ->
      st.heap <- Some heap;
      st.metrics <- metrics;
      st.tracer <- tracer;
      st.profile <- profile

(* --- vector clocks --- *)

let tick st tid = st.vcs.(tid).(tid) <- st.vcs.(tid).(tid) + 1

let acquire st tid cs =
  let v = st.vcs.(tid) in
  for i = 0 to max_threads - 1 do
    if cs.sync.(i) > v.(i) then v.(i) <- cs.sync.(i)
  done

let release st tid cs =
  let v = st.vcs.(tid) in
  for i = 0 to max_threads - 1 do
    if v.(i) > cs.sync.(i) then cs.sync.(i) <- v.(i)
  done

(* --- shadow state --- *)

let new_cshadow kind owner =
  {
    c_kind = kind;
    c_owner = owner;
    sync = Array.make max_threads 0;
    last_write = None;
    plain_reads = Hashtbl.create 4;
    aba_value = 0;
    aba_version = 0;
    aba_reads = Hashtbl.create 4;
  }

let shadow_of st c =
  let id = Cell.id c in
  match Hashtbl.find_opt st.cells id with
  | Some s -> s
  | None ->
      (* Never seen bound to an object: a heap root (or a cell allocated
         before the sanitizer attached). Atomic-pointer semantics. *)
      let s = new_cshadow K_root 0 in
      Hashtbl.add st.cells id s;
      s

let bind_object st heap p gen =
  (match Hashtbl.find_opt st.objs p with
  | Some os ->
      os.status <- Live;
      os.o_gen <- gen
  | None -> Hashtbl.add st.objs p { status = Live; o_gen = gen });
  Heap.iter_cells heap p (fun ~kind ~index cell ->
      let ck =
        match kind with
        | `Rc -> K_rc
        | `Ptr -> K_ptr index
        | `Val -> K_val index
      in
      let init = match kind with `Rc -> 1 | `Ptr | `Val -> 0 in
      match Hashtbl.find_opt st.cells (Cell.id cell) with
      | Some s ->
          (* Recycled id: this incarnation starts with fresh plain-access
             epochs (its first write must not race the previous object's
             life), but the ABA version history is deliberately kept —
             value recurrence across a recycle is exactly the hazard. *)
          s.c_kind <- ck;
          s.c_owner <- p;
          s.last_write <- None;
          Hashtbl.reset s.plain_reads;
          s.aba_value <- init
      | None ->
          let s = new_cshadow ck p in
          s.aba_value <- init;
          Hashtbl.add st.cells (Cell.id cell) s)

let on_heap_event t ev =
  match t with
  | Disabled -> ()
  | On st -> (
      match ev with
      | Heap.Obs_alloc { p; gen; _ } -> (
          match st.heap with Some h -> bind_object st h p gen | None -> ())
      | Heap.Obs_free { p; gen; _ } -> (
          match Hashtbl.find_opt st.objs p with
          | Some os ->
              os.status <- Dead;
              os.o_gen <- gen
          | None -> Hashtbl.add st.objs p { status = Dead; o_gen = gen }))

let note_dying t p =
  match t with
  | Disabled -> ()
  | On st ->
      if p > 0 then begin
        let tid = Sched.tid () in
        match Hashtbl.find_opt st.objs p with
        | Some os -> (
            match os.status with
            (* Dying -> Dying re-marks are legitimate ownership handoffs
               (deferred-queue pump, crash adoption): the new caller becomes
               the destroyer whose teardown reads are exempt. *)
            | Live | Dying _ -> os.status <- Dying tid
            | Dead -> ())
        | None -> Hashtbl.add st.objs p { status = Dying tid; o_gen = 0 }
      end

(* --- findings --- *)

let access_now st =
  let tid = Sched.tid () in
  {
    a_tid = tid;
    a_thread = Sched.name_of tid;
    a_site = Profile.current_site st.profile;
    a_step = Sched.steps_so_far ();
  }

let slot_label cs =
  match cs.c_kind with
  | K_rc -> "rc"
  | K_ptr i -> Printf.sprintf "ptr[%d]" i
  | K_val i -> Printf.sprintf "val[%d]" i
  | K_root -> "root"

let pp_access ppf a =
  Format.fprintf ppf "%s@step %d [site %s]" a.a_thread a.a_step a.a_site

let owner_gen st cs =
  if cs.c_owner = 0 then 0
  else
    match Hashtbl.find_opt st.objs cs.c_owner with
    | Some os -> os.o_gen
    | None -> 0

(* Current heap incarnation of the object behind a pointer value. *)
let gen_of st v =
  if v <= 0 then 0
  else
    match st.heap with
    | Some h when v <= Heap.high_water_id h -> Heap.generation h v
    | _ -> 0

(* [obj] overrides the finding's subject object: ABA on a root slot has
   no owning object, but the recycled node behind the stale value is what
   the witness (and its lineage excerpt) should be about. Messages carry
   no raw cell ids — those are process-global counter values, and leaving
   them out keeps witnesses byte-stable run to run. *)
let emit st kind ?(obj = 0) ~cell_id ~cs ~access ~prev ~what () =
  (match kind with
  | Race -> st.races <- st.races + 1
  | Use_after_free -> st.uaf <- st.uaf + 1
  | Use_after_retire -> st.uar <- st.uar + 1
  | Aba -> st.aba_harmful <- st.aba_harmful + 1);
  Metrics.incr st.metrics (kind_counter kind);
  Tracer.emit st.tracer ~arg:cell_id Instant ("san." ^ kind_name kind);
  let slot = slot_label cs in
  let subject, subject_gen =
    if obj > 0 then (obj, gen_of st obj) else (cs.c_owner, owner_gen st cs)
  in
  let target =
    if cs.c_owner = 0 then slot
    else
      Printf.sprintf "obj#%d(gen %d).%s" cs.c_owner (owner_gen st cs) slot
  in
  let message =
    let b = Buffer.create 128 in
    let ppf = Format.formatter_of_buffer b in
    Format.fprintf ppf "%s: %s of %s by %a" (kind_name kind) what target
      pp_access access;
    (match prev with
    | Some p -> Format.fprintf ppf " conflicts with %a" pp_access p
    | None -> ());
    Format.pp_print_flush ppf ();
    Buffer.contents b
  in
  let key =
    Printf.sprintf "%s|%s|%s|%s|%s" (kind_name kind) slot access.a_site
      (match prev with Some p -> p.a_site | None -> "-")
      what
  in
  match Hashtbl.find_opt st.dedup key with
  | Some e -> e.n <- e.n + 1
  | None ->
      let base =
        {
          f_kind = kind;
          f_cell = cell_id;
          f_slot = slot;
          f_addr = subject;
          f_gen = subject_gen;
          f_access = access;
          f_prev = prev;
          f_count = 1;
          f_message = message;
        }
      in
      Hashtbl.add st.dedup key { base; n = 1 };
      st.order <- key :: st.order

(* Liveness discipline: holding a counted reference guarantees the object
   is live, so any pointer/value access to a dead object — or to a dying
   one by a thread other than its destroyer — breaks the LFRC discipline.
   Rc cells are exempt (type-stable memory; Figure 2 relies on it). *)
let check_liveness st ~cell_id cs access ~what =
  if cs.c_owner > 0 then
    match Hashtbl.find_opt st.objs cs.c_owner with
    | Some { status = Dead; _ } ->
        emit st Use_after_free ~cell_id ~cs ~access ~prev:None ~what ()
    | Some { status = Dying d; _ } when d <> access.a_tid ->
        emit st Use_after_retire ~cell_id ~cs ~access ~prev:None ~what ()
    | _ -> ()

(* --- plain-access race detection (FastTrack-style epochs) --- *)

let plain_read st ~cell_id cs access =
  let v = st.vcs.(access.a_tid) in
  (match cs.last_write with
  | Some { pa; clk } when pa.a_tid <> access.a_tid && clk > v.(pa.a_tid) ->
      emit st Race ~cell_id ~cs ~access ~prev:(Some pa) ~what:"plain read" ()
  | _ -> ());
  Hashtbl.replace cs.plain_reads access.a_tid
    { pa = access; clk = v.(access.a_tid) }

let plain_write st ~cell_id cs access =
  let v = st.vcs.(access.a_tid) in
  (match cs.last_write with
  | Some { pa; clk } when pa.a_tid <> access.a_tid && clk > v.(pa.a_tid) ->
      emit st Race ~cell_id ~cs ~access ~prev:(Some pa) ~what:"plain write" ()
  | _ -> ());
  Hashtbl.iter
    (fun u ({ pa; clk } : plain) ->
      if u <> access.a_tid && clk > v.(u) then
        emit st Race ~cell_id ~cs ~access ~prev:(Some pa) ~what:"plain write" ())
    cs.plain_reads;
  (* The write epoch dominates: earlier reads are either ordered before it
     or were just reported. *)
  Hashtbl.reset cs.plain_reads;
  cs.last_write <- Some { pa = access; clk = v.(access.a_tid) }

(* --- ABA tracking on pointer slots --- *)

let is_pointer_slot cs =
  match cs.c_kind with K_ptr _ | K_root -> true | K_rc | K_val _ -> false

let aba_note_read st cs v tid =
  if is_pointer_slot cs then
    Hashtbl.replace cs.aba_reads tid (v, cs.aba_version, gen_of st v)

let aba_update cs new_v =
  if is_pointer_slot cs && new_v <> cs.aba_value then begin
    cs.aba_value <- new_v;
    cs.aba_version <- cs.aba_version + 1
  end

let bump_site st site =
  match Hashtbl.find_opt st.aba_sites site with
  | Some r -> incr r
  | None -> Hashtbl.add st.aba_sites site (ref 1)

(* A successful CAS whose expected value was last read by this thread at an
   older slot version: the value left and came back — an ABA occurrence.
   Harmful when the object behind the value was recycled in between (its
   generation changed): the comparison then matched two different objects,
   the hazard the paper's counted references exist to prevent. *)
let aba_check st ~cell_id cs ~old_v access =
  if is_pointer_slot cs then
    match Hashtbl.find_opt cs.aba_reads access.a_tid with
    | Some (v, ver, gen) when v = old_v && ver < cs.aba_version ->
        st.aba_all <- st.aba_all + 1;
        Metrics.incr st.metrics "san.aba";
        bump_site st access.a_site;
        Hashtbl.remove cs.aba_reads access.a_tid;
        if old_v > 0 && gen_of st old_v <> gen then
          emit st Aba ~obj:old_v ~cell_id ~cs ~access ~prev:None
            ~what:(Printf.sprintf "recycled-pointer CAS (old=#%d)" old_v)
            ()
        else Tracer.emit st.tracer ~arg:cell_id Instant "san.aba"
    | _ -> ()

(* --- access hooks --- *)

let on_read t c v =
  match t with
  | Disabled -> ()
  | On st -> (
      st.checks <- st.checks + 1;
      let cell_id = Cell.id c in
      let cs = shadow_of st c in
      let access = access_now st in
      tick st access.a_tid;
      (match cs.c_kind with
      | K_rc -> acquire st access.a_tid cs
      | K_ptr _ | K_root ->
          check_liveness st ~cell_id cs access ~what:"atomic read";
          acquire st access.a_tid cs;
          aba_note_read st cs v access.a_tid
      | K_val _ ->
          check_liveness st ~cell_id cs access ~what:"plain read";
          plain_read st ~cell_id cs access))

let on_write t c v =
  match t with
  | Disabled -> ()
  | On st -> (
      st.checks <- st.checks + 1;
      let cell_id = Cell.id c in
      let cs = shadow_of st c in
      let access = access_now st in
      tick st access.a_tid;
      (match cs.c_kind with
      | K_rc -> release st access.a_tid cs
      | K_ptr _ | K_root ->
          check_liveness st ~cell_id cs access ~what:"atomic write";
          release st access.a_tid cs;
          aba_update cs v
      | K_val _ ->
          check_liveness st ~cell_id cs access ~what:"plain write";
          plain_write st ~cell_id cs access))

let on_rmw t c =
  match t with
  | Disabled -> ()
  | On st ->
      st.checks <- st.checks + 1;
      let cell_id = Cell.id c in
      let cs = shadow_of st c in
      let access = access_now st in
      tick st access.a_tid;
      if cs.c_kind <> K_rc then
        check_liveness st ~cell_id cs access ~what:"atomic rmw";
      acquire st access.a_tid cs;
      release st access.a_tid cs

let cas_one st ~cell_id cs ~old_v ~new_v ~ok access =
  if cs.c_kind <> K_rc then
    check_liveness st ~cell_id cs access
      ~what:(if ok then "CAS" else "failed CAS");
  (* Even a failed CAS observed the current value: acquire; only a
     successful one publishes: release. *)
  acquire st access.a_tid cs;
  if ok then begin
    aba_check st ~cell_id cs ~old_v access;
    release st access.a_tid cs;
    aba_update cs new_v
  end

let on_cas t c ~old_v ~new_v ~ok =
  match t with
  | Disabled -> ()
  | On st ->
      st.checks <- st.checks + 1;
      let cell_id = Cell.id c in
      let cs = shadow_of st c in
      let access = access_now st in
      cas_one st ~cell_id cs ~old_v ~new_v ~ok access;
      tick st access.a_tid

let on_dcas t c0 c1 ~old0 ~old1 ~new0 ~new1 ~ok =
  match t with
  | Disabled -> ()
  | On st ->
      st.checks <- st.checks + 2;
      let access = access_now st in
      let id0 = Cell.id c0 and id1 = Cell.id c1 in
      cas_one st ~cell_id:id0 (shadow_of st c0) ~old_v:old0 ~new_v:new0 ~ok
        access;
      cas_one st ~cell_id:id1 (shadow_of st c1) ~old_v:old1 ~new_v:new1 ~ok
        access;
      tick st access.a_tid

(* --- results --- *)

let findings t =
  match t with
  | Disabled -> []
  | On st ->
      List.rev_map
        (fun key ->
          let e = Hashtbl.find st.dedup key in
          { e.base with f_count = e.n })
        st.order

let totals t =
  match t with
  | Disabled ->
      { checks = 0; races = 0; uaf = 0; uar = 0; aba = 0; aba_harmful = 0 }
  | On st ->
      {
        checks = st.checks;
        races = st.races;
        uaf = st.uaf;
        uar = st.uar;
        aba = st.aba_all;
        aba_harmful = st.aba_harmful;
      }

let aba_by_site t =
  match t with
  | Disabled -> []
  | On st ->
      Hashtbl.fold (fun site r acc -> (site, !r) :: acc) st.aba_sites []
      |> List.sort (fun (sa, a) (sb, b) -> compare (b, sa) (a, sb))

let pp_finding ppf f =
  if f.f_count > 1 then
    Format.fprintf ppf "%s (x%d)" f.f_message f.f_count
  else Format.pp_print_string ppf f.f_message
