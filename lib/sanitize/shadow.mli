(** LFRC-San: a TSan-style shadow memory over the simulated heap.

    The sanitizer mirrors every {!Lfrc_simmem.Cell} touched through the
    atomics substrate with shadow state — vector clocks for plain-access
    race detection, per-object liveness epochs for use-after-free /
    use-after-retire against the LFRC discipline, and per-slot version
    counters for ABA occurrences — and checks each access {e at the moment
    it happens}, under the deterministic scheduler. Findings are collected
    (never raised), deduplicated by (class, cell, racing sites), and carry
    enough context (thread names, scheduler steps, profiler call sites) to
    serve as replayable witnesses.

    Classification per cell, bound from heap allocation events:
    - {b rc cells} are type-stable (the paper's Figure 2 load must be able
      to address the rc of a concurrently-freed object), so they are
      exempt from liveness checks and synchronize like atomics.
    - {b pointer cells} (and heap roots) are atomics: reads acquire the
      cell's sync clock, writes and successful CAS/DCAS release into it,
      failed CAS still acquires (it observed the value). Value-changing
      updates bump the slot's ABA version.
    - {b value cells} are plain data: reads and writes through
      [read_val]/[write_val] are race-checked FastTrack-style against the
      last plain write and the per-thread plain reads; [cas_val]
      synchronizes like an atomic and is not treated as a plain access.

    The disabled singleton makes every hook a single branch, preserving the
    substrate's sanitizer-off cost. The sanitizer assumes the
    deterministic single-domain scheduler ([Atomic_step] substrate); it
    performs no locking of its own. *)

module Cell := Lfrc_simmem.Cell
module Heap := Lfrc_simmem.Heap

type t

type kind = Race | Use_after_free | Use_after_retire | Aba

val kind_name : kind -> string
(** ["race"] / ["use-after-free"] / ["use-after-retire"] / ["aba"]. *)

type access = {
  a_tid : int;
  a_thread : string;  (** scheduler thread name at the access *)
  a_site : string;  (** innermost profiler frame, or ["?"] unprofiled *)
  a_step : int;  (** [Sched.steps_so_far] at the access *)
}

type finding = {
  f_kind : kind;
  f_cell : int;  (** cell id *)
  f_slot : string;  (** e.g. ["val[0]"], ["ptr[1]"], ["root"] *)
  f_addr : Heap.ptr;
      (** the object the finding is about: the accessed cell's owner —
          except for ABA on a root slot, where it is the recycled object
          behind the stale value (roots have no owner); 0 when neither
          applies *)
  f_gen : int;  (** that object's incarnation when the finding fired *)
  f_access : access;  (** the access that tripped the check *)
  f_prev : access option;  (** the conflicting earlier access, when known *)
  f_count : int;  (** occurrences folded into this deduplicated finding *)
  f_message : string;
}

type totals = {
  checks : int;  (** accesses inspected *)
  races : int;
  uaf : int;
  uar : int;
  aba : int;  (** all ABA occurrences, benign included *)
  aba_harmful : int;  (** the old value's object was recycled in between *)
}

val create : unit -> t
(** A fresh enabled sanitizer. Bind it to an environment's heap and
    observability with {!attach} (done by [Env.create ~sanitize]). *)

val disabled : t
val enabled : t -> bool

val attach :
  t ->
  heap:Heap.t ->
  metrics:Lfrc_obs.Metrics.t ->
  tracer:Lfrc_obs.Tracer.t ->
  profile:Lfrc_obs.Profile.t ->
  unit
(** Bind the heap (for generation queries and cell classification) and the
    observability sinks: every finding class lands in [san.*] counters and
    emits an [Instant] tracer event; ABA occurrences are attributed to the
    profiler's innermost call-site label. *)

(** {2 Lifecycle hooks} (wired by [Env.create ~sanitize]) *)

val on_heap_event : t -> Heap.obs_event -> unit
(** Classify/bind an object's cells on [Obs_alloc] (resetting their shadow
    plain-access state — recycling), mark it dead on [Obs_free]. *)

val note_dying : t -> Heap.ptr -> unit
(** The calling thread observed this object's count reach zero and now owns
    its destruction: accesses to its pointer/value cells by {e other}
    threads before the free are use-after-retire. *)

(** {2 Access hooks} (wired into {!Lfrc_atomics.Dcas}; one branch when
    disabled) *)

val on_read : t -> Cell.t -> int -> unit
(** [on_read t c v]: [v] is the value read (recorded for ABA). *)

val on_write : t -> Cell.t -> int -> unit

val on_rmw : t -> Cell.t -> unit
(** Atomic read-modify-write ([fetch_add]): acquire + release. *)

val on_cas : t -> Cell.t -> old_v:int -> new_v:int -> ok:bool -> unit

val on_dcas :
  t ->
  Cell.t ->
  Cell.t ->
  old0:int ->
  old1:int ->
  new0:int ->
  new1:int ->
  ok:bool ->
  unit

(** {2 Results} *)

val findings : t -> finding list
(** Deduplicated findings in first-occurrence order. Harmful ABA, races and
    liveness violations only — benign ABA occurrences are counted
    ({!totals}, {!aba_by_site}) but are not findings. *)

val totals : t -> totals

val aba_by_site : t -> (string * int) list
(** ABA occurrences per profiler call-site label, most first. *)

val pp_finding : Format.formatter -> finding -> unit
