(** The simulated manual-memory heap.

    Objects are arrays of {!Cell}s addressed by integer ids ("pointers"):
    id 0 is the null pointer. [free] recycles ids through per-shape free
    lists, exactly like a real allocator reuses addresses — which is what
    makes the ABA problem and use-after-free reproducible and detectable in
    this environment (the hazards the paper's methodology eliminates).

    Allocation and free are mutex-protected; the paper itself notes that
    [malloc]/[free] are not lock-free and excludes them from the
    lock-freedom claim (its footnote 1). All other operations are wait-free
    cell accesses.

    The heap also carries the machinery a *tracing* collector needs (object
    marks, registered global roots, per-thread shadow-stack frames), so the
    same heap can run in GC-dependent mode under {!Gc_trace}. *)

type t

type ptr = int
(** Object id; 0 is null. *)

exception Use_after_free of { id : int; gen : int; op : string }
exception Double_free of { id : int }
exception Invalid_pointer of { value : int; op : string }

exception Simulated_oom
(** Raised by {!alloc} when an installed {!set_alloc_hook} answers [true] —
    the allocator ran out of memory. Raised before the heap is touched, so
    the failed allocation has no side effects. *)

val null : ptr

val create : ?name:string -> unit -> t

val name : t -> string

(* Allocation *)

val alloc : t -> Layout.t -> ptr
(** New object with reference count 1 (cell 0), all pointer slots null, all
    value slots zero — the paper's constructor behaviour. *)

val free : t -> ptr -> unit
(** Return an object to the allocator. Raises {!Double_free} if it is
    already free. In safe mode, poisons all cells first. *)

val set_alloc_hook : t -> (unit -> bool) option -> unit
(** Fault-injection hook consulted at the top of every {!alloc}; answering
    [true] makes that allocation raise {!Simulated_oom} without mutating
    the heap. [None] (the default) disables injection. *)

type obs_event =
  | Obs_alloc of { p : ptr; gen : int; live : int }
  | Obs_free of { p : ptr; gen : int; live : int }
      (** [live] is the live-object count just after the event — the
          allocation high-water mark is its running maximum. [gen] is the
          object's incarnation number ({!generation}), so a lifecycle
          recorder can tell a recycled address's histories apart. *)

val set_observer : t -> (obs_event -> unit) option -> unit
(** Observability hook fired after every successful {!alloc} and {!free},
    outside the heap lock (the observer may read heap state). One
    observer per heap; {!Lfrc_core.Env.create} installs the metrics /
    tracing observer when observability is enabled. Unrelated to
    {!set_alloc_hook}, which injects faults rather than observing. *)

val is_live : t -> ptr -> bool
val layout : t -> ptr -> Layout.t
val generation : t -> ptr -> int
(** How many times this id has been allocated; lets tests detect that a
    pointer they held was recycled (ABA evidence). *)

(* Cell access *)

val rc_cell : t -> ptr -> Cell.t
(** The reference-count cell. No liveness check: LFRCLoad's DCAS must be
    able to address the rc of an object that may concurrently be freed
    (the DCAS then fails on the pointer comparison). *)

val ptr_cell : t -> ptr -> int -> Cell.t
(** [ptr_cell h p i] is pointer slot [i]. Raises {!Use_after_free} when the
    object is dead (safe mode): holding a counted reference must guarantee
    liveness. *)

val val_cell : t -> ptr -> int -> Cell.t
(** Value slot [i]; liveness-checked like {!ptr_cell}. *)

val n_ptr_slots : t -> ptr -> int

val iter_cells :
  t ->
  ptr ->
  (kind:[ `Rc | `Ptr | `Val ] -> index:int -> Cell.t -> unit) ->
  unit
(** Visit every cell of the object's {e current} layout with its role and
    slot index (rc first, then pointers, then values). Works on dead
    objects — shadow-memory observers use this from the {!set_observer}
    hook to classify cells at allocation time. *)

(* Roots: global pointer variables (e.g. a deque's hats live in its object,
   but the handle to the deque object itself is a root). *)

val root : t -> ?name:string -> unit -> Cell.t
(** A new global pointer cell initialized to null, registered with the
    heap for tracing and leak checks. *)

val release_root : t -> Cell.t -> unit
(** Unregister; the caller is responsible for having destroyed / nulled the
    pointer it held. *)

val roots : t -> Cell.t list

(* Shadow-stack frames: how GC-dependent mode exposes thread-local pointer
   variables to the tracing collector (the role a real collector fills by
   scanning registers and stacks — the very OS support the paper wants to
   avoid needing). *)

type frame

val register_frame : t -> (unit -> ptr list) -> frame
val unregister_frame : t -> frame -> unit
val iter_frame_roots : t -> (ptr -> unit) -> unit

(* Marks, used by the tracing collector and the leak reporter. *)

val set_mark : t -> ptr -> bool -> unit
val get_mark : t -> ptr -> bool

val set_mark_version : t -> ptr -> int -> unit
val get_mark_version : t -> ptr -> int
(** Versioned marks for incremental collection: stamping with the cycle
    number makes "clear all marks" free (bump the number instead of
    touching every object). Independent of the boolean marks. *)

val high_water_id : t -> int
(** The largest object id ever allocated; all valid ids are in
    [1, high_water_id]. O(1). *)

(* Iteration and statistics *)

val iter_live : t -> (ptr -> unit) -> unit

val ptr_slot_values : t -> ptr -> ptr list
(** Current contents of a live object's pointer slots. *)

type stats = {
  allocs : int;
  frees : int;
  live : int;
  peak_live : int;
  live_cells : int;  (** total cells across live objects: footprint proxy *)
}

val stats : t -> stats
val live_count : t -> int
val pp_stats : Format.formatter -> stats -> unit
