type ptr = int

exception Use_after_free of { id : int; gen : int; op : string }
exception Double_free of { id : int }
exception Invalid_pointer of { value : int; op : string }
exception Simulated_oom

let null = 0

type obj = {
  id : int;
  mutable obj_layout : Layout.t;
  mutable live : bool;
  mutable gen : int;
  mutable mark : bool;
  mutable mark_v : int;
  mutable cells : Cell.t array; (* sized for the largest layout this id has carried *)
}

type frame = int

type t = {
  heap_name : string;
  lock : Mutex.t;
  objs : obj array Atomic.t; (* index id-1; grown under lock *)
  n_objs : int Atomic.t;
  free_by_shape : (int * int, int list ref) Hashtbl.t;
  mutable root_cells : Cell.t list;
  mutable frames : (frame * (unit -> ptr list)) list;
  mutable frame_ctr : int;
  allocs : int Atomic.t;
  frees : int Atomic.t;
  live : int Atomic.t;
  peak : int Atomic.t;
  live_cells : int Atomic.t;
  mutable alloc_hook : (unit -> bool) option;
  mutable observer : (obs_event -> unit) option;
}

and obs_event =
  | Obs_alloc of { p : ptr; gen : int; live : int }
  | Obs_free of { p : ptr; gen : int; live : int }

let create ?(name = "heap") () =
  {
    heap_name = name;
    lock = Mutex.create ();
    objs = Atomic.make [||];
    n_objs = Atomic.make 0;
    free_by_shape = Hashtbl.create 16;
    root_cells = [];
    frames = [];
    frame_ctr = 0;
    allocs = Atomic.make 0;
    frees = Atomic.make 0;
    live = Atomic.make 0;
    peak = Atomic.make 0;
    live_cells = Atomic.make 0;
    alloc_hook = None;
    observer = None;
  }

let name t = t.heap_name

let set_alloc_hook t h = t.alloc_hook <- h

let set_observer t f = t.observer <- f

(* Observers run outside the heap lock (they may read heap state). *)
let notify t ev = match t.observer with Some f -> f ev | None -> ()

let get_obj t p op =
  if p <= 0 || p > Atomic.get t.n_objs then
    raise (Invalid_pointer { value = p; op });
  (Atomic.get t.objs).(p - 1)

let live_obj t p op =
  let o = get_obj t p op in
  if (not o.live) && !Config.safety then
    raise (Use_after_free { id = o.id; gen = o.gen; op });
  o

let is_live t p =
  if p <= 0 || p > Atomic.get t.n_objs then false
  else (Atomic.get t.objs).(p - 1).live

let layout t p = (live_obj t p "layout").obj_layout
let generation t p = (get_obj t p "generation").gen

let shape (l : Layout.t) = (l.Layout.n_ptrs, l.Layout.n_vals)

let init_cells o (l : Layout.t) =
  let n = Layout.n_cells l in
  if Array.length o.cells < n then begin
    let bigger =
      Array.init n (fun i ->
          if i < Array.length o.cells then o.cells.(i)
          else Cell.make ~frozen:true 0)
    in
    o.cells <- bigger
  end;
  (* rc = 1 for the reference returned by alloc; pointers null; values 0 *)
  Cell.thaw o.cells.(0) 1;
  for i = 1 to n - 1 do
    Cell.thaw o.cells.(i) 0
  done

let bump_peak t =
  let l = Atomic.get t.live in
  let rec go () =
    let p = Atomic.get t.peak in
    if l > p && not (Atomic.compare_and_set t.peak p l) then go ()
  in
  go ()

let alloc t l =
  (* Consulted before any mutation: a simulated OOM leaves the heap exactly
     as it was, so callers can degrade gracefully. *)
  (match t.alloc_hook with
  | Some f when f () -> raise Simulated_oom
  | _ -> ());
  Mutex.lock t.lock;
  let o =
    match Hashtbl.find_opt t.free_by_shape (shape l) with
    | Some ({ contents = id :: rest } as cell_list) ->
        cell_list := rest;
        let o = (Atomic.get t.objs).(id - 1) in
        o.gen <- o.gen + 1;
        o.obj_layout <- l;
        o
    | Some { contents = [] } | None ->
        let id = Atomic.get t.n_objs + 1 in
        let o =
          {
            id;
            obj_layout = l;
            live = false;
            gen = 1;
            mark = false;
            mark_v = 0;
            cells = [||];
          }
        in
        let arr = Atomic.get t.objs in
        if id > Array.length arr then begin
          let bigger = Array.make (max 64 (2 * Array.length arr)) o in
          Array.blit arr 0 bigger 0 (Array.length arr);
          Atomic.set t.objs bigger
        end;
        (Atomic.get t.objs).(id - 1) <- o;
        Atomic.set t.n_objs id;
        o
  in
  init_cells o l;
  o.live <- true;
  o.mark <- false;
  Atomic.incr t.allocs;
  Atomic.incr t.live;
  ignore (Atomic.fetch_and_add t.live_cells (Layout.n_cells l));
  bump_peak t;
  let live_now = Atomic.get t.live in
  Mutex.unlock t.lock;
  notify t (Obs_alloc { p = o.id; gen = o.gen; live = live_now });
  o.id

let free t p =
  let o = get_obj t p "free" in
  Mutex.lock t.lock;
  if not o.live then begin
    Mutex.unlock t.lock;
    raise (Double_free { id = o.id })
  end;
  o.live <- false;
  for i = 0 to Layout.n_cells o.obj_layout - 1 do
    Cell.freeze o.cells.(i)
  done;
  let key = shape o.obj_layout in
  (match Hashtbl.find_opt t.free_by_shape key with
  | Some lst -> lst := o.id :: !lst
  | None -> Hashtbl.add t.free_by_shape key (ref [ o.id ]));
  Atomic.incr t.frees;
  Atomic.decr t.live;
  ignore (Atomic.fetch_and_add t.live_cells (-Layout.n_cells o.obj_layout));
  let live_now = Atomic.get t.live in
  Mutex.unlock t.lock;
  notify t (Obs_free { p; gen = o.gen; live = live_now })

let rc_cell t p =
  let o = get_obj t p "rc_cell" in
  o.cells.(Layout.rc_slot)

let ptr_cell t p i =
  let o = live_obj t p "ptr_cell" in
  o.cells.(Layout.ptr_slot o.obj_layout i)

let val_cell t p i =
  let o = live_obj t p "val_cell" in
  o.cells.(Layout.val_slot o.obj_layout i)

let n_ptr_slots t p = (live_obj t p "n_ptr_slots").obj_layout.Layout.n_ptrs

(* No liveness check: shadow-memory observers classify a dead object's
   cells too (that is how they catch reads through stale cell handles). *)
let iter_cells t p f =
  let o = get_obj t p "iter_cells" in
  let l = o.obj_layout in
  f ~kind:`Rc ~index:0 o.cells.(Layout.rc_slot);
  for i = 0 to l.Layout.n_ptrs - 1 do
    f ~kind:`Ptr ~index:i o.cells.(Layout.ptr_slot l i)
  done;
  for i = 0 to l.Layout.n_vals - 1 do
    f ~kind:`Val ~index:i o.cells.(Layout.val_slot l i)
  done

(* Roots *)

let root t ?name () =
  ignore name;
  let c = Cell.make 0 in
  Mutex.lock t.lock;
  t.root_cells <- c :: t.root_cells;
  Mutex.unlock t.lock;
  c

let release_root t c =
  Mutex.lock t.lock;
  t.root_cells <- List.filter (fun c' -> Cell.id c' <> Cell.id c) t.root_cells;
  Mutex.unlock t.lock

let roots t = t.root_cells

(* Frames *)

let register_frame t f =
  Mutex.lock t.lock;
  t.frame_ctr <- t.frame_ctr + 1;
  let id = t.frame_ctr in
  t.frames <- (id, f) :: t.frames;
  Mutex.unlock t.lock;
  id

let unregister_frame t id =
  Mutex.lock t.lock;
  t.frames <- List.filter (fun (i, _) -> i <> id) t.frames;
  Mutex.unlock t.lock

let iter_frame_roots t f =
  List.iter (fun (_, g) -> List.iter f (g ())) t.frames

(* Marks *)

let set_mark t p m = (get_obj t p "set_mark").mark <- m
let get_mark t p = (get_obj t p "get_mark").mark

let set_mark_version t p v = (get_obj t p "set_mark_version").mark_v <- v
let get_mark_version t p = (get_obj t p "get_mark_version").mark_v

let high_water_id (t : t) = Atomic.get t.n_objs

(* Iteration and stats *)

let iter_live t f =
  let n = Atomic.get t.n_objs in
  let arr = Atomic.get t.objs in
  for i = 0 to n - 1 do
    if arr.(i).live then f arr.(i).id
  done

let ptr_slot_values t p =
  let o = live_obj t p "ptr_slot_values" in
  let l = o.obj_layout in
  List.init l.Layout.n_ptrs (fun i ->
      Cell.get o.cells.(Layout.ptr_slot l i))

type stats = {
  allocs : int;
  frees : int;
  live : int;
  peak_live : int;
  live_cells : int;
}

let stats (t : t) : stats =
  {
    allocs = Atomic.get t.allocs;
    frees = Atomic.get t.frees;
    live = Atomic.get t.live;
    peak_live = Atomic.get t.peak;
    live_cells = Atomic.get t.live_cells;
  }

let live_count (t : t) = Atomic.get t.live

let pp_stats ppf s =
  Format.fprintf ppf "allocs=%d frees=%d live=%d peak=%d live_cells=%d"
    s.allocs s.frees s.live s.peak_live s.live_cells
