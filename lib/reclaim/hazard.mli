(** Hazard pointers (Michael, 2002-style), built from scratch over the
    simulated heap.

    A modern point of comparison for LFRC (experiment E4): instead of
    per-object counts updated by DCAS, each thread publishes the (few)
    pointers it is actively using in single-writer hazard slots; a freed
    object is only returned to the allocator once no slot mentions it.
    CAS-free on the read side, but reclamation is deferred — the retired
    list is bounded garbage that LFRC never accumulates. *)

type t

type slot

val create : ?slots:int -> ?hazards_per_slot:int -> ?scan_threshold:int ->
  ?metrics:Lfrc_obs.Metrics.t -> ?lineage:Lfrc_obs.Lineage.t ->
  Lfrc_simmem.Heap.t -> t
(** Defaults: 64 thread slots, 2 hazard pointers each, scan at 64 retired
    objects. [metrics] (default disabled) receives the [hazard.*] series:
    retires, scans, freed counts and the retired-list depth gauge.
    [lineage] (default disabled) records a [Retire] event per retired
    object, so the forensic timelines cover the deferred span between
    unlink and free. *)

val register : t -> slot
val unregister : t -> slot -> unit
(** Flushes the slot's retired list (parking still-protected objects on
    the orphan list for later scans) and frees the slot. *)

val protect : t -> slot -> idx:int -> Lfrc_simmem.Cell.t -> Lfrc_simmem.Heap.ptr
(** [protect t s ~idx cell] reads the pointer in [cell], publishes it in
    hazard [idx], and re-validates the cell until the published value is
    stable — after which the object cannot be freed until the hazard is
    cleared. Returns the protected pointer (possibly null). *)

val clear : t -> slot -> unit
(** Null all hazards of the slot. *)

val retire : t -> slot -> Lfrc_simmem.Heap.ptr -> unit
(** The object was unlinked; free it once no hazard protects it. *)

val adopt : t -> crashed:int list -> int
(** Crash recovery: evict the slots registered by the given (crashed)
    simulated threads — null their published hazards (a crashed thread is
    parked at a yield point, never mid-dereference), orphan their retired
    lists and rescan, so a dead thread neither pins garbage nor strands
    its own. Counted under the [lfrc.hazard_evict] metric. Returns the
    number of slots evicted. *)

type stats = { freed : int; max_retired : int }

val stats : t -> stats
(** [max_retired] is the high-water mark of unreclaimed garbage across all
    slots — the bounded-garbage metric reported by experiment E4. *)
