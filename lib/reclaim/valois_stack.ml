module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Dcas = Lfrc_atomics.Dcas
module Metrics = Lfrc_obs.Metrics

let name = "treiber-valois"

let null = Heap.null
let node_layout = Lfrc_structures.Treiber.node_layout

type t = {
  env : Lfrc_core.Env.t;
  heap : Heap.t;
  top : Cell.t;
  flist_lock : Mutex.t;
  mutable flist : Heap.ptr list; (* rc-0 nodes, never returned to the heap *)
  mutable flist_len : int;
  recycled : int Atomic.t;
}

type handle = t

let create env =
  let heap = Lfrc_core.Env.heap env in
  {
    env;
    heap;
    top = Heap.root heap ~name:"valois-top" ();
    flist_lock = Mutex.create ();
    flist = [];
    flist_len = 0;
    recycled = Atomic.make 0;
  }

let register t = t
let unregister _ = ()

let d t = Lfrc_core.Env.dcas t.env

let add_to_rc t p v =
  let rc = Heap.rc_cell t.heap p in
  let rec go () =
    let oldrc = Dcas.read (d t) rc in
    if Dcas.cas (d t) rc oldrc (oldrc + v) then oldrc else go ()
  in
  go ()

let park t p =
  Mutex.lock t.flist_lock;
  t.flist <- p :: t.flist;
  t.flist_len <- t.flist_len + 1;
  let len = t.flist_len in
  Mutex.unlock t.flist_lock;
  Metrics.set_gauge (Lfrc_core.Env.metrics t.env) "valois.freelist_len" len

(* Release one count; a node dying releases its next pointer in turn and
   parks on the free-list (never Heap.free: type-stable memory). *)
let release t p =
  let rec go p =
    if p <> null && add_to_rc t p (-1) = 1 then begin
      let nx = Dcas.read (d t) (Heap.ptr_cell t.heap p 0) in
      Dcas.write (d t) (Heap.ptr_cell t.heap p 0) null;
      park t p;
      go nx
    end
  in
  go p

(* Valois's SafeRead: count first, then validate the pointer still exists.
   The count may transiently land on a node that was freed to the
   free-list — harmless because the memory is still a node, and the
   failed validation compensates.

   The compensation must NOT perform death detection: the stray increment
   may have landed on a node already parked on the free-list, and a
   compensating "release to zero" would park it a second time, corrupting
   the list (observed as a livelock before this was changed). Valois's
   full algorithm closes this with claim bits; we take the safe
   approximation — a failed-validation decrement never reclaims, at the
   cost of rarely leaking a node whose true last reference died in the
   race window. DESIGN.md records the deviation. *)
let safe_read t cell =
  let rec go () =
    let p = Dcas.read (d t) cell in
    if p = null then null
    else begin
      ignore (add_to_rc t p 1);
      if Dcas.read (d t) cell = p then p
      else begin
        ignore (add_to_rc t p (-1));
        go ()
      end
    end
  in
  go ()

let alloc_node t =
  Mutex.lock t.flist_lock;
  let reused =
    match t.flist with
    | p :: rest ->
        t.flist <- rest;
        t.flist_len <- t.flist_len - 1;
        Atomic.incr t.recycled;
        Some p
    | [] -> None
  in
  let len = t.flist_len in
  Mutex.unlock t.flist_lock;
  match reused with
  | Some p ->
      let m = Lfrc_core.Env.metrics t.env in
      Metrics.incr m "valois.recycled";
      Metrics.set_gauge m "valois.freelist_len" len;
      ignore (add_to_rc t p 1);
      Dcas.write (d t) (Heap.ptr_cell t.heap p 0) null;
      Dcas.write (d t) (Heap.val_cell t.heap p 0) 0;
      p
  | None -> Heap.alloc t.heap node_layout

let push t v =
  let n = alloc_node t in
  Dcas.write (d t) (Heap.val_cell t.heap n 0) v;
  let rec loop () =
    let top = safe_read t t.top in
    Dcas.write (d t) (Heap.ptr_cell t.heap n 0) top;
    if Dcas.cas (d t) t.top top n then begin
      (* our SafeRead count now backs n->next; the count that backed
         top's old reference is surplus *)
      if top <> null then release t top
    end
    else begin
      if top <> null then release t top;
      loop ()
    end
  in
  loop ();
  (* transfer our allocation count to the stack's reference *)
  ()

(* [alloc_node] either recycles (infallible) or allocates as its last
   step, so a simulated OOM backs out before the stack is touched. *)
let try_push t v =
  match push t v with
  | () -> Ok ()
  | exception Heap.Simulated_oom -> Error `Out_of_memory

let pop t =
  let rec loop () =
    let top = safe_read t t.top in
    if top = null then None
    else begin
      let nx = Dcas.read (d t) (Heap.ptr_cell t.heap top 0) in
      (* conservative increment before publication, as in LFRCCAS *)
      if nx <> null then ignore (add_to_rc t nx 1);
      if Dcas.cas (d t) t.top top nx then begin
        let v = Dcas.read (d t) (Heap.val_cell t.heap top 0) in
        release t top (* the stack's relinquished reference *);
        release t top (* our SafeRead reference *);
        Some v
      end
      else begin
        if nx <> null then release t nx;
        release t top;
        loop ()
      end
    end
  in
  loop ()

let destroy t =
  let rec drain () = if pop t <> None then drain () in
  drain ();
  Heap.release_root t.heap t.top

include Lfrc_structures.Container_intf.With_env (struct
  let name = name

  type nonrec t = t
  type nonrec handle = handle

  let create = create
  let register = register
  let unregister = unregister
  let destroy = destroy
end)

type counters = { freelist_len : int; recycled : int }

let counters t = { freelist_len = t.flist_len; recycled = Atomic.get t.recycled }
