module Heap = Lfrc_simmem.Heap
module Dcas = Lfrc_atomics.Dcas

let name = "treiber-hazard"

let null = Heap.null
let node_layout = Lfrc_structures.Treiber.node_layout

type t = {
  env : Lfrc_core.Env.t;
  heap : Heap.t;
  top : Lfrc_simmem.Cell.t;
  hp : Hazard.t;
}

type handle = { t : t; slot : Hazard.slot }

let create env =
  let heap = Lfrc_core.Env.heap env in
  let t =
    {
      env;
      heap;
      top = Heap.root heap ~name:"hp-stack-top" ();
      hp = Hazard.create ~metrics:(Lfrc_core.Env.metrics env)
          ~lineage:(Lfrc_core.Env.lineage env) heap;
    }
  in
  (* Crash recovery reaches this structure's reclamation state through the
     environment's hook registry — the fault layer never sees Hazard. *)
  Lfrc_core.Env.on_recover env (fun ~crashed -> Hazard.adopt t.hp ~crashed);
  t

let register t = { t; slot = Hazard.register t.hp }
let unregister h = Hazard.unregister h.t.hp h.slot

let d t = Lfrc_core.Env.dcas t.env

let push h v =
  let t = h.t in
  let nd = Heap.alloc t.heap node_layout in
  Dcas.write (d t) (Heap.val_cell t.heap nd 0) v;
  let rec loop () =
    let top = Dcas.read (d t) t.top in
    Dcas.write (d t) (Heap.ptr_cell t.heap nd 0) top;
    if Dcas.cas (d t) t.top top nd then () else loop ()
  in
  loop ()

(* The allocation is push's first action, so a simulated OOM backs out
   before the stack is touched. *)
let try_push h v =
  match push h v with
  | () -> Ok ()
  | exception Heap.Simulated_oom -> Error `Out_of_memory

let pop h =
  let t = h.t in
  let rec loop () =
    let top = Hazard.protect t.hp h.slot ~idx:0 t.top in
    if top = null then None
    else begin
      let next = Dcas.read (d t) (Heap.ptr_cell t.heap top 0) in
      if Dcas.cas (d t) t.top top next then begin
        let v = Dcas.read (d t) (Heap.val_cell t.heap top 0) in
        Hazard.clear t.hp h.slot;
        Hazard.retire t.hp h.slot top;
        Some v
      end
      else loop ()
    end
  in
  let r = loop () in
  Hazard.clear t.hp h.slot;
  r

let destroy t =
  let h = { t; slot = Hazard.register t.hp } in
  let rec drain () = if pop h <> None then drain () in
  drain ();
  unregister h;
  Heap.release_root t.heap t.top

include Lfrc_structures.Container_intf.With_env (struct
  let name = name

  type nonrec t = t
  type nonrec handle = handle

  let create = create
  let register = register
  let unregister = unregister
  let destroy = destroy
end)
