module Heap = Lfrc_simmem.Heap
module Dcas = Lfrc_atomics.Dcas

let name = "treiber-epoch"

let null = Heap.null
let node_layout = Lfrc_structures.Treiber.node_layout

type t = {
  env : Lfrc_core.Env.t;
  heap : Heap.t;
  top : Lfrc_simmem.Cell.t;
  ebr : Epoch.t;
}

type handle = { t : t; slot : Epoch.slot }

let create env =
  let heap = Lfrc_core.Env.heap env in
  let t =
    {
      env;
      heap;
      top = Heap.root heap ~name:"ebr-stack-top" ();
      ebr = Epoch.create ~metrics:(Lfrc_core.Env.metrics env)
          ~lineage:(Lfrc_core.Env.lineage env) heap;
    }
  in
  (* Crash recovery reaches this structure's reclamation state through the
     environment's hook registry — the fault layer never sees Epoch. *)
  Lfrc_core.Env.on_recover env (fun ~crashed -> Epoch.adopt t.ebr ~crashed);
  t

let register t = { t; slot = Epoch.register t.ebr }
let unregister h = Epoch.unregister h.t.ebr h.slot

let d t = Lfrc_core.Env.dcas t.env

let push h v =
  let t = h.t in
  (* Allocate before pinning: a simulated OOM must not leave the slot
     pinned, and the fresh node needs no epoch protection. *)
  let nd = Heap.alloc t.heap node_layout in
  Epoch.pin t.ebr h.slot;
  Dcas.write (d t) (Heap.val_cell t.heap nd 0) v;
  let rec loop () =
    let top = Dcas.read (d t) t.top in
    Dcas.write (d t) (Heap.ptr_cell t.heap nd 0) top;
    if Dcas.cas (d t) t.top top nd then () else loop ()
  in
  loop ();
  Epoch.unpin t.ebr h.slot

let try_push h v =
  match push h v with
  | () -> Ok ()
  | exception Heap.Simulated_oom -> Error `Out_of_memory

let pop h =
  let t = h.t in
  Epoch.pin t.ebr h.slot;
  let rec loop () =
    let top = Dcas.read (d t) t.top in
    if top = null then None
    else begin
      (* Pinned: the node cannot be freed while we look at it. *)
      let next = Dcas.read (d t) (Heap.ptr_cell t.heap top 0) in
      if Dcas.cas (d t) t.top top next then begin
        let v = Dcas.read (d t) (Heap.val_cell t.heap top 0) in
        Epoch.retire t.ebr h.slot top;
        Some v
      end
      else loop ()
    end
  in
  let r = loop () in
  Epoch.unpin t.ebr h.slot;
  r

let flush t = Epoch.flush t.ebr
let epoch t = t.ebr

let destroy t =
  let h = { t; slot = Epoch.register t.ebr } in
  let rec drain () = if pop h <> None then drain () in
  drain ();
  unregister h;
  Epoch.flush t.ebr;
  Heap.release_root t.heap t.top

include Lfrc_structures.Container_intf.With_env (struct
  let name = name

  type nonrec t = t
  type nonrec handle = handle

  let create = create
  let register = register
  let unregister = unregister
  let destroy = destroy
end)
