module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Sched = Lfrc_sched.Sched
module Metrics = Lfrc_obs.Metrics
module Lineage = Lfrc_obs.Lineage

type slot_state = {
  hazards : Cell.t array;
  mutable retired : Heap.ptr list;
  mutable retired_len : int;
  mutable in_use : bool;
  mutable owner : int; (* simulated tid that registered; -1 when free *)
}

type t = {
  heap : Heap.t;
  slots : slot_state array;
  hazards_per_slot : int;
  scan_threshold : int;
  lock : Mutex.t; (* slot registry and orphan list *)
  mutable orphans : Heap.ptr list;
  freed : int Atomic.t;
  max_retired : int Atomic.t;
  metrics : Metrics.t;
  lineage : Lineage.t;
}

type slot = int

let create ?(slots = 64) ?(hazards_per_slot = 2) ?(scan_threshold = 64)
    ?(metrics = Metrics.disabled) ?(lineage = Lineage.disabled) heap =
  {
    heap;
    slots =
      Array.init slots (fun _ ->
          {
            hazards = Array.init hazards_per_slot (fun _ -> Cell.make 0);
            retired = [];
            retired_len = 0;
            in_use = false;
            owner = -1;
          });
    hazards_per_slot;
    scan_threshold;
    lock = Mutex.create ();
    orphans = [];
    freed = Atomic.make 0;
    max_retired = Atomic.make 0;
    metrics;
    lineage;
  }

let register t =
  Mutex.lock t.lock;
  let rec find i =
    if i >= Array.length t.slots then begin
      Mutex.unlock t.lock;
      failwith "Hazard.register: no free slot"
    end
    else if not t.slots.(i).in_use then begin
      t.slots.(i).in_use <- true;
      t.slots.(i).owner <- Sched.tid ();
      Mutex.unlock t.lock;
      i
    end
    else find (i + 1)
  in
  find 0

let protect t s ~idx cell =
  let haz = t.slots.(s).hazards.(idx) in
  let rec go () =
    Sched.point ();
    let p = Cell.get cell in
    Sched.point ();
    Cell.set haz p;
    Sched.point ();
    if Cell.get cell = p then p else go ()
  in
  go ()

let clear t s =
  Array.iter
    (fun haz ->
      Sched.point ();
      Cell.set haz 0)
    t.slots.(s).hazards

(* Scan: free every retired object no hazard protects. *)
let scan t s =
  Metrics.incr t.metrics "hazard.scans";
  let protected_set = Hashtbl.create 64 in
  Array.iter
    (fun sl ->
      if sl.in_use then
        Array.iter
          (fun haz ->
            Sched.point ();
            let p = Cell.get haz in
            if p <> Heap.null then Hashtbl.replace protected_set p ())
          sl.hazards)
    t.slots;
  Mutex.lock t.lock;
  let adopted = t.orphans in
  t.orphans <- [];
  Mutex.unlock t.lock;
  let sl = t.slots.(s) in
  let keep = ref [] and kept = ref 0 in
  List.iter
    (fun p ->
      if Hashtbl.mem protected_set p then begin
        keep := p :: !keep;
        incr kept
      end
      else begin
        Heap.free t.heap p;
        Atomic.incr t.freed;
        Metrics.incr t.metrics "hazard.freed"
      end)
    (sl.retired @ adopted);
  sl.retired <- !keep;
  sl.retired_len <- !kept

let bump_max t n =
  let rec go () =
    let m = Atomic.get t.max_retired in
    if n > m && not (Atomic.compare_and_set t.max_retired m n) then go ()
  in
  go ()

let retire t s p =
  let sl = t.slots.(s) in
  sl.retired <- p :: sl.retired;
  sl.retired_len <- sl.retired_len + 1;
  bump_max t sl.retired_len;
  Metrics.incr t.metrics "hazard.retires";
  Lineage.record t.lineage ~addr:p Lineage.Retire;
  Metrics.set_gauge t.metrics "hazard.retired_depth" sl.retired_len;
  if sl.retired_len >= t.scan_threshold then scan t s

let unregister t s =
  clear t s;
  scan t s;
  let sl = t.slots.(s) in
  Mutex.lock t.lock;
  (* Whatever is still protected by others becomes orphaned garbage,
     adopted by the next scan. *)
  t.orphans <- sl.retired @ t.orphans;
  sl.retired <- [];
  sl.retired_len <- 0;
  sl.in_use <- false;
  sl.owner <- -1;
  Mutex.unlock t.lock

(* Evict the slots of crashed threads: a dead thread's published hazards
   protect nothing it will ever dereference again (crashes land at yield
   points), yet they keep every matching retired object unreclaimable and
   its own retired list is never scanned again. Clear the hazards, orphan
   the retired objects and rescan. Returns the number of slots evicted. *)
let adopt t ~crashed =
  let evicted = ref 0 in
  let rescan = ref (-1) in
  Mutex.lock t.lock;
  Array.iteri
    (fun i sl ->
      if sl.in_use && List.mem sl.owner crashed then begin
        Array.iter (fun haz -> Cell.set haz 0) sl.hazards;
        t.orphans <- sl.retired @ t.orphans;
        sl.retired <- [];
        sl.retired_len <- 0;
        sl.in_use <- false;
        sl.owner <- -1;
        incr evicted;
        rescan := i;
        Metrics.incr t.metrics "lfrc.hazard_evict"
      end)
    t.slots;
  Mutex.unlock t.lock;
  (* Scan through a now-free slot so the orphans are reconsidered with the
     dead threads' hazards gone. *)
  if !evicted > 0 then scan t !rescan;
  !evicted

type stats = { freed : int; max_retired : int }

let stats (t : t) : stats =
  { freed = Atomic.get t.freed; max_retired = Atomic.get t.max_retired }
