(** Treiber stack reclaimed with epochs: each operation runs pinned, pops
    retire the unlinked node into the current epoch's limbo list.
    Implements {!Lfrc_structures.Stack_intf.STACK} for experiment E4. *)

include Lfrc_structures.Stack_intf.STACK

val flush : t -> unit
(** Quiescent: advance epochs and drain all limbo lists. *)

val epoch : t -> Epoch.t
(** The underlying epoch-reclamation instance (stats and tests). The
    stack's {!create} registers an {!Lfrc_core.Env.on_recover} hook that
    calls {!Epoch.adopt} for crashed threads, so a dead pinned thread
    stops blocking reclamation once recovery runs. *)
