module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Sched = Lfrc_sched.Sched
module Metrics = Lfrc_obs.Metrics
module Lineage = Lfrc_obs.Lineage

type slot_state = {
  active : Cell.t; (* 0 = quiescent, 1 = pinned *)
  epoch : Cell.t; (* epoch observed at pin *)
  mutable limbo : (int * Heap.ptr) list; (* (retire epoch, object) *)
  mutable limbo_len : int;
  mutable retire_count : int;
  mutable in_use : bool;
  mutable owner : int; (* simulated tid that registered; -1 when free *)
}

type t = {
  heap : Heap.t;
  global : Cell.t;
  slots : slot_state array;
  advance_every : int;
  lock : Mutex.t;
  mutable orphans : (int * Heap.ptr) list;
  freed : int Atomic.t;
  max_limbo : int Atomic.t;
  metrics : Metrics.t;
  lineage : Lineage.t;
}

type slot = int

let create ?(slots = 64) ?(advance_every = 16) ?(metrics = Metrics.disabled)
    ?(lineage = Lineage.disabled) heap =
  {
    heap;
    global = Cell.make 2; (* start at 2 so epoch-2 is never negative *)
    slots =
      Array.init slots (fun _ ->
          {
            active = Cell.make 0;
            epoch = Cell.make 0;
            limbo = [];
            limbo_len = 0;
            retire_count = 0;
            in_use = false;
            owner = -1;
          });
    advance_every;
    lock = Mutex.create ();
    orphans = [];
    freed = Atomic.make 0;
    max_limbo = Atomic.make 0;
    metrics;
    lineage;
  }

let register t =
  Mutex.lock t.lock;
  let rec find i =
    if i >= Array.length t.slots then begin
      Mutex.unlock t.lock;
      failwith "Epoch.register: no free slot"
    end
    else if not t.slots.(i).in_use then begin
      t.slots.(i).in_use <- true;
      t.slots.(i).owner <- Sched.tid ();
      Mutex.unlock t.lock;
      i
    end
    else find (i + 1)
  in
  find 0

let pin t s =
  let sl = t.slots.(s) in
  Sched.point ();
  let e = Cell.get t.global in
  Cell.set sl.epoch e;
  Sched.point ();
  Cell.set sl.active 1

let unpin t s =
  Sched.point ();
  Cell.set t.slots.(s).active 0

let try_advance t =
  Sched.point ();
  let e = Cell.get t.global in
  let ok =
    Array.for_all
      (fun sl ->
        (not sl.in_use)
        ||
        (Sched.point ();
         Cell.get sl.active = 0 || Cell.get sl.epoch = e))
      t.slots
  in
  let advanced = ok && Cell.cas t.global e (e + 1) in
  if advanced then Metrics.incr t.metrics "epoch.advances";
  advanced

(* Free this slot's limbo objects retired at least two epochs ago. *)
let reap t s =
  let sl = t.slots.(s) in
  Sched.point ();
  let safe_before = Cell.get t.global - 1 in
  let keep = ref [] and kept = ref 0 in
  List.iter
    (fun (g, p) ->
      if g < safe_before then begin
        Heap.free t.heap p;
        Atomic.incr t.freed;
        Metrics.incr t.metrics "epoch.freed"
      end
      else begin
        keep := (g, p) :: !keep;
        incr kept
      end)
    sl.limbo;
  sl.limbo <- !keep;
  sl.limbo_len <- !kept;
  Metrics.set_gauge t.metrics "epoch.limbo_depth" !kept

let bump_max t n =
  let rec go () =
    let m = Atomic.get t.max_limbo in
    if n > m && not (Atomic.compare_and_set t.max_limbo m n) then go ()
  in
  go ()

let retire t s p =
  let sl = t.slots.(s) in
  Sched.point ();
  let e = Cell.get t.global in
  sl.limbo <- (e, p) :: sl.limbo;
  sl.limbo_len <- sl.limbo_len + 1;
  bump_max t sl.limbo_len;
  Metrics.incr t.metrics "epoch.retires";
  Lineage.record t.lineage ~addr:p Lineage.Retire;
  Metrics.set_gauge t.metrics "epoch.limbo_depth" sl.limbo_len;
  sl.retire_count <- sl.retire_count + 1;
  if sl.retire_count mod t.advance_every = 0 then ignore (try_advance t);
  reap t s

let unregister t s =
  let sl = t.slots.(s) in
  Cell.set sl.active 0;
  reap t s;
  Mutex.lock t.lock;
  t.orphans <- sl.limbo @ t.orphans;
  sl.limbo <- [];
  sl.limbo_len <- 0;
  sl.in_use <- false;
  sl.owner <- -1;
  Mutex.unlock t.lock

let flush t =
  for _ = 0 to 3 do
    ignore (try_advance t)
  done;
  for i = 0 to Array.length t.slots - 1 do
    if t.slots.(i).in_use then reap t i
  done;
  Mutex.lock t.lock;
  let orphans = t.orphans in
  t.orphans <- [];
  Mutex.unlock t.lock;
  let safe_before = Cell.get t.global - 1 in
  List.iter
    (fun (g, p) ->
      if g < safe_before then begin
        Heap.free t.heap p;
        Atomic.incr t.freed;
        Metrics.incr t.metrics "epoch.freed"
      end
      else begin
        Mutex.lock t.lock;
        t.orphans <- (g, p) :: t.orphans;
        Mutex.unlock t.lock
      end)
    orphans

(* Evict the slots of crashed threads: a dead thread pinned in an old
   epoch blocks [try_advance] forever, stalling reclamation for everyone —
   the exact "halted thread impedes the others" failure reference counting
   is supposed to rule out. A crashed thread cannot be mid-read (crashes
   land at scheduler yield points, and a structure holds no protected
   pointer across one), so clearing its active flag is safe; its limbo
   objects are orphaned and reclaimed by the flush. Returns the number of
   slots evicted. *)
let adopt t ~crashed =
  let evicted = ref 0 in
  Mutex.lock t.lock;
  Array.iter
    (fun sl ->
      if sl.in_use && List.mem sl.owner crashed then begin
        Cell.set sl.active 0;
        t.orphans <- sl.limbo @ t.orphans;
        sl.limbo <- [];
        sl.limbo_len <- 0;
        sl.in_use <- false;
        sl.owner <- -1;
        incr evicted;
        Metrics.incr t.metrics "lfrc.epoch_evict"
      end)
    t.slots;
  Mutex.unlock t.lock;
  if !evicted > 0 then flush t;
  !evicted

type stats = { freed : int; max_limbo : int; epoch : int }

let stats (t : t) : stats =
  {
    freed = Atomic.get t.freed;
    max_limbo = Atomic.get t.max_limbo;
    epoch = Cell.get t.global;
  }
