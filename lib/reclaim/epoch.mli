(** Epoch-based reclamation, built from scratch over the simulated heap.

    The second modern point of comparison for LFRC (experiment E4):
    threads announce when they are inside an operation ("pinned") and
    which global epoch they observed; an object retired in epoch [g] is
    freed once the global epoch has advanced to [g + 2], which guarantees
    every pinned thread has since passed a quiescent point. Near-zero
    per-access cost, but a single stalled pinned thread blocks all
    reclamation — unbounded garbage, where LFRC frees immediately and
    hazard pointers bound garbage per thread. *)

type t
type slot

val create : ?slots:int -> ?advance_every:int ->
  ?metrics:Lfrc_obs.Metrics.t -> ?lineage:Lfrc_obs.Lineage.t ->
  Lfrc_simmem.Heap.t -> t
(** [advance_every] (default 16): attempt an epoch advance every that many
    retires per slot. [metrics] (default disabled) receives the [epoch.*]
    series: retires, advances, freed counts and the limbo-depth gauge.
    [lineage] (default disabled) records a [Retire] event per retired
    object, so the forensic timelines cover the limbo span between unlink
    and free. *)

val register : t -> slot
val unregister : t -> slot -> unit

val pin : t -> slot -> unit
(** Enter an operation: announce the current global epoch. *)

val unpin : t -> slot -> unit

val retire : t -> slot -> Lfrc_simmem.Heap.ptr -> unit
(** The object was unlinked; free it two epochs from now. *)

val try_advance : t -> bool
(** Attempt to advance the global epoch; true on success. Freeing of
    now-safe garbage happens on each slot's next retire/unpin. *)

val flush : t -> unit
(** Quiescent teardown: advance repeatedly and free all limbo objects.
    Only call when no thread is pinned. *)

val adopt : t -> crashed:int list -> int
(** Crash recovery: evict the slots registered by the given (crashed)
    simulated threads — clear their pinned flags (a crashed thread is
    parked at a yield point, never mid-read), orphan their limbo lists and
    flush, so a dead thread no longer blocks {!try_advance} or holds
    garbage. Counted under the [lfrc.epoch_evict] metric. Returns the
    number of slots evicted. *)

type stats = { freed : int; max_limbo : int; epoch : int }

val stats : t -> stats
