(** The recording {!Ops_intf.OPS} instance: symbolic execution by proxy.

    Structure functors are applied to this module exactly as they are to
    {!Lfrc_ops} or {!Gc_ops}; instead of maintaining reference counts it
    appends one {!Ir.op} per call to the shared {!Recorder} and answers
    every observation (load results, CAS outcomes, value reads) from the
    recorder's oracle.

    Pointers stay *concrete*: client code derives cells directly from the
    ids it gets back ([Heap.ptr_cell heap (O.get l) slot]), so every
    non-null symbolic pointer is materialized as a real object in the
    analysis heap. Loads that observe "some unknown object" allocate a
    fresh one with a universal layout wide enough for every shipped
    structure's slot usage; [alloc]/[try_alloc] use the requested layout.
    Nothing is ever freed or mutated through this module — cells are only
    ever *named*, never written — so object ids are stable across the many
    re-executions of one action and paths cannot interfere. A path whose
    oracle choices make the client derive a cell from null (an
    invariant-violating heap the structure excludes) dies with the heap's
    own exception, which the enumerator records as {!Ir.Infeasible}. *)

module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Layout = Lfrc_simmem.Layout

(* Wide enough for every shipped structure: the Snark anchor and the
   skiplist index node use 3 pointer slots, nodes use at most 1 value
   slot plus the dlist/skiplist key. *)
let universal_layout = Layout.make ~name:"sym-object" ~n_ptrs:4 ~n_vals:2

module Make (R : sig
  val r : Recorder.t
end) : Lfrc_core.Ops_intf.OPS = struct
  let r = R.r
  let name = "record"

  type ctx = { env : Lfrc_core.Env.t }

  let make_ctx env = { env }
  let dispose_ctx _ = ()
  let env ctx = ctx.env

  type local = { id : int; mutable v : Heap.ptr }

  let declare _ctx =
    let l = { id = Recorder.fresh_local r; v = Heap.null } in
    Recorder.emit r (Ir.Declare { local = l.id });
    l

  let retire _ctx l =
    Recorder.emit r (Ir.Retire { local = l.id });
    l.v <- Heap.null

  let get l =
    Recorder.emit r (Ir.Get { local = l.id; ptr = l.v });
    l.v

  let load ctx cell l =
    let p =
      Recorder.choose_load r ~fresh:(fun () ->
          Heap.alloc (Lfrc_core.Env.heap ctx.env) universal_layout)
    in
    Recorder.emit r (Ir.Load { cell = Cell.id cell; local = l.id; ptr = p });
    l.v <- p

  let store _ctx cell p =
    Recorder.emit r (Ir.Store { cell = Cell.id cell; ptr = p })

  let store_alloc _ctx cell l =
    Recorder.emit r (Ir.Store_alloc { cell = Cell.id cell; local = l.id });
    l.v <- Heap.null

  let copy _ctx l p =
    Recorder.emit r (Ir.Copy { local = l.id; ptr = p });
    l.v <- p

  let set_null _ctx l =
    Recorder.emit r (Ir.Set_null { local = l.id });
    l.v <- Heap.null

  let cas _ctx cell ~old_ptr ~new_ptr =
    let ok = Recorder.choose_bool r Ir.KCas in
    Recorder.emit r (Ir.Cas { cell = Cell.id cell; old_ptr; new_ptr; ok });
    ok

  let dcas _ctx c0 c1 ~old0 ~old1 ~new0 ~new1 =
    let ok = Recorder.choose_bool r Ir.KDcas in
    Recorder.emit r
      (Ir.Dcas
         { cell0 = Cell.id c0; cell1 = Cell.id c1; old0; old1; new0; new1; ok });
    ok

  let dcas_ptr_val _ctx ~ptr_cell ~val_cell ~old_ptr ~new_ptr ~old_val ~new_val
      =
    Recorder.add_pool r old_val;
    Recorder.add_pool r new_val;
    let ok = Recorder.choose_bool r Ir.KDcasPV in
    Recorder.emit r
      (Ir.Dcas_ptr_val
         {
           ptr_cell = Cell.id ptr_cell;
           val_cell = Cell.id val_cell;
           old_ptr;
           new_ptr;
           ok;
         });
    ok

  let alloc ctx layout l =
    let p = Heap.alloc (Lfrc_core.Env.heap ctx.env) layout in
    Recorder.emit r
      (Ir.Alloc { local = l.id; ptr = p; layout = layout.Layout.name });
    l.v <- p

  let try_alloc ctx layout l =
    let ok = Recorder.choose_bool r Ir.KTryAlloc in
    let p = if ok then Heap.alloc (Lfrc_core.Env.heap ctx.env) layout else 0 in
    Recorder.emit r (Ir.Try_alloc { local = l.id; ptr = p; ok });
    if ok then l.v <- p;
    ok

  let flush _ctx = Recorder.emit r Ir.Flush

  let read_val _ctx cell =
    let v = Recorder.choose_val r in
    Recorder.emit r (Ir.Read_val { cell = Cell.id cell; v });
    v

  let write_val _ctx cell v =
    Recorder.add_pool r v;
    Recorder.emit r (Ir.Write_val { cell = Cell.id cell; v })

  let cas_val _ctx cell oldv newv =
    Recorder.add_pool r oldv;
    Recorder.add_pool r newv;
    let ok = Recorder.choose_bool r Ir.KCasVal in
    Recorder.emit r (Ir.Cas_val { cell = Cell.id cell; ok });
    ok
end
