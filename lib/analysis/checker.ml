(** The driver: generational path enumeration over a structure action,
    feeding each recorded path to the abstract interpreter.

    Enumeration is the classic generate-and-flip scheme: run the action
    with a forced prefix of oracle choices (empty at first — the all-
    defaults path), then, for every decision at index [i >= bound] the run
    actually took, queue one child per alternative choice with the prefix
    [taken[0..i-1] @ [alt]] and bound [i+1]. The bound guarantees each
    child only flips decisions *after* the ones it inherited, so no
    execution is generated twice; a signature set catches the residual
    duplicates that arise when a forced choice gets clamped to a smaller
    arity. Termination: flipping any decision costs one unit of a finite
    budget ([max_paths], [max_decisions] per path), and the all-defaults
    suffix always terminates because defaults end every retry loop.

    Because the recording OPS instance never mutates the analysis heap,
    re-running an action for each path needs no state reset — setup ran
    once, muted, and every path starts from the same (never-changing)
    concrete heap. *)

module Env = Lfrc_core.Env
module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Catalog = Lfrc_structures.Catalog

type limits = { max_paths : int; max_decisions : int }

let default_limits = { max_paths = 400; max_decisions = 48 }

let enumerate ~limits r (action : unit -> unit) =
  Recorder.reset_pool r;
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 97 in
  let frontier : (int array * int) Queue.t = Queue.create () in
  Queue.add ([||], 0) frontier;
  let paths = ref [] in
  let n = ref 0 in
  while (not (Queue.is_empty frontier)) && !n < limits.max_paths do
    let forced, bound = Queue.pop frontier in
    Recorder.start_path r ~forced;
    let status =
      match action () with
      | () -> Ir.Completed
      | exception Recorder.Path_limit -> Ir.Decision_limit
      | exception Lfrc_core.Lfrc.Symbolic_bypass op -> Ir.Bypass op
      | exception e -> Ir.Infeasible (Printexc.to_string e)
    in
    let path = Recorder.finish_path r status in
    let sg = Ir.decision_signature path.decisions in
    if not (Hashtbl.mem seen sg) then begin
      Hashtbl.add seen sg ();
      incr n;
      paths := path :: !paths;
      let decs = Array.of_list path.decisions in
      let taken j =
        let _, _, t = decs.(j) in
        t
      in
      for i = bound to Array.length decs - 1 do
        let _, arity, t = decs.(i) in
        for c = 0 to arity - 1 do
          if c <> t then
            Queue.add
              (Array.init (i + 1) (fun j -> if j = i then c else taken j), i + 1)
              frontier
        done
      done
    end
  done;
  let truncated = not (Queue.is_empty frontier) in
  (List.rev !paths, truncated)

type actions_fn =
  Catalog.ops_module -> Env.t -> (string * (unit -> unit)) list

(* Analyze one structure given its action builder. Used both for catalog
   entries and for the test suite's deliberately broken fixtures. The
   builder always receives the full recording module (the recorder
   implements the DCAS tier); [tier] is the *claimed* tier the abstract
   interpreter holds the recorded traces to — a fixture claiming [Cas]
   while issuing a DCAS is how the tier obligation is tested. *)
let analyze_actions ?(limits = default_limits) ?tier ~name (mk : actions_fn)
    : Report.structure_report =
  let heap = Heap.create ~name:("analysis:" ^ name) () in
  let env = Env.create ~symbolic:true heap in
  let r = Recorder.create ~max_decisions:limits.max_decisions () in
  let module O = Record_ops.Make (struct
    let r = r
  end) in
  let actions =
    Recorder.muted r (fun () ->
        mk (module O : Lfrc_core.Ops_intf.OPS) env)
  in
  let enumerated =
    List.map
      (fun (aname, act) ->
        let paths, truncated = enumerate ~limits r act in
        (aname, paths, truncated))
      actions
  in
  (* The interference pass needs to know which object a recorded cell
     belongs to; the recorder heap never frees, so the mapping built
     after enumeration covers every cell any path ever touched. *)
  let owner =
    let tbl : (int, int) Hashtbl.t = Hashtbl.create 97 in
    for p = 1 to Heap.high_water_id heap do
      Heap.iter_cells heap p (fun ~kind:_ ~index:_ cell ->
          Hashtbl.replace tbl (Cell.id cell) p)
    done;
    fun cid -> Hashtbl.find_opt tbl cid
  in
  (* Harvest one interfering published plain write per cell, across every
     completed path of every action (any action runs concurrently with
     any other — and with a second instance of itself). Infeasible and
     budget-cut prefixes are excluded: their writes may not correspond to
     a realizable execution. *)
  let interfering : (int, string) Hashtbl.t = Hashtbl.create 17 in
  List.iter
    (fun (aname, paths, _) ->
      List.iter
        (fun (path : Ir.path) ->
          if path.status = Ir.Completed then
            List.iter
              (fun (cell, desc) ->
                if not (Hashtbl.mem interfering cell) then
                  Hashtbl.add interfering cell (aname ^ ": " ^ desc))
              (Absint.published_writes ~owner path))
        paths)
    enumerated;
  let interference = Absint.check_interference ~owner ~writes:interfering in
  let action_reports =
    List.map
      (fun (aname, paths, truncated) ->
        Report.summarize_action ?tier ~interference ~action:aname ~truncated
          paths)
      enumerated
  in
  { Report.structure = name; actions = action_reports }

let analyze_entry ?limits (e : Catalog.entry) : Report.structure_report =
  (* [actions_over] re-packs the recording module at [OPS_CAS] for
     Cas-tier entries, so their builders cannot even name [dcas]; the
     tier obligation passed to the interpreter is then a cross-check,
     not the only line of defense. *)
  analyze_actions ?limits ~tier:e.tier ~name:e.name
    (fun om env -> Catalog.actions_over om e env)

let analyze_all ?limits ?tier () : Report.t =
  let entries =
    match tier with
    | None -> Catalog.entries
    | Some t -> List.filter (fun e -> Catalog.tier e = t) Catalog.entries
  in
  { Report.structures = List.map (fun e -> analyze_entry ?limits e) entries }

let analyze_structure ?limits name : (Report.t, string) result =
  match Catalog.find name with
  | None ->
      Error
        (Printf.sprintf "unknown structure %S (expected one of: %s)" name
           (String.concat ", " (Catalog.names ())))
  | Some e -> Ok { Report.structures = [ analyze_entry ?limits e ] }
