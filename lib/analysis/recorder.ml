(** Path oracle and trace collector behind {!Record_ops}.

    One recorder drives every symbolic execution of one structure action.
    The enumerator runs the action repeatedly; before each run it installs
    a *forced prefix* of decision choices with {!start_path}, and the
    recorder answers each nondeterministic question (what does this load
    observe? does this CAS succeed?) from that prefix, falling back to
    choice 0 — the terminating default — once the prefix is exhausted.
    Defaults are chosen so that every retry loop in LFRC client code
    finishes: CAS/DCAS succeed, allocations succeed, loads observe null
    (ending traversals). Exploring a different arm of any branch therefore
    always costs one forced choice, which is what makes the enumeration
    bounded and systematic.

    Loads offer up to four choices — null, a fresh object, the same object
    as the previous non-null load, the same object as the path's first
    non-null load — so pointer-equality branches ([head == tail], tombstone
    comparisons) are reachable even though fresh objects are all distinct.
    [read_val] draws from a small pool of "interesting" constants harvested
    from the values the action itself wrote ([write_val], [cas_val],
    [dcas_ptr_val] operands), concolic-style, so sentinel-value branches
    (e.g. the corrected Snark's [claimed] marker) become reachable on later
    paths. The pool is append-only within one action, keeping decision
    indices stable across paths.

    Outside {!start_path}/{!finish_path} the recorder is *muted*: every
    decision silently takes its default and no ops are recorded. Structure
    setup (create/register) runs muted, so the enumeration covers exactly
    one focal operation at a time. *)

exception Path_limit
(** The current path exceeded the decision or op budget; the enumerator
    marks the action truncated and abandons the path. *)

type t = {
  max_decisions : int;
  max_ops : int;
  mutable recording : bool;
  mutable forced : int array;
  mutable n_decisions : int;
  mutable n_ops : int;
  mutable ops : Ir.op list; (* reversed *)
  mutable decisions : (Ir.dkind * int * int) list; (* reversed *)
  mutable next_local : int;
  mutable first_nonnull : int;
  mutable last_nonnull : int;
  mutable pool : int list; (* interesting read_val candidates, append-only *)
}

let max_pool = 6

(* The "big" constant: distinct from 0 and, in practice, from every key a
   catalog action uses, so ordered-search branches on k >= key are
   reachable without knowing the key. *)
let big_value = 1_000_000

let create ?(max_decisions = 48) ?(max_ops = 20_000) () =
  {
    max_decisions;
    max_ops;
    recording = false;
    forced = [||];
    n_decisions = 0;
    n_ops = 0;
    ops = [];
    decisions = [];
    next_local = 0;
    first_nonnull = 0;
    last_nonnull = 0;
    pool = [];
  }

let fresh_local t =
  let id = t.next_local in
  t.next_local <- id + 1;
  id

let emit t op =
  if t.recording then begin
    t.n_ops <- t.n_ops + 1;
    if t.n_ops > t.max_ops then raise Path_limit;
    t.ops <- op :: t.ops
  end

(* One oracle decision with [arity] alternatives; 0 is the default. *)
let decide t kind arity =
  if not t.recording then 0
  else begin
    if t.n_decisions >= t.max_decisions then raise Path_limit;
    let i = t.n_decisions in
    let choice =
      if i < Array.length t.forced then min t.forced.(i) (arity - 1) else 0
    in
    t.n_decisions <- i + 1;
    t.decisions <- (kind, arity, choice) :: t.decisions;
    emit t (Ir.Branch { index = i; kind; arity; choice });
    choice
  end

(* Boolean decisions; the default (choice 0) is [true] — success — so that
   retry loops terminate under the default oracle. *)
let choose_bool t kind = decide t kind 2 = 0

(* What a load observes; [fresh] materializes a new symbolic object. *)
let choose_load t ~fresh =
  let repeats =
    (if t.last_nonnull <> 0 then [ t.last_nonnull ] else [])
    @
    if t.first_nonnull <> 0 && t.first_nonnull <> t.last_nonnull then
      [ t.first_nonnull ]
    else []
  in
  let arity = 2 + List.length repeats in
  let p =
    match decide t Ir.KLoad arity with
    | 0 -> 0
    | 1 -> fresh ()
    | c -> List.nth repeats (c - 2)
  in
  if p <> 0 then begin
    if t.first_nonnull = 0 then t.first_nonnull <- p;
    t.last_nonnull <- p
  end;
  p

(* What a read_val observes: 0, the big constant, or a pooled value the
   action itself has written on some path. *)
let choose_val t =
  let cands = 0 :: big_value :: t.pool in
  List.nth cands (decide t Ir.KVal (List.length cands))

let add_pool t v =
  if
    t.recording && v <> 0 && v <> big_value
    && (not (List.mem v t.pool))
    && List.length t.pool < max_pool
  then t.pool <- t.pool @ [ v ]

let reset_pool t = t.pool <- []

let start_path t ~forced =
  t.recording <- true;
  t.forced <- forced;
  t.n_decisions <- 0;
  t.n_ops <- 0;
  t.ops <- [];
  t.decisions <- [];
  t.first_nonnull <- 0;
  t.last_nonnull <- 0

let finish_path t status : Ir.path =
  t.recording <- false;
  {
    Ir.ops = List.rev t.ops;
    decisions = List.rev t.decisions;
    status;
  }

(* Run [f] with recording off (structure setup / teardown): decisions take
   their defaults, nothing is traced. *)
let muted t f =
  let was = t.recording in
  t.recording <- false;
  Fun.protect ~finally:(fun () -> t.recording <- was) f
