(** Path-sensitive abstract interpretation of one recorded {!Ir.path}
    over an ownership domain.

    The domain tracks, per local pointer variable, whether it currently
    holds a counted reference:

    - [LNull] — holds null; retiring it is a no-op, so it owes nothing.
    - [LOwned p] — holds a counted reference to object [p]: some [load],
      [copy], [alloc] or successful [try_alloc] charged a reference count
      on its behalf, and a [retire] (or an ownership-consuming
      [store_alloc]/[set_null]/overwrite) must balance it.
    - [LRetired] — retired; the variable is dead and must not be touched
      again.

    Raw pointers ([get] results) are *borrows*: they are only safe while
    some live local still owns the object, because the count that keeps
    the object alive belongs to that local. Every op that consumes a raw
    pointer is checked against the set of current owners.

    Each rule discharges one obligation of the paper's transformation
    discipline (Section 3 / Table 1); see DESIGN.md §10 for the mapping.
    Checks that need a completed execution (the leak check) only run on
    {!Ir.Completed} paths; per-op checks run on every recorded prefix. *)

type cls =
  | Leak  (** a local declared in this operation was never retired *)
  | Double_destroy  (** a local was retired twice *)
  | Use_after_retire  (** a retired local was used again *)
  | Escaping_get
      (** a raw [get] result was used after its owning local(s) died *)
  | Unowned_store
      (** a pointer was stored to the heap without a counted reference
          backing it *)
  | Borrow_across_flush
      (** a raw [get] borrow was still held at a [flush] after every
          local owning its target had died *)
  | Lfrc_bypass  (** the code called {!Lfrc} directly, bypassing OPS *)
  | Dcas_in_cas_tier
      (** a structure claiming the [Cas] primitive tier recorded a
          double-word operation *)
  | Racy_plain_access
      (** a plain (non-atomic) value-cell access on a published object is
          concurrent with a plain write of the same cell harvested from
          another recorded path — see {!check_interference} *)
  | Weight_unbalanced
      (** the per-object mint/consume ledger did not balance on a
          completed path: a weight-bearing reference minted by a
          load/copy/alloc was never consumed by a retire or ownership
          transfer *)

let cls_name = function
  | Leak -> "leak"
  | Double_destroy -> "double-destroy"
  | Use_after_retire -> "use-after-retire"
  | Escaping_get -> "escaping-get"
  | Unowned_store -> "unowned-store"
  | Borrow_across_flush -> "borrow-across-flush"
  | Lfrc_bypass -> "lfrc-bypass"
  | Dcas_in_cas_tier -> "dcas-in-cas-tier"
  | Racy_plain_access -> "racy-plain-access"
  | Weight_unbalanced -> "weight-unbalanced"

let cls_obligation = function
  | Leak ->
      "every local must be destroyed before scope exit (paper step 6)"
  | Double_destroy ->
      "each counted reference is destroyed exactly once (Section 2 \
       invariant: rc >= live pointers)"
  | Use_after_retire ->
      "a destroyed local no longer holds a counted reference and must not \
       be read (Table 1: loads/copies require a live destination)"
  | Escaping_get ->
      "a raw pointer is only valid while a counted local keeps its target \
       alive (Section 2.1 compliance: no uncounted pointers)"
  | Unowned_store ->
      "a stored pointer must carry a counted reference \
       (LFRCStore/LFRCStoreAlloc increment-before-publish)"
  | Borrow_across_flush ->
      "a raw pointer must be dropped (or re-owned) before a \
       quiescent-point flush once its counted owners are gone — under \
       deferred-rc the flush is where parked decrements land and the \
       object may be freed"
  | Lfrc_bypass ->
      "all pointer operations must go through the sanctioned operation \
       set (Section 2.1 LFRC compliance)"
  | Dcas_in_cas_tier ->
      "a Cas-tier structure must be implementable on single-word CAS \
       hardware: no DCAS may appear on any path (the catalog's tier \
       declaration is a portability claim, checked dynamically here and \
       statically by the OPS_CAS functor signature)"
  | Racy_plain_access ->
      "a value field of a published object may only be touched through \
       the synchronizing cas_val, or plainly before publication — after \
       the publishing release there is no happens-before edge ordering \
       plain accesses from concurrent operations (the dynamic \
       sanitizer's data-race obligation, discharged statically)"
  | Weight_unbalanced ->
      "every weight-bearing reference an operation mints (load, copy, \
       alloc) must be consumed exactly once by a retire or an ownership \
       transfer — under wait-free weighted rc the count IS the sum of \
       outstanding weights, so an unmatched split strands weight on the \
       object and it can never reach zero (DESIGN.md §17 conservation \
       invariant)"

type violation = {
  cls : cls;
  op_index : int;  (** index into the path's op list; -1 = end of path *)
  key : string;
      (** stable grouping key: class + op shape with locals renumbered in
          first-seen order, so the same defect found on many paths
          aggregates into one finding *)
  message : string;
}

type lstate = LNull | LOwned of int | LRetired

(* [tier] is the primitive tier the structure under analysis *claims*
   ({!Lfrc_structures.Catalog.tier}); the permissive default [Dcas]
   imposes no extra obligation. Under [Cas], any recorded double-word
   operation is flagged — the dynamic half of the tier contract (the
   static half is the [OPS_CAS] functor signature, which catalog entries
   cannot evade but hand-written fixtures can). *)
let check ?(tier = Lfrc_structures.Catalog.Dcas) (path : Ir.path) :
    violation list =
  let viols = ref [] in
  let states : (int, lstate) Hashtbl.t = Hashtbl.create 16 in
  let declared_here : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* Normalized local names for grouping keys: locals are numbered in
     first-appearance order within this path, so the same source-level
     variable gets the same name on every path of the action. *)
  let norm : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let nname l =
    let n =
      match Hashtbl.find_opt norm l with
      | Some n -> n
      | None ->
          let n = Hashtbl.length norm in
          Hashtbl.add norm l n;
          n
    in
    Printf.sprintf "L%d" n
  in
  let state l =
    match Hashtbl.find_opt states l with Some s -> s | None -> LNull
  in
  let set l s = Hashtbl.replace states l s in
  let flag cls ~i ~key message =
    viols := { cls; op_index = i; key = cls_name cls ^ ":" ^ key; message }
             :: !viols
  in
  (* Is some live local currently holding a counted reference to [p]? *)
  let owned p =
    Hashtbl.fold (fun _ s acc -> acc || s = LOwned p) states false
  in
  (* Weight ledger: every op that charges the count on an object's behalf
     mints one weight-bearing reference; every retire / transfer /
     overwrite consumes one. Consumes are only recorded when the owning
     mint was seen on this path, so consume(p) <= mint(p) and the
     completed-path check below is a pure surplus check. Objects are
     renumbered in first-seen order for stable grouping keys, like
     locals. *)
  let minted : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let consumed : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let onorm : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let oname p =
    let n =
      match Hashtbl.find_opt onorm p with
      | Some n -> n
      | None ->
          let n = Hashtbl.length onorm in
          Hashtbl.add onorm p n;
          n
    in
    Printf.sprintf "O%d" n
  in
  let bump tbl p =
    if p <> 0 then begin
      ignore (oname p);
      Hashtbl.replace tbl p
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl p))
    end
  in
  let mint p = bump minted p in
  (* Consume whatever the local currently owns (overwrite, retire,
     transfer, clear). *)
  let release l = match state l with LOwned q -> bump consumed q | _ -> () in
  (* A raw pointer operand must be backed by a live owner. [what] names
     the consuming op for the report. *)
  let operand ~i ~what ~store p =
    if p <> 0 && not (owned p) then
      if store then
        flag Unowned_store ~i ~key:what
          (Printf.sprintf
             "%s publishes #%d, but no live local holds a counted \
              reference to it"
             what p)
      else
        flag Escaping_get ~i ~key:what
          (Printf.sprintf
             "%s uses raw pointer #%d after every local owning it was \
              retired or overwritten"
             what p)
  in
  (* Any use of a retired local. *)
  let touch ~i ~what l =
    match state l with
    | LRetired ->
        flag Use_after_retire ~i ~key:(what ^ ":" ^ nname l)
          (Printf.sprintf "%s touches local %s after its retire" what
             (nname l))
    | _ -> ()
  in
  let assign l p =
    release l;
    mint p;
    set l (if p = 0 then LNull else LOwned p)
  in
  (* Raw pointers handed out by [get], for the flush obligation: once the
     owners of a borrowed object are all dead, the borrow must not
     survive a flush (under deferred-rc that is exactly where the parked
     decrements land and the object may be freed). *)
  let borrows : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i (op : Ir.op) ->
      match op with
      | Branch _ -> ()
      | Declare { local } ->
          ignore (nname local);
          Hashtbl.replace declared_here local ();
          set local LNull
      | Retire { local } -> (
          match state local with
          | LRetired ->
              flag Double_destroy ~i ~key:(nname local)
                (Printf.sprintf "local %s retired twice" (nname local))
          | _ ->
              release local;
              set local LRetired)
      | Get { local; ptr } ->
          touch ~i ~what:"get" local;
          if ptr <> 0 then Hashtbl.replace borrows ptr ()
      | Load { cell = _; local; ptr } ->
          touch ~i ~what:"load" local;
          assign local ptr
      | Copy { local; ptr } ->
          (* Order matters: the source raw pointer must be owned *before*
             this local takes it over. *)
          operand ~i ~what:"copy" ~store:false ptr;
          touch ~i ~what:"copy" local;
          assign local ptr
      | Store { cell = _; ptr } -> operand ~i ~what:"store" ~store:true ptr
      | Store_alloc { cell = _; local } ->
          touch ~i ~what:"store_alloc" local;
          (* Ownership transfers to the heap cell; the local is cleared.
             The ledger counts the transfer as the consume: the weight
             rides along to the heap slot. *)
          release local;
          set local LNull
      | Set_null { local } ->
          touch ~i ~what:"set_null" local;
          release local;
          set local LNull
      | Cas { cell = _; old_ptr; new_ptr; ok = _ } ->
          operand ~i ~what:"cas(old)" ~store:false old_ptr;
          operand ~i ~what:"cas(new)" ~store:false new_ptr
      | Dcas { old0; old1; new0; new1; _ } ->
          if tier = Lfrc_structures.Catalog.Cas then
            flag Dcas_in_cas_tier ~i ~key:"dcas"
              "dcas recorded on a path of a structure claiming the cas \
               tier";
          operand ~i ~what:"dcas(old0)" ~store:false old0;
          operand ~i ~what:"dcas(old1)" ~store:false old1;
          operand ~i ~what:"dcas(new0)" ~store:false new0;
          operand ~i ~what:"dcas(new1)" ~store:false new1
      | Dcas_ptr_val { old_ptr; new_ptr; _ } ->
          if tier = Lfrc_structures.Catalog.Cas then
            flag Dcas_in_cas_tier ~i ~key:"dcas_ptr_val"
              "dcas_ptr_val recorded on a path of a structure claiming \
               the cas tier";
          operand ~i ~what:"dcas_ptr_val(old)" ~store:false old_ptr;
          operand ~i ~what:"dcas_ptr_val(new)" ~store:false new_ptr
      | Alloc { local; ptr; layout = _ } ->
          touch ~i ~what:"alloc" local;
          assign local ptr
      | Try_alloc { local; ptr; ok } ->
          touch ~i ~what:"try_alloc" local;
          if ok then assign local ptr
      | Flush ->
          Hashtbl.iter
            (fun p () ->
              if not (owned p) then
                flag Borrow_across_flush ~i ~key:(Printf.sprintf "p%d" p)
                  (Printf.sprintf
                     "raw pointer #%d is held across a flush after every \
                      local owning it was retired or overwritten"
                     p))
            borrows;
          (* Each borrow is charged at most once; surviving owned borrows
             stay tracked for later flushes. *)
          Hashtbl.iter
            (fun p () -> if not (owned p) then Hashtbl.remove borrows p)
            (Hashtbl.copy borrows)
      | Read_val _ | Write_val _ | Cas_val _ -> ())
    path.ops;
  (* Leak check: only meaningful on paths that ran to completion — an
     abandoned (infeasible / budget-cut) prefix legitimately leaves locals
     live. Locals declared *outside* the recorded window (a structure's
     long-lived env-locals) are exempt: their retire belongs to a later
     operation. *)
  (match path.status with
  | Ir.Completed ->
      Hashtbl.iter
        (fun local () ->
          match state local with
          | LRetired -> ()
          | LNull | LOwned _ ->
              flag Leak ~i:(-1) ~key:(nname local)
                (Printf.sprintf
                   "local %s still live at operation exit (never retired)"
                   (nname local)))
        declared_here;
      (* Weight conservation (wait-free mode's §17 invariant): every
         weight-bearing reference minted on a completed path must be
         consumed, except those still held by locals declared outside
         the window — their retire belongs to a later operation. *)
      Hashtbl.iter
        (fun p m ->
          let c = Option.value ~default:0 (Hashtbl.find_opt consumed p) in
          let carried =
            Hashtbl.fold
              (fun l s acc ->
                if s = LOwned p && not (Hashtbl.mem declared_here l) then
                  acc + 1
                else acc)
              states 0
          in
          if m - c - carried > 0 then
            flag Weight_unbalanced ~i:(-1) ~key:(oname p)
              (Printf.sprintf
                 "object %s: %d weight-bearing reference(s) minted on \
                  this path but only %d consumed — a split (copy) or \
                  acquisition without its matching drop strands weight \
                  on the count"
                 (oname p) m c))
        minted
  | Ir.Bypass op ->
      flag Lfrc_bypass ~i:(-1) ~key:op
        (Printf.sprintf
           "direct call to Lfrc.%s bypasses the OPS functor argument" op)
  | Ir.Infeasible _ | Ir.Decision_limit -> ());
  List.rev !viols

(* {2 Cross-thread interference}

   The ownership pass above is thread-local: it replays one path in
   isolation. The interference pass is the bounded two-path complement:
   it replays one recorded path against the plain value-cell writes
   harvested from the other recorded paths of the same structure (every
   action runs concurrently with every action, including a second
   instance of itself), and flags plain accesses that the publication
   discipline leaves unordered.

   The ordering model mirrors the dynamic sanitizer's: a plain write to a
   value cell of an object *allocated on this path and not yet published*
   is private initialization — the publishing release (the store / CAS
   that first makes the object reachable) orders it before every
   subsequent acquire-load. After publication there is no happens-before
   source for plain accesses, so a published plain access to a cell some
   other path plainly writes (or the same write, in a concurrent
   execution of its own action) is a race.

   Publication is tracked transitively: storing a fresh object into
   another still-private object keeps it private; it escapes when the
   container does. The [owner] oracle maps a {!Cell.id} to its owning
   object — the driver builds it from the recorder heap, whose objects
   are never freed, so the mapping is stable across every path.

   The pass is bounded exactly like the ownership pass: the harvest set
   is drawn from the enumerator's [max_paths] budget and deduplicated
   per cell, so each flagged access names one concrete interfering
   write as its second execution. *)

type plain_access = {
  pa_index : int;  (** op index in the replayed path *)
  pa_cell : int;
  pa_write : bool;
  pa_op : string;  (** rendered op, for attribution *)
}

(* Replay one path's publication state and collect every plain value-cell
   access that is not private initialization. *)
let published_accesses ~owner (path : Ir.path) : plain_access list =
  let acc = ref [] in
  let local_ptr : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let fresh : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  (* fresh container -> fresh objects stored into it while private *)
  let links : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let bind l p =
    if p = 0 then Hashtbl.remove local_ptr l
    else Hashtbl.replace local_ptr l p
  in
  let rec publish p =
    if p <> 0 && Hashtbl.mem fresh p then begin
      Hashtbl.remove fresh p;
      match Hashtbl.find_opt links p with
      | Some l ->
          Hashtbl.remove links p;
          List.iter publish !l
      | None -> ()
    end
  in
  (* A pointer landing in [cell]: escape into another private object is
     deferred publication; anything else (a root, a shared object's slot)
     publishes immediately. *)
  let store_ptr cell p =
    match owner cell with
    | Some q when Hashtbl.mem fresh q ->
        let l =
          match Hashtbl.find_opt links q with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add links q l;
              l
        in
        l := p :: !l
    | _ -> publish p
  in
  let record i cell ~write op =
    let private_init =
      match owner cell with Some p -> Hashtbl.mem fresh p | None -> false
    in
    if not private_init then
      acc :=
        { pa_index = i; pa_cell = cell; pa_write = write;
          pa_op = Ir.op_to_string op }
        :: !acc
  in
  List.iteri
    (fun i (op : Ir.op) ->
      match op with
      | Ir.Alloc { local; ptr; _ } ->
          bind local ptr;
          if ptr <> 0 then Hashtbl.replace fresh ptr ()
      | Try_alloc { local; ptr; ok } ->
          if ok then begin
            bind local ptr;
            if ptr <> 0 then Hashtbl.replace fresh ptr ()
          end
      | Load { local; ptr; _ } | Get { local; ptr } | Copy { local; ptr } ->
          bind local ptr
      | Set_null { local } | Retire { local } -> Hashtbl.remove local_ptr local
      | Store { cell; ptr } -> store_ptr cell ptr
      | Store_alloc { cell; local } -> (
          match Hashtbl.find_opt local_ptr local with
          | Some p -> store_ptr cell p
          | None -> ())
      | Cas { cell; new_ptr; ok; _ } -> if ok then store_ptr cell new_ptr
      | Dcas { cell0; cell1; new0; new1; ok; _ } ->
          if ok then begin
            store_ptr cell0 new0;
            store_ptr cell1 new1
          end
      | Dcas_ptr_val { ptr_cell; new_ptr; ok; _ } ->
          if ok then store_ptr ptr_cell new_ptr
      | Read_val { cell; _ } -> record i cell ~write:false op
      | Write_val { cell; _ } -> record i cell ~write:true op
      | Cas_val _ (* synchronizing, never a plain access *)
      | Declare _ | Branch _ | Flush ->
          ())
    path.ops;
  List.rev !acc

let published_writes ~owner (path : Ir.path) : (int * string) list =
  List.filter_map
    (fun a -> if a.pa_write then Some (a.pa_cell, a.pa_op) else None)
    (published_accesses ~owner path)

(* [writes] maps a cell id to one interfering published plain write
   (harvested across all completed paths of all the structure's actions,
   attribution string included). A published plain write always finds at
   least itself there: two concurrent instances of its own action race. *)
let check_interference ~owner ~(writes : (int, string) Hashtbl.t)
    (path : Ir.path) : violation list =
  List.filter_map
    (fun a ->
      match Hashtbl.find_opt writes a.pa_cell with
      | None -> None
      | Some interferer ->
          let what = if a.pa_write then "write" else "read" in
          Some
            {
              cls = Racy_plain_access;
              op_index = a.pa_index;
              key =
                Printf.sprintf "%s:c%d:%s" (cls_name Racy_plain_access)
                  a.pa_cell
                  (if a.pa_write then "w" else "r");
              message =
                Printf.sprintf
                  "plain %s of published value cell #%d (%s) races with %s \
                   in a concurrent execution"
                  what a.pa_cell a.pa_op interferer;
            })
    (published_accesses ~owner path)
