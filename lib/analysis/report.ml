(** Findings, summaries, rendering — the user-facing half of the checker.

    One {!finding} aggregates every path on which the same defect (same
    {!Absint.violation} grouping key) was observed, keeping one example
    path's op trace as the witness. Severity is [Error] for every
    discipline class — each one is a real protocol violation — and the
    exit code of [lfrc analyze] reflects whether any errors exist, which
    is what lets CI use the checker as a build gate. *)

type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"
let severity_of_cls (_ : Absint.cls) = Error

type finding = {
  cls : Absint.cls;
  severity : severity;
  message : string;  (** message of the first occurrence *)
  paths_hit : int;  (** number of distinct paths exhibiting the defect *)
  witness : string list;
      (** rendered op trace of one offending path, offender marked *)
  witness_decisions : string;  (** decision signature of the witness *)
}

type action_report = {
  action : string;
  paths : int;
  completed : int;
  infeasible : int;
  cut : int;  (** decision-/op-budget truncations *)
  truncated : bool;
      (** the enumerator stopped before exhausting the frontier *)
  findings : finding list;
}

type structure_report = {
  structure : string;
  actions : action_report list;
}

type t = { structures : structure_report list }

let finding_count sel t =
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc a ->
          acc + List.length (List.filter sel a.findings))
        acc s.actions)
    0 t.structures

let errors t = finding_count (fun f -> f.severity = Error) t
let total_findings t = finding_count (fun _ -> true) t

(* Render a witness trace: every op, the offending one marked with ">>".
   [op_index] = -1 marks the end of the path (leak/bypass findings). *)
let render_witness (path : Ir.path) op_index =
  let lines =
    List.mapi
      (fun i op ->
        Printf.sprintf "%s %s"
          (if i = op_index then ">>" else "  ")
          (Ir.op_to_string op))
      path.ops
  in
  lines
  @ [
      Printf.sprintf "%s [%s]"
        (if op_index = -1 then ">>" else "  ")
        (Ir.status_to_string path.status);
    ]

(* Fold the per-path violations of one action into aggregated findings,
   preserving first-occurrence order. [tier] is the structure's claimed
   primitive tier, forwarded to the abstract interpreter; [interference]
   is the cross-action pass the driver closes over the harvested write
   set ({!Absint.check_interference}) — absent for single-action use. *)
let collect_findings ?tier ?(interference = fun _ -> [])
    (paths : Ir.path list) : finding list =
  let order = ref [] in
  let tbl : (string, finding) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (path : Ir.path) ->
      let seen_here : (string, unit) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun (v : Absint.violation) ->
          (match Hashtbl.find_opt tbl v.key with
          | Some f ->
              if not (Hashtbl.mem seen_here v.key) then
                Hashtbl.replace tbl v.key
                  { f with paths_hit = f.paths_hit + 1 }
          | None ->
              order := v.key :: !order;
              Hashtbl.add tbl v.key
                {
                  cls = v.cls;
                  severity = severity_of_cls v.cls;
                  message = v.message;
                  paths_hit = 1;
                  witness = render_witness path v.op_index;
                  witness_decisions = Ir.decision_signature path.decisions;
                });
          Hashtbl.replace seen_here v.key ())
        (Absint.check ?tier path @ interference path))
    paths;
  List.rev_map (fun k -> Hashtbl.find tbl k) !order

let summarize_action ?tier ?interference ~action ~truncated
    (paths : Ir.path list) : action_report =
  let count p = List.length (List.filter p paths) in
  {
    action;
    paths = List.length paths;
    completed = count (fun (p : Ir.path) -> p.status = Ir.Completed);
    infeasible =
      count (fun (p : Ir.path) ->
          match p.status with Ir.Infeasible _ -> true | _ -> false);
    cut = count (fun (p : Ir.path) -> p.status = Ir.Decision_limit);
    truncated;
    findings = collect_findings ?tier ?interference paths;
  }

(* {2 Pretty-printing} *)

let pp ppf (t : t) =
  List.iter
    (fun (s : structure_report) ->
      Format.fprintf ppf "@[<v>%s@," s.structure;
      List.iter
        (fun (a : action_report) ->
          let verdict =
            if a.findings = [] then "ok" else
              Printf.sprintf "%d finding%s" (List.length a.findings)
                (if List.length a.findings = 1 then "" else "s")
          in
          Format.fprintf ppf
            "  %-24s %4d paths (%d completed, %d infeasible, %d cut)%s: %s@,"
            a.action a.paths a.completed a.infeasible a.cut
            (if a.truncated then " [truncated]" else "")
            verdict;
          List.iter
            (fun (f : finding) ->
              Format.fprintf ppf "    %s %s: %s (%d path%s)@,"
                (severity_name f.severity)
                (Absint.cls_name f.cls) f.message f.paths_hit
                (if f.paths_hit = 1 then "" else "s");
              Format.fprintf ppf "      obligation: %s@,"
                (Absint.cls_obligation f.cls);
              List.iter
                (fun line -> Format.fprintf ppf "      %s@," line)
                f.witness)
            a.findings)
        s.actions;
      Format.fprintf ppf "@]")
    t.structures

let summary_line (t : t) =
  let n_structs = List.length t.structures in
  let n_actions =
    List.fold_left (fun acc s -> acc + List.length s.actions) 0 t.structures
  in
  let n_paths =
    List.fold_left
      (fun acc s ->
        List.fold_left (fun acc a -> acc + a.paths) acc s.actions)
      0 t.structures
  in
  Printf.sprintf
    "%d structure%s, %d action%s, %d path%s analyzed: %d error%s"
    n_structs
    (if n_structs = 1 then "" else "s")
    n_actions
    (if n_actions = 1 then "" else "s")
    n_paths
    (if n_paths = 1 then "" else "s")
    (errors t)
    (if errors t = 1 then "" else "s")

let to_string (t : t) =
  Format.asprintf "%a%s\n" pp t (summary_line t)

(* {2 JSON} — hand-rolled, same convention as the rest of the repo
   (no JSON dependency baked into the image). *)

let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_finding b (f : finding) =
  Buffer.add_string b
    (Printf.sprintf
       "{\"class\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\",\
        \"paths_hit\":%d,\"witness_decisions\":\"%s\",\"witness\":["
       (Absint.cls_name f.cls)
       (severity_name f.severity)
       (esc f.message) f.paths_hit
       (esc f.witness_decisions));
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\"" (esc line)))
    f.witness;
  Buffer.add_string b "]}"

let json_action b (a : action_report) =
  Buffer.add_string b
    (Printf.sprintf
       "{\"action\":\"%s\",\"paths\":%d,\"completed\":%d,\
        \"infeasible\":%d,\"cut\":%d,\"truncated\":%b,\"findings\":["
       (esc a.action) a.paths a.completed a.infeasible a.cut a.truncated);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      json_finding b f)
    a.findings;
  Buffer.add_string b "]}"

let to_json (t : t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"report\":\"lfrc-analyze\",\"structures\":[";
  List.iteri
    (fun i (s : structure_report) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"structure\":\"%s\",\"actions\":[" (esc s.structure));
      List.iteri
        (fun j a ->
          if j > 0 then Buffer.add_char b ',';
          json_action b a)
        s.actions;
      Buffer.add_string b "]}")
    t.structures;
  Buffer.add_string b
    (Printf.sprintf "],\"errors\":%d}" (errors t));
  Buffer.contents b
