(** The op-level intermediate representation the static checker works on.

    One {!op} is one call into the recording {!Ops_intf.OPS} instance
    ({!Record_ops}), plus the branch markers the oracle injects at each
    nondeterministic decision point. A {!path} is the linear trace of one
    symbolically executed control-flow path through a structure operation:
    branch markers record which way the oracle sent the execution, and the
    final {!status} records how the path ended (its join point back into
    the caller, or the reason it was cut short).

    Pointers in the IR are the recorder's concrete object ids (the
    recorder materializes one real heap object per distinct symbolic
    pointer so that client code can derive cells from them); locals are
    small integers assigned at [declare]. Cell operands are {!Cell.id}s —
    sufficient for reporting, since the checker's ownership domain never
    needs to know which object a cell belongs to. *)

type ptr = int
(** Recorder object id; 0 is null (= {!Lfrc_simmem.Heap.null}). *)

(** Which kind of oracle decision a {!Branch} marker records. *)
type dkind =
  | KLoad  (** what a [load] observes: null / fresh / a repeat *)
  | KCas
  | KDcas
  | KDcasPV
  | KTryAlloc
  | KCasVal
  | KVal  (** which value a [read_val] observes *)

let dkind_name = function
  | KLoad -> "load"
  | KCas -> "cas"
  | KDcas -> "dcas"
  | KDcasPV -> "dcas_ptr_val"
  | KTryAlloc -> "try_alloc"
  | KCasVal -> "cas_val"
  | KVal -> "read_val"

type op =
  | Declare of { local : int }
  | Retire of { local : int }
  | Get of { local : int; ptr : ptr }
  | Load of { cell : int; local : int; ptr : ptr }
  | Store of { cell : int; ptr : ptr }
  | Store_alloc of { cell : int; local : int }
  | Copy of { local : int; ptr : ptr }
  | Set_null of { local : int }
  | Cas of { cell : int; old_ptr : ptr; new_ptr : ptr; ok : bool }
  | Dcas of {
      cell0 : int;
      cell1 : int;
      old0 : ptr;
      old1 : ptr;
      new0 : ptr;
      new1 : ptr;
      ok : bool;
    }
  | Dcas_ptr_val of {
      ptr_cell : int;
      val_cell : int;
      old_ptr : ptr;
      new_ptr : ptr;
      ok : bool;
    }
  | Alloc of { local : int; ptr : ptr; layout : string }
  | Try_alloc of { local : int; ptr : ptr; ok : bool }
      (** [ptr] is 0 when the oracle made the allocation fail. *)
  | Flush
      (** a quiescent-point settle of deferred bookkeeping: under
          deferred-rc every parked delta lands, so a borrowed raw pointer
          whose owners are all dead may be freed here *)
  | Read_val of { cell : int; v : int }
  | Write_val of { cell : int; v : int }
  | Cas_val of { cell : int; ok : bool }
  | Branch of { index : int; kind : dkind; arity : int; choice : int }
      (** Decision [index] of this path: the oracle picked [choice] out of
          [0 .. arity-1] (0 is always the terminating default). *)

(** How a path ended. *)
type status =
  | Completed  (** the operation returned: the join point *)
  | Infeasible of string
      (** the oracle's choices produced a state the structure's invariants
          exclude (e.g. a null-pointer cell derivation raised); the path
          is abandoned, not charged as a violation *)
  | Decision_limit
      (** the path exceeded the decision/op budget and was cut off *)
  | Bypass of string
      (** the code called {!Lfrc} directly instead of going through its
          OPS argument — reported as a violation in its own right *)

type path = {
  ops : op list;
  decisions : (dkind * int * int) list;  (** (kind, arity, choice) taken *)
  status : status;
}

let pp_op ppf op =
  let p ppf v = if v = 0 then Format.fprintf ppf "null" else Format.fprintf ppf "#%d" v in
  match op with
  | Declare { local } -> Format.fprintf ppf "declare x%d" local
  | Retire { local } -> Format.fprintf ppf "retire x%d" local
  | Get { local; ptr } -> Format.fprintf ppf "get x%d -> %a" local p ptr
  | Load { cell; local; ptr } ->
      Format.fprintf ppf "load c%d -> x%d (= %a)" cell local p ptr
  | Store { cell; ptr } -> Format.fprintf ppf "store c%d <- %a" cell p ptr
  | Store_alloc { cell; local } ->
      Format.fprintf ppf "store_alloc c%d <- x%d" cell local
  | Copy { local; ptr } -> Format.fprintf ppf "copy x%d <- %a" local p ptr
  | Set_null { local } -> Format.fprintf ppf "set_null x%d" local
  | Cas { cell; old_ptr; new_ptr; ok } ->
      Format.fprintf ppf "cas c%d %a->%a : %b" cell p old_ptr p new_ptr ok
  | Dcas { cell0; cell1; old0; old1; new0; new1; ok } ->
      Format.fprintf ppf "dcas c%d,c%d (%a,%a)->(%a,%a) : %b" cell0 cell1 p
        old0 p old1 p new0 p new1 ok
  | Dcas_ptr_val { ptr_cell; val_cell; old_ptr; new_ptr; ok } ->
      Format.fprintf ppf "dcas_ptr_val c%d,c%d %a->%a : %b" ptr_cell val_cell
        p old_ptr p new_ptr ok
  | Alloc { local; ptr; layout } ->
      Format.fprintf ppf "alloc[%s] -> x%d (= %a)" layout local p ptr
  | Try_alloc { local; ptr; ok } ->
      Format.fprintf ppf "try_alloc -> x%d (= %a) : %b" local p ptr ok
  | Flush -> Format.fprintf ppf "flush"
  | Read_val { cell; v } -> Format.fprintf ppf "read_val c%d -> %d" cell v
  | Write_val { cell; v } -> Format.fprintf ppf "write_val c%d <- %d" cell v
  | Cas_val { cell; ok } -> Format.fprintf ppf "cas_val c%d : %b" cell ok
  | Branch { index; kind; arity; choice } ->
      Format.fprintf ppf "branch[%d] %s %d/%d" index (dkind_name kind) choice
        arity

let op_to_string op = Format.asprintf "%a" pp_op op

let status_to_string = function
  | Completed -> "completed"
  | Infeasible msg -> "infeasible: " ^ msg
  | Decision_limit -> "decision-limit"
  | Bypass op -> "lfrc-bypass: " ^ op

(** Compact signature of a path's decision vector, used by the enumerator
    to deduplicate forced prefixes that clamp to the same execution. *)
let decision_signature decisions =
  String.concat ","
    (List.map (fun (_, _, choice) -> string_of_int choice) decisions)
