module Sched = Lfrc_sched.Sched
module Rng = Lfrc_util.Rng
module Metrics = Lfrc_obs.Metrics
module Tracer = Lfrc_obs.Tracer
module Profile = Lfrc_obs.Profile
module Blame = Lfrc_obs.Blame
module Obs = Lfrc_obs.Obs

module Snark_gc = Lfrc_structures.Snark.Make (Lfrc_core.Gc_ops)
module Snark_fixed_lfrc = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)
module Sundell_lfrc = Lfrc_structures.Sundell_deque.Make (Lfrc_core.Lfrc_ops)

type result = {
  table : Lfrc_util.Table.t;
  metrics : Metrics.snapshot;
  profile : Profile.t;
  blame : Blame.t;
  notes : string list;
}

(* One master switch over every layer: `--no-metrics` (cfg.metrics =
   false) returns the all-disabled bundle regardless of the per-layer
   flags, so "obs off" is provably one branch everywhere. *)
let obs (cfg : Scenario.config) =
  let o =
    Obs.create ~master:cfg.Scenario.metrics
      ~trace_capacity:cfg.Scenario.trace_capacity ~profile:cfg.Scenario.profile
      ~blame:cfg.Scenario.blame ()
  in
  (* Saved traces must be self-describing: stamp the run's configuration
     into the tracer so the chrome JSON header / timeline footer says
     what produced it. *)
  if Tracer.enabled o.Obs.tracer then
    Tracer.set_meta o.Obs.tracer
      [
        ("seed", string_of_int cfg.Scenario.seed);
        ( "rc_mode",
          if cfg.Scenario.wait_free_rc then
            Printf.sprintf "wait-free(%d)" Scenario.wait_free_weight
          else if cfg.Scenario.deferred_rc then
            Printf.sprintf "deferred-rc(%d)" Scenario.deferred_rc_epoch
          else "eager" );
        ( "fault",
          match cfg.Scenario.fault with
          | None -> "none"
          | Some s -> Lfrc_faults.Fault_plan.spec_to_string s );
        ( "obs",
          String.concat ","
            (List.filter
               (fun s -> s <> "")
               [
                 (if cfg.Scenario.metrics then "metrics" else "");
                 (if cfg.Scenario.trace_capacity > 0 then "trace" else "");
                 (if cfg.Scenario.profile then "profile" else "");
                 (if cfg.Scenario.blame then "blame" else "");
               ]) );
      ];
  o

let result ~table ?(profile = Profile.disabled) ?(blame = Blame.disabled)
    ?(notes = []) metrics =
  { table; metrics = Metrics.snapshot metrics; profile; blame; notes }

let fresh_env ?dcas_impl ?policy ?rc_mode ?gc_threshold ?metrics ?tracer
    ?lineage ?profile ?blame ?sanitize ~name () =
  let heap = Lfrc_simmem.Heap.create ~name () in
  Lfrc_core.Env.create ?dcas_impl ?policy ?rc_mode ?gc_threshold ?metrics
    ?tracer ?lineage ?profile ?blame ?sanitize heap

let time_per_op_ns = Lfrc_util.Clock.time_per_op_ns

let deque_impls () =
  [
    ("locked", (module Lfrc_structures.Locked_deque : Lfrc_structures.Deque_intf.DEQUE), false);
    ("snark-gc", (module Snark_gc : Lfrc_structures.Deque_intf.DEQUE), true);
    ("snark-lfrc", (module Snark_fixed_lfrc : Lfrc_structures.Deque_intf.DEQUE), false);
    ("sundell-lfrc", (module Sundell_lfrc : Lfrc_structures.Deque_intf.DEQUE), false);
  ]

let value_stream ~seed ~thread i = (((seed * 67) + thread) * 1_000_000) + i

(* --- multi-threaded structure workloads ---

   Shared between E11's chaos matrix and the CLI's [stats] and [trace]
   commands. Each builds its structure inside the running simulation and
   drives [workers] threads for [ops_per_worker] operations. Workers use
   the fallible push operations and treat [`Out_of_memory] as a skipped
   op: graceful degradation is part of what the chaos audit certifies. *)

module Stack = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)
module Queue_ = Lfrc_structures.Msqueue.Make (Lfrc_core.Lfrc_ops)
module Deque = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

let stack_workload ~workers ~ops_per_worker ~seed env =
  let t = Stack.create env in
  let tids =
    List.init workers (fun w ->
        Sched.spawn (fun () ->
            let h = Stack.register t in
            let rng = Rng.create ((seed * 131) + w) in
            for i = 1 to ops_per_worker do
              if Rng.int rng 3 < 2 then
                ignore (Stack.try_push h ((w * 1000) + i))
              else ignore (Stack.pop h)
            done;
            Stack.unregister h))
  in
  Sched.join tids

let queue_workload ~workers ~ops_per_worker ~seed env =
  let t = Queue_.create env in
  let tids =
    List.init workers (fun w ->
        Sched.spawn (fun () ->
            let h = Queue_.register t in
            let rng = Rng.create ((seed * 131) + w) in
            for i = 1 to ops_per_worker do
              if Rng.int rng 3 < 2 then
                ignore (Queue_.try_enqueue h ((w * 1000) + i))
              else ignore (Queue_.dequeue h)
            done;
            Queue_.unregister h))
  in
  Sched.join tids

let generic_deque_workload (module D : Lfrc_structures.Deque_intf.DEQUE)
    ~workers ~ops_per_worker ~seed env =
  let t = D.create env in
  let tids =
    List.init workers (fun w ->
        Sched.spawn (fun () ->
            let h = D.register t in
            let rng = Rng.create ((seed * 131) + w) in
            for i = 1 to ops_per_worker do
              match Rng.int rng 4 with
              | 0 -> ignore (D.try_push_left h ((w * 1000) + i))
              | 1 -> ignore (D.try_push_right h ((w * 1000) + i))
              | 2 -> ignore (D.pop_left h)
              | _ -> ignore (D.pop_right h)
            done;
            D.unregister h))
  in
  Sched.join tids

let deque_workload ~workers ~ops_per_worker ~seed env =
  generic_deque_workload (module Deque) ~workers ~ops_per_worker ~seed env

let sundell_workload ~workers ~ops_per_worker ~seed env =
  generic_deque_workload (module Sundell_lfrc) ~workers ~ops_per_worker ~seed
    env

let workloads =
  [
    ("treiber", stack_workload);
    ("msqueue", queue_workload);
    ("snark-fixed", deque_workload);
    ("sundell", sundell_workload);
  ]
