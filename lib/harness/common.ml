module Sched = Lfrc_sched.Sched
module Rng = Lfrc_util.Rng
module Metrics = Lfrc_obs.Metrics
module Tracer = Lfrc_obs.Tracer
module Profile = Lfrc_obs.Profile

module Snark_gc = Lfrc_structures.Snark.Make (Lfrc_core.Gc_ops)
module Snark_fixed_lfrc = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)
module Sundell_lfrc = Lfrc_structures.Sundell_deque.Make (Lfrc_core.Lfrc_ops)

type result = {
  table : Lfrc_util.Table.t;
  metrics : Metrics.snapshot;
  profile : Profile.t;
  notes : string list;
}

let obs (cfg : Scenario.config) =
  let metrics =
    if cfg.Scenario.metrics then Metrics.create () else Metrics.disabled
  in
  let tracer =
    if cfg.Scenario.trace_capacity > 0 then
      Tracer.create ~capacity:cfg.Scenario.trace_capacity
    else Tracer.disabled
  in
  let profile =
    if cfg.Scenario.profile then Profile.create ~metrics ()
    else Profile.disabled
  in
  (metrics, tracer, profile)

let result ~table ?(profile = Profile.disabled) ?(notes = []) metrics =
  { table; metrics = Metrics.snapshot metrics; profile; notes }

let fresh_env ?dcas_impl ?policy ?rc_mode ?gc_threshold ?metrics ?tracer
    ?lineage ?profile ?sanitize ~name () =
  let heap = Lfrc_simmem.Heap.create ~name () in
  Lfrc_core.Env.create ?dcas_impl ?policy ?rc_mode ?gc_threshold ?metrics
    ?tracer ?lineage ?profile ?sanitize heap

let time_per_op_ns = Lfrc_util.Clock.time_per_op_ns

let deque_impls () =
  [
    ("locked", (module Lfrc_structures.Locked_deque : Lfrc_structures.Deque_intf.DEQUE), false);
    ("snark-gc", (module Snark_gc : Lfrc_structures.Deque_intf.DEQUE), true);
    ("snark-lfrc", (module Snark_fixed_lfrc : Lfrc_structures.Deque_intf.DEQUE), false);
    ("sundell-lfrc", (module Sundell_lfrc : Lfrc_structures.Deque_intf.DEQUE), false);
  ]

let value_stream ~seed ~thread i = (((seed * 67) + thread) * 1_000_000) + i

(* --- multi-threaded structure workloads ---

   Shared between E11's chaos matrix and the CLI's [stats] and [trace]
   commands. Each builds its structure inside the running simulation and
   drives [workers] threads for [ops_per_worker] operations. Workers use
   the fallible push operations and treat [`Out_of_memory] as a skipped
   op: graceful degradation is part of what the chaos audit certifies. *)

module Stack = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)
module Queue_ = Lfrc_structures.Msqueue.Make (Lfrc_core.Lfrc_ops)
module Deque = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

let stack_workload ~workers ~ops_per_worker ~seed env =
  let t = Stack.create env in
  let tids =
    List.init workers (fun w ->
        Sched.spawn (fun () ->
            let h = Stack.register t in
            let rng = Rng.create ((seed * 131) + w) in
            for i = 1 to ops_per_worker do
              if Rng.int rng 3 < 2 then
                ignore (Stack.try_push h ((w * 1000) + i))
              else ignore (Stack.pop h)
            done;
            Stack.unregister h))
  in
  Sched.join tids

let queue_workload ~workers ~ops_per_worker ~seed env =
  let t = Queue_.create env in
  let tids =
    List.init workers (fun w ->
        Sched.spawn (fun () ->
            let h = Queue_.register t in
            let rng = Rng.create ((seed * 131) + w) in
            for i = 1 to ops_per_worker do
              if Rng.int rng 3 < 2 then
                ignore (Queue_.try_enqueue h ((w * 1000) + i))
              else ignore (Queue_.dequeue h)
            done;
            Queue_.unregister h))
  in
  Sched.join tids

let generic_deque_workload (module D : Lfrc_structures.Deque_intf.DEQUE)
    ~workers ~ops_per_worker ~seed env =
  let t = D.create env in
  let tids =
    List.init workers (fun w ->
        Sched.spawn (fun () ->
            let h = D.register t in
            let rng = Rng.create ((seed * 131) + w) in
            for i = 1 to ops_per_worker do
              match Rng.int rng 4 with
              | 0 -> ignore (D.try_push_left h ((w * 1000) + i))
              | 1 -> ignore (D.try_push_right h ((w * 1000) + i))
              | 2 -> ignore (D.pop_left h)
              | _ -> ignore (D.pop_right h)
            done;
            D.unregister h))
  in
  Sched.join tids

let deque_workload ~workers ~ops_per_worker ~seed env =
  generic_deque_workload (module Deque) ~workers ~ops_per_worker ~seed env

let sundell_workload ~workers ~ops_per_worker ~seed env =
  generic_deque_workload (module Sundell_lfrc) ~workers ~ops_per_worker ~seed
    env

let workloads =
  [
    ("treiber", stack_workload);
    ("msqueue", queue_workload);
    ("snark-fixed", deque_workload);
    ("sundell", sundell_workload);
  ]
