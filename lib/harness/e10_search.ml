(** E10 — what the skip-list index buys: search cost vs. set size.

    The paper cites Pugh's concurrent skip lists [16] as a beneficiary of
    GC-simplified design; this repository carries both an O(n) DCAS
    ordered list and an O(log n) skip list through the LFRC methodology.
    The table shows contains() cost against set size for both, in
    simulated steps (every cell access counts one) — the flat-list cost
    grows linearly, the skip list logarithmically, with the crossover
    around a few dozen elements. *)

module Table = Lfrc_util.Table
module Dcas = Lfrc_atomics.Dcas

module List_set = Lfrc_structures.Dlist_set.Make (Lfrc_core.Lfrc_ops)
module Skip_set = Lfrc_structures.Skiplist.Make (Lfrc_core.Lfrc_ops)

let probes = 200

(* Steps are counted via the environment's operation counters: reads +
   writes + cas + dcas attempts, all of which the simulator charges one
   step each. Measured single-threaded outside the scheduler, so counter
   deltas are exact. *)
let ops_count env =
  let c = Dcas.counters (Lfrc_core.Env.dcas env) in
  c.Dcas.reads + c.Dcas.writes + c.Dcas.cas_attempts + c.Dcas.dcas_attempts

let run_list n ~metrics ~tracer ~profile =
  let env =
    Common.fresh_env ~dcas_impl:Dcas.Atomic_step ~metrics ~tracer ~profile
      ~name:"e10-list" ()
  in
  let s = List_set.create env in
  let h = List_set.register s in
  for k = 1 to n do
    ignore (List_set.insert h (k * 2))
  done;
  let rng = Lfrc_util.Rng.create 7 in
  let before = ops_count env in
  for _ = 1 to probes do
    ignore (List_set.contains h (Lfrc_util.Rng.int rng (2 * n)))
  done;
  let cost = Float.of_int (ops_count env - before) /. Float.of_int probes in
  List_set.unregister h;
  List_set.destroy s;
  cost

let run_skip n ~metrics ~tracer ~profile =
  let env =
    Common.fresh_env ~dcas_impl:Dcas.Atomic_step ~metrics ~tracer ~profile
      ~name:"e10-skip" ()
  in
  let s = Skip_set.create env in
  let h = Skip_set.register s in
  for k = 1 to n do
    ignore (Skip_set.insert h (k * 2))
  done;
  let rng = Lfrc_util.Rng.create 7 in
  let before = ops_count env in
  for _ = 1 to probes do
    ignore (Skip_set.contains h (Lfrc_util.Rng.int rng (2 * n)))
  done;
  let cost = Float.of_int (ops_count env - before) /. Float.of_int probes in
  Skip_set.unregister h;
  Skip_set.destroy s;
  cost

let run (cfg : Scenario.config) =
  let { Lfrc_obs.Obs.metrics; tracer; profile; _ } = Common.obs cfg in
  let table =
    Table.create
      ~title:"E10: contains() cost vs set size (memory accesses per search)"
      ~columns:[ "size"; "dlist-set"; "skiplist"; "list/skip x" ]
  in
  List.iter
    (fun n ->
      let l = run_list n ~metrics ~tracer ~profile
      and s = run_skip n ~metrics ~tracer ~profile in
      Table.add_rowf table "%d|%.0f|%.0f|%.1f" n l s (l /. s))
    [ 16; 64; 256; 1024; 4096 ];
  Common.result ~table ~profile metrics
