type experiment = {
  id : string;
  title : string;
  run : unit -> Lfrc_util.Table.t;
}

let all =
  [
    {
      id = "E1";
      title = "LFRC operation overhead vs raw pointer operations";
      run = E1_overhead.run;
    };
    {
      id = "E2";
      title = "Deque contention cost by thread count (simulated)";
      run = E2_throughput.run;
    };
    {
      id = "E3";
      title = "Memory footprint across grow/drain phases";
      run = E3_footprint.run;
    };
    {
      id = "E4";
      title = "Reclamation schemes on one Treiber stack";
      run = E4_reclaim.run;
    };
    {
      id = "E5";
      title = "DCAS substrate ablation";
      run = E5_dcas.run;
    };
    {
      id = "E6";
      title = "Long-chain destroy policies";
      run = E6_destroy.run;
    };
    {
      id = "E7";
      title = "Cyclic garbage and the backup tracer";
      run = E7_cycles.run;
    };
    {
      id = "E8";
      title = "Reclamation pause distributions";
      run = E8_pauses.run;
    };
    {
      id = "E9";
      title = "Progress under a stalled thread (lock-freedom)";
      run = E9_stall.run;
    };
    {
      id = "E10";
      title = "Skip-list index payoff: search cost vs set size";
      run = E10_search.run;
    };
    {
      id = "E11";
      title = "Chaos matrix: faults injected across structures";
      run = E11_chaos.run;
    };
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> e.id = id) all

let run_and_print e =
  Printf.printf "\n[%s] %s\n%!" e.id e.title;
  let t = e.run () in
  Lfrc_util.Table.print t;
  print_newline ()

let run_all () = List.iter run_and_print all
