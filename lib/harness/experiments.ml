type experiment = {
  id : string;
  title : string;
  run : Scenario.config -> Common.result;
}

let all =
  [
    {
      id = "E1";
      title = "LFRC operation overhead vs raw pointer operations";
      run = E1_overhead.run;
    };
    {
      id = "E2";
      title = "Deque contention cost by thread count (simulated)";
      run = E2_throughput.run;
    };
    {
      id = "E3";
      title = "Memory footprint across grow/drain phases";
      run = E3_footprint.run;
    };
    {
      id = "E4";
      title = "Reclamation schemes on one Treiber stack";
      run = E4_reclaim.run;
    };
    {
      id = "E5";
      title = "DCAS substrate ablation";
      run = E5_dcas.run;
    };
    {
      id = "E6";
      title = "Long-chain destroy policies";
      run = E6_destroy.run;
    };
    {
      id = "E7";
      title = "Cyclic garbage and the backup tracer";
      run = E7_cycles.run;
    };
    {
      id = "E8";
      title = "Reclamation pause distributions";
      run = E8_pauses.run;
    };
    {
      id = "E9";
      title = "Progress under a stalled thread (lock-freedom)";
      run = E9_stall.run;
    };
    {
      id = "E10";
      title = "Skip-list index payoff: search cost vs set size";
      run = E10_search.run;
    };
    {
      id = "E11";
      title = "Chaos matrix: faults injected across structures";
      run = E11_chaos.run;
    };
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> e.id = id) all

let print_result ~id ~csv (r : Common.result) =
  if csv then print_string (Lfrc_util.Table.csv r.Common.table)
  else Lfrc_util.Table.print r.Common.table;
  if not csv then
    List.iter (fun n -> Printf.printf "\n%s\n" n) r.Common.notes;
  if not (Lfrc_obs.Metrics.is_empty r.Common.metrics) then
    Printf.printf "\n[%s metrics]\n%s\n" id
      (Lfrc_obs.Metrics.to_json r.Common.metrics);
  if Lfrc_obs.Profile.enabled r.Common.profile then
    Printf.printf "\n[%s contention]\n%s" id
      (Lfrc_obs.Profile.table r.Common.profile);
  if Lfrc_obs.Blame.enabled r.Common.blame then
    Printf.printf "\n[%s blame]\n%s" id (Lfrc_obs.Blame.report r.Common.blame)

let run_and_print ?(config = Scenario.default_config) ?(csv = false) e =
  if csv then Printf.printf "# %s: %s\n" e.id e.title
  else Printf.printf "\n[%s] %s\n%!" e.id e.title;
  let r = e.run config in
  print_result ~id:e.id ~csv r;
  print_newline ()

let run_all ?config () = List.iter (fun e -> run_and_print ?config e) all

let run_ids ?config ?csv ids =
  let selected =
    List.filter_map
      (fun id ->
        match find id with
        | Some e -> Some e
        | None ->
            Printf.eprintf "unknown experiment: %s\n" id;
            None)
      ids
  in
  List.iter (fun e -> run_and_print ?config ?csv e) selected;
  List.length selected = List.length ids
