(** E1 — LFRC operation overhead vs. raw pointer operations.

    The paper's pitch is simplicity with acceptable cost: every LFRC
    operation adds one or two count updates (and LFRCLoad turns a plain
    read into a DCAS loop). This experiment measures the per-operation
    factor on a single thread, with the [Atomic_step] substrate standing
    in for hardware DCAS. *)

module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Dcas = Lfrc_atomics.Dcas
module Lfrc = Lfrc_core.Lfrc
module Env = Lfrc_core.Env
module Table = Lfrc_util.Table

let layout = Layout.make ~name:"e1-node" ~n_ptrs:2 ~n_vals:1

let run (cfg : Scenario.config) =
  let iters = cfg.Scenario.iters in
  let { Lfrc_obs.Obs.metrics; tracer; profile; _ } = Common.obs cfg in
  let env =
    Common.fresh_env ~dcas_impl:Dcas.Atomic_step
      ~rc_mode:(Scenario.rc_mode_of cfg) ~metrics ~tracer ~profile ~name:"e1"
      ()
  in
  let heap = Env.heap env in
  let d = Env.dcas env in
  let cell_a = Heap.root heap ~name:"A" () in
  let cell_b = Heap.root heap ~name:"B" () in
  let a = Lfrc.alloc env layout and b = Lfrc.alloc env layout in
  Lfrc.store_alloc env ~dst:cell_a a;
  Lfrc.store_alloc env ~dst:cell_b b;
  let table =
    Table.create ~title:"E1: LFRC op overhead (single thread, ns/op)"
      ~columns:[ "operation"; "raw"; "lfrc"; "overhead x" ]
  in
  let row name raw_f lfrc_f =
    let raw = Common.time_per_op_ns ~iters raw_f in
    let lfrc = Common.time_per_op_ns ~iters lfrc_f in
    Table.add_rowf table "%s|%.1f|%.1f|%.2f" name raw lfrc
      (if raw > 0.0 then lfrc /. raw else 0.0)
  in
  let dest = ref Heap.null in
  row "load"
    (fun () -> ignore (Dcas.read d cell_a))
    (fun () -> Lfrc.load env ~src:cell_a ~dest);
  Lfrc.destroy env !dest;
  dest := Heap.null;
  row "store"
    (fun () -> Dcas.write d cell_a a)
    (fun () -> Lfrc.store env ~dst:cell_a a);
  let raw_local = ref Heap.null in
  let local = ref Heap.null in
  row "copy"
    (fun () -> raw_local := a)
    (fun () -> Lfrc.copy env ~dest:local a);
  Lfrc.destroy env !local;
  local := Heap.null;
  row "cas"
    (fun () -> ignore (Dcas.cas d cell_a a a))
    (fun () -> ignore (Lfrc.cas env cell_a ~old_ptr:a ~new_ptr:a));
  row "dcas"
    (fun () -> ignore (Dcas.dcas d cell_a cell_b ~old0:a ~old1:b ~new0:a ~new1:b))
    (fun () ->
      ignore (Lfrc.dcas env cell_a cell_b ~old0:a ~old1:b ~new0:a ~new1:b));
  row "alloc+free"
    (fun () ->
      let p = Heap.alloc heap layout in
      Heap.free heap p)
    (fun () ->
      let p = Lfrc.alloc env layout in
      Lfrc.destroy env p);
  (* Settle any deltas still parked by the timing loops so the snapshot's
     alloc/free balance is truthful in deferred-rc mode. *)
  if Env.rc_deferred env then ignore (Lfrc.flush env);
  Common.result ~table ~profile metrics
