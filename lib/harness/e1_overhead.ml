(** E1 — LFRC operation overhead vs. raw pointer operations.

    The paper's pitch is simplicity with acceptable cost: every LFRC
    operation adds one or two count updates (and LFRCLoad turns a plain
    read into a DCAS loop). This experiment measures the per-operation
    factor on a single thread, with the [Atomic_step] substrate standing
    in for hardware DCAS — once per count-delivery mode, so the table is
    a three-way eager vs deferred-rc vs wait-free ablation. *)

module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Dcas = Lfrc_atomics.Dcas
module Lfrc = Lfrc_core.Lfrc
module Env = Lfrc_core.Env
module Table = Lfrc_util.Table

let layout = Layout.make ~name:"e1-node" ~n_ptrs:2 ~n_vals:1

(* One measurement leg: a fresh env in [rc_mode], timing each LFRC
   operation (and, when [raw] is set, the raw substrate op it wraps).
   Returns [(op, raw_ns option, lfrc_ns)] in fixed row order. *)
let leg ~iters ~raw env =
  let heap = Env.heap env in
  let d = Env.dcas env in
  let cell_a = Heap.root heap ~name:"A" () in
  let cell_b = Heap.root heap ~name:"B" () in
  let a = Lfrc.alloc env layout and b = Lfrc.alloc env layout in
  Lfrc.store_alloc env ~dst:cell_a a;
  Lfrc.store_alloc env ~dst:cell_b b;
  let time f = Common.time_per_op_ns ~iters f in
  let row name raw_f lfrc_f =
    (name, (if raw then Some (time raw_f) else None), time lfrc_f)
  in
  let dest = ref Heap.null in
  let load =
    row "load"
      (fun () -> ignore (Dcas.read d cell_a))
      (fun () -> Lfrc.load env ~src:cell_a ~dest)
  in
  Lfrc.destroy env !dest;
  dest := Heap.null;
  let store =
    row "store"
      (fun () -> Dcas.write d cell_a a)
      (fun () -> Lfrc.store env ~dst:cell_a a)
  in
  let raw_local = ref Heap.null in
  let local = ref Heap.null in
  let copy =
    row "copy"
      (fun () -> raw_local := a)
      (fun () -> Lfrc.copy env ~dest:local a)
  in
  Lfrc.destroy env !local;
  local := Heap.null;
  let cas =
    row "cas"
      (fun () -> ignore (Dcas.cas d cell_a a a))
      (fun () -> ignore (Lfrc.cas env cell_a ~old_ptr:a ~new_ptr:a))
  in
  let dcas =
    row "dcas"
      (fun () ->
        ignore (Dcas.dcas d cell_a cell_b ~old0:a ~old1:b ~new0:a ~new1:b))
      (fun () ->
        ignore (Lfrc.dcas env cell_a cell_b ~old0:a ~old1:b ~new0:a ~new1:b))
  in
  let alloc_free =
    row "alloc+free"
      (fun () ->
        let p = Heap.alloc heap layout in
        Heap.free heap p)
      (fun () ->
        let p = Lfrc.alloc env layout in
        Lfrc.destroy env p)
  in
  (* Settle any deltas still parked by the timing loops so the snapshot's
     alloc/free balance is truthful in deferred-rc mode. *)
  if Env.rc_deferred env then ignore (Lfrc.flush env);
  [ load; store; copy; cas; dcas; alloc_free ]

let run (cfg : Scenario.config) =
  let iters = cfg.Scenario.iters in
  let { Lfrc_obs.Obs.metrics; tracer; profile; _ } = Common.obs cfg in
  let cfg_mode = Scenario.rc_mode_of cfg in
  (* The leg matching the configured mode feeds the shared metrics
     registry; the other two use private throwaway registries so the
     run's aggregate stays pure to the configured mode. *)
  let run_leg rc_mode name =
    let m =
      if rc_mode = cfg_mode then metrics else Lfrc_obs.Metrics.create ()
    in
    let env =
      Common.fresh_env ~dcas_impl:Dcas.Atomic_step ~rc_mode ~metrics:m ~tracer
        ~profile ~name ()
    in
    leg ~iters ~raw:(rc_mode = Env.Eager) env
  in
  let eager = run_leg Env.Eager "e1-eager" in
  let deferred =
    run_leg (Env.Deferred_rc { epoch = Scenario.deferred_rc_epoch })
      "e1-deferred"
  in
  let wait_free =
    run_leg (Env.Wait_free { weight = Scenario.wait_free_weight })
      "e1-wait-free"
  in
  let table =
    Table.create
      ~title:"E1: LFRC op overhead by rc mode (single thread, ns/op)"
      ~columns:
        [ "operation"; "raw"; "eager"; "deferred"; "wait-free"; "overhead x" ]
  in
  List.iter2
    (fun (name, raw_ns, eager_ns) ((_, _, deferred_ns), (_, _, wf_ns)) ->
      let raw = Option.value raw_ns ~default:0.0 in
      Table.add_rowf table "%s|%.1f|%.1f|%.1f|%.1f|%.2f" name raw eager_ns
        deferred_ns wf_ns
        (if raw > 0.0 then eager_ns /. raw else 0.0))
    eager
    (List.combine deferred wait_free);
  Common.result ~table ~profile metrics
