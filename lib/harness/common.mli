(** Shared plumbing for the experiment modules. *)

type result = {
  table : Lfrc_util.Table.t;
  metrics : Lfrc_obs.Metrics.snapshot;
      (** everything the experiment's environments recorded; {!empty} when
          the config disabled metrics *)
  profile : Lfrc_obs.Profile.t;
      (** the call-site contention profiler the experiment threaded
          through its environments; the disabled singleton when the
          config's [profile] flag is off *)
  blame : Lfrc_obs.Blame.t;
      (** the contention-causality registry (victim→culprit interference
          aggregates) blame-aware experiments threaded through their
          environments; the disabled singleton when the config's [blame]
          flag is off *)
  notes : string list;
      (** free-form addenda printed after the table — E5 uses this for
          its leak witnesses (the lineage's attribution of each leaked
          object to the call site that dropped its last reference) *)
}
(** What every experiment's [run] returns: the EXPERIMENTS.md table plus
    the observability snapshot gathered while producing it. *)

val obs : Scenario.config -> Lfrc_obs.Obs.t
(** The observability bundle an experiment should thread through every
    environment it creates, per the config — with [cfg.metrics] as the
    {!Lfrc_obs.Obs.create} master switch, so [--no-metrics] provably
    disables every layer (tracer, profiler, blame included) in one
    branch. An enabled profiler shares the bundle's metrics registry, so
    its per-call bursts land in the snapshot's histograms; an enabled
    blame registry shares the bundle's tracer, so attributed failures
    emit flow events. *)

val result :
  table:Lfrc_util.Table.t ->
  ?profile:Lfrc_obs.Profile.t ->
  ?blame:Lfrc_obs.Blame.t ->
  ?notes:string list ->
  Lfrc_obs.Metrics.t ->
  result
(** Pair the finished table with a snapshot of the registry. *)

val fresh_env :
  ?dcas_impl:Lfrc_atomics.Dcas.impl ->
  ?policy:Lfrc_core.Env.policy ->
  ?rc_mode:Lfrc_core.Env.rc_mode ->
  ?gc_threshold:int ->
  ?metrics:Lfrc_obs.Metrics.t ->
  ?tracer:Lfrc_obs.Tracer.t ->
  ?lineage:Lfrc_obs.Lineage.t ->
  ?profile:Lfrc_obs.Profile.t ->
  ?blame:Lfrc_obs.Blame.t ->
  ?sanitize:Lfrc_sanitize.Shadow.t ->
  name:string ->
  unit ->
  Lfrc_core.Env.t
(** A new heap wrapped in a new environment. *)

val time_per_op_ns : iters:int -> (unit -> unit) -> float
(** Wall-clock nanoseconds per call, after a small warmup
    (= {!Lfrc_util.Clock.time_per_op_ns}). *)

val deque_impls :
  unit -> (string * (module Lfrc_structures.Deque_intf.DEQUE) * bool) list
(** (label, implementation, is-GC-dependent) triples used by E2:
    lock-based baseline, GC-dependent Snark, LFRC Snark (corrected), and
    the CAS-only Sundell–Tsigas port under LFRC. *)

val value_stream : seed:int -> thread:int -> int -> int
(** Deterministic distinct-ish value for the [int]h op of a thread. *)

(** {2 Structure workloads}

    Multi-threaded mixed-op drivers over the three LFRC structures,
    shared by E11's chaos matrix and the CLI's [stats]/[trace] commands.
    Each must run inside {!Lfrc_sched.Sched.run}; pushes are the fallible
    [try_*] forms with [`Out_of_memory] treated as a skipped op. *)

val generic_deque_workload :
  (module Lfrc_structures.Deque_intf.DEQUE) ->
  workers:int ->
  ops_per_worker:int ->
  seed:int ->
  Lfrc_core.Env.t ->
  unit
(** The mixed-op deque driver over any DEQUE instance (the sanitizer
    harness drives the unfixed snark through it). *)

val stack_workload :
  workers:int -> ops_per_worker:int -> seed:int -> Lfrc_core.Env.t -> unit

val queue_workload :
  workers:int -> ops_per_worker:int -> seed:int -> Lfrc_core.Env.t -> unit

val deque_workload :
  workers:int -> ops_per_worker:int -> seed:int -> Lfrc_core.Env.t -> unit

val sundell_workload :
  workers:int -> ops_per_worker:int -> seed:int -> Lfrc_core.Env.t -> unit

val workloads :
  (string
  * (workers:int -> ops_per_worker:int -> seed:int -> Lfrc_core.Env.t -> unit))
  list
(** The workloads keyed by structure name (["treiber"], ["msqueue"],
    ["snark-fixed"], ["sundell"]). *)
