module History = Lfrc_linearize.History
module Spec = Lfrc_structures.Spec
module Sched = Lfrc_sched.Sched

(* The shared experiment configuration. Every experiment's [run] takes one
   of these instead of hard-coding its own knobs; each experiment maps the
   shared fields onto its workload (clamping where its matrix would
   otherwise explode — E11 documents its clamp). *)
type config = {
  threads : int;  (* worker-thread ceiling for multi-threaded experiments *)
  ops_per_thread : int;  (* per-worker operation count *)
  iters : int;  (* single-threaded timing-loop iterations (E1, E5) *)
  seed : int;  (* base seed: schedules, op mixes, value streams *)
  fault : Lfrc_faults.Fault_plan.spec option;
      (* override E11's built-in fault matrix with one spec *)
  metrics : bool;  (* collect a metrics snapshot alongside the table *)
  trace_capacity : int;  (* tracer ring size; 0 = tracing off *)
  profile : bool;  (* attribute retries/latency to call sites *)
  blame : bool;  (* attribute failed CAS/DCAS to the winning write *)
  deferred_rc : bool;  (* coalesce rc traffic in per-thread buffers *)
  wait_free_rc : bool;  (* weighted split counts, fetch-add rc path *)
}

(* Parked-adjustment budget used whenever [deferred_rc] is on: large
   enough that flushes amortize, small enough that a structure's hot
   window of dead objects turns over well inside a worker's op script. *)
let deferred_rc_epoch = 64

(* Weight batch minted per fetch-add in wait-free mode: big enough that
   borrow/share fast paths dominate, small enough that the exhaustion
   fallback is actually exercised by long runs. *)
let wait_free_weight = 64

let rc_epoch_of cfg = if cfg.deferred_rc then deferred_rc_epoch else 0

let rc_mode_of cfg =
  if cfg.wait_free_rc then Lfrc_core.Env.Wait_free { weight = wait_free_weight }
  else Lfrc_core.Env.rc_mode_of_epoch (rc_epoch_of cfg)

let default_config =
  {
    threads = 8;
    ops_per_thread = 1_500;
    iters = 200_000;
    seed = 11;
    fault = None;
    metrics = true;
    trace_capacity = 0;
    profile = false;
    blame = false;
    deferred_rc = false;
    wait_free_rc = false;
  }

type op = Push_left of int | Push_right of int | Pop_left | Pop_right

type res = Done | Popped of int option

let pp_op ppf = function
  | Push_left v -> Format.fprintf ppf "push_left %d" v
  | Push_right v -> Format.fprintf ppf "push_right %d" v
  | Pop_left -> Format.fprintf ppf "pop_left"
  | Pop_right -> Format.fprintf ppf "pop_right"

let pp_res ppf = function
  | Done -> Format.fprintf ppf "()"
  | Popped None -> Format.fprintf ppf "empty"
  | Popped (Some v) -> Format.fprintf ppf "%d" v

module Deque_spec = struct
  type state = Spec.Deque.t
  type nonrec op = op
  type nonrec res = res

  let init = Spec.Deque.empty

  let apply state = function
    | Push_left v -> (Spec.Deque.push_left v state, Done)
    | Push_right v -> (Spec.Deque.push_right v state, Done)
    | Pop_left -> (
        match Spec.Deque.pop_left state with
        | None -> (state, Popped None)
        | Some (v, state') -> (state', Popped (Some v)))
    | Pop_right -> (
        match Spec.Deque.pop_right state with
        | None -> (state, Popped None)
        | Some (v, state') -> (state', Popped (Some v)))

  let equal_res a b =
    match (a, b) with
    | Done, Done -> true
    | Popped x, Popped y -> x = y
    | Done, Popped _ | Popped _, Done -> false

  let pp_op = pp_op
  let pp_res = pp_res
end

module Deque_checker = Lfrc_linearize.Checker.Make (Deque_spec)

type outcome = {
  ok : bool;
  history : (op, res) History.event list;
  steps : int;
}

(* Build the simulation body for one scenario execution. Returns the body
   and a handle to the history it fills. Everything (heap, deque) is
   created fresh inside the body so forced re-executions are
   deterministic. *)
let make_body (module D : Lfrc_structures.Deque_intf.DEQUE) ?rc_mode ~preload
    ~threads history_out =
  let exec_op h = function
    | Push_left v ->
        D.push_left h v;
        Done
    | Push_right v ->
        D.push_right h v;
        Done
    | Pop_left -> Popped (D.pop_left h)
    | Pop_right -> Popped (D.pop_right h)
  in
  fun () ->
  let heap = Lfrc_simmem.Heap.create ~name:"scenario" () in
  let env =
    Lfrc_core.Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step
      ~gc_threshold:64 ?rc_mode heap
  in
  let history = History.create () in
  history_out := Some (history, heap);
  let d = D.create env in
  let h0 = D.register d in
  List.iter (fun v -> D.push_right h0 v) preload;
  (* Record the preloads as already-linearized pushes. *)
  List.iter
    (fun v ->
      ignore (History.record history ~thread:0 (Push_right v) (fun () -> Done)))
    preload;
  let tids =
    List.mapi
      (fun i ops ->
        Sched.spawn
          ~name:(Printf.sprintf "w%d" (i + 1))
          (fun () ->
            let h = D.register d in
            List.iter
              (fun op ->
                ignore
                  (History.record history ~thread:(i + 1) op (fun () ->
                       exec_op h op)))
              ops;
            D.unregister h))
      threads
  in
  Sched.join tids;
  let rec drain () =
    match
      History.record history ~thread:0 Pop_left (fun () ->
          Popped (D.pop_left h0))
    with
    | Popped None -> ()
    | _ -> drain ()
  in
  drain ();
  D.unregister h0;
  D.destroy d

let judge ~gc_final history_out =
  match !history_out with
  | None -> failwith "scenario: no history recorded"
  | Some (history, heap) -> (
      (* GC-dependent deques rely on the tracing collector for reclaim;
         give it one quiescent run before the leak check. *)
      if gc_final then ignore (Lfrc_simmem.Gc_trace.collect heap);
      Lfrc_simmem.Report.assert_no_leaks heap;
      let evs = History.events history in
      match Deque_checker.check_events evs with
      | Deque_checker.Linearizable _ -> ()
      | Deque_checker.Not_linearizable ->
          let buf = Buffer.create 256 in
          let ppf = Format.formatter_of_buffer buf in
          History.pp ~pp_op ~pp_res ppf history;
          Format.pp_print_flush ppf ();
          failwith ("history not linearizable:\n" ^ Buffer.contents buf))

let body_and_check (module D : Lfrc_structures.Deque_intf.DEQUE)
    ?(gc_final = false) ?rc_mode ?(preload = []) ~threads () =
  let history_out = ref None in
  let body = make_body (module D) ?rc_mode ~preload ~threads history_out in
  let check () = judge ~gc_final history_out in
  (body, check)

let run (module D : Lfrc_structures.Deque_intf.DEQUE) ?(gc_final = false)
    ?rc_mode ?(preload = []) ~threads strategy =
  let history_out = ref None in
  let body = make_body (module D) ?rc_mode ~preload ~threads history_out in
  let outcome = Sched.run ~max_steps:1_000_000 strategy body in
  let ok =
    match judge ~gc_final history_out with () -> true | exception _ -> false
  in
  let history =
    match !history_out with
    | Some (h, _) -> History.events h
    | None -> []
  in
  { ok; history; steps = outcome.Sched.steps }
