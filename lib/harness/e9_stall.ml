(** E9 — progress under a stalled thread: lock-freedom's actual content.

    The paper's case for lock-freedom (§1) is "susceptibility to delays
    and failures": with a lock, a preempted/stalled holder stalls
    everyone; with a lock-free structure, a stalled thread delays only
    itself. The [Handicap] strategy models a victim scheduled once per
    [period] steps; within a fixed budget of scheduler steps, we count
    how many operations the *whole system* completes. A stalled lock
    holder makes everyone else spin the budget away; a stalled lock-free
    thread costs only its own share. *)

module Sched = Lfrc_sched.Sched
module Table = Lfrc_util.Table
module Opmix = Lfrc_workload.Opmix

let step_budget = 150_000
let stall_period = 3_000

let run_one (module D : Lfrc_structures.Deque_intf.DEQUE) ~gc ~threads ~seed
    ~metrics ~tracer ~profile ~strategy =
  let completed = Atomic.make 0 in
  let last_progress = ref 0 in
  let max_gap = ref 0 in
  let note_progress () =
    let now = Sched.steps_so_far () in
    max_gap := max !max_gap (now - !last_progress);
    last_progress := now
  in
  let body () =
    let heap = Lfrc_simmem.Heap.create ~name:"e9" () in
    let env =
      Lfrc_core.Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step
        ~gc_threshold:(if gc then 2048 else 0)
        ~metrics ~tracer ~profile heap
    in
    let d = D.create env in
    let tids =
      List.init threads (fun thr ->
          Sched.spawn (fun () ->
              let h = D.register d in
              let stream =
                Opmix.stream Opmix.balanced_deque ~seed ~thread:thr 1_000_000
              in
              (* endless: the step budget ends the run *)
              Array.iteri
                (fun i op ->
                  let v = Common.value_stream ~seed ~thread:thr i in
                  (match op with
                  | Opmix.Push_left -> D.push_left h v
                  | Opmix.Push_right -> D.push_right h v
                  | Opmix.Pop_left -> ignore (D.pop_left h)
                  | Opmix.Pop_right -> ignore (D.pop_right h));
                  Atomic.incr completed;
                  note_progress ())
                stream))
    in
    Sched.join tids
  in
  (match Sched.run ~max_steps:step_budget strategy body with
  | _ -> failwith "E9 workload ended before the step budget"
  | exception Sched.Step_limit_exceeded _ -> ());
  max_gap := max !max_gap (step_budget - !last_progress);
  (Atomic.get completed, !max_gap)

let run (cfg : Scenario.config) =
  let threads = max 1 (min cfg.Scenario.threads 4) in
  let seed = cfg.Scenario.seed + 30 in
  let { Lfrc_obs.Obs.metrics; tracer; profile; _ } = Common.obs cfg in
  let run_one impl ~gc ~strategy =
    run_one impl ~gc ~threads ~seed ~metrics ~tracer ~profile ~strategy
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E9: ops completed in %dk steps; one thread frozen in %d-step windows"
           (step_budget / 1000) stall_period)
      ~columns:
        [ "impl"; "ops fair"; "ops stalled"; "kept %"; "max no-progress fair";
          "stalled" ]
  in
  List.iter
    (fun (label, impl, gc) ->
      let fair, gap_fair =
        run_one impl ~gc ~strategy:(Lfrc_sched.Strategy.Random seed)
      in
      let stalled, gap_stalled =
        run_one impl ~gc
          ~strategy:
            (Lfrc_sched.Strategy.Handicap
               { seed; victim = 1; period = stall_period })
      in
      Table.add_rowf table "%s|%d|%d|%.1f|%d|%d" label fair stalled
        (100.0 *. Float.of_int stalled /. Float.of_int fair)
        gap_fair gap_stalled)
    (Common.deque_impls ());
  Common.result ~table ~profile metrics
