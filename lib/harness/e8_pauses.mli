(** E8 — reclamation pause distributions: STW vs. incremental tracing vs. LFRC. See the implementation header for the experiment's design and the expected shape. *)

val run : Scenario.config -> Common.result
(** Execute the experiment under the shared configuration and return its
    table (regenerates the corresponding EXPERIMENTS.md section) plus the
    metrics snapshot its environments recorded. *)
