(** E10 — skip-list index payoff: search cost vs. set size. See the implementation header for the experiment's design and the expected shape. *)

val run : Scenario.config -> Common.result
(** Execute the experiment under the shared configuration and return its
    table (regenerates the corresponding EXPERIMENTS.md section) plus the
    metrics snapshot its environments recorded. *)
