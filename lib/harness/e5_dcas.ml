(** E5 — DCAS substrate ablation.

    The paper assumes a hardware DCAS (its Section 1 argues stronger
    primitives deserve hardware support). This experiment measures what
    the assumption is worth: the atomic reference, a striped-lock
    emulation, and the from-scratch lock-free software MCAS are compared
    (a) uncontended on one thread in wall-clock time, and (b) contended
    in the simulator, where the MCAS's helping protocol shows up as extra
    steps and failed installs.

    A separate unit test (test_mcas) demonstrates the deeper finding
    recorded in DESIGN.md: software MCAS *writes* descriptors into target
    cells, so it cannot replace hardware DCAS inside LFRC itself, whose
    load applies DCAS to potentially-freed memory. *)

module Sched = Lfrc_sched.Sched
module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Dcas = Lfrc_atomics.Dcas
module Table = Lfrc_util.Table

let wall_row table impl ~iters ~metrics ~tracer ~profile ~blame =
  let d = Dcas.create impl in
  Dcas.attach_obs d ~metrics ~tracer ~profile ~blame;
  let c0 = Cell.make 1 and c1 = Cell.make 2 in
  let ns =
    Common.time_per_op_ns ~iters (fun () ->
        ignore (Dcas.dcas d c0 c1 ~old0:1 ~old1:2 ~new0:1 ~new1:2))
  in
  Table.add_rowf table "%s|1|%.1f|-|-|-" (Dcas.impl_name d) ns

let contended_row table impl ~threads ~per_thread ~seed ~metrics ~tracer
    ~profile ~blame =
  let d = Dcas.create impl in
  Dcas.attach_obs d ~metrics ~tracer ~profile ~blame;
  let steps = ref 0 in
  let body () =
    let c0 = Cell.make 0 and c1 = Cell.make 0 in
    let tids =
      List.init threads (fun _ ->
          Sched.spawn (fun () ->
              for _ = 1 to per_thread do
                (* DCAS-increment both counters, retrying on interference. *)
                let rec attempt () =
                  let v0 = Dcas.read d c0 in
                  let v1 = Dcas.read d c1 in
                  if
                    not
                      (Dcas.dcas d c0 c1 ~old0:v0 ~old1:v1 ~new0:(v0 + 1)
                         ~new1:(v1 + 1))
                  then attempt ()
                in
                attempt ()
              done))
    in
    Sched.join tids;
    assert (Dcas.read d c0 = threads * per_thread)
  in
  Dcas.reset_counters d;
  let outcome =
    Sched.run ~max_steps:200_000_000 (Lfrc_sched.Strategy.Random seed) body
  in
  steps := outcome.Sched.steps;
  let c = Dcas.counters d in
  let total_ops = threads * per_thread in
  Table.add_rowf table "%s|%d|%.1f|%.2f|%.1f|-" (Dcas.impl_name d) threads
    (Float.of_int !steps /. Float.of_int total_ops)
    (Float.of_int c.dcas_attempts /. Float.of_int total_ops)
    (100.0 *. Float.of_int c.dcas_failures /. Float.of_int c.dcas_attempts)

(* How much count traffic LFRC itself puts on the substrate: threads
   overwrite one shared counted cell with freshly allocated nodes, so every
   operation pays an increment and (eventually) a decrement. The raw rows
   above cannot show deferred-rc coalescing — there is no count at the
   substrate level — so this row family runs the same workload in eager
   mode, with parked-delta coalescing, and with wait-free weighted
   counts, and reports single-word CAS attempts (the count updates —
   plus the unavoidable pointer-install CAS) per op. The wait-free row's
   count traffic is fetch-adds, which never retry; its CAS column is the
   pointer installs alone. *)
let lfrc_rc_row table ~label ~rc_mode ~threads ~per_thread ~seed ~metrics
    ~tracer ~profile ~blame =
  let layout = Lfrc_simmem.Layout.make ~name:"e5-node" ~n_ptrs:1 ~n_vals:1 in
  let steps = ref 0 and attempts = ref 0 and failures = ref 0 in
  let body () =
    let heap = Heap.create ~name:"e5-lfrc" () in
    let env =
      Lfrc_core.Env.create ~dcas_impl:Dcas.Atomic_step ~rc_mode ~metrics
        ~tracer ~profile ~blame heap
    in
    let root = Heap.root heap ~name:"e5-root" () in
    let tids =
      List.init threads (fun _ ->
          Sched.spawn (fun () ->
              for _ = 1 to per_thread do
                let p = Lfrc_core.Lfrc.alloc env layout in
                Lfrc_core.Lfrc.store env ~dst:root p;
                Lfrc_core.Lfrc.destroy env p
              done))
    in
    Sched.join tids;
    Lfrc_core.Lfrc.store env ~dst:root Heap.null;
    ignore (Lfrc_core.Lfrc.flush env);
    Lfrc_simmem.Report.assert_no_leaks heap;
    let c = Dcas.counters (Lfrc_core.Env.dcas env) in
    attempts := c.cas_attempts;
    failures := c.cas_failures
  in
  let outcome =
    Sched.run ~max_steps:200_000_000 (Lfrc_sched.Strategy.Random seed) body
  in
  steps := outcome.Sched.steps;
  let total_ops = threads * per_thread in
  Table.add_rowf table "%s|%d|%.1f|%.2f|%.1f|0" label threads
    (Float.of_int !steps /. Float.of_int total_ops)
    (Float.of_int !attempts /. Float.of_int total_ops)
    (if !attempts = 0 then 0.0
     else 100.0 *. Float.of_int !failures /. Float.of_int !attempts)

(* The ablation the substrate rows only hint at: the same mixed-op deque
   workload over the paper's Snark (which *needs* a double-word primitive
   — here hardware DCAS or the software MCAS emulation) and the
   Sundell–Tsigas port (single-word CAS by construction: its functor
   argument is OPS_CAS, so it cannot even name dcas), with the lock-based
   deque as the baseline. This is where "does the hardware owe us DCAS?"
   gets a direct answer: the price of not having it is either the MCAS
   emulation's helping traffic on every LFRC count update, or the
   algorithmic detour Sundell's marker nodes represent. *)
let deque_row table ~label (module D : Lfrc_structures.Deque_intf.DEQUE)
    ~dcas_impl ~threads ~per_thread ~seed ~metrics ~tracer ~profile ~blame
    ~notes =
  let steps = ref 0
  and attempts = ref 0
  and failures = ref 0
  and leaked = ref 0 in
  (* Every deque run carries the sanitizer and a lineage: the sanitizer
     vouches that a nonzero [leaked] column is the §2.1 cyclic-garbage
     concession and not a latent race/UAF, and the lineage turns each
     leaked object into a named witness — the call site that dropped the
     last reference it ever lost. *)
  let lineage = Lfrc_obs.Lineage.create ~ring:64 () in
  let sanitize = Lfrc_sanitize.Shadow.create () in
  let body () =
    let heap = Heap.create ~name:"e5-deque" () in
    let env =
      Lfrc_core.Env.create ~dcas_impl ~metrics ~tracer ~profile ~blame
        ~lineage ~sanitize heap
    in
    let t = D.create env in
    let tids =
      List.init threads (fun w ->
          Sched.spawn (fun () ->
              let h = D.register t in
              let rng = Lfrc_util.Rng.create ((seed * 131) + w) in
              for i = 1 to per_thread do
                match Lfrc_util.Rng.int rng 4 with
                | 0 -> ignore (D.try_push_left h ((w * 1000) + i))
                | 1 -> ignore (D.try_push_right h ((w * 1000) + i))
                | 2 -> ignore (D.pop_left h)
                | _ -> ignore (D.pop_right h)
              done;
              D.unregister h))
    in
    Sched.join tids;
    D.destroy t;
    (* Objects still live after teardown are the paper's §2.1 concession
       made measurable: garbage certain interleavings leave behind that
       plain reference counting never frees (the Snark rows show it; the
       Sundell port's marker protocol is cycle-free by construction and
       must report 0). Reported, not asserted — the concession is a
       finding of this ablation, not a harness failure. *)
    let leaked_ids = ref [] in
    Heap.iter_live heap (fun p -> leaked_ids := p :: !leaked_ids);
    leaked := List.length !leaked_ids;
    if !leaked_ids <> [] then begin
      let t = Lfrc_sanitize.Shadow.totals sanitize in
      notes :=
        Printf.sprintf
          "[E5 leak witness] %s @%d threads, seed %d: %d object%s leaked \
           (sanitizer: %d finding%s over %d checks)\n%s"
          label threads seed !leaked
          (if !leaked = 1 then "" else "s")
          (t.Lfrc_sanitize.Shadow.races + t.Lfrc_sanitize.Shadow.uaf
          + t.Lfrc_sanitize.Shadow.uar
          + t.Lfrc_sanitize.Shadow.aba_harmful)
          (let n =
             t.Lfrc_sanitize.Shadow.races + t.Lfrc_sanitize.Shadow.uaf
             + t.Lfrc_sanitize.Shadow.uar
             + t.Lfrc_sanitize.Shadow.aba_harmful
           in
           if n = 1 then "" else "s")
          t.Lfrc_sanitize.Shadow.checks
          (Lfrc_obs.Lineage.leak_report lineage
             ~addrs:(List.rev !leaked_ids))
        :: !notes
    end;
    let c = Dcas.counters (Lfrc_core.Env.dcas env) in
    attempts := c.dcas_attempts;
    failures := c.dcas_failures
  in
  let total_ops = threads * per_thread in
  match
    Sched.run ~max_steps:200_000_000 (Lfrc_sched.Strategy.Random seed) body
  with
  | outcome ->
      steps := outcome.Sched.steps;
      Table.add_rowf table "%s|%d|%.1f|%.2f|%.1f|%d" label threads
        (Float.of_int !steps /. Float.of_int total_ops)
        (Float.of_int !attempts /. Float.of_int total_ops)
        (if !attempts = 0 then 0.0
         else 100.0 *. Float.of_int !failures /. Float.of_int !attempts)
        !leaked
  | exception _ ->
      (* A substrate that corrupts the run (the known case: software MCAS
         writes descriptors into cells LFRC may already have freed —
         DESIGN.md §8) still gets its row, as a verdict. *)
      Table.add_rowf table "%s|%d|unsafe|-|-|-" label threads

let run (cfg : Scenario.config) =
  let { Lfrc_obs.Obs.metrics; tracer; profile; blame; _ } = Common.obs cfg in
  let seed = cfg.Scenario.seed + 20 in
  let table =
    Table.create ~title:"E5: DCAS substrates (wall ns/op at 1 thread; sim steps/op contended)"
      ~columns:
        [ "substrate"; "threads"; "ns or steps /op"; "attempts/op"; "fail %"; "leaked" ]
  in
  List.iter
    (fun impl ->
      wall_row table impl ~iters:cfg.Scenario.iters ~metrics ~tracer ~profile
        ~blame)
    [ Dcas.Atomic_step; Dcas.Striped_lock; Dcas.Software_mcas ];
  let contended_threads =
    List.filter (fun t -> t <= max 2 cfg.Scenario.threads) [ 2; 4; 8 ]
  in
  List.iter
    (fun impl ->
      List.iter
        (fun threads ->
          contended_row table impl ~threads
            ~per_thread:cfg.Scenario.ops_per_thread ~seed ~metrics ~tracer
            ~profile ~blame)
        contended_threads)
    [ Dcas.Atomic_step; Dcas.Software_mcas ];
  (* The rc-mode ablation always shows all three modes side by side; the
     per-thread op count is clamped so the ablation stays a footnote next
     to the substrate comparison this experiment is really about. *)
  let per_thread = min 500 cfg.Scenario.ops_per_thread in
  List.iter
    (fun (label, rc_mode) ->
      List.iter
        (fun threads ->
          lfrc_rc_row table ~label ~rc_mode ~threads ~per_thread ~seed
            ~metrics ~tracer ~profile ~blame)
        contended_threads)
    [
      ("lfrc-rc eager", Lfrc_core.Env.Eager);
      ( "lfrc-rc deferred",
        Lfrc_core.Env.Deferred_rc { epoch = Scenario.deferred_rc_epoch } );
      ( "lfrc-rc wait-free",
        Lfrc_core.Env.Wait_free { weight = Scenario.wait_free_weight } );
    ];
  (* Deque head-to-head: what each primitive tier buys at the structure
     level. Same clamped op budget as the coalescing ablation. *)
  let module Snark_lfrc = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)
  in
  let module Sundell_lfrc =
    Lfrc_structures.Sundell_deque.Make (Lfrc_core.Lfrc_ops)
  in
  let deque_rows =
    [
      ( "snark hw-dcas",
        (module Snark_lfrc : Lfrc_structures.Deque_intf.DEQUE),
        Dcas.Atomic_step );
      ( "snark sw-mcas",
        (module Snark_lfrc : Lfrc_structures.Deque_intf.DEQUE),
        Dcas.Software_mcas );
      ( "sundell pure-cas",
        (module Sundell_lfrc : Lfrc_structures.Deque_intf.DEQUE),
        Dcas.Atomic_step );
      ( "locked",
        (module Lfrc_structures.Locked_deque : Lfrc_structures.Deque_intf.DEQUE),
        Dcas.Atomic_step );
    ]
  in
  let notes = ref [] in
  List.iter
    (fun (label, impl, dcas_impl) ->
      List.iter
        (fun threads ->
          deque_row table ~label impl ~dcas_impl ~threads ~per_thread ~seed
            ~metrics ~tracer ~profile ~blame ~notes)
        contended_threads)
    deque_rows;
  Common.result ~table ~profile ~blame ~notes:(List.rev !notes) metrics
