(** E5 — DCAS substrate ablation.

    The paper assumes a hardware DCAS (its Section 1 argues stronger
    primitives deserve hardware support). This experiment measures what
    the assumption is worth: the atomic reference, a striped-lock
    emulation, and the from-scratch lock-free software MCAS are compared
    (a) uncontended on one thread in wall-clock time, and (b) contended
    in the simulator, where the MCAS's helping protocol shows up as extra
    steps and failed installs.

    A separate unit test (test_mcas) demonstrates the deeper finding
    recorded in DESIGN.md: software MCAS *writes* descriptors into target
    cells, so it cannot replace hardware DCAS inside LFRC itself, whose
    load applies DCAS to potentially-freed memory. *)

module Sched = Lfrc_sched.Sched
module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Dcas = Lfrc_atomics.Dcas
module Table = Lfrc_util.Table

let wall_row table impl ~iters ~metrics ~tracer ~profile =
  let d = Dcas.create impl in
  Dcas.attach_obs d ~metrics ~tracer ~profile;
  let c0 = Cell.make 1 and c1 = Cell.make 2 in
  let ns =
    Common.time_per_op_ns ~iters (fun () ->
        ignore (Dcas.dcas d c0 c1 ~old0:1 ~old1:2 ~new0:1 ~new1:2))
  in
  Table.add_rowf table "%s|1|%.1f|-|-" (Dcas.impl_name d) ns

let contended_row table impl ~threads ~per_thread ~seed ~metrics ~tracer ~profile =
  let d = Dcas.create impl in
  Dcas.attach_obs d ~metrics ~tracer ~profile;
  let steps = ref 0 in
  let body () =
    let c0 = Cell.make 0 and c1 = Cell.make 0 in
    let tids =
      List.init threads (fun _ ->
          Sched.spawn (fun () ->
              for _ = 1 to per_thread do
                (* DCAS-increment both counters, retrying on interference. *)
                let rec attempt () =
                  let v0 = Dcas.read d c0 in
                  let v1 = Dcas.read d c1 in
                  if
                    not
                      (Dcas.dcas d c0 c1 ~old0:v0 ~old1:v1 ~new0:(v0 + 1)
                         ~new1:(v1 + 1))
                  then attempt ()
                in
                attempt ()
              done))
    in
    Sched.join tids;
    assert (Dcas.read d c0 = threads * per_thread)
  in
  Dcas.reset_counters d;
  let outcome =
    Sched.run ~max_steps:200_000_000 (Lfrc_sched.Strategy.Random seed) body
  in
  steps := outcome.Sched.steps;
  let c = Dcas.counters d in
  let total_ops = threads * per_thread in
  Table.add_rowf table "%s|%d|%.1f|%.2f|%.1f" (Dcas.impl_name d) threads
    (Float.of_int !steps /. Float.of_int total_ops)
    (Float.of_int c.dcas_attempts /. Float.of_int total_ops)
    (100.0 *. Float.of_int c.dcas_failures /. Float.of_int c.dcas_attempts)

(* How much count traffic LFRC itself puts on the substrate: threads
   overwrite one shared counted cell with freshly allocated nodes, so every
   operation pays an increment and (eventually) a decrement. The raw rows
   above cannot show deferred-rc coalescing — there is no count at the
   substrate level — so this row family runs the same workload in eager
   mode and with parked-delta coalescing, and reports single-word CAS
   attempts (the count updates) per op. *)
let lfrc_rc_row table ~rc_epoch ~threads ~per_thread ~seed ~metrics ~tracer
    ~profile =
  let layout = Lfrc_simmem.Layout.make ~name:"e5-node" ~n_ptrs:1 ~n_vals:1 in
  let steps = ref 0 and attempts = ref 0 and failures = ref 0 in
  let body () =
    let heap = Heap.create ~name:"e5-lfrc" () in
    let env =
      Lfrc_core.Env.create ~dcas_impl:Dcas.Atomic_step ~rc_epoch ~metrics
        ~tracer ~profile heap
    in
    let root = Heap.root heap ~name:"e5-root" () in
    let tids =
      List.init threads (fun _ ->
          Sched.spawn (fun () ->
              for _ = 1 to per_thread do
                let p = Lfrc_core.Lfrc.alloc env layout in
                Lfrc_core.Lfrc.store env ~dst:root p;
                Lfrc_core.Lfrc.destroy env p
              done))
    in
    Sched.join tids;
    Lfrc_core.Lfrc.store env ~dst:root Heap.null;
    ignore (Lfrc_core.Lfrc.flush env);
    Lfrc_simmem.Report.assert_no_leaks heap;
    let c = Dcas.counters (Lfrc_core.Env.dcas env) in
    attempts := c.cas_attempts;
    failures := c.cas_failures
  in
  let outcome =
    Sched.run ~max_steps:200_000_000 (Lfrc_sched.Strategy.Random seed) body
  in
  steps := outcome.Sched.steps;
  let total_ops = threads * per_thread in
  Table.add_rowf table "%s|%d|%.1f|%.2f|%.1f"
    (if rc_epoch > 0 then "lfrc-rc deferred" else "lfrc-rc eager")
    threads
    (Float.of_int !steps /. Float.of_int total_ops)
    (Float.of_int !attempts /. Float.of_int total_ops)
    (if !attempts = 0 then 0.0
     else 100.0 *. Float.of_int !failures /. Float.of_int !attempts)

let run (cfg : Scenario.config) =
  let metrics, tracer, profile = Common.obs cfg in
  let seed = cfg.Scenario.seed + 20 in
  let table =
    Table.create ~title:"E5: DCAS substrates (wall ns/op at 1 thread; sim steps/op contended)"
      ~columns:[ "substrate"; "threads"; "ns or steps /op"; "attempts/op"; "fail %" ]
  in
  List.iter
    (fun impl -> wall_row table impl ~iters:cfg.Scenario.iters ~metrics ~tracer ~profile)
    [ Dcas.Atomic_step; Dcas.Striped_lock; Dcas.Software_mcas ];
  let contended_threads =
    List.filter (fun t -> t <= max 2 cfg.Scenario.threads) [ 2; 4; 8 ]
  in
  List.iter
    (fun impl ->
      List.iter
        (fun threads ->
          contended_row table impl ~threads
            ~per_thread:cfg.Scenario.ops_per_thread ~seed ~metrics ~tracer ~profile)
        contended_threads)
    [ Dcas.Atomic_step; Dcas.Software_mcas ];
  (* The coalescing ablation always shows both modes side by side; the
     per-thread op count is clamped so the ablation stays a footnote next
     to the substrate comparison this experiment is really about. *)
  let per_thread = min 500 cfg.Scenario.ops_per_thread in
  List.iter
    (fun rc_epoch ->
      List.iter
        (fun threads ->
          lfrc_rc_row table ~rc_epoch ~threads ~per_thread ~seed ~metrics
            ~tracer ~profile)
        contended_threads)
    [ 0; Scenario.deferred_rc_epoch ];
  Common.result ~table ~profile metrics
