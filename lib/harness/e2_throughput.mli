(** E2 — deque cost under contention, by thread count (simulated steps). See the implementation header for the experiment's design and the expected shape. *)

val run : Scenario.config -> Common.result
(** Execute the experiment under the shared configuration and return its
    table (regenerates the corresponding EXPERIMENTS.md section) plus the
    metrics snapshot its environments recorded. *)
