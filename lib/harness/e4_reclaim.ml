(** E4 — reclamation schemes on the same Treiber stack.

    LFRC (this paper), hazard pointers, epoch-based reclamation, Valois
    free-list counting, and a no-reclamation baseline share one stack
    algorithm and one heap; four simulated threads hammer a 50/50
    push/pop mix. Reported: simulated steps per op (the scheme's access
    overhead and retries), and residual garbage — objects unlinked but
    not yet returned to the allocator when the run ends (LFRC: none by
    construction; hazard: bounded by the scan threshold; epoch: whatever
    the last epochs hold; leak baseline: everything). *)

module Sched = Lfrc_sched.Sched
module Heap = Lfrc_simmem.Heap
module Table = Lfrc_util.Table
module Opmix = Lfrc_workload.Opmix

module Treiber_lfrc = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)
module Treiber_leak = Lfrc_structures.Treiber.Make (Lfrc_core.Gc_ops)

type row = {
  steps_per_op : float;
  residual : int; (* live minus still-reachable stack content *)
  bounded_residual : string; (* scheme-reported garbage high-water mark *)
}

(* Run the mixed workload on stack [ops] inside a simulation; returns the
   row. [residual_of] runs after the simulation, quiescently. *)
let drive ~name ~make ~residual_note ~threads ~ops_per_thread ~seed ~metrics
    ~tracer ~profile =
  let result = ref None in
  let body () =
    let env =
      Lfrc_core.Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step ~metrics
        ~tracer ~profile
        (Heap.create ~name ())
    in
    let push, pop, live_reachable, finish = make env in
    let tids =
      List.init threads (fun thr ->
          Sched.spawn (fun () ->
              let do_push, do_pop = push thr, pop thr in
              let stream =
                Opmix.stream Opmix.right_only ~seed ~thread:thr ops_per_thread
              in
              Array.iteri
                (fun i op ->
                  let v = Common.value_stream ~seed ~thread:thr i in
                  match op with
                  | Opmix.Push_right | Opmix.Push_left -> do_push v
                  | Opmix.Pop_right | Opmix.Pop_left -> ignore (do_pop ()))
                stream))
    in
    Sched.join tids;
    let heap = Lfrc_core.Env.heap env in
    let live_before = Heap.live_count heap in
    let still_in_stack = live_reachable () in
    let residual = live_before - still_in_stack in
    result := Some (residual, residual_note (), finish);
    ()
  in
  let outcome = Sched.run ~max_steps:200_000_000 (Lfrc_sched.Strategy.Random seed) body in
  let residual, note, finish = Option.get !result in
  finish ();
  {
    steps_per_op =
      Float.of_int outcome.Sched.steps
      /. Float.of_int (threads * ops_per_thread);
    residual;
    bounded_residual = note;
  }

(* Count the values still reachable in the stack by draining it. *)
let drain_count pop =
  let rec go n = match pop () with None -> n | Some _ -> go (n + 1) in
  go 0

let run (cfg : Scenario.config) =
  (* Four threads saturate the single-stack contention picture; the
     config's ceiling only lowers it. Seeds 21..25 at the default base. *)
  let threads = max 1 (min cfg.Scenario.threads 4) in
  let ops_per_thread = cfg.Scenario.ops_per_thread in
  let seed0 = cfg.Scenario.seed + 10 in
  let { Lfrc_obs.Obs.metrics; tracer; profile; _ } = Common.obs cfg in
  let drive = drive ~threads ~ops_per_thread ~metrics ~tracer ~profile in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "E4: reclamation schemes, %d threads x %d ops"
           threads ops_per_thread)
      ~columns:[ "scheme"; "steps/op"; "residual garbage"; "scheme hwm" ]
  in
  let add label m =
    Table.add_rowf table "%s|%.1f|%d|%s" label m.steps_per_op m.residual
      m.bounded_residual
  in
  (* LFRC *)
  add "lfrc"
    (drive ~name:"e4-lfrc" ~seed:seed0
       ~make:(fun env ->
         let s = Treiber_lfrc.create env in
         let handles = Array.init threads (fun _ -> Treiber_lfrc.register s) in
         let h0 = Treiber_lfrc.register s in
         ( (fun thr v -> Treiber_lfrc.push handles.(thr) v),
           (fun thr () -> Treiber_lfrc.pop handles.(thr)),
           (fun () -> drain_count (fun () -> Treiber_lfrc.pop h0)),
           fun () -> () ))
       ~residual_note:(fun () -> "0 by construction"));
  (* Hazard pointers *)
  add "hazard"
    (drive ~name:"e4-hp" ~seed:(seed0 + 1)
       ~make:(fun env ->
         let s = Lfrc_reclaim.Hp_stack.create env in
         let handles =
           Array.init threads (fun _ -> Lfrc_reclaim.Hp_stack.register s)
         in
         let h0 = Lfrc_reclaim.Hp_stack.register s in
         ( (fun thr v -> Lfrc_reclaim.Hp_stack.push handles.(thr) v),
           (fun thr () -> Lfrc_reclaim.Hp_stack.pop handles.(thr)),
           (fun () -> drain_count (fun () -> Lfrc_reclaim.Hp_stack.pop h0)),
           fun () -> () ))
       ~residual_note:(fun () -> "scan threshold 64"));
  (* Epoch *)
  add "epoch"
    (drive ~name:"e4-ebr" ~seed:(seed0 + 2)
       ~make:(fun env ->
         let s = Lfrc_reclaim.Ebr_stack.create env in
         let handles =
           Array.init threads (fun _ -> Lfrc_reclaim.Ebr_stack.register s)
         in
         let h0 = Lfrc_reclaim.Ebr_stack.register s in
         ( (fun thr v -> Lfrc_reclaim.Ebr_stack.push handles.(thr) v),
           (fun thr () -> Lfrc_reclaim.Ebr_stack.pop handles.(thr)),
           (fun () -> drain_count (fun () -> Lfrc_reclaim.Ebr_stack.pop h0)),
           fun () -> () ))
       ~residual_note:(fun () -> "last 2 epochs"));
  (* Valois free-list *)
  add "valois"
    (drive ~name:"e4-valois" ~seed:(seed0 + 3)
       ~make:(fun env ->
         let s = Lfrc_reclaim.Valois_stack.create env in
         let h = Lfrc_reclaim.Valois_stack.register s in
         ( (fun _thr v -> Lfrc_reclaim.Valois_stack.push h v),
           (fun _thr () -> Lfrc_reclaim.Valois_stack.pop h),
           (fun () -> drain_count (fun () -> Lfrc_reclaim.Valois_stack.pop h)),
           fun () -> () ))
       ~residual_note:(fun () -> "free-list, never returned"));
  (* No reclamation *)
  add "leak"
    (drive ~name:"e4-leak" ~seed:(seed0 + 4)
       ~make:(fun env ->
         let s = Treiber_leak.create env in
         let handles = Array.init threads (fun _ -> Treiber_leak.register s) in
         let h0 = Treiber_leak.register s in
         ( (fun thr v -> Treiber_leak.push handles.(thr) v),
           (fun thr () -> Treiber_leak.pop handles.(thr)),
           (fun () -> drain_count (fun () -> Treiber_leak.pop h0)),
           fun () -> () ))
       ~residual_note:(fun () -> "unbounded"));
  Common.result ~table ~profile metrics
