(* Pure diff engine behind `bench --compare` (and its `--explain` mode).

   Extracted from bench/main.ml so the gating logic is testable against
   hand-edited baselines without touching the filesystem: [diff] works
   over parsed {!Lfrc_util.Json} documents and returns a verdict record;
   the callers render it and turn it into an exit code.

   Gating policy (PR 7's grace rules, extended to histograms):
   - ops/sec regressions beyond the threshold gate; wall-clock is noisy,
     so the threshold is generous (default 30%).
   - counters are deterministic under the simulated scheduler: >= 5%
     drift on a matched workload is a behavior change and gates.
   - histograms gate on their "n" (observation count — deterministic),
     same 5% rule; the summary statistics are derived and never gated.
   - anything absent from the baseline — a new workload, a new counter,
     a NEW HISTOGRAM KEY — is information, not drift: reported, never
     gated, so a PR adding an instrument does not need its baseline
     regenerated in the same commit. *)

module J = Lfrc_util.Json

type row = {
  name : string;
  base_ops : float option;
  cur_ops : float option;
  pct : float option;  (* ops/sec delta, when both sides have it *)
  is_new : bool;
  regressed : bool;
}

type drift = {
  workload : string;
  key : string;
  base : float;
  cur : float;
  pct : float;
}

type verdict = {
  rows : row list;
  counter_drift : drift list;  (* matched counters, |delta| >= 5%: gates *)
  counter_new : (string * string * float) list;  (* report-only *)
  hist_drift : drift list;  (* matched histogram "n", |delta| >= 5%: gates *)
  hist_new : (string * string) list;  (* report-only *)
  regressions : (string * float) list;  (* (workload, pct): gates *)
}

let ok v = v.regressions = [] && v.counter_drift = [] && v.hist_drift = []

let workloads doc =
  match Option.bind (J.member "workloads" doc) J.to_list with
  | Some l -> l
  | None -> []

let wl_name w = Option.bind (J.member "structure" w) J.to_str

let find_workload doc name =
  List.find_opt (fun w -> wl_name w = Some name) (workloads doc)

let num_fields path_ w =
  match Option.map J.obj_fields (J.path path_ w) with
  | Some fields ->
      List.filter_map
        (fun (k, v) -> Option.map (fun n -> (k, n)) (J.to_num v))
        fields
  | None -> []

let counters w = num_fields [ "metrics"; "counters" ] w

(* A histogram's deterministic axis is its observation count. *)
let histogram_ns w =
  match Option.map J.obj_fields (J.path [ "metrics"; "histograms" ] w) with
  | Some fields ->
      List.filter_map
        (fun (k, v) ->
          Option.map (fun n -> (k, n)) (Option.bind (J.member "n" v) J.to_num))
        fields
  | None -> []

let ops w = Option.bind (J.member "ops_per_sec" w) J.to_num

let diff ~threshold ~current ~baseline =
  let counter_drift = ref []
  and counter_new = ref []
  and hist_drift = ref []
  and hist_new = ref []
  and regressions = ref [] in
  let series ~name ~gated_out ~new_out ~base_kvs ~cur_kvs ~on_new =
    List.iter
      (fun (key, c) ->
        match List.assoc_opt key base_kvs with
        | Some b when b > 0. ->
            let pct = (c -. b) /. b *. 100. in
            if Float.abs pct >= 5. then
              gated_out := { workload = name; key; base = b; cur = c; pct }
                           :: !gated_out
        | Some _ -> ()
        | None -> if c > 0. then new_out := on_new key c :: !new_out)
      cur_kvs;
    (* Registries only serialize non-zero series, so a known counter the
       current run drives all the way to zero (wait-free mode's
       lfrc.rc_retry, say) is simply absent from the current JSON. That
       is the strongest possible drift, not a missing instrument: compare
       it as 0, i.e. a -100% move on the matched key. *)
    List.iter
      (fun (key, b) ->
        if b > 0. && List.assoc_opt key cur_kvs = None then
          gated_out :=
            { workload = name; key; base = b; cur = 0.; pct = -100. }
            :: !gated_out)
      base_kvs
  in
  let rows =
    List.filter_map
      (fun cur_wl ->
        match wl_name cur_wl with
        | None -> None
        | Some name ->
            let cur_ops = ops cur_wl in
            Some
              (match find_workload baseline name with
              | None ->
                  {
                    name;
                    base_ops = None;
                    cur_ops;
                    pct = None;
                    is_new = true;
                    regressed = false;
                  }
              | Some base_wl ->
                  let base_ops = ops base_wl in
                  let pct =
                    match (base_ops, cur_ops) with
                    | Some b, Some c when b > 0. ->
                        Some ((c -. b) /. b *. 100.)
                    | _ -> None
                  in
                  let regressed =
                    match pct with Some p -> p < -.threshold | None -> false
                  in
                  if regressed then
                    regressions := (name, Option.get pct) :: !regressions;
                  series ~name ~gated_out:counter_drift ~new_out:counter_new
                    ~base_kvs:(counters base_wl) ~cur_kvs:(counters cur_wl)
                    ~on_new:(fun key c -> (name, key, c));
                  series ~name ~gated_out:hist_drift ~new_out:hist_new
                    ~base_kvs:(histogram_ns base_wl)
                    ~cur_kvs:(histogram_ns cur_wl)
                    ~on_new:(fun key _ -> (name, key));
                  { name; base_ops; cur_ops; pct; is_new = false; regressed }))
      (workloads current)
  in
  {
    rows;
    counter_drift = List.rev !counter_drift;
    counter_new = List.rev !counter_new;
    hist_drift = List.rev !hist_drift;
    hist_new = List.rev !hist_new;
    regressions = List.rev !regressions;
  }

(* --- rendering --- *)

let render ~threshold ~current_file ~baseline_file v =
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "# bench compare: %s vs baseline %s (threshold %.0f%%)\n" current_file
    baseline_file threshold;
  p "%-22s %12s %12s %9s\n" "structure" "baseline" "current" "delta";
  List.iter
    (fun r ->
      if r.is_new then
        p "%-22s %12s %12s %9s  (new workload)\n" r.name "-"
          (match r.cur_ops with
          | Some c -> Printf.sprintf "%.0f" c
          | None -> "?")
          "-"
      else
        match (r.base_ops, r.cur_ops, r.pct) with
        | Some b, Some c, Some pct ->
            p "%-22s %12.0f %12.0f %+8.1f%%%s\n" r.name b c pct
              (if r.regressed then "  <-- REGRESSION" else "")
        | _ -> p "%-22s (ops/sec missing on one side)\n" r.name)
    v.rows;
  (match v.counter_new with
  | [] -> ()
  | fresh ->
      p "new counters (absent from baseline; not gated):\n";
      List.iter
        (fun (wl, key, c) -> p "  %-14s %-24s %12s %12.0f      new\n" wl key "-" c)
        fresh);
  (match v.hist_new with
  | [] -> ()
  | fresh ->
      p "new histograms (absent from baseline; not gated):\n";
      List.iter (fun (wl, key) -> p "  %-14s %-24s      new\n" wl key) fresh);
  (match v.counter_drift with
  | [] -> p "counters: all within 5%% of baseline\n"
  | drift ->
      p "counter drift (|delta| >= 5%%):\n";
      List.iter
        (fun d ->
          p "  %-14s %-24s %12.0f %12.0f %+8.1f%%\n" d.workload d.key d.base
            d.cur d.pct)
        drift);
  (match v.hist_drift with
  | [] -> ()
  | drift ->
      p "histogram drift (observation count \"n\", |delta| >= 5%%):\n";
      List.iter
        (fun d ->
          p "  %-14s %-24s %12.0f %12.0f %+8.1f%%\n" d.workload d.key d.base
            d.cur d.pct)
        drift);
  if ok v then
    p "no ops/sec regression beyond %.0f%%, no counter/histogram drift\n"
      threshold
  else begin
    List.iter
      (fun (name, pct) ->
        p "REGRESSION: %s ops/sec %+.1f%% (threshold %.0f%%)\n" name pct
          threshold)
      v.regressions;
    if v.counter_drift <> [] then
      p "COUNTER DRIFT: %d counter(s) moved >= 5%% on matched workloads \
         (deterministic under the simulator, so this is a behavior change, \
         not noise)\n"
        (List.length v.counter_drift);
    if v.hist_drift <> [] then
      p "HISTOGRAM DRIFT: %d histogram(s) changed observation count >= 5%% \
         on matched workloads\n"
        (List.length v.hist_drift)
  end;
  Buffer.contents buf

(* --- the explainer ---

   Attribute each regressed workload's ops/sec drift to what moved
   underneath it: the counters (all of them, not just the gated >= 5%
   set), the profiler's per-site wasted attempts, and the blame layer's
   victim -> culprit pairs. None of this proves causation — it ranks the
   instruments that moved the most, which is where to look first. *)

let profile_sites w =
  match Option.bind (J.path [ "profile"; "sites" ] w) J.to_list with
  | Some sites ->
      List.filter_map
        (fun s ->
          match
            ( Option.bind (J.member "site" s) J.to_str,
              Option.bind (J.member "wasted" s) J.to_num )
          with
          | Some site, Some wasted -> Some (site, wasted)
          | _ -> None)
        sites
  | None -> []

let blame_pairs w =
  match Option.bind (J.path [ "blame"; "pairs" ] w) J.to_list with
  | Some pairs ->
      List.filter_map
        (fun pr ->
          match
            ( Option.bind (J.member "victim" pr) J.to_str,
              Option.bind (J.member "culprit" pr) J.to_str,
              Option.bind (J.member "wasted" pr) J.to_num )
          with
          | Some v, Some c, Some w -> Some (v ^ " -> " ^ c, w)
          | _ -> None)
        pairs
  | None -> []

(* Movers of one keyed series between two sides, largest |delta| first.
   Keys on either side only are kept (delta from/to 0). *)
let movers base_kvs cur_kvs =
  let keys =
    List.sort_uniq compare (List.map fst base_kvs @ List.map fst cur_kvs)
  in
  List.filter_map
    (fun k ->
      let b = Option.value ~default:0. (List.assoc_opt k base_kvs)
      and c = Option.value ~default:0. (List.assoc_opt k cur_kvs) in
      if b = c then None else Some (k, b, c))
    keys
  |> List.sort (fun (k1, b1, c1) (k2, b2, c2) ->
         compare (Float.abs (c2 -. b2), k1) (Float.abs (c1 -. b1), k2))

let render_movers buf ~label ~top base_kvs cur_kvs =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match movers base_kvs cur_kvs with
  | [] -> p "  %s: nothing moved\n" label
  | ms ->
      p "  %s (top %d of %d movers):\n" label (min top (List.length ms))
        (List.length ms);
      List.iteri
        (fun i (k, b, c) ->
          if i < top then
            let pct =
              if b > 0. then Printf.sprintf "%+.1f%%" ((c -. b) /. b *. 100.)
              else "new"
            in
            p "    %-40s %12.0f -> %-12.0f %s\n" k b c pct)
        ms

let explain ~current ~baseline v =
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let explain_one name pct =
    p "\nwhy: %s ops/sec %+.1f%%\n" name pct;
    match (find_workload baseline name, find_workload current name) with
    | Some bw, Some cw ->
        render_movers buf ~label:"counters" ~top:5 (counters bw)
          (counters cw);
        render_movers buf ~label:"histogram n" ~top:5 (histogram_ns bw)
          (histogram_ns cw);
        (match (profile_sites bw, profile_sites cw) with
        | [], [] -> p "  profile: no site data on either side\n"
        | b, c -> render_movers buf ~label:"profile wasted attempts" ~top:5 b c);
        (match (blame_pairs bw, blame_pairs cw) with
        | [], [] -> p "  blame: no victim->culprit data on either side\n"
        | [], c ->
            p "  blame (new in this run; baseline has none):\n";
            List.iteri
              (fun i (k, w) -> if i < 5 then p "    %-40s %12.0f wasted\n" k w)
              c
        | b, c -> render_movers buf ~label:"blame victim -> culprit" ~top:5 b c)
    | _ -> p "  (workload missing on one side)\n"
  in
  (match v.regressions with
  | [] -> (
      p "\nno ops/sec regressions to explain";
      (* Still useful on green runs: name the biggest movers overall. *)
      match
        List.filter_map
          (fun (r : row) ->
            match r.pct with Some pct -> Some (r, pct) | None -> None)
          v.rows
        |> List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a))
      with
      | (worst, pct) :: _ when Float.abs pct >= 1.0 ->
          p "; largest mover:\n";
          explain_one worst.name pct
      | _ -> p "\n")
  | regs -> List.iter (fun (name, pct) -> explain_one name pct) regs);
  Buffer.contents buf
