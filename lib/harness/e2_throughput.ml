(** E2 — deque cost under contention, by thread count.

    Simulated-time comparison (the machine has one core; see DESIGN.md §7)
    of the lock-based deque, the GC-dependent Snark, and the LFRC Snark.
    The metric is scheduler steps per completed operation: every shared
    memory access, spin and retry is one step, so contention shows up as
    extra steps — lock-holders make everyone spin, lock-free retries cost
    only their own re-execution. DCAS failure rates come from the
    substrate counters. *)

module Sched = Lfrc_sched.Sched
module Table = Lfrc_util.Table
module Opmix = Lfrc_workload.Opmix

let run_one (module D : Lfrc_structures.Deque_intf.DEQUE) ~gc ~rc_mode
    ~threads ~ops_per_thread ~seed ~metrics ~tracer ~profile ~blame =
  let steps = ref 0 and dcas_fail = ref 0.0 and gc_pauses = ref 0 in
  let body () =
    let heap = Lfrc_simmem.Heap.create ~name:"e2" () in
    let env =
      Lfrc_core.Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step
        ~gc_threshold:(if gc then 2048 else 0)
        ~rc_mode ~metrics ~tracer ~profile ~blame heap
    in
    if gc then Lfrc_simmem.Gc_trace.reset_history heap;
    let d = D.create env in
    let tids =
      List.init threads (fun thr ->
          Sched.spawn (fun () ->
              let h = D.register d in
              let stream =
                Opmix.stream Opmix.balanced_deque ~seed ~thread:thr
                  ops_per_thread
              in
              Array.iteri
                (fun i op ->
                  let v = Common.value_stream ~seed ~thread:thr i in
                  match op with
                  | Opmix.Push_left -> D.push_left h v
                  | Opmix.Push_right -> D.push_right h v
                  | Opmix.Pop_left -> ignore (D.pop_left h)
                  | Opmix.Pop_right -> ignore (D.pop_right h))
                stream;
              D.unregister h))
    in
    Sched.join tids;
    let c = Lfrc_atomics.Dcas.counters (Lfrc_core.Env.dcas env) in
    dcas_fail :=
      (if c.dcas_attempts = 0 then 0.0
       else 100.0 *. Float.of_int c.dcas_failures /. Float.of_int c.dcas_attempts);
    if gc then gc_pauses := List.length (Lfrc_simmem.Gc_trace.collections heap);
    D.destroy d
  in
  let outcome = Sched.run ~max_steps:200_000_000 (Lfrc_sched.Strategy.Random seed) body in
  steps := outcome.Sched.steps;
  (!steps, !dcas_fail, !gc_pauses)

(* Thread counts: powers of two up to the configured ceiling, plus the
   ceiling itself when it is not one. Default 8 -> [1;2;4;8]. *)
let thread_counts ceiling =
  let rec pows acc t = if t > ceiling then List.rev acc else pows (t :: acc) (t * 2) in
  let counts = pows [] 1 in
  if List.mem ceiling counts then counts else counts @ [ ceiling ]

let run (cfg : Scenario.config) =
  let ops_per_thread = cfg.Scenario.ops_per_thread in
  let { Lfrc_obs.Obs.metrics; tracer; profile; blame; _ } = Common.obs cfg in
  let table =
    Table.create ~title:"E2: deque contention (simulated steps per op)"
      ~columns:[ "impl"; "threads"; "steps/op"; "dcas fail %"; "gc runs" ]
  in
  List.iter
    (fun (label, impl, gc) ->
      List.iter
        (fun threads ->
          let steps, fail, gcs =
            run_one impl ~gc
              ~rc_mode:(Scenario.rc_mode_of cfg)
              ~threads ~ops_per_thread ~seed:cfg.Scenario.seed ~metrics ~tracer
              ~profile ~blame
          in
          let total_ops = threads * ops_per_thread in
          Table.add_rowf table "%s|%d|%.1f|%.2f|%d" label threads
            (Float.of_int steps /. Float.of_int total_ops)
            fail gcs)
        (thread_counts cfg.Scenario.threads))
    (Common.deque_impls ());
  (* Three-way rc-mode ablation: the LFRC deques again at the top thread
     count under deferred-rc and wait-free (the base rows above are the
     eager leg when the config is default). These rows use a private
     throwaway metrics registry so the shared aggregate — which
     bench/main's deferred-rc and wait-free headlines compare across
     whole-config runs — stays pure to the configured mode. *)
  let top_threads =
    List.fold_left max 1 (thread_counts cfg.Scenario.threads)
  in
  List.iter
    (fun (label, impl, gc) ->
      if not gc && label <> "locked" then
        List.iter
          (fun (suffix, rc_mode) ->
            let steps, fail, gcs =
              run_one impl ~gc ~rc_mode ~threads:top_threads ~ops_per_thread
                ~seed:cfg.Scenario.seed
                ~metrics:(Lfrc_obs.Metrics.create ())
                ~tracer ~profile ~blame
            in
            let total_ops = top_threads * ops_per_thread in
            Table.add_rowf table "%s[%s]|%d|%.1f|%.2f|%d" label suffix
              top_threads
              (Float.of_int steps /. Float.of_int total_ops)
              fail gcs)
          [
            ("eager", Lfrc_core.Env.Eager);
            ( "deferred-rc",
              Lfrc_core.Env.Deferred_rc { epoch = Scenario.deferred_rc_epoch }
            );
            ( "wait-free",
              Lfrc_core.Env.Wait_free { weight = Scenario.wait_free_weight } );
          ])
    (Common.deque_impls ());
  Common.result ~table ~profile ~blame metrics
