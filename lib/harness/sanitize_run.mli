(** The sanitizer harness: drives every catalog structure (and the seeded
    bug fixtures) under LFRC-San across a matrix of deterministic
    schedules, and packages each surviving finding as a replayable
    witness.

    A witness names both racing operations (thread, scheduler step,
    profiler call site), carries the schedule's replay token
    ({!Lfrc_sched.Strategy.describe} — feed it back through [--strategy]
    or {!Lfrc_sched.Strategy.of_string} to reproduce the exact run) and a
    lineage excerpt for the owning object, so a red sanitizer run is
    actionable from its output alone. *)

module Shadow := Lfrc_sanitize.Shadow

type witness = {
  w_structure : string;
  w_schedule : string;  (** replay token, e.g. ["random:2"] *)
  w_finding : Shadow.finding;
  w_lineage : string;  (** lineage-timeline excerpt for the owner, or [""] *)
}

type outcome = {
  o_structure : string;
  o_schedules : string list;  (** replay tokens executed *)
  o_totals : Shadow.totals;  (** summed over all schedules *)
  o_witnesses : witness list;
  o_aba_sites : (string * int) list;
      (** benign ABA occurrences per call site, merged, most first *)
}

val schedules : full:bool -> Lfrc_sched.Strategy.t list
(** The default schedule matrix: round-robin, seeded-random and PCT.
    [full] (the nightly [LFRC_SAN_FULL=1] matrix) widens the seed range. *)

val structure_names : unit -> string list
(** Catalog structures the runner has workloads for (all of them). *)

val run_structure :
  ?workers:int ->
  ?ops_per_worker:int ->
  ?schedules:Lfrc_sched.Strategy.t list ->
  ?rc_mode:Lfrc_core.Env.rc_mode ->
  string ->
  (outcome, string) result
(** Drive one catalog structure under the sanitizer; [Error] for an
    unknown name. Defaults: 3 workers, 40 ops each, the non-[full]
    schedule matrix, the environment's default (eager) count-delivery
    mode — [rc_mode] reruns the same workload under deferred or
    wait-free counts, whose extra machinery (parked deltas, weight
    tables) must be just as race-free. *)

(** {2 Seeded-bug fixtures}

    Intentionally broken mini-programs, one per finding class, proving the
    sanitizer detects each with a stable witness. Each accepts a set of
    kinds because liveness violations can legitimately land on either side
    of the retire/free boundary depending on the schedule. *)

val fixtures : (string * Shadow.kind list) list
(** [(name, accepted kinds)]: ["plain-race"], ["use-after-retire"],
    ["aba-pop"]. *)

val run_fixture : string -> (outcome, string) result

val fixture_detected : outcome -> bool
(** The fixture's expected finding class was witnessed. *)
