(** E8 — pause behaviour across three reclamation regimes: stop-the-world
    tracing, incremental (on-the-fly style) tracing, and LFRC's
    pay-as-you-go frees.

    The same churn workload (push a batch, drain it, repeat) runs in
    GC-dependent mode under the stop-the-world collector, again under the
    incremental collector (whose work is sliced into per-operation
    budgets — the paper's §6 Dijkstra-lineage alternative), and under
    LFRC, where every pop frees exactly one node. Reported: the
    distribution of reclamation-related pauses. STW shows few large
    pauses; the incremental collector and LFRC bound every pause at a
    slice / a node. *)

module Sched = Lfrc_sched.Sched
module Heap = Lfrc_simmem.Heap
module Table = Lfrc_util.Table
module Stats = Lfrc_util.Stats

module Treiber_gc = Lfrc_structures.Treiber.Make (Lfrc_core.Gc_ops)
module Treiber_lfrc = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)

let cycles = 5

let gc_mode ~batch ~metrics ~tracer ~profile () =
  let pauses = ref [] in
  let body () =
    let heap = Heap.create ~name:"e8-gc" () in
    let env =
      Lfrc_core.Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step
        ~gc_threshold:1_024 ~metrics ~tracer ~profile heap
    in
    Lfrc_simmem.Gc_trace.reset_history heap;
    let s = Treiber_gc.create env in
    let h = Treiber_gc.register s in
    for c = 1 to cycles do
      for i = 1 to batch do
        Treiber_gc.push h ((c * batch) + i)
      done;
      let rec drain () = if Treiber_gc.pop h <> None then drain () in
      drain ()
    done;
    Treiber_gc.unregister h;
    pauses :=
      List.map
        (fun (col : Lfrc_simmem.Gc_trace.collection) ->
          Float.of_int col.pause_ns /. 1e3)
        (Lfrc_simmem.Gc_trace.collections heap)
  in
  (* The collector needs the simulator's safe points. *)
  ignore (Sched.run (Lfrc_sched.Strategy.Round_robin) body);
  !pauses

let incremental_mode ~batch ~metrics ~tracer ~profile () =
  let env = Common.fresh_env ~metrics ~tracer ~profile ~name:"e8-incr" () in
  let heap = Lfrc_core.Env.heap env in
  let gc = Lfrc_simmem.Gc_incr.create ~threshold:1_024 heap in
  Lfrc_core.Env.set_incremental env ~collector:gc ~budget:32;
  let s = Treiber_gc.create env in
  let h = Treiber_gc.register s in
  let pauses = ref [] in
  for c = 1 to cycles do
    for i = 1 to batch do
      let (), ns =
        Lfrc_util.Clock.time_ns (fun () -> Treiber_gc.push h ((c * batch) + i))
      in
      pauses := (Float.of_int ns /. 1e3) :: !pauses
    done;
    let rec drain () =
      let r, ns = Lfrc_util.Clock.time_ns (fun () -> Treiber_gc.pop h) in
      pauses := (Float.of_int ns /. 1e3) :: !pauses;
      if r <> None then drain ()
    in
    drain ()
  done;
  Treiber_gc.unregister h;
  Lfrc_simmem.Gc_incr.finish_cycle gc;
  !pauses

let lfrc_mode ~batch ~metrics ~tracer ~profile () =
  let env = Common.fresh_env ~metrics ~tracer ~profile ~name:"e8-lfrc" () in
  let s = Treiber_lfrc.create env in
  let h = Treiber_lfrc.register s in
  let pauses = ref [] in
  for c = 1 to cycles do
    for i = 1 to batch do
      Treiber_lfrc.push h ((c * batch) + i)
    done;
    (* each pop reclaims exactly one node; time them individually *)
    let rec drain () =
      let r, ns = Lfrc_util.Clock.time_ns (fun () -> Treiber_lfrc.pop h) in
      pauses := (Float.of_int ns /. 1e3) :: !pauses;
      if r <> None then drain ()
    in
    drain ()
  done;
  Treiber_lfrc.unregister h;
  Treiber_lfrc.destroy s;
  !pauses

let add_row table label pauses =
  match pauses with
  | [] -> Table.add_rowf table "%s|0|-|-|-|-" label
  | _ ->
      let arr = Array.of_list pauses in
      let s = Stats.summarize arr in
      Table.add_rowf table "%s|%d|%.1f|%.1f|%.1f|%.1f" label s.Stats.n
        s.Stats.p50 s.Stats.p90 s.Stats.p99 s.Stats.max

let run (cfg : Scenario.config) =
  let batch = cfg.Scenario.ops_per_thread in
  let { Lfrc_obs.Obs.metrics; tracer; profile; _ } = Common.obs cfg in
  let table =
    Table.create
      ~title:"E8: reclamation pause distribution (microseconds)"
      ~columns:[ "mode"; "events"; "p50"; "p90"; "p99"; "max" ]
  in
  add_row table "gc stop-the-world" (gc_mode ~batch ~metrics ~tracer ~profile ());
  add_row table "gc incremental (per-op)"
    (incremental_mode ~batch ~metrics ~tracer ~profile ());
  add_row table "lfrc per-op" (lfrc_mode ~batch ~metrics ~tracer ~profile ());
  Common.result ~table ~profile metrics
