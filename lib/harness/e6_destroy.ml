(** E6 — destroying long chains: the cost profile of the three destroy
    policies.

    Dropping the last pointer to a long linked structure makes one
    LFRCDestroy reclaim everything transitively — the paper's Section 7
    names the resulting "long delays" and proposes incremental collection.
    Policies compared on chains of growing length:

    - recursive (the paper's Figure 2 verbatim): one unbounded pause, and
      a stack overflow waiting to happen;
    - iterative: same single pause, constant stack;
    - deferred: the pause is split into per-operation slices of
      [budget_per_op] frees; the maximum slice is the bounded pause. *)

module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Lfrc = Lfrc_core.Lfrc
module Env = Lfrc_core.Env
module Table = Lfrc_util.Table

let link_layout = Layout.make ~name:"chain-node" ~n_ptrs:1 ~n_vals:0

let build_chain env n =
  let heap = Env.heap env in
  let root = Heap.root heap ~name:"chain" () in
  let head = ref Heap.null in
  for _ = 1 to n do
    let nd = Lfrc.alloc env link_layout in
    if !head <> Heap.null then begin
      (* transfer the previous head reference into the new node *)
      Lfrc.store_alloc env ~dst:(Heap.ptr_cell heap nd 0) !head
    end;
    head := nd
  done;
  Lfrc.store_alloc env ~dst:root !head;
  root

let deferred_budget = 64

let run_policy policy n ~metrics ~tracer ~profile =
  let env = Common.fresh_env ~policy ~metrics ~tracer ~profile ~name:"e6" () in
  let heap = Env.heap env in
  let root = build_chain env n in
  assert (Heap.live_count heap = n);
  match policy with
  | Env.Recursive | Env.Iterative -> (
      match
        Lfrc_util.Clock.time_ns (fun () -> Lfrc.store env ~dst:root Heap.null)
      with
      | (), ns ->
          assert (Heap.live_count heap = 0);
          Ok (ns, ns)
      | exception Stack_overflow -> Error "stack overflow")
  | Env.Deferred _ ->
      let max_slice = ref 0 and total = ref 0 in
      let (), first =
        Lfrc_util.Clock.time_ns (fun () -> Lfrc.store env ~dst:root Heap.null)
      in
      max_slice := first;
      total := first;
      while Heap.live_count heap > 0 do
        let freed, ns =
          Lfrc_util.Clock.time_ns (fun () ->
              Lfrc.pump_deferred env ~budget:deferred_budget)
        in
        ignore freed;
        total := !total + ns;
        if ns > !max_slice then max_slice := ns
      done;
      Ok (!total, !max_slice)

let run (cfg : Scenario.config) =
  let { Lfrc_obs.Obs.metrics; tracer; profile; _ } = Common.obs cfg in
  let table =
    Table.create ~title:"E6: destroying a chain of N dead objects"
      ~columns:[ "policy"; "N"; "total ms"; "max pause ms"; "note" ]
  in
  let policies =
    [
      ("recursive", Lfrc_core.Env.Recursive);
      ("iterative", Lfrc_core.Env.Iterative);
      ( Printf.sprintf "deferred(%d)" deferred_budget,
        Lfrc_core.Env.Deferred { budget_per_op = deferred_budget } );
    ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun (label, policy) ->
          match run_policy policy n ~metrics ~tracer ~profile with
          | Ok (total, max_pause) ->
              Table.add_rowf table "%s|%d|%.3f|%.3f|" label n
                (Float.of_int total /. 1e6)
                (Float.of_int max_pause /. 1e6)
          | Error note -> Table.add_rowf table "%s|%d|-|-|%s" label n note)
        policies)
    [ 1_000; 10_000; 100_000; 400_000 ];
  Common.result ~table ~profile metrics
