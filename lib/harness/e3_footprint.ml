(** E3 — memory footprint across grow/drain phases.

    The paper's Section 1 claim: LFRC "allows the memory consumption of
    the implementation to grow and shrink over time", unlike free-list
    schemes (Valois) whose nodes are permanently dedicated. Hazard and
    epoch reclamation sit in between (bounded / deferred residue). Each
    implementation pushes N values and then drains, three times; the live
    object count on the shared heap is sampled after each phase. *)

module Heap = Lfrc_simmem.Heap
module Table = Lfrc_util.Table

module Treiber_lfrc = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)

let n = 5_000
let cycles = 3

type probe = {
  label : string;
  run : unit -> (int * int) array; (* per cycle: live after grow, after drain *)
}

let phases push pop finish_cycle live =
  Array.init cycles (fun c ->
      for i = 0 to n - 1 do
        push ((c * n) + i)
      done;
      let peak = live () in
      let rec drain () = if pop () <> None then drain () in
      drain ();
      finish_cycle ();
      (peak, live ()))

let probes ~metrics ~tracer ~profile () : probe list =
  [
    {
      label = "treiber-lfrc";
      run =
        (fun () ->
          let env = Common.fresh_env ~metrics ~tracer ~profile ~name:"e3-lfrc" () in
          let heap = Lfrc_core.Env.heap env in
          let s = Treiber_lfrc.create env in
          let h = Treiber_lfrc.register s in
          let r =
            phases
              (fun v -> Treiber_lfrc.push h v)
              (fun () -> Treiber_lfrc.pop h)
              (fun () -> ())
              (fun () -> Heap.live_count heap)
          in
          Treiber_lfrc.unregister h;
          Treiber_lfrc.destroy s;
          r);
    };
    {
      label = "treiber-valois";
      run =
        (fun () ->
          let env = Common.fresh_env ~metrics ~tracer ~profile ~name:"e3-valois" () in
          let heap = Lfrc_core.Env.heap env in
          let s = Lfrc_reclaim.Valois_stack.create env in
          let h = Lfrc_reclaim.Valois_stack.register s in
          let r =
            phases
              (fun v -> Lfrc_reclaim.Valois_stack.push h v)
              (fun () -> Lfrc_reclaim.Valois_stack.pop h)
              (fun () -> ())
              (fun () -> Heap.live_count heap)
          in
          Lfrc_reclaim.Valois_stack.unregister h;
          Lfrc_reclaim.Valois_stack.destroy s;
          r);
    };
    {
      label = "treiber-hazard";
      run =
        (fun () ->
          let env = Common.fresh_env ~metrics ~tracer ~profile ~name:"e3-hp" () in
          let heap = Lfrc_core.Env.heap env in
          let s = Lfrc_reclaim.Hp_stack.create env in
          let h = Lfrc_reclaim.Hp_stack.register s in
          let r =
            phases
              (fun v -> Lfrc_reclaim.Hp_stack.push h v)
              (fun () -> Lfrc_reclaim.Hp_stack.pop h)
              (fun () -> ())
              (fun () -> Heap.live_count heap)
          in
          Lfrc_reclaim.Hp_stack.unregister h;
          Lfrc_reclaim.Hp_stack.destroy s;
          r);
    };
    {
      label = "treiber-epoch";
      run =
        (fun () ->
          let env = Common.fresh_env ~metrics ~tracer ~profile ~name:"e3-ebr" () in
          let heap = Lfrc_core.Env.heap env in
          let s = Lfrc_reclaim.Ebr_stack.create env in
          let h = Lfrc_reclaim.Ebr_stack.register s in
          let r =
            phases
              (fun v -> Lfrc_reclaim.Ebr_stack.push h v)
              (fun () -> Lfrc_reclaim.Ebr_stack.pop h)
              (fun () -> Lfrc_reclaim.Ebr_stack.flush s)
              (fun () -> Heap.live_count heap)
          in
          Lfrc_reclaim.Ebr_stack.unregister h;
          Lfrc_reclaim.Ebr_stack.destroy s;
          r);
    };
  ]

let run (cfg : Scenario.config) =
  let { Lfrc_obs.Obs.metrics; tracer; profile; _ } = Common.obs cfg in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E3: live objects across %d grow(%d)/drain cycles" cycles n)
      ~columns:[ "impl"; "cycle"; "live@peak"; "live@drained" ]
  in
  List.iter
    (fun p ->
      let r = p.run () in
      Array.iteri
        (fun c (peak, drained) ->
          Table.add_rowf table "%s|%d|%d|%d" p.label (c + 1) peak drained)
        r)
    (probes ~metrics ~tracer ~profile ());
  Common.result ~table ~profile metrics
