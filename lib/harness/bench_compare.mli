(** The diff engine behind [bench --compare] and its [--explain] mode.

    Pure over parsed {!Lfrc_util.Json} documents (two bench JSON files:
    current run vs committed baseline) so the gating policy is testable
    against hand-edited baselines without touching the filesystem.

    Gating policy:
    - ops/sec on a matched workload regressing beyond [threshold] gates
      (wall-clock is noisy; callers default the threshold to 30%);
    - matched counters drifting >= 5% gate — counters are deterministic
      under the simulated scheduler, so drift is a behavior change;
    - matched histograms gate on their ["n"] field (observation count,
      equally deterministic) with the same 5% rule; derived statistics
      (mean/percentiles) are never compared;
    - anything absent from the baseline — a new workload, a new counter,
      a {e new histogram key} — is reported but never gates, so adding an
      instrument does not force a baseline regeneration in the same
      commit. *)

type row = {
  name : string;
  base_ops : float option;
  cur_ops : float option;
  pct : float option;  (** ops/sec delta %, when both sides have it *)
  is_new : bool;  (** workload absent from the baseline *)
  regressed : bool;
}

type drift = {
  workload : string;
  key : string;  (** counter name, or histogram name (compared on "n") *)
  base : float;
  cur : float;
  pct : float;
}

type verdict = {
  rows : row list;  (** every workload of the current run, in file order *)
  counter_drift : drift list;  (** gates *)
  counter_new : (string * string * float) list;
      (** (workload, counter, value) — report-only *)
  hist_drift : drift list;  (** histogram "n" drift — gates *)
  hist_new : (string * string) list;  (** (workload, histogram) — report-only *)
  regressions : (string * float) list;  (** (workload, ops/sec %) — gates *)
}

val diff : threshold:float -> current:Lfrc_util.Json.t -> baseline:Lfrc_util.Json.t -> verdict
val ok : verdict -> bool
(** No regression, no counter drift, no histogram drift. New
    workloads/counters/histograms do not affect [ok]. *)

val render :
  threshold:float -> current_file:string -> baseline_file:string -> verdict -> string
(** The comparison table plus drift sections and the final PASS/FAIL
    lines, ready to print. *)

val explain :
  current:Lfrc_util.Json.t -> baseline:Lfrc_util.Json.t -> verdict -> string
(** [--explain]: for each regressed workload, rank what moved underneath
    it — all counters (not just the gated set), histogram observation
    counts, the contention profiler's per-site wasted attempts, and the
    blame layer's victim -> culprit pairs (marked report-only when the
    baseline predates blame). Ranks movers; does not prove causation.
    With no regressions, names the single largest ops/sec mover if it
    shifted >= 1%. *)
