(** E11 — chaos matrix: LFRC structures under injected faults.

    Crosses the lock-free structures with the three fault kinds of
    {!Lfrc_faults.Fault_plan} — spurious CAS/DCAS failures, simulated
    allocator OOM, and thread crashes at scheduler-chosen yield points —
    across several seeds, and judges every run with the post-mortem
    {!Lfrc_faults.Audit}: no premature free, counts never below the
    heap-visible references, every leak attributable to a crashed
    thread's lost references. A run that exhausts its step budget is a
    livelock (a retry loop that stopped compensating); its replay token
    is printed so the schedule and fault plan can be reproduced.

    The worker workloads themselves live in {!Common} (shared with the
    CLI's [stats]/[trace] commands). *)

module Strategy = Lfrc_sched.Strategy
module Table = Lfrc_util.Table
module Fault_plan = Lfrc_faults.Fault_plan
module Chaos = Lfrc_faults.Chaos

type structure = {
  s_name : string;
  body :
    workers:int -> ops_per_worker:int -> seed:int -> Lfrc_core.Env.t -> unit;
}

let structure_name s = s.s_name

(* The matrix stays tractable at 3 workers x 25 ops: 3 structures x 5
   fault kinds x 3 seeds already means 45 full simulations. The config's
   knobs only shrink these. *)
let default_workers = 3
let default_ops_per_worker = 25

let structures =
  List.map
    (fun (s_name, body) -> { s_name; body })
    Common.workloads

(* Queue creation allocates before the fault hooks see a chance to have
   any effect on workers, so a creation-time OOM is a legitimate outcome
   under alloc faults; bodies run create under the plan, and [Chaos.run]
   reports the raise. The matrix keeps creation fallible on purpose:
   graceful degradation includes "the constructor surfaces OOM". *)

type fault_kind = { f_name : string; spec_for : seed:int -> Fault_plan.spec }

let fault_name f = f.f_name

let fault_kinds =
  [
    { f_name = "none"; spec_for = (fun ~seed -> { Fault_plan.default with seed }) };
    {
      f_name = "spurious";
      spec_for =
        (fun ~seed ->
          {
            Fault_plan.default with
            seed;
            cas_fail_prob = 0.05;
            dcas_fail_prob = 0.05;
            max_spurious = 60;
          });
    };
    {
      f_name = "oom";
      spec_for =
        (fun ~seed ->
          { Fault_plan.default with seed; alloc_fail_prob = 0.2; max_spurious = 30 });
    };
    {
      f_name = "crash";
      spec_for =
        (fun ~seed ->
          (* Kill worker 1 + seed mod workers at a seed-dependent resume:
             different seeds land the crash in different operation
             phases. *)
          {
            Fault_plan.default with
            seed;
            crashes = [ (1 + (seed mod default_workers), 5 + (seed * 7 mod 120)) ];
          });
    };
    {
      f_name = "multi-crash";
      spec_for =
        (fun ~seed ->
          (* Two distinct victims, staggered resumes: the second crash
             lands while the first thread's orphans are already in the
             registries, so recovery must adopt across owners. *)
          {
            Fault_plan.default with
            seed;
            crashes =
              [
                (1 + (seed mod default_workers), 5 + (seed * 7 mod 120));
                (1 + ((seed + 1) mod default_workers), 20 + (seed * 11 mod 90));
              ];
          });
    };
    {
      f_name = "mixed";
      spec_for =
        (fun ~seed ->
          {
            Fault_plan.default with
            seed;
            cas_fail_prob = 0.03;
            dcas_fail_prob = 0.03;
            alloc_fail_prob = 0.05;
            max_spurious = 40;
            crashes =
              [ (1 + (seed mod default_workers), 10 + (seed * 13 mod 100)) ];
          });
    };
  ]

(* A config-supplied fault spec collapses the fault axis to that one
   plan (re-seeded per run so the seed column still varies). *)
let fault_kinds_for (cfg : Scenario.config) =
  match cfg.Scenario.fault with
  | None -> fault_kinds
  | Some spec ->
      [
        {
          f_name = "custom";
          spec_for = (fun ~seed -> { spec with Fault_plan.seed });
        };
      ]

let run_one ?(workers = default_workers)
    ?(ops_per_worker = default_ops_per_worker) ?(rc_epoch = 0) ?rc_mode
    ?(recover = false) ?metrics ?blame ~structure ~fault ~seed () =
  let spec = fault.spec_for ~seed in
  Chaos.run ?metrics ?blame ~rc_epoch ?rc_mode ~recover ~max_steps:400_000
    ~strategy:(Strategy.Random seed)
    ~spec
    (fun env ->
      match structure.body ~workers ~ops_per_worker ~seed env with
      | () -> ()
      | exception Lfrc_simmem.Heap.Simulated_oom ->
          (* Constructor-time OOM: nothing was built; that is graceful. *)
          ())

let seeds = [ 1; 2; 3 ]

let run (cfg : Scenario.config) =
  let workers = max 1 (min cfg.Scenario.threads default_workers) in
  let ops_per_worker =
    max 1 (min cfg.Scenario.ops_per_thread default_ops_per_worker)
  in
  let { Lfrc_obs.Obs.metrics; profile; blame; _ } = Common.obs cfg in
  let table =
    Table.create ~title:"E11: chaos matrix (faults injected per kind)"
      ~columns:
        [
          "structure";
          "fault";
          "runs";
          "completed";
          "audit-ok";
          "leaked(max)";
          "leaked(rec)";
          "injected(sum)";
          "bad";
        ]
  in
  let failures = ref [] in
  List.iter
    (fun structure ->
      List.iter
        (fun fault ->
          let runs = List.length seeds in
          let completed = ref 0
          and audit_ok = ref 0
          and leaked_max = ref 0
          and injected = ref 0
          and bad = ref 0
          and rec_ran = ref false
          and rec_leaked_max = ref 0 in
          List.iter
            (fun seed ->
              let r =
                run_one ~workers ~ops_per_worker
                  ~rc_mode:(Scenario.rc_mode_of cfg)
                  ~metrics ~blame ~structure ~fault ~seed ()
              in
              injected := !injected + r.Chaos.injected;
              (match r.Chaos.status with
              | Chaos.Completed _ -> incr completed
              | Chaos.Livelock _ | Chaos.Thread_raised _ ->
                  incr bad;
                  failures := r :: !failures);
              (match r.Chaos.audit with
              | Some a when not r.Chaos.audit_advisory ->
                  leaked_max := max !leaked_max a.Lfrc_faults.Audit.leaked;
                  if Lfrc_faults.Audit.ok a then incr audit_ok
                  else begin
                    incr bad;
                    failures := r :: !failures
                  end
              | Some _ | None -> ());
              (* The recovery column: replay every crash-completing cell
                 with adoption on. Its strict audit tolerates nothing —
                 a completed recovered run must leak zero objects. *)
              match r.Chaos.status with
              | Chaos.Completed { crashed = _ :: _; _ } ->
                  let rr =
                    run_one ~workers ~ops_per_worker
                      ~rc_mode:(Scenario.rc_mode_of cfg)
                      ~recover:true ~metrics ~blame ~structure ~fault ~seed ()
                  in
                  rec_ran := true;
                  (match rr.Chaos.audit with
                  | Some a when not rr.Chaos.audit_advisory ->
                      rec_leaked_max :=
                        max !rec_leaked_max a.Lfrc_faults.Audit.leaked
                  | Some _ | None -> ());
                  if not (Chaos.ok rr) then begin
                    incr bad;
                    failures := rr :: !failures
                  end
              | _ -> ())
            seeds;
          Table.add_rowf table "%s|%s|%d|%d|%d|%d|%s|%d|%d" structure.s_name
            fault.f_name runs !completed !audit_ok !leaked_max
            (if !rec_ran then string_of_int !rec_leaked_max else "-")
            !injected !bad)
        (fault_kinds_for cfg))
    structures;
  List.iter
    (fun r ->
      Format.printf "@.chaos failure:@.%a@." Chaos.pp r)
    !failures;
  Common.result ~table ~profile ~blame metrics
