(** E11 — chaos matrix: LFRC structures under injected faults.

    Crosses the lock-free structures with the three fault kinds of
    {!Lfrc_faults.Fault_plan} — spurious CAS/DCAS failures, simulated
    allocator OOM, and thread crashes at scheduler-chosen yield points —
    across several seeds, and judges every run with the post-mortem
    {!Lfrc_faults.Audit}: no premature free, counts never below the
    heap-visible references, every leak attributable to a crashed
    thread's lost references. A run that exhausts its step budget is a
    livelock (a retry loop that stopped compensating); its replay token
    is printed so the schedule and fault plan can be reproduced. *)

module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module Table = Lfrc_util.Table
module Rng = Lfrc_util.Rng
module Fault_plan = Lfrc_faults.Fault_plan
module Chaos = Lfrc_faults.Chaos

module Stack = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)
module Queue_ = Lfrc_structures.Msqueue.Make (Lfrc_core.Lfrc_ops)
module Deque = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

type structure = { s_name : string; body : seed:int -> Lfrc_core.Env.t -> unit }

let structure_name s = s.s_name

let workers = 3
let ops_per_worker = 25

(* Workers use the fallible push operations and treat [`Out_of_memory] as
   a skipped op: graceful degradation is part of what the audit certifies. *)

let stack_body ~seed env =
  let t = Stack.create env in
  let tids =
    List.init workers (fun w ->
        Sched.spawn (fun () ->
            let h = Stack.register t in
            let rng = Rng.create ((seed * 131) + w) in
            for i = 1 to ops_per_worker do
              if Rng.int rng 3 < 2 then
                ignore (Stack.try_push h ((w * 1000) + i))
              else ignore (Stack.pop h)
            done;
            Stack.unregister h))
  in
  Sched.join tids

let queue_body ~seed env =
  let t = Queue_.create env in
  let tids =
    List.init workers (fun w ->
        Sched.spawn (fun () ->
            let h = Queue_.register t in
            let rng = Rng.create ((seed * 131) + w) in
            for i = 1 to ops_per_worker do
              if Rng.int rng 3 < 2 then
                ignore (Queue_.try_enqueue h ((w * 1000) + i))
              else ignore (Queue_.dequeue h)
            done;
            Queue_.unregister h))
  in
  Sched.join tids

let deque_body ~seed env =
  let t = Deque.create env in
  let tids =
    List.init workers (fun w ->
        Sched.spawn (fun () ->
            let h = Deque.register t in
            let rng = Rng.create ((seed * 131) + w) in
            for i = 1 to ops_per_worker do
              match Rng.int rng 4 with
              | 0 -> ignore (Deque.try_push_left h ((w * 1000) + i))
              | 1 -> ignore (Deque.try_push_right h ((w * 1000) + i))
              | 2 -> ignore (Deque.pop_left h)
              | _ -> ignore (Deque.pop_right h)
            done;
            Deque.unregister h))
  in
  Sched.join tids

let structures =
  [
    { s_name = "treiber"; body = stack_body };
    { s_name = "msqueue"; body = queue_body };
    { s_name = "snark-fixed"; body = deque_body };
  ]

(* Queue creation allocates before the fault hooks see a chance to have
   any effect on workers, so a creation-time OOM is a legitimate outcome
   under alloc faults; bodies run create under the plan, and [Chaos.run]
   reports the raise. The matrix keeps creation fallible on purpose:
   graceful degradation includes "the constructor surfaces OOM". *)

type fault_kind = { f_name : string; spec_for : seed:int -> Fault_plan.spec }

let fault_name f = f.f_name

let fault_kinds =
  [
    { f_name = "none"; spec_for = (fun ~seed -> { Fault_plan.default with seed }) };
    {
      f_name = "spurious";
      spec_for =
        (fun ~seed ->
          {
            Fault_plan.default with
            seed;
            cas_fail_prob = 0.05;
            dcas_fail_prob = 0.05;
            max_spurious = 60;
          });
    };
    {
      f_name = "oom";
      spec_for =
        (fun ~seed ->
          { Fault_plan.default with seed; alloc_fail_prob = 0.2; max_spurious = 30 });
    };
    {
      f_name = "crash";
      spec_for =
        (fun ~seed ->
          (* Kill worker 1 + seed mod workers at a seed-dependent resume:
             different seeds land the crash in different operation
             phases. *)
          {
            Fault_plan.default with
            seed;
            crash = Some (1 + (seed mod workers), 5 + (seed * 7 mod 120));
          });
    };
    {
      f_name = "mixed";
      spec_for =
        (fun ~seed ->
          {
            Fault_plan.default with
            seed;
            cas_fail_prob = 0.03;
            dcas_fail_prob = 0.03;
            alloc_fail_prob = 0.05;
            max_spurious = 40;
            crash = Some (1 + (seed mod workers), 10 + (seed * 13 mod 100));
          });
    };
  ]

let run_one ~structure ~fault ~seed =
  let spec = fault.spec_for ~seed in
  Chaos.run ~max_steps:400_000
    ~strategy:(Strategy.Random seed)
    ~spec
    (fun env ->
      match structure.body ~seed env with
      | () -> ()
      | exception Lfrc_simmem.Heap.Simulated_oom ->
          (* Constructor-time OOM: nothing was built; that is graceful. *)
          ())

let seeds = [ 1; 2; 3 ]

let run () =
  let table =
    Table.create ~title:"E11: chaos matrix (faults injected per kind)"
      ~columns:
        [
          "structure";
          "fault";
          "runs";
          "completed";
          "audit-ok";
          "leaked(max)";
          "injected(sum)";
          "bad";
        ]
  in
  let failures = ref [] in
  List.iter
    (fun structure ->
      List.iter
        (fun fault ->
          let runs = List.length seeds in
          let completed = ref 0
          and audit_ok = ref 0
          and leaked_max = ref 0
          and injected = ref 0
          and bad = ref 0 in
          List.iter
            (fun seed ->
              let r = run_one ~structure ~fault ~seed in
              injected := !injected + r.Chaos.injected;
              (match r.Chaos.status with
              | Chaos.Completed _ -> incr completed
              | Chaos.Livelock _ | Chaos.Thread_raised _ ->
                  incr bad;
                  failures := r :: !failures);
              match r.Chaos.audit with
              | Some a ->
                  leaked_max := max !leaked_max a.Lfrc_faults.Audit.leaked;
                  if Lfrc_faults.Audit.ok a then incr audit_ok
                  else begin
                    incr bad;
                    failures := r :: !failures
                  end
              | None -> ())
            seeds;
          Table.add_rowf table "%s|%s|%d|%d|%d|%d|%d|%d" structure.s_name
            fault.f_name runs !completed !audit_ok !leaked_max !injected !bad)
        fault_kinds)
    structures;
  List.iter
    (fun r ->
      Format.printf "@.chaos failure:@.%a@." Chaos.pp r)
    !failures;
  table
