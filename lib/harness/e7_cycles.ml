(** E7 — cyclic garbage: what plain LFRC leaks and the backup tracer
    reclaims.

    The paper's Cycle-Free Garbage criterion (Section 2.1) exists because
    counts in a garbage cycle never reach zero; Section 7 proposes an
    occasional tracing pass as the remedy. We build rings (cycles),
    chains (acyclic), and rings with chains hanging off them, drop every
    external reference, and show that LFRC reclaims exactly the acyclic
    part while {!Lfrc_cycle.Cycle_collector} finishes the job. *)

module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Lfrc = Lfrc_core.Lfrc
module Env = Lfrc_core.Env
module Table = Lfrc_util.Table

let node = Layout.make ~name:"e7-node" ~n_ptrs:2 ~n_vals:0

(* A ring of [k] nodes: each points to the next; dropping the external
   reference leaves every count at 1. *)
let build_ring env k =
  let heap = Env.heap env in
  let first = Lfrc.alloc env node in
  let prev = ref first in
  for _ = 2 to k do
    let nd = Lfrc.alloc env node in
    Lfrc.store_alloc env ~dst:(Heap.ptr_cell heap !prev 0) nd;
    prev := nd
  done;
  (* close the cycle: the ring's own reference to [first] *)
  Lfrc.store env ~dst:(Heap.ptr_cell heap !prev 0) first;
  (first, !prev)

let build_chain env k =
  let heap = Env.heap env in
  let head = ref Heap.null in
  for _ = 1 to k do
    let nd = Lfrc.alloc env node in
    if !head <> Heap.null then
      Lfrc.store_alloc env ~dst:(Heap.ptr_cell heap nd 0) !head;
    head := nd
  done;
  !head

let scenario env ~rings ~ring_size ~chains ~chain_len ~tails =
  let heap = Env.heap env in
  let root = Heap.root heap ~name:"e7" () in
  let anchor = Lfrc.alloc env (Layout.make ~name:"e7-anchor" ~n_ptrs:(rings + chains) ~n_vals:0) in
  let slot = ref 0 in
  for _ = 1 to rings do
    let first, last = build_ring env ring_size in
    if tails > 0 then begin
      (* hang an acyclic tail off the ring: reclaimable only with it *)
      let tail = build_chain env tails in
      Lfrc.store_alloc env ~dst:(Heap.ptr_cell heap last 1) tail
    end;
    Lfrc.store_alloc env ~dst:(Heap.ptr_cell heap anchor !slot) first;
    (* the ring closure added one count; drop the constructor's own *)
    incr slot
  done;
  for _ = 1 to chains do
    let head = build_chain env chain_len in
    Lfrc.store_alloc env ~dst:(Heap.ptr_cell heap anchor !slot) head;
    incr slot
  done;
  Lfrc.store_alloc env ~dst:root anchor;
  root

let run (cfg : Scenario.config) =
  let { Lfrc_obs.Obs.metrics; tracer; profile; _ } = Common.obs cfg in
  let table =
    Table.create ~title:"E7: cyclic garbage and the backup tracer"
      ~columns:
        [ "structure"; "objects"; "lfrc freed"; "leaked"; "tracer freed"; "tracer us" ]
  in
  let case label ~rings ~ring_size ~chains ~chain_len ~tails =
    let env = Common.fresh_env ~metrics ~tracer ~profile ~name:"e7" () in
    let heap = Env.heap env in
    let root = scenario env ~rings ~ring_size ~chains ~chain_len ~tails in
    let before = Heap.live_count heap in
    Lfrc.store env ~dst:root Heap.null;
    Heap.release_root heap root;
    let leaked = Heap.live_count heap in
    let c = Lfrc_cycle.Cycle_collector.collect heap in
    assert (Heap.live_count heap = 0);
    Table.add_rowf table "%s|%d|%d|%d|%d|%.1f" label before (before - leaked)
      leaked c.Lfrc_cycle.Cycle_collector.cyclic_freed
      (Float.of_int c.Lfrc_cycle.Cycle_collector.pause_ns /. 1e3)
  in
  case "100 chains x 50" ~rings:0 ~ring_size:0 ~chains:100 ~chain_len:50
    ~tails:0;
  case "100 rings x 10" ~rings:100 ~ring_size:10 ~chains:0 ~chain_len:0
    ~tails:0;
  case "50 rings + 50 chains" ~rings:50 ~ring_size:10 ~chains:50 ~chain_len:10
    ~tails:0;
  case "100 rings w/ 20-node tails" ~rings:100 ~ring_size:5 ~chains:0
    ~chain_len:0 ~tails:20;
  Common.result ~table ~profile metrics
