(** Concurrent deque scenarios: run a fixed set of per-thread operation
    scripts against a deque implementation under the deterministic
    scheduler, record the history, and judge it against the sequential
    specification with the linearizability checker.

    This is the engine behind the Snark bug hunt (EXPERIMENTS.md A4) and
    the concurrency test suites.

    It also hosts {!config}, the shared experiment configuration record
    that every {!Experiments} entry takes in place of per-experiment
    ad-hoc parameters. *)

type config = {
  threads : int;
      (** worker-thread ceiling for multi-threaded experiments; each
          experiment clamps it to what its matrix tolerates *)
  ops_per_thread : int;  (** per-worker operation count *)
  iters : int;
      (** single-threaded timing-loop iterations (E1's rows, E5's
          wall-clock rows) *)
  seed : int;
      (** base seed; experiments derive their historical per-table seeds
          from it (E2 uses it directly, E4 adds 10.., E5 adds 20, E9 adds
          30), so the default reproduces the historical schedules *)
  fault : Lfrc_faults.Fault_plan.spec option;
      (** when set, E11 runs this single fault spec instead of its
          built-in matrix (other experiments ignore it) *)
  metrics : bool;
      (** collect DCAS/LFRC/heap series into the result's snapshot *)
  trace_capacity : int;  (** tracer ring size; 0 disables tracing *)
  profile : bool;
      (** attribute DCAS/CAS retries and op latencies to labeled call
          sites ({!Lfrc_obs.Profile}); the result then carries a
          contention table *)
  blame : bool;
      (** attribute every failed CAS/DCAS to the winning write that
          invalidated it ({!Lfrc_obs.Blame}); blame-aware experiments
          (E2, E5, E11) then carry an interference report (CLI
          [--blame]) *)
  deferred_rc : bool;
      (** run LFRC environments in deferred-rc coalescing mode
          ({!Lfrc_core.Env.create} with [rc_epoch = deferred_rc_epoch]):
          count adjustments park in per-thread buffers and flush as
          netted CASes (CLI [--deferred-rc]) *)
  wait_free_rc : bool;
      (** run LFRC environments in wait-free weighted-rc mode
          ({!Lfrc_core.Env.Wait_free} with [weight = wait_free_weight]):
          count adjustments are single fetch-adds over split weights
          (CLI [--wait-free-rc]); wins over [deferred_rc] when both are
          set *)
}

val deferred_rc_epoch : int
(** The parked-adjustment budget every harness user applies when
    [deferred_rc] is on (64). *)

val wait_free_weight : int
(** The weight batch every harness user mints per fetch-add when
    [wait_free_rc] is on (64). *)

val rc_epoch_of : config -> int
(** [deferred_rc_epoch] when [deferred_rc] is set, else 0. *)

val rc_mode_of : config -> Lfrc_core.Env.rc_mode
(** The environment mode the flags select: [Wait_free
    {weight = wait_free_weight}] when [wait_free_rc] is set (it wins
    over [deferred_rc]), else [Deferred_rc {epoch = deferred_rc_epoch}]
    when [deferred_rc] is set, else [Eager]. *)

val default_config : config
(** threads 8, 1500 ops/thread, 200k iters, seed 11, no fault override,
    metrics on, tracing off, profiling off, blame off, eager
    (non-deferred, non-wait-free) rc. *)

type op = Push_left of int | Push_right of int | Pop_left | Pop_right

type res = Done | Popped of int option

val pp_op : Format.formatter -> op -> unit
val pp_res : Format.formatter -> res -> unit

module Deque_spec :
  Lfrc_linearize.Checker.SPEC
    with type op = op
     and type res = res
     and type state = Lfrc_structures.Spec.Deque.t

module Deque_checker : sig
  type verdict =
    | Linearizable of (op * res) list
    | Not_linearizable

  val check_events :
    (op, res) Lfrc_linearize.History.event list -> verdict
end

type outcome = {
  ok : bool;
  history : (op, res) Lfrc_linearize.History.event list;
  steps : int;
}

val run :
  (module Lfrc_structures.Deque_intf.DEQUE) ->
  ?gc_final:bool ->
  ?rc_mode:Lfrc_core.Env.rc_mode ->
  ?preload:int list ->
  threads:op list list ->
  Lfrc_sched.Strategy.t ->
  outcome
(** Execute the scenario once under the given strategy. [preload] values
    are pushed on the right by the main thread before workers start; after
    all workers finish, the main thread drains the deque from the left and
    those pops join the checked history. [ok] is the linearizability
    verdict. The heap is created fresh inside the simulation; leak and
    reference-count violations surface as exceptions. [rc_mode] selects
    the environment's reference-count delivery mode (default eager). *)

val body_and_check :
  (module Lfrc_structures.Deque_intf.DEQUE) ->
  ?gc_final:bool ->
  ?rc_mode:Lfrc_core.Env.rc_mode ->
  ?preload:int list ->
  threads:op list list ->
  unit ->
  (unit -> unit) * (unit -> unit)
(** The same scenario packaged for {!Lfrc_sched.Explore.check}: a [body]
    to run under forced schedules and a [check] that raises [Failure] on a
    non-linearizable history. *)
