(** The experiment registry: every table in EXPERIMENTS.md is regenerated
    by one entry here. Used by [bin/lfrc_cli.exe] and [bench/main.exe].

    Every experiment runs under a shared {!Scenario.config}; alongside its
    table it returns the {!Lfrc_obs.Metrics} snapshot gathered from the
    environments it created, and the printers emit that snapshot as a
    [\[Ek metrics\]] JSON block after the table. *)

type experiment = {
  id : string;  (** "E1" .. "E11" *)
  title : string;
  run : Scenario.config -> Common.result;
}

val all : experiment list

val find : string -> experiment option
(** Case-insensitive lookup by id. *)

val run_and_print : ?config:Scenario.config -> ?csv:bool -> experiment -> unit
(** Run one experiment and print its table (aligned, or CSV), followed by
    the metrics JSON block when the snapshot is non-empty. [config]
    defaults to {!Scenario.default_config}. *)

val run_all : ?config:Scenario.config -> unit -> unit

val run_ids : ?config:Scenario.config -> ?csv:bool -> string list -> bool
(** Resolve each id with {!find} (reporting unknown ids on stderr), run
    and print the rest; [false] when any id was unknown. *)
