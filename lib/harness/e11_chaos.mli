(** E11 — chaos matrix: structures × fault kinds × seeds.

    Each cell runs a multi-threaded workload on one LFRC structure under a
    {!Lfrc_faults.Fault_plan} (no faults / spurious CAS+DCAS / allocator
    OOM / single or double thread crash / all mixed) and judges it with
    the post-mortem {!Lfrc_faults.Audit}. Any livelock, unexpected raise,
    or audit finding is counted in the [bad] column and its replay token
    printed. Every crash-completing cell is then replayed with
    [~recover:true]: the [leaked(max)] column shows the bounded leak the
    paper concedes, [leaked(rec)] what remains after the
    {!Lfrc_faults.Recovery} adoption pass — strict-audited, so anything
    but 0 there is a failure ("-" means the cell had no completed run
    with crashes). When the config carries a fault override, the fault
    axis collapses to that one spec (re-seeded per run). *)

type structure
type fault_kind

val structures : structure list
val fault_kinds : fault_kind list
val structure_name : structure -> string
val fault_name : fault_kind -> string

val run_one :
  ?workers:int ->
  ?ops_per_worker:int ->
  ?rc_epoch:int ->
  ?rc_mode:Lfrc_core.Env.rc_mode ->
  ?recover:bool ->
  ?metrics:Lfrc_obs.Metrics.t ->
  ?blame:Lfrc_obs.Blame.t ->
  structure:structure ->
  fault:fault_kind ->
  seed:int ->
  unit ->
  Lfrc_faults.Chaos.report
(** One cell of the matrix, for ad-hoc exploration (the [chaos] CLI
    command); prints nothing. [workers] defaults to 3, [ops_per_worker]
    to 25; [rc_epoch] (deferred-rc coalescing, 0 = eager), [rc_mode]
    (selects the count-delivery mode directly, winning over [rc_epoch] —
    how the wait-free rows run), [recover]
    (default false: run the crash-recovery adoption pass and audit
    strictly) and [metrics] are passed through to
    {!Lfrc_faults.Chaos.run} (the latter defaulting to a fresh registry
    private to the run). *)

val run : Scenario.config -> Common.result
