module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module Rng = Lfrc_util.Rng
module Metrics = Lfrc_obs.Metrics
module Profile = Lfrc_obs.Profile
module Lineage = Lfrc_obs.Lineage
module Shadow = Lfrc_sanitize.Shadow
module Env = Lfrc_core.Env
module Lfrc = Lfrc_core.Lfrc
module Dcas = Lfrc_atomics.Dcas

type witness = {
  w_structure : string;
  w_schedule : string;
  w_finding : Shadow.finding;
  w_lineage : string;
}

type outcome = {
  o_structure : string;
  o_schedules : string list;
  o_totals : Shadow.totals;
  o_witnesses : witness list;
  o_aba_sites : (string * int) list;
}

let schedules ~full =
  let seeds = if full then [ 1; 2; 3; 4; 5; 6; 7; 8 ] else [ 1; 2 ] in
  Strategy.Round_robin
  :: List.concat_map
       (fun s ->
         [ Strategy.Random s; Strategy.Pct { seed = s; change_points = 3 } ])
       seeds

(* --- catalog workloads ---

   One driver per catalog entry, over the structure's LFRC instance. The
   stack/queue/deque drivers are shared with E11 ({!Common}); the snark
   (unfixed) and set instances exist only here. *)

module Snark_lfrc = Lfrc_structures.Snark.Make (Lfrc_core.Lfrc_ops)
module Dlist_lfrc = Lfrc_structures.Dlist_set.Make (Lfrc_core.Lfrc_ops)
module Skiplist_lfrc = Lfrc_structures.Skiplist.As_set (Lfrc_core.Lfrc_ops)

let generic_set_workload (module S : Lfrc_structures.Container_intf.SET)
    ~workers ~ops_per_worker ~seed env =
  let t = S.create env in
  let tids =
    List.init workers (fun w ->
        Sched.spawn (fun () ->
            let h = S.register t in
            let rng = Rng.create ((seed * 131) + w) in
            for _ = 1 to ops_per_worker do
              let k = Rng.int rng 8 in
              match Rng.int rng 4 with
              | 0 | 1 -> ignore (S.try_insert h k)
              | 2 -> ignore (S.remove h k)
              | _ -> ignore (S.contains h k)
            done;
            S.unregister h))
  in
  Sched.join tids

let snark_workload ~workers ~ops_per_worker ~seed env =
  Common.generic_deque_workload
    (module Snark_lfrc)
    ~workers ~ops_per_worker ~seed env

let dlist_workload ~workers ~ops_per_worker ~seed env =
  generic_set_workload (module Dlist_lfrc) ~workers ~ops_per_worker ~seed env

let skiplist_workload ~workers ~ops_per_worker ~seed env =
  generic_set_workload (module Skiplist_lfrc) ~workers ~ops_per_worker ~seed
    env

(* Keyed by catalog entry name; kept in catalog order so a new entry
   without a driver fails [structure_names]'s coverage test loudly. *)
let drivers =
  [
    ("treiber", Common.stack_workload);
    ("msqueue", Common.queue_workload);
    ("sundell", Common.sundell_workload);
    ("snark", snark_workload);
    ("snark-fixed", Common.deque_workload);
    ("dlist-set", dlist_workload);
    ("skiplist", skiplist_workload);
  ]

let structure_names () = List.map fst drivers

(* --- running one body under one schedule --- *)

let lineage_excerpt ln ~addr =
  if addr <= 0 then ""
  else
    let tl = Lineage.timeline ln ~addr in
    let lines = String.split_on_char '\n' tl in
    let n = List.length lines in
    let keep = 8 in
    let lines =
      if n <= keep then lines
      else
        Printf.sprintf "... (%d earlier lineage events)" (n - keep)
        :: List.filteri (fun i _ -> i >= n - keep) lines
    in
    String.concat "\n" lines

let empty_totals =
  { Shadow.checks = 0; races = 0; uaf = 0; uar = 0; aba = 0; aba_harmful = 0 }

let add_totals a (b : Shadow.totals) =
  {
    Shadow.checks = a.Shadow.checks + b.Shadow.checks;
    races = a.Shadow.races + b.Shadow.races;
    uaf = a.Shadow.uaf + b.Shadow.uaf;
    uar = a.Shadow.uar + b.Shadow.uar;
    aba = a.Shadow.aba + b.Shadow.aba;
    aba_harmful = a.Shadow.aba_harmful + b.Shadow.aba_harmful;
  }

let merge_sites acc sites =
  List.fold_left
    (fun acc (site, n) ->
      let prev = try List.assoc site acc with Not_found -> 0 in
      (site, prev + n) :: List.remove_assoc site acc)
    acc sites

let run_under ?rc_mode ~structure ~strategy ~seed body =
  let token = Strategy.describe strategy in
  let metrics = Metrics.create () in
  let profile = Profile.create ~metrics () in
  let lineage = Lineage.create ~ring:128 () in
  let sanitize = Shadow.create () in
  let heap = Heap.create ~name:("sanitize:" ^ structure) () in
  let env =
    Env.create ~dcas_impl:Dcas.Atomic_step ?rc_mode ~metrics ~profile
      ~lineage ~sanitize heap
  in
  ignore (Sched.run ~max_steps:4_000_000 strategy (fun () -> body ~seed env));
  let witnesses =
    List.map
      (fun (f : Shadow.finding) ->
        {
          w_structure = structure;
          w_schedule = token;
          w_finding = f;
          w_lineage = lineage_excerpt lineage ~addr:f.Shadow.f_addr;
        })
      (Shadow.findings sanitize)
  in
  (token, Shadow.totals sanitize, witnesses, Shadow.aba_by_site sanitize)

let run_body ?rc_mode ~structure ~schedules body =
  let tokens, totals, witnesses, sites =
    List.fold_left
      (fun (tks, tot, ws, sites) (i, strategy) ->
        let tk, t, w, s =
          run_under ?rc_mode ~structure ~strategy ~seed:(i + 1) body
        in
        (tk :: tks, add_totals tot t, ws @ w, merge_sites sites s))
      ([], empty_totals, [], [])
      (List.mapi (fun i s -> (i, s)) schedules)
  in
  {
    o_structure = structure;
    o_schedules = List.rev tokens;
    o_totals = totals;
    o_witnesses = witnesses;
    o_aba_sites =
      List.sort (fun (_, a) (_, b) -> compare b a) sites;
  }

let run_structure ?(workers = 3) ?(ops_per_worker = 40)
    ?(schedules = schedules ~full:false) ?rc_mode name =
  match List.assoc_opt name drivers with
  | None -> Error (Printf.sprintf "unknown structure %S" name)
  | Some driver ->
      Ok
        (run_body ?rc_mode ~structure:name ~schedules (fun ~seed env ->
             driver ~workers ~ops_per_worker ~seed env))

(* --- seeded-bug fixtures ---

   Each is the smallest program exhibiting one finding class, written
   against the raw substrate so the bug is in the fixture, not in LFRC.
   They are deterministic per schedule: the expected class fires under
   every schedule in the matrix, so the witness (sites, slot, class) is
   stable run to run. *)

(* Two threads plain-write the same value slot of a shared object with no
   release/acquire edge between them: the canonical data race. *)
let fixture_plain_race ~seed:_ env =
  let heap = Env.heap env in
  let d = Env.dcas env in
  let layout = Layout.make ~name:"san-race" ~n_ptrs:0 ~n_vals:1 in
  let root = Heap.root heap ~name:"race-root" () in
  let p = Lfrc.alloc env layout in
  Lfrc.store env ~dst:root p;
  Lfrc.destroy env p;
  let vc = Heap.val_cell heap p 0 in
  let tids =
    List.init 2 (fun w ->
        Sched.spawn ~name:(Printf.sprintf "racer-%d" w) (fun () ->
            Dcas.write d vc (w + 1)))
  in
  Sched.join tids;
  Lfrc.store env ~dst:root Heap.null

(* A reader that bypasses LFRCLoad: it spins on the (type-stable) count
   until the destroyer drops it to zero, then touches a value slot of the
   object it never acquired a counted reference to. Depending on where the
   schedule lands, the read hits the retire window (use-after-retire) or
   the freed object (use-after-free). *)
let fixture_use_after_retire ~seed:_ env =
  let heap = Env.heap env in
  let d = Env.dcas env in
  (* The pointer slot matters: the destroyer's teardown reads it (a yield
     point), so the retire window is wide enough for the stale reader to
     land inside it under some schedules. *)
  let layout = Layout.make ~name:"san-uar" ~n_ptrs:1 ~n_vals:1 in
  let root = Heap.root heap ~name:"uar-root" () in
  let p = Lfrc.alloc env layout in
  Lfrc.store env ~dst:root p;
  Lfrc.destroy env p;
  let rc = Heap.rc_cell heap p in
  let vc = Heap.val_cell heap p 0 in
  let dropper =
    Sched.spawn ~name:"dropper" (fun () ->
        Lfrc.store env ~dst:root Heap.null)
  in
  let reader =
    Sched.spawn ~name:"stale-reader" (fun () ->
        (* The count is 1 (the root's) until the drop; after the free the
           frozen cell reads as poison — either way, leaving 1 means the
           retire began. *)
        while Dcas.read d rc = 1 do
          ()
        done;
        ignore (Dcas.read d vc))
  in
  Sched.join [ dropper; reader ]

(* The motivating ABA: a raw (uncounted) Treiber pop races a free/recycle/
   re-push of the same node. The victim's CAS succeeds against the
   recycled incarnation — old value equal, generation different. *)
let fixture_aba_pop ~seed:_ env =
  let heap = Env.heap env in
  let d = Env.dcas env in
  let layout = Layout.make ~name:"san-aba" ~n_ptrs:1 ~n_vals:0 in
  let root = Heap.root heap ~name:"aba-top" () in
  let flag = Heap.root heap ~name:"aba-flag" () in
  let a = Heap.alloc heap layout in
  Dcas.write d root a;
  let victim =
    Sched.spawn ~name:"victim" (fun () ->
        let top = Dcas.read d root in
        while Dcas.read d flag = 0 do
          ()
        done;
        (* CAS against the value observed before the recycle. *)
        ignore (Dcas.cas d root top Heap.null))
  in
  let recycler =
    Sched.spawn ~name:"recycler" (fun () ->
        ignore (Dcas.cas d root a Heap.null);
        Heap.free heap a;
        let a' = Heap.alloc heap layout in
        Dcas.write d root a';
        Dcas.write d flag 1)
  in
  Sched.join [ victim; recycler ];
  (* Tidy the raw node so the fixture's only complaint is the ABA. *)
  let leftover = Dcas.read d root in
  if leftover <> Heap.null then begin
    Dcas.write d root Heap.null;
    Heap.free heap leftover
  end

(* A torn weight handoff: the wait-free mode's discipline is that count
   weight only moves through atomic fetch-adds on the count cell or
   inside a thread-local pouch. This fixture breaks it — two threads
   split the same weight word (modeled as a value slot of a published
   object) with a plain read-modify-write, so one of the two splits is
   lost. The sanitizer sees the unsynchronized slot accesses as a data
   race; the lost update is exactly the torn handoff the weight
   invariant forbids. *)
let fixture_torn_weight ~seed:_ env =
  let heap = Env.heap env in
  let d = Env.dcas env in
  let layout = Layout.make ~name:"san-torn-weight" ~n_ptrs:0 ~n_vals:1 in
  let root = Heap.root heap ~name:"weight-root" () in
  let p = Lfrc.alloc env layout in
  Lfrc.store env ~dst:root p;
  Lfrc.destroy env p;
  (* the value slot stands in for the object's weight word *)
  let wc = Heap.val_cell heap p 0 in
  Dcas.write d wc 64;
  let tids =
    List.init 2 (fun w ->
        Sched.spawn ~name:(Printf.sprintf "splitter-%d" w) (fun () ->
            (* plain read-modify-write: take half the weight for a
               handoff, leave the rest — not a fetch-add, so the two
               splits can interleave and tear *)
            let cur = Dcas.read d wc in
            Dcas.write d wc (cur - (cur / 2))))
  in
  Sched.join tids;
  Lfrc.store env ~dst:root Heap.null

let fixtures =
  [
    ("plain-race", [ Shadow.Race ]);
    ("torn-weight", [ Shadow.Race ]);
    ("use-after-retire", [ Shadow.Use_after_retire; Shadow.Use_after_free ]);
    ("aba-pop", [ Shadow.Aba ]);
  ]

let fixture_bodies =
  [
    ("plain-race", fixture_plain_race);
    ("torn-weight", fixture_torn_weight);
    ("use-after-retire", fixture_use_after_retire);
    ("aba-pop", fixture_aba_pop);
  ]

let run_fixture name =
  match List.assoc_opt name fixture_bodies with
  | None -> Error (Printf.sprintf "unknown fixture %S" name)
  | Some body ->
      Ok
        (run_body ~structure:("fixture:" ^ name)
           ~schedules:[ Strategy.Round_robin; Strategy.Random 1 ]
           body)

let fixture_detected outcome =
  let fixture =
    match String.index_opt outcome.o_structure ':' with
    | Some i ->
        String.sub outcome.o_structure (i + 1)
          (String.length outcome.o_structure - i - 1)
    | None -> outcome.o_structure
  in
  match List.assoc_opt fixture fixtures with
  | None -> false
  | Some accepted ->
      List.exists
        (fun w -> List.mem w.w_finding.Shadow.f_kind accepted)
        outcome.o_witnesses
