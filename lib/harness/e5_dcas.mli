(** E5 — DCAS substrate ablation: atomic vs. striped-lock vs. software MCAS. See the implementation header for the experiment's design and the expected shape. *)

val run : Scenario.config -> Common.result
(** Execute the experiment under the shared configuration and return its
    table (regenerates the corresponding EXPERIMENTS.md section) plus the
    metrics snapshot its environments recorded. *)
