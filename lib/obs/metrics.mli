(** Per-environment metrics registry: counters, gauges, and histograms.

    The paper's cost claims are all about {e hidden per-operation work} —
    extra DCAS attempts inside LFRCLoad, retry loops under contention,
    deferred frees — which end-to-end wall time cannot attribute. Every
    layer of the system (the LFRC operations, the DCAS substrate, the
    simulated heap, the reclamation baselines) reports into one of these
    registries, and the experiment harness snapshots it next to each
    table.

    A registry is either {e enabled} (created by {!create}) or the shared
    {e disabled} singleton: on the disabled registry every recording
    operation is a single branch and touches nothing, so instrumentation
    can stay unconditionally in the hot paths ({!Lfrc_core.Lfrc},
    {!Lfrc_atomics.Dcas}) at negligible cost when observability is off.

    Enabled registries are mutex-protected: exact under the simulator
    (single domain) and safe, if approximate in ordering, under real
    domains. Several environments may share one registry — the harness
    does exactly that to aggregate an experiment's sub-runs. *)

type t

val create : unit -> t
(** A fresh enabled registry with no series. *)

val disabled : t
(** The shared no-op registry: recording is a single branch, {!snapshot}
    is empty. This is what {!Lfrc_core.Env.create} uses by default. *)

val enabled : t -> bool

(** {2 Recording}

    Series are named by convention ["layer.event"], e.g.
    ["dcas.dcas_attempts"], ["lfrc.load_retry"], ["heap.allocs"]. A series
    springs into existence on first use. All recording operations are
    no-ops on the disabled registry. *)

val incr : t -> string -> unit
(** Add 1 to a counter. *)

val add : t -> string -> int -> unit
(** Add an arbitrary amount to a counter. *)

val set_gauge : t -> string -> int -> unit
(** Set a gauge's current value; the registry also retains the maximum
    ever set (high-water mark). *)

val observe : t -> string -> float -> unit
(** Record one sample into a histogram series. *)

(** {2 Snapshots} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * (int * int)) list;  (** name → (last, max) *)
  samples : (string * float array) list;
      (** histogram series, each sorted ascending *)
}

val snapshot : t -> snapshot
(** A consistent copy of the registry. The disabled registry snapshots to
    {!empty}. *)

val empty : snapshot

val is_empty : snapshot -> bool

val reset : t -> unit
(** Drop every series. *)

val counter_value : snapshot -> string -> int
(** 0 when the series does not exist. *)

val gauge_value : snapshot -> string -> (int * int) option

val merge : snapshot -> snapshot -> snapshot
(** Pointwise union: counters add, gauges keep the latest last-value and
    the max of maxima, histogram samples concatenate. Used to aggregate
    snapshots taken from registries that could not be shared (e.g.
    separate chaos cells). *)

val to_json : snapshot -> string
(** A JSON object [{"counters": {...}, "gauges": {name: {"last","max"}},
    "histograms": {name: {"n","mean","p50","p90","p99","max"}}}].
    Histograms are summarized with {!Lfrc_util.Stats}. *)

val pp : Format.formatter -> snapshot -> unit
(** Compact human-readable rendering (one series per line). *)
