(* The observability bundle: one master switch over every layer.

   Before this module, `--no-metrics` disabled the metrics registry but
   tracer/profile/lineage/blame were decided by their own flags — so "obs
   off" was not provably off. [create ~master:false] returns the all-
   disabled bundle no matter what the per-layer flags say, which makes
   the disabled path exactly one branch per layer everywhere (each layer
   already pattern-matches its own Disabled constructor). *)

type t = {
  metrics : Metrics.t;
  tracer : Tracer.t;
  lineage : Lineage.t;
  profile : Profile.t;
  blame : Blame.t;
}

let disabled =
  {
    metrics = Metrics.disabled;
    tracer = Tracer.disabled;
    lineage = Lineage.disabled;
    profile = Profile.disabled;
    blame = Blame.disabled;
  }

let enabled t =
  Metrics.enabled t.metrics || Tracer.enabled t.tracer
  || Lineage.enabled t.lineage || Profile.enabled t.profile
  || Blame.enabled t.blame

let create ?(master = true) ?(metrics = true) ?(trace_capacity = 0)
    ?(lineage_ring = 0) ?(profile = false) ?(blame = false) () =
  if not master then disabled
  else
    let metrics = if metrics then Metrics.create () else Metrics.disabled in
    let tracer = Tracer.create ~capacity:trace_capacity in
    let lineage =
      if lineage_ring > 0 then Lineage.create ~ring:lineage_ring ()
      else Lineage.disabled
    in
    let profile = if profile then Profile.create ~metrics () else Profile.disabled in
    let blame = if blame then Blame.create ~tracer () else Blame.disabled in
    { metrics; tracer; lineage; profile; blame }
