module Sched = Lfrc_sched.Sched

(* A "site" is the instrumentation label of an operation span —
   "lfrc.load", "ebr.pop", … — registered on first use. Attribution is a
   per-simulated-thread stack of open frames: a retry or DCAS failure
   charges the innermost open frame on the thread it happened on, so a
   destroy embedded in a load charges the destroy, not the load. *)

type site = {
  label : string;
  mutable calls : int;
  mutable retries : int;  (* operation-loop re-runs (LFRC retry shims) *)
  mutable dcas_retries : int;  (* failed CAS/DCAS attempts underneath *)
  mutable steps_total : int;  (* scheduler steps spent inside, summed *)
  mutable steps_max : int;
}

type frame = {
  f_site : site;
  start_step : int;
  mutable f_retries : int;
  mutable f_dcas : int;
}

type reg = {
  lock : Mutex.t;
  metrics : Metrics.t;
  sites : (string, site) Hashtbl.t;
  stacks : (int, frame list ref) Hashtbl.t;  (* tid -> open frames *)
  unattributed : site;  (* failures with no open frame on their thread *)
}

(* Single-branch off switch, same as the disabled Metrics singleton. *)
type t = Disabled | On of reg

let new_site label =
  { label; calls = 0; retries = 0; dcas_retries = 0; steps_total = 0;
    steps_max = 0 }

let create ?(metrics = Metrics.disabled) () =
  On
    {
      lock = Mutex.create ();
      metrics;
      sites = Hashtbl.create 16;
      stacks = Hashtbl.create 8;
      unattributed = new_site "(unattributed)";
    }

let disabled = Disabled

let enabled = function Disabled -> false | On _ -> true

let locked r f =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

let site_of r label =
  match Hashtbl.find_opt r.sites label with
  | Some s -> s
  | None ->
      let s = new_site label in
      Hashtbl.add r.sites label s;
      s

let stack_of r tid =
  match Hashtbl.find_opt r.stacks tid with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.add r.stacks tid s;
      s

let op_begin t label =
  match t with
  | Disabled -> ()
  | On r ->
      let start_step = Sched.steps_so_far () and tid = Sched.tid () in
      locked r (fun () ->
          let s = stack_of r tid in
          s :=
            { f_site = site_of r label; start_step; f_retries = 0; f_dcas = 0 }
            :: !s)

let op_end t =
  match t with
  | Disabled -> ()
  | On r -> (
      let now = Sched.steps_so_far () and tid = Sched.tid () in
      let finished =
        locked r (fun () ->
            match Hashtbl.find_opt r.stacks tid with
            | Some ({ contents = f :: rest } as s) ->
                s := rest;
                let steps = max 0 (now - f.start_step) in
                let site = f.f_site in
                site.calls <- site.calls + 1;
                site.retries <- site.retries + f.f_retries;
                site.dcas_retries <- site.dcas_retries + f.f_dcas;
                site.steps_total <- site.steps_total + steps;
                if steps > site.steps_max then site.steps_max <- steps;
                Some (site.label, f.f_retries, f.f_dcas, steps)
            | _ -> None)
      in
      (* Observed for every completed call — zeros included — so the
         histograms are populated deterministically, not only under
         contention. Metrics has its own lock; observe outside ours. *)
      match finished with
      | Some (label, retries, dcas, steps) ->
          Metrics.observe r.metrics (label ^ ".retries") (float_of_int retries);
          Metrics.observe r.metrics (label ^ ".steps") (float_of_int steps);
          Metrics.observe r.metrics ("dcas.retries." ^ label)
            (float_of_int dcas)
      | None -> ())

let charge t ~frame ~orphan =
  match t with
  | Disabled -> ()
  | On r ->
      let tid = Sched.tid () in
      locked r (fun () ->
          match Hashtbl.find_opt r.stacks tid with
          | Some { contents = fr :: _ } -> frame fr
          | _ -> orphan r.unattributed)

let op_retry t =
  charge t
    ~frame:(fun fr -> fr.f_retries <- fr.f_retries + 1)
    ~orphan:(fun site -> site.retries <- site.retries + 1)

let dcas_retry t =
  charge t
    ~frame:(fun fr -> fr.f_dcas <- fr.f_dcas + 1)
    ~orphan:(fun site -> site.dcas_retries <- site.dcas_retries + 1)

let current_site t =
  match t with
  | Disabled -> "?"
  | On r -> (
      let tid = Sched.tid () in
      locked r (fun () ->
          match Hashtbl.find_opt r.stacks tid with
          | Some { contents = f :: _ } -> f.f_site.label
          | _ -> r.unattributed.label))

(* --- reporting --- *)

type row = {
  r_site : string;
  r_calls : int;
  r_retries : int;
  r_dcas_retries : int;
  r_wasted : int;
  r_steps_total : int;
  r_steps_max : int;
}

let row_of (s : site) =
  {
    r_site = s.label;
    r_calls = s.calls;
    r_retries = s.retries;
    r_dcas_retries = s.dcas_retries;
    r_wasted = s.retries + s.dcas_retries;
    r_steps_total = s.steps_total;
    r_steps_max = s.steps_max;
  }

let rows t =
  match t with
  | Disabled -> []
  | On r ->
      let all =
        locked r (fun () ->
            let acc =
              Hashtbl.fold (fun _ s acc -> row_of s :: acc) r.sites []
            in
            if
              r.unattributed.retries > 0 || r.unattributed.dcas_retries > 0
            then row_of r.unattributed :: acc
            else acc)
      in
      (* Most wasted attempts first: the contention hot list. *)
      List.sort
        (fun a b -> compare (b.r_wasted, a.r_site) (a.r_wasted, b.r_site))
        all

let mean_steps row =
  if row.r_calls = 0 then 0.0
  else float_of_int row.r_steps_total /. float_of_int row.r_calls

let table t =
  match rows t with
  | [] -> "no profiled sites\n"
  | rs ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Printf.sprintf "%-28s %8s %8s %8s %8s %10s %8s\n" "site" "calls"
           "retries" "dcas" "wasted" "steps/op" "max");
      List.iter
        (fun row ->
          Buffer.add_string buf
            (Printf.sprintf "%-28s %8d %8d %8d %8d %10.2f %8d\n" row.r_site
               row.r_calls row.r_retries row.r_dcas_retries row.r_wasted
               (mean_steps row) row.r_steps_max))
        rs;
      Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"sites\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"site\":\"%s\",\"calls\":%d,\"retries\":%d,\"dcas_retries\":%d,\
            \"wasted\":%d,\"steps_total\":%d,\"steps_max\":%d,\
            \"steps_per_op\":%.4f}"
           (json_escape row.r_site) row.r_calls row.r_retries
           row.r_dcas_retries row.r_wasted row.r_steps_total row.r_steps_max
           (mean_steps row)))
    (rows t);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let total_wasted t =
  List.fold_left (fun acc r -> acc + r.r_wasted) 0 (rows t)
