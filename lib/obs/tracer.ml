module Sched = Lfrc_sched.Sched

type kind = Begin | End | Retry | Free | Fault | Instant | Flow_out | Flow_in

type event = { step : int; tid : int; kind : kind; name : string; arg : int }

type ring = {
  lock : Mutex.t;
  cap : int;
  buf : event array;
  mutable total : int;  (* events ever emitted; buf index = total mod cap *)
  mutable meta : (string * string) list;  (* run metadata, export headers *)
}

type t = Disabled | On of ring

let dummy = { step = 0; tid = 0; kind = Instant; name = ""; arg = 0 }

let create ~capacity =
  if capacity <= 0 then Disabled
  else
    On
      {
        lock = Mutex.create ();
        cap = capacity;
        buf = Array.make capacity dummy;
        total = 0;
        meta = [];
      }

let disabled = Disabled

let enabled = function Disabled -> false | On _ -> true

let push r ev =
  Mutex.lock r.lock;
  r.buf.(r.total mod r.cap) <- ev;
  r.total <- r.total + 1;
  Mutex.unlock r.lock

let emit t ?(arg = 0) kind name =
  match t with
  | Disabled -> ()
  | On r ->
      push r
        { step = Sched.steps_so_far (); tid = Sched.tid (); kind; name; arg }

(* Backdated emission: flow events point at the culprit's *past* winning
   write, so the blame layer needs to place an event at an explicit
   (step, tid) rather than "now". *)
let emit_at t ~step ~tid ?(arg = 0) kind name =
  match t with Disabled -> () | On r -> push r { step; tid; kind; name; arg }

let set_meta t kvs =
  match t with Disabled -> () | On r -> r.meta <- kvs

let meta = function Disabled -> [] | On r -> r.meta

let events = function
  | Disabled -> []
  | On r ->
      Mutex.lock r.lock;
      let n = min r.total r.cap in
      let start = r.total - n in
      let out = List.init n (fun i -> r.buf.((start + i) mod r.cap)) in
      Mutex.unlock r.lock;
      out

let recorded = function Disabled -> 0 | On r -> r.total

let dropped = function Disabled -> 0 | On r -> max 0 (r.total - r.cap)

let clear = function
  | Disabled -> ()
  | On r ->
      Mutex.lock r.lock;
      r.total <- 0;
      Mutex.unlock r.lock

let kind_name = function
  | Begin -> "begin"
  | End -> "end"
  | Retry -> "retry"
  | Free -> "free"
  | Fault -> "fault"
  | Instant -> "instant"
  | Flow_out -> "flow-out"
  | Flow_in -> "flow-in"

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Spans are re-paired at export into Chrome "X" (complete) records: a ring
   that overwrote a span's Begin would otherwise emit an unmatched "E",
   which chrome://tracing renders as garbage. Instant events map to "i".

   The pairing works over any event list (not just this ring's) so the
   lineage forensics can reuse it for per-object timelines. *)
let chrome_json_of_events ?(meta = []) evs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",";
  (* Run metadata up front so a saved trace is self-describing: seed,
     rc mode, fault plan, obs flags — everything needed to replay it. *)
  Buffer.add_string buf "\"metadata\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    meta;
  Buffer.add_string buf "},\"traceEvents\":[";
  let first = ref true in
  let record fields =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%s" k v))
      fields;
    Buffer.add_char buf '}'
  in
  let quoted s = Printf.sprintf "\"%s\"" (json_escape s) in
  let common ev =
    [
      ("pid", "1");
      ("tid", string_of_int ev.tid);
      ("args", Printf.sprintf "{\"arg\":%d}" ev.arg);
    ]
  in
  let instant ev cat =
    record
      ([
         ("name", quoted ev.name);
         ("cat", quoted cat);
         ("ph", "\"i\"");
         ("s", "\"t\"");
         ("ts", string_of_int ev.step);
       ]
      @ common ev)
  in
  let stacks : (int, (string * int * int) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  (* An orphaned Begin (its End fell off the ring, or never came) degrades
     to an "op-open" point — the same degradation an orphaned End gets —
     instead of silently blocking every outer span from pairing. *)
  let orphan_begin tid (name, step, arg) =
    instant { step; tid; kind = Begin; name; arg } "op-open"
  in
  List.iter
    (fun ev ->
      match ev.kind with
      | Begin -> (
          let s = stack ev.tid in
          s := (ev.name, ev.step, ev.arg) :: !s)
      | End -> (
          let s = stack ev.tid in
          let rec close = function
            | (name, t0, arg) :: rest when name = ev.name ->
                s := rest;
                record
                  ([
                     ("name", quoted name);
                     ("cat", quoted "op");
                     ("ph", "\"X\"");
                     ("ts", string_of_int t0);
                     ("dur", string_of_int (max 0 (ev.step - t0)));
                   ]
                  @ common { ev with arg })
            | orphan :: rest ->
                (* A deeper Begin matches: the intervening Begin lost its
                   End to the ring. Degrade it and keep pairing. *)
                s := rest;
                orphan_begin ev.tid orphan;
                close rest
            | [] ->
                (* Begin fell off the ring: keep the evidence as a point. *)
                instant ev "op-end"
          in
          if List.exists (fun (name, _, _) -> name = ev.name) !s then
            close !s
          else instant ev "op-end")
      | Retry -> instant ev "retry"
      | Free -> instant ev "free"
      | Fault -> instant ev "fault"
      | Instant -> instant ev "instant"
      | Flow_out ->
          (* Chrome flow-event arrows: "s" (start) at the winning write,
             "f" (finish, binding to the enclosing slice) at the doomed
             attempt; [arg] carries the flow id that pairs them. *)
          record
            [
              ("name", quoted ev.name);
              ("cat", quoted "flow");
              ("ph", "\"s\"");
              ("id", string_of_int ev.arg);
              ("ts", string_of_int ev.step);
              ("pid", "1");
              ("tid", string_of_int ev.tid);
            ]
      | Flow_in ->
          record
            [
              ("name", quoted ev.name);
              ("cat", quoted "flow");
              ("ph", "\"f\"");
              ("bp", "\"e\"");
              ("id", string_of_int ev.arg);
              ("ts", string_of_int ev.step);
              ("pid", "1");
              ("tid", string_of_int ev.tid);
            ])
    evs;
  (* Spans still open when the trace was cut: render as points too. *)
  Hashtbl.iter
    (fun tid s -> List.iter (orphan_begin tid) !s)
    stacks;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_chrome_json t = chrome_json_of_events ~meta:(meta t) (events t)

let timeline_of_events ?(dropped = 0) ?(meta = []) evs =
  let buf = Buffer.create 1024 in
  if dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "... %d earlier events dropped\n" dropped);
  List.iter
    (fun ev ->
      Buffer.add_string buf
        (Printf.sprintf "%8d  t%-3d %-8s %-24s %d\n" ev.step ev.tid
           (kind_name ev.kind) ev.name ev.arg))
    evs;
  Buffer.add_string buf
    (Printf.sprintf "-- %d retained, %d dropped\n" (List.length evs) dropped);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf "-- meta %s=%s\n" k v))
    meta;
  Buffer.contents buf

let to_timeline t = timeline_of_events ~dropped:(dropped t) ~meta:(meta t) (events t)

let pp ppf t = Format.pp_print_string ppf (to_timeline t)
