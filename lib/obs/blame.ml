module Sched = Lfrc_sched.Sched

(* Contention causality. Every successful shared-memory write stamps its
   cell with (thread, call site, op kind, scheduler step); every failed
   CAS/DCAS looks the stamp up and charges one wasted attempt to the
   (victim site, culprit site) pair — the loser's innermost open
   operation against the operation whose winning write invalidated it.
   Under the deterministic scheduler this attribution is exact: the cell
   value a failed compare saw can only have been produced by the stamped
   write, because stamping happens in the same atomic step as the write
   (no yield point in between) and the simulator runs one thread at a
   time.

   Sites are maintained by this module's own per-thread stack (fed by
   the same [Lfrc.span] shim that feeds the profiler), so blame works
   with the profiler off. Aggregation happens at charge time — nothing
   is kept per-thread except the open-op stack and the current retry
   chain, which is why a crashed thread's pending state is exactly
   those two things ({!adopt} folds them in instead of dropping them).

   Off path: like every observability layer here, [Disabled] makes each
   hook a single branch. *)

type op_kind = Write | Cas | Dcas | Rmw

let op_kind_name = function
  | Write -> "write"
  | Cas -> "cas"
  | Dcas -> "dcas"
  | Rmw -> "rmw"

let op_kind_index = function Write -> 0 | Cas -> 1 | Dcas -> 2 | Rmw -> 3
let op_kinds = [| Write; Cas; Dcas; Rmw |]

type stamp = { s_tid : int; s_site : string; s_kind : op_kind; s_step : int }

type pair = {
  mutable p_wasted : int;  (* failed attempts charged to this pair *)
  mutable p_steps : int;
      (* scheduler-step latency: for each charged failure, how many steps
         before it the culprit's winning write landed — the staleness the
         loser paid for. *)
  mutable p_rc : int;  (* charged failures on cells bound as rc cells *)
  p_kinds : int array;  (* by culprit op kind *)
  p_addrs : (int, int) Hashtbl.t;  (* owner addr -> charged failures *)
}

(* A retry chain: consecutive charged failures on one thread with no
   intervening successful write by that thread. The chain is the critical
   path of one operation attempt; it closes on the thread's next
   successful write (the op finally landed) or on the owning span's end
   (the op gave up), and a crashed owner's open chain is adopted. *)
type chain = {
  ch_site : string;
  ch_first : int;
  mutable ch_last : int;
  mutable ch_len : int;
}

type chain_stat = {
  mutable cs_chains : int;
  mutable cs_adopted : int;
  mutable cs_len_total : int;
  mutable cs_len_max : int;
  mutable cs_steps_total : int;  (* first-to-last failure, summed *)
}

type reg = {
  lock : Mutex.t;
  tracer : Tracer.t;  (* flow events (winning write -> doomed attempt) *)
  stamps : (int, stamp) Hashtbl.t;  (* cell id -> last successful writer *)
  owners : (int, int) Hashtbl.t;  (* cell id -> owning object (rc cells) *)
  pairs : (string * string, pair) Hashtbl.t;  (* (victim, culprit) *)
  stacks : (int, string list ref) Hashtbl.t;  (* tid -> open op labels *)
  chains : (int, chain) Hashtbl.t;  (* tid -> open retry chain *)
  chain_stats : (string, chain_stat) Hashtbl.t;  (* victim site -> stats *)
  mutable flows : int;
  mutable attributed : int;
  mutable unstamped : int;
  mutable spurious : int;
  mutable adopted_frames : int;
  mutable adopted_chains : int;
}

type t = Disabled | On of reg

let unattributed_site = "(unattributed)"
let unstamped_site = "(unstamped)"
let injected_site = "(fault-injection)"

let create ?(tracer = Tracer.disabled) () =
  On
    {
      lock = Mutex.create ();
      tracer;
      stamps = Hashtbl.create 256;
      owners = Hashtbl.create 256;
      pairs = Hashtbl.create 32;
      stacks = Hashtbl.create 8;
      chains = Hashtbl.create 8;
      chain_stats = Hashtbl.create 16;
      flows = 0;
      attributed = 0;
      unstamped = 0;
      spurious = 0;
      adopted_frames = 0;
      adopted_chains = 0;
    }

let disabled = Disabled

let enabled = function Disabled -> false | On _ -> true

let locked r f =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

(* A fresh environment attaching this registry starts a new run: stale
   stamps from a previous heap (cell ids restart per heap) must not be
   blamed for the new run's failures. Aggregates survive — one registry
   can cover a whole experiment campaign. *)
let new_run = function
  | Disabled -> ()
  | On r ->
      locked r (fun () ->
          Hashtbl.reset r.stamps;
          Hashtbl.reset r.owners;
          Hashtbl.reset r.stacks;
          Hashtbl.reset r.chains)

let stack_of r tid =
  match Hashtbl.find_opt r.stacks tid with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.add r.stacks tid s;
      s

let current_site_locked r tid =
  match Hashtbl.find_opt r.stacks tid with
  | Some { contents = site :: _ } -> site
  | _ -> unattributed_site

let op_begin t label =
  match t with
  | Disabled -> ()
  | On r ->
      let tid = Sched.tid () in
      locked r (fun () ->
          let s = stack_of r tid in
          s := label :: !s)

let chain_stat_of r site =
  match Hashtbl.find_opt r.chain_stats site with
  | Some cs -> cs
  | None ->
      let cs =
        {
          cs_chains = 0;
          cs_adopted = 0;
          cs_len_total = 0;
          cs_len_max = 0;
          cs_steps_total = 0;
        }
      in
      Hashtbl.add r.chain_stats site cs;
      cs

let close_chain_locked r tid ~adopted =
  match Hashtbl.find_opt r.chains tid with
  | None -> ()
  | Some ch ->
      Hashtbl.remove r.chains tid;
      let cs = chain_stat_of r ch.ch_site in
      cs.cs_chains <- cs.cs_chains + 1;
      if adopted then begin
        cs.cs_adopted <- cs.cs_adopted + 1;
        r.adopted_chains <- r.adopted_chains + 1
      end;
      cs.cs_len_total <- cs.cs_len_total + ch.ch_len;
      if ch.ch_len > cs.cs_len_max then cs.cs_len_max <- ch.ch_len;
      cs.cs_steps_total <- cs.cs_steps_total + max 0 (ch.ch_last - ch.ch_first)

let op_end t =
  match t with
  | Disabled -> ()
  | On r ->
      let tid = Sched.tid () in
      locked r (fun () ->
          match Hashtbl.find_opt r.stacks tid with
          | Some ({ contents = site :: rest } as s) ->
              s := rest;
              (* An op that ends while its retry chain is still open gave
                 up without a winning write (a failed Lfrc.cas, an empty
                 pop): the chain is complete, close it. A chain opened by
                 a *different* (enclosing) site stays open. *)
              (match Hashtbl.find_opt r.chains tid with
              | Some ch when ch.ch_site = site ->
                  close_chain_locked r tid ~adopted:false
              | _ -> ())
          | _ -> ())

let bind_owner t ~cell ~addr =
  match t with
  | Disabled -> ()
  | On r -> locked r (fun () -> Hashtbl.replace r.owners cell addr)

let stamp t kind cell =
  match t with
  | Disabled -> ()
  | On r ->
      let tid = Sched.tid () and step = Sched.steps_so_far () in
      locked r (fun () ->
          let site = current_site_locked r tid in
          Hashtbl.replace r.stamps cell
            { s_tid = tid; s_site = site; s_kind = kind; s_step = step };
          (* This thread just won a write: whatever it was retrying is
             through — its chain (if any) is complete. *)
          close_chain_locked r tid ~adopted:false)

let pair_of r key =
  match Hashtbl.find_opt r.pairs key with
  | Some p -> p
  | None ->
      let p =
        {
          p_wasted = 0;
          p_steps = 0;
          p_rc = 0;
          p_kinds = Array.make 4 0;
          p_addrs = Hashtbl.create 8;
        }
      in
      Hashtbl.add r.pairs key p;
      p

let charge_locked r ~victim ~culprit ~kind ~steps ~owner =
  let p = pair_of r (victim, culprit) in
  p.p_wasted <- p.p_wasted + 1;
  p.p_steps <- p.p_steps + steps;
  p.p_kinds.(op_kind_index kind) <- p.p_kinds.(op_kind_index kind) + 1;
  match owner with
  | None -> ()
  | Some addr ->
      p.p_rc <- p.p_rc + 1;
      let n =
        match Hashtbl.find_opt p.p_addrs addr with Some n -> n | None -> 0
      in
      Hashtbl.replace p.p_addrs addr (n + 1)

let extend_chain_locked r tid ~victim ~step =
  match Hashtbl.find_opt r.chains tid with
  | Some ch ->
      ch.ch_len <- ch.ch_len + 1;
      ch.ch_last <- step
  | None ->
      Hashtbl.replace r.chains tid
        { ch_site = victim; ch_first = step; ch_last = step; ch_len = 1 }

let charge t kind cell =
  match t with
  | Disabled -> ()
  | On r ->
      let tid = Sched.tid () and step = Sched.steps_so_far () in
      let flow =
        locked r (fun () ->
            let victim = current_site_locked r tid in
            extend_chain_locked r tid ~victim ~step;
            let owner = Hashtbl.find_opt r.owners cell in
            match Hashtbl.find_opt r.stamps cell with
            | Some st ->
                r.attributed <- r.attributed + 1;
                charge_locked r ~victim ~culprit:st.s_site ~kind:st.s_kind
                  ~steps:(max 0 (step - st.s_step))
                  ~owner;
                if Tracer.enabled r.tracer then begin
                  r.flows <- r.flows + 1;
                  Some (r.flows, st.s_step, st.s_tid)
                end
                else None
            | None ->
                r.unstamped <- r.unstamped + 1;
                charge_locked r ~victim ~culprit:unstamped_site ~kind ~steps:0
                  ~owner;
                None)
      in
      (* The flow arrow: from the culprit's winning write to the attempt
         it doomed. Emitted outside our lock (the tracer has its own). *)
      match flow with
      | None -> ()
      | Some (id, c_step, c_tid) ->
          Tracer.emit_at r.tracer ~step:c_step ~tid:c_tid ~arg:id
            Tracer.Flow_out "blame";
          Tracer.emit_at r.tracer ~step ~tid ~arg:id Tracer.Flow_in "blame"

(* A spurious (injected) failure compared nothing: no write invalidated
   the attempt, the fault plan did. Charged to a reserved culprit so
   wasted-attempt totals still add up under chaos runs. *)
let charge_spurious t kind =
  match t with
  | Disabled -> ()
  | On r ->
      let tid = Sched.tid () and step = Sched.steps_so_far () in
      locked r (fun () ->
          let victim = current_site_locked r tid in
          extend_chain_locked r tid ~victim ~step;
          r.spurious <- r.spurious + 1;
          charge_locked r ~victim ~culprit:injected_site ~kind ~steps:0
            ~owner:None)

(* Fold crashed threads' pending state — open op frames and open retry
   chains — into the aggregates instead of leaving it dangling: the
   blame analogue of the recovery pass's orphan adoption. Idempotent per
   thread (adopted state is removed). Returns (frames, chains) counts. *)
let adopt t ~crashed =
  match t with
  | Disabled -> (0, 0)
  | On r ->
      locked r (fun () ->
          let frames = ref 0 and chains = ref 0 in
          List.iter
            (fun tid ->
              (match Hashtbl.find_opt r.stacks tid with
              | Some s ->
                  frames := !frames + List.length !s;
                  Hashtbl.remove r.stacks tid
              | None -> ());
              match Hashtbl.find_opt r.chains tid with
              | Some _ ->
                  incr chains;
                  close_chain_locked r tid ~adopted:true
              | None -> ())
            crashed;
          r.adopted_frames <- r.adopted_frames + !frames;
          (!frames, !chains))

let pending t =
  match t with
  | Disabled -> 0
  | On r ->
      locked r (fun () ->
          Hashtbl.fold (fun _ s acc -> acc + List.length !s) r.stacks 0
          + Hashtbl.length r.chains)

(* --- reporting --- *)

type row = {
  b_victim : string;
  b_culprit : string;
  b_wasted : int;
  b_steps : int;
  b_rc : int;
  b_kinds : (string * int) list;  (* culprit op kinds, nonzero only *)
  b_addrs : (int * int) list;  (* owner addr, charged count; busiest first *)
}

type chain_row = {
  c_site : string;
  c_chains : int;
  c_adopted : int;
  c_len_total : int;
  c_len_max : int;
  c_steps_total : int;
}

let rows t =
  match t with
  | Disabled -> []
  | On r ->
      let all =
        locked r (fun () ->
            Hashtbl.fold
              (fun (victim, culprit) p acc ->
                let kinds =
                  Array.to_list op_kinds
                  |> List.filter_map (fun k ->
                         let n = p.p_kinds.(op_kind_index k) in
                         if n > 0 then Some (op_kind_name k, n) else None)
                in
                let addrs =
                  Hashtbl.fold (fun a n acc -> (a, n) :: acc) p.p_addrs []
                  |> List.sort (fun (a1, n1) (a2, n2) ->
                         compare (n2, a1) (n1, a2))
                in
                {
                  b_victim = victim;
                  b_culprit = culprit;
                  b_wasted = p.p_wasted;
                  b_steps = p.p_steps;
                  b_rc = p.p_rc;
                  b_kinds = kinds;
                  b_addrs = addrs;
                }
                :: acc)
              r.pairs [])
      in
      (* Worst pair first; name order breaks ties for deterministic
         byte-identical output on identical runs. *)
      List.sort
        (fun a b ->
          compare
            (b.b_wasted, b.b_steps, a.b_victim, a.b_culprit)
            (a.b_wasted, a.b_steps, b.b_victim, b.b_culprit))
        all

let chain_rows t =
  match t with
  | Disabled -> []
  | On r ->
      locked r (fun () ->
          Hashtbl.fold
            (fun site cs acc ->
              {
                c_site = site;
                c_chains = cs.cs_chains;
                c_adopted = cs.cs_adopted;
                c_len_total = cs.cs_len_total;
                c_len_max = cs.cs_len_max;
                c_steps_total = cs.cs_steps_total;
              }
              :: acc)
            r.chain_stats [])
      |> List.sort (fun a b ->
             compare
               (b.c_len_total, a.c_site)
               (a.c_len_total, b.c_site))

let total_wasted t =
  List.fold_left (fun acc p -> acc + p.b_wasted) 0 (rows t)

let rc_wasted t = List.fold_left (fun acc p -> acc + p.b_rc) 0 (rows t)

(* The headline join for rc contention: the (victim, culprit) pair with
   the most rc-cell failures and its share of all rc-cell failures. *)
let top_rc_pair t =
  let total = rc_wasted t in
  if total = 0 then None
  else
    let best =
      List.fold_left
        (fun acc p -> match acc with
          | Some b when b.b_rc >= p.b_rc -> Some b
          | _ -> Some p)
        None
        (List.rev (rows t))
    in
    Option.map
      (fun p ->
        (p.b_victim, p.b_culprit, 100.0 *. float_of_int p.b_rc /. float_of_int total))
      best

let counters t =
  match t with
  | Disabled -> (0, 0, 0, 0, 0, 0)
  | On r ->
      locked r (fun () ->
          ( r.attributed,
            r.unstamped,
            r.spurious,
            r.flows,
            r.adopted_frames,
            r.adopted_chains ))

let adopted t =
  let _, _, _, _, frames, chains = counters t in
  (frames, chains)

(* Name an object for the report: its layout family (when the namer can
   still see it) and the last lineage event touching it. Both optional —
   blame stays useful without either. *)
let describe_addr ?namer ?lineage addr =
  let family = Option.bind namer (fun f -> f addr) in
  let last =
    Option.bind lineage (fun ln ->
        Option.map
          (fun ev -> Format.asprintf "%a" Lineage.pp_event ev)
          (Lineage.last_event ln ~addr))
  in
  (family, last)

let matrix t =
  let rs = rows t in
  if rs = [] then "no blamed failures\n"
  else begin
    let sites list =
      List.sort_uniq compare list
    in
    let victims = sites (List.map (fun r -> r.b_victim) rs)
    and culprits = sites (List.map (fun r -> r.b_culprit) rs) in
    let get v c =
      match
        List.find_opt (fun r -> r.b_victim = v && r.b_culprit = c) rs
      with
      | Some r -> r.b_wasted
      | None -> 0
    in
    let buf = Buffer.create 1024 in
    let w = 20 in
    Buffer.add_string buf
      (Printf.sprintf "%-*s" w "victim \\ culprit");
    List.iter
      (fun c -> Buffer.add_string buf (Printf.sprintf " %18s" c))
      culprits;
    Buffer.add_char buf '\n';
    List.iter
      (fun v ->
        Buffer.add_string buf (Printf.sprintf "%-*s" w v);
        List.iter
          (fun c ->
            let n = get v c in
            Buffer.add_string buf
              (if n = 0 then Printf.sprintf " %18s" "."
               else Printf.sprintf " %18d" n))
          culprits;
        Buffer.add_char buf '\n')
      victims;
    Buffer.contents buf
  end

let report ?(top = 10) ?namer ?lineage t =
  let rs = rows t in
  let buf = Buffer.create 1024 in
  let attributed, unstamped, spurious, flows, ad_frames, ad_chains =
    counters t
  in
  Buffer.add_string buf
    (Printf.sprintf
       "blame: %d wasted attempts (%d attributed, %d unstamped, %d injected), \
        %d flow events\n"
       (total_wasted t) attributed unstamped spurious flows);
  if ad_frames > 0 || ad_chains > 0 then
    Buffer.add_string buf
      (Printf.sprintf "adopted from crashed threads: %d open ops, %d chains\n"
         ad_frames ad_chains);
  if rs = [] then Buffer.add_string buf "no blamed failures\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "%-4s %-44s %8s %10s %6s\n" "rank" "victim -> culprit"
         "wasted" "steps" "rc");
    List.iteri
      (fun i r ->
        if i < top then begin
          Buffer.add_string buf
            (Printf.sprintf "%3d. %-44s %8d %10d %6d\n" (i + 1)
               (r.b_victim ^ " -> " ^ r.b_culprit)
               r.b_wasted r.b_steps r.b_rc);
          match r.b_addrs with
          | (addr, n) :: _ ->
              let family, last = describe_addr ?namer ?lineage addr in
              Buffer.add_string buf
                (Printf.sprintf "       object %d (%d hits%s)%s\n" addr n
                   (match family with
                   | Some f -> ", family " ^ f
                   | None -> "")
                   (match last with Some l -> "  last: " ^ l | None -> ""))
          | [] -> ()
        end)
      rs;
    (match top_rc_pair t with
    | Some (v, c, share) ->
        Buffer.add_string buf
          (Printf.sprintf
             "rc attribution: %s -> %s covers %.0f%% of rc contention \
              (%d rc failures total)\n"
             v c share (rc_wasted t))
    | None -> Buffer.add_string buf "rc attribution: no rc contention\n");
    match chain_rows t with
    | [] -> ()
    | crs ->
        Buffer.add_string buf
          (Printf.sprintf "%-28s %8s %8s %8s %8s %8s\n" "retry chains by site"
             "chains" "retries" "max-len" "steps" "adopted");
        List.iter
          (fun c ->
            Buffer.add_string buf
              (Printf.sprintf "%-28s %8d %8d %8d %8d %8d\n" c.c_site
                 c.c_chains c.c_len_total c.c_len_max c.c_steps_total
                 c.c_adopted))
          crs
  end;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?namer ?lineage t =
  let buf = Buffer.create 2048 in
  let attributed, unstamped, spurious, flows, ad_frames, ad_chains =
    counters t
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"totals\":{\"wasted\":%d,\"attributed\":%d,\"unstamped\":%d,\
        \"injected\":%d,\"rc_wasted\":%d,\"flows\":%d,\
        \"adopted_frames\":%d,\"adopted_chains\":%d,\"pending\":%d},\
        \"pairs\":["
       (total_wasted t) attributed unstamped spurious (rc_wasted t) flows
       ad_frames ad_chains (pending t));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"victim\":\"%s\",\"culprit\":\"%s\",\"wasted\":%d,\
            \"steps\":%d,\"rc\":%d,\"kinds\":{"
           (json_escape r.b_victim) (json_escape r.b_culprit) r.b_wasted
           r.b_steps r.b_rc);
      List.iteri
        (fun j (k, n) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":%d" k n))
        r.b_kinds;
      Buffer.add_string buf "},\"objects\":[";
      List.iteri
        (fun j (addr, n) ->
          if j < 3 then begin
            if j > 0 then Buffer.add_char buf ',';
            let family, last = describe_addr ?namer ?lineage addr in
            Buffer.add_string buf
              (Printf.sprintf "{\"addr\":%d,\"wasted\":%d%s%s}" addr n
                 (match family with
                 | Some f -> Printf.sprintf ",\"family\":\"%s\"" (json_escape f)
                 | None -> "")
                 (match last with
                 | Some l -> Printf.sprintf ",\"last\":\"%s\"" (json_escape l)
                 | None -> ""))
          end)
        r.b_addrs;
      Buffer.add_string buf "]}")
    (rows t);
  Buffer.add_string buf "],\"chains\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"site\":\"%s\",\"chains\":%d,\"retries\":%d,\"len_max\":%d,\
            \"steps\":%d,\"adopted\":%d}"
           (json_escape c.c_site) c.c_chains c.c_len_total c.c_len_max
           c.c_steps_total c.c_adopted))
    (chain_rows t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
