module Sched = Lfrc_sched.Sched

type kind =
  | Alloc of { gen : int }
  | Rc of { old_rc : int; delta : int }
  | Retire
  | Defer
  | Defer_inc
  | Defer_dec
  | Flush of { net : int }
  | Free of { gen : int }
  | Adopt of { owner : int }
  | Wborrow
  | Wshare

type event = { step : int; tid : int; kind : kind; op : string }

(* One tracked object: a bounded ring of its lifecycle events. The ring
   keeps the most recent [cap] events — the tail of the trajectory is what
   the forensic reports join against (the final drop, the second free) —
   and counts what fell off so a report can say how much history is
   missing. *)
type entry = {
  addr : int;
  buf : event array;
  mutable total : int;  (* events ever recorded; buf index = total mod cap *)
  mutable last_rc : int;  (* count after the latest transition *)
  mutable allocs : int;  (* incarnations seen *)
  mutable frees : int;
}

type reg = {
  lock : Mutex.t;
  ring : int;  (* per-object ring capacity *)
  objects : (int, entry) Hashtbl.t;
  op_stacks : (int, string list ref) Hashtbl.t;  (* tid -> op-name stack *)
  mutable recorded : int;
  mutable dropped : int;  (* global drop accounting across all rings *)
}

(* Same single-branch off switch as the disabled Metrics singleton: every
   recording operation pattern-matches once and the Disabled arm falls
   straight through. *)
type t = Disabled | On of reg

let no_op = "?"

let dummy = { step = 0; tid = 0; kind = Retire; op = no_op }

let default_ring = 64

let create ?(ring = default_ring) () =
  if ring <= 0 then Disabled
  else
    On
      {
        lock = Mutex.create ();
        ring;
        objects = Hashtbl.create 64;
        op_stacks = Hashtbl.create 8;
        recorded = 0;
        dropped = 0;
      }

let disabled = Disabled

let enabled = function Disabled -> false | On _ -> true

let locked r f =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

(* --- originating-op context ---

   {!Lfrc_core.Lfrc}'s span shim pushes the operation name for the current
   simulated thread on entry and pops it on exit, so every event recorded
   while the operation runs is attributed to it (a destroy embedded in a
   load attributes to the destroy span, which nests inside the load). *)

let op_begin t name =
  match t with
  | Disabled -> ()
  | On r ->
      let tid = Sched.tid () in
      locked r (fun () ->
          match Hashtbl.find_opt r.op_stacks tid with
          | Some s -> s := name :: !s
          | None -> Hashtbl.add r.op_stacks tid (ref [ name ]))

let op_end t =
  match t with
  | Disabled -> ()
  | On r ->
      let tid = Sched.tid () in
      locked r (fun () ->
          match Hashtbl.find_opt r.op_stacks tid with
          | Some ({ contents = _ :: rest } as s) -> s := rest
          | _ -> ())

let current_op_unlocked r tid =
  match Hashtbl.find_opt r.op_stacks tid with
  | Some { contents = op :: _ } -> op
  | _ -> no_op

(* --- recording --- *)

let entry_of r addr =
  match Hashtbl.find_opt r.objects addr with
  | Some e -> e
  | None ->
      let e =
        {
          addr;
          buf = Array.make r.ring dummy;
          total = 0;
          last_rc = 0;
          allocs = 0;
          frees = 0;
        }
      in
      Hashtbl.add r.objects addr e;
      e

let push r e ev =
  if e.total >= r.ring then r.dropped <- r.dropped + 1;
  e.buf.(e.total mod r.ring) <- ev;
  e.total <- e.total + 1;
  r.recorded <- r.recorded + 1

let record t ?op ~addr kind =
  match t with
  | Disabled -> ()
  | On r ->
      let step = Sched.steps_so_far () and tid = Sched.tid () in
      locked r (fun () ->
          let op =
            match op with Some op -> op | None -> current_op_unlocked r tid
          in
          let e = entry_of r addr in
          (match kind with
          | Alloc _ ->
              e.allocs <- e.allocs + 1;
              e.last_rc <- 1
          | Rc { old_rc; delta } -> e.last_rc <- old_rc + delta
          | Free _ -> e.frees <- e.frees + 1
          (* Parked deltas do not move the heap count; the paired Rc event
             emitted when a flush applies them does. Likewise an adoption
             only re-homes a reference — the adopter's own destroy/flush
             records any count movement — and a weight borrow/share moves
             weight between carriers without touching the total. *)
          | Retire | Defer | Defer_inc | Defer_dec | Flush _ | Adopt _
          | Wborrow | Wshare ->
              ());
          push r e { step; tid; kind; op })

let record_rc t ?op ~addr ~old_rc ~delta () =
  record t ?op ~addr (Rc { old_rc; delta })

(* --- queries --- *)

let recorded = function Disabled -> 0 | On r -> r.recorded

let dropped = function Disabled -> 0 | On r -> r.dropped

let tracked = function
  | Disabled -> []
  | On r ->
      locked r (fun () ->
          Hashtbl.fold (fun addr _ acc -> addr :: acc) r.objects []
          |> List.sort compare)

let events t ~addr =
  match t with
  | Disabled -> []
  | On r ->
      locked r (fun () ->
          match Hashtbl.find_opt r.objects addr with
          | None -> []
          | Some e ->
              let n = min e.total r.ring in
              let start = e.total - n in
              List.init n (fun i -> e.buf.((start + i) mod r.ring)))

type state = {
  st_rc : int;  (** count after the latest recorded transition *)
  st_events : int;  (** events ever recorded (retained + overwritten) *)
  st_allocs : int;
  st_frees : int;
}

let state t ~addr =
  match t with
  | Disabled -> None
  | On r ->
      locked r (fun () ->
          Option.map
            (fun e ->
              {
                st_rc = e.last_rc;
                st_events = e.total;
                st_allocs = e.allocs;
                st_frees = e.frees;
              })
            (Hashtbl.find_opt r.objects addr))

let last_matching t ~addr pred =
  List.fold_left
    (fun acc ev -> if pred ev then Some ev else acc)
    None (events t ~addr)

let last_drop t ~addr =
  last_matching t ~addr (fun ev ->
      match ev.kind with Rc { delta; _ } -> delta < 0 | _ -> false)

let last_event t ~addr =
  match events t ~addr with
  | [] -> None
  | evs -> Some (List.nth evs (List.length evs - 1))

let top t ~n =
  match t with
  | Disabled -> []
  | On r ->
      let all =
        locked r (fun () ->
            Hashtbl.fold (fun addr e acc -> (addr, e.total) :: acc) r.objects [])
      in
      let sorted =
        List.sort (fun (a, na) (b, nb) -> compare (nb, a) (na, b)) all
      in
      List.filteri (fun i _ -> i < n) sorted

(* --- rendering --- *)

let kind_name = function
  | Alloc { gen } -> Printf.sprintf "alloc#%d" gen
  | Rc { delta; old_rc } ->
      Printf.sprintf "rc%+d (%d->%d)" delta old_rc (old_rc + delta)
  | Retire -> "retire"
  | Defer -> "defer"
  | Defer_inc -> "defer+1"
  | Defer_dec -> "defer-1"
  | Flush { net } -> Printf.sprintf "flush net%+d" net
  | Free { gen } -> Printf.sprintf "free#%d" gen
  | Adopt { owner } -> Printf.sprintf "adopt(owner=t%d)" owner
  | Wborrow -> "weight-borrow"
  | Wshare -> "weight-share"

let pp_event ppf ev =
  Format.fprintf ppf "%8d  t%-3d %-16s %s" ev.step ev.tid (kind_name ev.kind)
    ev.op

let timeline t ~addr =
  let buf = Buffer.create 512 in
  (match state t ~addr with
  | None -> Buffer.add_string buf (Printf.sprintf "addr %d: no history\n" addr)
  | Some st ->
      Buffer.add_string buf
        (Printf.sprintf
           "addr %d: rc=%d allocs=%d frees=%d events=%d (ring keeps last %d)\n"
           addr st.st_rc st.st_allocs st.st_frees st.st_events
           (match t with On r -> r.ring | Disabled -> 0));
      let evs = events t ~addr in
      if st.st_events > List.length evs then
        Buffer.add_string buf
          (Printf.sprintf "... %d earlier events dropped\n"
             (st.st_events - List.length evs));
      List.iter
        (fun ev ->
          Buffer.add_string buf
            (Printf.sprintf "%8d  t%-3d %-16s %s\n" ev.step ev.tid
               (kind_name ev.kind) ev.op))
        evs);
  Buffer.contents buf

(* Chrome export: one track per object (tid := addr), so an object's life
   renders as a span from alloc to free with its count transitions as
   instants — reusing {!Tracer}'s Begin/End pairing, orphan degradation
   included (an object still live at export shows as an open point). *)
let tracer_events t ~addr =
  List.map
    (fun ev ->
      let name k = Printf.sprintf "%s [%s]" k ev.op in
      match ev.kind with
      | Alloc { gen } ->
          {
            Tracer.step = ev.step;
            tid = addr;
            kind = Tracer.Begin;
            name = Printf.sprintf "obj %d#%d" addr gen;
            arg = 1;
          }
      | Free { gen } ->
          {
            Tracer.step = ev.step;
            tid = addr;
            kind = Tracer.End;
            name = Printf.sprintf "obj %d#%d" addr gen;
            arg = 0;
          }
      | Rc { old_rc; delta } ->
          {
            Tracer.step = ev.step;
            tid = addr;
            kind = Tracer.Instant;
            name = name (Printf.sprintf "rc%+d" delta);
            arg = old_rc + delta;
          }
      | Retire ->
          {
            Tracer.step = ev.step;
            tid = addr;
            kind = Tracer.Instant;
            name = name "retire";
            arg = 0;
          }
      | Defer ->
          {
            Tracer.step = ev.step;
            tid = addr;
            kind = Tracer.Instant;
            name = name "defer";
            arg = 0;
          }
      | Defer_inc ->
          {
            Tracer.step = ev.step;
            tid = addr;
            kind = Tracer.Instant;
            name = name "defer+1";
            arg = 1;
          }
      | Defer_dec ->
          {
            Tracer.step = ev.step;
            tid = addr;
            kind = Tracer.Instant;
            name = name "defer-1";
            arg = -1;
          }
      | Flush { net } ->
          {
            Tracer.step = ev.step;
            tid = addr;
            kind = Tracer.Instant;
            name = name (Printf.sprintf "flush net%+d" net);
            arg = net;
          }
      | Adopt { owner } ->
          {
            Tracer.step = ev.step;
            tid = addr;
            kind = Tracer.Instant;
            name = name (Printf.sprintf "adopt(owner=t%d)" owner);
            arg = owner;
          }
      | Wborrow ->
          {
            Tracer.step = ev.step;
            tid = addr;
            kind = Tracer.Instant;
            name = name "weight-borrow";
            arg = 1;
          }
      | Wshare ->
          {
            Tracer.step = ev.step;
            tid = addr;
            kind = Tracer.Instant;
            name = name "weight-share";
            arg = 1;
          })
    (events t ~addr)

let to_chrome_json ?addr t =
  let addrs = match addr with Some a -> [ a ] | None -> tracked t in
  Tracer.chrome_json_of_events
    (List.concat_map (fun a -> tracer_events t ~addr:a) addrs)

(* --- forensic reports ---

   Both take the address lists a post-mortem audit produced
   ({!Lfrc_faults.Audit} findings); keeping the join on plain addresses
   here avoids a dependency cycle (faults sits above the core, which sits
   above this library). *)

let describe_culprit buf t addr =
  match last_drop t ~addr with
  | Some ev ->
      Buffer.add_string buf
        (Printf.sprintf
           "  last reference dropped by op=%s at step %d (tid %d), %s\n" ev.op
           ev.step ev.tid (kind_name ev.kind))
  | None -> (
      match last_event t ~addr with
      | Some ev ->
          Buffer.add_string buf
            (Printf.sprintf
               "  no drop recorded; last touched by op=%s at step %d (tid \
                %d), %s\n"
               ev.op ev.step ev.tid (kind_name ev.kind))
      | None -> Buffer.add_string buf "  no lineage recorded\n")

let leak_report t ~addrs =
  let buf = Buffer.create 512 in
  if addrs = [] then Buffer.add_string buf "no leaked objects\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "%d leaked object(s):\n" (List.length addrs));
    List.iter
      (fun addr ->
        let rc =
          match state t ~addr with
          | Some st -> string_of_int st.st_rc
          | None -> "?"
        in
        Buffer.add_string buf (Printf.sprintf "leak addr=%d rc=%s\n" addr rc);
        describe_culprit buf t addr)
      addrs
  end;
  Buffer.contents buf

let double_free_report t ~addrs =
  let buf = Buffer.create 512 in
  if addrs = [] then Buffer.add_string buf "no over-released objects\n"
  else
    List.iter
      (fun addr ->
        Buffer.add_string buf (Printf.sprintf "over-release addr=%d\n" addr);
        (* The final decrement that took (or would take) the count below
           zero, or the extra free itself. *)
        (match
           last_matching t ~addr (fun ev ->
               match ev.kind with
               | Rc { old_rc; delta } -> old_rc + delta < 0
               | _ -> false)
         with
        | Some ev ->
            Buffer.add_string buf
              (Printf.sprintf
                 "  over-released by op=%s at step %d (tid %d), %s\n" ev.op
                 ev.step ev.tid (kind_name ev.kind))
        | None -> describe_culprit buf t addr);
        match state t ~addr with
        | Some st when st.st_frees > st.st_allocs ->
            Buffer.add_string buf
              (Printf.sprintf "  frees=%d exceed allocs=%d\n" st.st_frees
                 st.st_allocs)
        | _ -> ())
      addrs;
  Buffer.contents buf

let summary t =
  match t with
  | Disabled -> "lineage disabled\n"
  | On r ->
      locked r (fun () ->
          Printf.sprintf
            "lineage: %d object(s) tracked, %d event(s) recorded, %d \
             dropped (ring %d per object)\n"
            (Hashtbl.length r.objects) r.recorded r.dropped r.ring)
