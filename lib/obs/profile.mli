(** Call-site contention and latency profiling.

    Every instrumented operation span ("site": "lfrc.load", "ebr.pop",
    …) opens a frame on its simulated thread's stack; CAS/DCAS failures
    and operation-loop retries that happen underneath charge the
    innermost open frame. Closing the frame accumulates into a per-site
    registry — calls, retries, failed DCAS attempts, scheduler steps
    spent — and observes the per-call burst into the {!Metrics}
    histograms ([<site>.retries], [<site>.steps],
    [dcas.retries.<site>]), zeros included, so the histograms are
    populated deterministically rather than only under contention.

    Latency is measured in {!Lfrc_sched.Sched.steps_so_far} deltas — the
    deterministic interleaving clock — so a profile replays identically
    under the same seed. Outside a simulation steps are 0; retry and
    call counts still accumulate.

    The disabled profiler follows the disabled {!Metrics} singleton
    pattern: every entry point is a single branch. *)

type t

val create : ?metrics:Metrics.t -> unit -> t
(** A fresh enabled profiler. Per-call bursts are observed into
    [metrics] histograms when given (the registry the harness already
    snapshots); default {!Metrics.disabled} keeps only the site table. *)

val disabled : t
(** The shared no-op profiler: every call is a single branch. *)

val enabled : t -> bool

(** {1 Attribution} *)

val op_begin : t -> string -> unit
(** Open a frame for site [label] on the current simulated thread. *)

val op_end : t -> unit
(** Close the innermost frame: accumulate into the site registry and
    observe the call's retry/steps bursts into the metrics histograms. *)

val op_retry : t -> unit
(** The innermost open operation's loop re-ran (a {!Lfrc_core.Lfrc}
    retry). Charged to ["(unattributed)"] when no frame is open. *)

val dcas_retry : t -> unit
(** A CAS/DCAS attempt failed underneath the innermost open operation
    (wired from {!Lfrc_atomics.Dcas.attach_obs}). *)

val current_site : t -> string
(** The innermost open frame's site label on the current simulated
    thread — the attribution key the sanitizer stamps on findings.
    ["(unattributed)"] when no frame is open, ["?"] when disabled. *)

(** {1 Reporting} *)

type row = {
  r_site : string;
  r_calls : int;
  r_retries : int;
  r_dcas_retries : int;
  r_wasted : int;  (** [r_retries + r_dcas_retries]: attempts thrown away *)
  r_steps_total : int;
  r_steps_max : int;
}

val rows : t -> row list
(** Per-site totals, most wasted attempts first (ties by site name).
    ["(unattributed)"] appears only when something was charged to it. *)

val table : t -> string
(** The contention table as aligned text: site, calls, retries, dcas,
    wasted, mean steps/op, max steps. *)

val to_json : t -> string
(** [{"sites":[...]}] with one record per {!row}, same order as
    {!rows}. *)

val total_wasted : t -> int
(** Sum of wasted attempts across all sites. *)
