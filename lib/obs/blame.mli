(** Contention causality: attribute every failed CAS/DCAS to the winning
    write that invalidated it.

    Each successful shared-memory write stamps its cell with the writer's
    (thread, call site, op kind, scheduler step). A failed compare then
    charges one wasted attempt to the (victim site, culprit site) pair —
    under the deterministic scheduler this attribution is exact, because
    the stamp is updated in the same atomic step as the write and threads
    interleave only at scheduler points.

    Aggregates: a site×site interference matrix (wasted attempts +
    scheduler-step staleness per pair), per-site retry-chain statistics
    (the critical path of contended operations), and per-object charge
    counts on cells bound via {!bind_owner} (reference-count cells), which
    the report joins with lineage to name the contended object family.

    Like the other observability layers, {!disabled} makes every hook a
    single branch; the registry writes nothing to [Metrics], so counter
    snapshots are byte-identical with blame on or off. *)

type t

(** The op kind recorded in a stamp and reported per culprit. *)
type op_kind = Write | Cas | Dcas | Rmw

val create : ?tracer:Tracer.t -> unit -> t
(** Fresh registry. When [tracer] is live, each attributed failure also
    emits a flow-event pair (culprit's winning write → doomed attempt)
    visible as arrows in chrome://tracing. *)

val disabled : t
val enabled : t -> bool

val new_run : t -> unit
(** Start a new run: clear per-cell stamps and owner bindings (cell ids
    restart per heap, so stale stamps must not cross environments) and
    per-thread state. Aggregated pairs/chains/totals survive. Called by
    [Env.create] when a blame registry is attached. *)

val op_begin : t -> string -> unit
(** Push a call-site label on the calling thread's blame stack; the
    innermost open label is the victim/culprit site for charges/stamps. *)

val op_end : t -> unit
(** Pop the innermost label; closes the thread's retry chain if that op
    opened it (the op gave up without a winning write). *)

val bind_owner : t -> cell:int -> addr:int -> unit
(** Mark [cell] as belonging to object [addr] (used for rc cells), so
    charges on it count as rc contention and name the object. *)

val stamp : t -> op_kind -> int -> unit
(** Record a successful write to cell id [int] by the calling thread;
    also closes the thread's open retry chain (its op went through). *)

val charge : t -> op_kind -> int -> unit
(** Record a failed CAS/DCAS whose compare lost to the last write on the
    given cell id; [op_kind] is only used when the cell has no stamp. *)

val charge_spurious : t -> op_kind -> unit
(** Record an injected (fault-plan) failure: no real write won, charged
    to the reserved ["(fault-injection)"] culprit. *)

val adopt : t -> crashed:int list -> int * int
(** Fold crashed threads' pending state (open op frames, open retry
    chains) into the aggregates. Returns [(frames, chains)] adopted. *)

val pending : t -> int
(** Open frames + open chains across all threads (0 after clean runs and
    after {!adopt}). *)

(** {2 Aggregate access (tests, bench JSON)} *)

type row = {
  b_victim : string;
  b_culprit : string;
  b_wasted : int;  (** failed attempts charged to the pair *)
  b_steps : int;  (** summed staleness: failure step − culprit write step *)
  b_rc : int;  (** charges on owner-bound (rc) cells *)
  b_kinds : (string * int) list;  (** culprit op kinds, nonzero only *)
  b_addrs : (int * int) list;  (** (owner addr, charges), busiest first *)
}

type chain_row = {
  c_site : string;
  c_chains : int;
  c_adopted : int;
  c_len_total : int;
  c_len_max : int;
  c_steps_total : int;
}

val rows : t -> row list
(** All pairs, worst first; ordering is total, so identical runs produce
    identical lists. *)

val chain_rows : t -> chain_row list
val total_wasted : t -> int
val rc_wasted : t -> int

val top_rc_pair : t -> (string * string * float) option
(** The pair with the most rc-cell charges and its percentage share of
    all rc-cell charges. *)

val adopted : t -> int * int
(** Totals of adopted (frames, chains). *)

(** {2 Rendering} *)

val matrix : t -> string
(** Victim × culprit wasted-attempt matrix, fixed column order. *)

val report :
  ?top:int ->
  ?namer:(int -> string option) ->
  ?lineage:Lineage.t ->
  t ->
  string
(** Ranked victim→culprit report. [namer] maps an object address to its
    layout family; [lineage] names the last recorded event per object. *)

val to_json :
  ?namer:(int -> string option) -> ?lineage:Lineage.t -> t -> string
(** Machine-readable dump: totals, sorted pairs (with per-pair op kinds
    and top objects), and per-site chain stats. Byte-deterministic for a
    given run. *)
