module Stats = Lfrc_util.Stats

type gauge = { mutable last : int; mutable max : int }

type series = { mutable buf : float array; mutable len : int }

type reg = {
  lock : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hists : (string, series) Hashtbl.t;
}

(* The disabled registry is a distinct constructor, not an empty record:
   every recording operation starts with one pattern-match branch and the
   disabled arm falls straight through, which is the whole overhead of
   instrumentation when observability is off. *)
type t = Disabled | On of reg

let create () =
  On
    {
      lock = Mutex.create ();
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 8;
      hists = Hashtbl.create 8;
    }

let disabled = Disabled

let enabled = function Disabled -> false | On _ -> true

let locked r f =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

let add t name v =
  match t with
  | Disabled -> ()
  | On r ->
      locked r (fun () ->
          match Hashtbl.find_opt r.counters name with
          | Some c -> c := !c + v
          | None -> Hashtbl.add r.counters name (ref v))

let incr t name = add t name 1

let set_gauge t name v =
  match t with
  | Disabled -> ()
  | On r ->
      locked r (fun () ->
          match Hashtbl.find_opt r.gauges name with
          | Some g ->
              g.last <- v;
              if v > g.max then g.max <- v
          | None -> Hashtbl.add r.gauges name { last = v; max = v })

let observe t name x =
  match t with
  | Disabled -> ()
  | On r ->
      locked r (fun () ->
          let s =
            match Hashtbl.find_opt r.hists name with
            | Some s -> s
            | None ->
                let s = { buf = Array.make 16 0.0; len = 0 } in
                Hashtbl.add r.hists name s;
                s
          in
          if s.len = Array.length s.buf then begin
            let bigger = Array.make (2 * s.len) 0.0 in
            Array.blit s.buf 0 bigger 0 s.len;
            s.buf <- bigger
          end;
          s.buf.(s.len) <- x;
          s.len <- s.len + 1)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * (int * int)) list;
  samples : (string * float array) list;
}

let empty = { counters = []; gauges = []; samples = [] }

let is_empty s = s.counters = [] && s.gauges = [] && s.samples = []

let by_name (a, _) (b, _) = String.compare a b

let snapshot = function
  | Disabled -> empty
  | On r ->
      locked r (fun () ->
          let counters =
            Hashtbl.fold (fun k c acc -> (k, !c) :: acc) r.counters []
            |> List.sort by_name
          in
          let gauges =
            Hashtbl.fold (fun k g acc -> (k, (g.last, g.max)) :: acc) r.gauges []
            |> List.sort by_name
          in
          let samples =
            Hashtbl.fold
              (fun k s acc ->
                let a = Array.sub s.buf 0 s.len in
                Array.sort compare a;
                (k, a) :: acc)
              r.hists []
            |> List.sort by_name
          in
          { counters; gauges; samples })

let reset = function
  | Disabled -> ()
  | On r ->
      locked r (fun () ->
          Hashtbl.reset r.counters;
          Hashtbl.reset r.gauges;
          Hashtbl.reset r.hists)

let counter_value s name =
  match List.assoc_opt name s.counters with Some v -> v | None -> 0

let gauge_value s name = List.assoc_opt name s.gauges

(* Merge two sorted association lists, combining values on key collision. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ra, (kb, vb) :: rb ->
      let c = String.compare ka kb in
      if c < 0 then (ka, va) :: merge_assoc combine ra b
      else if c > 0 then (kb, vb) :: merge_assoc combine a rb
      else (ka, combine va vb) :: merge_assoc combine ra rb

let merge a b =
  {
    counters = merge_assoc ( + ) a.counters b.counters;
    gauges =
      merge_assoc
        (fun (_, max_a) (last_b, max_b) -> (last_b, max max_a max_b))
        a.gauges b.gauges;
    samples =
      merge_assoc
        (fun xs ys ->
          let m = Array.append xs ys in
          Array.sort compare m;
          m)
        a.samples b.samples;
  }

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_obj buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, emit) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":" (json_escape k));
      emit buf)
    fields;
  Buffer.add_char buf '}'

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

let to_json s =
  let buf = Buffer.create 512 in
  json_obj buf
    [
      ( "counters",
        fun buf ->
          json_obj buf
            (List.map
               (fun (k, v) ->
                 (k, fun buf -> Buffer.add_string buf (string_of_int v)))
               s.counters) );
      ( "gauges",
        fun buf ->
          json_obj buf
            (List.map
               (fun (k, (last, max)) ->
                 ( k,
                   fun buf ->
                     json_obj buf
                       [
                         ( "last",
                           fun buf ->
                             Buffer.add_string buf (string_of_int last) );
                         ( "max",
                           fun buf -> Buffer.add_string buf (string_of_int max)
                         );
                       ] ))
               s.gauges) );
      ( "histograms",
        fun buf ->
          json_obj buf
            (List.map
               (fun (k, xs) ->
                 ( k,
                   fun buf ->
                     if Array.length xs = 0 then Buffer.add_string buf "{}"
                     else begin
                       let s = Stats.summarize xs in
                       Buffer.add_string buf
                         (Printf.sprintf
                            "{\"n\":%d,\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"max\":%s}"
                            s.Stats.n (json_float s.Stats.mean)
                            (json_float s.Stats.p50) (json_float s.Stats.p90)
                            (json_float s.Stats.p99) (json_float s.Stats.max))
                     end ))
               s.samples) );
    ];
  Buffer.contents buf

let pp ppf s =
  let first = ref true in
  let line fmt =
    if !first then first := false else Format.pp_print_cut ppf ();
    Format.fprintf ppf fmt
  in
  Format.pp_open_vbox ppf 0;
  List.iter (fun (k, v) -> line "%s = %d" k v) s.counters;
  List.iter
    (fun (k, (last, max)) -> line "%s = %d (max %d)" k last max)
    s.gauges;
  List.iter
    (fun (k, xs) ->
      if Array.length xs > 0 then
        line "%s: %a" k Stats.pp_summary (Stats.summarize xs))
    s.samples;
  Format.pp_close_box ppf ()
