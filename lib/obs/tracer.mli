(** Bounded event tracing keyed to the deterministic scheduler's step
    numbers.

    Instrumented layers emit begin/end spans for LFRC operations, instant
    events for retries, frees and injected faults, and the ring keeps the
    last [capacity] of them. Under {!Lfrc_sched.Sched.run} the timestamp
    of an event is the simulation step at which it happened — the exact
    interleaving clock — so a trace is a replayable account of {e which}
    retry happened {e when}. Outside a simulation steps are 0 and events
    still order by arrival.

    Export as Chrome [chrome://tracing] / Perfetto JSON
    ({!to_chrome_json}) or as a compact text timeline ({!to_timeline}). *)

type kind =
  | Begin  (** an instrumented operation starts (span open) *)
  | End  (** the matching span closes *)
  | Retry  (** a CAS/DCAS attempt failed and the loop will re-run *)
  | Free  (** an object went back to the allocator *)
  | Fault  (** an injected fault fired (spurious failure, OOM, crash) *)
  | Instant  (** anything else worth a point mark *)
  | Flow_out
      (** start of a causal arrow (e.g. a winning write that dooms another
          thread's CAS); [arg] is the flow id pairing it with its
          {!Flow_in} *)
  | Flow_in  (** end of a causal arrow, at the doomed attempt *)

type event = { step : int; tid : int; kind : kind; name : string; arg : int }

type t

val create : capacity:int -> t
(** A fresh enabled tracer holding at most [capacity] events (older
    events are overwritten); [capacity <= 0] returns {!disabled}. *)

val disabled : t
(** The shared no-op tracer: {!emit} is a single branch. *)

val enabled : t -> bool

val emit : t -> ?arg:int -> kind -> string -> unit
(** Record one event stamped with the current scheduler step and
    simulated thread id. No-op on the disabled tracer. *)

val emit_at : t -> step:int -> tid:int -> ?arg:int -> kind -> string -> unit
(** Like {!emit} but with an explicit (step, tid) — used by the blame
    layer to backdate a {!Flow_out} to the culprit's winning write. *)

val set_meta : t -> (string * string) list -> unit
(** Attach run metadata (seed, rc mode, fault plan token, obs flags …);
    exported in the chrome JSON [metadata] header and as [-- meta k=v]
    footer lines of the text timeline, so saved traces are
    self-describing. *)

val meta : t -> (string * string) list

val events : t -> event list
(** Retained events, oldest first (at most [capacity]). *)

val recorded : t -> int
(** Total events ever emitted, including overwritten ones. *)

val dropped : t -> int
(** [recorded - retained]: how many fell off the ring. *)

val clear : t -> unit

val kind_name : kind -> string

val chrome_json_of_events : ?meta:(string * string) list -> event list -> string
(** The Chrome trace-event format over an arbitrary event list:
    [{"traceEvents": [...]}] with Begin/End pairs re-paired into ["X"]
    (complete-span) records and everything else as ["i"] (instant)
    records; [ts] is the simulation step. Pairing is per-[tid]; an
    orphaned End (its Begin fell off the ring) degrades to an ["op-end"]
    instant, and an orphaned Begin (its End was overwritten, or the trace
    was cut mid-span) degrades to an ["op-open"] instant rather than
    blocking outer spans from pairing. Loads directly in
    [chrome://tracing] and Perfetto. The lineage forensics reuse this
    pairing for per-object timelines. *)

val to_chrome_json : t -> string
(** [chrome_json_of_events] over this tracer's retained events. *)

val timeline_of_events :
  ?dropped:int -> ?meta:(string * string) list -> event list -> string
(** One line per event: [step  tid  kind  name  arg], with a
    [-- N retained, M dropped] accounting footer (and a leading marker
    when [dropped > 0]), then one [-- meta k=v] line per metadata pair. *)

val to_timeline : t -> string
(** [timeline_of_events] over this tracer's retained events and drop
    count. *)

val pp : Format.formatter -> t -> unit
(** The text timeline, for embedding in reports. *)
