(** Per-object lifecycle forensics.

    Records each tracked object's causal history — allocation, every
    reference-count transition (with the simulated thread, scheduler step
    and originating LFRC operation), retirement, deferral and free — into
    a bounded per-object ring. The rings keep the {e tail} of each
    trajectory: when a heap audit names a leaked or over-released
    address, the lineage answers "which operation dropped (or
    over-dropped) the final reference, on which thread, at which step".

    Timestamps are {!Lfrc_sched.Sched.steps_so_far} — the deterministic
    interleaving clock — so a recorded history replays identically under
    the same seed. Outside a simulation steps are 0 and events still
    order by arrival.

    The disabled recorder follows the disabled {!Metrics} singleton
    pattern: every recording entry point is a single branch. *)

type kind =
  | Alloc of { gen : int }
      (** object (re)allocated; [gen] is the heap incarnation number, so
          a recycled address's histories are distinguishable *)
  | Rc of { old_rc : int; delta : int }
      (** reference count moved from [old_rc] to [old_rc + delta] *)
  | Retire  (** handed to a deferred-reclamation scheme (EBR / HP) *)
  | Defer  (** destruction deferred by the LFRC Deferred policy *)
  | Defer_inc
      (** a +1 count adjustment parked in a deferred-rc buffer; the heap
          count is unchanged until a flush applies the net delta *)
  | Defer_dec  (** a parked -1 adjustment (see {!Defer_inc}) *)
  | Flush of { net : int }
      (** a deferred-rc flush applied this object's parked net delta to
          the heap count; paired with an {!Rc} event carrying the same
          delta so count replay stays legal *)
  | Free of { gen : int }  (** returned to the allocator *)
  | Adopt of { owner : int }
      (** crash recovery took over a reference to this object that was
          orphaned by crashed thread [owner]; the event's [tid] is the
          adopter. Count movement, if any, is recorded separately by the
          adopter's destroy/flush. *)
  | Wborrow
      (** wait-free mode: a load took the new reference's weight from the
          heap slot it read (borrow-on-handoff) — no count movement *)
  | Wshare
      (** wait-free mode: a copy covered the new reference from the
          thread's pooled weight — no count movement *)

type event = { step : int; tid : int; kind : kind; op : string }
(** [op] is the innermost instrumented operation running on [tid] when
    the event was recorded ({!op_begin} context), or ["?"] outside one. *)

type t

val create : ?ring:int -> unit -> t
(** A fresh enabled recorder keeping the most recent [ring] events per
    object (default 64); [ring <= 0] returns {!disabled}. *)

val disabled : t
(** The shared no-op recorder: every record call is a single branch. *)

val enabled : t -> bool

(** {1 Originating-op context}

    {!Lfrc_core.Lfrc}'s span instrumentation pushes the operation name
    for the current simulated thread on entry and pops on exit; events
    recorded in between attribute to the innermost operation. *)

val op_begin : t -> string -> unit
val op_end : t -> unit

(** {1 Recording} *)

val record : t -> ?op:string -> addr:int -> kind -> unit
(** Record one event for [addr], stamped with the current scheduler step
    and thread id. [?op] overrides the op-context attribution. *)

val record_rc : t -> ?op:string -> addr:int -> old_rc:int -> delta:int -> unit -> unit
(** [record t ~addr (Rc { old_rc; delta })]. *)

(** {1 Accounting} *)

val recorded : t -> int
(** Events ever recorded across all objects. *)

val dropped : t -> int
(** Events overwritten by ring wrap-around, across all objects. *)

val tracked : t -> int list
(** Addresses with any recorded history, ascending. *)

(** {1 Per-object queries} *)

val events : t -> addr:int -> event list
(** Retained events for [addr], oldest first (at most [ring]). *)

type state = {
  st_rc : int;  (** count after the latest recorded transition *)
  st_events : int;  (** events ever recorded (retained + overwritten) *)
  st_allocs : int;  (** incarnations seen *)
  st_frees : int;
}

val state : t -> addr:int -> state option

val last_drop : t -> addr:int -> event option
(** The most recent retained decrement ([Rc] with negative [delta]) —
    for a leaked object, the operation that dropped the last reference
    it ever lost. *)

val last_event : t -> addr:int -> event option

val top : t -> n:int -> (int * int) list
(** The [n] busiest addresses as [(addr, events-ever)] pairs, busiest
    first (ties broken by address). *)

(** {1 Rendering} *)

val pp_event : Format.formatter -> event -> unit

val timeline : t -> addr:int -> string
(** Human-readable per-address history: a summary header, a truncation
    marker when the ring wrapped, then one line per retained event
    ([step  tid  kind  op]). *)

val to_chrome_json : ?addr:int -> t -> string
(** Chrome trace-event export via {!Tracer.chrome_json_of_events}, one
    track per object ([tid] := address): alloc/free pair into a lifetime
    span, count transitions and retire/defer render as instants. Omitting
    [?addr] exports every tracked object. *)

val leak_report : t -> addrs:int list -> string
(** Join an audit's leaked-address list against the lineage: for each
    address, its recorded count and the operation that dropped its last
    reference ({!last_drop}), or its last touch when no drop was
    retained. The addresses come from
    {!Lfrc_faults.Audit.report.leaked_ids}; taking plain ints keeps this
    library below the fault layer in the dependency order. *)

val double_free_report : t -> addrs:int list -> string
(** Same join for over-released addresses: names the decrement that took
    the count below zero (or the excess free) and the operation that
    issued it. *)

val summary : t -> string
(** One-line global accounting: objects tracked, events recorded and
    dropped, ring capacity. *)
