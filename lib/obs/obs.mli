(** The observability bundle: metrics, tracer, lineage, profiler and
    blame under one master switch.

    [create ~master:false] returns {!disabled} regardless of the
    per-layer flags, so a single configuration bit ([--no-metrics] in the
    harness) provably turns every layer into its one-branch disabled
    form. Layers the flags leave off are individually disabled within an
    enabled bundle. *)

type t = {
  metrics : Metrics.t;
  tracer : Tracer.t;
  lineage : Lineage.t;
  profile : Profile.t;
  blame : Blame.t;
}

val disabled : t
(** Every layer in its disabled form. *)

val enabled : t -> bool
(** True iff at least one layer is live. *)

val create :
  ?master:bool ->
  ?metrics:bool ->
  ?trace_capacity:int ->
  ?lineage_ring:int ->
  ?profile:bool ->
  ?blame:bool ->
  unit ->
  t
(** Defaults: [master = true], [metrics = true], everything else off.
    When [blame] is set the blame registry is created over this bundle's
    tracer, so attributed failures emit flow events whenever the tracer
    is live. *)
