(** Crash recovery: adopt the orphaned state of permanently failed
    threads so a chaos run ends leak-{e free}, not merely leak-bounded.

    The paper's footnote 3 concedes that a thread failing permanently may
    leak whatever it referenced. The audit ({!Audit}) holds every such
    leak {e accountable} — reachable from a recorded lost reference.
    This pass goes further and {e adopts} each lost reference, running
    post-run (outside the simulation, single-threaded) over the
    environment's crash-safe registries:

    + a crashed flusher's staged count deltas are re-parked
      ({!Lfrc_core.Env.rc_recover_flush}) and the flush flag cleared;
    + in-flight MCAS descriptors in the dead threads' pool slots are
      helped to a decision ({!Lfrc_atomics.Mcas.adopt_slot}) — a DCAS is
      never left half-applied;
    + reclamation hooks evict the dead threads' epoch pins and hazard
      slots ({!Lfrc_core.Env.run_recovery_hooks}), so limbo lists drain
      again;
    + committed-but-unfinished drops (destroy registry), uncompensated
      speculative publication increments, and registered local-frame
      guards are each released through the normal destroy path;
    + a final flush settles every parked delta and cascades the
      resulting destroys.

    Every adoption is a {e decrement}: objects free only when their
    count reaches zero, so adoption can never double-free, and the order
    among crashed owners is immaterial. Each adopted reference records an
    {!Lfrc_obs.Lineage.kind.Adopt} event naming the crashed owner.

    Metrics: [lfrc.adopt_rc] (count deltas settled + drops completed +
    publications compensated), [lfrc.adopt_guard] (local-frame references
    released), [lfrc.adopt_descriptor] (MCAS descriptors helped);
    [lfrc.epoch_evict] / [lfrc.hazard_evict] are recorded by the
    reclamation schemes' own adopt passes.

    Known limit: under [Software_mcas] the LFRC count protocol itself
    runs through descriptor-mediated DCAS whose transient states recovery
    does not decode, so only descriptor completion is performed there —
    strict zero-leak recovery is asserted for the [Atomic_step] DCAS
    model (see DESIGN.md §13). *)

type report = {
  crashed : int list;  (** the dead threads recovery ran for *)
  rc_settled : int;
      (** parked count-delta entries settled: the dead threads' own
          buffers plus a crashed flusher's re-parked staging table *)
  destroys_completed : int;
      (** destroy-registry entries adopted: committed drops performed,
          mid-teardown husks finished *)
  publications_compensated : int;
      (** speculative publication increments destroyed *)
  guards_released : int;  (** local-frame references released *)
  descriptors_helped : int;  (** MCAS descriptors helped to a decision *)
  epochs_evicted : int;
      (** epoch pins / hazard slots evicted by reclamation hooks *)
  freed : int;  (** net objects freed by the whole pass *)
}

val run : Lfrc_core.Env.t -> crashed:int list -> report
(** Run the full adoption pass for the given crashed thread ids. Must be
    called after the simulated run has ended (it walks shared registries
    without yielding) and at most once per run — the registries it
    drains are surrendered destructively. Safe no-op when [crashed] is
    empty and the flush flag is clear. *)

val total : report -> int
(** Sum of all adoption actions — zero means recovery had nothing to do. *)

val pp : Format.formatter -> report -> unit
