module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env

type status =
  | Completed of { steps : int; crashed : int list }
  | Livelock of { max_steps : int }
  | Thread_raised of { tid : int; exn : exn }

type report = {
  spec : Fault_plan.spec;
  repro : string;
  status : status;
  audit : Audit.report option;
  audit_advisory : bool;
  recovery : Recovery.report option;
  injected : int;
  counters : Lfrc_atomics.Dcas.counters;
  metrics : Lfrc_obs.Metrics.snapshot;
  env : Env.t;
}

let run ?(max_steps = 2_000_000) ?(policy = Env.Iterative) ?(rc_epoch = 0)
    ?rc_mode ?(dcas_impl = Lfrc_atomics.Dcas.Atomic_step) ?(recover = false)
    ?metrics ?(lineage = Lfrc_obs.Lineage.disabled)
    ?(profile = Lfrc_obs.Profile.disabled)
    ?(blame = Lfrc_obs.Blame.disabled) ~strategy ~spec body =
  let heap = Heap.create ~name:"chaos" () in
  let metrics =
    match metrics with Some m -> m | None -> Lfrc_obs.Metrics.create ()
  in
  let rc_mode =
    match rc_mode with
    | Some m -> m
    | None -> Env.rc_mode_of_epoch rc_epoch
  in
  let env =
    Env.create ~dcas_impl ~policy ~rc_mode ~metrics ~lineage ~profile ~blame
      heap
  in
  let plan = Fault_plan.make spec in
  Fault_plan.install plan env;
  let repro =
    Printf.sprintf "strategy=%s max_steps=%d %s"
      (Strategy.describe strategy)
      max_steps
      (Fault_plan.spec_to_string spec)
  in
  let status =
    Fun.protect
      ~finally:(fun () -> Fault_plan.uninstall env)
      (fun () ->
        match
          Sched.run ~max_steps
            ~inject_crash:(Fault_plan.crash_hook plan)
            strategy
            (fun () -> body env)
        with
        | o -> Completed { steps = o.Sched.steps; crashed = o.Sched.crashed }
        | exception Sched.Step_limit_exceeded _ -> Livelock { max_steps }
        | exception Sched.Thread_failure { tid; exn; _ } ->
            Thread_raised { tid; exn })
  in
  let audit, audit_advisory, recovery =
    match status with
    | Completed { crashed; _ } ->
        (* Crashed threads' pending blame state (open op frames, open
           retry chains) is adopted into the aggregates, mirroring the
           recovery pass's orphan adoption — blamed work is never leaked
           with its thread. *)
        if crashed <> [] then
          ignore (Lfrc_obs.Blame.adopt (Env.blame env) ~crashed);
        let recovery =
          if recover && crashed <> [] then Some (Recovery.run env ~crashed)
          else None
        in
        (* Deferred-rc parks count deltas that only land at a flush; an
           audit over unflushed buffers would see phantom leaks (parked
           -1s) and phantom under-counts (parked +1s). Crashed threads'
           buffers live in the environment, so this settles their deltas
           too. The recovery pass ends with this same flush. *)
        if recovery = None && Env.rc_deferred env then
          ignore (Lfrc_core.Lfrc.flush env);
        (Some (Audit.run ~strict:recover ?recovered:recovery env), false,
         recovery)
    | Livelock _ | Thread_raised _ -> (
        (* The heap is frozen mid-operation, where the audit's invariants
           do not all hold — but a best-effort advisory report (what
           leaked, what dangles) is still worth more than silence when
           triaging the failure. Never let it mask the real outcome. *)
        match
          if Env.rc_deferred env then ignore (Lfrc_core.Lfrc.flush env);
          Audit.run env
        with
        | a -> (Some a, true, None)
        | exception _ -> (None, true, None))
  in
  {
    spec;
    repro;
    status;
    audit;
    audit_advisory;
    recovery;
    injected = Fault_plan.injected plan;
    counters = Lfrc_atomics.Dcas.counters (Env.dcas env);
    metrics = Lfrc_obs.Metrics.snapshot metrics;
    env;
  }

let ok r =
  match (r.status, r.audit) with
  | Completed _, Some a -> Audit.ok a
  | _ -> false

let pp_status ppf = function
  | Completed { steps; crashed } ->
      Format.fprintf ppf "completed in %d steps%s" steps
        (match crashed with
        | [] -> ""
        | l ->
            Printf.sprintf " (crashed threads: %s)"
              (String.concat "," (List.map string_of_int l)))
  | Livelock { max_steps } ->
      Format.fprintf ppf "LIVELOCK: step budget %d exhausted" max_steps
  | Thread_raised { tid; exn } ->
      Format.fprintf ppf "THREAD RAISED: tid %d: %s" tid
        (Printexc.to_string exn)

let pp ppf r =
  Format.fprintf ppf "%a@\ninjected=%d cas_fail_streak<=%d@\nreplay: %s"
    pp_status r.status r.injected
    r.counters.Lfrc_atomics.Dcas.max_cas_failure_streak r.repro;
  if not (Lfrc_obs.Metrics.is_empty r.metrics) then
    Format.fprintf ppf "@\nmetrics: %a" Lfrc_obs.Metrics.pp r.metrics;
  (match r.recovery with
  | None -> ()
  | Some rec_ -> Format.fprintf ppf "@\n%a" Recovery.pp rec_);
  match r.audit with
  | None -> ()
  | Some a ->
      Format.fprintf ppf "@\naudit%s: %a"
        (if r.audit_advisory then " (advisory)" else "")
        Audit.pp a
