module Rng = Lfrc_util.Rng

type spec = {
  seed : int;
  cas_fail_at : int list;
  dcas_fail_at : int list;
  cas_fail_prob : float;
  dcas_fail_prob : float;
  alloc_fail_at : int list;
  alloc_fail_prob : float;
  max_spurious : int;
  (* (victim tid, resume index) pairs; each victim crashes permanently at
     its n-th scheduler resume. Several entries make a multi-crash plan;
     several entries for the same tid fire only the first reached. *)
  crashes : (int * int) list;
}

let default =
  {
    seed = 0;
    cas_fail_at = [];
    dcas_fail_at = [];
    cas_fail_prob = 0.0;
    dcas_fail_prob = 0.0;
    alloc_fail_at = [];
    alloc_fail_prob = 0.0;
    max_spurious = 1000;
    crashes = [];
  }

(* The textual form appears in failure reports and must survive a round
   trip, so it is a rigid key=value list — no optional fields. *)

let ints_to_string l = String.concat "," (List.map string_of_int l)

let ints_of_string s =
  if s = "" then Some []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | x :: rest -> (
          match int_of_string_opt x with
          | Some i -> go (i :: acc) rest
          | None -> None)
    in
    go [] parts

let spec_to_string s =
  Printf.sprintf
    "seed=%d cas@=%s dcas@=%s casp=%h dcasp=%h alloc@=%s allocp=%h cap=%d \
     crash=%s"
    s.seed (ints_to_string s.cas_fail_at)
    (ints_to_string s.dcas_fail_at)
    s.cas_fail_prob s.dcas_fail_prob
    (ints_to_string s.alloc_fail_at)
    s.alloc_fail_prob s.max_spurious
    (match s.crashes with
    | [] -> "-"
    | cs ->
        String.concat ","
          (List.map (fun (tid, n) -> Printf.sprintf "%d:%d" tid n) cs))

let spec_of_string str =
  let kv part =
    match String.index_opt part '=' with
    | None -> None
    | Some i ->
        Some
          ( String.sub part 0 i,
            String.sub part (i + 1) (String.length part - i - 1) )
  in
  let parts = String.split_on_char ' ' (String.trim str) in
  let tbl = Hashtbl.create 9 in
  let ok =
    List.for_all
      (fun p ->
        p = ""
        ||
        match kv p with
        | Some (k, v) ->
            Hashtbl.replace tbl k v;
            true
        | None -> false)
      parts
  in
  let ( let* ) = Option.bind in
  if not ok then None
  else
    let* seed = Option.bind (Hashtbl.find_opt tbl "seed") int_of_string_opt in
    let* cas_fail_at = Option.bind (Hashtbl.find_opt tbl "cas@") ints_of_string in
    let* dcas_fail_at =
      Option.bind (Hashtbl.find_opt tbl "dcas@") ints_of_string
    in
    let* cas_fail_prob =
      Option.bind (Hashtbl.find_opt tbl "casp") float_of_string_opt
    in
    let* dcas_fail_prob =
      Option.bind (Hashtbl.find_opt tbl "dcasp") float_of_string_opt
    in
    let* alloc_fail_at =
      Option.bind (Hashtbl.find_opt tbl "alloc@") ints_of_string
    in
    let* alloc_fail_prob =
      Option.bind (Hashtbl.find_opt tbl "allocp") float_of_string_opt
    in
    let* max_spurious =
      Option.bind (Hashtbl.find_opt tbl "cap") int_of_string_opt
    in
    let* crashes =
      match Hashtbl.find_opt tbl "crash" with
      | None -> None
      | Some "-" -> Some []
      | Some s ->
          let pair p =
            match String.split_on_char ':' p with
            | [ tid; n ] -> (
                match (int_of_string_opt tid, int_of_string_opt n) with
                | Some tid, Some n -> Some (tid, n)
                | _ -> None)
            | _ -> None
          in
          let rec go acc = function
            | [] -> Some (List.rev acc)
            | p :: rest -> (
                match pair p with Some c -> go (c :: acc) rest | None -> None)
          in
          go [] (String.split_on_char ',' s)
    in
    Some
      {
        seed;
        cas_fail_at;
        dcas_fail_at;
        cas_fail_prob;
        dcas_fail_prob;
        alloc_fail_at;
        alloc_fail_prob;
        max_spurious;
        crashes;
      }

type t = {
  plan_spec : spec;
  rng : Rng.t;
  mutable cas_seen : int;
  mutable dcas_seen : int;
  mutable alloc_seen : int;
  mutable spurious_fired : int; (* probabilistic injections, capped *)
  mutable fired : int; (* all injections *)
  mutable pending_crashes : (int * int) list; (* not yet fired *)
  resumes : (int, int ref) Hashtbl.t;
}

let make spec =
  {
    plan_spec = spec;
    rng = Rng.create spec.seed;
    cas_seen = 0;
    dcas_seen = 0;
    alloc_seen = 0;
    spurious_fired = 0;
    fired = 0;
    pending_crashes = spec.crashes;
    resumes = Hashtbl.create 8;
  }

let spec t = t.plan_spec
let injected t = t.fired

(* An injection decision: an indexed fault always fires; a probabilistic
   one fires from the plan's own stream, subject to the cap that keeps
   the run lock-free in the limit. Plan state is only touched from inside
   a (single-domain) simulated run, so plain mutation is safe. *)
let decide t ~index ~at_list ~prob =
  let indexed = List.mem index at_list in
  let probabilistic =
    (not indexed)
    && prob > 0.0
    && t.spurious_fired < t.plan_spec.max_spurious
    && Rng.float t.rng < prob
  in
  if probabilistic then t.spurious_fired <- t.spurious_fired + 1;
  let fire = indexed || probabilistic in
  if fire then t.fired <- t.fired + 1;
  fire

let inject_cas t () =
  let i = t.cas_seen in
  t.cas_seen <- i + 1;
  decide t ~index:i ~at_list:t.plan_spec.cas_fail_at
    ~prob:t.plan_spec.cas_fail_prob

let inject_dcas t () =
  let i = t.dcas_seen in
  t.dcas_seen <- i + 1;
  decide t ~index:i ~at_list:t.plan_spec.dcas_fail_at
    ~prob:t.plan_spec.dcas_fail_prob

let inject_alloc t () =
  let i = t.alloc_seen in
  t.alloc_seen <- i + 1;
  decide t ~index:i ~at_list:t.plan_spec.alloc_fail_at
    ~prob:t.plan_spec.alloc_fail_prob

let install t env =
  Lfrc_atomics.Dcas.set_injector
    (Lfrc_core.Env.dcas env)
    (Some
       {
         Lfrc_atomics.Dcas.inject_cas = inject_cas t;
         inject_dcas = inject_dcas t;
       });
  Lfrc_simmem.Heap.set_alloc_hook
    (Lfrc_core.Env.heap env)
    (Some (inject_alloc t))

let uninstall env =
  Lfrc_atomics.Dcas.set_injector (Lfrc_core.Env.dcas env) None;
  Lfrc_simmem.Heap.set_alloc_hook (Lfrc_core.Env.heap env) None

let crash_hook t ~tid ~step:_ =
  if t.pending_crashes = [] then false
  else begin
    (* Count this victim's resumes whether or not its entry fires this
       time, so "crash t2 at its 31st resume" stays replayable no matter
       how many other victims the plan names. *)
    let watched = List.exists (fun (v, _) -> v = tid) t.pending_crashes in
    if not watched then false
    else begin
      let count =
        match Hashtbl.find_opt t.resumes tid with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.add t.resumes tid r;
            r
      in
      let i = !count in
      incr count;
      let fires = List.exists (fun (v, n) -> v = tid && n = i) t.pending_crashes in
      if fires then begin
        (* A dead thread never resumes again: drop every entry naming it. *)
        t.pending_crashes <-
          List.filter (fun (v, _) -> v <> tid) t.pending_crashes;
        t.fired <- t.fired + 1;
        true
      end
      else false
    end
  end
