(** One fault-injected simulated run, end to end: build a fresh heap and
    environment, install a {!Fault_plan}, execute the body under the
    deterministic scheduler (with the plan's crash hook), classify the
    outcome, and audit the heap post-mortem.

    Every report carries a [repro] token (scheduler strategy + step budget
    + fault-plan spec) from which the run can be replayed exactly:
    {!Lfrc_sched.Strategy.of_string} and {!Fault_plan.spec_of_string}
    parse the two halves. A run that exhausts its step budget is reported
    as [Livelock] rather than raised — the watchdog for retry loops that
    stop compensating under injected failures. *)

type status =
  | Completed of { steps : int; crashed : int list }
      (** all threads finished (crash-injected ones by dying) *)
  | Livelock of { max_steps : int }
      (** step budget exhausted ({!Lfrc_sched.Sched.Step_limit_exceeded}) *)
  | Thread_raised of { tid : int; exn : exn }
      (** a simulated thread raised — graceful degradation failed *)

type report = {
  spec : Fault_plan.spec;
  repro : string;
  status : status;
  audit : Audit.report option;
      (** authoritative when the run completed. The livelock and raise
          outcomes freeze the heap mid-operation, where the audit's
          invariants do not all hold — they get a best-effort {e
          advisory} audit instead ([audit_advisory = true]), or [None]
          if even that raised. *)
  audit_advisory : bool;
      (** the audit above is advisory (non-completed outcome): useful for
          triage, meaningless for pass/fail — {!ok} ignores it *)
  recovery : Recovery.report option;
      (** the adoption pass that ran before the audit, when [recover]
          was set and the completed run had crashed threads *)
  injected : int;  (** faults fired during the run *)
  counters : Lfrc_atomics.Dcas.counters;
  metrics : Lfrc_obs.Metrics.snapshot;
      (** observability snapshot of the run's environment: DCAS traffic,
          LFRC operation/retry counts, heap alloc/free balance *)
  env : Lfrc_core.Env.t;  (** post-run environment, for extra checks *)
}

val run :
  ?max_steps:int ->
  ?policy:Lfrc_core.Env.policy ->
  ?rc_epoch:int ->
  ?rc_mode:Lfrc_core.Env.rc_mode ->
  ?dcas_impl:Lfrc_atomics.Dcas.impl ->
  ?recover:bool ->
  ?metrics:Lfrc_obs.Metrics.t ->
  ?lineage:Lfrc_obs.Lineage.t ->
  ?profile:Lfrc_obs.Profile.t ->
  ?blame:Lfrc_obs.Blame.t ->
  strategy:Lfrc_sched.Strategy.t ->
  spec:Fault_plan.spec ->
  (Lfrc_core.Env.t -> unit) ->
  report
(** [run ~strategy ~spec body] executes [body env] as the simulation's
    main thread; [body] typically builds a structure and spawns workers.
    [max_steps] defaults to 2 million; [policy] to [Iterative]; [rc_epoch]
    (deferred-rc coalescing, see {!Lfrc_core.Env.create}) to 0 — when it
    is positive, a forced {!Lfrc_core.Lfrc.flush} settles all parked
    count deltas before the post-mortem audit runs. [rc_mode], when
    given, selects the environment's count-delivery mode directly and
    wins over [rc_epoch] (the way to run a chaos campaign in
    {!Lfrc_core.Env.Wait_free} mode). [dcas_impl] defaults
    to [Atomic_step]. [recover] (default false) runs {!Recovery.run} over
    the crashed threads of a completed run and then audits in {e strict}
    mode — the audit passes only if recovery left {e zero} leaked
    objects (see {!Audit}; under [Software_mcas] strict recovery is not
    asserted — {!Recovery} documents the limit). Hooks are
    uninstalled before returning, whatever the outcome. [metrics]
    defaults to a fresh enabled registry private to this run; pass a
    shared one to aggregate across a campaign of runs (the report's
    snapshot then covers everything recorded so far). [lineage] and
    [profile] and [blame] (default disabled) are threaded into the run's
    environment; joining [lineage] against the audit's [leaked_ids] names
    the operation that dropped each leaked object's last reference. When
    a completed run crashed threads, their pending blame state is adopted
    ({!Lfrc_obs.Blame.adopt}) before recovery runs, so no blamed work is
    leaked with its thread. *)

val ok : report -> bool
(** Completed and the (authoritative, non-advisory) audit found
    nothing. Livelock and raise outcomes are never ok, whatever their
    advisory audit says. *)

val pp_status : Format.formatter -> status -> unit
val pp : Format.formatter -> report -> unit
