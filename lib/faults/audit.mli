(** Post-mortem heap auditor for fault-injected runs.

    After a chaos run — in particular after a thread crash — the heap is
    walked against the paper's {e weak} reference-count invariant and its
    footnote 3 concession, in the form of three checks:

    + {b No dangling pointers}: no live object's pointer slot and no
      global root refers to a freed object. Crashes may leak; they must
      never free prematurely.
    + {b Count lower bound}: every live object's count is at least the
      number of heap-visible pointers to it (live slots of objects that
      are not themselves mid-destroy, plus global roots). Counts may be
      conservatively high after a crash (the dead thread's increments are
      never compensated) but never low.
    + {b Bounded, accounted leak}: an object unreachable from the global
      roots must be reachable from a published lost reference — a crashed
      thread's registered locals, an in-flight destroy, or the deferred
      queue ({!Lfrc_core.Env.anchors}). Garbage may exist ("it is
      possible for garbage to exist and never be freed in the case where
      a thread fails permanently"), but every piece must be attributable
      to a lost reference; anything else is a counting bug.

    {b Strict mode} tightens check 3 for audits that run {e after} a
    {!Recovery} pass: adoption has reclaimed every lost reference, so an
    anchored leak is no longer a concession — it is something recovery
    failed to free, reported as {!finding.Residual_leak}. A strict audit
    with no findings therefore certifies {e zero} leaked objects. *)

type finding =
  | Dangling of { holder : string; target : int }
      (** [holder] describes the referring slot or root *)
  | Rc_below_refs of { id : int; rc : int; refs : int }
  | Unaccounted_leak of { id : int; rc : int }
  | Residual_leak of { id : int; rc : int }
      (** strict mode only: a leak that survived the recovery pass *)

type report = {
  live : int;  (** live objects at audit time *)
  reachable : int;  (** of those, reachable from global roots *)
  leaked : int;  (** live - reachable *)
  leaked_ids : int list;
      (** the leaked objects themselves, ascending id order — the join key
          the lineage forensics use to name the operation that dropped
          each one's last reference ({!Lfrc_obs.Lineage.leak_report}) *)
  findings : finding list;
  recovered : Recovery.report option;
      (** the recovery pass this audit certifies, when one ran *)
}

val run : ?strict:bool -> ?recovered:Recovery.report -> Lfrc_core.Env.t -> report
(** [strict] (default false) turns anchored leaks into
    {!finding.Residual_leak} findings — use after {!Recovery.run}.
    [recovered] is carried into the report for accounting and display. *)

val ok : report -> bool
(** No findings. Leaks are not findings when anchored — check [leaked]
    separately when a run with no crash must end clean. *)

val pp_finding : Format.formatter -> finding -> unit
val pp : Format.formatter -> report -> unit
