module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Env = Lfrc_core.Env
module Lfrc = Lfrc_core.Lfrc
module Dcas = Lfrc_atomics.Dcas
module Mcas = Lfrc_atomics.Mcas
module Metrics = Lfrc_obs.Metrics
module Lineage = Lfrc_obs.Lineage

type report = {
  crashed : int list;
  rc_settled : int;
  destroys_completed : int;
  publications_compensated : int;
  guards_released : int;
  descriptors_helped : int;
  epochs_evicted : int;
  freed : int;
}

let null = Heap.null

let run env ~crashed =
  let heap = Env.heap env in
  let metrics = Env.metrics env in
  let lineage = Env.lineage env in
  let live_before = Heap.live_count heap in

  (* 1. Flush machinery first: if the flag-holding flusher died, its
     staged deltas go back to a parked buffer and the flag clears, so
     the adoption destroys below (and the final settling flush) can run
     the flush themselves. The dead threads' own parked buffers already
     live in the environment; they settle at the final flush — count
     them now for the report. *)
  let restaged = Env.rc_recover_flush env ~crashed in
  let parked = Env.rc_parked_of env ~tids:crashed in
  (* Wait-free mode: merge the dead threads' weight pouches into the
     adopter's before any adoption destroy runs, so each orphaned
     reference released below finds its pooled weight and the ledger
     balances exactly as in a live release. *)
  let pouches_adopted = Env.wf_adopt_pools env ~tids:crashed in
  if pouches_adopted > 0 then
    Metrics.add (Env.metrics env) "lfrc.adopt_weight" pouches_adopted;
  let rc_settled = restaged + parked + pouches_adopted in

  (* 2. Help every MCAS descriptor the dead threads left in flight to a
     decision, so no DCAS is ever half-applied and the audit sees plain
     values in every cell. Idempotent: live helpers may already have
     finished these. *)
  let descriptors_helped =
    if Dcas.impl (Env.dcas env) = Dcas.Software_mcas then
      List.fold_left (fun acc tid -> acc + Mcas.adopt_slot tid) 0 crashed
    else 0
  in
  if descriptors_helped > 0 then
    Metrics.add metrics "lfrc.adopt_descriptor" descriptors_helped;

  (* 3. Reclamation schemes registered through the environment's hook
     table (epoch pins, hazard slots): evict the dead threads' slots so
     deferred frees resume. Crashes land at yield points, never
     mid-dereference, so clearing their protections is safe. *)
  let epochs_evicted = Env.run_recovery_hooks env ~crashed in

  (* 4. Adopt the orphaned references, per crashed owner so each Adopt
     lineage event names who lost it. Every adoption action is a
     decrement that goes through the normal destroy path, which frees
     only at count zero — so the order among owners cannot matter. *)
  let destroys_completed = ref 0 in
  let publications_compensated = ref 0 in
  let guards_released = ref 0 in
  let adopt_one ~owner p =
    Lineage.record lineage ~op:"recover" ~addr:p (Lineage.Adopt { owner });
    Lfrc.destroy env p
  in
  List.iter
    (fun owner ->
      (* Committed-but-unfinished drops from the destroy registry. Count
         zero on a live object means the owner died mid-teardown;
         anything else means the drop itself never landed. *)
      List.iter
        (fun p ->
          if Heap.is_live heap p then begin
            incr destroys_completed;
            Lineage.record lineage ~op:"recover" ~addr:p
              (Lineage.Adopt { owner });
            if Cell.get (Heap.rc_cell heap p) = 0 then
              Lfrc.finish_teardown env p
            else Lfrc.destroy env p
          end)
        (Env.adopt_destroying env ~tids:[ owner ]);
      (* Speculative count raises made ahead of a publishing CAS that
         never resolved: compensate each with a destroy. In wait-free
         mode the registry entry carries the whole published weight
         batch; pouching it first makes the adoption destroy return
         exactly what the fetch-add minted. *)
      List.iter
        (fun (p, w) ->
          if p <> null && Heap.is_live heap p then begin
            incr publications_compensated;
            if Env.wf_on env then Env.wf_pool_add env ~addr:p ~w ~n:1;
            adopt_one ~owner p
          end)
        (Env.adopt_publications env ~tids:[ owner ]);
      (* Registered local frames (operation-context guards): release
         every reference the dead thread still held. *)
      List.iter
        (fun (fr_owner, refs) ->
          List.iter
            (fun p ->
              if p <> null && Heap.is_live heap p then begin
                incr guards_released;
                adopt_one ~owner:fr_owner p
              end)
            refs)
        (Env.adopt_locals env ~tids:[ owner ]))
    crashed;

  let rc_adopted =
    rc_settled + !destroys_completed + !publications_compensated
  in
  if rc_adopted > 0 then Metrics.add metrics "lfrc.adopt_rc" rc_adopted;
  if !guards_released > 0 then
    Metrics.add metrics "lfrc.adopt_guard" !guards_released;

  (* 5. Settle: one final flush lands every parked delta — the dead
     threads' own, the restaged ones, and whatever the adoption destroys
     parked — and cascades the resulting zero-count destroys. *)
  if Env.rc_deferred env then ignore (Lfrc.flush env);

  {
    crashed;
    rc_settled;
    destroys_completed = !destroys_completed;
    publications_compensated = !publications_compensated;
    guards_released = !guards_released;
    descriptors_helped;
    epochs_evicted;
    freed = live_before - Heap.live_count heap;
  }

let total r =
  r.rc_settled + r.destroys_completed + r.publications_compensated
  + r.guards_released + r.descriptors_helped + r.epochs_evicted

let pp ppf r =
  Format.fprintf ppf
    "recovered from %d crash(es): rc_settled=%d destroys=%d publications=%d \
     guards=%d descriptors=%d epochs=%d freed=%d"
    (List.length r.crashed) r.rc_settled r.destroys_completed
    r.publications_compensated r.guards_released r.descriptors_helped
    r.epochs_evicted r.freed
