(** A seeded, deterministic, replayable plan of injected faults.

    A plan drives the three low-layer injection hooks:

    - {b spurious CAS/DCAS failures} via {!Lfrc_atomics.Dcas.set_injector}
      — the LL/SC-style false negative every LFRC retry loop must
      compensate (dropping its speculative count increments);
    - {b simulated OOM} via {!Lfrc_simmem.Heap.set_alloc_hook} — the
      allocator fails before touching the heap, and every operation must
      degrade gracefully;
    - {b thread crash} via {!Lfrc_sched.Sched.run}'s [inject_crash] — a
      thread parked at a yield point never runs again, the paper's
      footnote 3 permanent failure.

    Faults fire either at exact operation indices (exhaustive sweeps) or
    probabilistically from the plan's own seeded stream (chaos soaks).
    Replaying the same spec against the same scheduler strategy reproduces
    the run exactly; {!spec_to_string}/{!spec_of_string} round-trip a spec
    through the failure report for that purpose. *)

type spec = {
  seed : int;  (** seeds the plan's private random stream *)
  cas_fail_at : int list;
      (** fail the i-th CAS attempt (0-based, counted per plan) *)
  dcas_fail_at : int list;  (** fail the i-th DCAS attempt *)
  cas_fail_prob : float;  (** per-attempt spurious-failure probability *)
  dcas_fail_prob : float;
  alloc_fail_at : int list;  (** fail the i-th allocation *)
  alloc_fail_prob : float;
  max_spurious : int;
      (** cap on {e probabilistic} injections of all kinds: keeps a chaos
          run lock-free in the limit so it terminates (indexed faults are
          not capped — a sweep means every listed index) *)
  crashes : (int * int) list;
      (** [(tid, n)] pairs: kill thread [tid] at its [n]-th resume
          (0-based). Multiple pairs make a multi-crash plan; resumes are
          counted per victim independently, so each pair is replayable on
          its own. Duplicate tids fire only the first index reached. *)
}

val default : spec
(** No faults: seed 0, empty index lists, zero probabilities,
    [max_spurious = 1000], no crashes. Build specs with
    [{ default with ... }]. *)

val spec_to_string : spec -> string

val spec_of_string : string -> spec option
(** Parses exactly what {!spec_to_string} prints. *)

type t
(** A running plan: a spec plus its mutable fire-state (operation
    counters, the random stream, the crashes still pending). Single
    simulated-run use only — make a fresh plan per run. *)

val make : spec -> t
val spec : t -> spec

val install : t -> Lfrc_core.Env.t -> unit
(** Point the environment's DCAS injector and the heap's alloc hook at
    this plan. *)

val uninstall : Lfrc_core.Env.t -> unit
(** Clear both hooks. *)

val crash_hook : t -> tid:int -> step:int -> bool
(** Pass as [Sched.run]'s [inject_crash]. Counts resumes per victim and
    fires each of the spec's crashes exactly once. *)

val injected : t -> int
(** How many faults (of all kinds, indexed and probabilistic) have fired
    so far. *)
