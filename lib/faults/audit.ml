module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Env = Lfrc_core.Env

type finding =
  | Dangling of { holder : string; target : int }
  | Rc_below_refs of { id : int; rc : int; refs : int }
  | Unaccounted_leak of { id : int; rc : int }
  | Residual_leak of { id : int; rc : int }

type report = {
  live : int;
  reachable : int;
  leaked : int;
  leaked_ids : int list;
  findings : finding list;
  recovered : Recovery.report option;
}

let null = Heap.null

let rc_of heap p = Cell.get (Heap.rc_cell heap p)

(* Reachability over live objects from a seed list, using a private mark
   table (the heap's own marks belong to the collectors). *)
let reach heap seeds =
  let seen = Hashtbl.create 64 in
  let rec go p =
    if p <> null && Heap.is_live heap p && not (Hashtbl.mem seen p) then begin
      Hashtbl.add seen p ();
      List.iter go (Heap.ptr_slot_values heap p)
    end
  in
  List.iter go seeds;
  seen

let run ?(strict = false) ?recovered env =
  let heap = Env.heap env in
  let findings = ref [] in
  let add f = findings := f :: !findings in

  (* 1. Dangling pointers: live slots and global roots only. A crashed
     thread's registered locals are exempt — its stale OCaml variables
     may legitimately name objects that were freed after the crash. *)
  Heap.iter_live heap (fun p ->
      List.iteri
        (fun i q ->
          if q <> null && not (Heap.is_live heap q) then
            add
              (Dangling
                 { holder = Printf.sprintf "object %d slot %d" p i; target = q }))
        (Heap.ptr_slot_values heap p));
  List.iteri
    (fun i root ->
      let v = Cell.get root in
      if v <> null && not (Heap.is_live heap v) then
        add (Dangling { holder = Printf.sprintf "root %d" i; target = v }))
    (Heap.roots heap);

  (* 2. Count lower bound. Pointers held by objects that are themselves
     mid-destroy (count already zero) are about to be released and are
     no longer backed by a count — the paper's destroy runs exactly this
     window — so they do not count against their targets. *)
  let counts = Hashtbl.create 64 in
  let bump p =
    if p <> null && Heap.is_live heap p then
      Hashtbl.replace counts p
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
  in
  Heap.iter_live heap (fun p ->
      if rc_of heap p > 0 then List.iter bump (Heap.ptr_slot_values heap p));
  List.iter (fun root -> bump (Cell.get root)) (Heap.roots heap);
  Heap.iter_live heap (fun p ->
      let rc = rc_of heap p in
      let refs = Option.value ~default:0 (Hashtbl.find_opt counts p) in
      if rc < refs then add (Rc_below_refs { id = p; rc; refs }));

  (* 3. Bounded leak accounting. *)
  let roots_now = List.map Cell.get (Heap.roots heap) in
  let from_globals = reach heap roots_now in
  let anchored = reach heap (roots_now @ Env.anchors env) in
  let live = ref 0 and reachable = ref 0 and leaked = ref 0 in
  let leaked_ids = ref [] in
  Heap.iter_live heap (fun p ->
      incr live;
      if Hashtbl.mem from_globals p then incr reachable
      else begin
        incr leaked;
        leaked_ids := p :: !leaked_ids;
        if not (Hashtbl.mem anchored p) then
          add (Unaccounted_leak { id = p; rc = rc_of heap p })
        else if strict then
          (* After a recovery pass every lost reference has been adopted,
             so even an {e anchored} leak is a bug: something recovery
             failed to reclaim. *)
          add (Residual_leak { id = p; rc = rc_of heap p })
      end);

  {
    live = !live;
    reachable = !reachable;
    leaked = !leaked;
    leaked_ids = List.rev !leaked_ids;
    findings = List.rev !findings;
    recovered;
  }

let ok r = r.findings = []

let pp_finding ppf = function
  | Dangling { holder; target } ->
      Format.fprintf ppf "dangling: %s -> freed object %d" holder target
  | Rc_below_refs { id; rc; refs } ->
      Format.fprintf ppf "rc too low: object %d has rc=%d but %d pointers"
        id rc refs
  | Unaccounted_leak { id; rc } ->
      Format.fprintf ppf
        "unaccounted leak: object %d (rc=%d) reachable from no root or \
         lost reference"
        id rc
  | Residual_leak { id; rc } ->
      Format.fprintf ppf
        "residual leak: object %d (rc=%d) survived the recovery pass" id rc

let pp ppf r =
  Format.fprintf ppf "live=%d reachable=%d leaked=%d findings=%d" r.live
    r.reachable r.leaked
    (List.length r.findings);
  (match r.recovered with
  | None -> ()
  | Some rec_ -> Format.fprintf ppf "@\n  %a" Recovery.pp rec_);
  List.iter (fun f -> Format.fprintf ppf "@\n  %a" pp_finding f) r.findings
