(** Lock-free software multi-word CAS.

    This is a from-scratch implementation of the RDCSS-based MCAS of
    Harris, Fraser and Pratt ("A practical multi-word compare-and-swap
    operation", DISC 2002) — the general k-word operation, with the
    two-word specialization serving as a lock-free *software* DCAS, one
    of the two substrates offered for the paper's assumed hardware DCAS
    instruction (experiment E5 compares them).

    Descriptors are pooled per thread and recycled; helpers validate a
    sequence number embedded in the tagged word before trusting a
    descriptor's fields, so a stale helper can never act on a reused
    descriptor.

    Limitation (documented in DESIGN.md and demonstrated by a test):
    unlike hardware DCAS, MCAS *writes* a descriptor into each target cell
    before it knows the outcome. LFRC's load operation applies DCAS to
    the reference count of an object that may already be freed, counting
    on a failing hardware DCAS not to write; software MCAS would corrupt
    freed memory there. LFRC therefore runs over the atomic or
    striped-lock substrates, and this module serves the substrate-ablation
    benchmarks and the model checker. *)

val mcas : (Lfrc_simmem.Cell.t * int * int) array -> bool
(** [mcas [| (c, old, new); ... |]] atomically installs every [new] iff
    every cell holds its [old]. Cells must be pairwise distinct; at most
    16 entries (the per-thread descriptor pool budget). The empty array
    trivially succeeds. Lock-free: delayed threads are helped past. *)

val dcas :
  Lfrc_simmem.Cell.t ->
  Lfrc_simmem.Cell.t ->
  int ->
  int ->
  int ->
  int ->
  bool
(** Two-word specialization of {!mcas}. *)

val read : Lfrc_simmem.Cell.t -> int
(** Read a cell that may be targeted by in-flight MCAS operations, helping
    any encountered descriptor to completion first. *)

val cas : Lfrc_simmem.Cell.t -> int -> int -> bool
(** Single-word CAS that cooperates with in-flight MCAS operations. *)

val adopt_slot : int -> int
(** [adopt_slot slot] helps whatever operations the slot's current
    descriptors describe to completion — completing or rolling back, never
    leaving a cell holding the descriptor reference. Crash recovery calls
    this with a dead thread's slot (its simulated thread id) so survivors
    are never stuck behind, and the auditor never reads through, an
    orphaned descriptor. Idempotent and safe on an idle slot; returns how
    many descriptors actually needed helping. *)

val max_entries : int

val set_metrics : Lfrc_obs.Metrics.t -> unit
(** Attach a metrics registry to the module-wide counters
    [mcas.attempt] / [mcas.success] / [mcas.fail] (MCAS has no instance
    handle, so — like the descriptor pools — observability is global).
    {!Dcas.attach_obs} calls this automatically when the substrate is
    [Software_mcas]; defaults to the disabled registry. *)
