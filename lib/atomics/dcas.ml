module Cell = Lfrc_simmem.Cell
module Sched = Lfrc_sched.Sched
module Metrics = Lfrc_obs.Metrics
module Tracer = Lfrc_obs.Tracer
module Profile = Lfrc_obs.Profile
module Blame = Lfrc_obs.Blame
module Shadow = Lfrc_sanitize.Shadow

type impl = Atomic_step | Striped_lock | Software_mcas

type counters = {
  reads : int;
  writes : int;
  rmw_ops : int;
  cas_attempts : int;
  cas_failures : int;
  dcas_attempts : int;
  dcas_failures : int;
  spurious_cas : int;
  spurious_dcas : int;
  max_cas_failure_streak : int;
  max_dcas_failure_streak : int;
}

type injector = { inject_cas : unit -> bool; inject_dcas : unit -> bool }

type t = {
  kind : impl;
  stripes : Mutex.t array; (* used by Striped_lock only *)
  mutable injector : injector option;
  c_reads : int Atomic.t;
  c_writes : int Atomic.t;
  c_rmw : int Atomic.t;
  c_cas : int Atomic.t;
  c_cas_fail : int Atomic.t;
  c_dcas : int Atomic.t;
  c_dcas_fail : int Atomic.t;
  c_sp_cas : int Atomic.t;
  c_sp_dcas : int Atomic.t;
  (* Retry telemetry: longest run of consecutive failed attempts. Exact
     under the simulator (single domain); approximate across real
     domains. A growing streak with no intervening success is the
     livelock signal the chaos watchdog reports. *)
  cas_streak : int Atomic.t;
  cas_streak_max : int Atomic.t;
  dcas_streak : int Atomic.t;
  dcas_streak_max : int Atomic.t;
  mutable metrics : Metrics.t;
  mutable tracer : Tracer.t;
  mutable profile : Profile.t;
  mutable blame : Blame.t; (* contention causality; one branch when off *)
  mutable san : Shadow.t; (* shadow-memory sanitizer; one branch when off *)
}

let n_stripes = 64

let create kind =
  {
    kind;
    stripes = Array.init n_stripes (fun _ -> Mutex.create ());
    injector = None;
    c_reads = Atomic.make 0;
    c_writes = Atomic.make 0;
    c_rmw = Atomic.make 0;
    c_cas = Atomic.make 0;
    c_cas_fail = Atomic.make 0;
    c_dcas = Atomic.make 0;
    c_dcas_fail = Atomic.make 0;
    c_sp_cas = Atomic.make 0;
    c_sp_dcas = Atomic.make 0;
    cas_streak = Atomic.make 0;
    cas_streak_max = Atomic.make 0;
    dcas_streak = Atomic.make 0;
    dcas_streak_max = Atomic.make 0;
    metrics = Metrics.disabled;
    tracer = Tracer.disabled;
    profile = Profile.disabled;
    blame = Blame.disabled;
    san = Shadow.disabled;
  }

let set_injector t i = t.injector <- i

let attach_obs ?(profile = Profile.disabled) ?(blame = Blame.disabled) t
    ~metrics ~tracer =
  t.metrics <- metrics;
  t.tracer <- tracer;
  t.profile <- profile;
  t.blame <- blame;
  if t.kind = Software_mcas then Mcas.set_metrics metrics

let attach_sanitizer t san = t.san <- san

let impl t = t.kind

let impl_name t =
  match t.kind with
  | Atomic_step -> "atomic-step"
  | Striped_lock -> "striped-lock"
  | Software_mcas -> "software-mcas"

let stripe t c = t.stripes.(Cell.id c land (n_stripes - 1))

let with_stripe t c f =
  let m = stripe t c in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let with_two_stripes t c0 c1 f =
  let i0 = Cell.id c0 land (n_stripes - 1)
  and i1 = Cell.id c1 land (n_stripes - 1) in
  let lo = min i0 i1 and hi = max i0 i1 in
  Mutex.lock t.stripes.(lo);
  if hi <> lo then Mutex.lock t.stripes.(hi);
  Fun.protect
    ~finally:(fun () ->
      if hi <> lo then Mutex.unlock t.stripes.(hi);
      Mutex.unlock t.stripes.(lo))
    f

let read t c =
  Sched.point ();
  Atomic.incr t.c_reads;
  Metrics.incr t.metrics "dcas.reads";
  let v =
    match t.kind with
    | Atomic_step | Striped_lock -> Cell.get c
    | Software_mcas -> Mcas.read c
  in
  Shadow.on_read t.san c v;
  v

let write t c v =
  Sched.point ();
  Atomic.incr t.c_writes;
  Metrics.incr t.metrics "dcas.writes";
  (match t.kind with
  | Atomic_step -> Cell.set c v
  | Striped_lock -> with_stripe t c (fun () -> Cell.set c v)
  | Software_mcas ->
      (* A blind write must still cooperate with in-flight descriptors. *)
      let rec go () = if not (Mcas.cas c (Mcas.read c) v) then go () in
      go ());
  Shadow.on_write t.san c v;
  Blame.stamp t.blame Blame.Write (Cell.id c)

let bump_streak ~streak ~streak_max ok =
  if ok then Atomic.set streak 0
  else begin
    let s = 1 + Atomic.fetch_and_add streak 1 in
    let rec raise_max () =
      let m = Atomic.get streak_max in
      if s > m && not (Atomic.compare_and_set streak_max m s) then raise_max ()
    in
    raise_max ()
  end

let count_cas t ok =
  Atomic.incr t.c_cas;
  Metrics.incr t.metrics "dcas.cas_attempts";
  if not ok then begin
    Atomic.incr t.c_cas_fail;
    Metrics.incr t.metrics "dcas.cas_failures";
    Tracer.emit t.tracer Retry "cas";
    Profile.dcas_retry t.profile
  end;
  bump_streak ~streak:t.cas_streak ~streak_max:t.cas_streak_max ok;
  ok

(* A spurious failure reports false without comparing or writing anything —
   the LL/SC-style failure mode every LFRC retry loop must compensate for
   (dropping its speculative count increments before trying again). *)
let spurious_cas t =
  match t.injector with
  | Some i when i.inject_cas () ->
      Atomic.incr t.c_sp_cas;
      Metrics.incr t.metrics "dcas.spurious_cas";
      Tracer.emit t.tracer Fault "spurious-cas";
      ignore (count_cas t false);
      true
  | _ -> false

let spurious_dcas t =
  match t.injector with
  | Some i when i.inject_dcas () ->
      Atomic.incr t.c_sp_dcas;
      Metrics.incr t.metrics "dcas.spurious_dcas";
      Tracer.emit t.tracer Fault "spurious-dcas";
      true
  | _ -> false

let cas t c old_v new_v =
  Sched.point ();
  if spurious_cas t then begin
    Blame.charge_spurious t.blame Blame.Cas;
    false
  end
  else begin
    let ok =
      match t.kind with
      | Atomic_step -> Cell.cas c old_v new_v
      | Striped_lock -> with_stripe t c (fun () -> Cell.cas c old_v new_v)
      | Software_mcas -> Mcas.cas c old_v new_v
    in
    Shadow.on_cas t.san c ~old_v ~new_v ~ok;
    if ok then Blame.stamp t.blame Blame.Cas (Cell.id c)
    else Blame.charge t.blame Blame.Cas (Cell.id c);
    count_cas t ok
  end

let fetch_add t c d =
  Sched.point ();
  Atomic.incr t.c_rmw;
  Metrics.incr t.metrics "dcas.rmw";
  let v =
    match t.kind with
    | Atomic_step -> Cell.fetch_and_add c d
    | Striped_lock -> with_stripe t c (fun () -> Cell.fetch_and_add c d)
    | Software_mcas ->
        let rec go () =
          let v = Mcas.read c in
          if Mcas.cas c v (v + d) then v else go ()
        in
        go ()
  in
  Shadow.on_rmw t.san c;
  Blame.stamp t.blame Blame.Rmw (Cell.id c);
  v

let count_dcas t ok =
  Atomic.incr t.c_dcas;
  Metrics.incr t.metrics "dcas.dcas_attempts";
  if not ok then begin
    Atomic.incr t.c_dcas_fail;
    Metrics.incr t.metrics "dcas.dcas_failures";
    Tracer.emit t.tracer Retry "dcas";
    Profile.dcas_retry t.profile
  end;
  bump_streak ~streak:t.dcas_streak ~streak_max:t.dcas_streak_max ok;
  ok

let dcas t c0 c1 ~old0 ~old1 ~new0 ~new1 =
  Sched.point ();
  if spurious_dcas t then begin
    Blame.charge_spurious t.blame Blame.Dcas;
    count_dcas t false
  end
  else begin
    let ok =
      match t.kind with
      | Atomic_step ->
          (* Indivisible between yield points: simulated hardware DCAS. *)
          let ok = Cell.get c0 = old0 && Cell.get c1 = old1 in
          if ok then begin
            Cell.set c0 new0;
            Cell.set c1 new1
          end;
          ok
      | Striped_lock ->
          with_two_stripes t c0 c1 (fun () ->
              let ok = Cell.get c0 = old0 && Cell.get c1 = old1 in
              if ok then begin
                Cell.set c0 new0;
                Cell.set c1 new1
              end;
              ok)
      | Software_mcas -> Mcas.dcas c0 c1 old0 old1 new0 new1
    in
    Shadow.on_dcas t.san c0 c1 ~old0 ~old1 ~new0 ~new1 ~ok;
    if Blame.enabled t.blame then
      if ok then begin
        Blame.stamp t.blame Blame.Dcas (Cell.id c0);
        Blame.stamp t.blame Blame.Dcas (Cell.id c1)
      end
      else begin
        (* The culprit cell is whichever word failed its compare; a raw
           peek (no Sched.point) keeps the schedule identical to a
           blame-free run. With both words stale, blaming the first is
           still a true cause. *)
        let cid =
          if Cell.get c0 <> old0 then Cell.id c0 else Cell.id c1
        in
        Blame.charge t.blame Blame.Dcas cid
      end;
    count_dcas t ok
  end

let counters t =
  {
    reads = Atomic.get t.c_reads;
    writes = Atomic.get t.c_writes;
    rmw_ops = Atomic.get t.c_rmw;
    cas_attempts = Atomic.get t.c_cas;
    cas_failures = Atomic.get t.c_cas_fail;
    dcas_attempts = Atomic.get t.c_dcas;
    dcas_failures = Atomic.get t.c_dcas_fail;
    spurious_cas = Atomic.get t.c_sp_cas;
    spurious_dcas = Atomic.get t.c_sp_dcas;
    max_cas_failure_streak = Atomic.get t.cas_streak_max;
    max_dcas_failure_streak = Atomic.get t.dcas_streak_max;
  }

let reset_counters t =
  Atomic.set t.c_reads 0;
  Atomic.set t.c_writes 0;
  Atomic.set t.c_rmw 0;
  Atomic.set t.c_cas 0;
  Atomic.set t.c_cas_fail 0;
  Atomic.set t.c_dcas 0;
  Atomic.set t.c_dcas_fail 0;
  Atomic.set t.c_sp_cas 0;
  Atomic.set t.c_sp_dcas 0;
  Atomic.set t.cas_streak 0;
  Atomic.set t.cas_streak_max 0;
  Atomic.set t.dcas_streak 0;
  Atomic.set t.dcas_streak_max 0
