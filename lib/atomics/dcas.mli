(** The DCAS substrate: the paper's assumed hardware double
    compare-and-swap (as on the Motorola 68020/68040 [CAS2]), with
    single-word companions. Every operation is a scheduler yield point, so
    algorithms built on this layer can be model-checked and simulated
    without change.

    Three interchangeable implementations:

    - [Atomic_step]: relies on the deterministic scheduler — between two
      yield points a simulated thread runs alone, so the two-word update is
      indivisible by construction. Only valid inside [Sched.run].
    - [Striped_lock]: hashes the two cells onto a fixed array of mutexes
      acquired in cell-id order. Models an atomic hardware unit for real
      multi-domain runs; not lock-free, exactly as real [malloc] is not
      (the paper's footnote 1 draws the same boundary).
    - [Software_mcas]: the lock-free {!Mcas} substrate. Lock-free, but
      writes descriptors into target cells and therefore must not be used
      under LFRC itself (see {!Mcas}); provided for the E5 ablation.

    DCAS semantics follow the paper's Section 2.2: compare both locations,
    swap both or neither, return whether it succeeded. *)

type impl = Atomic_step | Striped_lock | Software_mcas

type t

val create : impl -> t
val impl : t -> impl
val impl_name : t -> string

val read : t -> Lfrc_simmem.Cell.t -> int
val write : t -> Lfrc_simmem.Cell.t -> int -> unit
val cas : t -> Lfrc_simmem.Cell.t -> int -> int -> bool

val fetch_add : t -> Lfrc_simmem.Cell.t -> int -> int
(** Atomic add returning the previous value; the paper's [add_to_rc] is a
    CAS loop, which we also provide in {!Lfrc}, but the substrate-level
    primitive is used by baselines. *)

val dcas :
  t ->
  Lfrc_simmem.Cell.t ->
  Lfrc_simmem.Cell.t ->
  old0:int ->
  old1:int ->
  new0:int ->
  new1:int ->
  bool

type counters = {
  reads : int;
  writes : int;
  rmw_ops : int;
      (** fetch-and-add operations — the wait-free weighted-rc hot path;
          also counted as [dcas.rmw] in an attached metrics registry *)
  cas_attempts : int;
  cas_failures : int;
  dcas_attempts : int;
  dcas_failures : int;
  spurious_cas : int;  (** injected CAS failures (counted in [cas_failures]) *)
  spurious_dcas : int;
      (** injected DCAS failures (counted in [dcas_failures]) *)
  max_cas_failure_streak : int;
      (** longest run of consecutive failed CAS attempts — retry/livelock
          telemetry; exact under the simulator *)
  max_dcas_failure_streak : int;
}

val counters : t -> counters
(** Operation counters, exact under the simulator (single domain); used as
    the "simulated work" metric by the experiment harness. *)

val reset_counters : t -> unit

(** {2 Fault injection}

    An installed injector is consulted on every [cas]/[dcas]; answering
    [true] makes that attempt fail {e spuriously}: nothing is compared or
    written and the operation reports failure, exactly the LL/SC-style
    false-negative the paper's retry loops must tolerate. Spurious
    failures still count as attempts and failures, and additionally as
    [spurious_cas]/[spurious_dcas]. *)

type injector = { inject_cas : unit -> bool; inject_dcas : unit -> bool }

val set_injector : t -> injector option -> unit

(** {2 Observability}

    With an attached metrics registry, every attempt/failure/spurious
    event also lands in [dcas.*] counters; with an attached tracer, each
    failed attempt emits a [Retry] event and each injected failure a
    [Fault] event; with an attached profiler, each failed attempt is
    charged to the innermost operation frame open on the failing thread
    ({!Lfrc_obs.Profile.dcas_retry}); with an attached blame registry,
    each successful write/CAS/DCAS/RMW stamps its cell(s) with the winner
    and each failed compare is charged to the stamped culprit
    ({!Lfrc_obs.Blame}) — on a failed DCAS the culprit is whichever word
    failed its compare. Detached (the default) the cost is one branch per
    event. {!Lfrc_core.Env.create} attaches its environment's
    observability here. *)

val attach_obs :
  ?profile:Lfrc_obs.Profile.t ->
  ?blame:Lfrc_obs.Blame.t ->
  t ->
  metrics:Lfrc_obs.Metrics.t ->
  tracer:Lfrc_obs.Tracer.t ->
  unit

val attach_sanitizer : t -> Lfrc_sanitize.Shadow.t -> unit
(** Route every read/write/CAS/DCAS through the shadow-memory sanitizer's
    access hooks (after the operation resolves, so the hook sees the
    outcome). Spurious injected failures are not reported — they touch no
    memory. Detached (the default, {!Lfrc_sanitize.Shadow.disabled}) the
    cost is one branch per operation. *)
