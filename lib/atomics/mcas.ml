module Cell = Lfrc_simmem.Cell
module Sched = Lfrc_sched.Sched
module Metrics = Lfrc_obs.Metrics

(* Module-global, like the descriptor pools: MCAS has no instance handle,
   so its counters attach module-wide. {!Dcas.attach_obs} forwards its
   registry here when the substrate is [Software_mcas]. *)
let metrics = ref Metrics.disabled
let set_metrics m = metrics := m

(* Raw-word tags (Cell stores application value [v] as [v lsl 2]). *)
let tag_value = 0
let tag_rdcss = 1
let tag_mcas = 2

(* Descriptor references are packed as [seq lsl 14 | idx lsl 2 | tag]. *)
let idx_bits = 12
let pool_size = 1 lsl idx_bits

let mk_ref tag idx seq = (seq lsl (idx_bits + 2)) lor (idx lsl 2) lor tag
let ref_idx r = (r lsr 2) land (pool_size - 1)
let ref_seq r = r lsr (idx_bits + 2)

(* MCAS status *)
let undecided = 0
let succeeded = 1
let failed = 2

let max_entries = 16

type mdesc = {
  m_seq : int Atomic.t;
  m_status : int Atomic.t;
  (* (cell, expected raw, new raw) per location, sorted by cell id; the
     owner installs a fresh array before publishing the new sequence
     number, so helpers treat (seq, entries) as one snapshot. *)
  mutable m_entries : (Cell.t * int * int) array;
}

type rdesc = {
  r_seq : int Atomic.t;
  mutable r_cell : Cell.t;
  mutable r_old : int; (* raw-encoded expected value *)
  mutable r_mref : int; (* mcas descriptor reference word to install *)
}

let dummy_cell = Cell.make 0

let mpool =
  Array.init pool_size (fun _ ->
      {
        m_seq = Atomic.make 0;
        m_status = Atomic.make failed;
        m_entries = [||];
      })

let rpool =
  Array.init pool_size (fun _ ->
      { r_seq = Atomic.make 0; r_cell = dummy_cell; r_old = 0; r_mref = 0 })

(* Thread slots: simulated threads use their scheduler id (one domain, ids
   0..61); real domains draw unique slots from 64 upward. *)
let slot_counter = Atomic.make 64

let dls_slot =
  Domain.DLS.new_key (fun () -> Atomic.fetch_and_add slot_counter 1)

let my_slot () =
  if Sched.active () then Sched.tid ()
  else begin
    let s = Domain.DLS.get dls_slot in
    if s >= pool_size then failwith "Mcas: descriptor pool exhausted";
    s
  end

(* Snapshot an mdesc's fields if the reference is still current. *)
let read_mdesc idx seq =
  let d = mpool.(idx) in
  if Atomic.get d.m_seq <> seq then None
  else begin
    let entries = d.m_entries in
    if Atomic.get d.m_seq = seq then Some (d, entries) else None
  end

let read_rdesc idx seq =
  let d = rpool.(idx) in
  if Atomic.get d.r_seq <> seq then None
  else begin
    let cell = d.r_cell and old = d.r_old and mref = d.r_mref in
    if Atomic.get d.r_seq = seq then Some (cell, old, mref) else None
  end

(* Complete an installed RDCSS descriptor [rref] sitting in [cell]:
   replace it by the MCAS reference if the MCAS is still undecided, else
   restore the old value. *)
let complete_rdcss cell rref ~old ~mref =
  let m_status =
    match read_mdesc (ref_idx mref) (ref_seq mref) with
    | Some (d, _) -> Atomic.get d.m_status
    | None -> failed (* mcas finished long ago: restore old *)
  in
  let replacement = if m_status = undecided then mref else old in
  Sched.point ();
  ignore (Atomic.compare_and_set (Cell.raw cell) rref replacement)

let help_rdcss rref =
  match read_rdesc (ref_idx rref) (ref_seq rref) with
  | None -> () (* stale: the descriptor's op finished; cell has moved on *)
  | Some (cell, old, mref) -> complete_rdcss cell rref ~old ~mref

(* RDCSS: install [mref] into [cell] iff cell holds [expected_raw] and the
   owning MCAS is still undecided. Returns the raw word that decided the
   outcome: [expected_raw] on success, the differing content otherwise
   (possibly another MCAS reference the caller should help). *)
let rdcss ~slot ~cell ~expected_raw ~mref =
  let rd = rpool.(slot) in
  let seq = Atomic.get rd.r_seq + 1 in
  Atomic.set rd.r_seq seq;
  rd.r_cell <- cell;
  rd.r_old <- expected_raw;
  rd.r_mref <- mref;
  let rref = mk_ref tag_rdcss slot seq in
  let rec install () =
    Sched.point ();
    if Atomic.compare_and_set (Cell.raw cell) expected_raw rref then begin
      Cell.check_write cell "MCAS descriptor install";
      complete_rdcss cell rref ~old:expected_raw ~mref;
      expected_raw
    end
    else begin
      let r = Atomic.get (Cell.raw cell) in
      if Cell.tag_of_raw r = tag_rdcss then begin
        help_rdcss r;
        install ()
      end
      else r
    end
  in
  install ()

(* Help an MCAS operation referenced by [mref] to completion. *)
let rec help_mcas mref =
  match read_mdesc (ref_idx mref) (ref_seq mref) with
  | None -> ()
  | Some (d, entries) ->
      let seq = ref_seq mref in
      let n = Array.length entries in
      (* Phase 1: install the descriptor in every cell, in the (sorted)
         stored order. *)
      let rec install_entry i =
        if i >= n then ()
        else if Atomic.get d.m_seq <> seq then ()
        else if Atomic.get d.m_status <> undecided then ()
        else begin
          let cell, o, _ = entries.(i) in
          let r = rdcss ~slot:(my_slot ()) ~cell ~expected_raw:o ~mref in
          if r = o || r = mref then install_entry (i + 1)
          else if Cell.tag_of_raw r = tag_mcas then begin
            help_mcas r;
            install_entry i
          end
          else
            (* plain value mismatch: the MCAS fails *)
            ignore (Atomic.compare_and_set d.m_status undecided failed)
        end
      in
      install_entry 0;
      if Atomic.get d.m_seq = seq then begin
        (if Atomic.get d.m_status = undecided then
           let installed =
             Array.for_all
               (fun (cell, _, _) -> Atomic.get (Cell.raw cell) = mref)
               entries
           in
           if installed then
             ignore (Atomic.compare_and_set d.m_status undecided succeeded));
        (* Phase 2: detach the descriptor. *)
        let final_status = Atomic.get d.m_status in
        if final_status <> undecided then
          Array.iter
            (fun (cell, o, nw) ->
              let fin = if final_status = succeeded then nw else o in
              Sched.point ();
              ignore (Atomic.compare_and_set (Cell.raw cell) mref fin))
            entries
      end

(* Adopt a (crashed) thread's descriptor slot: help whatever operation the
   slot's current sequence numbers describe to completion, so no cell is
   left holding a dead thread's descriptor reference. Safe to call at any
   time — helping is idempotent, and a slot whose operations all finished
   is a no-op. Returns how many descriptors actually needed helping. *)
let adopt_slot slot =
  if slot < 0 || slot >= pool_size then 0
  else begin
    let helped = ref 0 in
    (* The RDCSS descriptor first: completing it either promotes the cell
       to the owning MCAS reference (finished by the help below) or
       restores the old value — never leaves the intermediate state. *)
    let rd = rpool.(slot) in
    let rseq = Atomic.get rd.r_seq in
    if rseq > 0 then begin
      let rref = mk_ref tag_rdcss slot rseq in
      (match read_rdesc slot rseq with
      | Some (cell, _, _) when Atomic.get (Cell.raw cell) = rref ->
          incr helped
      | _ -> ());
      help_rdcss rref
    end;
    let d = mpool.(slot) in
    let mseq = Atomic.get d.m_seq in
    if mseq > 0 && Array.length d.m_entries > 0 then begin
      let mref = mk_ref tag_mcas slot mseq in
      let needs_help =
        Atomic.get d.m_status = undecided
        || Array.exists
             (fun (cell, _, _) -> Atomic.get (Cell.raw cell) = mref)
             d.m_entries
      in
      if needs_help then begin
        incr helped;
        help_mcas mref
      end
    end;
    !helped
  end

let mcas spec =
  let n = Array.length spec in
  if n = 0 then true
  else if n > max_entries then invalid_arg "Mcas.mcas: too many entries"
  else begin
    let entries =
      Array.map (fun (c, o, nw) -> (c, Cell.encode o, Cell.encode nw)) spec
    in
    Array.sort (fun (a, _, _) (b, _, _) -> compare (Cell.id a) (Cell.id b)) entries;
    for i = 1 to n - 1 do
      let a, _, _ = entries.(i - 1) and b, _, _ = entries.(i) in
      if Cell.id a = Cell.id b then invalid_arg "Mcas.mcas: duplicate cells"
    done;
    let slot = my_slot () in
    let d = mpool.(slot) in
    let seq = Atomic.get d.m_seq + 1 in
    (* Invalidate stale references to this descriptor, then publish fields
       before the first install can expose the new reference. *)
    Atomic.set d.m_seq seq;
    Atomic.set d.m_status undecided;
    d.m_entries <- entries;
    let mref = mk_ref tag_mcas slot seq in
    Metrics.incr !metrics "mcas.attempt";
    help_mcas mref;
    let ok = Atomic.get d.m_status = succeeded in
    Metrics.incr !metrics (if ok then "mcas.success" else "mcas.fail");
    ok
  end

let dcas c0 c1 old0 old1 new0 new1 =
  if Cell.id c0 = Cell.id c1 then invalid_arg "Mcas.dcas: identical cells";
  mcas [| (c0, old0, new0); (c1, old1, new1) |]

let rec read cell =
  Sched.point ();
  let r = Atomic.get (Cell.raw cell) in
  let tag = Cell.tag_of_raw r in
  if tag = tag_value then Cell.decode r
  else begin
    if tag = tag_rdcss then help_rdcss r else help_mcas r;
    read cell
  end

let rec cas cell old_v new_v =
  Sched.point ();
  let old_raw = Cell.encode old_v in
  if Atomic.compare_and_set (Cell.raw cell) old_raw (Cell.encode new_v) then begin
    Cell.check_write cell "successful CAS";
    true
  end
  else begin
    let r = Atomic.get (Cell.raw cell) in
    let tag = Cell.tag_of_raw r in
    if tag = tag_value then false
    else begin
      if tag = tag_rdcss then help_rdcss r else help_mcas r;
      cas cell old_v new_v
    end
  end
