(** Compatibility alias: the stack signature now lives in the unified
    {!Container_intf} family. *)

module type STACK = Container_intf.STACK
