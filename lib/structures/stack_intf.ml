(** Common signature for stack implementations (concurrent LIFO). *)

module type STACK = sig
  val name : string

  type t
  type handle

  val create : Lfrc_core.Env.t -> t
  val register : t -> handle
  val unregister : handle -> unit
  val push : handle -> int -> unit

  val try_push : handle -> int -> (unit, [ `Out_of_memory ]) result
  (** Like [push], but when the allocator fails the operation backs out
      with the structure and all reference counts untouched, instead of
      raising mid-update. *)

  val pop : handle -> int option
  val destroy : t -> unit
end
