

module Make (O : Lfrc_core.Ops_intf.OPS) = struct
  include Snark_common.Core (O)
  open Snark_common

  let name = "snark-" ^ O.name

  (* popRight per the cited DISC 2000 algorithm (mirrored for popLeft),
     with the LFRC paper's null-for-self-pointer change: a popped node's
     inward link is set to null, and the emptiness test checks the hat
     node's outward link for null. *)
  let pop h side =
    let t = h.t and ctx = h.ctx in
    let rh = O.declare ctx
    and lh = O.declare ctx
    and rh_in = O.declare ctx
    and rh_out = O.declare ctx
    and dm = O.declare ctx in
    let retire_all () = List.iter (O.retire ctx) [ rh; lh; rh_in; rh_out; dm ] in
    O.load ctx (dummy_cell t) dm;
    let rec loop () =
      O.load ctx (hat t side) rh;
      O.load ctx (other_hat t side) lh;
      O.load ctx (slot_cell t (O.get rh) side.out_slot) rh_out;
      if O.get rh_out = null then None (* sentinel at the hat: empty *)
      else if O.get rh = O.get lh then begin
        (* single node: retract both hats onto Dummy *)
        if
          O.dcas ctx (hat t side) (other_hat t side) ~old0:(O.get rh)
            ~old1:(O.get lh) ~new0:(O.get dm) ~new1:(O.get dm)
        then Some (O.read_val ctx (Snode.v_cell t.heap (O.get rh)))
        else loop ()
      end
      else begin
        O.load ctx (slot_cell t (O.get rh) side.in_slot) rh_in;
        if
          O.dcas ctx (hat t side)
            (slot_cell t (O.get rh) side.in_slot)
            ~old0:(O.get rh) ~old1:(O.get rh_in) ~new0:(O.get rh_in)
            ~new1:null
        then begin
          let v = O.read_val ctx (Snode.v_cell t.heap (O.get rh)) in
          (* Cut the popped node's outward link so chains of dead nodes do
             not accumulate (the DISC algorithm's rh->R = Dummy). *)
          O.store ctx (slot_cell t (O.get rh) side.out_slot) (O.get dm);
          Some v
        end
        else loop ()
      end
    in
    let result = loop () in
    retire_all ();
    result

  let push_right h v = push h right_side v
  let push_left h v = push h left_side v
  let try_push_right h v = try_push h right_side v
  let try_push_left h v = try_push h left_side v
  let pop_right h = pop h right_side
  let pop_left h = pop h left_side

  let destroy t = destroy_with ~pop_left t

  include Container_intf.With_env (struct
    let name = name

    type nonrec t = t
    type nonrec handle = handle

    let create = create
    let register = register
    let unregister = unregister
    let destroy = destroy
  end)
end
