
let claimed = -0x3C1A1ED

module Make (O : Lfrc_core.Ops_intf.OPS) = struct
  include Snark_common.Core (O)
  open Snark_common

  let name = "snark-fixed-" ^ O.name

  let push_checked h side v =
    assert (v <> claimed);
    push h side v

  let try_push_checked h side v =
    assert (v <> claimed);
    try_push h side v

  (* One attempt at unlinking the claimed node [n] from side [side]:
     swing the hat to n's inward neighbour and null the inward link, in
     one DCAS. Returns true once the hat no longer points at [n]. *)
  let unlink_step ctx t n side =
    let cur = O.declare ctx and m = O.declare ctx in
    let finished =
      O.load ctx (hat t side) cur;
      if O.get cur <> n then true
      else begin
        O.load ctx (slot_cell t n side.in_slot) m;
        ignore
          (O.dcas ctx (hat t side)
             (slot_cell t n side.in_slot)
             ~old0:n ~old1:(O.get m) ~new0:(O.get m) ~new1:null);
        O.load ctx (hat t side) cur;
        O.get cur <> n
      end
    in
    O.retire ctx cur;
    O.retire ctx m;
    finished

  (* Garbage-chain maintenance. A popped node keeps its outward link, and
     its neighbour keeps a link to it, so dead nodes form chains retained
     from the deque. The published algorithm redirected the link
     unconditionally — which can sever the only path the other hat has to
     live nodes (a race this repository's model checker caught in an
     earlier draft). The safe rule: walk outward through *claimed* nodes;
     only if the chain terminates at Dummy or null — i.e. nothing live
     lies beyond — sever it at the first link. Skipping the chain then
     leads any walker to the same terminal, and the whole chain cascades
     back to the allocator at once. *)
  let cut_dead_chain ctx t n side =
    let dm = O.declare ctx
    and first = O.declare ctx
    and cur = O.declare ctx
    and nxt = O.declare ctx in
    O.load ctx (dummy_cell t) dm;
    O.load ctx (slot_cell t n side.out_slot) first;
    let head = O.get first in
    if
      head <> Snark_common.null
      && head <> O.get dm
      && O.read_val ctx (Snode.v_cell t.heap head) = claimed
    then begin
      O.copy ctx cur head;
      let rec ends_at_terminal () =
        O.load ctx (slot_cell t (O.get cur) side.out_slot) nxt;
        let x = O.get nxt in
        if x = Snark_common.null || x = O.get dm then true
        else if O.read_val ctx (Snode.v_cell t.heap x) = claimed then begin
          O.copy ctx cur x;
          ends_at_terminal ()
        end
        else false
      in
      if ends_at_terminal () then
        ignore
          (O.cas ctx
             (slot_cell t n side.out_slot)
             ~old_ptr:head ~new_ptr:(O.get dm))
    end;
    List.iter (O.retire ctx) [ dm; first; cur; nxt ]

  let pop h side =
    let t = h.t and ctx = h.ctx in
    let rh = O.declare ctx and rh_out = O.declare ctx in
    let retire_all () = List.iter (O.retire ctx) [ rh; rh_out ] in
    let rec loop () =
      O.load ctx (hat t side) rh;
      let v = O.read_val ctx (Snode.v_cell t.heap (O.get rh)) in
      if v = claimed then begin
        (* dead node parked at the hat: help unlink, then retry *)
        ignore (unlink_step ctx t (O.get rh) side);
        loop ()
      end
      else begin
        O.load ctx (slot_cell t (O.get rh) side.out_slot) rh_out;
        if O.get rh_out = null then begin
          (* The hat node's outward link is null, which suggests empty —
             but the two reads were separate, and between them the node
             can be claimed from the other side and its link nulled while
             live nodes remain (the published algorithm's false-empty
             race, rediscovered here by the model checker). Linearize the
             empty answer with a no-op DCAS that atomically re-validates
             both facts. *)
          if
            O.dcas ctx (hat t side)
              (slot_cell t (O.get rh) side.out_slot)
              ~old0:(O.get rh) ~old1:null ~new0:(O.get rh) ~new1:null
          then None
          else loop ()
        end
        else if
          (* linearization: claim the value while the node is at the hat *)
          O.dcas_ptr_val ctx ~ptr_cell:(hat t side)
            ~val_cell:(Snode.v_cell t.heap (O.get rh))
            ~old_ptr:(O.get rh) ~new_ptr:(O.get rh) ~old_val:v
            ~new_val:claimed
        then begin
          (* cleanup: unlink the dead node. Its outward link must stay
             *usable*: it is the path the other side's unlink helper
             follows if its hat is parked on this node, so blindly
             redirecting it (the published algorithm's cut) can make a
             non-empty deque look empty — a bug this repository's model
             checker caught in an earlier draft.

             Without any cut, however, every popped node stays referenced
             by its neighbour's link until a push splices over it, so
             FIFO usage retains its whole pop history. The safe middle
             ground: redirect the link to Dummy only when it points at a
             *claimed* node whose own outward link already ends the chain
             (Dummy or null) — skipping that node leads a walker to the
             same terminal, so reachability is unchanged, and each pop
             then releases the previous dead node. *)
          let n = O.get rh in
          let rec unlink () = if not (unlink_step ctx t n side) then unlink () in
          unlink ();
          cut_dead_chain ctx t n side;
          Some v
        end
        else loop ()
      end
    in
    let result = loop () in
    retire_all ();
    result

  let push_right h v = push_checked h right_side v
  let push_left h v = push_checked h left_side v
  let try_push_right h v = try_push_checked h right_side v
  let try_push_left h v = try_push_checked h left_side v
  let pop_right h = pop h right_side
  let pop_left h = pop h left_side

  let destroy t = destroy_with ~pop_left t

  include Container_intf.With_env (struct
    let name = name

    type nonrec t = t
    type nonrec handle = handle

    let create = create
    let register = register
    let unregister = unregister
    let destroy = destroy
  end)
end
