(** Treiber's lock-free stack over the pointer-operation interface.

    The canonical victim of the ABA problem: with manual reclamation and
    plain CAS, a node freed and recycled between a pop's read of the top
    and its CAS corrupts the stack. Under {!Lfrc_core.Lfrc_ops} the local
    reference counts make the recycling impossible — precisely the paper's
    Section 1 argument (and [examples/aba_demo.ml] shows the unprotected
    variant corrupting itself on the same heap). *)

module Make (O : Lfrc_core.Ops_intf.OPS_CAS) : Stack_intf.STACK
(** [Cas]-tier: the implementation needs no DCAS, so the functor argument
    is the single-word signature ({!Lfrc_core.Ops_intf.OPS_CAS}); any
    full-[OPS] module still applies. *)

val node_layout : Lfrc_simmem.Layout.t
