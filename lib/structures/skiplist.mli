(** A lock-free skip-list set over the pointer-operation interface.

    The paper cites Pugh's concurrent skip lists [16] as a structure whose
    design is "significantly simplified" by garbage collection; this
    implementation carries that example through the LFRC methodology. The
    design composes the repository's DCAS ordered list ({!Dlist_set})
    level-wise:

    - the bottom level is the truth: membership linearizes on bottom-level
      linking (insert's CAS) and unlinking (remove's DCAS, which
      tombstones the victim's bottom link in the same step);
    - upper levels are index shortcuts, linked best-effort after the
      bottom-level insert and unlinked before the bottom-level remove;
      a traversal that stumbles on a dead node at any level simply
      restarts its descent — counted references mean the dead node is
      still safely readable, which is the whole point of the methodology;
    - node levels are chosen by a deterministic per-handle geometric
      distribution (p = 1/2, capped), so runs are reproducible.

    Garbage is cycle-free: a removed node's forward pointers are
    tombstoned level by level, and tombstones point at a live sentinel. *)

val max_level : int

module Make (O : Lfrc_core.Ops_intf.OPS) : sig
  val name : string

  type t
  type handle

  val create : Lfrc_core.Env.t -> t

  val register : ?seed:int -> t -> handle
  (** [seed] fixes the handle's deterministic level-choice stream. *)

  val unregister : handle -> unit

  val insert : handle -> int -> bool

  val try_insert : handle -> int -> (bool, [ `Out_of_memory ]) result
  (** Like [insert], but a data-node allocation failure backs out with
      the set untouched. An allocator failure while building the index
      tower is not an error: the element is already linearized into the
      bottom level, so the tower is simply left shorter (upper levels are
      best-effort shortcuts). *)

  val remove : handle -> int -> bool
  val contains : handle -> int -> bool

  val to_list : handle -> int list
  (** Bottom-level snapshot (ascending); quiescent use. *)

  val height_histogram : handle -> int array
  (** How many live nodes exist of each level (1-based index 0 = level 1);
      quiescent use, for tests of the level distribution. *)

  val destroy : t -> unit

  val with_env : Lfrc_core.Env.t -> (handle -> 'a) -> 'a
end

module As_set (O : Lfrc_core.Ops_intf.OPS) : Container_intf.SET
(** {!Make} with the seeded [register] eta-expanded away: the skip list
    as a drop-in for anything generic over {!Container_intf.SET}. *)
