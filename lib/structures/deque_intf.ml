(** Common signature for double-ended queue implementations, so the test
    suite, linearizability checker and experiment harness can treat the
    published Snark, the corrected Snark, and the lock-based baseline
    uniformly. *)

module type DEQUE = sig
  val name : string

  type t
  type handle
  (** Per-thread access handle (carries the thread's pointer-op context). *)

  val create : Lfrc_core.Env.t -> t

  val register : t -> handle
  (** Call once per (simulated or real) thread. *)

  val unregister : handle -> unit

  val push_left : handle -> int -> unit
  val push_right : handle -> int -> unit

  val try_push_left : handle -> int -> (unit, [ `Out_of_memory ]) result
  val try_push_right : handle -> int -> (unit, [ `Out_of_memory ]) result
  (** Like the push operations, but when the allocator fails they back out
      with the deque and all reference counts untouched, instead of
      raising mid-update. *)

  val pop_left : handle -> int option
  val pop_right : handle -> int option

  val destroy : t -> unit
  (** Drain and release everything, including the structure's own object —
      the paper's Snark destructor (Figure 1 lines 40..44). Must only be
      called after all threads have finished accessing the deque. *)
end
