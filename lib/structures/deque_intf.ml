(** Compatibility alias: the deque signature now lives in the unified
    {!Container_intf} family. *)

module type DEQUE = Container_intf.DEQUE
