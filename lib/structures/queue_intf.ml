(** Common signature for queue implementations (concurrent FIFO). *)

module type QUEUE = sig
  val name : string

  type t
  type handle

  val create : Lfrc_core.Env.t -> t
  val register : t -> handle
  val unregister : handle -> unit
  val enqueue : handle -> int -> unit

  val try_enqueue : handle -> int -> (unit, [ `Out_of_memory ]) result
  (** Like [enqueue], but when the allocator fails the operation backs out
      with the structure and all reference counts untouched, instead of
      raising mid-update. *)

  val dequeue : handle -> int option
  val destroy : t -> unit
end
