(** Compatibility alias: the queue signature now lives in the unified
    {!Container_intf} family. *)

module type QUEUE = Container_intf.QUEUE
