(** The Sundell–Tsigas deque, ported to single-word CAS — the catalog's
    first [Cas]-tier citizen and the DCAS ablation's pure-CAS competitor
    to the paper's Snark.

    The functor argument is {!Lfrc_core.Ops_intf.OPS_CAS}, not the full
    DCAS signature: the implementation cannot issue a DCAS because the
    operation is not in its vocabulary — "CAS-only" is discharged by the
    type checker. The port keeps the original's idea (logical deletion by
    marking a node's next link, prev information demoted to fixable
    hints) but simulates the mark bit with marker nodes and replaces the
    per-node prev chain with a single tail hint; DESIGN.md §14 lists
    every deviation from the published helping scheme. *)

module Make (O : Lfrc_core.Ops_intf.OPS_CAS) : Deque_intf.DEQUE

val node_layout : Lfrc_simmem.Layout.t
