(** The unified container signature family.

    Every concurrent structure in the repository — stacks, queues, deques,
    sets, whichever reclamation scheme backs them — shares one lifecycle:
    build over an environment, register per thread, operate through the
    handle, unregister, destroy. {!CONTAINER} captures exactly that core;
    {!STACK}, {!QUEUE}, {!DEQUE} and {!SET} extend it with their
    operations, so the test suite, linearizability checker, experiment
    harness and CLI can treat any structure uniformly and generically.

    Two conventions are uniform across the family:

    - every fallible (allocating) mutation has a [try_*] variant returning
      [(_, [ `Out_of_memory ]) result]: when the allocator fails the
      operation backs out with the structure and all reference counts
      untouched, instead of raising mid-update (the graceful-OOM
      discipline experiment E7 measures);
    - {!CONTAINER.with_env} brackets the whole lifecycle — create,
      register, run, unregister, destroy — with the teardown guaranteed
      even when the body raises, so one-shot uses (tests, examples, CLI
      probes) cannot leak roots. Implementations derive it with
      {!With_env}. *)

(** The lifecycle core every container shares, without the derived
    [with_env] — what {!With_env} consumes. *)
module type CORE = sig
  val name : string

  type t
  type handle
  (** Per-thread access handle (carries the thread's pointer-op context). *)

  val create : Lfrc_core.Env.t -> t

  val register : t -> handle
  (** Call once per (simulated or real) thread. *)

  val unregister : handle -> unit

  val destroy : t -> unit
  (** Drain and release everything, including the structure's own roots.
      Must only be called after all threads have finished accessing the
      structure. *)
end

module type CONTAINER = sig
  include CORE

  val with_env : Lfrc_core.Env.t -> (handle -> 'a) -> 'a
  (** [with_env env f] creates the structure, registers a handle, runs
      [f handle], then unregisters and destroys — teardown running (in
      that order) even when [f] raises. Single-threaded convenience; for
      multi-threaded use, call {!CORE.register} per thread yourself. *)
end

(** Concurrent LIFO. *)
module type STACK = sig
  include CONTAINER

  val push : handle -> int -> unit

  val try_push : handle -> int -> (unit, [ `Out_of_memory ]) result
  (** Like [push], but when the allocator fails the operation backs out
      with the structure and all reference counts untouched, instead of
      raising mid-update. *)

  val pop : handle -> int option
end

(** Concurrent FIFO. *)
module type QUEUE = sig
  include CONTAINER

  val enqueue : handle -> int -> unit

  val try_enqueue : handle -> int -> (unit, [ `Out_of_memory ]) result
  (** Like [enqueue], but when the allocator fails the operation backs out
      with the structure and all reference counts untouched, instead of
      raising mid-update. *)

  val dequeue : handle -> int option
end

(** Concurrent double-ended queue — the paper's Snark shape. *)
module type DEQUE = sig
  include CONTAINER

  val push_left : handle -> int -> unit
  val push_right : handle -> int -> unit

  val try_push_left : handle -> int -> (unit, [ `Out_of_memory ]) result
  val try_push_right : handle -> int -> (unit, [ `Out_of_memory ]) result
  (** Like the push operations, but when the allocator fails they back out
      with the deque and all reference counts untouched, instead of
      raising mid-update. *)

  val pop_left : handle -> int option
  val pop_right : handle -> int option
end

(** Concurrent set of integers. *)
module type SET = sig
  include CONTAINER

  val insert : handle -> int -> bool
  (** False if the value was already present. *)

  val try_insert : handle -> int -> (bool, [ `Out_of_memory ]) result
  (** Like [insert], but an allocator failure backs out instead of
      raising. *)

  val remove : handle -> int -> bool
  (** False if the value was absent. *)

  val contains : handle -> int -> bool

  val to_list : handle -> int list
  (** Snapshot traversal (ascending); only meaningful quiescently. *)
end

(** Derive {!CONTAINER.with_env} from the lifecycle core. Implementations
    end with [include With_env (struct ... end)] over their own
    operations. *)
module With_env (C : CORE) : sig
  val with_env : Lfrc_core.Env.t -> (C.handle -> 'a) -> 'a
end = struct
  let with_env env f =
    let t = C.create env in
    Fun.protect
      ~finally:(fun () -> C.destroy t)
      (fun () ->
        let h = C.register t in
        Fun.protect ~finally:(fun () -> C.unregister h) (fun () -> f h))
end
