module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout

let null = Heap.null
let max_level = 8

(* Data nodes are the ordered list's (key, next); index nodes form towers
   above them: right-pointers walk a level, down-pointers descend, node
   points at the data node whose liveness they mirror. *)
let data_layout = Layout.make ~name:"skip-data" ~n_ptrs:1 ~n_vals:1
let index_layout = Layout.make ~name:"skip-index" ~n_ptrs:3 ~n_vals:0

let data_next = 0
let data_key = 0
let idx_right = 0
let idx_down = 1
let idx_node = 2

module Make (O : Lfrc_core.Ops_intf.OPS) = struct
  let name = "skiplist-" ^ O.name

  type t = {
    env : Lfrc_core.Env.t;
    heap : Heap.t;
    data_head : Lfrc_simmem.Cell.t; (* root -> first data node chain *)
    tomb : Lfrc_simmem.Cell.t; (* root -> tombstone sentinel *)
    heads : Lfrc_simmem.Cell.t array; (* root index-level entry points, 0 = level 1 *)
  }

  type handle = { t : t; ctx : O.ctx; rng : Lfrc_util.Rng.t }

  let dnext t p = Heap.ptr_cell t.heap p data_next
  let dkey t ctx p = O.read_val ctx (Heap.val_cell t.heap p data_key)
  let iright t p = Heap.ptr_cell t.heap p idx_right
  let idown t p = Heap.ptr_cell t.heap p idx_down
  let inode t p = Heap.ptr_cell t.heap p idx_node

  let create env =
    let heap = Lfrc_core.Env.heap env in
    let ctx = O.make_ctx env in
    let data_head = Heap.root heap ~name:"skip-head" () in
    let tomb = Heap.root heap ~name:"skip-tomb" () in
    let l = O.declare ctx in
    O.alloc ctx data_layout l;
    O.store_alloc ctx tomb l;
    O.retire ctx l;
    O.dispose_ctx ctx;
    {
      env;
      heap;
      data_head;
      tomb;
      heads = Array.init max_level (fun i -> Heap.root heap ~name:(Printf.sprintf "skip-L%d" (i + 1)) ());
    }

  let register ?(seed = 0x5EED) t =
    { t; ctx = O.make_ctx t.env; rng = Lfrc_util.Rng.create seed }

  let unregister h = O.dispose_ctx h.ctx

  (* A data node is dead once its next pointer is the tombstone. *)
  let is_dead ctx t ~tm ~probe p =
    O.load ctx (dnext t p) probe;
    O.get probe = O.get tm

  (* --- data level: the DCAS ordered list, parameterized by a starting
     predecessor (the index search's hand-off) --- *)

  (* Position [prev]/[cur] for [key], walking from [start] (null = list
     head). Returns whether [cur] holds [key]; [nxt] ends as cur's
     successor. Restarts from the very head whenever a tombstone is
     stepped on. *)
  let data_search ctx t key ~start ~tm ~prev ~cur ~nxt =
    let rec restart ~from_start =
      if from_start && O.get start <> null then begin
        O.copy ctx prev (O.get start);
        (* the hand-off node may itself be dying: fall back to the head *)
        O.load ctx (dnext t (O.get prev)) cur;
        if O.get cur = O.get tm then begin
          O.set_null ctx start;
          restart ~from_start:false
        end
        else advance ()
      end
      else begin
        (* prev = null means the list head cell is the predecessor link *)
        O.set_null ctx prev;
        O.load ctx t.data_head cur;
        advance ()
      end
    and advance () =
      if O.get cur = null then false
      else begin
        O.load ctx (dnext t (O.get cur)) nxt;
        if O.get nxt = O.get tm then restart ~from_start:false
        else begin
          let k = dkey t ctx (O.get cur) in
          if k >= key then k = key
          else begin
            O.copy ctx prev (O.get cur);
            O.copy ctx cur (O.get nxt);
            advance ()
          end
        end
      end
    in
    restart ~from_start:true

  let prev_cell t ~prev =
    if O.get prev = null then t.data_head else dnext t (O.get prev)

  (* --- index levels --- *)

  (* Walk one index level rightward while the indexed keys are < key,
     pruning entries whose data node is dead. The walk starts at [from]
     (an index node of this level — the down-pointer of the level above's
     predecessor, the classic descent) or at the level's [entry] link when
     [from] is null. Leaves [iprev] at the rightmost index node with
     key < key (null = the entry link) and accumulates the best
     data-level predecessor in [out_start]. *)
  let index_walk ctx t key ~entry ~from ~tm ~iprev ~icur ~probe ~tmp
      ~out_start =
    if O.get from <> null then begin
      O.copy ctx iprev (O.get from);
      O.load ctx (iright t (O.get iprev)) icur
    end
    else begin
      O.set_null ctx iprev;
      O.load ctx entry icur
    end;
    let rec go () =
      if O.get icur = null then ()
      else begin
        O.load ctx (inode t (O.get icur)) tmp;
        let node = O.get tmp in
        if is_dead ctx t ~tm ~probe node then begin
          (* prune: unlink this index entry and re-read the link *)
          O.load ctx (iright t (O.get icur)) tmp;
          let link =
            if O.get iprev = null then entry else iright t (O.get iprev)
          in
          ignore (O.cas ctx link ~old_ptr:(O.get icur) ~new_ptr:(O.get tmp));
          O.load ctx link icur;
          go ()
        end
        else begin
          let k = dkey t ctx node in
          if k < key then begin
            O.copy ctx iprev (O.get icur);
            O.copy ctx out_start node;
            O.load ctx (iright t (O.get icur)) icur;
            go ()
          end
          else ()
        end
      end
    in
    go ()

  (* Full search: descend the index — each level starts at the previous
     level predecessor's down-pointer — then walk the data level from the
     hand-off. [preds.(l)] receives the level-(l+1) index predecessor (for
     tower insertion). *)
  let search ctx t key ~tm ~preds ~start ~from ~prev ~cur ~nxt ~icur ~probe
      ~tmp =
    O.set_null ctx start;
    for l = max_level - 1 downto 0 do
      if l = max_level - 1 || O.get preds.(l + 1) = null then
        O.set_null ctx from
      else O.load ctx (idown t (O.get preds.(l + 1))) from;
      index_walk ctx t key ~entry:t.heads.(l) ~from ~tm ~iprev:preds.(l)
        ~icur ~probe ~tmp ~out_start:start
    done;
    data_search ctx t key ~start ~tm ~prev ~cur ~nxt

  (* Geometric tower height: level i+1 with probability 2^-(i+1). *)
  let random_level rng =
    let rec go l =
      if l < max_level && Lfrc_util.Rng.bool rng then go (l + 1) else l
    in
    go 1

  type locals = {
    tm : O.local;
    preds : O.local array;
    start : O.local;
    from : O.local;
    prev : O.local;
    cur : O.local;
    nxt : O.local;
    icur : O.local;
    probe : O.local;
    tmp : O.local;
  }

  let with_locals h f =
    let ctx = h.ctx in
    let ls =
      {
        tm = O.declare ctx;
        preds = Array.init max_level (fun _ -> O.declare ctx);
        start = O.declare ctx;
        from = O.declare ctx;
        prev = O.declare ctx;
        cur = O.declare ctx;
        nxt = O.declare ctx;
        icur = O.declare ctx;
        probe = O.declare ctx;
        tmp = O.declare ctx;
      }
    in
    O.load ctx h.t.tomb ls.tm;
    let r = f ctx h.t ls in
    Array.iter (O.retire ctx) ls.preds;
    List.iter (O.retire ctx)
      [
        ls.tm; ls.start; ls.from; ls.prev; ls.cur; ls.nxt; ls.icur; ls.probe;
        ls.tmp;
      ];
    r

  let contains h key =
    with_locals h (fun ctx t ls ->
        search ctx t key ~tm:ls.tm ~preds:ls.preds ~start:ls.start
          ~from:ls.from ~prev:ls.prev ~cur:ls.cur ~nxt:ls.nxt ~icur:ls.icur
          ~probe:ls.probe ~tmp:ls.tmp)

  (* Link one index node for [node] at level [lvl] (0-based), above
     [below] (the level underneath's index node, null for level 0). The
     new index node is returned through [below] for the next storey.
     False when the allocator fails — the caller abandons the rest of the
     tower (upper levels are best-effort shortcuts). *)
  let link_index ctx t ls ~key ~node ~lvl ~below =
    let rec attempt () =
      (* refresh this level's predecessor, descending from the level
         above's (kept fresh by the enclosing insert) *)
      if lvl = max_level - 1 || O.get ls.preds.(lvl + 1) = null then
        O.set_null ctx ls.from
      else O.load ctx (idown t (O.get ls.preds.(lvl + 1))) ls.from;
      index_walk ctx t key ~entry:t.heads.(lvl) ~from:ls.from ~tm:ls.tm
        ~iprev:ls.preds.(lvl) ~icur:ls.icur ~probe:ls.probe ~tmp:ls.tmp
        ~out_start:ls.start;
      let link =
        if O.get ls.preds.(lvl) = null then t.heads.(lvl)
        else iright t (O.get ls.preds.(lvl))
      in
      (* the walk's [icur] is the successor it read from [link]; using it
         as the CAS expectation keeps the level sorted — a re-read could
         see a racing smaller-key insert *)
      let idx = O.declare ctx in
      if not (O.try_alloc ctx index_layout idx) then begin
        O.retire ctx idx;
        false
      end
      else begin
        O.store ctx (iright t (O.get idx)) (O.get ls.icur);
        O.store ctx (idown t (O.get idx)) (O.get below);
        O.store ctx (inode t (O.get idx)) node;
        let installed =
          O.cas ctx link ~old_ptr:(O.get ls.icur) ~new_ptr:(O.get idx)
        in
        if installed then begin
          O.copy ctx below (O.get idx);
          O.retire ctx idx;
          true
        end
        else begin
          O.retire ctx idx;
          attempt ()
        end
      end
    in
    attempt ()

  (* Unlink every index entry of [node]: walk each level and prune by
     identity (the generic dead-pruning in index_walk does the same job
     lazily; this is the remover's eager pass). *)
  let unlink_index ctx t ls ~node =
    for l = max_level - 1 downto 0 do
      let rec sweep link =
        O.load ctx link ls.icur;
        if O.get ls.icur <> null then begin
          O.load ctx (inode t (O.get ls.icur)) ls.tmp;
          if O.get ls.tmp = node then begin
            O.load ctx (iright t (O.get ls.icur)) ls.tmp;
            if not (O.cas ctx link ~old_ptr:(O.get ls.icur) ~new_ptr:(O.get ls.tmp))
            then sweep link (* interference: retry this link *)
            else sweep link (* idempotent: look again from the same link *)
          end
          else begin
            (* advance if the indexed key is still below ours; identity
               may sit behind equal keys momentarily, so walk through
               equal keys too *)
            let k = dkey t ctx (O.get ls.tmp) in
            if k <= O.read_val ctx (Heap.val_cell t.heap node data_key) then
              sweep (iright t (O.get ls.icur))
            else ()
          end
        end
      in
      sweep t.heads.(l)
    done

  let try_insert h key =
    with_locals h (fun ctx t ls ->
        let rec attempt () =
          if
            search ctx t key ~tm:ls.tm ~preds:ls.preds ~start:ls.start
              ~from:ls.from ~prev:ls.prev ~cur:ls.cur ~nxt:ls.nxt
              ~icur:ls.icur ~probe:ls.probe ~tmp:ls.tmp
          then Ok false
          else begin
            let nd = O.declare ctx in
            if not (O.try_alloc ctx data_layout nd) then begin
              (* Nothing written yet: back out with the set untouched. *)
              O.retire ctx nd;
              Error `Out_of_memory
            end
            else begin
              O.write_val ctx (Heap.val_cell t.heap (O.get nd) data_key) key;
              O.store ctx (dnext t (O.get nd)) (O.get ls.cur);
              let node = O.get nd in
              let installed =
                O.cas ctx (prev_cell t ~prev:ls.prev) ~old_ptr:(O.get ls.cur)
                  ~new_ptr:node
              in
              if not installed then begin
                O.retire ctx nd;
                attempt ()
              end
              else begin
                (* linearized; build the index tower best-effort — an
                   allocator failure mid-tower just leaves it shorter *)
                let height = random_level h.rng in
                let below = O.declare ctx in
                (try
                   for l = 0 to height - 2 do
                     if is_dead ctx t ~tm:ls.tm ~probe:ls.probe node then
                       raise Exit;
                     if not (link_index ctx t ls ~key ~node ~lvl:l ~below)
                     then raise Exit
                   done
                 with Exit -> ());
                (* close the link-vs-remove race: if the node died, make
                   sure no index entry survives *)
                if is_dead ctx t ~tm:ls.tm ~probe:ls.probe node then
                  unlink_index ctx t ls ~node;
                O.retire ctx below;
                O.retire ctx nd;
                Ok true
              end
            end
          end
        in
        attempt ())

  let insert h key =
    match try_insert h key with
    | Ok r -> r
    | Error `Out_of_memory -> raise Heap.Simulated_oom

  let remove h key =
    with_locals h (fun ctx t ls ->
        let rec attempt () =
          if
            not
              (search ctx t key ~tm:ls.tm ~preds:ls.preds ~start:ls.start
                 ~from:ls.from ~prev:ls.prev ~cur:ls.cur ~nxt:ls.nxt
                 ~icur:ls.icur ~probe:ls.probe ~tmp:ls.tmp)
          then false
          else begin
            let node = O.get ls.cur in
            (* unlink from the data level: the linearization *)
            if
              O.dcas ctx (prev_cell t ~prev:ls.prev) (dnext t node)
                ~old0:node ~old1:(O.get ls.nxt) ~new0:(O.get ls.nxt)
                ~new1:(O.get ls.tm)
            then begin
              unlink_index ctx t ls ~node;
              true
            end
            else if is_dead ctx t ~tm:ls.tm ~probe:ls.probe node then false
              (* somebody else removed it first *)
            else attempt ()
          end
        in
        attempt ())

  let to_list h =
    with_locals h (fun ctx t ls ->
        O.load ctx t.data_head ls.cur;
        let rec go acc =
          if O.get ls.cur = null then List.rev acc
          else begin
            let k = dkey t ctx (O.get ls.cur) in
            O.load ctx (dnext t (O.get ls.cur)) ls.nxt;
            let v = O.get ls.nxt in
            if v = O.get ls.tm then List.rev acc (* quiescent: shouldn't happen *)
            else begin
              O.copy ctx ls.cur v;
              go (k :: acc)
            end
          end
        in
        go [])

  let height_histogram h =
    with_locals h (fun ctx t ls ->
        let hist = Array.make max_level 0 in
        (* level 1 = data-only nodes; count index towers per node *)
        let towers = Hashtbl.create 64 in
        for l = 0 to max_level - 1 do
          O.load ctx t.heads.(l) ls.icur;
          let rec walk () =
            if O.get ls.icur <> null then begin
              O.load ctx (inode t (O.get ls.icur)) ls.tmp;
              let node = O.get ls.tmp in
              let cur_h = Option.value ~default:1 (Hashtbl.find_opt towers node) in
              Hashtbl.replace towers node (max cur_h (l + 2));
              O.load ctx (iright t (O.get ls.icur)) ls.icur;
              walk ()
            end
          in
          walk ()
        done;
        O.load ctx t.data_head ls.cur;
        let rec datas () =
          if O.get ls.cur <> null then begin
            let node = O.get ls.cur in
            let height = Option.value ~default:1 (Hashtbl.find_opt towers node) in
            hist.(height - 1) <- hist.(height - 1) + 1;
            O.load ctx (dnext t node) ls.cur;
            datas ()
          end
        in
        datas ();
        hist)

  let destroy t =
    let ctx = O.make_ctx t.env in
    Array.iter
      (fun head ->
        O.store ctx head null;
        Heap.release_root t.heap head)
      t.heads;
    O.store ctx t.data_head null;
    O.store ctx t.tomb null;
    Heap.release_root t.heap t.data_head;
    Heap.release_root t.heap t.tomb;
    O.dispose_ctx ctx

  include Container_intf.With_env (struct
    let name = name

    type nonrec t = t
    type nonrec handle = handle

    let create = create
    let register t = register t
    let unregister = unregister
    let destroy = destroy
  end)
end

module As_set (O : Lfrc_core.Ops_intf.OPS) : Container_intf.SET = struct
  include Make (O)

  (* The uniform signature has no room for the seed: eta-expand to the
     deterministic default stream. *)
  let register t = register t
end
