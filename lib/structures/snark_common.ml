(** Shared core of the two Snark variants: the anchor object, the
    constructor (paper Figure 1 lines 31..39), the push operation (lines
    49..68) and the destructor (lines 40..44). The published and corrected
    deques differ only in how they pop; see {!Snark} and {!Snark_fixed}. *)

module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell

let null = Heap.null

(* Left and right operations are mirror images; a [side] names the slots
   so each algorithm is written once. For a push/pop on side S, [out_slot]
   is the node link facing away from the deque (R for the right side) and
   [in_slot] the link facing into it (L for the right side). *)
type side = {
  out_slot : int;
  in_slot : int;
  hat_slot : int;
  other_hat_slot : int;
}

let right_side =
  {
    out_slot = Snode.slot_r;
    in_slot = Snode.slot_l;
    hat_slot = Snode.slot_right_hat;
    other_hat_slot = Snode.slot_left_hat;
  }

let left_side =
  {
    out_slot = Snode.slot_l;
    in_slot = Snode.slot_r;
    hat_slot = Snode.slot_left_hat;
    other_hat_slot = Snode.slot_right_hat;
  }

module Core (O : Lfrc_core.Ops_intf.OPS) = struct
  type t = {
    env : Lfrc_core.Env.t;
    heap : Heap.t;
    root : Cell.t;
    anchor_cells : Cell.t array; (* Dummy, LeftHat, RightHat *)
  }

  type handle = { t : t; ctx : O.ctx }

  let hat t side = t.anchor_cells.(side.hat_slot)
  let other_hat t side = t.anchor_cells.(side.other_hat_slot)
  let dummy_cell t = t.anchor_cells.(Snode.slot_dummy)
  let slot_cell t p slot = Heap.ptr_cell t.heap p slot

  (* Constructor: paper Figure 1, lines 34..39. The SNode constructor's
     null-initialization (line 32) is the heap allocator's contract. *)
  let create env =
    let heap = Lfrc_core.Env.heap env in
    let ctx = O.make_ctx env in
    let anchor_l = O.declare ctx in
    O.alloc ctx Snode.snark anchor_l;
    let anchor = O.get anchor_l in
    let anchor_cells = Array.init 3 (fun i -> Heap.ptr_cell heap anchor i) in
    let t_root = Heap.root heap ~name:"snark" () in
    let d = O.declare ctx in
    O.alloc ctx Snode.snode d;
    (* line 35: LFRCStoreAlloc(&Dummy, new SNode) *)
    O.store_alloc ctx anchor_cells.(Snode.slot_dummy) d;
    (* lines 36..37: Dummy->L = Dummy->R = null — established by the
       allocator; lines 38..39: both hats point at Dummy. *)
    let dm = O.declare ctx in
    O.load ctx anchor_cells.(Snode.slot_dummy) dm;
    O.store ctx anchor_cells.(Snode.slot_left_hat) (O.get dm);
    O.store ctx anchor_cells.(Snode.slot_right_hat) (O.get dm);
    O.retire ctx dm;
    O.retire ctx d;
    (* The structure's reference to the anchor lives in a registered
       root. *)
    O.store_alloc ctx t_root anchor_l;
    O.retire ctx anchor_l;
    O.dispose_ctx ctx;
    { env; heap; root = t_root; anchor_cells }

  let register t = { t; ctx = O.make_ctx t.env }
  let unregister h = O.dispose_ctx h.ctx

  (* pushRight: paper Figure 1 lines 49..68 (mirrored for pushLeft). *)
  let try_push h side v =
    let t = h.t and ctx = h.ctx in
    let nd = O.declare ctx
    and rh = O.declare ctx
    and rh_out = O.declare ctx
    and lh = O.declare ctx
    and dm = O.declare ctx in
    let retire_all () = List.iter (O.retire ctx) [ nd; rh; rh_out; lh; dm ] in
    (* line 49's allocation is the only fallible step; it precedes every
       write to the deque, so an OOM backs out with nothing to undo. *)
    if not (O.try_alloc ctx Snode.snode nd) then begin
      retire_all ();
      Error `Out_of_memory
    end
    else begin
    O.load ctx (dummy_cell t) dm;
    (* line 54: nd->R = Dummy *)
    O.store ctx (slot_cell t (O.get nd) side.out_slot) (O.get dm);
    (* line 55: nd->V = v *)
    O.write_val ctx (Snode.v_cell t.heap (O.get nd)) v;
    let rec loop () =
      O.load ctx (hat t side) rh (* line 57 *);
      O.load ctx (slot_cell t (O.get rh) side.out_slot) rh_out (* line 58 *);
      if O.get rh_out = null then begin
        (* lines 59..62: the deque looks empty from this side *)
        O.store ctx (slot_cell t (O.get nd) side.in_slot) (O.get dm);
        O.load ctx (other_hat t side) lh;
        if
          O.dcas ctx (hat t side) (other_hat t side) ~old0:(O.get rh)
            ~old1:(O.get lh) ~new0:(O.get nd) ~new1:(O.get nd)
        then ()
        else loop ()
      end
      else begin
        (* lines 65..66: splice at this side's end *)
        O.store ctx (slot_cell t (O.get nd) side.in_slot) (O.get rh);
        if
          O.dcas ctx (hat t side)
            (slot_cell t (O.get rh) side.out_slot)
            ~old0:(O.get rh) ~old1:(O.get rh_out) ~new0:(O.get nd)
            ~new1:(O.get nd)
        then ()
        else loop ()
      end
    in
    loop ();
    retire_all ();
    Ok ()
    end

  let push h side v =
    match try_push h side v with
    | Ok () -> ()
    | Error `Out_of_memory -> raise Heap.Simulated_oom

  (* Destructor: paper Figure 1 lines 40..44. Quiescent use only;
     [pop_left] is supplied by the variant. *)
  let destroy_with ~pop_left t =
    let ctx = O.make_ctx t.env in
    let h = { t; ctx } in
    let rec drain () = if pop_left h <> None then drain () in
    drain ();
    O.store ctx (dummy_cell t) null;
    O.store ctx t.anchor_cells.(Snode.slot_left_hat) null;
    O.store ctx t.anchor_cells.(Snode.slot_right_hat) null;
    O.store ctx t.root null;
    Heap.release_root t.heap t.root;
    O.dispose_ctx ctx
end
