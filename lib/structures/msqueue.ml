module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout

let null = Heap.null

let node_layout = Layout.make ~name:"queue-node" ~n_ptrs:1 ~n_vals:1
let anchor_layout = Layout.make ~name:"queue-anchor" ~n_ptrs:2 ~n_vals:0

let next_slot = 0
let value_slot = 0
let head_slot = 0
let tail_slot = 1

module Make (O : Lfrc_core.Ops_intf.OPS_CAS) = struct
  let name = "msqueue-" ^ O.name

  type t = {
    env : Lfrc_core.Env.t;
    heap : Heap.t;
    root : Lfrc_simmem.Cell.t;
    head : Lfrc_simmem.Cell.t;
    tail : Lfrc_simmem.Cell.t;
  }

  type handle = { t : t; ctx : O.ctx }

  let next_cell t p = Heap.ptr_cell t.heap p next_slot
  let value_cell t p = Heap.val_cell t.heap p value_slot

  let create env =
    let heap = Lfrc_core.Env.heap env in
    let ctx = O.make_ctx env in
    let anchor_l = O.declare ctx in
    O.alloc ctx anchor_layout anchor_l;
    let anchor = O.get anchor_l in
    let head = Heap.ptr_cell heap anchor head_slot in
    let tail = Heap.ptr_cell heap anchor tail_slot in
    (* One dummy node; head and tail both point at it. *)
    let d = O.declare ctx and dm = O.declare ctx in
    O.alloc ctx node_layout d;
    O.store_alloc ctx head d;
    O.load ctx head dm;
    O.store ctx tail (O.get dm);
    O.retire ctx dm;
    O.retire ctx d;
    let root = Heap.root heap ~name:"msqueue" () in
    O.store_alloc ctx root anchor_l;
    O.retire ctx anchor_l;
    O.dispose_ctx ctx;
    { env; heap; root; head; tail }

  let register t = { t; ctx = O.make_ctx t.env }
  let unregister h = O.dispose_ctx h.ctx

  let try_enqueue h v =
    let ctx = h.ctx and t = h.t in
    let nd = O.declare ctx and tl = O.declare ctx and nx = O.declare ctx in
    let result =
      (* Allocation is the only fallible step and happens before the queue
         is touched, so an OOM backs out with nothing to undo. *)
      if not (O.try_alloc ctx node_layout nd) then Error `Out_of_memory
      else begin
        O.write_val ctx (value_cell t (O.get nd)) v;
        let rec loop () =
          O.load ctx t.tail tl;
          O.load ctx (next_cell t (O.get tl)) nx;
          if O.get nx = null then begin
            if
              O.cas ctx (next_cell t (O.get tl)) ~old_ptr:null
                ~new_ptr:(O.get nd)
            then
              (* Linearized; swing the tail (failure means someone helped). *)
              ignore (O.cas ctx t.tail ~old_ptr:(O.get tl) ~new_ptr:(O.get nd))
            else loop ()
          end
          else begin
            (* Tail is lagging: help it forward, then retry. *)
            ignore (O.cas ctx t.tail ~old_ptr:(O.get tl) ~new_ptr:(O.get nx));
            loop ()
          end
        in
        loop ();
        Ok ()
      end
    in
    O.retire ctx nd;
    O.retire ctx tl;
    O.retire ctx nx;
    result

  let enqueue h v =
    match try_enqueue h v with
    | Ok () -> ()
    | Error `Out_of_memory -> raise Heap.Simulated_oom

  let dequeue h =
    let ctx = h.ctx and t = h.t in
    let hd = O.declare ctx and tl = O.declare ctx and nx = O.declare ctx in
    let rec loop () =
      O.load ctx t.head hd;
      O.load ctx t.tail tl;
      O.load ctx (next_cell t (O.get hd)) nx;
      if O.get hd = O.get tl then begin
        if O.get nx = null then None
        else begin
          ignore (O.cas ctx t.tail ~old_ptr:(O.get tl) ~new_ptr:(O.get nx));
          loop ()
        end
      end
      else begin
        (* Read the value before the CAS: after it, another dequeuer may
           free the successor's content (Michael & Scott's own rule). *)
        let v = O.read_val ctx (value_cell t (O.get nx)) in
        if O.cas ctx t.head ~old_ptr:(O.get hd) ~new_ptr:(O.get nx) then
          Some v
        else loop ()
      end
    in
    let r = loop () in
    O.retire ctx hd;
    O.retire ctx tl;
    O.retire ctx nx;
    r

  let destroy t =
    let ctx = O.make_ctx t.env in
    let h = { t; ctx } in
    let rec drain () = if dequeue h <> None then drain () in
    drain ();
    O.store ctx t.head null;
    O.store ctx t.tail null;
    O.store ctx t.root null;
    Heap.release_root t.heap t.root;
    O.dispose_ctx ctx

  include Container_intf.With_env (struct
    let name = name

    type nonrec t = t
    type nonrec handle = handle

    let create = create
    let register = register
    let unregister = unregister
    let destroy = destroy
  end)
end
