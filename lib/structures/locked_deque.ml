module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Dcas = Lfrc_atomics.Dcas

let name = "locked"

let null = Heap.null

let node_layout = Layout.make ~name:"locked-node" ~n_ptrs:2 ~n_vals:1

let prev_slot = 0
let next_slot = 1
let value_slot = 0

type t = {
  env : Lfrc_core.Env.t;
  heap : Heap.t;
  lock : Lfrc_simmem.Cell.t; (* 0 free, 1 held *)
  head : Lfrc_simmem.Cell.t;
  tail : Lfrc_simmem.Cell.t;
}

type handle = t

let create env =
  let heap = Lfrc_core.Env.heap env in
  {
    env;
    heap;
    lock = Heap.root heap ~name:"deque-lock" ();
    head = Heap.root heap ~name:"deque-head" ();
    tail = Heap.root heap ~name:"deque-tail" ();
  }

let register t = t
let unregister _ = ()

let d t = Lfrc_core.Env.dcas t.env

let acquire t =
  let rec spin () =
    if not (Dcas.cas (d t) t.lock 0 1) then begin
      Domain.cpu_relax ();
      spin ()
    end
  in
  spin ()

let release t = Dcas.write (d t) t.lock 0

let with_lock t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f

let prev_cell t p = Heap.ptr_cell t.heap p prev_slot
let next_cell t p = Heap.ptr_cell t.heap p next_slot
let value_cell t p = Heap.val_cell t.heap p value_slot

(* Under the lock, pointer management is plain sequential code: raw reads
   and writes, immediate free. *)

let push_end t ~end_cell ~other_end_cell ~link_toward_other ~link_toward_end v =
  with_lock t (fun () ->
      let dc = d t in
      let nd = Heap.alloc t.heap node_layout in
      Dcas.write dc (value_cell t nd) v;
      let old_end = Dcas.read dc end_cell in
      if old_end = null then begin
        Dcas.write dc end_cell nd;
        Dcas.write dc other_end_cell nd
      end
      else begin
        Dcas.write dc (link_toward_other t nd) old_end;
        Dcas.write dc (link_toward_end t old_end) nd;
        Dcas.write dc end_cell nd
      end)

let pop_end t ~end_cell ~other_end_cell ~link_toward_other ~link_toward_end =
  with_lock t (fun () ->
      let dc = d t in
      let old_end = Dcas.read dc end_cell in
      if old_end = null then None
      else begin
        let v = Dcas.read dc (value_cell t old_end) in
        let neighbour = Dcas.read dc (link_toward_other t old_end) in
        if neighbour = null then begin
          Dcas.write dc end_cell null;
          Dcas.write dc other_end_cell null
        end
        else begin
          Dcas.write dc (link_toward_end t neighbour) null;
          Dcas.write dc end_cell neighbour
        end;
        Heap.free t.heap old_end;
        Some v
      end)

let push_right t v =
  push_end t ~end_cell:t.tail ~other_end_cell:t.head
    ~link_toward_other:prev_cell ~link_toward_end:next_cell v

let push_left t v =
  push_end t ~end_cell:t.head ~other_end_cell:t.tail
    ~link_toward_other:next_cell ~link_toward_end:prev_cell v

(* The allocation is the first action under the lock, before any deque
   cell is written, and [with_lock]'s protect releases the lock on the
   way out — so a simulated OOM leaves the deque untouched and unlocked. *)
let try_push_right t v =
  match push_right t v with
  | () -> Ok ()
  | exception Heap.Simulated_oom -> Error `Out_of_memory

let try_push_left t v =
  match push_left t v with
  | () -> Ok ()
  | exception Heap.Simulated_oom -> Error `Out_of_memory

let pop_right t =
  pop_end t ~end_cell:t.tail ~other_end_cell:t.head
    ~link_toward_other:prev_cell ~link_toward_end:next_cell

let pop_left t =
  pop_end t ~end_cell:t.head ~other_end_cell:t.tail
    ~link_toward_other:next_cell ~link_toward_end:prev_cell

let destroy t =
  let rec drain () = if pop_left t <> None then drain () in
  drain ();
  Heap.release_root t.heap t.lock;
  Heap.release_root t.heap t.head;
  Heap.release_root t.heap t.tail

include Container_intf.With_env (struct
  let name = name

  type nonrec t = t
  type nonrec handle = handle

  let create = create
  let register = register
  let unregister = unregister
  let destroy = destroy
end)
