module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout

let null = Heap.null

let node_layout = Layout.make ~name:"set-node" ~n_ptrs:1 ~n_vals:1

let next_slot = 0
let key_slot = 0

module Make (O : Lfrc_core.Ops_intf.OPS) = struct
  let name = "dlist-set-" ^ O.name

  type t = {
    env : Lfrc_core.Env.t;
    heap : Heap.t;
    head : Lfrc_simmem.Cell.t; (* root -> head sentinel node *)
    tomb : Lfrc_simmem.Cell.t; (* root -> tombstone sentinel node *)
  }

  type handle = { t : t; ctx : O.ctx }

  let next_cell t p = Heap.ptr_cell t.heap p next_slot
  let key_of t ctx p = O.read_val ctx (Heap.val_cell t.heap p key_slot)

  let create env =
    let heap = Lfrc_core.Env.heap env in
    let ctx = O.make_ctx env in
    let head = Heap.root heap ~name:"set-head" () in
    let tomb = Heap.root heap ~name:"set-tomb" () in
    let l = O.declare ctx in
    O.alloc ctx node_layout l;
    O.store_alloc ctx head l;
    O.alloc ctx node_layout l;
    O.store_alloc ctx tomb l;
    O.retire ctx l;
    O.dispose_ctx ctx;
    { env; heap; head; tomb }

  let register t = { t; ctx = O.make_ctx t.env }
  let unregister h = O.dispose_ctx h.ctx

  (* Search for [key]: position [prev]/[cur] so that every key strictly
     left of [cur] is < [key] and [cur] is the first node with key >=
     [key] (or null at the end). Restart whenever a node under our feet
     turns out deleted (its next points at the tombstone). Returns
     whether [cur] holds exactly [key]. *)
  let search ctx t key ~tm ~prev ~cur ~nxt =
    let rec restart () =
      O.load ctx t.head prev;
      O.load ctx (next_cell t (O.get prev)) cur;
      advance ()
    and advance () =
      if O.get cur = null then false
      else begin
        O.load ctx (next_cell t (O.get cur)) nxt;
        if O.get nxt = O.get tm then restart () (* cur was deleted *)
        else begin
          let k = key_of t ctx (O.get cur) in
          if k >= key then k = key
          else begin
            O.copy ctx prev (O.get cur);
            O.copy ctx cur (O.get nxt);
            advance ()
          end
        end
      end
    in
    restart ()

  let with_op h f =
    let ctx = h.ctx and t = h.t in
    let tm = O.declare ctx
    and prev = O.declare ctx
    and cur = O.declare ctx
    and nxt = O.declare ctx in
    O.load ctx t.tomb tm;
    let r = f ctx t ~tm ~prev ~cur ~nxt in
    List.iter (O.retire ctx) [ tm; prev; cur; nxt ];
    r

  let try_insert h key =
    with_op h (fun ctx t ~tm ~prev ~cur ~nxt ->
        let nd = O.declare ctx in
        let rec attempt () =
          if search ctx t key ~tm ~prev ~cur ~nxt then Ok false
          else if O.get nd = null && not (O.try_alloc ctx node_layout nd)
          then
            (* Allocation is the only fallible step and precedes any write
               to the list, so an OOM backs out with nothing to undo. *)
            Error `Out_of_memory
          else begin
            O.write_val ctx (Heap.val_cell t.heap (O.get nd) key_slot) key;
            O.store ctx (next_cell t (O.get nd)) (O.get cur);
            if
              O.cas ctx
                (next_cell t (O.get prev))
                ~old_ptr:(O.get cur) ~new_ptr:(O.get nd)
            then Ok true
            else attempt ()
          end
        in
        let r = attempt () in
        O.retire ctx nd;
        r)

  let insert h key =
    match try_insert h key with
    | Ok r -> r
    | Error `Out_of_memory -> raise Heap.Simulated_oom

  let remove h key =
    with_op h (fun ctx t ~tm ~prev ~cur ~nxt ->
        let rec attempt () =
          if not (search ctx t key ~tm ~prev ~cur ~nxt) then false
          else begin
            (* The search left [nxt] = cur.next (not the tombstone).
               Atomically swing prev past cur while cur's next is still
               [nxt], and tombstone cur in the same step — no insertion
               can slip between cur and its successor. *)
            if
              O.dcas ctx
                (next_cell t (O.get prev))
                (next_cell t (O.get cur))
                ~old0:(O.get cur) ~old1:(O.get nxt) ~new0:(O.get nxt)
                ~new1:(O.get tm)
            then true
            else attempt ()
          end
        in
        attempt ())

  let contains h key =
    with_op h (fun ctx t ~tm ~prev ~cur ~nxt ->
        search ctx t key ~tm ~prev ~cur ~nxt)

  let to_list h =
    with_op h (fun ctx t ~tm ~prev ~cur ~nxt ->
        ignore nxt;
        ignore tm;
        O.load ctx t.head prev;
        O.load ctx (next_cell t (O.get prev)) cur;
        let rec go acc =
          if O.get cur = null then List.rev acc
          else begin
            let k = key_of t ctx (O.get cur) in
            O.copy ctx prev (O.get cur);
            O.load ctx (next_cell t (O.get prev)) cur;
            go (k :: acc)
          end
        in
        go [])

  let destroy t =
    let ctx = O.make_ctx t.env in
    O.store ctx t.head null;
    O.store ctx t.tomb null;
    Heap.release_root t.heap t.head;
    Heap.release_root t.heap t.tomb;
    O.dispose_ctx ctx

  include Container_intf.With_env (struct
    let name = name

    type nonrec t = t
    type nonrec handle = handle

    let create = create
    let register = register
    let unregister = unregister
    let destroy = destroy
  end)
end
