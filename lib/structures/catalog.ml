(** The analyzable catalog: every shipped structure, packaged for the
    static discipline checker ([lib/analysis]).

    Each {!entry} declares the primitive {!tier} it needs — [Cas] for
    structures whose functor argument is {!Lfrc_core.Ops_intf.OPS_CAS},
    [Dcas] for those needing the full double-word signature — and packs a
    builder over exactly that minimal module type. The checker passes its
    recording instance (which satisfies the DCAS tier, hence both); the
    builder returns the structure's focal operations as named thunks. The
    checker runs the builder once (muted, so setup is not analyzed) and
    then symbolically enumerates the control-flow paths of each action,
    holding the entry to its declared tier's obligations (a [Cas]-tier
    path recording a DCAS is a violation).

    Actions use the [try_*] variants of allocating operations so the
    analyzer also covers the graceful-OOM back-out paths, and fixed small
    keys so value-comparison branches are driven by the checker's concolic
    value pool rather than by data. *)

type tier = Cas | Dcas

let tier_name = function Cas -> "cas" | Dcas -> "dcas"

let tier_of_name = function
  | "cas" -> Some Cas
  | "dcas" -> Some Dcas
  | _ -> None

type cas_ops = (module Lfrc_core.Ops_intf.OPS_CAS)
type dcas_ops = (module Lfrc_core.Ops_intf.OPS_DCAS)

type ops_module = dcas_ops
(** Compatibility alias: the historical "any OPS" module is the DCAS
    tier. *)

type actions = (string * (unit -> unit)) list

(** The builder over the minimal module the entry's tier grants it. A
    [Cas]-tier entry receives only the single-word operations — its
    structures cannot even name [dcas]. *)
type pack =
  | Cas_pack of (cas_ops -> Lfrc_core.Env.t -> actions)
  | Dcas_pack of (dcas_ops -> Lfrc_core.Env.t -> actions)

type entry = { name : string; tier : tier; pack : pack }

let tier e = e.tier

(* Apply an entry's builder to a full (DCAS-tier) module: a [Cas]-tier
   entry sees it re-packed at the narrower signature — width subtyping at
   pack time — so the extra operations are unreachable inside. *)
let actions_over (module O : Lfrc_core.Ops_intf.OPS_DCAS) entry env =
  match entry.pack with
  | Cas_pack mk -> mk (module O : Lfrc_core.Ops_intf.OPS_CAS) env
  | Dcas_pack mk -> mk (module O : Lfrc_core.Ops_intf.OPS_DCAS) env

let treiber =
  {
    name = "treiber";
    tier = Cas;
    pack =
      Cas_pack
        (fun (module O : Lfrc_core.Ops_intf.OPS_CAS) env ->
          let module S = Treiber.Make (O) in
          let h = S.register (S.create env) in
          [
            ("try_push", fun () -> ignore (S.try_push h 42));
            ("pop", fun () -> ignore (S.pop h));
          ]);
  }

let msqueue =
  {
    name = "msqueue";
    tier = Cas;
    pack =
      Cas_pack
        (fun (module O : Lfrc_core.Ops_intf.OPS_CAS) env ->
          let module S = Msqueue.Make (O) in
          let h = S.register (S.create env) in
          [
            ("try_enqueue", fun () -> ignore (S.try_enqueue h 42));
            ("dequeue", fun () -> ignore (S.dequeue h));
          ]);
  }

let deque_actions (module S : Container_intf.DEQUE) env =
  let h = S.register (S.create env) in
  [
    ("try_push_right", fun () -> ignore (S.try_push_right h 42));
    ("try_push_left", fun () -> ignore (S.try_push_left h 42));
    ("pop_right", fun () -> ignore (S.pop_right h));
    ("pop_left", fun () -> ignore (S.pop_left h));
  ]

let sundell =
  {
    name = "sundell";
    tier = Cas;
    pack =
      Cas_pack
        (fun (module O : Lfrc_core.Ops_intf.OPS_CAS) env ->
          deque_actions (module Sundell_deque.Make (O)) env);
  }

let snark =
  {
    name = "snark";
    tier = Dcas;
    pack =
      Dcas_pack
        (fun (module O : Lfrc_core.Ops_intf.OPS_DCAS) env ->
          deque_actions (module Snark.Make (O)) env);
  }

let snark_fixed =
  {
    name = "snark-fixed";
    tier = Dcas;
    pack =
      Dcas_pack
        (fun (module O : Lfrc_core.Ops_intf.OPS_DCAS) env ->
          deque_actions (module Snark_fixed.Make (O)) env);
  }

let set_actions (module S : Container_intf.SET) env =
  let h = S.register (S.create env) in
  [
    ("try_insert", fun () -> ignore (S.try_insert h 7));
    (* A second key exercises the "already present" comparison arms the
       concolic pool unlocks once 7 is in play. *)
    ("try_insert_existing", fun () -> ignore (S.try_insert h 0));
    ("remove", fun () -> ignore (S.remove h 7));
    ("contains", fun () -> ignore (S.contains h 7));
    ("to_list", fun () -> ignore (S.to_list h));
  ]

let dlist_set =
  {
    name = "dlist-set";
    tier = Dcas;
    pack =
      Dcas_pack
        (fun (module O : Lfrc_core.Ops_intf.OPS_DCAS) env ->
          set_actions (module Dlist_set.Make (O)) env);
  }

let skiplist =
  {
    name = "skiplist";
    tier = Dcas;
    pack =
      Dcas_pack
        (fun (module O : Lfrc_core.Ops_intf.OPS_DCAS) env ->
          set_actions (module Skiplist.As_set (O)) env);
  }

let entries =
  [ treiber; msqueue; sundell; snark; snark_fixed; dlist_set; skiplist ]

let names ?tier () =
  List.filter_map
    (fun e ->
      match tier with
      | Some t when t <> e.tier -> None
      | _ -> Some e.name)
    entries

let find name = List.find_opt (fun e -> e.name = name) entries
