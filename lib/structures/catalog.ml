(** The analyzable catalog: every shipped structure, packaged for the
    static discipline checker ([lib/analysis]).

    An {!entry} knows how to build one instance of the structure over an
    arbitrary {!Ops_intf.OPS} module — the checker passes its recording
    instance — and returns the structure's focal operations as named
    thunks. The checker runs the builder once (muted, so setup is not
    analyzed) and then symbolically enumerates the control-flow paths of
    each action.

    Actions use the [try_*] variants of allocating operations so the
    analyzer also covers the graceful-OOM back-out paths, and fixed small
    keys so value-comparison branches are driven by the checker's concolic
    value pool rather than by data. *)

type ops_module = (module Lfrc_core.Ops_intf.OPS)

type entry = {
  name : string;
  actions : ops_module -> Lfrc_core.Env.t -> (string * (unit -> unit)) list;
      (** Build an instance over the given OPS and environment; return
          the named operations to analyze. Called exactly once per
          analysis, outside the recorded window. *)
}

let treiber =
  {
    name = "treiber";
    actions =
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let module S = Treiber.Make (O) in
        let h = S.register (S.create env) in
        [
          ("try_push", fun () -> ignore (S.try_push h 42));
          ("pop", fun () -> ignore (S.pop h));
        ]);
  }

let msqueue =
  {
    name = "msqueue";
    actions =
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let module S = Msqueue.Make (O) in
        let h = S.register (S.create env) in
        [
          ("try_enqueue", fun () -> ignore (S.try_enqueue h 42));
          ("dequeue", fun () -> ignore (S.dequeue h));
        ]);
  }

let deque_actions (module S : Container_intf.DEQUE) env =
  let h = S.register (S.create env) in
  [
    ("try_push_right", fun () -> ignore (S.try_push_right h 42));
    ("try_push_left", fun () -> ignore (S.try_push_left h 42));
    ("pop_right", fun () -> ignore (S.pop_right h));
    ("pop_left", fun () -> ignore (S.pop_left h));
  ]

let snark =
  {
    name = "snark";
    actions =
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        deque_actions (module Snark.Make (O)) env);
  }

let snark_fixed =
  {
    name = "snark-fixed";
    actions =
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        deque_actions (module Snark_fixed.Make (O)) env);
  }

let set_actions (module S : Container_intf.SET) env =
  let h = S.register (S.create env) in
  [
    ("try_insert", fun () -> ignore (S.try_insert h 7));
    (* A second key exercises the "already present" comparison arms the
       concolic pool unlocks once 7 is in play. *)
    ("try_insert_existing", fun () -> ignore (S.try_insert h 0));
    ("remove", fun () -> ignore (S.remove h 7));
    ("contains", fun () -> ignore (S.contains h 7));
    ("to_list", fun () -> ignore (S.to_list h));
  ]

let dlist_set =
  {
    name = "dlist-set";
    actions =
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        set_actions (module Dlist_set.Make (O)) env);
  }

let skiplist =
  {
    name = "skiplist";
    actions =
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        set_actions (module Skiplist.As_set (O)) env);
  }

let entries = [ treiber; msqueue; snark; snark_fixed; dlist_set; skiplist ]
let names = List.map (fun e -> e.name) entries
let find name = List.find_opt (fun e -> e.name = name) entries
