module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout

let null = Heap.null

(* Two pointer slots: [next] is the authoritative left-to-right chain
   from the head sentinel to the tail sentinel; [prev] is used only on
   the tail sentinel, as the right-end hint (Sundell–Tsigas prev links
   are hints there too — ours is just the degenerate single-cell case;
   regular nodes leave it null, deliberately, so no prev/next reference
   cycle can ever form among dead nodes). One value slot carries the
   element, the other the node kind. *)
let node_layout = Layout.make ~name:"sundell-node" ~n_ptrs:2 ~n_vals:2

let next_slot = 0
let prev_slot = 1
let value_slot = 0
let kind_slot = 1

(* Kinds: a list node carries an element; a marker is the CAS-only
   stand-in for the original algorithm's pointer mark bit. Deleting node
   [x] means CASing [x.next] from its successor [s] to a fresh marker
   whose own next is frozen at [s] — any CAS on [x.next] expecting [s]
   (an insertion after [x], a competing claim) fails from that moment on,
   which is exactly what the mark bit buys Sundell–Tsigas. *)
let kind_node = 0
let kind_marker = 1

module Make (O : Lfrc_core.Ops_intf.OPS_CAS) = struct
  let name = "sundell-" ^ O.name

  type t = {
    env : Lfrc_core.Env.t;
    heap : Heap.t;
    head : Lfrc_simmem.Cell.t; (* root -> left sentinel *)
    tail : Lfrc_simmem.Cell.t; (* root -> right sentinel *)
  }

  type handle = { t : t; ctx : O.ctx }

  let next_cell t p = Heap.ptr_cell t.heap p next_slot
  let hint_cell t p = Heap.ptr_cell t.heap p prev_slot
  let value_of t ctx p = O.read_val ctx (Heap.val_cell t.heap p value_slot)
  let kind_of t ctx p = O.read_val ctx (Heap.val_cell t.heap p kind_slot)
  let marked t ctx p = kind_of t ctx p = kind_marker

  let create env =
    let heap = Lfrc_core.Env.heap env in
    let ctx = O.make_ctx env in
    let head = Heap.root heap ~name:"sundell-head" () in
    let tail = Heap.root heap ~name:"sundell-tail" () in
    (* Link head.next = tail through the still-owned locals before
       publishing either sentinel (no load-back: the symbolic checker
       would answer it with null). *)
    let hd = O.declare ctx and tl = O.declare ctx in
    O.alloc ctx node_layout hd;
    O.write_val ctx (Heap.val_cell heap (O.get hd) kind_slot) kind_node;
    O.alloc ctx node_layout tl;
    O.write_val ctx (Heap.val_cell heap (O.get tl) kind_slot) kind_node;
    O.store ctx (Heap.ptr_cell heap (O.get hd) next_slot) (O.get tl);
    O.store_alloc ctx head hd;
    O.store_alloc ctx tail tl;
    O.retire ctx hd;
    O.retire ctx tl;
    O.dispose_ctx ctx;
    { env; heap; head; tail }

  let register t = { t; ctx = O.make_ctx t.env }
  let unregister h = O.dispose_ctx h.ctx

  (* Prepare the per-claim marker: fresh on the first attempt, reused
     (it is still unpublished) when a claim CAS failed. [succ] is the
     successor being frozen behind it. Returns false only on allocator
     failure with nothing written. *)
  let arm_marker ctx t ~m ~succ =
    if O.get m <> null || O.try_alloc ctx node_layout m then begin
      O.write_val ctx (Heap.val_cell t.heap (O.get m) kind_slot) kind_marker;
      O.store ctx (next_cell t (O.get m)) succ;
      true
    end
    else false

  (* pop_left claims the node [a] it observed as [head.next] by marking
     it — CASing [a.next] from the successor [w] it read to a fresh
     marker. The claim succeeding proves [a] was never marked in between
     (a marked node's next is its marker forever, and markers are fresh
     objects, so the CAS cannot ABA back), hence [a] stayed in the deque
     from the [head.next] read — where it was leftmost — until the claim:
     the operation linearizes at that read. Physical unlinking is best
     effort; later traversals excise marked nodes they meet. *)
  let pop_left h =
    let ctx = h.ctx and t = h.t in
    let hd = O.declare ctx
    and tl = O.declare ctx
    and a = O.declare ctx
    and w = O.declare ctx
    and wn = O.declare ctx
    and m = O.declare ctx in
    O.load ctx t.head hd;
    O.load ctx t.tail tl;
    let rec loop () =
      O.load ctx (next_cell t (O.get hd)) a;
      if O.get a = O.get tl then None
      else begin
        O.load ctx (next_cell t (O.get a)) w;
        if O.get w = null then loop ()
        else if marked t ctx (O.get w) then begin
          (* [a] is already claimed by someone: help unlink it (swing
             head.next to the successor frozen in the marker) and look
             again. *)
          O.load ctx (next_cell t (O.get w)) wn;
          ignore
            (O.cas ctx (next_cell t (O.get hd)) ~old_ptr:(O.get a)
               ~new_ptr:(O.get wn));
          loop ()
        end
        else if not (arm_marker ctx t ~m ~succ:(O.get w)) then loop ()
        else if
          O.cas ctx (next_cell t (O.get a)) ~old_ptr:(O.get w)
            ~new_ptr:(O.get m)
        then begin
          let v = value_of t ctx (O.get a) in
          ignore
            (O.cas ctx (next_cell t (O.get hd)) ~old_ptr:(O.get a)
               ~new_ptr:(O.get w));
          Some v
        end
        else loop ()
      end
    in
    let r = loop () in
    List.iter (O.retire ctx) [ hd; tl; a; w; wn; m ];
    r

  (* Walk the next chain from the head sentinel to the node whose next is
     the tail sentinel, excising marked nodes on the way (the lazy half
     of the deletion protocol). On return [pred] holds the rightmost
     list node — or the head sentinel, in which case the deque was
     observed empty at the moment [cur] was loaded from [pred.next]. A
     marked [cur] means [pred] itself was deleted under our feet (what we
     loaded from its next is its marker), so the only safe predecessor is
     back at the sentinel. [cur]/[w]/[wn] are scratch. *)
  let rightmost ctx t ~hd ~tl ~pred ~cur ~w ~wn =
    let rec go () =
      if O.get cur = O.get tl then ()
      else begin
        walk_step ();
        go ()
      end
    and walk_step () =
      if O.get cur = null || marked t ctx (O.get cur) then begin
        O.copy ctx pred (O.get hd);
        O.load ctx (next_cell t (O.get pred)) cur
      end
      else begin
        O.load ctx (next_cell t (O.get cur)) w;
        if O.get w = null then begin
          O.copy ctx pred (O.get hd);
          O.load ctx (next_cell t (O.get pred)) cur
        end
        else if marked t ctx (O.get w) then begin
          O.load ctx (next_cell t (O.get w)) wn;
          ignore
            (O.cas ctx (next_cell t (O.get pred)) ~old_ptr:(O.get cur)
               ~new_ptr:(O.get wn));
          O.load ctx (next_cell t (O.get pred)) cur
        end
        else begin
          O.copy ctx pred (O.get cur);
          O.copy ctx cur (O.get w)
        end
      end
    in
    O.copy ctx pred (O.get hd);
    O.load ctx (next_cell t (O.get pred)) cur;
    go ()

  (* push_right installs [x] (with [x.next] pre-stored as the tail
     sentinel) after the rightmost node [p] by CASing [p.next] from the
     sentinel to [x]. The CAS succeeding is the linearization point: it
     atomically certifies [p] was unmarked (a marked node's next is a
     marker, never the sentinel) and rightmost at that instant. The tail
     hint is refreshed after a successful push; it is only ever a hint —
     the slow path walks from the head sentinel. *)
  let try_push_right h v =
    let ctx = h.ctx and t = h.t in
    let hd = O.declare ctx
    and tl = O.declare ctx
    and x = O.declare ctx
    and p = O.declare ctx
    and cur = O.declare ctx
    and w = O.declare ctx
    and wn = O.declare ctx in
    O.load ctx t.head hd;
    O.load ctx t.tail tl;
    let result =
      (* Allocation is the only fallible step and happens before the
         deque is touched, so an OOM backs out with nothing to undo. *)
      if not (O.try_alloc ctx node_layout x) then Error `Out_of_memory
      else begin
        O.write_val ctx (Heap.val_cell t.heap (O.get x) value_slot) v;
        O.write_val ctx (Heap.val_cell t.heap (O.get x) kind_slot) kind_node;
        O.store ctx (next_cell t (O.get x)) (O.get tl);
        let publish () =
          O.store ctx (hint_cell t (O.get tl)) (O.get x);
          Ok ()
        in
        let rec slow () =
          rightmost ctx t ~hd ~tl ~pred:p ~cur ~w ~wn;
          if
            O.cas ctx (next_cell t (O.get p)) ~old_ptr:(O.get tl)
              ~new_ptr:(O.get x)
          then publish ()
          else slow ()
        in
        (* Fast path: the hint, validated by the claim CAS itself. *)
        O.load ctx (hint_cell t (O.get tl)) p;
        if
          O.get p <> null
          && (not (marked t ctx (O.get p)))
          && O.cas ctx (next_cell t (O.get p)) ~old_ptr:(O.get tl)
               ~new_ptr:(O.get x)
        then publish ()
        else slow ()
      end
    in
    List.iter (O.retire ctx) [ hd; tl; x; p; cur; w; wn ];
    result

  (* push_left has no hint to consult: [head.next] is authoritative. *)
  let try_push_left h v =
    let ctx = h.ctx and t = h.t in
    let hd = O.declare ctx and x = O.declare ctx and a = O.declare ctx in
    O.load ctx t.head hd;
    let result =
      if not (O.try_alloc ctx node_layout x) then Error `Out_of_memory
      else begin
        O.write_val ctx (Heap.val_cell t.heap (O.get x) value_slot) v;
        O.write_val ctx (Heap.val_cell t.heap (O.get x) kind_slot) kind_node;
        let rec loop () =
          O.load ctx (next_cell t (O.get hd)) a;
          O.store ctx (next_cell t (O.get x)) (O.get a);
          if
            O.cas ctx (next_cell t (O.get hd)) ~old_ptr:(O.get a)
              ~new_ptr:(O.get x)
          then Ok ()
          else loop ()
        in
        loop ()
      end
    in
    List.iter (O.retire ctx) [ hd; x; a ];
    result

  let push_right h v =
    match try_push_right h v with
    | Ok () -> ()
    | Error `Out_of_memory -> raise Heap.Simulated_oom

  let push_left h v =
    match try_push_left h v with
    | Ok () -> ()
    | Error `Out_of_memory -> raise Heap.Simulated_oom

  (* pop_right claims the rightmost node [p] by CASing [p.next] from the
     tail sentinel to a marker — one CAS that simultaneously certifies
     [p] is unmarked, still in the deque, and rightmost (only the last
     list node's next is the sentinel), and is therefore the
     linearization point. The empty answer linearizes at the walk's load
     that observed [head.next] = tail sentinel. *)
  let pop_right h =
    let ctx = h.ctx and t = h.t in
    let hd = O.declare ctx
    and tl = O.declare ctx
    and p = O.declare ctx
    and cur = O.declare ctx
    and w = O.declare ctx
    and wn = O.declare ctx
    and m = O.declare ctx in
    O.load ctx t.head hd;
    O.load ctx t.tail tl;
    let claim () =
      arm_marker ctx t ~m ~succ:(O.get tl)
      && O.cas ctx (next_cell t (O.get p)) ~old_ptr:(O.get tl)
           ~new_ptr:(O.get m)
    in
    let rec slow () =
      rightmost ctx t ~hd ~tl ~pred:p ~cur ~w ~wn;
      if O.get p = O.get hd then
        (* The walk loaded head.next and saw the tail sentinel: the deque
           was empty at that load. *)
        None
      else if claim () then Some (value_of t ctx (O.get p))
      else slow ()
    in
    let r =
      (* Fast path: the tail hint; any staleness fails the claim CAS and
         falls back to the walk. *)
      O.load ctx (hint_cell t (O.get tl)) p;
      if
        O.get p <> null
        && O.get p <> O.get hd
        && (not (marked t ctx (O.get p)))
        && claim ()
      then Some (value_of t ctx (O.get p))
      else slow ()
    in
    List.iter (O.retire ctx) [ hd; tl; p; cur; w; wn; m ];
    r

  let destroy t =
    let ctx = O.make_ctx t.env in
    let h = { t; ctx } in
    let rec drain () = if pop_left h <> None then drain () in
    drain ();
    let tl = O.declare ctx in
    O.load ctx t.tail tl;
    (* Break the hint's reference: a stale hint still points into the
       popped chain, whose frozen successors lead back to the tail
       sentinel — with the hint live that loop would keep itself alive
       with no root reaching it. *)
    O.store ctx (hint_cell t (O.get tl)) null;
    O.retire ctx tl;
    O.store ctx t.head null;
    O.store ctx t.tail null;
    Heap.release_root t.heap t.head;
    Heap.release_root t.heap t.tail;
    O.dispose_ctx ctx

  include Container_intf.With_env (struct
    let name = name

    type nonrec t = t
    type nonrec handle = handle

    let create = create
    let register = register
    let unregister = unregister
    let destroy = destroy
  end)
end
