(** A sorted-linked-list set with DCAS-based deletion, over the
    pointer-operation interface.

    The paper reports "several other candidate implementations in the
    pipeline" for the methodology (§2.1); this is one such structure,
    designed in the paper's own idiom. CAS-only ordered lists (Harris)
    need *marked pointers* — stealing a bit from the pointer word — which
    violates the paper's LFRC-compliance criterion (no pointer
    arithmetic). DCAS removes the need: a delete atomically swings
    [prev.next] past the victim *while verifying the victim's own next
    pointer is unchanged*, so no insertion can slip into the gap:

    {v delete cur:  DCAS(&prev.next, &cur.next, (cur, succ), (succ, null)) v}

    Nulling [cur.next] in the same step both "marks" the victim (any
    traverser holding [cur] sees the null and restarts) and severs the
    garbage chain (the paper's Cycle-Free Garbage criterion holds by
    construction).

    Linearization points: [insert] at its CAS; [remove] at its DCAS;
    [contains] at its last load. Values must be strictly increasing along
    the list; duplicates are rejected. *)

module Make (O : Lfrc_core.Ops_intf.OPS) : Container_intf.SET

val node_layout : Lfrc_simmem.Layout.t
