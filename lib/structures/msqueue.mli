(** The Michael–Scott lock-free queue [13] over the pointer-operation
    interface — the paper cites it as a structure whose published form
    needs either GC or a permanent free-list; under {!Lfrc_core.Lfrc_ops}
    its nodes are reclaimed eagerly and the ABA problem disappears.

    Garbage is cycle-free: a dequeued node's next pointer leads strictly
    toward newer nodes, so the paper's Cycle-Free Garbage criterion holds
    without modification. *)

module Make (O : Lfrc_core.Ops_intf.OPS_CAS) : Queue_intf.QUEUE
(** [Cas]-tier: needs no DCAS; the functor argument is the single-word
    signature, and any full-[OPS] module still applies. *)

val node_layout : Lfrc_simmem.Layout.t
val anchor_layout : Lfrc_simmem.Layout.t
