module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout

let null = Heap.null

let node_layout = Layout.make ~name:"stack-node" ~n_ptrs:1 ~n_vals:1

let next_slot = 0
let value_slot = 0

module Make (O : Lfrc_core.Ops_intf.OPS_CAS) = struct
  let name = "treiber-" ^ O.name

  type t = {
    env : Lfrc_core.Env.t;
    heap : Heap.t;
    top : Lfrc_simmem.Cell.t; (* rooted pointer to the top node *)
  }

  type handle = { t : t; ctx : O.ctx }

  let create env =
    let heap = Lfrc_core.Env.heap env in
    { env; heap; top = Heap.root heap ~name:"stack-top" () }

  let register t = { t; ctx = O.make_ctx t.env }
  let unregister h = O.dispose_ctx h.ctx

  let try_push h v =
    let ctx = h.ctx and t = h.t in
    let nd = O.declare ctx and top = O.declare ctx in
    let result =
      (* Allocation is the only fallible step and happens before the stack
         is touched, so an OOM backs out with nothing to undo. *)
      if not (O.try_alloc ctx node_layout nd) then Error `Out_of_memory
      else begin
        O.write_val ctx (Heap.val_cell t.heap (O.get nd) value_slot) v;
        let rec loop () =
          O.load ctx t.top top;
          O.store ctx (Heap.ptr_cell t.heap (O.get nd) next_slot) (O.get top);
          if O.cas ctx t.top ~old_ptr:(O.get top) ~new_ptr:(O.get nd) then ()
          else loop ()
        in
        loop ();
        Ok ()
      end
    in
    O.retire ctx nd;
    O.retire ctx top;
    result

  let push h v =
    match try_push h v with
    | Ok () -> ()
    | Error `Out_of_memory -> raise Heap.Simulated_oom

  let pop h =
    let ctx = h.ctx and t = h.t in
    let top = O.declare ctx and next = O.declare ctx in
    let rec loop () =
      O.load ctx t.top top;
      if O.get top = null then None
      else begin
        O.load ctx (Heap.ptr_cell t.heap (O.get top) next_slot) next;
        if O.cas ctx t.top ~old_ptr:(O.get top) ~new_ptr:(O.get next) then
          Some (O.read_val ctx (Heap.val_cell t.heap (O.get top) value_slot))
        else loop ()
      end
    in
    let r = loop () in
    O.retire ctx top;
    O.retire ctx next;
    r

  let destroy t =
    let ctx = O.make_ctx t.env in
    let h = { t; ctx } in
    let rec drain () = if pop h <> None then drain () in
    drain ();
    O.store ctx t.top null;
    Heap.release_root t.heap t.top;
    O.dispose_ctx ctx

  include Container_intf.With_env (struct
    let name = name

    type nonrec t = t
    type nonrec handle = handle

    let create = create
    let register = register
    let unregister = unregister
    let destroy = destroy
  end)
end
