(** The analyzable catalog: every shipped structure packaged for the
    static discipline checker (see [lib/analysis]), tagged with the
    primitive {!tier} it requires. *)

(** The primitive tier a structure needs from its [OPS] functor argument:
    [Cas] — single-word CAS only ({!Lfrc_core.Ops_intf.OPS_CAS});
    [Dcas] — the full double-word signature
    ({!Lfrc_core.Ops_intf.OPS_DCAS}). The tier is enforced twice: the
    type checker keeps [dcas] out of a [Cas]-tier builder's vocabulary,
    and the symbolic analyzer holds recorded traces of a claimed tier to
    its obligations (see [Lfrc_analysis.Absint]). *)
type tier = Cas | Dcas

val tier_name : tier -> string
(** ["cas"] / ["dcas"] — the CLI/report spelling. *)

val tier_of_name : string -> tier option
(** Inverse of {!tier_name}; [None] on anything else. *)

type cas_ops = (module Lfrc_core.Ops_intf.OPS_CAS)
type dcas_ops = (module Lfrc_core.Ops_intf.OPS_DCAS)

type ops_module = dcas_ops
(** Compatibility alias: the historical "any OPS" packed module is the
    DCAS tier (every full-[OPS] module satisfies both tiers). *)

type actions = (string * (unit -> unit)) list
(** A structure's focal operations as named thunks. *)

(** Build an instance over the minimal module the entry's tier grants it
    and return the operations to analyze. Called once per analysis,
    outside the recorded window (setup is not analyzed); each thunk is
    then re-run once per explored control-flow path. *)
type pack =
  | Cas_pack of (cas_ops -> Lfrc_core.Env.t -> actions)
  | Dcas_pack of (dcas_ops -> Lfrc_core.Env.t -> actions)

type entry = { name : string; tier : tier; pack : pack }

val tier : entry -> tier

val actions_over : dcas_ops -> entry -> Lfrc_core.Env.t -> actions
(** Apply an entry's builder to a full (DCAS-tier) module. A [Cas]-tier
    entry receives it re-packed at the narrower signature, so the
    double-word operations are unreachable inside the builder even though
    the underlying module (e.g. the checker's recorder) implements
    them. *)

val deque_actions : (module Container_intf.DEQUE) -> Lfrc_core.Env.t -> actions
val set_actions : (module Container_intf.SET) -> Lfrc_core.Env.t -> actions

val entries : entry list
(** All shipped structures: treiber, msqueue, sundell (Cas tier); snark,
    snark-fixed, dlist-set, skiplist (Dcas tier). *)

val names : ?tier:tier -> unit -> string list
(** Catalog names in entry order, optionally restricted to one tier. *)

val find : string -> entry option
