(** The analyzable catalog: every shipped structure packaged for the
    static discipline checker (see [lib/analysis]). *)

type ops_module = (module Lfrc_core.Ops_intf.OPS)

type entry = {
  name : string;
  actions : ops_module -> Lfrc_core.Env.t -> (string * (unit -> unit)) list;
      (** Build an instance of the structure over the given OPS module and
          environment and return its focal operations as named thunks.
          Called once per analysis, outside the recorded window (setup is
          not analyzed); each thunk is then re-run once per explored
          control-flow path. *)
}

val entries : entry list
(** All shipped structures: treiber, msqueue, snark, snark-fixed,
    dlist-set, skiplist. *)

val names : string list
val find : string -> entry option
