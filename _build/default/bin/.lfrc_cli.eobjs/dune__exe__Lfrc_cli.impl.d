bin/lfrc_cli.ml: Arg Cmd Cmdliner Lfrc_core Lfrc_harness Lfrc_sched Lfrc_structures Lfrc_util List Printf Term
