bin/lfrc_cli.mli:
