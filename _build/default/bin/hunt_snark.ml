(* Bug hunt for the published Snark deque (EXPERIMENTS.md A4).

   Runs families of small concurrent scenarios against the published
   algorithm under randomized, PCT and bounded-exhaustive scheduling,
   checking every history for linearizability against the sequential deque
   specification. Doherty et al. (SPAA 2004) proved such races exist; this
   program rediscovers one mechanically.

   Usage: hunt_snark [published|fixed] [seconds] *)

module Scenario = Lfrc_harness.Scenario
module Strategy = Lfrc_sched.Strategy

module Published = Lfrc_structures.Snark.Make (Lfrc_core.Lfrc_ops)
module Fixed = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

open Scenario

let scenarios :
    (string * int list * op list list) list =
  [
    ("2pre/popR+popL+pushR", [ 1; 2 ], [ [ Pop_right ]; [ Pop_left ]; [ Push_right 3 ] ]);
    ("1pre/popR+popL+pushL", [ 1 ], [ [ Pop_right ]; [ Pop_left ]; [ Push_left 3 ] ]);
    ("2pre/popR+popR+popL", [ 1; 2 ], [ [ Pop_right ]; [ Pop_right ]; [ Pop_left ] ]);
    ("1pre/2popR+popL+2pushR", [ 1 ],
     [ [ Pop_right; Pop_right ]; [ Pop_left ]; [ Push_right 3; Push_right 4 ] ]);
    ("0pre/mixed2", [],
     [ [ Push_right 1; Pop_left ]; [ Push_left 2; Pop_right ] ]);
    ("2pre/poppushR+poppushL", [ 1; 2 ],
     [ [ Pop_right; Push_right 3 ]; [ Pop_left; Push_left 4 ] ]);
    ("1pre/popR+popL+pushpopR", [ 1 ],
     [ [ Pop_right ]; [ Pop_left ]; [ Push_right 2; Pop_right ] ]);
    ("1pre/3way-churn", [ 1 ],
     [ [ Push_right 2; Pop_right ]; [ Pop_left; Push_left 3 ]; [ Pop_right ] ]);
  ]

let deadline = ref infinity

let expired () = Unix.gettimeofday () > !deadline

let report_violation name kind detail =
  Printf.printf "VIOLATION scenario=%s via=%s\n%s\n%!" name kind detail;
  exit 1

let hunt_random dq (name, preload, threads) =
  let seed = ref 0 in
  let start = Unix.gettimeofday () in
  while (not (expired ())) && Unix.gettimeofday () -. start < 30.0 do
    for _ = 0 to 499 do
      let strat =
        if !seed land 1 = 0 then Strategy.Random !seed
        else Strategy.Pct { seed = !seed; change_points = 3 }
      in
      (match Scenario.run dq ~preload ~threads strat with
      | { ok = false; history; _ } ->
          let buf = Buffer.create 256 in
          List.iter
            (fun (e : _ Lfrc_linearize.History.event) ->
              Buffer.add_string buf
                (Format.asprintf "  t%d: %a -> %a [%d,%d]\n" e.thread pp_op
                   e.op pp_res e.result e.invoked_at e.returned_at))
            history;
          report_violation name
            (Format.asprintf "random(seed=%d)" !seed)
            (Buffer.contents buf)
      | _ -> ()
      | exception exn ->
          report_violation name
            (Printf.sprintf "random(seed=%d)" !seed)
            (Printexc.to_string exn));
      incr seed
    done
  done;
  Printf.printf "  %s: %d randomized schedules clean\n%!" name !seed

let hunt_exhaustive dq (name, preload, threads) ~max_preemptions ~budget =
  if not (expired ()) then begin
    let body, check = Scenario.body_and_check dq ~preload ~threads () in
    match
      Lfrc_sched.Explore.check ~max_preemptions ~max_schedules:budget ~body
        ~check ()
    with
    | Lfrc_sched.Explore.Ok { schedules } ->
        Printf.printf "  %s: exhaustive(p<=%d) complete, %d schedules clean\n%!"
          name max_preemptions schedules
    | Lfrc_sched.Explore.Budget_exhausted { schedules } ->
        Printf.printf "  %s: exhaustive(p<=%d) budget out at %d schedules\n%!"
          name max_preemptions schedules
    | Lfrc_sched.Explore.Violation { schedules; exn; schedule; trace = _ } ->
        report_violation name
          (Printf.sprintf "exhaustive(p<=%d, after %d schedules, len %d)"
             max_preemptions schedules (Array.length schedule))
          (Printexc.to_string exn)
  end

let () =
  let variant = if Array.length Sys.argv > 1 then Sys.argv.(1) else "published" in
  let seconds =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 240.0
  in
  deadline := Unix.gettimeofday () +. seconds;
  let dq : (module Lfrc_structures.Deque_intf.DEQUE) =
    match variant with
    | "fixed" -> (module Fixed)
    | _ -> (module Published)
  in
  Printf.printf "hunting %s for %.0fs...\n%!" variant seconds;
  List.iter (fun sc -> hunt_random dq sc) scenarios;
  List.iter
    (fun sc -> hunt_exhaustive dq sc ~max_preemptions:2 ~budget:50_000)
    scenarios;
  List.iter
    (fun sc -> hunt_exhaustive dq sc ~max_preemptions:3 ~budget:100_000)
    scenarios;
  Printf.printf "no violation found within budget\n%!"
