bin/hunt_snark.mli:
