bin/hunt_snark.ml: Array Buffer Format Lfrc_core Lfrc_harness Lfrc_linearize Lfrc_sched Lfrc_structures List Printexc Printf Sys Unix
