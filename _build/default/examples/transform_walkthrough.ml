(* The paper's six-step methodology, narrated on a real structure.

   Section 3 of the paper lists six steps for transforming a
   GC-dependent implementation into a GC-independent one. In this
   repository the transformation is a functor application: the Treiber
   stack below is ONE piece of code over the paper's pointer-operation
   interface, instantiated twice. This program walks through the steps,
   runs both instantiations side by side, and shows where each step lives
   in the code base.

   Run with: dune exec examples/transform_walkthrough.exe *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env

module Gc_stack = Lfrc_structures.Treiber.Make (Lfrc_core.Gc_ops)
module Lfrc_stack = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)

let step n title detail =
  Printf.printf "\nStep %d — %s\n  %s\n" n title detail

let () =
  print_endline "The LFRC methodology (paper Section 3), step by step:";

  step 1 "Add reference counts"
    "Every heap object carries an rc cell (cell 0) set to 1 by the\n\
    \  allocator — lib/simmem/layout.ml and Heap.alloc.";
  step 2 "Provide LFRCDestroy"
    "Lfrc.destroy decrements, and at zero destroys the object's pointer\n\
    \  slots and frees it — lib/lfrc/lfrc.ml (three policies).";
  step 3 "Ensure no garbage cycles"
    "The deques install null instead of sentinel self-pointers, exactly\n\
    \  the paper's own modification; test_cycle shows what happens\n\
    \  otherwise, and lib/cycle is the paper's backup-tracer extension.";
  step 4 "Produce correctly-typed LFRC operations"
    "The operation set is the module type Ops_intf.OPS; Lfrc_ops\n\
    \  implements it for every layout (ids make pointers uniform).";
  step 5 "Replace pointer operations (Table 1)"
    "Structures are functors over OPS, so the replacement is the functor\n\
    \  argument: Treiber.Make(Gc_ops) vs Treiber.Make(Lfrc_ops). The type\n\
    \  checker forbids stray raw pointer accesses.";
  step 6 "Manage local pointer variables"
    "OPS.declare/retire bracket thread locals: Gc_ops registers them in a\n\
    \  shadow-stack frame for the tracer; Lfrc_ops counts them and\n\
    \  retire performs the paper's LFRCDestroy-on-scope-exit.";

  (* Run the same workload through both instantiations. *)
  let workload (type t h) name
      (module S : Lfrc_structures.Stack_intf.STACK
        with type t = t
         and type handle = h) heap env =
    let s = S.create env in
    let hd = S.register s in
    for i = 1 to 1_000 do
      S.push hd i
    done;
    for _ = 1 to 600 do
      ignore (S.pop hd)
    done;
    let mid = Heap.live_count heap in
    for _ = 1 to 400 do
      ignore (S.pop hd)
    done;
    S.unregister hd;
    S.destroy s;
    Printf.printf "  %-12s live after 600 pops: %4d   after all pops: %4d\n"
      name mid (Heap.live_count heap)
  in

  print_endline "\nRunning 1000 pushes + 1000 pops through both worlds:";
  let heap_gc = Heap.create ~name:"walk-gc" () in
  let env_gc = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap_gc in
  workload "GC-dependent" (module Gc_stack) heap_gc env_gc;

  let heap_rc = Heap.create ~name:"walk-lfrc" () in
  let env_rc = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap_rc in
  workload "LFRC" (module Lfrc_stack) heap_rc env_rc;

  Printf.printf
    "\nGC-dependent left %d objects for a collector to find;\n\
     LFRC freed every node at its last pointer's death.\n"
    (Heap.live_count heap_gc);
  assert (Heap.live_count heap_rc = 0);
  assert (Heap.live_count heap_gc > 0);

  (* And the collector the GC world depends on: *)
  let c = Lfrc_simmem.Gc_trace.collect heap_gc in
  Printf.printf
    "Running the tracing collector for the GC world: freed %d in %.0f us\n"
    (c.Lfrc_simmem.Gc_trace.live_before - c.Lfrc_simmem.Gc_trace.live_after)
    (Float.of_int c.Lfrc_simmem.Gc_trace.pause_ns /. 1e3);
  assert (Heap.live_count heap_gc = 0);
  print_endline "\ntransform_walkthrough OK"
