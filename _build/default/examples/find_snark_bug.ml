(* Rediscovering the published Snark deque's race (EXPERIMENTS.md A4).

   The LFRC paper transforms the Snark deque of Detlefs et al. (DISC
   2000). Three years after both papers, Doherty et al. ("DCAS is not a
   silver bullet", SPAA 2004) showed Snark itself is incorrect. This
   program rediscovers the bug mechanically with the repository's own
   deterministic scheduler and linearizability checker, prints the
   counterexample history, and shows the corrected variant surviving the
   same schedule.

   Run with: dune exec examples/find_snark_bug.exe *)

module Scenario = Lfrc_harness.Scenario
module Strategy = Lfrc_sched.Strategy
module Published = Lfrc_structures.Snark.Make (Lfrc_core.Lfrc_ops)
module Fixed = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

(* The scenario and schedule found by bin/hunt_snark.exe: deque preloaded
   with [1]; three threads run popRight, popLeft and pushLeft 3; the PCT
   strategy with this seed interleaves them so that popLeft answers
   "empty" although the deque never is. *)
let preload = [ 1 ]
let threads = Scenario.[ [ Pop_right ]; [ Pop_left ]; [ Push_left 3 ] ]
let strategy = Strategy.Pct { seed = 120053; change_points = 3 }

let print_history history =
  List.iter
    (fun (e : _ Lfrc_linearize.History.event) ->
      Format.printf "  t%d: %-14s -> %-6s  [%d, %d]@." e.thread
        (Format.asprintf "%a" Scenario.pp_op e.op)
        (Format.asprintf "%a" Scenario.pp_res e.result)
        e.invoked_at e.returned_at)
    history

let () =
  Format.printf "Scenario: preload [1]; popRight || popLeft || pushLeft 3@.";
  Format.printf "Schedule: PCT seed 120053 (deterministic)@.@.";

  Format.printf "--- published Snark (DISC 2000 algorithm, LFRC memory) ---@.";
  let o = Scenario.run (module Published) ~preload ~threads strategy in
  print_history o.Scenario.history;
  if o.Scenario.ok then
    failwith "expected the published algorithm to misbehave here";
  Format.printf
    "@.NOT linearizable: pop_left answered `empty', but value 1 stays in@.";
  Format.printf
    "the deque until pop_right takes it *after* push_left 3 completed —@.";
  Format.printf
    "there is no instant in pop_left's window at which the deque is empty.@.";
  Format.printf
    "(Doherty et al., SPAA 2004, reported exactly this failure mode.)@.@.";

  Format.printf "--- corrected Snark (value-claiming pops) ---@.";
  let o' = Scenario.run (module Fixed) ~preload ~threads strategy in
  print_history o'.Scenario.history;
  assert o'.Scenario.ok;
  Format.printf "@.linearizable on the same schedule.@.@.";

  (* Sweep a band of seeds to show the failure is systematic, not a
     one-off, and that the fix holds across all of them. *)
  let violations dq =
    let bad = ref 0 in
    for seed = 120_000 to 120_999 do
      let strat =
        if seed land 1 = 0 then Strategy.Random seed
        else Strategy.Pct { seed; change_points = 3 }
      in
      if not (Scenario.run dq ~preload ~threads strat).Scenario.ok then
        incr bad
    done;
    !bad
  in
  let vp = violations (module Published) in
  let vf = violations (module Fixed) in
  Format.printf "1000-seed sweep: published fails %d times, corrected %d.@."
    vp vf;
  assert (vp > 0);
  assert (vf = 0);
  Format.printf "find_snark_bug OK@."
