(* Reference-counted graphs beyond containers: a build-system dependency
   DAG with shared subtrees — the use case where counts shine (shared
   nodes freed exactly when the last dependent goes) and where their one
   blind spot lives (cycles), together with the paper's §7 remedy.

   Run with: dune exec examples/dependency_graph.exe *)

module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Lfrc = Lfrc_core.Lfrc
module Env = Lfrc_core.Env

(* A target: up to three dependencies and one value slot (its "cost"). *)
let target = Layout.make ~name:"target" ~n_ptrs:3 ~n_vals:1

let () =
  let heap = Heap.create ~name:"depgraph" () in
  let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in

  let dep_cell p i = Heap.ptr_cell heap p i in
  let mk cost =
    let p = Lfrc.alloc env target in
    Lfrc_simmem.Cell.set (Heap.val_cell heap p 0) cost;
    p
  in

  (* Two executables sharing a library subtree:

       app1 ─┬─> libcore ──> syscfg
             └─> libnet  ──> syscfg
       app2 ──> libnet                     *)
  let syscfg = mk 1 in
  let libcore = mk 10 in
  Lfrc.store env ~dst:(dep_cell libcore 0) syscfg;
  let libnet = mk 12 in
  Lfrc.store env ~dst:(dep_cell libnet 0) syscfg;
  Lfrc.destroy env syscfg (* builder's handle gone: deps keep it *);
  let app1 = mk 100 in
  Lfrc.store env ~dst:(dep_cell app1 0) libcore;
  Lfrc.store env ~dst:(dep_cell app1 1) libnet;
  Lfrc.destroy env libcore;
  let app2 = mk 90 in
  Lfrc.store env ~dst:(dep_cell app2 0) libnet;
  Lfrc.destroy env libnet;

  let root1 = Heap.root heap ~name:"app1" () in
  let root2 = Heap.root heap ~name:"app2" () in
  Lfrc.store_alloc env ~dst:root1 app1;
  Lfrc.store_alloc env ~dst:root2 app2;

  Printf.printf "graph built: %d targets live\n" (Heap.live_count heap);
  assert (Heap.live_count heap = 5);

  (* Retire app1: libcore dies with it (sole dependent), libnet and
     syscfg survive through app2 — exactly the shared-subtree semantics
     counts give for free. *)
  Lfrc.store env ~dst:root1 Heap.null;
  Printf.printf "after dropping app1: %d live (app2, libnet, syscfg)\n"
    (Heap.live_count heap);
  assert (Heap.live_count heap = 3);

  (* Retire app2: everything goes. *)
  Lfrc.store env ~dst:root2 Heap.null;
  Printf.printf "after dropping app2: %d live\n" (Heap.live_count heap);
  assert (Heap.live_count heap = 0);

  (* Now the blind spot: a dependency cycle (a plugin that depends on the
     app that loads it). Counts cannot reclaim it — and the paper's step
     3 therefore demands cycle-free garbage, with §7 suggesting an
     occasional tracing pass as the backstop. *)
  let app = mk 100 and plugin = mk 20 in
  Lfrc.store env ~dst:(dep_cell app 0) plugin;
  Lfrc.store env ~dst:(dep_cell plugin 0) app (* the cycle *);
  Lfrc.store_alloc env ~dst:root1 app;
  Lfrc.destroy env plugin;
  Lfrc.store env ~dst:root1 Heap.null;
  Printf.printf "cyclic pair after dropping all handles: %d live (leaked)\n"
    (Heap.live_count heap);
  assert (Heap.live_count heap = 2);

  let c = Lfrc_cycle.Cycle_collector.collect heap in
  Printf.printf "backup tracer (paper \xc2\xa77): freed %d in %.1f us\n"
    c.Lfrc_cycle.Cycle_collector.cyclic_freed
    (Float.of_int c.Lfrc_cycle.Cycle_collector.pause_ns /. 1e3);
  assert (Heap.live_count heap = 0);

  Heap.release_root heap root1;
  Heap.release_root heap root2;
  print_endline "dependency_graph OK"
