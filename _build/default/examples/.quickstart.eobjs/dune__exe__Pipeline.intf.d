examples/pipeline.mli:
