examples/aba_demo.ml: Lfrc_atomics Lfrc_core Lfrc_sched Lfrc_simmem Lfrc_structures Lfrc_util List Printexc Printf
