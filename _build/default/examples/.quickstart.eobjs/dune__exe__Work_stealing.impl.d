examples/work_stealing.ml: Array Atomic Hashtbl Lfrc_atomics Lfrc_core Lfrc_sched Lfrc_simmem Lfrc_structures Lfrc_util List Printf
