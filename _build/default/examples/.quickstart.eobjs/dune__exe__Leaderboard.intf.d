examples/leaderboard.mli:
