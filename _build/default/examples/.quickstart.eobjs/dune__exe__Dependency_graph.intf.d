examples/dependency_graph.mli:
