examples/find_snark_bug.mli:
