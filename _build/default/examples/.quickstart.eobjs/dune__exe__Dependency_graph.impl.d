examples/dependency_graph.ml: Float Lfrc_atomics Lfrc_core Lfrc_cycle Lfrc_simmem Printf
