examples/find_snark_bug.ml: Format Lfrc_core Lfrc_harness Lfrc_linearize Lfrc_sched Lfrc_structures List
