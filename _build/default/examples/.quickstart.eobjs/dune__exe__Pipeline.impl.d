examples/pipeline.ml: Lfrc_atomics Lfrc_core Lfrc_sched Lfrc_simmem Lfrc_structures Printf
