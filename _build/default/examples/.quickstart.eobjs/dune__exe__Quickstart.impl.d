examples/quickstart.ml: Atomic Domain Lfrc_atomics Lfrc_core Lfrc_simmem Lfrc_structures List Printf
