examples/quickstart.mli:
