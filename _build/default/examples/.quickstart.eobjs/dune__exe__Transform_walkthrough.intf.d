examples/transform_walkthrough.mli:
