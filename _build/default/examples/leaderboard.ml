(* A concurrent leaderboard on the lock-free skip list.

   Players (simulated threads) submit scores; a pruner keeps only the
   best hundred. Scores live in the skip list — ordered, so the pruner
   pops from the low end and the report reads the top from a snapshot.
   Every node the board ever held is reclaimed by reference counting the
   moment it stops being referenced; no collector, no free-list.

   Run with: dune exec examples/leaderboard.exe *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env
module Sched = Lfrc_sched.Sched
module Board = Lfrc_structures.Skiplist.Make (Lfrc_core.Lfrc_ops)

let n_players = 5
let submissions = 400
let keep_best = 100

let () =
  let heap = Heap.create ~name:"leaderboard" () in
  let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
  let board = Board.create env in
  let submitted = Atomic.make 0 in
  let pruned = Atomic.make 0 in

  let body () =
    let players =
      List.init n_players (fun p ->
          Sched.spawn
            ~name:(Printf.sprintf "player%d" p)
            (fun () ->
              let h = Board.register ~seed:p board in
              let rng = Lfrc_util.Rng.create (p + 100) in
              for _ = 1 to submissions do
                (* scores are unique: high bits score, low bits player *)
                let score =
                  (Lfrc_util.Rng.int rng 1_000_000 * n_players) + p
                in
                if Board.insert h score then Atomic.incr submitted
              done;
              Board.unregister h))
    in
    let pruner =
      Sched.spawn ~name:"pruner" (fun () ->
          let h = Board.register ~seed:99 board in
          let rec prune () =
            let standing = Board.to_list h in
            let excess = List.length standing - keep_best in
            if excess > 0 then begin
              List.iteri
                (fun i s ->
                  if i < excess && Board.remove h s then Atomic.incr pruned)
                standing;
              prune ()
            end
            else if Atomic.get submitted < n_players * submissions then begin
              Sched.point ();
              prune ()
            end
          in
          prune ();
          Board.unregister h)
    in
    Sched.join (pruner :: players)
  in
  ignore (Sched.run ~max_steps:400_000_000 (Lfrc_sched.Strategy.Random 3) body);

  let h = Board.register board in
  let final = Board.to_list h in
  let top = List.rev final in
  Printf.printf "submissions: %d, pruned: %d, remaining: %d\n"
    (Atomic.get submitted) (Atomic.get pruned) (List.length final);
  Printf.printf "top 5 scores: %s\n"
    (String.concat ", "
       (List.filteri (fun i _ -> i < 5) top
       |> List.map (fun s -> string_of_int (s / n_players))));
  assert (List.length final <= keep_best + n_players);
  assert (final = List.sort_uniq compare final);
  assert (Atomic.get submitted - Atomic.get pruned = List.length final);
  Board.unregister h;
  Board.destroy board;
  Printf.printf "after destroy: %d live objects (expected 0)\n"
    (Heap.live_count heap);
  assert (Heap.live_count heap = 0);
  print_endline "leaderboard OK"
