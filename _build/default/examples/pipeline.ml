(* A producer/consumer pipeline over LFRC Michael–Scott queues.

   Stage 1 produces numbers, stage 2 squares them, stage 3 accumulates.
   The queues are the paper-cited Michael & Scott algorithm [13] run in
   GC-independent mode: in the original paper that algorithm needs either
   a garbage collector or a permanent free-list; under LFRC its nodes are
   returned to the allocator the moment the last reference dies, so a
   long-running pipeline's memory stays flat.

   Run with: dune exec examples/pipeline.exe *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env
module Sched = Lfrc_sched.Sched
module Queue = Lfrc_structures.Msqueue.Make (Lfrc_core.Lfrc_ops)

let n_items = 5_000
let eos = -1 (* end-of-stream marker *)

let () =
  let heap = Heap.create ~name:"pipeline" () in
  let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
  let q12 = Queue.create env in
  let q23 = Queue.create env in
  let total = ref 0 in
  let peak_live = ref 0 in

  let body () =
    let producer =
      Sched.spawn ~name:"produce" (fun () ->
          let h = Queue.register q12 in
          for i = 1 to n_items do
            Queue.enqueue h i
          done;
          Queue.enqueue h eos;
          Queue.unregister h)
    in
    let transformer =
      Sched.spawn ~name:"square" (fun () ->
          let h_in = Queue.register q12 in
          let h_out = Queue.register q23 in
          let rec loop () =
            match Queue.dequeue h_in with
            | Some v when v = eos -> Queue.enqueue h_out eos
            | Some v ->
                Queue.enqueue h_out (v * v);
                loop ()
            | None ->
                Sched.point ();
                loop ()
          in
          loop ();
          Queue.unregister h_in;
          Queue.unregister h_out)
    in
    let consumer =
      Sched.spawn ~name:"sum" (fun () ->
          let h = Queue.register q23 in
          let rec loop () =
            match Queue.dequeue h with
            | Some v when v = eos -> ()
            | Some v ->
                total := !total + v;
                peak_live := max !peak_live (Heap.live_count heap);
                loop ()
            | None ->
                Sched.point ();
                loop ()
          in
          loop ();
          Queue.unregister h)
    in
    Sched.join [ producer; transformer; consumer ]
  in
  ignore (Sched.run ~max_steps:100_000_000 (Lfrc_sched.Strategy.Random 7) body);

  let expected = ref 0 in
  for i = 1 to n_items do
    expected := !expected + (i * i)
  done;
  Printf.printf "sum of squares 1..%d = %d (expected %d)\n" n_items !total
    !expected;
  assert (!total = !expected);
  Printf.printf
    "peak live objects during the run: %d (queues drain as fast as they fill)\n"
    !peak_live;
  Queue.destroy q12;
  Queue.destroy q23;
  Printf.printf "after teardown: %d live objects\n" (Heap.live_count heap);
  assert (Heap.live_count heap = 0);
  print_endline "pipeline OK"
