(* The ABA problem, live — and how LFRC removes it (paper Section 1).

   A Treiber stack with *eager manual free* (pop frees its node
   immediately) is the textbook ABA victim: between a pop's read of the
   top node and its CAS, the node can be freed, its id recycled by the
   allocator for a new push, and land back on top — the CAS then succeeds
   against the *wrong* next pointer, corrupting the stack.

   The simulated heap recycles ids exactly like a real allocator reuses
   addresses, and its safe mode turns the resulting use-after-free /
   double-free into exceptions. This program drives the broken stack
   under randomized schedules until the corruption fires, then runs the
   LFRC stack through the same schedules: the counted local reference
   makes recycling impossible while any thread still holds the pointer,
   so the ABA window simply does not exist.

   Run with: dune exec examples/aba_demo.exe *)

module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Dcas = Lfrc_atomics.Dcas
module Env = Lfrc_core.Env
module Sched = Lfrc_sched.Sched

let node = Lfrc_structures.Treiber.node_layout

(* Treiber stack with immediate free on pop: correct single-threaded,
   broken concurrently. This is what the paper's Section 1 says you
   cannot write without GC, a free-list, or a scheme like LFRC. *)
module Broken_stack = struct
  type t = { heap : Heap.t; d : Dcas.t; top : Cell.t }

  let create env =
    let heap = Env.heap env in
    { heap; d = Env.dcas env; top = Heap.root heap ~name:"broken-top" () }

  let push t v =
    let nd = Heap.alloc t.heap node in
    Dcas.write t.d (Heap.val_cell t.heap nd 0) v;
    let rec go () =
      let top = Dcas.read t.d t.top in
      Dcas.write t.d (Heap.ptr_cell t.heap nd 0) top;
      if not (Dcas.cas t.d t.top top nd) then go ()
    in
    go ()

  let pop t =
    let rec go () =
      let top = Dcas.read t.d t.top in
      if top = Heap.null then None
      else begin
        (* Unprotected dereference: [top] may already be freed. *)
        let next = Dcas.read t.d (Heap.ptr_cell t.heap top 0) in
        if Dcas.cas t.d t.top top next then begin
          let v = Dcas.read t.d (Heap.val_cell t.heap top 0) in
          Heap.free t.heap top (* eager manual free: the ABA source *);
          Some v
        end
        else go ()
      end
    in
    go ()
end

let workload push pop seed =
  let tids =
    List.init 3 (fun t ->
        Sched.spawn (fun () ->
            let rng = Lfrc_util.Rng.create (seed + (t * 1009)) in
            for i = 1 to 60 do
              if Lfrc_util.Rng.bool rng then push ((t * 1000) + i)
              else ignore (pop ())
            done))
  in
  Sched.join tids

let find_broken_failure () =
  let rec hunt seed =
    if seed > 200_000 then None
    else begin
      let outcome =
        try
          ignore
            (Sched.run (Lfrc_sched.Strategy.Random seed) (fun () ->
                 let heap = Heap.create ~name:"aba-broken" () in
                 let env =
                   Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap
                 in
                 let s = Broken_stack.create env in
                 workload (Broken_stack.push s) (fun () -> Broken_stack.pop s) seed));
          None
        with
        | Sched.Thread_failure { exn; _ } -> Some (seed, exn)
        | (Heap.Use_after_free _ | Heap.Double_free _ | Cell.Corruption _) as e
          ->
            Some (seed, e)
      in
      match outcome with Some r -> Some r | None -> hunt (seed + 1)
    end
  in
  hunt 0

module Safe_stack = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)

let () =
  print_endline "--- Treiber stack with eager manual free (no protection) ---";
  (match find_broken_failure () with
  | Some (seed, exn) ->
      Printf.printf
        "seed %d: memory corruption detected, as theory predicts:\n  %s\n"
        seed (Printexc.to_string exn)
  | None -> failwith "expected the unprotected stack to corrupt itself");

  print_endline "\n--- the same workload on the LFRC Treiber stack ---";
  for seed = 0 to 2_000 do
    ignore
      (Sched.run (Lfrc_sched.Strategy.Random seed) (fun () ->
           let heap = Heap.create ~name:"aba-safe" () in
           let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
           let s = Safe_stack.create env in
           let tids =
             List.init 3 (fun t ->
                 Sched.spawn (fun () ->
                     let h = Safe_stack.register s in
                     let rng = Lfrc_util.Rng.create (seed + (t * 1009)) in
                     for i = 1 to 60 do
                       if Lfrc_util.Rng.bool rng then
                         Safe_stack.push h ((t * 1000) + i)
                       else ignore (Safe_stack.pop h)
                     done;
                     Safe_stack.unregister h))
           in
           Sched.join tids))
  done;
  print_endline "2001 randomized schedules: no corruption, no leak, no ABA.";
  print_endline
    "LFRC's counted local references make the recycle-while-held window\n\
     impossible — the paper's Section 1 argument, demonstrated.";
  print_endline "aba_demo OK"
