(* Work-stealing with LFRC deques — the workload double-ended queues were
   invented for (the paper's citation [9] context; Arora/Blumofe/Plaxton
   style schedulers are the classic Snark consumer).

   Each worker owns a deque: it pushes and pops subtasks at the right end
   (LIFO, cache-friendly), while idle workers steal from the left end of
   a victim's deque. The task graph is a recursive tree summation; every
   node's contribution must arrive exactly once, whoever executes it.

   Tasks live in an OCaml side table; the deques carry integer task ids —
   the pattern for storing rich values alongside LFRC structures.

   Run with: dune exec examples/work_stealing.exe *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env
module Sched = Lfrc_sched.Sched
module Deque = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

let n_workers = 4

(* A task: sum the integer range [lo, hi). Splitting under [grain]
   computes directly. *)
type task = { lo : int; hi : int }

let grain = 32

let () =
  let heap = Heap.create ~name:"work-stealing" () in
  let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
  let deques = Array.init n_workers (fun _ -> Deque.create env) in

  (* Side table: task id -> task. Ids are dense and never reused. *)
  let tasks : (int, task) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  let task_count = Atomic.make 0 in
  let register_task t =
    let id = !next_id in
    incr next_id;
    Hashtbl.replace tasks id t;
    Atomic.incr task_count;
    id
  in

  let total = Atomic.make 0 in
  let n = 100_000 in

  let body () =
    let handles = Array.map Deque.register deques in
    (* seed the root task into worker 0's deque *)
    Deque.push_right handles.(0) (register_task { lo = 0; hi = n });
    let tids =
      List.init n_workers (fun w ->
          Sched.spawn
            ~name:(Printf.sprintf "worker%d" w)
            (fun () ->
              let h = handles.(w) in
              let rng = Lfrc_util.Rng.create (w + 1) in
              (* Terminate when no task is pending anywhere: the counter
                 is decremented only after a task has executed or
                 registered its children, so it cannot reach zero while
                 work can still appear. *)
              while Atomic.get task_count > 0 do
                let work =
                  match Deque.pop_right h with
                  | Some id -> Some id
                  | None ->
                      (* steal from a random victim's opposite end *)
                      let victim = Lfrc_util.Rng.int rng n_workers in
                      if victim <> w then Deque.pop_left handles.(victim)
                      else None
                in
                match work with
                | None -> Sched.point ()
                | Some id ->
                    let t = Hashtbl.find tasks id in
                    if t.hi - t.lo <= grain then begin
                      let s = ref 0 in
                      for i = t.lo to t.hi - 1 do
                        s := !s + i
                      done;
                      ignore (Atomic.fetch_and_add total !s)
                    end
                    else begin
                      let mid = (t.lo + t.hi) / 2 in
                      Deque.push_right h (register_task { lo = t.lo; hi = mid });
                      Deque.push_right h (register_task { lo = mid; hi = t.hi })
                    end;
                    Atomic.decr task_count
              done))
    in
    Sched.join tids;
    Array.iter Deque.unregister handles
  in
  let outcome = Sched.run (Lfrc_sched.Strategy.Random 2024) body in

  let expected = n * (n - 1) / 2 in
  Printf.printf "tree sum over [0,%d): got %d, expected %d\n" n
    (Atomic.get total) expected;
  assert (Atomic.get total = expected);
  assert (Atomic.get task_count = 0);
  Printf.printf "scheduler steps: %d across %d workers\n" outcome.Sched.steps
    n_workers;

  Array.iter Deque.destroy deques;
  Printf.printf "heap after teardown: %d live (expected 0)\n"
    (Heap.live_count heap);
  assert (Heap.live_count heap = 0);
  print_endline "work_stealing OK"
