(* Quickstart: a lock-free deque with reference-counted reclamation.

   Creates the corrected Snark deque in GC-independent (LFRC) mode, runs
   it from several real OCaml domains, then shows the memory story: every
   node the deque ever allocated has been returned to the allocator by the
   time we are done — no garbage collector involved.

   Run with: dune exec examples/quickstart.exe *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env
module Deque = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

let () =
  (* 1. A simulated manual-memory heap and an LFRC environment on top.
     [Striped_lock] is the stand-in for the paper's hardware DCAS when
     running real domains. *)
  let heap = Heap.create ~name:"quickstart" () in
  let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Striped_lock heap in

  (* 2. A deque. [create] builds the paper's Snark structure: an anchor
     object holding Dummy/LeftHat/RightHat, all reference-counted. *)
  let deque = Deque.create env in

  (* 3. Hammer it from three domains: each pushes 10_000 values on one
     side and pops from the other. *)
  let total = Atomic.make 0 in
  let worker i () =
    let h = Deque.register deque in
    for v = 1 to 10_000 do
      if i mod 2 = 0 then Deque.push_right h ((i * 100_000) + v)
      else Deque.push_left h ((i * 100_000) + v);
      if v mod 2 = 0 then
        match (if i mod 2 = 0 then Deque.pop_left h else Deque.pop_right h) with
        | Some _ -> Atomic.incr total
        | None -> ()
    done;
    Deque.unregister h
  in
  let domains = List.init 3 (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;

  (* 4. Drain the rest single-threaded. *)
  let h = Deque.register deque in
  let rec drain n = match Deque.pop_left h with None -> n | Some _ -> drain (n + 1) in
  let drained = drain 0 in
  Deque.unregister h;

  let stats = Heap.stats heap in
  Printf.printf "pushed 30000, popped concurrently %d, drained %d\n"
    (Atomic.get total) drained;
  Printf.printf "heap: %d allocations, %d frees, %d still live\n"
    stats.Heap.allocs stats.Heap.frees stats.Heap.live;

  (* 5. The paper's destructor: releases the structure itself. After it,
     the heap must be empty — LFRC freed every node the moment its last
     pointer died, with no tracing collector and no stop-the-world. *)
  Deque.destroy deque;
  let stats = Heap.stats heap in
  Printf.printf "after destroy: %d live objects (expected 0)\n" stats.Heap.live;
  assert (stats.Heap.live = 0);
  (* And the counts were not just zero at the end — they were exact. *)
  assert (Lfrc_simmem.Report.check_rc_exact heap = []);
  print_endline "quickstart OK: all memory reclaimed by reference counting"
