lib/atomics/mcas.mli: Lfrc_simmem
