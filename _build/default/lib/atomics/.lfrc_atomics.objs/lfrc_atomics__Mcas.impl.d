lib/atomics/mcas.ml: Array Atomic Domain Lfrc_sched Lfrc_simmem
