lib/atomics/dcas.mli: Lfrc_simmem
