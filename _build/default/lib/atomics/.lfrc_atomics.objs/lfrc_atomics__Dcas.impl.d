lib/atomics/dcas.ml: Array Atomic Fun Lfrc_sched Lfrc_simmem Mcas Mutex
