let safety = ref true

let poison = 0x2DEADBEEF
