(** Stop-the-world mark-sweep collector over the simulated heap.

    This is the environment the paper's *input* algorithms assume: a
    tracing garbage collector that can see thread-local pointers (here via
    shadow-stack frames instead of register scanning). It gives the
    GC-dependent baseline for the experiments and exhibits exactly the
    behaviour the paper criticizes — it stops the world (experiment E8
    measures its pauses).

    Collections are only safe when every thread is at a yield point
    (guaranteed under the deterministic scheduler) or at an explicit
    barrier (real-domain runs). *)

type collection = {
  live_before : int;
  live_after : int;
  pause_ns : int;
}

val collect : Heap.t -> collection
(** Mark from the heap's roots and registered frames, then sweep (free)
    every unmarked live object. *)

val collections : Heap.t -> collection list
(** History of collections on this heap, newest first. *)

val maybe_collect : Heap.t -> threshold:int -> collection option
(** Collect iff the heap's live count exceeds [threshold]. *)

val reset_history : Heap.t -> unit
