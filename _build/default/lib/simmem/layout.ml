type t = { name : string; n_ptrs : int; n_vals : int }

let make ~name ~n_ptrs ~n_vals =
  if n_ptrs < 0 || n_vals < 0 then invalid_arg "Layout.make";
  { name; n_ptrs; n_vals }

let n_cells t = 1 + t.n_ptrs + t.n_vals

let rc_slot = 0

let ptr_slot t i =
  if i < 0 || i >= t.n_ptrs then invalid_arg "Layout.ptr_slot";
  1 + i

let val_slot t i =
  if i < 0 || i >= t.n_vals then invalid_arg "Layout.val_slot";
  1 + t.n_ptrs + i
