type collection = { live_before : int; live_after : int; pause_ns : int }

(* Collection history, per heap. Keyed weakly by heap name; heaps in this
   codebase are few and long-lived, so a simple association list suffices. *)
let histories : (string, collection list ref) Hashtbl.t = Hashtbl.create 8

let history_of h =
  match Hashtbl.find_opt histories (Heap.name h) with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add histories (Heap.name h) r;
      r

let mark_from h p =
  let rec go p =
    if p <> Heap.null && Heap.is_live h p && not (Heap.get_mark h p) then begin
      Heap.set_mark h p true;
      List.iter go (Heap.ptr_slot_values h p)
    end
  in
  go p

let collect h =
  let t0 = Lfrc_util.Clock.now_ns () in
  let live_before = Heap.live_count h in
  Heap.iter_live h (fun p -> Heap.set_mark h p false);
  List.iter (fun root -> mark_from h (Cell.get root)) (Heap.roots h);
  Heap.iter_frame_roots h (fun p -> mark_from h p);
  let garbage = ref [] in
  Heap.iter_live h (fun p ->
      if not (Heap.get_mark h p) then garbage := p :: !garbage);
  List.iter (fun p -> Heap.free h p) !garbage;
  let t1 = Lfrc_util.Clock.now_ns () in
  let c = { live_before; live_after = Heap.live_count h; pause_ns = t1 - t0 } in
  let hist = history_of h in
  hist := c :: !hist;
  c

let collections h = !(history_of h)

(* Next-collection trigger per heap: like a real collector, the trigger
   grows with the live set, or back-to-back collections would thrash when
   most of the heap is genuinely reachable. *)
let triggers : (string, int ref) Hashtbl.t = Hashtbl.create 8

let trigger_of h =
  match Hashtbl.find_opt triggers (Heap.name h) with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add triggers (Heap.name h) r;
      r

let maybe_collect h ~threshold =
  let trigger = trigger_of h in
  if Heap.live_count h > max threshold !trigger then begin
    let c = collect h in
    trigger := 2 * c.live_after;
    Some c
  end
  else None

let reset_history h =
  history_of h := [];
  Hashtbl.remove triggers (Heap.name h)
