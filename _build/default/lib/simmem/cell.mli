(** A cell is one word of simulated shared memory: the unit on which the
    atomic primitives (read, write, CAS, DCAS) operate. Cells belong either
    to a heap object (rc, pointer and value slots) or to a root (a global
    pointer variable such as the Snark deque's hats).

    Values are stored internally with two low tag bits (00 = plain value),
    reserving the other tag codes for the software-MCAS substrate's
    descriptors ({!Mcas} in the atomics library). Application values are
    therefore limited to 61 bits — far beyond any object id or test
    value used here.

    Plain reads of a freed object's cell are deliberately allowed and
    return the poison value: the paper's LFRCLoad reads [a->rc] of an
    object that may already have been freed, relying on the fact that freed
    memory is still mapped and a read is harmless. Writes (including
    successful CAS/DCAS) to a frozen cell are corruption and raise in safe
    mode — detecting exactly the class of bug LFRC exists to prevent. *)

type t

exception Corruption of string

val make : ?frozen:bool -> int -> t
(** [make v] allocates a fresh cell holding [v] with a unique id. *)

val id : t -> int
(** Unique id; provides the global total order used by the striped-lock
    DCAS to acquire locks consistently. *)

val get : t -> int
(** Raw atomic read; never raises (benign read of freed memory). Must not
    be used while an MCAS may be in flight on this cell — use the
    dispatching read in the atomics library instead. *)

val set : t -> int -> unit
(** Atomic write. Raises {!Corruption} on a frozen cell in safe mode. *)

val cas : t -> int -> int -> bool
(** Single-word compare-and-swap on plain values. A successful CAS on a
    frozen cell raises {!Corruption} in safe mode. *)

val fetch_and_add : t -> int -> int
(** Atomic add; returns the previous value. Frozen-checked like {!set}.
    Only sound when no descriptor can be present. *)

val freeze : t -> unit
(** Mark the cell as belonging to freed memory and poison its value. *)

val thaw : t -> int -> unit
(** Reinitialize the cell to [v] on (re)allocation. *)

val frozen : t -> bool

(* Raw access for the MCAS substrate. *)

val encode : int -> int
(** Application value -> raw word (tag 00). *)

val decode : int -> int
(** Raw word with tag 00 -> application value. *)

val tag_of_raw : int -> int
(** The two tag bits of a raw word. 0 = plain value. *)

val raw : t -> int Atomic.t
(** The underlying atomic. Frozen checking is the caller's
    responsibility. *)

val check_write : t -> string -> unit
(** Raise {!Corruption} if the cell is frozen (safe mode); exposed so the
    MCAS substrate can apply the same policy to its raw writes. *)
