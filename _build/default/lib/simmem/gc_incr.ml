type phase = Idle | Marking | Sweeping

type t = {
  gc_heap : Heap.t;
  threshold : int;
  sweep_chunk : int;
  mutable gc_phase : phase;
  gray : Heap.ptr Stack.t;
  mutable sweep_cursor : Heap.ptr; (* next id to examine *)
  mutable sweep_limit : Heap.ptr; (* ids above this were born during the cycle *)
  mutable cycles : int;
  mutable freed : int;
  mutable max_live_marked : int;
  mutable epoch : int; (* versioned-mark stamp of the current cycle *)
}

let create ?(threshold = 1024) ?(sweep_chunk = 4) heap =
  {
    gc_heap = heap;
    threshold;
    sweep_chunk;
    gc_phase = Idle;
    gray = Stack.create ();
    sweep_cursor = 1;
    sweep_limit = 0;
    cycles = 0;
    freed = 0;
    max_live_marked = 0;
    epoch = 0;
  }

let heap t = t.gc_heap
let phase t = t.gc_phase

(* Shade: mark (black-or-gray) and queue for scanning. Marked objects are
   never re-queued, so marking terminates. *)
let marked t p = Heap.get_mark_version t.gc_heap p = t.epoch

let shade t p =
  if p <> Heap.null && Heap.is_live t.gc_heap p && not (marked t p) then begin
    Heap.set_mark_version t.gc_heap p t.epoch;
    Stack.push p t.gray
  end

let shade_roots t =
  List.iter (fun root -> shade t (Cell.get root)) (Heap.roots t.gc_heap);
  Heap.iter_frame_roots t.gc_heap (fun p -> shade t p)

let start_cycle t =
  if t.gc_phase = Idle then begin
    (* Versioned marks: bumping the epoch unmarks everything in O(1). *)
    t.epoch <- t.epoch + 1;
    Stack.clear t.gray;
    t.gc_phase <- Marking;
    shade_roots t;
    t.cycles <- t.cycles + 1
  end

let barrier t overwritten =
  if t.gc_phase = Marking then shade t overwritten

let on_alloc t p =
  (* Born black: new objects are never swept by the running cycle. *)
  if t.gc_phase <> Idle then Heap.set_mark_version t.gc_heap p t.epoch

(* Scan one gray object: shade its pointer slots. *)
let scan_one t =
  match Stack.pop_opt t.gray with
  | None -> false
  | Some p ->
      if Heap.is_live t.gc_heap p then
        List.iter (shade t) (Heap.ptr_slot_values t.gc_heap p);
      true

let begin_sweep t =
  t.gc_phase <- Sweeping;
  (* Objects allocated from here on are marked at birth; the cursor walks
     the id space known at this instant. O(1): no heap scan. *)
  t.sweep_cursor <- 1;
  t.sweep_limit <- Heap.high_water_id t.gc_heap;
  let live = Heap.live_count t.gc_heap in
  if live > t.max_live_marked then t.max_live_marked <- live

let sweep_some t =
  let examined = ref 0 in
  while !examined < t.sweep_chunk && t.sweep_cursor <= t.sweep_limit do
    let p = t.sweep_cursor in
    t.sweep_cursor <- p + 1;
    incr examined;
    if Heap.is_live t.gc_heap p && not (marked t p) then begin
      Heap.free t.gc_heap p;
      t.freed <- t.freed + 1
    end
  done;
  t.sweep_cursor > t.sweep_limit

let step t ~budget =
  if t.gc_phase = Idle then false
  else begin
    let finished = ref false in
    let units = ref 0 in
    while (not !finished) && !units < budget do
      incr units;
      match t.gc_phase with
      | Idle -> finished := true
      | Marking ->
          if not (scan_one t) then begin
            (* Gray set drained: re-scan the roots (locals move during the
               cycle); only when that uncovers nothing new is marking
               done. *)
            shade_roots t;
            if Stack.is_empty t.gray then begin
              begin_sweep t;
              ignore (sweep_some t)
            end
          end
      | Sweeping ->
          if sweep_some t then begin
            t.gc_phase <- Idle;
            finished := true
          end
    done;
    !finished
  end

let poll t ~budget =
  if t.gc_phase = Idle && Heap.live_count t.gc_heap > t.threshold then
    start_cycle t;
  if t.gc_phase <> Idle then ignore (step t ~budget)

let finish_cycle t =
  while t.gc_phase <> Idle do
    ignore (step t ~budget:max_int)
  done

type stats = { cycles : int; freed : int; max_live_marked : int }

let stats (t : t) : stats =
  { cycles = t.cycles; freed = t.freed; max_live_marked = t.max_live_marked }
