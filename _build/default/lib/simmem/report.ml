type violation =
  | Bad_rc of { id : int; rc : int; expected : int }
  | Unreachable of { id : int; rc : int }

let incoming_counts h =
  let counts = Hashtbl.create 64 in
  let bump p =
    if p <> Heap.null then
      Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
  in
  Heap.iter_live h (fun p -> List.iter bump (Heap.ptr_slot_values h p));
  List.iter (fun root -> bump (Cell.get root)) (Heap.roots h);
  Heap.iter_frame_roots h bump;
  counts

let check_rc_exact_with h ~extra_refs =
  let counts = incoming_counts h in
  let violations = ref [] in
  Heap.iter_live h (fun p ->
      let rc = Cell.get (Heap.rc_cell h p) in
      let expected =
        Option.value ~default:0 (Hashtbl.find_opt counts p) + extra_refs p
      in
      if rc <> expected then
        violations := Bad_rc { id = p; rc; expected } :: !violations);
  !violations

let check_rc_exact h = check_rc_exact_with h ~extra_refs:(fun _ -> 0)

let check_rc_lower_bound h =
  let counts = incoming_counts h in
  let violations = ref [] in
  Heap.iter_live h (fun p ->
      let rc = Cell.get (Heap.rc_cell h p) in
      let visible = Option.value ~default:0 (Hashtbl.find_opt counts p) in
      if rc < visible then
        violations := Bad_rc { id = p; rc; expected = visible } :: !violations);
  !violations

let find_unreachable h =
  (* Reuse the tracing collector's mark phase without sweeping. *)
  Heap.iter_live h (fun p -> Heap.set_mark h p false);
  let rec mark p =
    if p <> Heap.null && Heap.is_live h p && not (Heap.get_mark h p) then begin
      Heap.set_mark h p true;
      List.iter mark (Heap.ptr_slot_values h p)
    end
  in
  List.iter (fun root -> mark (Cell.get root)) (Heap.roots h);
  Heap.iter_frame_roots h mark;
  let violations = ref [] in
  Heap.iter_live h (fun p ->
      if not (Heap.get_mark h p) then
        violations :=
          Unreachable { id = p; rc = Cell.get (Heap.rc_cell h p) } :: !violations);
  !violations

let assert_no_leaks h =
  let n = Heap.live_count h in
  if n <> 0 then begin
    let ids = ref [] in
    Heap.iter_live h (fun p -> ids := p :: !ids);
    failwith
      (Printf.sprintf "heap %s: %d leaked objects (ids: %s)" (Heap.name h) n
         (String.concat "," (List.map string_of_int (List.filteri (fun i _ -> i < 20) !ids))))
  end

let pp_violation ppf = function
  | Bad_rc { id; rc; expected } ->
      Format.fprintf ppf "object %d: rc=%d but %d pointers exist" id rc expected
  | Unreachable { id; rc } ->
      Format.fprintf ppf "object %d: unreachable but live (rc=%d)" id rc
