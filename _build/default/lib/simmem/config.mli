(** Process-global switches for the simulated memory subsystem. *)

val safety : bool ref
(** When true (default), the heap checks every dereference, write and
    successful (D)CAS against object liveness, raising {!Heap.Use_after_free}
    / {!Heap.Corruption} on violations, and [free] poisons cells. Turn off
    for wall-clock benchmarks. *)

val poison : int
(** Value written into every cell of a freed object in safe mode. Chosen to
    be an invalid pointer and an implausible user value, so that logic that
    consumes a poisoned read fails loudly downstream. *)
