lib/simmem/layout.ml:
