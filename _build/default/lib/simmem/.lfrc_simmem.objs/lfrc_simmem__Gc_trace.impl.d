lib/simmem/gc_trace.ml: Cell Hashtbl Heap Lfrc_util List
