lib/simmem/layout.mli:
