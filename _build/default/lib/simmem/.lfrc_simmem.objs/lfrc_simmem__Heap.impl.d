lib/simmem/heap.ml: Array Atomic Cell Config Format Hashtbl Layout List Mutex
