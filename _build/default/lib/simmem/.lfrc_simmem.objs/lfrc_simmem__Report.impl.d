lib/simmem/report.ml: Cell Format Hashtbl Heap List Option Printf String
