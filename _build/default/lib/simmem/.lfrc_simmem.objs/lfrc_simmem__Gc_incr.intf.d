lib/simmem/gc_incr.mli: Heap
