lib/simmem/report.mli: Format Heap
