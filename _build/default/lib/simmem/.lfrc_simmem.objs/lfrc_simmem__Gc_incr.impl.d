lib/simmem/gc_incr.ml: Cell Heap List Stack
