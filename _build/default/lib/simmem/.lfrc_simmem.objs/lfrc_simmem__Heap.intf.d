lib/simmem/heap.mli: Cell Format Layout
