lib/simmem/config.ml:
