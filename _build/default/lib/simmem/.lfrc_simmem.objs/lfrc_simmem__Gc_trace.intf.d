lib/simmem/gc_trace.mli: Heap
