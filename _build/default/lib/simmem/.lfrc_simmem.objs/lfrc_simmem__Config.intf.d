lib/simmem/config.mli:
