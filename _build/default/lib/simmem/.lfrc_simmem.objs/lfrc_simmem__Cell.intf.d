lib/simmem/cell.mli: Atomic
