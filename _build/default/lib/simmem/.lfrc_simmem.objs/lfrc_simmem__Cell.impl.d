lib/simmem/cell.ml: Atomic Config Printf
