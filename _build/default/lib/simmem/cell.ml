type t = { cid : int; v : int Atomic.t; mutable is_frozen : bool }

exception Corruption of string

let encode v = v lsl 2
let decode raw = raw asr 2
let tag_of_raw raw = raw land 3

let next_id = Atomic.make 1

let make ?(frozen = false) v =
  {
    cid = Atomic.fetch_and_add next_id 1;
    v = Atomic.make (encode v);
    is_frozen = frozen;
  }

let id t = t.cid

let get t = decode (Atomic.get t.v)

let check_write t op =
  if t.is_frozen && !Config.safety then
    raise (Corruption (Printf.sprintf "%s to freed memory (cell %d)" op t.cid))

let set t v =
  check_write t "write";
  Atomic.set t.v (encode v)

let cas t old_v new_v =
  let ok = Atomic.compare_and_set t.v (encode old_v) (encode new_v) in
  if ok then check_write t "successful CAS";
  ok

let fetch_and_add t d =
  check_write t "fetch-and-add";
  decode (Atomic.fetch_and_add t.v (encode d))

let freeze t =
  t.is_frozen <- true;
  if !Config.safety then Atomic.set t.v (encode Config.poison)

let thaw t v =
  t.is_frozen <- false;
  Atomic.set t.v (encode v)

let frozen t = t.is_frozen

let raw t = t.v
