(** Incremental (on-the-fly style) mark-sweep collector.

    The paper's Section 6 discusses the Dijkstra-lineage "on-the-fly"
    collectors as the alternative to stop-the-world tracing; this module
    is that alternative for the simulated heap, so experiment E8 can
    compare three reclamation regimes on one substrate: stop-the-world
    ({!Gc_trace}), pay-as-you-go counts (LFRC itself), and incremental
    tracing.

    Classic tri-color scheme with a snapshot-at-the-beginning write
    barrier: a cycle shades the roots gray, mutator writes that overwrite
    a pointer shade the overwritten value ({!barrier}), objects allocated
    during a cycle are born black ({!on_alloc}), and {!step} advances
    marking/sweeping by a bounded budget — the pause is the slice, never
    the heap.

    The mutator obligations (barrier on every overwritten pointer,
    on_alloc on every allocation) are discharged by {!Lfrc_core.Gc_ops}
    when a collector is attached to its environment. Correctness is
    SATB's: everything reachable when the cycle started gets marked, so
    only objects that were garbage at the snapshot are swept. *)

type t

val create : ?threshold:int -> ?sweep_chunk:int -> Heap.t -> t
(** [threshold] (default 1024): live-object count that makes {!poll}
    start a new cycle. [sweep_chunk] (default 4): objects examined per
    budget unit while sweeping. *)

val heap : t -> Heap.t

type phase = Idle | Marking | Sweeping

val phase : t -> phase

val start_cycle : t -> unit
(** Begin a cycle now (no-op if one is running): snapshot the roots and
    registered frames as gray. *)

val barrier : t -> Heap.ptr -> unit
(** SATB write barrier: call with the pointer value being overwritten,
    before or after the write. No-op outside marking. *)

val on_alloc : t -> Heap.ptr -> unit
(** Newly allocated objects are black during a cycle. *)

val step : t -> budget:int -> bool
(** Advance the cycle by up to [budget] units (one unit: scan one gray
    object, or examine [sweep_chunk] objects while sweeping). Returns
    true if the cycle completed in this call. No-op (false) when idle. *)

val poll : t -> budget:int -> unit
(** The per-operation hook: start a cycle if the heap has grown past the
    threshold, and advance any running cycle by [budget]. *)

val finish_cycle : t -> unit
(** Drive a running cycle to completion (unbounded steps). *)

type stats = { cycles : int; freed : int; max_live_marked : int }

val stats : t -> stats
