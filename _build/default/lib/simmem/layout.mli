(** Object layouts: how many pointer slots and value slots an object type
    has. The reference count is not part of the layout — every object gets
    one implicitly, in cell 0, mirroring the paper's step 1 ("add a field
    [rc] to each object type").

    Cell indexing within an object:
    - cell 0: reference count
    - cells [1 .. n_ptrs]: pointer slots
    - cells [n_ptrs + 1 .. n_ptrs + n_vals]: value slots *)

type t = private { name : string; n_ptrs : int; n_vals : int }

val make : name:string -> n_ptrs:int -> n_vals:int -> t

val n_cells : t -> int
(** Total cells including the rc cell. *)

val rc_slot : int
(** = 0 *)

val ptr_slot : t -> int -> int
(** [ptr_slot l i] is the cell index of pointer slot [i] (0-based);
    checks bounds. *)

val val_slot : t -> int -> int
(** [val_slot l i] is the cell index of value slot [i] (0-based);
    checks bounds. *)
