(** Whole-heap invariant checks used by tests.

    These implement the paper's two correctness requirements for weak
    reference counts, checked at quiescence (no thread mid-operation):

    - safety: every live object's count is at least the number of pointers
      to it (checked exactly: at quiescence the count must equal it);
    - liveness: every live object is reachable from a root, i.e. nothing
      has leaked (an unreachable object with a non-zero count is either a
      leak or an uncollected cycle). *)

type violation =
  | Bad_rc of { id : int; rc : int; expected : int }
  | Unreachable of { id : int; rc : int }
      (** Live but not reachable from any root/frame: a leak, or cyclic
          garbage (which plain LFRC is documented not to collect). *)

val check_rc_exact : Heap.t -> violation list
(** Compare each live object's rc with the true number of pointers to it
    (from live objects' pointer slots, roots, frames, plus
    [extra_refs]). *)

val check_rc_exact_with : Heap.t -> extra_refs:(Heap.ptr -> int) -> violation list
(** Like {!check_rc_exact} but crediting [extra_refs p] additional counted
    references per object — used when the caller holds counted local
    pointers outside the heap. *)

val check_rc_lower_bound : Heap.t -> violation list
(** The paper's *always* half of the weak invariant: every live object's
    count must be at least the number of heap-visible pointers to it
    (slots of live objects, roots, frames). Counted thread-local
    references only add to the true total, so this holds at every
    instant, not just quiescence — usable from a monitor thread at any
    yield point. *)

val find_unreachable : Heap.t -> violation list

val assert_no_leaks : Heap.t -> unit
(** Raise [Failure] with a diagnostic if any object is live. Used by tests
    after tearing a structure down: LFRC must have freed everything. *)

val pp_violation : Format.formatter -> violation -> unit
