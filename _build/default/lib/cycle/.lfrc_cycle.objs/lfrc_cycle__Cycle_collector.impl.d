lib/cycle/cycle_collector.ml: Lfrc_simmem Lfrc_util List
