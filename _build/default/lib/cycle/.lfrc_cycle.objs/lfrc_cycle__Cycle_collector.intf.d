lib/cycle/cycle_collector.mli: Lfrc_simmem
