(** Backup collector for cyclic garbage — the paper's Section 7 extension.

    Reference counting cannot reclaim cycles: "the reference counts of
    nodes in a garbage cycle will remain non-zero forever" (paper, step
    3). The paper's proposed remedy is "to integrate a tracing collector
    that can be invoked occasionally in order to identify and collect
    cyclic garbage"; this module is that collector.

    [collect] marks every object reachable from the heap's registered
    roots and frames, then frees live-but-unreachable objects — exactly
    the objects whose counts are kept non-zero only by other garbage (the
    cycle members and everything hanging off them). It must run at a
    quiescent point: no LFRC operation in flight, no counted local
    pointer outside a registered frame (such a pointer's referent would
    look unreachable). Experiment E7 exercises it. *)

type collection = {
  cyclic_freed : int;  (** unreachable objects reclaimed *)
  live_after : int;
  pause_ns : int;
}

val collect : Lfrc_simmem.Heap.t -> collection

val cyclic_garbage : Lfrc_simmem.Heap.t -> Lfrc_simmem.Heap.ptr list
(** The objects [collect] would free, without freeing them — for tests
    and reporting. *)
