module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell

let mark_from h p =
  let rec go p =
    if p <> Heap.null && Heap.is_live h p && not (Heap.get_mark h p) then begin
      Heap.set_mark h p true;
      List.iter go (Heap.ptr_slot_values h p)
    end
  in
  go p

let unreachable h =
  Heap.iter_live h (fun p -> Heap.set_mark h p false);
  List.iter (fun root -> mark_from h (Cell.get root)) (Heap.roots h);
  Heap.iter_frame_roots h (fun p -> mark_from h p);
  let garbage = ref [] in
  Heap.iter_live h (fun p ->
      if not (Heap.get_mark h p) then garbage := p :: !garbage);
  !garbage

let cyclic_garbage = unreachable

type collection = { cyclic_freed : int; live_after : int; pause_ns : int }

let collect h =
  let t0 = Lfrc_util.Clock.now_ns () in
  let garbage = unreachable h in
  (* Freeing a cycle member with [Heap.free] directly would normally be
     unsound under LFRC (other garbage still points at it), but every
     pointer into this set comes from the set itself — that is what
     unreachable means — so the whole set goes at once. *)
  List.iter (fun p -> Heap.free h p) garbage;
  let t1 = Lfrc_util.Clock.now_ns () in
  {
    cyclic_freed = List.length garbage;
    live_after = Heap.live_count h;
    pause_ns = t1 - t0;
  }
