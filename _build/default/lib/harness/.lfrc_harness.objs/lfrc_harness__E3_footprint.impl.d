lib/harness/e3_footprint.ml: Array Common Lfrc_core Lfrc_reclaim Lfrc_simmem Lfrc_structures Lfrc_util List Printf
