lib/harness/e4_reclaim.ml: Array Common Float Lfrc_atomics Lfrc_core Lfrc_reclaim Lfrc_sched Lfrc_simmem Lfrc_structures Lfrc_util Lfrc_workload List Option Printf
