lib/harness/e3_footprint.mli: Lfrc_util
