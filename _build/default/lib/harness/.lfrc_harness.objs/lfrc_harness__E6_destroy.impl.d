lib/harness/e6_destroy.ml: Common Float Lfrc_core Lfrc_simmem Lfrc_util List Printf
