lib/harness/e2_throughput.ml: Array Common Float Lfrc_atomics Lfrc_core Lfrc_sched Lfrc_simmem Lfrc_structures Lfrc_util Lfrc_workload List
