lib/harness/scenario.mli: Format Lfrc_linearize Lfrc_sched Lfrc_structures
