lib/harness/experiments.ml: E10_search E1_overhead E2_throughput E3_footprint E4_reclaim E5_dcas E6_destroy E7_cycles E8_pauses E9_stall Lfrc_util List Printf String
