lib/harness/experiments.mli: Lfrc_util
