lib/harness/common.mli: Lfrc_atomics Lfrc_core Lfrc_structures
