lib/harness/e10_search.ml: Common Float Lfrc_atomics Lfrc_core Lfrc_structures Lfrc_util List
