lib/harness/e7_cycles.mli: Lfrc_util
