lib/harness/e1_overhead.mli: Lfrc_util
