lib/harness/e2_throughput.mli: Lfrc_util
