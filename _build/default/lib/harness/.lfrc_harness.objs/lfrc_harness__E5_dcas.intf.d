lib/harness/e5_dcas.mli: Lfrc_util
