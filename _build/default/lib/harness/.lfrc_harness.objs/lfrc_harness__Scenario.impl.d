lib/harness/scenario.ml: Buffer Format Lfrc_atomics Lfrc_core Lfrc_linearize Lfrc_sched Lfrc_simmem Lfrc_structures List Printf
