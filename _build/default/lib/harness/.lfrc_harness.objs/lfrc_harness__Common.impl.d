lib/harness/common.ml: Float Lfrc_core Lfrc_simmem Lfrc_structures Lfrc_util
