lib/harness/e8_pauses.mli: Lfrc_util
