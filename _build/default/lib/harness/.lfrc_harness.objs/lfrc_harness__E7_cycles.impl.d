lib/harness/e7_cycles.ml: Common Float Lfrc_core Lfrc_cycle Lfrc_simmem Lfrc_util
