lib/harness/e1_overhead.ml: Common Lfrc_atomics Lfrc_core Lfrc_simmem Lfrc_util
