lib/harness/e10_search.mli: Lfrc_util
