lib/harness/e4_reclaim.mli: Lfrc_util
