lib/harness/e8_pauses.ml: Array Common Float Lfrc_atomics Lfrc_core Lfrc_sched Lfrc_simmem Lfrc_structures Lfrc_util List
