lib/harness/e9_stall.mli: Lfrc_util
