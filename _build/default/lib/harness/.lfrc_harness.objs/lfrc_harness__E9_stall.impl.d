lib/harness/e9_stall.ml: Array Atomic Common Float Lfrc_atomics Lfrc_core Lfrc_sched Lfrc_simmem Lfrc_structures Lfrc_util Lfrc_workload List Printf
