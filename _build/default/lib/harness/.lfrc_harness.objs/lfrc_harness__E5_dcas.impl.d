lib/harness/e5_dcas.ml: Common Float Lfrc_atomics Lfrc_sched Lfrc_simmem Lfrc_util List
