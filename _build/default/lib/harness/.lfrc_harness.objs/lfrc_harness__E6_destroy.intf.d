lib/harness/e6_destroy.mli: Lfrc_util
