(** E1 — LFRC operation overhead vs. raw pointer operations. See the implementation header for the experiment's design and the expected shape. *)

val run : unit -> Lfrc_util.Table.t
(** Execute the experiment and return its table (regenerates the
    corresponding EXPERIMENTS.md section). *)
