(** E6 — long-chain destroy cost under the three destroy policies. See the implementation header for the experiment's design and the expected shape. *)

val run : unit -> Lfrc_util.Table.t
(** Execute the experiment and return its table (regenerates the
    corresponding EXPERIMENTS.md section). *)
