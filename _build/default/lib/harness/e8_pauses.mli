(** E8 — reclamation pause distributions: STW vs. incremental tracing vs. LFRC. See the implementation header for the experiment's design and the expected shape. *)

val run : unit -> Lfrc_util.Table.t
(** Execute the experiment and return its table (regenerates the
    corresponding EXPERIMENTS.md section). *)
