(** The experiment registry: every table in EXPERIMENTS.md is regenerated
    by one entry here. Used by [bin/lfrc_cli.exe] and [bench/main.exe]. *)

type experiment = {
  id : string;  (** "E1" .. "E8" *)
  title : string;
  run : unit -> Lfrc_util.Table.t;
}

val all : experiment list

val find : string -> experiment option
(** Case-insensitive lookup by id. *)

val run_and_print : experiment -> unit
val run_all : unit -> unit
