module Snark_gc = Lfrc_structures.Snark.Make (Lfrc_core.Gc_ops)
module Snark_fixed_lfrc = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

let fresh_env ?dcas_impl ?policy ?gc_threshold ~name () =
  let heap = Lfrc_simmem.Heap.create ~name () in
  Lfrc_core.Env.create ?dcas_impl ?policy ?gc_threshold heap

let time_per_op_ns ~iters f =
  for _ = 1 to min 1000 (iters / 10) do
    f ()
  done;
  let t0 = Lfrc_util.Clock.now_ns () in
  for _ = 1 to iters do
    f ()
  done;
  let t1 = Lfrc_util.Clock.now_ns () in
  Float.of_int (t1 - t0) /. Float.of_int iters

let deque_impls () =
  [
    ("locked", (module Lfrc_structures.Locked_deque : Lfrc_structures.Deque_intf.DEQUE), false);
    ("snark-gc", (module Snark_gc : Lfrc_structures.Deque_intf.DEQUE), true);
    ("snark-lfrc", (module Snark_fixed_lfrc : Lfrc_structures.Deque_intf.DEQUE), false);
  ]

let value_stream ~seed ~thread i = (((seed * 67) + thread) * 1_000_000) + i
