(** Shared plumbing for the experiment modules. *)

val fresh_env :
  ?dcas_impl:Lfrc_atomics.Dcas.impl ->
  ?policy:Lfrc_core.Env.policy ->
  ?gc_threshold:int ->
  name:string ->
  unit ->
  Lfrc_core.Env.t
(** A new heap wrapped in a new environment. *)

val time_per_op_ns : iters:int -> (unit -> unit) -> float
(** Wall-clock nanoseconds per call, after a small warmup. *)

val deque_impls :
  unit -> (string * (module Lfrc_structures.Deque_intf.DEQUE) * bool) list
(** (label, implementation, is-GC-dependent) triples used by E2:
    lock-based baseline, GC-dependent Snark, LFRC Snark (corrected). *)

val value_stream : seed:int -> thread:int -> int -> int
(** Deterministic distinct-ish value for the [int]h op of a thread. *)
