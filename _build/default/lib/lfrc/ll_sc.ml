module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell

type reservation = {
  cell : Cell.t;
  linked : Heap.ptr; (* counted: load_linked took a reference *)
  mutable consumed : bool;
}

let load_linked env cell =
  let dest = ref Heap.null in
  Lfrc.load env ~src:cell ~dest;
  { cell; linked = !dest; consumed = false }

let value r = r.linked

let consume r op =
  if r.consumed then invalid_arg ("Ll_sc." ^ op ^ ": reservation reused");
  r.consumed <- true

let store_conditional env r v =
  consume r "store_conditional";
  let ok = Lfrc.cas env r.cell ~old_ptr:r.linked ~new_ptr:v in
  (* The reservation's counted reference dies with it. *)
  Lfrc.destroy env r.linked;
  ok

let abandon env r =
  consume r "abandon";
  Lfrc.destroy env r.linked

let validate env r =
  if r.consumed then false
  else Lfrc.read_ptr env r.cell = r.linked
