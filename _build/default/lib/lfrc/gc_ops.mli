(** {!Ops_intf.OPS} implemented with raw pointer operations in a
    garbage-collected environment: the GC-dependent side of the paper's
    transformation (the left column of Table 1).

    Nothing is ever freed by this implementation; reclamation is the
    tracing collector's job ({!Lfrc_simmem.Gc_trace}). Each context
    registers its local pointer variables in a shadow-stack frame so the
    collector can see thread-local roots — standing in for the register
    and stack scanning a production collector performs (and which the
    paper identifies as the reason such collectors stop the world). *)

include Ops_intf.OPS
