module Heap = Lfrc_simmem.Heap

let name = "lfrc"

type ctx = Env.t

let make_ctx env = env
let dispose_ctx _ = ()
let env ctx = ctx

type local = Heap.ptr ref

let declare _ctx = ref Heap.null

let retire ctx local =
  Lfrc.destroy ctx !local;
  local := Heap.null

let get local = !local

let load ctx cell local = Lfrc.load ctx ~src:cell ~dest:local

let store ctx cell p = Lfrc.store ctx ~dst:cell p

let store_alloc ctx cell local =
  Lfrc.store_alloc ctx ~dst:cell !local;
  (* The allocation reference now lives in the cell, not the local. *)
  local := Heap.null

let copy ctx local p = Lfrc.copy ctx ~dest:local p

let set_null ctx local =
  Lfrc.destroy ctx !local;
  local := Heap.null

let cas ctx cell ~old_ptr ~new_ptr = Lfrc.cas ctx cell ~old_ptr ~new_ptr

let dcas ctx c0 c1 ~old0 ~old1 ~new0 ~new1 =
  Lfrc.dcas ctx c0 c1 ~old0 ~old1 ~new0 ~new1

let dcas_ptr_val ctx ~ptr_cell ~val_cell ~old_ptr ~new_ptr ~old_val ~new_val =
  Lfrc.dcas_ptr_val ctx ~ptr_cell ~val_cell ~old_ptr ~new_ptr ~old_val
    ~new_val

let alloc ctx layout local =
  let p = Lfrc.alloc ctx layout in
  (* The previous content dies; the new object's count of 1 is carried by
     the local. Plain assignment plus destroy keeps the counts exact. *)
  let old = !local in
  local := p;
  Lfrc.destroy ctx old

let read_val ctx cell = Lfrc_atomics.Dcas.read (Env.dcas ctx) cell
let write_val ctx cell v = Lfrc_atomics.Dcas.write (Env.dcas ctx) cell v
let cas_val ctx cell old_v new_v =
  Lfrc_atomics.Dcas.cas (Env.dcas ctx) cell old_v new_v
