(** Load-linked / store-conditional over LFRC pointers.

    The paper's Section 2.1: "it should be straightforward to extend our
    methodology to support other operations such as load-linked and
    store-conditional". This module is that extension, built the same way
    Figure 2 builds the others.

    [load_linked] is LFRCLoad plus a reservation recording the loaded
    value and the generation of the source cell's content;
    [store_conditional] succeeds only if the cell still holds the linked
    value — implemented with LFRCCAS, so its reference-count discipline
    is inherited. Because LFRC guarantees the linked object cannot be
    freed and recycled while the reservation (a counted local reference)
    exists, the classic weakness of CAS-emulated LL/SC — false success
    after ABA — cannot occur on pointer values: the "A" cannot come back
    while we hold it. A test demonstrates exactly this
    (test_lfrc_extensions). *)

type reservation
(** A pending link: carries a counted reference to the loaded object. *)

val load_linked : Env.t -> Lfrc_simmem.Cell.t -> reservation
(** Load the pointer in the cell and reserve it. *)

val value : reservation -> Lfrc_simmem.Heap.ptr
(** The pointer that was loaded (null included). *)

val store_conditional :
  Env.t -> reservation -> Lfrc_simmem.Heap.ptr -> bool
(** [store_conditional env r v] installs [v] iff the cell still holds the
    linked pointer. Either way the reservation is consumed (its count
    released); a reservation must not be used twice. *)

val abandon : Env.t -> reservation -> unit
(** Give up a reservation without storing. *)

val validate : Env.t -> reservation -> bool
(** Whether the cell currently still holds the linked value. *)
