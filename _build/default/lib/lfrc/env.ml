type policy =
  | Recursive
  | Iterative
  | Deferred of { budget_per_op : int }

type t = {
  env_heap : Lfrc_simmem.Heap.t;
  env_dcas : Lfrc_atomics.Dcas.t;
  env_policy : policy;
  pending : int Queue.t;
  pending_lock : Mutex.t;
  env_gc_threshold : int;
  mutable env_incremental : (Lfrc_simmem.Gc_incr.t * int) option;
}

let create ?dcas_impl ?(policy = Iterative) ?(gc_threshold = 0) heap =
  let impl =
    match dcas_impl with
    | Some i -> i
    | None ->
        if Lfrc_sched.Sched.active () then Lfrc_atomics.Dcas.Atomic_step
        else Lfrc_atomics.Dcas.Striped_lock
  in
  {
    env_heap = heap;
    env_dcas = Lfrc_atomics.Dcas.create impl;
    env_policy = policy;
    pending = Queue.create ();
    pending_lock = Mutex.create ();
    env_gc_threshold = gc_threshold;
    env_incremental = None;
  }

let heap t = t.env_heap
let dcas t = t.env_dcas
let policy t = t.env_policy
let gc_threshold t = t.env_gc_threshold

let set_incremental t ~collector ~budget =
  t.env_incremental <- Some (collector, budget)

let incremental t = t.env_incremental

let defer t p =
  Mutex.lock t.pending_lock;
  Queue.add p t.pending;
  Mutex.unlock t.pending_lock

let drain_deferred t ~max =
  Mutex.lock t.pending_lock;
  let rec go n acc =
    if (max >= 0 && n >= max) || Queue.is_empty t.pending then List.rev acc
    else go (n + 1) (Queue.pop t.pending :: acc)
  in
  let out = go 0 [] in
  Mutex.unlock t.pending_lock;
  out

let deferred_pending t =
  Mutex.lock t.pending_lock;
  let n = Queue.length t.pending in
  Mutex.unlock t.pending_lock;
  n
