lib/lfrc/env.ml: Lfrc_atomics Lfrc_sched Lfrc_simmem List Mutex Queue
