lib/lfrc/ops_intf.ml: Env Lfrc_simmem
