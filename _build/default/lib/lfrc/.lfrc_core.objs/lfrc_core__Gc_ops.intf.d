lib/lfrc/gc_ops.mli: Ops_intf
