lib/lfrc/lfrc_ops.mli: Ops_intf
