lib/lfrc/lfrc.mli: Env Lfrc_simmem
