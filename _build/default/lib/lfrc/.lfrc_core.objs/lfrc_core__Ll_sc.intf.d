lib/lfrc/ll_sc.mli: Env Lfrc_simmem
