lib/lfrc/lfrc_ops.ml: Env Lfrc Lfrc_atomics Lfrc_simmem
