lib/lfrc/lfrc.ml: Array Env Fun Lfrc_atomics Lfrc_simmem List
