lib/lfrc/gc_ops.ml: Env Lfrc_atomics Lfrc_sched Lfrc_simmem List
