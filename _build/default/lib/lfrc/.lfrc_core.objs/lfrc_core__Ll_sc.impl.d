lib/lfrc/ll_sc.ml: Lfrc Lfrc_simmem
