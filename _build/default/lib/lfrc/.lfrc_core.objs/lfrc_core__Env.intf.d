lib/lfrc/env.mli: Lfrc_atomics Lfrc_simmem
