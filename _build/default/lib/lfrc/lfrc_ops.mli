(** {!Ops_intf.OPS} implemented with the LFRC operations: the
    GC-independent side of the paper's transformation (the right column of
    Table 1). Local pointer variables hold counted references; [retire]
    performs the LFRCDestroy the paper's step 6 requires. *)

include Ops_intf.OPS
