type ('op, 'res) event = {
  thread : int;
  op : 'op;
  result : 'res;
  invoked_at : int;
  returned_at : int;
}

type ('op, 'res) t = {
  mutable evs : ('op, 'res) event list;
  clock : int Atomic.t;
  lock : Mutex.t;
}

let create () = { evs = []; clock = Atomic.make 0; lock = Mutex.create () }

(* Simulated time when under the scheduler; otherwise a private logical
   clock (ticked at each event) gives a valid real-time order because
   recording is serialized by the mutex. *)
let now t =
  if Lfrc_sched.Sched.active () then Lfrc_sched.Sched.steps_so_far ()
  else Atomic.fetch_and_add t.clock 1

let record t ~thread op f =
  let invoked_at = now t in
  let result = f () in
  let returned_at = now t in
  let ev = { thread; op; result; invoked_at; returned_at } in
  Mutex.lock t.lock;
  t.evs <- ev :: t.evs;
  Mutex.unlock t.lock;
  result

let events t = List.rev t.evs

let size t = List.length t.evs

let pp ~pp_op ~pp_res ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "t%d: %a -> %a @@ [%d,%d]@." e.thread pp_op e.op
        pp_res e.result e.invoked_at e.returned_at)
    (events t)
