(** Linearizability checking (Wing & Gong's algorithm).

    Given a completed history and a sequential specification, search for a
    permutation of the operations that (a) respects real-time order — an
    operation that returned before another was invoked must come first —
    and (b) replays correctly against the specification, each operation
    producing the result it actually returned. Exponential in the worst
    case; fine for the short histories the model checker and qcheck
    produce (≲ 20 operations). *)

module type SPEC = sig
  type state
  type op
  type res

  val init : state
  val apply : state -> op -> state * res
  val equal_res : res -> res -> bool
  val pp_op : Format.formatter -> op -> unit
  val pp_res : Format.formatter -> res -> unit
end

module Make (S : SPEC) : sig
  type verdict =
    | Linearizable of (S.op * S.res) list
        (** A witness order that replays correctly. *)
    | Not_linearizable

  val check : (S.op, S.res) History.t -> verdict

  val check_events : (S.op, S.res) History.event list -> verdict

  val explain : Format.formatter -> (S.op, S.res) History.t -> unit
  (** Print the history and the verdict — the counterexample report. *)
end
