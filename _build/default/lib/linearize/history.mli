(** Concurrent operation histories.

    Threads record an invocation event when an operation starts and a
    response event when it returns; the recorder timestamps both with the
    scheduler's step counter (simulated time) or a global sequence number
    (real time). Two operations are concurrent iff their
    invocation-response intervals overlap; the linearizability checker
    ({!Checker}) asks whether some order of the operations consistent with
    the non-overlapping (real-time) order is accepted by a sequential
    specification. *)

type ('op, 'res) event = {
  thread : int;
  op : 'op;
  result : 'res;
  invoked_at : int;
  returned_at : int;
}

type ('op, 'res) t

val create : unit -> ('op, 'res) t

val record : ('op, 'res) t -> thread:int -> 'op -> (unit -> 'res) -> 'res
(** [record h ~thread op f] runs [f] bracketed by invocation/response
    timestamps and stores the completed event. Safe from multiple
    simulated threads (single domain) and from real domains (mutex). *)

val events : ('op, 'res) t -> ('op, 'res) event list
(** All completed events. *)

val size : ('op, 'res) t -> int

val pp :
  pp_op:(Format.formatter -> 'op -> unit) ->
  pp_res:(Format.formatter -> 'res -> unit) ->
  Format.formatter ->
  ('op, 'res) t ->
  unit
