module type SPEC = sig
  type state
  type op
  type res

  val init : state
  val apply : state -> op -> state * res
  val equal_res : res -> res -> bool
  val pp_op : Format.formatter -> op -> unit
  val pp_res : Format.formatter -> res -> unit
end

module Make (S : SPEC) = struct
  type verdict = Linearizable of (S.op * S.res) list | Not_linearizable

  (* DFS over "minimal" events: an event may be linearized next iff no
     other pending event returned before it was invoked. *)
  let check_events evs =
    let evs = Array.of_list evs in
    let n = Array.length evs in
    let taken = Array.make n false in
    let rec go state acc k =
      if k = n then Some (List.rev acc)
      else begin
        let minimal i =
          (not taken.(i))
          &&
          let e = evs.(i) in
          (* No untaken event returned strictly before e was invoked. *)
          let blocked = ref false in
          for j = 0 to n - 1 do
            if (not taken.(j)) && j <> i then begin
              let f = evs.(j) in
              if f.History.returned_at < e.History.invoked_at then
                blocked := true
            end
          done;
          not !blocked
        in
        let rec try_each i =
          if i >= n then None
          else if minimal i then begin
            let e = evs.(i) in
            let state', res = S.apply state e.History.op in
            if S.equal_res res e.History.result then begin
              taken.(i) <- true;
              match go state' ((e.History.op, e.History.result) :: acc) (k + 1) with
              | Some w -> Some w
              | None ->
                  taken.(i) <- false;
                  try_each (i + 1)
            end
            else try_each (i + 1)
          end
          else try_each (i + 1)
        in
        try_each 0
      end
    in
    match go S.init [] 0 with
    | Some w -> Linearizable w
    | None -> Not_linearizable

  let check h = check_events (History.events h)

  let explain ppf h =
    History.pp ~pp_op:S.pp_op ~pp_res:S.pp_res ppf h;
    match check h with
    | Linearizable w ->
        Format.fprintf ppf "linearizable; witness:@.";
        List.iter
          (fun (op, res) ->
            Format.fprintf ppf "  %a -> %a@." S.pp_op op S.pp_res res)
          w
    | Not_linearizable -> Format.fprintf ppf "NOT linearizable@."
end
