lib/linearize/history.ml: Atomic Format Lfrc_sched List Mutex
