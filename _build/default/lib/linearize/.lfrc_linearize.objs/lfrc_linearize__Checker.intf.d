lib/linearize/checker.mli: Format History
