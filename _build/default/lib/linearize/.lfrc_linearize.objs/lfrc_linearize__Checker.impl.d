lib/linearize/checker.ml: Array Format History List
