lib/linearize/history.mli: Format
