lib/workload/opmix.ml: Array Format Lfrc_util List Printf String
