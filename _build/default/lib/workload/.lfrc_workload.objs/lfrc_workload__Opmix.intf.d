lib/workload/opmix.mli: Format
