type kind = Push_left | Push_right | Pop_left | Pop_right

type t = { weights : (kind * int) list; mix_name : string }

let make weights =
  if weights = [] || List.exists (fun (_, w) -> w < 0) weights then
    invalid_arg "Opmix.make";
  let mix_name =
    String.concat "/"
      (List.map
         (fun (k, w) ->
           let tag =
             match k with
             | Push_left -> "pl"
             | Push_right -> "pr"
             | Pop_left -> "ol"
             | Pop_right -> "or"
           in
           Printf.sprintf "%s%d" tag w)
         weights)
  in
  { weights; mix_name }

let named name weights = { (make weights) with mix_name = name }

let balanced_deque =
  named "balanced"
    [ (Push_left, 25); (Push_right, 25); (Pop_left, 25); (Pop_right, 25) ]

let push_heavy =
  named "push-heavy"
    [ (Push_left, 40); (Push_right, 40); (Pop_left, 10); (Pop_right, 10) ]

let pop_heavy =
  named "pop-heavy"
    [ (Push_left, 10); (Push_right, 10); (Pop_left, 40); (Pop_right, 40) ]

let right_only = named "right-only" [ (Push_right, 50); (Pop_right, 50) ]

let stream t ~seed ~thread n =
  let rng = Lfrc_util.Rng.create ((seed * 1_000_003) + thread) in
  let total = List.fold_left (fun a (_, w) -> a + w) 0 t.weights in
  let draw () =
    let x = Lfrc_util.Rng.int rng total in
    let rec pick acc = function
      | [] -> assert false
      | (k, w) :: rest -> if x < acc + w then k else pick (acc + w) rest
    in
    pick 0 t.weights
  in
  Array.init n (fun _ -> draw ())

let name t = t.mix_name

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Push_left -> "push_left"
    | Push_right -> "push_right"
    | Pop_left -> "pop_left"
    | Pop_right -> "pop_right")
