(** Deterministic operation-mix generators for the benchmarks.

    A mix assigns weights to abstract operation kinds; each thread draws
    its own reproducible stream from a seed, so a benchmark run is fully
    determined by (mix, seed, thread count, ops per thread). *)

type kind = Push_left | Push_right | Pop_left | Pop_right

type t

val make : (kind * int) list -> t
(** Weighted mix; weights need not sum to anything in particular. *)

val balanced_deque : t
(** 25% each of the four deque operations. *)

val push_heavy : t
(** 40/40 pushes, 10/10 pops: grows the structure. *)

val pop_heavy : t
(** 10/10 pushes, 40/40 pops: drains the structure. *)

val right_only : t
(** 50/50 push-right/pop-right: single-ended (stack-like) usage. *)

val stream : t -> seed:int -> thread:int -> int -> kind array
(** [stream mix ~seed ~thread n] is thread [thread]'s deterministic
    sequence of [n] operations. *)

val name : t -> string
val pp_kind : Format.formatter -> kind -> unit
