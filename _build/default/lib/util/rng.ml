(* Splitmix64 implemented over Int64 (OCaml's native int is 63-bit). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = mix64 (Int64.add (Int64.of_int seed) golden_gamma) }

let raw t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let next t = Int64.to_int (raw t) land max_int

let split t = { state = raw t }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias on pathological bounds. *)
  let limit = max_int - (max_int mod bound) in
  let rec go () =
    let v = next t in
    if v < limit then v mod bound else go ()
  in
  go ()

let bool t = next t land 1 = 1

let float t = Float.of_int (next t) /. Float.of_int max_int

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
