(** Monotonic wall-clock timing helpers for benchmarks. *)

val now_ns : unit -> int
(** Monotonic clock reading in nanoseconds. *)

val time_ns : (unit -> 'a) -> 'a * int
(** [time_ns f] runs [f] and returns its result with the elapsed time. *)

val ns_per_op : total_ns:int -> ops:int -> float
