type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_rowf t fmt =
  Printf.ksprintf
    (fun s -> add_row t (String.split_on_char '|' s |> List.map String.trim))
    fmt

let widths t =
  let all = t.columns :: List.rev t.rows in
  let n = List.length t.columns in
  let w = Array.make n 0 in
  let measure row =
    List.iteri (fun i cell -> if i < n then w.(i) <- max w.(i) (String.length cell)) row
  in
  List.iter measure all;
  w

let render t =
  let w = widths t in
  let buf = Buffer.create 256 in
  let pad i s = s ^ String.make (w.(i) - String.length s) ' ' in
  let line row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (pad i cell);
        Buffer.add_string buf " | ")
      row;
    (* Drop the trailing space of the last separator. *)
    let len = Buffer.length buf in
    Buffer.truncate buf (len - 1);
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  line t.columns;
  let rule = Array.fold_left (fun acc x -> acc + x + 3) 1 w in
  Buffer.add_string buf (String.make rule '-');
  Buffer.add_char buf '\n';
  List.iter line (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (render t)

let csv t =
  let buf = Buffer.create 256 in
  let line row = Buffer.add_string buf (String.concat "," row ^ "\n") in
  line t.columns;
  List.iter line (List.rev t.rows);
  Buffer.contents buf
