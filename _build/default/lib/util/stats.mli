(** Summary statistics for benchmark and experiment measurements. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val summarize : float array -> summary
(** [summarize xs] computes the summary of a non-empty sample. The input
    array is not modified. *)

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]]; [sorted] must be sorted
    ascending. Linear interpolation between ranks. *)

val pp_summary : Format.formatter -> summary -> unit

(** Fixed-width histogram used for pause-time distributions (E8). *)
module Histogram : sig
  type t

  val create : buckets:float array -> t
  (** [create ~buckets] uses [buckets] as ascending upper bounds; an
      implicit overflow bucket catches the rest. *)

  val add : t -> float -> unit
  val count : t -> int
  val bucket_counts : t -> (string * int) list
  (** Label/count pairs, labels rendered from bounds. *)
end
