(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that every
    experiment, stress test and scheduler run is reproducible from a seed.
    The core generator is splitmix64, which has a one-word state and passes
    BigCrush; it is also used to seed independent per-thread streams. *)

type t
(** Mutable generator state. Not thread-safe; give each thread its own
    stream via {!split}. *)

val create : int -> t
(** [create seed] makes a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated thread its own deterministic stream. *)

val next : t -> int
(** [next t] returns a uniformly distributed non-negative 62-bit int. *)

val int : t -> int -> int
(** [int t bound] returns a uniform value in [\[0, bound)]. [bound] must be
    positive. *)

val bool : t -> bool
(** Uniform coin flip. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] returns a uniformly chosen element. [arr] must be
    non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
