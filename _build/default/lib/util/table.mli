(** Aligned plain-text tables, used by the experiment harness to print the
    rows recorded in EXPERIMENTS.md. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Rows must have as many entries as there are columns. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats one string and splits it on ['|'] into
    cells — convenient for numeric rows. *)

val render : t -> string
val print : t -> unit

val csv : t -> string
(** Comma-separated rendering (no escaping; cells must avoid commas). *)
