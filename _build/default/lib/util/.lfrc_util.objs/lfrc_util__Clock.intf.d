lib/util/clock.mli:
