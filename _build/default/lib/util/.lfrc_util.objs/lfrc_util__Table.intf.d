lib/util/table.mli:
