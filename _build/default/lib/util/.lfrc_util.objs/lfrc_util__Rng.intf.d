lib/util/rng.mli:
