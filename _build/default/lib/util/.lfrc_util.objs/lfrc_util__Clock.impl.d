lib/util/clock.ml: Float Int64 Unix
