type step = { tid : int; enabled : int }
type t = step array

let chosen t = Array.map (fun s -> s.tid) t

let enabled_list s =
  let rec go i acc =
    if i > 62 then List.rev acc
    else go (i + 1) (if s.enabled land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 0 []

let is_preemption t i =
  i > 0
  && t.(i).tid <> t.(i - 1).tid
  && t.(i).enabled land (1 lsl t.(i - 1).tid) <> 0

let preemptions t =
  let count = ref 0 in
  Array.iteri (fun i _ -> if is_preemption t i then incr count) t;
  !count

let pp ?names ppf t =
  let name tid =
    match names with
    | Some ns when tid < Array.length ns -> ns.(tid)
    | _ -> Printf.sprintf "t%d" tid
  in
  Array.iteri
    (fun i s ->
      Format.fprintf ppf "%4d: %s%s (enabled: %s)@." i (name s.tid)
        (if is_preemption t i then " [preempt]" else "")
        (String.concat "," (List.map name (enabled_list s))))
    t
