lib/sched/strategy.ml: Array Lfrc_util List Option
