lib/sched/explore.ml: Array List Option Sched Stack Stdlib Strategy Trace
