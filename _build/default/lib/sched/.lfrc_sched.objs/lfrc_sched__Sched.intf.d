lib/sched/sched.mli: Strategy Trace
