lib/sched/strategy.mli:
