lib/sched/explore.mli: Trace
