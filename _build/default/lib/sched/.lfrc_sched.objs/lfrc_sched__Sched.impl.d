lib/sched/sched.ml: Array Effect List Printexc Printf Strategy Trace
