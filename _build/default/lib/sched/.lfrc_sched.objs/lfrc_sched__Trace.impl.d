lib/sched/trace.ml: Array Format List Printf String
