(** Deterministic cooperative scheduler built on OCaml effects.

    Simulated threads are ordinary closures that call {!point} at every
    shared-memory operation (the atomics layer does this automatically).
    Between two yield points a thread runs atomically, so each primitive
    memory operation is indivisible with respect to other simulated
    threads — exactly the granularity at which the paper's algorithms must
    be correct.

    The same algorithm code runs unchanged under real domains: outside a
    simulation {!point} is a no-op.

    A scheduler run is single-domain and must not be nested. *)

exception Step_limit_exceeded of int
(** Raised (inside [run]) when the run exceeds its step budget — the
    livelock detector for randomized checking. *)

exception Thread_failure of { tid : int; exn : exn; trace : Trace.t option }
(** Raised by [run] when a simulated thread raised; carries the trace when
    recording was on. *)

type outcome = {
  steps : int;  (** total scheduling decisions taken *)
  per_thread_steps : int array;
  trace : Trace.t option;  (** present iff [record] was true *)
}

val run :
  ?max_steps:int ->
  ?record:bool ->
  Strategy.t ->
  (unit -> unit) ->
  outcome
(** [run strategy main] executes [main] as thread 0, scheduling it and any
    threads it {!spawn}s until all have finished. [max_steps] defaults to
    10 million; [record] (default [false]) keeps the full trace. *)

val spawn : ?name:string -> (unit -> unit) -> int
(** Create a new simulated thread; returns its id. Must be called from
    inside a run. The spawner keeps running (spawn is not a yield point). *)

exception Stuck of { unfinished : int list }
(** Raised by [run] when no thread is runnable but some have not finished
    (a join cycle — cannot happen with well-formed fork/join use). *)

val join : int list -> unit
(** Block the calling simulated thread until all the given threads have
    finished. Must be called from inside a run. *)

val kill : int -> unit
(** Permanently fail a simulated thread: it is never scheduled again and
    its pending work simply vanishes — the paper's footnote 3 scenario
    ("it is possible for garbage to exist and never be freed in the case
    where a thread fails permanently"). Joins waiting on it are released
    (the thread is finished, albeit abnormally). Must be called from
    inside a run; killing the current thread is not supported. *)

val point : unit -> unit
(** Yield point. Inside a simulation: hand control to the scheduler.
    Outside: no-op. *)

val active : unit -> bool
(** Whether the calling code is executing inside a simulation run. *)

val tid : unit -> int
(** Current simulated thread id; 0 outside a simulation. *)

val steps_so_far : unit -> int
(** Scheduling decisions taken so far in the current run; usable as a
    simulated clock by harness code. 0 outside a simulation. *)
