(** Execution traces of the deterministic scheduler.

    A trace is the sequence of scheduling decisions of one run: for every
    step, which thread was chosen and which threads were enabled. Traces
    are what the model checker ({!Explore}) reports as counterexamples and
    what the scripted strategy replays. *)

type step = {
  tid : int;  (** thread chosen at this step *)
  enabled : int;  (** bitmask of enabled thread ids at this step *)
}

type t = step array

val chosen : t -> int array
(** Just the scheduling decisions, suitable for scripted replay. *)

val enabled_list : step -> int list
(** Decode the bitmask into a list of thread ids. *)

val preemptions : t -> int
(** Number of steps at which the scheduler switched away from a thread that
    was still enabled — the measure bounded by CHESS-style exploration. *)

val pp : ?names:string array -> Format.formatter -> t -> unit
(** Render one decision per line, marking preemption points. *)
