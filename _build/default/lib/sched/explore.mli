(** Systematic interleaving exploration (stateless model checking).

    [Explore] re-executes a test body under every schedule (optionally up
    to a preemption bound, as in CHESS), using the {!Strategy.Scripted}
    strategy to force prefixes and recording traces to enumerate the
    un-taken branches. The body must be deterministic apart from
    scheduling.

    The paper's Snark deque races are found by exactly this technique; see
    [examples/find_snark_bug.ml]. *)

type result =
  | Ok of { schedules : int }
      (** Every schedule within the bounds passed the check. *)
  | Violation of {
      schedules : int;  (** schedules executed before the violation *)
      schedule : int array;  (** thread choices reproducing the failure *)
      trace : Trace.t;
      exn : exn;
    }
  | Budget_exhausted of { schedules : int }
      (** [max_schedules] hit with neither a violation nor completion. *)

val check :
  ?max_steps:int ->
  ?max_preemptions:int ->
  ?max_schedules:int ->
  body:(unit -> unit) ->
  check:(unit -> unit) ->
  unit ->
  result
(** [check ~body ~check ()] runs [body] (thread 0; it spawns workers) under
    systematically varied schedules and calls [check] after each complete
    run; exceptions from either are violations. Defaults: [max_steps]
    100_000 per run, no preemption bound, [max_schedules] 200_000. *)

val replay : ?max_steps:int -> int array -> (unit -> unit) -> Trace.t
(** [replay schedule body] re-runs [body] under the recorded schedule with
    tracing on, for debugging a counterexample. *)
