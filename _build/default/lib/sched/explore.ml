type result =
  | Ok of { schedules : int }
  | Violation of {
      schedules : int;
      schedule : int array;
      trace : Trace.t;
      exn : exn;
    }
  | Budget_exhausted of { schedules : int }

(* Count preemptions in [trace] restricted to its first [len] steps. *)
let preemptions_upto trace len =
  let count = ref 0 in
  for i = 1 to min len (Array.length trace) - 1 do
    let s : Trace.step = trace.(i) in
    let prev : Trace.step = trace.(i - 1) in
    if s.tid <> prev.tid && s.enabled land (1 lsl prev.tid) <> 0 then
      incr count
  done;
  !count

let run_one ~max_steps prefix body =
  Sched.run ~max_steps ~record:true
    (Strategy.Scripted { prefix; tail_seed = None })
    body

let check ?(max_steps = 100_000) ?max_preemptions ?(max_schedules = 200_000)
    ~body ~check () =
  (* Work-list of (forced prefix, length of the prefix that is "new", i.e.
     positions >= start may branch). Standard stateless DFS: children are
     generated only at positions at or beyond the forced prefix length, so
     every schedule is executed exactly once. *)
  let stack = Stack.create () in
  Stack.push [||] stack;
  let executed = ref 0 in
  let violation = ref None in
  (try
     while (not (Stack.is_empty stack)) && !violation = None do
       if !executed >= max_schedules then raise Stdlib.Exit;
       let prefix = Stack.pop stack in
       incr executed;
       let outcome =
         match run_one ~max_steps prefix body with
         | o -> (
             match check () with
             | () -> Stdlib.Ok o
             | exception exn -> Stdlib.Error (exn, o.Sched.trace))
         | exception Sched.Thread_failure { exn; trace; _ } ->
             Stdlib.Error (exn, trace)
         | exception (Strategy.Script_diverged _ as exn) -> raise exn
         | exception exn -> Stdlib.Error (exn, None)
       in
       match outcome with
       | Stdlib.Error (exn, trace) ->
           let trace = Option.value trace ~default:[||] in
           violation :=
             Some
               (Violation
                  {
                    schedules = !executed;
                    schedule = Trace.chosen trace;
                    trace;
                    exn;
                  })
       | Stdlib.Ok o ->
           let trace = Option.get o.Sched.trace in
           let forced = Array.length prefix in
           (* Push deeper branch points first-last so the DFS explores in a
              stable order; each child forces one alternative decision. *)
           for i = Array.length trace - 1 downto forced do
             let step = trace.(i) in
             let enabled = Trace.enabled_list step in
             List.iter
               (fun alt ->
                 if alt <> step.Trace.tid then begin
                   let child = Array.make (i + 1) 0 in
                   Array.blit (Trace.chosen trace) 0 child 0 i;
                   child.(i) <- alt;
                   let ok_preempt =
                     match max_preemptions with
                     | None -> true
                     | Some bound ->
                         (* Preemptions in the child's forced prefix: same
                            as the parent's up to i, plus one if forcing
                            [alt] preempts a still-enabled previous
                            thread. *)
                         let base = preemptions_upto trace i in
                         let extra =
                           if
                             i > 0
                             && alt <> trace.(i - 1).Trace.tid
                             && step.Trace.enabled
                                land (1 lsl trace.(i - 1).Trace.tid)
                                <> 0
                           then 1
                           else 0
                         in
                         base + extra <= bound
                   in
                   if ok_preempt then Stack.push child stack
                 end)
               enabled
           done
     done
   with Stdlib.Exit -> ());
  match !violation with
  | Some v -> v
  | None ->
      if Stack.is_empty stack then Ok { schedules = !executed }
      else Budget_exhausted { schedules = !executed }

let replay ?(max_steps = 100_000) schedule body =
  match
    Sched.run ~max_steps ~record:true
      (Strategy.Scripted { prefix = schedule; tail_seed = None })
      body
  with
  | outcome -> Option.get outcome.Sched.trace
  | exception Sched.Thread_failure { trace; _ } ->
      Option.value trace ~default:[||]
