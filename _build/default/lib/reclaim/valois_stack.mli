(** Valois-style CAS-only reference counting with a type-stable free-list
    (the paper's reference [19]) on a Treiber stack.

    The paper's Section 5 explains the contrast: with only single-word
    CAS, the count of an object can be incremented *after* the object was
    freed, so Valois must never return nodes to the general allocator —
    they park on a private free-list whose memory is permanently dedicated
    to the stack ("type-stable"). The stale increment then lands on a
    free node and is compensated when validation fails, which is safe
    precisely because the memory is still a node.

    Consequence measured by experiment E3: the structure's footprint can
    only grow — after a drain, every node sits on the free-list — whereas
    LFRC returns memory to the allocator and the footprint shrinks.

    Deviation, documented in DESIGN.md: Valois's lock-free free-list
    management is replaced by a mutex-protected free-list (the paper's
    own footnote-1 boundary treats the allocator as outside the
    lock-freedom claim); the stack operations themselves are CAS-only and
    use SafeRead counting faithfully. *)

include Lfrc_structures.Stack_intf.STACK

type counters = { freelist_len : int; recycled : int }

val counters : t -> counters
