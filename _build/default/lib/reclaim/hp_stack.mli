(** Treiber stack reclaimed with hazard pointers: pop protects the top
    node before dereferencing it and retires it after unlinking.
    Implements {!Lfrc_structures.Stack_intf.STACK} for experiment E4. *)

include Lfrc_structures.Stack_intf.STACK
