lib/reclaim/hp_stack.mli: Lfrc_structures
