lib/reclaim/valois_stack.mli: Lfrc_structures
