lib/reclaim/ebr_stack.mli: Lfrc_structures
