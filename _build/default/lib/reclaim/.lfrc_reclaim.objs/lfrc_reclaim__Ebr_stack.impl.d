lib/reclaim/ebr_stack.ml: Epoch Lfrc_atomics Lfrc_core Lfrc_simmem Lfrc_structures
