lib/reclaim/hazard.ml: Array Atomic Hashtbl Lfrc_sched Lfrc_simmem List Mutex
