lib/reclaim/hp_stack.ml: Hazard Lfrc_atomics Lfrc_core Lfrc_simmem Lfrc_structures
