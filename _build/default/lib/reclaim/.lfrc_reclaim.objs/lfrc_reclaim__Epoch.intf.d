lib/reclaim/epoch.mli: Lfrc_simmem
