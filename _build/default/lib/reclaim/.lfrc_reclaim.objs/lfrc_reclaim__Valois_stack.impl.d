lib/reclaim/valois_stack.ml: Atomic Lfrc_atomics Lfrc_core Lfrc_simmem Lfrc_structures Mutex
