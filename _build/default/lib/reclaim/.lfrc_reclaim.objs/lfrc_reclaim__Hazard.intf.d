lib/reclaim/hazard.mli: Lfrc_simmem
