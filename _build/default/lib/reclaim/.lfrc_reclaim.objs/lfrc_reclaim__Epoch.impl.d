lib/reclaim/epoch.ml: Array Atomic Lfrc_sched Lfrc_simmem List Mutex
