(** Common signature for queue implementations (concurrent FIFO). *)

module type QUEUE = sig
  val name : string

  type t
  type handle

  val create : Lfrc_core.Env.t -> t
  val register : t -> handle
  val unregister : handle -> unit
  val enqueue : handle -> int -> unit
  val dequeue : handle -> int option
  val destroy : t -> unit
end
