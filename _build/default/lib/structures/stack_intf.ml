(** Common signature for stack implementations (concurrent LIFO). *)

module type STACK = sig
  val name : string

  type t
  type handle

  val create : Lfrc_core.Env.t -> t
  val register : t -> handle
  val unregister : handle -> unit
  val push : handle -> int -> unit
  val pop : handle -> int option
  val destroy : t -> unit
end
