lib/structures/spec.mli: Format
