lib/structures/msqueue.mli: Lfrc_core Lfrc_simmem Queue_intf
