lib/structures/spec.ml: Format List String
