lib/structures/snode.mli: Lfrc_simmem
