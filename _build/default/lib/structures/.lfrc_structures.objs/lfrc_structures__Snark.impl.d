lib/structures/snark.ml: Lfrc_core List Snark_common Snode
