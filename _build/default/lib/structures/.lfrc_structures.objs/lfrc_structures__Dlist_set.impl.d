lib/structures/dlist_set.ml: Lfrc_core Lfrc_simmem List
