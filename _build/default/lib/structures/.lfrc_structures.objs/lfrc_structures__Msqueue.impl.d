lib/structures/msqueue.ml: Lfrc_core Lfrc_simmem
