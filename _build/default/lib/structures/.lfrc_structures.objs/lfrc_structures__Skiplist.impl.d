lib/structures/skiplist.ml: Array Hashtbl Lfrc_core Lfrc_simmem Lfrc_util List Option Printf
