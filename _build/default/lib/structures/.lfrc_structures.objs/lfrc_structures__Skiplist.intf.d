lib/structures/skiplist.mli: Lfrc_core
