lib/structures/snark.mli: Deque_intf Lfrc_core
