lib/structures/stack_intf.ml: Lfrc_core
