lib/structures/snark_common.ml: Array Lfrc_core Lfrc_simmem List Snode
