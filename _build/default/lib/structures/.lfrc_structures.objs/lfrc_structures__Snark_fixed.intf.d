lib/structures/snark_fixed.mli: Deque_intf Lfrc_core
