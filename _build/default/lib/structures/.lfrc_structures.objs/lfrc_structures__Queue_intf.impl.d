lib/structures/queue_intf.ml: Lfrc_core
