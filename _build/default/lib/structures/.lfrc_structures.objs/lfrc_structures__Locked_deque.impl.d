lib/structures/locked_deque.ml: Domain Fun Lfrc_atomics Lfrc_core Lfrc_simmem
