lib/structures/treiber.ml: Lfrc_core Lfrc_simmem
