lib/structures/deque_intf.ml: Lfrc_core
