lib/structures/snode.ml: Lfrc_simmem
