lib/structures/locked_deque.mli: Deque_intf
