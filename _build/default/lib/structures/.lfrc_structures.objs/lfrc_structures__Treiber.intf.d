lib/structures/treiber.mli: Lfrc_core Lfrc_simmem Stack_intf
