lib/structures/dlist_set.mli: Lfrc_core Lfrc_simmem
