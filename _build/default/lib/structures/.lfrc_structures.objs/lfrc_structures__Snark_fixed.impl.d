lib/structures/snark_fixed.ml: Lfrc_core List Snark_common Snode
