module Deque = struct
  (* Two stacks with lazy rebalancing: [front] holds the left end in
     order, [back] holds the right end reversed. *)
  type t = { front : int list; back : int list }

  let empty = { front = []; back = [] }
  let is_empty t = t.front = [] && t.back = []
  let length t = List.length t.front + List.length t.back
  let push_left v t = { t with front = v :: t.front }
  let push_right v t = { t with back = v :: t.back }

  let pop_left t =
    match t.front with
    | v :: front -> Some (v, { t with front })
    | [] -> (
        match List.rev t.back with
        | [] -> None
        | v :: front -> Some (v, { front; back = [] }))

  let pop_right t =
    match t.back with
    | v :: back -> Some (v, { t with back })
    | [] -> (
        match List.rev t.front with
        | [] -> None
        | v :: back -> Some (v, { back; front = [] }))

  let to_list t = t.front @ List.rev t.back
  let of_list l = { front = l; back = [] }
  let equal a b = to_list a = to_list b

  let pp ppf t =
    Format.fprintf ppf "[%s]"
      (String.concat ";" (List.map string_of_int (to_list t)))
end

module Stack = struct
  type t = int list

  let empty = []
  let push v t = v :: t
  let pop = function [] -> None | v :: t -> Some (v, t)
  let to_list t = t
end

module Queue = struct
  type t = { front : int list; back : int list }

  let empty = { front = []; back = [] }
  let enqueue v t = { t with back = v :: t.back }

  let dequeue t =
    match t.front with
    | v :: front -> Some (v, { t with front })
    | [] -> (
        match List.rev t.back with
        | [] -> None
        | v :: front -> Some (v, { front; back = [] }))

  let to_list t = t.front @ List.rev t.back
end
