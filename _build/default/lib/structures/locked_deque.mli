(** Lock-based deque baseline.

    A doubly-linked list guarded by a test-and-set spinlock, with immediate
    manual [free] on pop — trivially correct memory management, because the
    lock serializes everything. This is the world the paper wants to escape
    from: experiment E2 compares its behaviour under contention (every
    spin is a scheduler step, so simulated-time contention is visible)
    against the lock-free deques.

    Implements {!Deque_intf.DEQUE}; handles are freely shareable since all
    state is in the structure. *)

include Deque_intf.DEQUE
