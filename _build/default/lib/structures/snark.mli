(** The Snark DCAS-based lock-free deque (Detlefs, Flood, Garthwaite,
    Martin, Shavit, Steele, DISC 2000) — the example the paper transforms.

    This is the *published* algorithm, faithfully reconstructed: the
    paper's Figure 1 gives the class declarations and pushRight; the other
    three operations mirror it per the cited DISC paper, using the LFRC
    paper's own modification of installing null pointers instead of
    sentinel self-pointers (its step 3, making garbage cycle-free).

    Instantiated with {!Lfrc_core.Gc_ops} it is the paper's left column
    (GC-dependent); with {!Lfrc_core.Lfrc_ops} it is the right column
    (GC-independent). Both share this one functor body: the transformation
    of Section 3 / Table 1 is the functor application.

    Beware: the published algorithm has real races, discovered after
    publication (Doherty et al., "DCAS is not a silver bullet for
    nonblocking algorithm design", SPAA 2004) and rediscovered here by the
    model checker (see [examples/find_snark_bug.ml] and EXPERIMENTS.md
    A4). {!Snark_fixed} is the corrected variant used for sustained
    workloads. *)

module Make (O : Lfrc_core.Ops_intf.OPS) : Deque_intf.DEQUE
