(** Corrected Snark deque with value-claiming pops.

    The published Snark algorithm can return the same value to two
    competing pops (Doherty et al., SPAA 2004; rediscovered by this
    repository's model checker — see EXPERIMENTS.md A4). This variant
    makes *claiming the value* the linearization point of a pop:

    - a pop claims the hat node by a DCAS on [(hat, node.V)] that replaces
      the value with a reserved [claimed] marker while verifying the node
      is still at the hat — so exactly one pop can ever take a node's
      value;
    - unlinking the claimed node (swinging the hat past it and nulling its
      inward link) is a separate, idempotent cleanup step that any thread
      finding a claimed node at a hat helps with.

    The mixed pointer/value DCAS this needs is the operation-set extension
    the paper's Section 2.1 anticipates ({!Lfrc_core.Lfrc.dcas_ptr_val}).

    Pushes are the published algorithm's. Dead nodes spliced over by a
    racing push are skipped lazily, one unlink per encounter. User values
    must avoid the reserved {!claimed} marker (asserted on push). *)

val claimed : int
(** Reserved value marker; pushes assert their value differs. *)

module Make (O : Lfrc_core.Ops_intf.OPS) : Deque_intf.DEQUE
