module Layout = Lfrc_simmem.Layout
module Heap = Lfrc_simmem.Heap

let snode = Layout.make ~name:"snode" ~n_ptrs:2 ~n_vals:1
let snark = Layout.make ~name:"snark" ~n_ptrs:3 ~n_vals:0

let slot_l = 0
let slot_r = 1
let slot_v = 0

let slot_dummy = 0
let slot_left_hat = 1
let slot_right_hat = 2

let l_cell heap p = Heap.ptr_cell heap p slot_l
let r_cell heap p = Heap.ptr_cell heap p slot_r
let v_cell heap p = Heap.val_cell heap p slot_v
