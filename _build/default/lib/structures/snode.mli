(** Shared layout definitions for the deque implementations: the paper's
    SNode (two pointer slots L and R, one value slot V, plus the implicit
    rc cell) and the Snark anchor object (Dummy, LeftHat, RightHat). *)

val snode : Lfrc_simmem.Layout.t
val snark : Lfrc_simmem.Layout.t

val slot_l : int
(** Pointer-slot index of the left neighbour link. *)

val slot_r : int
(** Pointer-slot index of the right neighbour link. *)

val slot_v : int
(** Value-slot index of the payload. *)

val slot_dummy : int
val slot_left_hat : int
val slot_right_hat : int

val l_cell : Lfrc_simmem.Heap.t -> Lfrc_simmem.Heap.ptr -> Lfrc_simmem.Cell.t
val r_cell : Lfrc_simmem.Heap.t -> Lfrc_simmem.Heap.ptr -> Lfrc_simmem.Cell.t
val v_cell : Lfrc_simmem.Heap.t -> Lfrc_simmem.Heap.ptr -> Lfrc_simmem.Cell.t
