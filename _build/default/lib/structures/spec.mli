(** Purely functional sequential models of the concurrent structures.

    These are the oracles: qcheck compares single-threaded runs of the
    concurrent implementations against them operation by operation, and
    the linearizability checker searches for an order of concurrent
    operations that the model accepts. *)

module Deque : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val length : t -> int
  val push_left : int -> t -> t
  val push_right : int -> t -> t
  val pop_left : t -> (int * t) option
  val pop_right : t -> (int * t) option
  val to_list : t -> int list
  (** Left to right. *)

  val of_list : int list -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Stack : sig
  type t

  val empty : t
  val push : int -> t -> t
  val pop : t -> (int * t) option
  val to_list : t -> int list
end

module Queue : sig
  type t

  val empty : t
  val enqueue : int -> t -> t
  val dequeue : t -> (int * t) option
  val to_list : t -> int list
end
