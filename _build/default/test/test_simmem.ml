(* Tests for the simulated manual-memory heap: allocation, recycling,
   corruption detection, roots/frames, the tracing collector, and the
   invariant reporter. *)

module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Layout = Lfrc_simmem.Layout
module Config = Lfrc_simmem.Config
module Gc_trace = Lfrc_simmem.Gc_trace
module Report = Lfrc_simmem.Report

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let node = Layout.make ~name:"node" ~n_ptrs:2 ~n_vals:1

(* --- Layout --- *)

let test_layout_slots () =
  checki "cells" 4 (Layout.n_cells node);
  checki "rc at 0" 0 Layout.rc_slot;
  checki "ptr 0" 1 (Layout.ptr_slot node 0);
  checki "ptr 1" 2 (Layout.ptr_slot node 1);
  checki "val 0" 3 (Layout.val_slot node 0)

let test_layout_bounds () =
  Alcotest.check_raises "ptr oob" (Invalid_argument "Layout.ptr_slot")
    (fun () -> ignore (Layout.ptr_slot node 2));
  Alcotest.check_raises "val oob" (Invalid_argument "Layout.val_slot")
    (fun () -> ignore (Layout.val_slot node 1))

(* --- Cell --- *)

let test_cell_roundtrip () =
  let c = Cell.make 42 in
  checki "get" 42 (Cell.get c);
  Cell.set c (-7);
  checki "negative value" (-7) (Cell.get c)

let test_cell_cas () =
  let c = Cell.make 1 in
  checkb "cas hit" true (Cell.cas c 1 2);
  checkb "cas miss" false (Cell.cas c 1 3);
  checki "value" 2 (Cell.get c)

let test_cell_fetch_add () =
  let c = Cell.make 10 in
  checki "prev" 10 (Cell.fetch_and_add c 5);
  checki "now" 15 (Cell.get c)

let test_cell_freeze_poisons () =
  let c = Cell.make 99 in
  Cell.freeze c;
  checki "poisoned read allowed" Config.poison (Cell.get c);
  checkb "frozen" true (Cell.frozen c)

let test_cell_frozen_write_raises () =
  let c = Cell.make 0 in
  Cell.freeze c;
  checkb "write raises" true
    (match Cell.set c 1 with
    | () -> false
    | exception Cell.Corruption _ -> true)

let test_cell_frozen_cas_miss_harmless () =
  let c = Cell.make 0 in
  Cell.freeze c;
  (* The comparison fails against the poison value: no write, no error —
     exactly the hardware-DCAS-on-freed-memory situation LFRCLoad relies
     on. *)
  checkb "failing cas on frozen ok" false (Cell.cas c 0 1)

let test_cell_ids_unique () =
  let a = Cell.make 0 and b = Cell.make 0 in
  checkb "distinct ids" true (Cell.id a <> Cell.id b)

let test_cell_encoding () =
  checki "roundtrip" 123 (Cell.decode (Cell.encode 123));
  checki "negative roundtrip" (-123) (Cell.decode (Cell.encode (-123)));
  checki "tag of plain" 0 (Cell.tag_of_raw (Cell.encode 55))

(* --- Heap basics --- *)

let test_alloc_init () =
  let h = Heap.create () in
  let p = Heap.alloc h node in
  checkb "live" true (Heap.is_live h p);
  checki "rc starts at 1" 1 (Cell.get (Heap.rc_cell h p));
  checki "ptr slots null" 0 (Cell.get (Heap.ptr_cell h p 0));
  checki "val slots zero" 0 (Cell.get (Heap.val_cell h p 0))

let test_null_invalid () =
  let h = Heap.create () in
  checkb "null not live" false (Heap.is_live h Heap.null);
  checkb "invalid ptr raises" true
    (match Heap.rc_cell h 0 with
    | _ -> false
    | exception Heap.Invalid_pointer _ -> true)

let test_free_then_uaf () =
  let h = Heap.create () in
  let p = Heap.alloc h node in
  Heap.free h p;
  checkb "dead" false (Heap.is_live h p);
  checkb "deref raises" true
    (match Heap.ptr_cell h p 0 with
    | _ -> false
    | exception Heap.Use_after_free _ -> true)

let test_double_free () =
  let h = Heap.create () in
  let p = Heap.alloc h node in
  Heap.free h p;
  checkb "double free detected" true
    (match Heap.free h p with
    | () -> false
    | exception Heap.Double_free _ -> true)

let test_id_recycling () =
  let h = Heap.create () in
  let p = Heap.alloc h node in
  let g1 = Heap.generation h p in
  Heap.free h p;
  let q = Heap.alloc h node in
  checki "same id recycled" p q;
  checki "generation bumped" (g1 + 1) (Heap.generation h q);
  checki "rc reset" 1 (Cell.get (Heap.rc_cell h q))

let test_shape_segregation () =
  let h = Heap.create () in
  let small = Layout.make ~name:"small" ~n_ptrs:1 ~n_vals:0 in
  let p = Heap.alloc h node in
  Heap.free h p;
  (* Different shape must not reuse the freed id. *)
  let q = Heap.alloc h small in
  checkb "different shape, different id" true (p <> q)

let test_rc_cell_of_freed_readable () =
  let h = Heap.create () in
  let p = Heap.alloc h node in
  Heap.free h p;
  (* LFRCLoad's DCAS addresses the rc of a possibly-freed object. *)
  checki "poison visible" Config.poison (Cell.get (Heap.rc_cell h p))

let test_stats () =
  let h = Heap.create () in
  let ps = List.init 10 (fun _ -> Heap.alloc h node) in
  List.iteri (fun i p -> if i < 4 then Heap.free h p) ps;
  let s = Heap.stats h in
  checki "allocs" 10 s.Heap.allocs;
  checki "frees" 4 s.Heap.frees;
  checki "live" 6 s.Heap.live;
  checki "peak" 10 s.Heap.peak_live;
  checki "live cells" (6 * Layout.n_cells node) s.Heap.live_cells

let test_iter_live () =
  let h = Heap.create () in
  let ps = List.init 5 (fun _ -> Heap.alloc h node) in
  Heap.free h (List.nth ps 2);
  let seen = ref [] in
  Heap.iter_live h (fun p -> seen := p :: !seen);
  checki "four live" 4 (List.length !seen);
  checkb "freed not iterated" false (List.mem (List.nth ps 2) !seen)

let test_ptr_slot_values () =
  let h = Heap.create () in
  let a = Heap.alloc h node and b = Heap.alloc h node in
  Cell.set (Heap.ptr_cell h a 0) b;
  Alcotest.(check (list int)) "slot values" [ b; 0 ] (Heap.ptr_slot_values h a)

(* --- Roots and frames --- *)

let test_roots_registry () =
  let h = Heap.create () in
  let r = Heap.root h () in
  checki "one root" 1 (List.length (Heap.roots h));
  Heap.release_root h r;
  checki "released" 0 (List.length (Heap.roots h))

let test_frames () =
  let h = Heap.create () in
  let locals = ref [ 1; 2 ] in
  let f = Heap.register_frame h (fun () -> !locals) in
  let seen = ref [] in
  Heap.iter_frame_roots h (fun p -> seen := p :: !seen);
  checki "frame roots seen" 2 (List.length !seen);
  Heap.unregister_frame h f;
  let seen2 = ref [] in
  Heap.iter_frame_roots h (fun p -> seen2 := p :: !seen2);
  checki "gone after unregister" 0 (List.length !seen2)

(* --- Tracing collector --- *)

let build_list h root n =
  (* root -> n0 -> n1 -> ... *)
  let prev = ref Heap.null in
  for _ = 1 to n do
    let p = Heap.alloc h node in
    Cell.set (Heap.ptr_cell h p 0) !prev;
    prev := p
  done;
  Cell.set root !prev

let test_gc_keeps_reachable () =
  let h = Heap.create ~name:"gc1" () in
  let root = Heap.root h () in
  build_list h root 10;
  let c = Gc_trace.collect h in
  checki "nothing freed" 10 c.Gc_trace.live_after;
  checki "before" 10 c.Gc_trace.live_before

let test_gc_frees_unreachable () =
  let h = Heap.create ~name:"gc2" () in
  let root = Heap.root h () in
  build_list h root 10;
  Cell.set root Heap.null;
  let c = Gc_trace.collect h in
  checki "all freed" 0 c.Gc_trace.live_after

let test_gc_frees_unreachable_cycle () =
  let h = Heap.create ~name:"gc3" () in
  let a = Heap.alloc h node and b = Heap.alloc h node in
  Cell.set (Heap.ptr_cell h a 0) b;
  Cell.set (Heap.ptr_cell h b 0) a;
  let c = Gc_trace.collect h in
  checki "cycle collected by tracer" 0 c.Gc_trace.live_after

let test_gc_respects_frames () =
  let h = Heap.create ~name:"gc4" () in
  let p = Heap.alloc h node in
  let f = Heap.register_frame h (fun () -> [ p ]) in
  ignore (Gc_trace.collect h);
  checkb "frame-rooted object survives" true (Heap.is_live h p);
  Heap.unregister_frame h f;
  ignore (Gc_trace.collect h);
  checkb "collected once frame gone" false (Heap.is_live h p)

let test_gc_history_and_maybe () =
  let h = Heap.create ~name:"gc5" () in
  Gc_trace.reset_history h;
  for _ = 1 to 5 do
    ignore (Heap.alloc h node)
  done;
  checkb "below threshold: no collection" true
    (Gc_trace.maybe_collect h ~threshold:100 = None);
  checkb "above threshold: collects" true
    (Gc_trace.maybe_collect h ~threshold:2 <> None);
  checki "history recorded" 1 (List.length (Gc_trace.collections h))

let test_gc_adaptive_trigger () =
  let h = Heap.create ~name:"gc6" () in
  Gc_trace.reset_history h;
  let root = Heap.root h () in
  build_list h root 10;
  (* All reachable: one collection frees nothing, and the grown trigger
     prevents immediate re-collection. *)
  checkb "first fires" true (Gc_trace.maybe_collect h ~threshold:5 <> None);
  checkb "second suppressed" true (Gc_trace.maybe_collect h ~threshold:5 = None)

(* --- Report --- *)

let test_report_rc_exact_ok () =
  let h = Heap.create ~name:"r1" () in
  let root = Heap.root h () in
  let a = Heap.alloc h node and b = Heap.alloc h node in
  Cell.set root a;
  Cell.set (Heap.ptr_cell h a 0) b;
  Alcotest.(check int) "no violations" 0 (List.length (Report.check_rc_exact h))

let test_report_rc_wrong () =
  let h = Heap.create ~name:"r2" () in
  let root = Heap.root h () in
  let a = Heap.alloc h node in
  Cell.set root a;
  Cell.set (Heap.rc_cell h a) 5;
  checki "flags bad rc" 1 (List.length (Report.check_rc_exact h))

let test_report_extra_refs () =
  let h = Heap.create ~name:"r3" () in
  let a = Heap.alloc h node in
  (* a's count of 1 is a local reference invisible to the heap *)
  checki "without credit: violation" 1
    (List.length (Report.check_rc_exact h));
  checki "with credit: fine" 0
    (List.length
       (Report.check_rc_exact_with h ~extra_refs:(fun p ->
            if p = a then 1 else 0)))

let test_report_unreachable () =
  let h = Heap.create ~name:"r4" () in
  let a = Heap.alloc h node and b = Heap.alloc h node in
  Cell.set (Heap.ptr_cell h a 0) b;
  Cell.set (Heap.ptr_cell h b 0) a;
  checki "both unreachable" 2 (List.length (Report.find_unreachable h))

let test_report_no_leaks () =
  let h = Heap.create ~name:"r5" () in
  Report.assert_no_leaks h;
  let _ = Heap.alloc h node in
  checkb "leak detected" true
    (match Report.assert_no_leaks h with
    | () -> false
    | exception Failure _ -> true)

(* --- Safety switch --- *)

let test_fast_mode_skips_checks () =
  let h = Heap.create ~name:"fast" () in
  let p = Heap.alloc h node in
  Heap.free h p;
  Config.safety := false;
  Fun.protect
    ~finally:(fun () -> Config.safety := true)
    (fun () ->
      (* In fast mode the dereference does not raise. *)
      ignore (Heap.ptr_cell h p 0);
      checkb "fast mode tolerant" true true)

(* --- qcheck: allocator against a reference model --- *)

let prop_allocator_model =
  QCheck2.Test.make ~name:"alloc/free agrees with a reference allocator"
    ~count:150
    QCheck2.Gen.(list_size (int_range 0 80) (int_bound 2))
    (fun script ->
      let h = Heap.create ~name:"qc-alloc" () in
      let live = Hashtbl.create 16 in
      let order = ref [] in
      let ok = ref true in
      List.iter
        (fun opcode ->
          match opcode with
          | 0 | 1 ->
              let p = Heap.alloc h node in
              if Hashtbl.mem live p then ok := false (* id clash *)
              else begin
                Hashtbl.replace live p ();
                order := p :: !order
              end
          | _ -> (
              match !order with
              | [] -> ()
              | p :: rest ->
                  order := rest;
                  Heap.free h p;
                  Hashtbl.remove live p))
        script;
      let model_live = Hashtbl.length live in
      !ok
      && Heap.live_count h = model_live
      && (let n = ref 0 in
          Heap.iter_live h (fun p ->
              incr n;
              if not (Hashtbl.mem live p) then ok := false);
          !ok && !n = model_live))

let prop_generation_monotone =
  QCheck2.Test.make ~name:"generations increase across recycling" ~count:100
    QCheck2.Gen.(int_range 1 20)
    (fun rounds ->
      let h = Heap.create ~name:"qc-gen" () in
      let p0 = Heap.alloc h node in
      let prev = ref (Heap.generation h p0) in
      Heap.free h p0;
      let ok = ref true in
      for _ = 1 to rounds do
        let p = Heap.alloc h node in
        if p <> p0 then ok := false
        else begin
          let g = Heap.generation h p in
          if g <= !prev then ok := false;
          prev := g
        end;
        Heap.free h p
      done;
      !ok)

let () =
  Alcotest.run "simmem"
    [
      ( "layout",
        [
          Alcotest.test_case "slots" `Quick test_layout_slots;
          Alcotest.test_case "bounds" `Quick test_layout_bounds;
        ] );
      ( "cell",
        [
          Alcotest.test_case "roundtrip" `Quick test_cell_roundtrip;
          Alcotest.test_case "cas" `Quick test_cell_cas;
          Alcotest.test_case "fetch-add" `Quick test_cell_fetch_add;
          Alcotest.test_case "freeze poisons" `Quick test_cell_freeze_poisons;
          Alcotest.test_case "frozen write raises" `Quick test_cell_frozen_write_raises;
          Alcotest.test_case "frozen cas miss harmless" `Quick test_cell_frozen_cas_miss_harmless;
          Alcotest.test_case "unique ids" `Quick test_cell_ids_unique;
          Alcotest.test_case "encoding" `Quick test_cell_encoding;
        ] );
      ( "heap",
        [
          Alcotest.test_case "alloc init" `Quick test_alloc_init;
          Alcotest.test_case "null invalid" `Quick test_null_invalid;
          Alcotest.test_case "use after free" `Quick test_free_then_uaf;
          Alcotest.test_case "double free" `Quick test_double_free;
          Alcotest.test_case "id recycling" `Quick test_id_recycling;
          Alcotest.test_case "shape segregation" `Quick test_shape_segregation;
          Alcotest.test_case "freed rc readable" `Quick test_rc_cell_of_freed_readable;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "iter live" `Quick test_iter_live;
          Alcotest.test_case "ptr slot values" `Quick test_ptr_slot_values;
        ] );
      ( "roots",
        [
          Alcotest.test_case "root registry" `Quick test_roots_registry;
          Alcotest.test_case "frames" `Quick test_frames;
        ] );
      ( "gc-trace",
        [
          Alcotest.test_case "keeps reachable" `Quick test_gc_keeps_reachable;
          Alcotest.test_case "frees unreachable" `Quick test_gc_frees_unreachable;
          Alcotest.test_case "collects cycles" `Quick test_gc_frees_unreachable_cycle;
          Alcotest.test_case "respects frames" `Quick test_gc_respects_frames;
          Alcotest.test_case "history and maybe" `Quick test_gc_history_and_maybe;
          Alcotest.test_case "adaptive trigger" `Quick test_gc_adaptive_trigger;
        ] );
      ( "report",
        [
          Alcotest.test_case "rc exact ok" `Quick test_report_rc_exact_ok;
          Alcotest.test_case "rc wrong flagged" `Quick test_report_rc_wrong;
          Alcotest.test_case "extra refs credited" `Quick test_report_extra_refs;
          Alcotest.test_case "unreachable" `Quick test_report_unreachable;
          Alcotest.test_case "no-leaks assert" `Quick test_report_no_leaks;
        ] );
      ( "config",
        [ Alcotest.test_case "fast mode" `Quick test_fast_mode_skips_checks ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_allocator_model;
          QCheck_alcotest.to_alcotest prop_generation_monotone;
        ] );
    ]
