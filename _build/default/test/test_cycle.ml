(* Tests for the backup cycle collector (paper §7 extension): LFRC leaks
   exactly the cyclic garbage, and the tracer reclaims exactly that. *)

module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Lfrc = Lfrc_core.Lfrc
module Env = Lfrc_core.Env
module Collector = Lfrc_cycle.Cycle_collector

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let node = Layout.make ~name:"n" ~n_ptrs:2 ~n_vals:0

let fresh name =
  let heap = Heap.create ~name () in
  (Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap, heap)

(* Build a ring of [k] nodes rooted at [root]; returns the first node. *)
let build_rooted_ring env root k =
  let heap = Env.heap env in
  let first = Lfrc.alloc env node in
  let prev = ref first in
  for _ = 2 to k do
    let nd = Lfrc.alloc env node in
    Lfrc.store_alloc env ~dst:(Heap.ptr_cell heap !prev 0) nd;
    prev := nd
  done;
  Lfrc.store env ~dst:(Heap.ptr_cell heap !prev 0) first;
  Lfrc.store_alloc env ~dst:root first;
  first

let test_ring_leaks_without_tracer () =
  let env, heap = fresh "c1" in
  let root = Heap.root heap () in
  ignore (build_rooted_ring env root 5);
  Lfrc.store env ~dst:root Heap.null;
  checki "LFRC cannot free the ring" 5 (Heap.live_count heap)

let test_collector_frees_ring () =
  let env, heap = fresh "c2" in
  let root = Heap.root heap () in
  ignore (build_rooted_ring env root 5);
  Lfrc.store env ~dst:root Heap.null;
  let c = Collector.collect heap in
  checki "freed the ring" 5 c.Collector.cyclic_freed;
  checki "heap empty" 0 (Heap.live_count heap)

let test_collector_spares_reachable_ring () =
  let env, heap = fresh "c3" in
  let root = Heap.root heap () in
  ignore (build_rooted_ring env root 5);
  let c = Collector.collect heap in
  checki "reachable ring untouched" 0 c.Collector.cyclic_freed;
  checki "still live" 5 (Heap.live_count heap);
  Lfrc.store env ~dst:root Heap.null;
  ignore (Collector.collect heap);
  checki "freed after unrooting" 0 (Heap.live_count heap)

let test_self_loop () =
  let env, heap = fresh "c4" in
  let p = Lfrc.alloc env node in
  Lfrc.store env ~dst:(Heap.ptr_cell heap p 0) p;
  Lfrc.destroy env p;
  checki "self-loop leaks" 1 (Heap.live_count heap);
  let c = Collector.collect heap in
  checki "self-loop collected" 1 c.Collector.cyclic_freed

let test_cycle_with_acyclic_tail () =
  (* A chain hanging off a dead ring is also unreclaimable by counts
     alone — "the memory on and reachable from the cycle" (paper step 3). *)
  let env, heap = fresh "c5" in
  let root = Heap.root heap () in
  let first = build_rooted_ring env root 3 in
  let tail = Lfrc.alloc env node in
  Lfrc.store_alloc env ~dst:(Heap.ptr_cell heap first 1) tail;
  Lfrc.store env ~dst:root Heap.null;
  checki "ring and tail leak" 4 (Heap.live_count heap);
  ignore (Collector.collect heap);
  checki "all gone" 0 (Heap.live_count heap)

let test_cyclic_garbage_listing () =
  let env, heap = fresh "c6" in
  let root = Heap.root heap () in
  ignore (build_rooted_ring env root 4);
  checki "nothing garbage while rooted" 0
    (List.length (Collector.cyclic_garbage heap));
  Lfrc.store env ~dst:root Heap.null;
  checki "four garbage nodes listed" 4
    (List.length (Collector.cyclic_garbage heap));
  checki "listing does not free" 4 (Heap.live_count heap)

let test_counts_stay_nonzero_in_cycle () =
  (* The observation the paper's step 3 rests on. *)
  let env, heap = fresh "c7" in
  let root = Heap.root heap () in
  ignore (build_rooted_ring env root 3);
  Lfrc.store env ~dst:root Heap.null;
  Heap.iter_live heap (fun p ->
      checkb "count pinned at 1" true
        (Lfrc_simmem.Cell.get (Heap.rc_cell heap p) = 1))

let test_mixed_graph () =
  let env, heap = fresh "c8" in
  let root = Heap.root heap () in
  (* acyclic chain rooted *)
  let a = Lfrc.alloc env node and b = Lfrc.alloc env node in
  Lfrc.store_alloc env ~dst:(Heap.ptr_cell heap a 0) b;
  Lfrc.store_alloc env ~dst:root a;
  (* unrooted ring *)
  let r1 = Lfrc.alloc env node and r2 = Lfrc.alloc env node in
  Lfrc.store_alloc env ~dst:(Heap.ptr_cell heap r1 0) r2;
  Lfrc.store env ~dst:(Heap.ptr_cell heap r2 0) r1;
  Lfrc.destroy env r1;
  let c = Collector.collect heap in
  checki "only the ring collected" 2 c.Collector.cyclic_freed;
  checki "chain kept" 2 (Heap.live_count heap);
  Lfrc.store env ~dst:root Heap.null;
  checki "chain freed by LFRC itself" 0 (Heap.live_count heap)

let () =
  Alcotest.run "cycle"
    [
      ( "collector",
        [
          Alcotest.test_case "ring leaks" `Quick test_ring_leaks_without_tracer;
          Alcotest.test_case "collector frees ring" `Quick test_collector_frees_ring;
          Alcotest.test_case "spares reachable" `Quick test_collector_spares_reachable_ring;
          Alcotest.test_case "self loop" `Quick test_self_loop;
          Alcotest.test_case "acyclic tail" `Quick test_cycle_with_acyclic_tail;
          Alcotest.test_case "garbage listing" `Quick test_cyclic_garbage_listing;
          Alcotest.test_case "counts pinned" `Quick test_counts_stay_nonzero_in_cycle;
          Alcotest.test_case "mixed graph" `Quick test_mixed_graph;
        ] );
    ]
