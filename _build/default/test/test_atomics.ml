(* Tests for the DCAS substrates: semantics of each implementation,
   counters, the software MCAS (including model-checked agreement with the
   atomic reference) and the documented MCAS/LFRC incompatibility. *)

module Cell = Lfrc_simmem.Cell
module Dcas = Lfrc_atomics.Dcas
module Mcas = Lfrc_atomics.Mcas
module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let impls = [ Dcas.Atomic_step; Dcas.Striped_lock; Dcas.Software_mcas ]

let for_each_impl f =
  List.iter
    (fun impl ->
      let d = Dcas.create impl in
      f (Dcas.impl_name d) d)
    impls

(* --- Semantics shared by every substrate --- *)

let test_read_write () =
  for_each_impl (fun name d ->
      let c = Cell.make 5 in
      checki (name ^ " read") 5 (Dcas.read d c);
      Dcas.write d c 9;
      checki (name ^ " wrote") 9 (Dcas.read d c))

let test_cas_semantics () =
  for_each_impl (fun name d ->
      let c = Cell.make 1 in
      checkb (name ^ " cas hit") true (Dcas.cas d c 1 2);
      checkb (name ^ " cas miss") false (Dcas.cas d c 1 3);
      checki (name ^ " value") 2 (Dcas.read d c))

let test_fetch_add () =
  for_each_impl (fun name d ->
      let c = Cell.make 10 in
      checki (name ^ " prev") 10 (Dcas.fetch_add d c 3);
      checki (name ^ " now") 13 (Dcas.read d c))

let test_dcas_success () =
  for_each_impl (fun name d ->
      let c0 = Cell.make 1 and c1 = Cell.make 2 in
      checkb (name ^ " dcas ok") true
        (Dcas.dcas d c0 c1 ~old0:1 ~old1:2 ~new0:10 ~new1:20);
      checki (name ^ " c0") 10 (Dcas.read d c0);
      checki (name ^ " c1") 20 (Dcas.read d c1))

let test_dcas_first_mismatch () =
  for_each_impl (fun name d ->
      let c0 = Cell.make 1 and c1 = Cell.make 2 in
      checkb (name ^ " dcas fails") false
        (Dcas.dcas d c0 c1 ~old0:99 ~old1:2 ~new0:10 ~new1:20);
      checki (name ^ " c0 untouched") 1 (Dcas.read d c0);
      checki (name ^ " c1 untouched") 2 (Dcas.read d c1))

let test_dcas_second_mismatch () =
  for_each_impl (fun name d ->
      let c0 = Cell.make 1 and c1 = Cell.make 2 in
      checkb (name ^ " dcas fails") false
        (Dcas.dcas d c0 c1 ~old0:1 ~old1:99 ~new0:10 ~new1:20);
      checki (name ^ " c0 untouched") 1 (Dcas.read d c0);
      checki (name ^ " c1 untouched") 2 (Dcas.read d c1))

let test_dcas_same_values () =
  (* The validating no-op DCAS pattern used by Snark_fixed's empty test. *)
  for_each_impl (fun name d ->
      let c0 = Cell.make 1 and c1 = Cell.make 2 in
      checkb (name ^ " no-op dcas") true
        (Dcas.dcas d c0 c1 ~old0:1 ~old1:2 ~new0:1 ~new1:2);
      checki (name ^ " unchanged") 1 (Dcas.read d c0))

let test_dcas_negative_values () =
  for_each_impl (fun name d ->
      let c0 = Cell.make (-5) and c1 = Cell.make (-6) in
      checkb (name ^ " negatives") true
        (Dcas.dcas d c0 c1 ~old0:(-5) ~old1:(-6) ~new0:(-50) ~new1:(-60));
      checki (name ^ " c1") (-60) (Dcas.read d c1))

let test_counters () =
  let d = Dcas.create Dcas.Atomic_step in
  let c0 = Cell.make 0 and c1 = Cell.make 0 in
  ignore (Dcas.read d c0);
  Dcas.write d c0 1;
  ignore (Dcas.cas d c0 1 2);
  ignore (Dcas.cas d c0 1 2);
  (* fails *)
  ignore (Dcas.dcas d c0 c1 ~old0:2 ~old1:0 ~new0:3 ~new1:1);
  ignore (Dcas.dcas d c0 c1 ~old0:2 ~old1:0 ~new0:3 ~new1:1);
  (* fails *)
  let c = Dcas.counters d in
  checki "reads" 1 c.Dcas.reads;
  checki "writes" 1 c.Dcas.writes;
  checki "cas attempts" 2 c.Dcas.cas_attempts;
  checki "cas failures" 1 c.Dcas.cas_failures;
  checki "dcas attempts" 2 c.Dcas.dcas_attempts;
  checki "dcas failures" 1 c.Dcas.dcas_failures;
  Dcas.reset_counters d;
  checki "reset" 0 (Dcas.counters d).Dcas.reads

(* --- MCAS specifics --- *)

let test_mcas_rejects_same_cell () =
  let c = Cell.make 0 in
  checkb "identical cells rejected" true
    (match Mcas.dcas c c 0 0 1 1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_mcas_sequential_stress () =
  let c0 = Cell.make 0 and c1 = Cell.make 0 in
  for i = 0 to 999 do
    checkb "increments" true (Mcas.dcas c0 c1 i i (i + 1) (i + 1))
  done;
  checki "c0" 1000 (Mcas.read c0);
  checki "c1" 1000 (Mcas.read c1)

let test_mcas_concurrent_agreement () =
  (* Simulated threads DCAS-increment two cells; totals must agree with
     the number of successes, under many seeds. *)
  for seed = 0 to 19 do
    let body () =
      let c0 = Cell.make 0 and c1 = Cell.make 0 in
      let successes = Atomic.make 0 in
      let tids =
        List.init 3 (fun _ ->
            Sched.spawn (fun () ->
                for _ = 1 to 50 do
                  let rec attempt () =
                    let v0 = Mcas.read c0 in
                    let v1 = Mcas.read c1 in
                    if Mcas.dcas c0 c1 v0 v1 (v0 + 1) (v1 + 1) then
                      Atomic.incr successes
                    else attempt ()
                  in
                  attempt ()
                done))
      in
      Sched.join tids;
      assert (Mcas.read c0 = 150);
      assert (Mcas.read c1 = 150);
      assert (Atomic.get successes = 150)
    in
    ignore (Sched.run (Strategy.Random seed) body)
  done

let test_mcas_model_checked () =
  (* Exhaustively explore two threads racing one MCAS each on overlapping
     cells; afterwards the cells must reflect a serialization of the
     successful operations. *)
  let cells = ref None in
  let results = Array.make 2 false in
  let body () =
    let c0 = Cell.make 0 and c1 = Cell.make 0 and c2 = Cell.make 0 in
    cells := Some (c0, c1, c2);
    ignore
      (Sched.spawn (fun () -> results.(0) <- Mcas.dcas c0 c1 0 0 1 1));
    ignore
      (Sched.spawn (fun () -> results.(1) <- Mcas.dcas c1 c2 0 0 2 2))
  in
  let check () =
    let c0, c1, c2 = Option.get !cells in
    let v0 = Mcas.read c0 and v1 = Mcas.read c1 and v2 = Mcas.read c2 in
    let ok =
      match (results.(0), results.(1)) with
      | true, true -> v0 = 1 && v1 = 2 && v2 = 2 (* op1 then op2 *)
      | true, false -> v0 = 1 && v1 = 1 && v2 = 0
      | false, true -> v0 = 0 && v1 = 2 && v2 = 2
      | false, false -> false (* at least one must succeed *)
    in
    if not ok then
      failwith
        (Printf.sprintf "inconsistent: r=(%b,%b) cells=(%d,%d,%d)"
           results.(0) results.(1) v0 v1 v2)
  in
  match
    Lfrc_sched.Explore.check ~max_schedules:50_000 ~body ~check ()
  with
  | Lfrc_sched.Explore.Ok { schedules } ->
      checkb "explored many schedules" true (schedules > 100)
  | Lfrc_sched.Explore.Budget_exhausted { schedules } ->
      checkb "no violation within budget" true (schedules = 50_000)
  | Lfrc_sched.Explore.Violation { exn; _ } ->
      Alcotest.fail ("MCAS violation: " ^ Printexc.to_string exn)

let test_kcas_sequential () =
  let cells = Array.init 8 (fun _ -> Cell.make 0) in
  for i = 0 to 499 do
    let spec = Array.map (fun c -> (c, i, i + 1)) cells in
    checkb "k-word increments" true (Mcas.mcas spec)
  done;
  Array.iter (fun c -> checki "all at 500" 500 (Mcas.read c)) cells

let test_kcas_partial_mismatch () =
  let cells = Array.init 5 (fun _ -> Cell.make 0) in
  Cell.set cells.(3) 99;
  let spec = Array.map (fun c -> (c, 0, 1)) cells in
  checkb "one mismatch fails all" false (Mcas.mcas spec);
  checki "untouched 0" 0 (Mcas.read cells.(0));
  checki "untouched 4" 0 (Mcas.read cells.(4));
  checki "mismatched kept" 99 (Mcas.read cells.(3))

let test_kcas_empty_and_limits () =
  checkb "empty succeeds" true (Mcas.mcas [||]);
  let c = Cell.make 0 in
  checkb "duplicates rejected" true
    (match Mcas.mcas [| (c, 0, 1); (c, 0, 2) |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let too_many =
    Array.init (Mcas.max_entries + 1) (fun _ -> (Cell.make 0, 0, 1))
  in
  checkb "limit enforced" true
    (match Mcas.mcas too_many with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_kcas_concurrent () =
  (* Three simulated threads k-word-increment overlapping windows of a
     cell array; at quiescence all cells must agree within each window's
     count discipline — here: every op covers ALL cells, so all equal. *)
  for seed = 0 to 9 do
    let body () =
      let cells = Array.init 4 (fun _ -> Cell.make 0) in
      let tids =
        List.init 3 (fun _ ->
            Sched.spawn (fun () ->
                for _ = 1 to 30 do
                  let rec attempt () =
                    let snapshot = Array.map (fun c -> Mcas.read c) cells in
                    let spec =
                      Array.mapi
                        (fun i c -> (c, snapshot.(i), snapshot.(i) + 1))
                        cells
                    in
                    if not (Mcas.mcas spec) then attempt ()
                  in
                  attempt ()
                done))
      in
      Sched.join tids;
      Array.iter (fun c -> assert (Mcas.read c = 90)) cells
    in
    ignore (Sched.run (Strategy.Random seed) body)
  done

let test_mcas_frozen_install_corrupts () =
  (* The documented incompatibility (DESIGN.md, Mcas mli): installing a
     descriptor writes to the target cell, so MCAS on freed memory is
     corruption — unlike a failing hardware DCAS. This is why LFRC runs
     on the atomic/striped substrates only. *)
  let heap = Lfrc_simmem.Heap.create ~name:"mcas-frozen" () in
  let layout = Lfrc_simmem.Layout.make ~name:"n" ~n_ptrs:0 ~n_vals:1 in
  let p = Lfrc_simmem.Heap.alloc heap layout in
  let rc = Lfrc_simmem.Heap.rc_cell heap p in
  let other = Cell.make 7 in
  Lfrc_simmem.Heap.free heap p;
  let poison = Lfrc_simmem.Config.poison in
  checkb "install into frozen cell raises" true
    (match Mcas.dcas other rc 7 poison 7 poison with
    | _ -> false
    | exception Cell.Corruption _ -> true)

let test_striped_lock_parallel () =
  (* Real domains hammer one striped-lock DCAS pair; the two cells move
     in lock-step, proving two-word atomicity under true parallelism. *)
  let d = Dcas.create Dcas.Striped_lock in
  let c0 = Cell.make 0 and c1 = Cell.make 0 in
  let worker () =
    for _ = 1 to 5_000 do
      let rec attempt () =
        let v0 = Dcas.read d c0 in
        let v1 = Dcas.read d c1 in
        if v0 = v1 then begin
          if not (Dcas.dcas d c0 c1 ~old0:v0 ~old1:v1 ~new0:(v0 + 1) ~new1:(v1 + 1))
          then attempt ()
        end
        else attempt ()
      in
      attempt ()
    done
  in
  let domains = List.init 3 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  checki "c0 total" 15_000 (Dcas.read d c0);
  checki "cells in lock-step" (Dcas.read d c0) (Dcas.read d c1)

let test_mcas_parallel () =
  (* Same, for the lock-free software MCAS on real domains. *)
  let c0 = Cell.make 0 and c1 = Cell.make 0 in
  let worker () =
    for _ = 1 to 3_000 do
      let rec attempt () =
        let v0 = Mcas.read c0 in
        let v1 = Mcas.read c1 in
        if v0 <> v1 || not (Mcas.dcas c0 c1 v0 v1 (v0 + 1) (v1 + 1)) then
          attempt ()
      in
      attempt ()
    done
  in
  let domains = List.init 3 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  checki "c0 total" 9_000 (Mcas.read c0);
  checki "in lock-step" (Mcas.read c0) (Mcas.read c1)

(* --- qcheck: substrates against a two-cell reference model --- *)

type step_op =
  | Qwrite of int * int (* which cell, value *)
  | Qcas of int * int * int
  | Qdcas of int * int * int * int
  | Qadd of int * int

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun c v -> Qwrite (c, v)) (int_bound 1) (int_bound 10);
        map3 (fun c o n -> Qcas (c, o, n)) (int_bound 1) (int_bound 10)
          (int_bound 10);
        map2
          (fun (o0, o1) (n0, n1) -> Qdcas (o0, o1, n0, n1))
          (pair (int_bound 10) (int_bound 10))
          (pair (int_bound 10) (int_bound 10));
        map2 (fun c d -> Qadd (c, d)) (int_bound 1) (int_range (-5) 5);
      ])

let prop_substrate_matches_model impl =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "%s agrees with the reference model"
         (Dcas.impl_name (Dcas.create impl)))
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 60) op_gen)
    (fun ops ->
      let d = Dcas.create impl in
      let c0 = Cell.make 0 and c1 = Cell.make 0 in
      let m = [| 0; 0 |] in
      let ok = ref true in
      let cell i = if i = 0 then c0 else c1 in
      List.iter
        (fun op ->
          match op with
          | Qwrite (c, v) ->
              Dcas.write d (cell c) v;
              m.(c) <- v
          | Qcas (c, o, n) ->
              let got = Dcas.cas d (cell c) o n in
              let want = m.(c) = o in
              if want then m.(c) <- n;
              if got <> want then ok := false
          | Qdcas (o0, o1, n0, n1) ->
              let got = Dcas.dcas d c0 c1 ~old0:o0 ~old1:o1 ~new0:n0 ~new1:n1 in
              let want = m.(0) = o0 && m.(1) = o1 in
              if want then begin
                m.(0) <- n0;
                m.(1) <- n1
              end;
              if got <> want then ok := false
          | Qadd (c, delta) ->
              let got = Dcas.fetch_add d (cell c) delta in
              if got <> m.(c) then ok := false;
              m.(c) <- m.(c) + delta)
        ops;
      !ok && Dcas.read d c0 = m.(0) && Dcas.read d c1 = m.(1))

let () =
  Alcotest.run "atomics"
    [
      ( "semantics",
        [
          Alcotest.test_case "read/write" `Quick test_read_write;
          Alcotest.test_case "cas" `Quick test_cas_semantics;
          Alcotest.test_case "fetch-add" `Quick test_fetch_add;
          Alcotest.test_case "dcas success" `Quick test_dcas_success;
          Alcotest.test_case "dcas first mismatch" `Quick test_dcas_first_mismatch;
          Alcotest.test_case "dcas second mismatch" `Quick test_dcas_second_mismatch;
          Alcotest.test_case "no-op dcas" `Quick test_dcas_same_values;
          Alcotest.test_case "negative values" `Quick test_dcas_negative_values;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "mcas",
        [
          Alcotest.test_case "rejects same cell" `Quick test_mcas_rejects_same_cell;
          Alcotest.test_case "sequential stress" `Quick test_mcas_sequential_stress;
          Alcotest.test_case "concurrent agreement" `Quick test_mcas_concurrent_agreement;
          Alcotest.test_case "model checked" `Slow test_mcas_model_checked;
          Alcotest.test_case "k-word sequential" `Quick test_kcas_sequential;
          Alcotest.test_case "k-word partial mismatch" `Quick test_kcas_partial_mismatch;
          Alcotest.test_case "k-word limits" `Quick test_kcas_empty_and_limits;
          Alcotest.test_case "k-word concurrent" `Quick test_kcas_concurrent;
          Alcotest.test_case "frozen install corrupts" `Quick test_mcas_frozen_install_corrupts;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "striped lock domains" `Slow test_striped_lock_parallel;
          Alcotest.test_case "mcas domains" `Slow test_mcas_parallel;
        ] );
      ( "properties",
        List.map
          (fun impl -> QCheck_alcotest.to_alcotest (prop_substrate_matches_model impl))
          impls );
    ]
