(* Tests for the alternative reclamation schemes: hazard pointers, epochs,
   and the Valois free-list stack. *)

module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Layout = Lfrc_simmem.Layout
module Env = Lfrc_core.Env
module Hazard = Lfrc_reclaim.Hazard
module Epoch = Lfrc_reclaim.Epoch
module Hp_stack = Lfrc_reclaim.Hp_stack
module Ebr_stack = Lfrc_reclaim.Ebr_stack
module Valois = Lfrc_reclaim.Valois_stack
module Spec = Lfrc_structures.Spec
module Sched = Lfrc_sched.Sched

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let node = Layout.make ~name:"n" ~n_ptrs:1 ~n_vals:1

let fresh name =
  let heap = Heap.create ~name () in
  (Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap, heap)

(* --- Hazard pointers --- *)

let test_hazard_protect_blocks_free () =
  let heap = Heap.create ~name:"hp1" () in
  let hp = Hazard.create ~scan_threshold:1 heap in
  let s0 = Hazard.register hp and s1 = Hazard.register hp in
  let cell = Cell.make 0 in
  let p = Heap.alloc heap node in
  Cell.set cell p;
  let got = Hazard.protect hp s0 ~idx:0 cell in
  checki "protected value" p got;
  (* another thread unlinks and retires it; threshold 1 forces a scan *)
  Cell.set cell Heap.null;
  Hazard.retire hp s1 p;
  checkb "still live while protected" true (Heap.is_live heap p);
  Hazard.clear hp s0;
  Hazard.retire hp s1 (Heap.alloc heap node) (* trigger another scan *);
  checkb "freed once unprotected" false (Heap.is_live heap p);
  Hazard.unregister hp s0;
  Hazard.unregister hp s1

let test_hazard_protect_validates () =
  let heap = Heap.create ~name:"hp2" () in
  let hp = Hazard.create heap in
  let s = Hazard.register hp in
  let cell = Cell.make 0 in
  let p = Heap.alloc heap node in
  Cell.set cell p;
  checki "reads current value" p (Hazard.protect hp s ~idx:0 cell);
  checki "null protect" Heap.null
    (Cell.set cell Heap.null;
     Hazard.protect hp s ~idx:0 cell);
  Hazard.unregister hp s

let test_hazard_unregister_orphans () =
  let heap = Heap.create ~name:"hp3" () in
  let hp = Hazard.create ~scan_threshold:100 heap in
  let s0 = Hazard.register hp and s1 = Hazard.register hp in
  let cell = Cell.make 0 in
  let p = Heap.alloc heap node in
  Cell.set cell p;
  ignore (Hazard.protect hp s1 ~idx:0 cell) (* s1 protects p *);
  Hazard.retire hp s0 p;
  Hazard.unregister hp s0 (* p still protected: orphaned, not freed *);
  checkb "orphan survives" true (Heap.is_live heap p);
  Hazard.clear hp s1;
  (* a scan from any slot adopts orphans *)
  let s2 = Hazard.register hp in
  let q = Heap.alloc heap node in
  let hp_force = Hazard.create ~scan_threshold:1 heap in
  ignore hp_force;
  Hazard.retire hp s2 q;
  Hazard.unregister hp s2 (* scans, adopting the orphan *);
  checkb "orphan eventually freed" false (Heap.is_live heap p);
  Hazard.unregister hp s1

let test_hazard_stats () =
  let heap = Heap.create ~name:"hp4" () in
  let hp = Hazard.create ~scan_threshold:4 heap in
  let s = Hazard.register hp in
  for _ = 1 to 10 do
    Hazard.retire hp s (Heap.alloc heap node)
  done;
  let st = Hazard.stats hp in
  checkb "freed some" true (st.Hazard.freed >= 8);
  checkb "bounded high-water mark" true (st.Hazard.max_retired <= 4);
  Hazard.unregister hp s

let test_hazard_slots_exhaust () =
  let heap = Heap.create ~name:"hp5" () in
  let hp = Hazard.create ~slots:2 heap in
  let a = Hazard.register hp and b = Hazard.register hp in
  checkb "third slot refused" true
    (match Hazard.register hp with
    | _ -> false
    | exception Failure _ -> true);
  Hazard.unregister hp a;
  (* slot reuse after unregister *)
  let c = Hazard.register hp in
  ignore c;
  Hazard.unregister hp b

(* --- Epochs --- *)

let test_epoch_pin_blocks () =
  let heap = Heap.create ~name:"eb1" () in
  let e = Epoch.create ~advance_every:1 heap in
  let s0 = Epoch.register e and s1 = Epoch.register e in
  let p = Heap.alloc heap node in
  Epoch.pin e s0;
  Epoch.retire e s1 p;
  (* s0 is pinned in the old epoch: the global epoch cannot move two
     steps, so p stays. *)
  for _ = 1 to 5 do
    ignore (Epoch.try_advance e)
  done;
  Epoch.retire e s1 (Heap.alloc heap node);
  checkb "pinned thread blocks reclaim" true (Heap.is_live heap p);
  Epoch.unpin e s0;
  for _ = 1 to 5 do
    ignore (Epoch.try_advance e)
  done;
  Epoch.flush e;
  checkb "reclaimed after unpin" false (Heap.is_live heap p);
  Epoch.unregister e s0;
  Epoch.unregister e s1

let test_epoch_flush_drains () =
  let heap = Heap.create ~name:"eb2" () in
  let e = Epoch.create heap in
  let s = Epoch.register e in
  for _ = 1 to 20 do
    Epoch.retire e s (Heap.alloc heap node)
  done;
  Epoch.flush e;
  checki "all reclaimed at quiescence" 0 (Heap.live_count heap);
  Epoch.unregister e s

let test_epoch_advance_requires_agreement () =
  let heap = Heap.create ~name:"eb3" () in
  let e = Epoch.create heap in
  let s0 = Epoch.register e in
  Epoch.pin e s0;
  checkb "advance with agreeing pin" true (Epoch.try_advance e);
  (* s0 is now pinned in the PREVIOUS epoch: next advance must fail *)
  checkb "advance blocked by stale pin" false (Epoch.try_advance e);
  Epoch.unpin e s0;
  checkb "advance after unpin" true (Epoch.try_advance e);
  Epoch.unregister e s0

let test_epoch_stats () =
  let heap = Heap.create ~name:"eb4" () in
  let e = Epoch.create heap in
  let s = Epoch.register e in
  Epoch.retire e s (Heap.alloc heap node);
  let st = Epoch.stats e in
  checkb "epoch counter present" true (st.Epoch.epoch >= 2);
  checkb "limbo tracked" true (st.Epoch.max_limbo >= 1);
  Epoch.unregister e s

(* --- Stacks on each scheme: sequential conformance --- *)

let stack_conformance (type t h) name
    (module S : Lfrc_structures.Stack_intf.STACK with type t = t and type handle = h)
    =
  let env, heap = fresh name in
  let s = S.create env in
  let h = S.register s in
  let rng = Lfrc_util.Rng.create 31 in
  let model = ref Spec.Stack.empty in
  for i = 0 to 1_500 do
    if Lfrc_util.Rng.bool rng then begin
      S.push h i;
      model := Spec.Stack.push i !model
    end
    else begin
      let got = S.pop h in
      let want =
        match Spec.Stack.pop !model with
        | None -> None
        | Some (v, m) ->
            model := m;
            Some v
      in
      if got <> want then
        Alcotest.fail (Printf.sprintf "%s diverged at op %d" name i)
    end
  done;
  S.unregister h;
  S.destroy s;
  heap

let test_hp_stack_conforms () = ignore (stack_conformance "hp" (module Hp_stack))

let test_ebr_stack_conforms () =
  ignore (stack_conformance "ebr" (module Ebr_stack))

let test_valois_stack_conforms () =
  ignore (stack_conformance "valois" (module Valois))

let test_valois_footprint_never_shrinks () =
  let env, heap = fresh "valois-fp" in
  let s = Valois.create env in
  let h = Valois.register s in
  for i = 1 to 100 do
    Valois.push h i
  done;
  let peak = Heap.live_count heap in
  for _ = 1 to 100 do
    ignore (Valois.pop h)
  done;
  checki "drained but nothing returned to the heap" peak
    (Heap.live_count heap);
  let c = Valois.counters s in
  checkb "nodes parked on the free-list" true (c.Valois.freelist_len > 0);
  (* pushing again recycles instead of allocating *)
  let allocs_before = (Heap.stats heap).Heap.allocs in
  for i = 1 to 50 do
    Valois.push h i
  done;
  checki "no new heap allocations" allocs_before (Heap.stats heap).Heap.allocs;
  checkb "recycled counted" true ((Valois.counters s).Valois.recycled >= 50)

(* --- Concurrent stress in the simulator --- *)

let conserved_stress (type t h) name
    (module S : Lfrc_structures.Stack_intf.STACK with type t = t and type handle = h)
    ~seeds =
  (* Values pushed = values popped + values drained, per seed. *)
  for seed = 0 to seeds - 1 do
    let body () =
      let env, _heap = fresh name in
      let s = S.create env in
      let pushed = Atomic.make 0 and popped = Atomic.make 0 in
      let tids =
        List.init 3 (fun t ->
            Sched.spawn (fun () ->
                let h = S.register s in
                let rng = Lfrc_util.Rng.create (seed + (t * 131)) in
                for i = 1 to 60 do
                  if Lfrc_util.Rng.bool rng then begin
                    S.push h ((t * 1000) + i);
                    ignore (Atomic.fetch_and_add pushed ((t * 1000) + i))
                  end
                  else
                    match S.pop h with
                    | Some v -> ignore (Atomic.fetch_and_add popped v)
                    | None -> ()
                done;
                S.unregister h))
      in
      Sched.join tids;
      let h0 = S.register s in
      let rec drain () =
        match S.pop h0 with
        | Some v ->
            ignore (Atomic.fetch_and_add popped v);
            drain ()
        | None -> ()
      in
      drain ();
      S.unregister h0;
      if Atomic.get pushed <> Atomic.get popped then
        failwith
          (Printf.sprintf "%s: conservation violated (seed %d)" name seed)
    in
    ignore (Sched.run (Lfrc_sched.Strategy.Random seed) body)
  done

let test_hp_stack_stress () = conserved_stress "hp" (module Hp_stack) ~seeds:25
let test_ebr_stack_stress () = conserved_stress "ebr" (module Ebr_stack) ~seeds:25

let test_valois_stack_stress () =
  conserved_stress "valois" (module Valois) ~seeds:25

let () =
  Alcotest.run "reclaim"
    [
      ( "hazard",
        [
          Alcotest.test_case "protect blocks free" `Quick test_hazard_protect_blocks_free;
          Alcotest.test_case "protect validates" `Quick test_hazard_protect_validates;
          Alcotest.test_case "unregister orphans" `Quick test_hazard_unregister_orphans;
          Alcotest.test_case "stats" `Quick test_hazard_stats;
          Alcotest.test_case "slot exhaustion" `Quick test_hazard_slots_exhaust;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "pin blocks" `Quick test_epoch_pin_blocks;
          Alcotest.test_case "flush drains" `Quick test_epoch_flush_drains;
          Alcotest.test_case "advance agreement" `Quick test_epoch_advance_requires_agreement;
          Alcotest.test_case "stats" `Quick test_epoch_stats;
        ] );
      ( "stacks",
        [
          Alcotest.test_case "hp conforms" `Quick test_hp_stack_conforms;
          Alcotest.test_case "ebr conforms" `Quick test_ebr_stack_conforms;
          Alcotest.test_case "valois conforms" `Quick test_valois_stack_conforms;
          Alcotest.test_case "valois footprint" `Quick test_valois_footprint_never_shrinks;
        ] );
      ( "stress",
        [
          Alcotest.test_case "hp stress" `Slow test_hp_stack_stress;
          Alcotest.test_case "ebr stress" `Slow test_ebr_stack_stress;
          Alcotest.test_case "valois stress" `Slow test_valois_stack_stress;
        ] );
    ]
