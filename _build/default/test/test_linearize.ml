(* Tests for the history recorder and the Wing–Gong linearizability
   checker, on hand-built histories with known verdicts. *)

module History = Lfrc_linearize.History
module Scenario = Lfrc_harness.Scenario
module Checker = Scenario.Deque_checker

let checkb = Alcotest.(check bool)

let ev thread op result invoked_at returned_at =
  { History.thread; op; result; invoked_at; returned_at }

open Scenario

let is_lin evs =
  match Checker.check_events evs with
  | Checker.Linearizable _ -> true
  | Checker.Not_linearizable -> false

let test_empty_history () = checkb "empty ok" true (is_lin [])

let test_sequential_ok () =
  checkb "simple sequence" true
    (is_lin
       [
         ev 0 (Push_right 1) Done 0 1;
         ev 0 Pop_left (Popped (Some 1)) 2 3;
         ev 0 Pop_left (Popped None) 4 5;
       ])

let test_sequential_wrong_value () =
  checkb "wrong pop value rejected" false
    (is_lin
       [
         ev 0 (Push_right 1) Done 0 1;
         ev 0 Pop_left (Popped (Some 2)) 2 3;
       ])

let test_pop_empty_when_full_rejected () =
  checkb "empty answer while an element is present" false
    (is_lin
       [
         ev 0 (Push_right 1) Done 0 1;
         ev 1 Pop_left (Popped None) 2 3;
       ])

let test_concurrent_reorder_allowed () =
  (* The pop overlaps the push, so linearizing pop after push is legal
     even though the pop was invoked first. *)
  checkb "overlap allows reorder" true
    (is_lin
       [
         ev 1 Pop_left (Popped (Some 1)) 0 10;
         ev 0 (Push_right 1) Done 1 2;
       ])

let test_realtime_order_enforced () =
  (* Here the pop returned before the push was invoked: no reordering. *)
  checkb "non-overlap fixes order" false
    (is_lin
       [
         ev 1 Pop_left (Popped (Some 1)) 0 1;
         ev 0 (Push_right 1) Done 2 3;
       ])

let test_double_pop_rejected () =
  checkb "one value popped twice" false
    (is_lin
       [
         ev 0 (Push_right 7) Done 0 1;
         ev 1 Pop_left (Popped (Some 7)) 2 10;
         ev 2 Pop_right (Popped (Some 7)) 2 10;
       ])

let test_concurrent_both_orders () =
  (* Two concurrent pushes to the same end: both orders must replay, so
     either drain order is accepted. *)
  let base drain1 drain2 =
    [
      ev 1 (Push_right 1) Done 0 10;
      ev 2 (Push_right 2) Done 0 10;
      ev 0 Pop_left (Popped (Some drain1)) 11 12;
      ev 0 Pop_left (Popped (Some drain2)) 13 14;
    ]
  in
  checkb "order a" true (is_lin (base 1 2));
  checkb "order b" true (is_lin (base 2 1))

let test_witness_replays () =
  let evs =
    [
      ev 0 (Push_right 1) Done 0 1;
      ev 1 Pop_left (Popped (Some 1)) 2 3;
    ]
  in
  match Checker.check_events evs with
  | Checker.Linearizable witness ->
      Alcotest.(check int) "witness covers all ops" 2 (List.length witness)
  | Checker.Not_linearizable -> Alcotest.fail "should be linearizable"

let test_history_recorder () =
  let h = History.create () in
  let r =
    History.record h ~thread:3 (Push_left 5) (fun () -> Done)
  in
  checkb "result passed through" true (r = Done);
  match History.events h with
  | [ e ] ->
      Alcotest.(check int) "thread" 3 e.History.thread;
      checkb "interval ordered" true (e.History.invoked_at <= e.History.returned_at)
  | _ -> Alcotest.fail "one event expected"

let test_history_many_threads () =
  let h = History.create () in
  for t = 0 to 9 do
    ignore (History.record h ~thread:t Pop_left (fun () -> Popped None))
  done;
  Alcotest.(check int) "all recorded" 10 (History.size h)

let () =
  Alcotest.run "linearize"
    [
      ( "checker",
        [
          Alcotest.test_case "empty" `Quick test_empty_history;
          Alcotest.test_case "sequential ok" `Quick test_sequential_ok;
          Alcotest.test_case "wrong value" `Quick test_sequential_wrong_value;
          Alcotest.test_case "false empty" `Quick test_pop_empty_when_full_rejected;
          Alcotest.test_case "overlap reorder" `Quick test_concurrent_reorder_allowed;
          Alcotest.test_case "real-time order" `Quick test_realtime_order_enforced;
          Alcotest.test_case "double pop" `Quick test_double_pop_rejected;
          Alcotest.test_case "both orders" `Quick test_concurrent_both_orders;
          Alcotest.test_case "witness" `Quick test_witness_replays;
        ] );
      ( "history",
        [
          Alcotest.test_case "recorder" `Quick test_history_recorder;
          Alcotest.test_case "many threads" `Quick test_history_many_threads;
        ] );
    ]
