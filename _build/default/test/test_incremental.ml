(* Tests for the incremental (on-the-fly style) collector and its
   integration with the GC-dependent pointer operations: SATB safety
   (never frees reachable objects, under any interleaving of mutator and
   collector slices), completeness (garbage at the snapshot is freed),
   and the write barrier's necessity. *)

module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Layout = Lfrc_simmem.Layout
module Gc_incr = Lfrc_simmem.Gc_incr
module Env = Lfrc_core.Env
module O = Lfrc_core.Gc_ops

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let node = Layout.make ~name:"inc-node" ~n_ptrs:2 ~n_vals:0

let fresh name =
  let heap = Heap.create ~name () in
  (Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap, heap)

(* --- collector alone (raw heap surgery) --- *)

let build_chain heap root n =
  let prev = ref Heap.null in
  for _ = 1 to n do
    let p = Heap.alloc heap node in
    Cell.set (Heap.ptr_cell heap p 0) !prev;
    prev := p
  done;
  Cell.set root !prev

let test_keeps_reachable () =
  let heap = Heap.create ~name:"inc1" () in
  let root = Heap.root heap () in
  build_chain heap root 50;
  let gc = Gc_incr.create heap in
  Gc_incr.start_cycle gc;
  Gc_incr.finish_cycle gc;
  checki "nothing freed" 50 (Heap.live_count heap)

let test_frees_snapshot_garbage () =
  let heap = Heap.create ~name:"inc2" () in
  let root = Heap.root heap () in
  build_chain heap root 50;
  Cell.set root Heap.null;
  let gc = Gc_incr.create heap in
  Gc_incr.start_cycle gc;
  Gc_incr.finish_cycle gc;
  checki "all garbage freed" 0 (Heap.live_count heap);
  checki "stats agree" 50 (Gc_incr.stats gc).Gc_incr.freed

let test_bounded_steps () =
  let heap = Heap.create ~name:"inc3" () in
  let root = Heap.root heap () in
  build_chain heap root 100;
  Cell.set root Heap.null;
  let gc = Gc_incr.create heap in
  Gc_incr.start_cycle gc;
  let slices = ref 0 in
  while Gc_incr.phase gc <> Gc_incr.Idle do
    incr slices;
    ignore (Gc_incr.step gc ~budget:5)
  done;
  checki "freed everything" 0 (Heap.live_count heap);
  checkb "work actually sliced" true (!slices > 3)

let test_cycle_garbage_collected () =
  (* Tracing handles what counts cannot (cf. test_cycle). *)
  let heap = Heap.create ~name:"inc4" () in
  let a = Heap.alloc heap node and b = Heap.alloc heap node in
  Cell.set (Heap.ptr_cell heap a 0) b;
  Cell.set (Heap.ptr_cell heap b 0) a;
  let gc = Gc_incr.create heap in
  Gc_incr.start_cycle gc;
  Gc_incr.finish_cycle gc;
  checki "cyclic garbage freed" 0 (Heap.live_count heap)

let test_allocate_black () =
  let heap = Heap.create ~name:"inc5" () in
  let gc = Gc_incr.create heap in
  let root = Heap.root heap () in
  build_chain heap root 10;
  Gc_incr.start_cycle gc;
  ignore (Gc_incr.step gc ~budget:2);
  (* allocated mid-cycle, referenced by nothing: must survive this cycle *)
  let young = Heap.alloc heap node in
  Gc_incr.on_alloc gc young;
  Gc_incr.finish_cycle gc;
  checkb "born-black object survives" true (Heap.is_live heap young)

let test_barrier_rescues_moved_pointer () =
  (* The SATB scenario: o is reachable only via a link that the mutator
     moves mid-cycle — from a not-yet-scanned object into an
     already-scanned one, then deletes the original. Without the barrier
     the collector never sees o; with it, the overwritten pointer is
     shaded. *)
  let run ~with_barrier =
    let heap =
      Heap.create ~name:(if with_barrier then "inc6a" else "inc6b") ()
    in
    let root = Heap.root heap () in
    (* root -> a -> b ; o hangs off b *)
    let a = Heap.alloc heap node and b = Heap.alloc heap node in
    let o = Heap.alloc heap node in
    Cell.set root a;
    Cell.set (Heap.ptr_cell heap a 0) b;
    Cell.set (Heap.ptr_cell heap b 0) o;
    let gc = Gc_incr.create heap in
    Gc_incr.start_cycle gc;
    (* scan just the root layer: a is scanned (black), b is gray *)
    ignore (Gc_incr.step gc ~budget:1);
    (* mutator: move o's only reference from b (unscanned) to a (scanned),
       overwriting b's slot *)
    Cell.set (Heap.ptr_cell heap a 1) o;
    Cell.set (Heap.ptr_cell heap b 0) Heap.null;
    if with_barrier then Gc_incr.barrier gc o;
    Gc_incr.finish_cycle gc;
    Heap.is_live heap o
  in
  checkb "with barrier: survives" true (run ~with_barrier:true);
  (* Without the barrier the object is (wrongly) collected — this is the
     demonstration that the barrier is load-bearing, not decoration.
     (The hidden-from-gray case needs a's slot scanned before the move;
     budget 1 scans exactly the chain head.) *)
  checkb "without barrier: lost" false (run ~with_barrier:false)

(* --- integration with Gc_ops --- *)

module Stack_gc = Lfrc_structures.Treiber.Make (Lfrc_core.Gc_ops)

let test_gc_ops_discharges_obligations () =
  (* A stack churns under the incremental collector; reclamation happens
     in slices, nothing live is ever lost, and the final cycle drains the
     garbage. *)
  let env, heap = fresh "inc7" in
  let gc = Gc_incr.create ~threshold:64 heap in
  Env.set_incremental env ~collector:gc ~budget:8;
  let s = Stack_gc.create env in
  let h = Stack_gc.register s in
  let model = ref [] in
  let rng = Lfrc_util.Rng.create 17 in
  for i = 0 to 5_000 do
    if Lfrc_util.Rng.bool rng then begin
      Stack_gc.push h i;
      model := i :: !model
    end
    else begin
      let got = Stack_gc.pop h in
      let want =
        match !model with
        | [] -> None
        | v :: rest ->
            model := rest;
            Some v
      in
      if got <> want then Alcotest.fail "stack diverged under incremental gc"
    end
  done;
  checkb "collector actually ran" true ((Gc_incr.stats gc).Gc_incr.cycles > 0);
  checkb "collector freed garbage" true ((Gc_incr.stats gc).Gc_incr.freed > 0);
  (* drain, then a final full cycle leaves only the stack's live content *)
  let rec drain () = if Stack_gc.pop h <> None then drain () in
  drain ();
  Stack_gc.unregister h;
  Stack_gc.destroy s;
  Gc_incr.start_cycle gc;
  Gc_incr.finish_cycle gc;
  checki "empty at quiescence" 0 (Heap.live_count heap)

let test_gc_ops_concurrent_sim () =
  (* Three simulated threads on one stack with the incremental collector
     advancing inside their operations: conservation must hold and the
     final cycle must empty the heap. *)
  for seed = 0 to 14 do
    let leftover = ref None in
    let body () =
      let env, heap = fresh "inc8" in
      let gc = Gc_incr.create ~threshold:32 heap in
      Env.set_incremental env ~collector:gc ~budget:4;
      let s = Stack_gc.create env in
      let pushed = Atomic.make 0 and popped = Atomic.make 0 in
      let tids =
        List.init 3 (fun t ->
            Lfrc_sched.Sched.spawn (fun () ->
                let h = Stack_gc.register s in
                let rng = Lfrc_util.Rng.create (seed + (t * 37)) in
                for i = 1 to 60 do
                  if Lfrc_util.Rng.bool rng then begin
                    Stack_gc.push h ((t * 1000) + i);
                    ignore (Atomic.fetch_and_add pushed ((t * 1000) + i))
                  end
                  else
                    match Stack_gc.pop h with
                    | Some v -> ignore (Atomic.fetch_and_add popped v)
                    | None -> ()
                done;
                Stack_gc.unregister h))
      in
      Lfrc_sched.Sched.join tids;
      let h0 = Stack_gc.register s in
      let rec drain () =
        match Stack_gc.pop h0 with
        | Some v ->
            ignore (Atomic.fetch_and_add popped v);
            drain ()
        | None -> ()
      in
      drain ();
      Stack_gc.unregister h0;
      if Atomic.get pushed <> Atomic.get popped then
        failwith "conservation violated under incremental gc";
      leftover := Some (gc, heap, s)
    in
    ignore (Lfrc_sched.Sched.run (Lfrc_sched.Strategy.Random seed) body);
    let gc, heap, s = Option.get !leftover in
    Stack_gc.destroy s;
    Gc_incr.start_cycle gc;
    Gc_incr.finish_cycle gc;
    checki
      (Printf.sprintf "heap empty at quiescence (seed %d)" seed)
      0 (Heap.live_count heap)
  done

let () =
  Alcotest.run "incremental"
    [
      ( "collector",
        [
          Alcotest.test_case "keeps reachable" `Quick test_keeps_reachable;
          Alcotest.test_case "frees snapshot garbage" `Quick test_frees_snapshot_garbage;
          Alcotest.test_case "bounded slices" `Quick test_bounded_steps;
          Alcotest.test_case "collects cycles" `Quick test_cycle_garbage_collected;
          Alcotest.test_case "allocate black" `Quick test_allocate_black;
          Alcotest.test_case "barrier is load-bearing" `Quick
            test_barrier_rescues_moved_pointer;
        ] );
      ( "gc-ops",
        [
          Alcotest.test_case "obligations discharged" `Quick
            test_gc_ops_discharges_obligations;
          Alcotest.test_case "concurrent sim" `Slow test_gc_ops_concurrent_sim;
        ] );
    ]
