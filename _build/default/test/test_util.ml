(* Unit and property tests for the utility library: deterministic RNG,
   statistics, and table rendering. *)

module Rng = Lfrc_util.Rng
module Stats = Lfrc_util.Stats
module Table = Lfrc_util.Table

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    checki "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next a = Rng.next b then incr same
  done;
  checkb "different seeds diverge" true (!same < 4)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_rng_bound_one () =
  let r = Rng.create 7 in
  for _ = 1 to 100 do
    checki "bound 1 is always 0" 0 (Rng.int r 1)
  done

let test_rng_split_independent () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  (* The child stream must not simply replay the parent. *)
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Rng.next parent = Rng.next child then incr equal
  done;
  checkb "split independent" true (!equal < 4)

let test_rng_nonneg () =
  let r = Rng.create 123 in
  for _ = 1 to 10_000 do
    checkb "non-negative" true (Rng.next r >= 0)
  done

let test_rng_float_range () =
  let r = Rng.create 5 in
  for _ = 1 to 10_000 do
    let f = Rng.float r in
    checkb "unit interval" true (f >= 0.0 && f < 1.0)
  done

let test_rng_uniformity () =
  let r = Rng.create 77 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      checkb "rough uniformity" true
        (Float.abs (Float.of_int c -. 10_000.0) < 800.0))
    buckets

let test_rng_shuffle_permutation () =
  let r = Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 Fun.id)
    sorted

let test_rng_pick_member () =
  let r = Rng.create 11 in
  let arr = [| 3; 1; 4; 1; 5 |] in
  for _ = 1 to 100 do
    checkb "member" true (Array.exists (( = ) (Rng.pick r arr)) arr)
  done

(* --- Stats --- *)

let test_mean () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_stddev () =
  check (Alcotest.float 1e-9) "stddev" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |])

let test_percentile_endpoints () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile xs 0.0);
  check (Alcotest.float 1e-9) "p100" 4.0 (Stats.percentile xs 1.0)

let test_percentile_median () =
  check (Alcotest.float 1e-9) "median interpolates" 2.5
    (Stats.percentile [| 1.0; 2.0; 3.0; 4.0 |] 0.5)

let test_summary () =
  let s = Stats.summarize (Array.init 101 Float.of_int) in
  checki "n" 101 s.Stats.n;
  check (Alcotest.float 1e-9) "min" 0.0 s.Stats.min;
  check (Alcotest.float 1e-9) "max" 100.0 s.Stats.max;
  check (Alcotest.float 1e-9) "p50" 50.0 s.Stats.p50;
  check (Alcotest.float 1e-6) "p99" 99.0 s.Stats.p99

let test_summary_single () =
  let s = Stats.summarize [| 5.0 |] in
  check (Alcotest.float 1e-9) "p50 of singleton" 5.0 s.Stats.p50

let test_histogram () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 10.0; 100.0 |] in
  List.iter (Stats.Histogram.add h) [ 0.5; 5.0; 50.0; 500.0; 0.1 ];
  checki "count" 5 (Stats.Histogram.count h);
  let counts = List.map snd (Stats.Histogram.bucket_counts h) in
  check (Alcotest.list Alcotest.int) "buckets" [ 2; 1; 1; 1 ] counts

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_rowf t "%d|%s" 10 "xy";
  let s = Table.render t in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "has title" true (contains "== T ==");
  checkb "contains formatted row" true (contains "10" && contains "xy");
  (* row arity is enforced *)
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_csv () =
  let t = Table.create ~title:"T" ~columns:[ "x"; "y" ] in
  Table.add_row t [ "1"; "2" ];
  check Alcotest.string "csv" "x,y\n1,2\n" (Table.csv t)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "bound=1" `Quick test_rng_bound_one;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "non-negative" `Quick test_rng_nonneg;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick member" `Quick test_rng_pick_member;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentile endpoints" `Quick test_percentile_endpoints;
          Alcotest.test_case "percentile median" `Quick test_percentile_median;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "summary singleton" `Quick test_summary_single;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
    ]
