(* Tests for the core LFRC operations (paper Figure 2): the precise count
   effect of each operation, the weak invariant under concurrency, destroy
   policies, and qcheck properties over random object graphs. *)

module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Layout = Lfrc_simmem.Layout
module Lfrc = Lfrc_core.Lfrc
module Env = Lfrc_core.Env
module Report = Lfrc_simmem.Report
module Sched = Lfrc_sched.Sched

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let node = Layout.make ~name:"node" ~n_ptrs:2 ~n_vals:1

let fresh ?policy name =
  let heap = Heap.create ~name () in
  let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step ?policy heap in
  (env, heap)

let rc env p = Cell.get (Heap.rc_cell (Env.heap env) p)

(* --- Individual operations --- *)

let test_alloc_rc_one () =
  let env, heap = fresh "alloc" in
  let p = Lfrc.alloc env node in
  checki "constructor count" 1 (rc env p);
  checkb "live" true (Heap.is_live heap p)

let test_destroy_frees_at_zero () =
  let env, heap = fresh "destroy" in
  let p = Lfrc.alloc env node in
  Lfrc.destroy env p;
  checkb "freed" false (Heap.is_live heap p)

let test_destroy_null_noop () =
  let env, _ = fresh "destroy-null" in
  Lfrc.destroy env Heap.null

let test_destroy_recursive_children () =
  let env, heap = fresh "destroy-rec" in
  let parent = Lfrc.alloc env node in
  let child = Lfrc.alloc env node in
  Lfrc.store_alloc env ~dst:(Heap.ptr_cell heap parent 0) child;
  Lfrc.destroy env parent;
  checkb "child freed too" false (Heap.is_live heap child);
  checki "heap empty" 0 (Heap.live_count heap)

let test_destroy_shared_child_survives () =
  let env, heap = fresh "destroy-shared" in
  let p1 = Lfrc.alloc env node and p2 = Lfrc.alloc env node in
  let child = Lfrc.alloc env node in
  Lfrc.store env ~dst:(Heap.ptr_cell heap p1 0) child;
  Lfrc.store env ~dst:(Heap.ptr_cell heap p2 0) child;
  Lfrc.destroy env child (* drop the constructor reference *);
  checki "child counted twice" 2 (rc env child);
  Lfrc.destroy env p1;
  checkb "shared child survives" true (Heap.is_live heap child);
  checki "one count left" 1 (rc env child);
  Lfrc.destroy env p2;
  checkb "now freed" false (Heap.is_live heap child)

let test_load_increments () =
  let env, heap = fresh "load" in
  let src = Heap.root heap () in
  let p = Lfrc.alloc env node in
  Lfrc.store_alloc env ~dst:src p;
  checki "only the cell's count" 1 (rc env p);
  let dest = ref Heap.null in
  Lfrc.load env ~src ~dest;
  checki "loaded" p !dest;
  checki "count covers local" 2 (rc env p);
  Lfrc.destroy env !dest;
  checki "back to 1" 1 (rc env p)

let test_load_null () =
  let env, heap = fresh "load-null" in
  let src = Heap.root heap () in
  let p = Lfrc.alloc env node in
  let dest = ref p in
  (* loading null destroys the previous content of dest *)
  Lfrc.load env ~src ~dest;
  checki "dest null" Heap.null !dest;
  checkb "old referent freed" false (Heap.is_live heap p)

let test_load_replaces_old () =
  let env, heap = fresh "load-replace" in
  let src = Heap.root heap () in
  let a = Lfrc.alloc env node and b = Lfrc.alloc env node in
  Lfrc.store_alloc env ~dst:src a;
  let dest = ref Heap.null in
  Lfrc.load env ~src ~dest;
  Lfrc.store env ~dst:src b;
  (* the second load replaces dest's reference to a with one to b; that
     was a's last count, so a is reclaimed right here *)
  Lfrc.load env ~src ~dest;
  checki "dest is b" b !dest;
  checkb "a reclaimed by the load" false (Heap.is_live heap a);
  checki "b counted thrice" 3 (rc env b);
  Lfrc.destroy env !dest;
  Lfrc.store env ~dst:src Heap.null;
  Lfrc.destroy env b (* constructor ref *);
  checki "clean" 0 (Heap.live_count heap)

let test_store_swaps_counts () =
  let env, heap = fresh "store" in
  let dst = Heap.root heap () in
  let a = Lfrc.alloc env node and b = Lfrc.alloc env node in
  Lfrc.store env ~dst a;
  checki "a gained" 2 (rc env a);
  Lfrc.store env ~dst b;
  checki "a lost" 1 (rc env a);
  checki "b gained" 2 (rc env b)

let test_store_null_releases () =
  let env, heap = fresh "store-null" in
  let dst = Heap.root heap () in
  let a = Lfrc.alloc env node in
  Lfrc.store_alloc env ~dst a;
  Lfrc.store env ~dst Heap.null;
  checkb "freed" false (Heap.is_live heap a)

let test_store_alloc_consumes () =
  let env, heap = fresh "store-alloc" in
  let dst = Heap.root heap () in
  let a = Lfrc.alloc env node in
  Lfrc.store_alloc env ~dst a;
  checki "count transferred, not raised" 1 (rc env a);
  ignore heap

let test_copy () =
  let env, _ = fresh "copy" in
  let a = Lfrc.alloc env node in
  let x = ref Heap.null in
  Lfrc.copy env ~dest:x a;
  checki "copy counted" 2 (rc env a);
  let y = ref a in
  (* copying over an existing local destroys its content once *)
  Lfrc.copy env ~dest:y a;
  checki "net unchanged" 2 (rc env a)

let test_cas_success_failure () =
  let env, heap = fresh "cas" in
  let dst = Heap.root heap () in
  let a = Lfrc.alloc env node and b = Lfrc.alloc env node in
  Lfrc.store env ~dst a (* a: constructor ref + cell ref *);
  checkb "cas hit" true (Lfrc.cas env dst ~old_ptr:a ~new_ptr:b);
  checki "b gained" 2 (rc env b);
  checki "a dropped to constructor ref" 1 (rc env a);
  checkb "cas miss" false (Lfrc.cas env dst ~old_ptr:a ~new_ptr:a);
  checki "failed cas compensated" 1 (rc env a);
  ignore heap

let test_dcas_success () =
  let env, heap = fresh "dcas" in
  let c0 = Heap.root heap () and c1 = Heap.root heap () in
  let a = Lfrc.alloc env node and b = Lfrc.alloc env node in
  Lfrc.store_alloc env ~dst:c0 a;
  Lfrc.store_alloc env ~dst:c1 b;
  (* swap the two cells *)
  checkb "swap" true
    (Lfrc.dcas env c0 c1 ~old0:a ~old1:b ~new0:b ~new1:a);
  checki "c0 now b" b (Lfrc.read_ptr env c0);
  checki "a count stable" 1 (rc env a);
  checki "b count stable" 1 (rc env b);
  checki "no violations" 0 (List.length (Report.check_rc_exact heap))

let test_dcas_failure_compensates () =
  let env, heap = fresh "dcas-fail" in
  let c0 = Heap.root heap () and c1 = Heap.root heap () in
  let a = Lfrc.alloc env node and b = Lfrc.alloc env node in
  Lfrc.store_alloc env ~dst:c0 a;
  checkb "fails" false
    (Lfrc.dcas env c0 c1 ~old0:b ~old1:b ~new0:a ~new1:a);
  checki "a unchanged" 1 (rc env a);
  checki "b unchanged" 1 (rc env b);
  ignore heap

let test_dcas_ptr_val () =
  let env, heap = fresh "dcas-pv" in
  let pcell = Heap.root heap () in
  let a = Lfrc.alloc env node in
  let vcell = Heap.val_cell heap a 0 in
  Lfrc.store_alloc env ~dst:pcell a;
  checkb "claims value" true
    (Lfrc.dcas_ptr_val env ~ptr_cell:pcell ~val_cell:vcell ~old_ptr:a
       ~new_ptr:a ~old_val:0 ~new_val:42);
  checki "value written" 42 (Cell.get vcell);
  checki "pointer count net zero" 1 (rc env a);
  checkb "fails on value mismatch" false
    (Lfrc.dcas_ptr_val env ~ptr_cell:pcell ~val_cell:vcell ~old_ptr:a
       ~new_ptr:a ~old_val:0 ~new_val:43);
  checki "still compensated" 1 (rc env a)

let test_add_to_rc () =
  let env, _ = fresh "addrc" in
  let a = Lfrc.alloc env node in
  checki "returns previous" 1 (Lfrc.add_to_rc env a 3);
  checki "applied" 4 (rc env a);
  checki "negative delta" 4 (Lfrc.add_to_rc env a (-3))

let test_with_locals_destroys () =
  let env, heap = fresh "locals" in
  let a = Lfrc.alloc env node in
  Lfrc.with_locals env 2 (fun ls ->
      Lfrc.copy env ~dest:ls.(0) a;
      Lfrc.copy env ~dest:ls.(1) a;
      checki "counted" 3 (rc env a));
  checki "locals destroyed on exit" 1 (rc env a);
  Lfrc.destroy env a;
  checki "clean" 0 (Heap.live_count heap)

let test_with_locals_exception_safe () =
  let env, _ = fresh "locals-exn" in
  let a = Lfrc.alloc env node in
  (try
     Lfrc.with_locals env 1 (fun ls ->
         Lfrc.copy env ~dest:ls.(0) a;
         failwith "bail")
   with Failure _ -> ());
  checki "destroyed despite exception" 1 (rc env a)

(* --- Destroy policies --- *)

let build_chain env n =
  let heap = Env.heap env in
  let head = ref Heap.null in
  for _ = 1 to n do
    let nd = Lfrc.alloc env node in
    if !head <> Heap.null then
      Lfrc.store_alloc env ~dst:(Heap.ptr_cell heap nd 0) !head;
    head := nd
  done;
  !head

let test_policies_equivalent () =
  List.iter
    (fun policy ->
      let env, heap = fresh ~policy "policy" in
      let head = build_chain env 500 in
      Lfrc.destroy env head;
      (match policy with
      | Env.Deferred _ ->
          while Heap.live_count heap > 0 do
            ignore (Lfrc.pump_deferred env ~budget:100)
          done
      | Env.Recursive | Env.Iterative -> ());
      checki "chain fully reclaimed" 0 (Heap.live_count heap))
    [ Env.Recursive; Env.Iterative; Env.Deferred { budget_per_op = 16 } ]

let test_deferred_bounded_slices () =
  let env, heap =
    fresh ~policy:(Env.Deferred { budget_per_op = 10 }) "deferred"
  in
  let head = build_chain env 100 in
  Lfrc.destroy env head;
  (* the initial destroy pumped one budget's worth *)
  checkb "partially reclaimed" true
    (Heap.live_count heap < 100 && Heap.live_count heap > 0);
  checki "pump frees at most budget" 10 (Lfrc.pump_deferred env ~budget:10);
  while Heap.live_count heap > 0 do
    ignore (Lfrc.pump_deferred env ~budget:10)
  done;
  checki "eventually empty" 0 (Env.deferred_pending env)

let test_iterative_handles_deep_chain () =
  let env, heap = fresh ~policy:Env.Iterative "deep" in
  let head = build_chain env 200_000 in
  Lfrc.destroy env head;
  checki "no stack overflow, all freed" 0 (Heap.live_count heap)

(* --- Weak invariant under concurrency --- *)

let test_weak_invariant_sim () =
  (* Threads shuffle pointers between shared cells with loads, stores and
     DCASes; at quiescence counts must be exact and nothing leaked or
     freed early (any early free raises Use_after_free in safe mode). *)
  for seed = 0 to 9 do
    let leftover = ref [] in
    let body () =
      let heap = Heap.create ~name:"weak" () in
      let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
      let cells = Array.init 4 (fun _ -> Heap.root heap ()) in
      let seed_obj = Lfrc.alloc env node in
      Lfrc.store_alloc env ~dst:cells.(0) seed_obj;
      let tids =
        List.init 3 (fun t ->
            Sched.spawn (fun () ->
                let rng = Lfrc_util.Rng.create (seed + (t * 97)) in
                Lfrc.with_locals env 2 (fun ls ->
                    for _ = 1 to 40 do
                      match Lfrc_util.Rng.int rng 5 with
                      | 0 ->
                          let c = Lfrc_util.Rng.pick rng cells in
                          Lfrc.load env ~src:c ~dest:ls.(0)
                      | 1 ->
                          let c = Lfrc_util.Rng.pick rng cells in
                          Lfrc.store env ~dst:c !(ls.(0))
                      | 2 ->
                          let p = Lfrc.alloc env node in
                          let c = Lfrc_util.Rng.pick rng cells in
                          Lfrc.store_alloc env ~dst:c p
                      | 3 ->
                          let c = Lfrc_util.Rng.pick rng cells in
                          ignore
                            (Lfrc.cas env c ~old_ptr:!(ls.(0))
                               ~new_ptr:!(ls.(1)))
                      | _ ->
                          let c0 = Lfrc_util.Rng.pick rng cells in
                          let c1 = Lfrc_util.Rng.pick rng cells in
                          if Cell.id c0 <> Cell.id c1 then
                            ignore
                              (Lfrc.dcas env c0 c1 ~old0:!(ls.(0))
                                 ~old1:!(ls.(1)) ~new0:!(ls.(1))
                                 ~new1:!(ls.(0)))
                    done)))
      in
      Sched.join tids;
      leftover := [ (heap, env, cells) ]
    in
    ignore (Sched.run (Lfrc_sched.Strategy.Random seed) body);
    match !leftover with
    | [ (heap, env, cells) ] ->
        checki
          (Printf.sprintf "counts exact at quiescence (seed %d)" seed)
          0
          (List.length (Report.check_rc_exact heap));
        Array.iter (fun c -> Lfrc.store env ~dst:c Heap.null) cells;
        checki
          (Printf.sprintf "no leaks after teardown (seed %d)" seed)
          0 (Heap.live_count heap)
    | _ -> Alcotest.fail "missing state"
  done

(* The paper's "always" half of the weak invariant, checked from a
   monitor thread at arbitrary interleaving points while workers churn a
   deque: no live object's count may ever undercut the heap-visible
   pointers to it. *)
let test_rc_lower_bound_always () =
  let module D = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops) in
  for seed = 0 to 9 do
    let body () =
      let heap = Heap.create ~name:"lb" () in
      let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
      let d = D.create env in
      let workers =
        List.init 3 (fun t ->
            Sched.spawn (fun () ->
                let h = D.register d in
                let rng = Lfrc_util.Rng.create (seed + (t * 53)) in
                for i = 1 to 50 do
                  match Lfrc_util.Rng.int rng 4 with
                  | 0 -> D.push_left h i
                  | 1 -> D.push_right h i
                  | 2 -> ignore (D.pop_left h)
                  | _ -> ignore (D.pop_right h)
                done;
                D.unregister h))
      in
      ignore
        (Sched.spawn ~name:"monitor" (fun () ->
             for _ = 1 to 200 do
               Sched.point ();
               match Report.check_rc_lower_bound heap with
               | [] -> ()
               | v :: _ ->
                   failwith
                     (Format.asprintf "invariant broken mid-run: %a"
                        Report.pp_violation v)
             done));
      Sched.join workers
    in
    ignore (Sched.run ~max_steps:10_000_000 (Lfrc_sched.Strategy.Random seed) body)
  done

(* Paper footnote 3: a permanently failed thread orphans whatever its
   counted locals held — bounded garbage that counting alone never
   reclaims, but that remains (a) harmless to everyone else's progress
   and (b) reclaimable by the backup tracer since nothing reachable
   points at it. *)
let test_dead_thread_orphans_garbage () =
  let module D = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops) in
  let leftover = ref None in
  let body () =
    let heap = Heap.create ~name:"dead-thread" () in
    let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
    let d = D.create env in
    let victim =
      Sched.spawn ~name:"victim" (fun () ->
          let h = D.register d in
          (* loop forever: the kill lands somewhere mid-operation *)
          let i = ref 0 in
          while true do
            incr i;
            D.push_right h !i;
            ignore (D.pop_left h)
          done)
    in
    (* let the victim get going, then fail it permanently *)
    for _ = 1 to 200 do
      Sched.point ()
    done;
    Sched.kill victim;
    (* everyone else keeps working: lock-freedom survives the death *)
    let worker =
      Sched.spawn (fun () ->
          let h = D.register d in
          for i = 1 to 100 do
            D.push_left h i;
            ignore (D.pop_right h)
          done;
          D.unregister h)
    in
    Sched.join [ worker ];
    let h = D.register d in
    let rec drain () = if D.pop_left h <> None then drain () in
    drain ();
    D.unregister h;
    D.destroy d;
    leftover := Some heap
  in
  ignore (Sched.run ~max_steps:10_000_000 (Lfrc_sched.Strategy.Random 1234) body);
  let heap = Option.get !leftover in
  let orphans = Heap.live_count heap in
  (* the victim's locals pin at most a handful of nodes *)
  checkb "bounded orphaned garbage" true (orphans <= 12);
  (* nothing reachable points at the orphans, so the backup tracer (or
     any root-based pass) can reclaim them *)
  ignore (Lfrc_cycle.Cycle_collector.collect heap);
  checki "tracer reclaims the orphans" 0 (Heap.live_count heap)

(* --- qcheck properties --- *)

let prop_random_graph_counts_exact =
  QCheck2.Test.make ~name:"random op sequence keeps counts exact"
    ~count:100
    QCheck2.Gen.(pair small_nat (list (int_bound 4)))
    (fun (seed, opcodes) ->
      let heap = Heap.create ~name:"qc" () in
      let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
      let cells = Array.init 3 (fun _ -> Heap.root heap ()) in
      let rng = Lfrc_util.Rng.create seed in
      Lfrc.with_locals env 1 (fun ls ->
          List.iter
            (fun opcode ->
              let c = Lfrc_util.Rng.pick rng cells in
              match opcode with
              | 0 -> Lfrc.load env ~src:c ~dest:ls.(0)
              | 1 -> Lfrc.store env ~dst:c !(ls.(0))
              | 2 ->
                  let p = Lfrc.alloc env node in
                  Lfrc.store_alloc env ~dst:c p
              | 3 -> ignore (Lfrc.cas env c ~old_ptr:!(ls.(0)) ~new_ptr:!(ls.(0)))
              | _ ->
                  (* link: make *c point from one object to another *)
                  let p = Lfrc.read_ptr env c in
                  if p <> Heap.null && !(ls.(0)) <> Heap.null then
                    Lfrc.store env
                      ~dst:(Heap.ptr_cell heap p 0)
                      !(ls.(0)))
            opcodes);
      let violations = Report.check_rc_exact heap in
      Array.iter (fun c -> Lfrc.store env ~dst:c Heap.null) cells;
      (* acyclic here (links only to older? not guaranteed!) — so only
         check count exactness, not emptiness: cycles may survive, which
         is the documented LFRC behaviour tested in test_cycle. *)
      violations = [])

let prop_chain_destroy_total =
  QCheck2.Test.make ~name:"chain destroy frees exactly n" ~count:50
    QCheck2.Gen.(int_range 0 200)
    (fun n ->
      let env, heap = fresh "qc-chain" in
      let head = build_chain env n in
      Lfrc.destroy env head;
      Heap.live_count heap = 0 && (Heap.stats heap).Heap.frees = n)

let () =
  Alcotest.run "lfrc"
    [
      ( "operations",
        [
          Alcotest.test_case "alloc rc=1" `Quick test_alloc_rc_one;
          Alcotest.test_case "destroy frees at zero" `Quick test_destroy_frees_at_zero;
          Alcotest.test_case "destroy null noop" `Quick test_destroy_null_noop;
          Alcotest.test_case "destroy recurses" `Quick test_destroy_recursive_children;
          Alcotest.test_case "shared child survives" `Quick test_destroy_shared_child_survives;
          Alcotest.test_case "load increments" `Quick test_load_increments;
          Alcotest.test_case "load null" `Quick test_load_null;
          Alcotest.test_case "load replaces old" `Quick test_load_replaces_old;
          Alcotest.test_case "store swaps counts" `Quick test_store_swaps_counts;
          Alcotest.test_case "store null releases" `Quick test_store_null_releases;
          Alcotest.test_case "store_alloc consumes" `Quick test_store_alloc_consumes;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "cas" `Quick test_cas_success_failure;
          Alcotest.test_case "dcas success" `Quick test_dcas_success;
          Alcotest.test_case "dcas failure compensates" `Quick test_dcas_failure_compensates;
          Alcotest.test_case "dcas ptr/val" `Quick test_dcas_ptr_val;
          Alcotest.test_case "add_to_rc" `Quick test_add_to_rc;
          Alcotest.test_case "with_locals destroys" `Quick test_with_locals_destroys;
          Alcotest.test_case "with_locals exception-safe" `Quick test_with_locals_exception_safe;
        ] );
      ( "policies",
        [
          Alcotest.test_case "equivalent outcomes" `Quick test_policies_equivalent;
          Alcotest.test_case "deferred bounded slices" `Quick test_deferred_bounded_slices;
          Alcotest.test_case "iterative deep chain" `Slow test_iterative_handles_deep_chain;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "weak invariant in sim" `Slow test_weak_invariant_sim;
          Alcotest.test_case "rc lower bound always holds" `Slow
            test_rc_lower_bound_always;
          Alcotest.test_case "dead thread orphans bounded garbage" `Quick
            test_dead_thread_orphans_garbage;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_graph_counts_exact;
          QCheck_alcotest.to_alcotest prop_chain_destroy_total;
        ] );
    ]
