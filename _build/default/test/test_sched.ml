(* Tests for the deterministic scheduler, strategies, traces and the
   exhaustive explorer. *)

module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module Trace = Lfrc_sched.Trace
module Explore = Lfrc_sched.Explore

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_runs_to_completion () =
  let hits = ref 0 in
  let o =
    Sched.run Strategy.Round_robin (fun () ->
        for _ = 1 to 5 do
          Sched.point ();
          incr hits
        done)
  in
  checki "all iterations ran" 5 !hits;
  checkb "steps counted" true (o.Sched.steps > 0)

let test_spawn_runs_all () =
  let done_ = Array.make 4 false in
  ignore
    (Sched.run (Strategy.Random 1) (fun () ->
         for i = 0 to 3 do
           ignore
             (Sched.spawn (fun () ->
                  Sched.point ();
                  done_.(i) <- true))
         done));
  Array.iteri (fun i d -> checkb (Printf.sprintf "thread %d ran" i) true d) done_

let test_deterministic_same_seed () =
  let trace_of seed =
    let body () =
      let r = ref 0 in
      for _ = 1 to 3 do
        ignore
          (Sched.spawn (fun () ->
               Sched.point ();
               incr r;
               Sched.point ()))
      done
    in
    let o = Sched.run ~record:true (Strategy.Random seed) body in
    Trace.chosen (Option.get o.Sched.trace)
  in
  Alcotest.(check (array int)) "same seed same schedule" (trace_of 5) (trace_of 5);
  checkb "different seeds usually differ" true (trace_of 5 <> trace_of 6)

let test_tid_inside () =
  let seen = ref [] in
  ignore
    (Sched.run Strategy.Round_robin (fun () ->
         ignore (Sched.spawn (fun () -> seen := Sched.tid () :: !seen));
         ignore (Sched.spawn (fun () -> seen := Sched.tid () :: !seen))));
  Alcotest.(check (list int)) "tids" [ 2; 1 ] (List.sort compare !seen |> List.rev)

let test_point_outside_is_noop () =
  Sched.point ();
  checkb "not active outside" false (Sched.active ())

let test_active_inside () =
  let was_active = ref false in
  ignore (Sched.run Strategy.Round_robin (fun () -> was_active := Sched.active ()));
  checkb "active inside" true !was_active

let test_spawn_outside_rejected () =
  Alcotest.check_raises "spawn outside"
    (Invalid_argument "Sched.spawn: not inside a simulation run") (fun () ->
      ignore (Sched.spawn (fun () -> ())))

let test_nested_run_rejected () =
  (* The rejection happens inside the simulated thread, so it surfaces as
     that thread's failure. *)
  checkb "nested run rejected" true
    (match
       Sched.run Strategy.Round_robin (fun () ->
           ignore (Sched.run Strategy.Round_robin (fun () -> ())))
     with
    | _ -> false
    | exception Sched.Thread_failure { exn = Invalid_argument msg; _ } ->
        msg = "Sched.run: nested simulation"
    | exception _ -> false)

let test_step_limit () =
  checkb "raises step limit" true
    (match
       Sched.run ~max_steps:100 Strategy.Round_robin (fun () ->
           while true do
             Sched.point ()
           done)
     with
    | _ -> false
    | exception Sched.Step_limit_exceeded _ -> true)

let test_thread_failure_propagates () =
  checkb "failure carries tid" true
    (match
       Sched.run (Strategy.Random 3) (fun () ->
           ignore (Sched.spawn (fun () -> failwith "boom")))
     with
    | _ -> false
    | exception Sched.Thread_failure { tid; exn = Failure msg; _ } ->
        tid = 1 && msg = "boom"
    | exception _ -> false)

let test_join_waits () =
  let order = ref [] in
  ignore
    (Sched.run (Strategy.Random 9) (fun () ->
         let t1 =
           Sched.spawn (fun () ->
               Sched.point ();
               Sched.point ();
               order := `Worker :: !order)
         in
         Sched.join [ t1 ];
         order := `Main :: !order));
  Alcotest.(check bool) "worker before main" true (!order = [ `Main; `Worker ])

let test_join_many () =
  let count = ref 0 in
  ignore
    (Sched.run (Strategy.Random 4) (fun () ->
         let tids =
           List.init 5 (fun _ ->
               Sched.spawn (fun () ->
                   Sched.point ();
                   incr count))
         in
         Sched.join tids;
         checki "all finished at join" 5 !count))

let test_per_thread_steps () =
  let o =
    Sched.run Strategy.Round_robin (fun () ->
        ignore
          (Sched.spawn (fun () ->
               Sched.point ();
               Sched.point ())))
  in
  checki "two threads tracked" 2 (Array.length o.Sched.per_thread_steps);
  checkb "worker stepped" true (o.Sched.per_thread_steps.(1) >= 2)

(* --- Trace --- *)

let test_trace_preemptions () =
  let t =
    [|
      { Trace.tid = 0; enabled = 0b11 };
      { Trace.tid = 1; enabled = 0b11 };
      (* preempt: 0 still enabled *)
      { Trace.tid = 0; enabled = 0b01 };
      (* not a preemption: 1 finished *)
    |]
  in
  checki "one preemption" 1 (Trace.preemptions t)

let test_trace_enabled_list () =
  Alcotest.(check (list int)) "decode mask" [ 0; 2 ]
    (Trace.enabled_list { Trace.tid = 0; enabled = 0b101 })

(* --- Strategies --- *)

let test_scripted_replay () =
  let body () =
    ignore (Sched.spawn (fun () -> Sched.point ()));
    ignore (Sched.spawn (fun () -> Sched.point ()))
  in
  let o = Sched.run ~record:true (Strategy.Random 17) body in
  let schedule = Trace.chosen (Option.get o.Sched.trace) in
  let o2 =
    Sched.run ~record:true
      (Strategy.Scripted { prefix = schedule; tail_seed = None })
      body
  in
  Alcotest.(check (array int)) "replay identical" schedule
    (Trace.chosen (Option.get o2.Sched.trace))

let test_scripted_divergence_detected () =
  checkb "diverged script detected" true
    (match
       Sched.run
         (Strategy.Scripted { prefix = [| 5 |]; tail_seed = None })
         (fun () -> Sched.point ())
     with
    | _ -> false
    | exception Strategy.Script_diverged _ -> true)

let test_pct_runs () =
  let o =
    Sched.run (Strategy.Pct { seed = 2; change_points = 3 }) (fun () ->
        for _ = 1 to 3 do
          ignore
            (Sched.spawn (fun () ->
                 Sched.point ();
                 Sched.point ()))
        done)
  in
  checkb "pct completes" true (o.Sched.steps > 0)

(* --- Explore --- *)

let test_explore_finds_race () =
  let counter = ref 0 in
  let body () =
    counter := 0;
    let worker () =
      Sched.point ();
      let v = !counter in
      Sched.point ();
      counter := v + 1
    in
    ignore (Sched.spawn worker);
    ignore (Sched.spawn worker)
  in
  let check () = if !counter <> 2 then failwith "lost update" in
  match Explore.check ~body ~check () with
  | Explore.Violation { exn = Failure msg; schedule; _ } ->
      checkb "right failure" true (msg = "lost update");
      checkb "counterexample non-trivial" true (Array.length schedule > 0)
  | _ -> Alcotest.fail "expected a violation"

let test_explore_passes_atomic () =
  let counter = Atomic.make 0 in
  let body () =
    Atomic.set counter 0;
    let worker () =
      Sched.point ();
      Atomic.incr counter
    in
    ignore (Sched.spawn worker);
    ignore (Sched.spawn worker)
  in
  let check () = if Atomic.get counter <> 2 then failwith "impossible" in
  match Explore.check ~body ~check () with
  | Explore.Ok { schedules } -> checkb "explored >1 schedule" true (schedules > 1)
  | _ -> Alcotest.fail "expected OK"

let test_explore_budget () =
  let body () =
    for _ = 1 to 4 do
      ignore
        (Sched.spawn (fun () ->
             for _ = 1 to 10 do
               Sched.point ()
             done))
    done
  in
  match Explore.check ~max_schedules:5 ~body ~check:(fun () -> ()) () with
  | Explore.Budget_exhausted { schedules } -> checki "stopped at budget" 5 schedules
  | _ -> Alcotest.fail "expected budget exhaustion"

let test_explore_replay_counterexample () =
  let counter = ref 0 in
  let body () =
    counter := 0;
    let worker () =
      Sched.point ();
      let v = !counter in
      Sched.point ();
      counter := v + 1
    in
    ignore (Sched.spawn worker);
    ignore (Sched.spawn worker)
  in
  match Explore.check ~body ~check:(fun () -> if !counter <> 2 then failwith "x") () with
  | Explore.Violation { schedule; _ } ->
      let trace = Explore.replay schedule body in
      checkb "replay reproduces" true (!counter <> 2 && Array.length trace > 0)
  | _ -> Alcotest.fail "expected violation"

let () =
  Alcotest.run "sched"
    [
      ( "scheduler",
        [
          Alcotest.test_case "runs to completion" `Quick test_runs_to_completion;
          Alcotest.test_case "spawn runs all" `Quick test_spawn_runs_all;
          Alcotest.test_case "deterministic per seed" `Quick test_deterministic_same_seed;
          Alcotest.test_case "tid inside" `Quick test_tid_inside;
          Alcotest.test_case "point outside noop" `Quick test_point_outside_is_noop;
          Alcotest.test_case "active inside" `Quick test_active_inside;
          Alcotest.test_case "spawn outside rejected" `Quick test_spawn_outside_rejected;
          Alcotest.test_case "nested run rejected" `Quick test_nested_run_rejected;
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "thread failure" `Quick test_thread_failure_propagates;
          Alcotest.test_case "join waits" `Quick test_join_waits;
          Alcotest.test_case "join many" `Quick test_join_many;
          Alcotest.test_case "per-thread steps" `Quick test_per_thread_steps;
        ] );
      ( "trace",
        [
          Alcotest.test_case "preemptions" `Quick test_trace_preemptions;
          Alcotest.test_case "enabled list" `Quick test_trace_enabled_list;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "scripted replay" `Quick test_scripted_replay;
          Alcotest.test_case "script divergence" `Quick test_scripted_divergence_detected;
          Alcotest.test_case "pct runs" `Quick test_pct_runs;
        ] );
      ( "explore",
        [
          Alcotest.test_case "finds race" `Quick test_explore_finds_race;
          Alcotest.test_case "passes atomic" `Quick test_explore_passes_atomic;
          Alcotest.test_case "budget" `Quick test_explore_budget;
          Alcotest.test_case "replay counterexample" `Quick test_explore_replay_counterexample;
        ] );
    ]
