(* Tests for the data structures: sequential specification conformance
   (direct and qcheck), teardown/leak behaviour in both memory modes,
   concurrent linearizability under randomized scheduling, and the
   published-Snark bug regression (EXPERIMENTS.md A4). *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env
module Report = Lfrc_simmem.Report
module Spec = Lfrc_structures.Spec
module Scenario = Lfrc_harness.Scenario
module Strategy = Lfrc_sched.Strategy

module Snark_lfrc = Lfrc_structures.Snark.Make (Lfrc_core.Lfrc_ops)
module Snark_gc = Lfrc_structures.Snark.Make (Lfrc_core.Gc_ops)
module Fixed_lfrc = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)
module Fixed_gc = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Gc_ops)
module Treiber_lfrc = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)
module Treiber_gc = Lfrc_structures.Treiber.Make (Lfrc_core.Gc_ops)
module Ms_lfrc = Lfrc_structures.Msqueue.Make (Lfrc_core.Lfrc_ops)
module Ms_gc = Lfrc_structures.Msqueue.Make (Lfrc_core.Gc_ops)
module Locked = Lfrc_structures.Locked_deque

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_opt = Alcotest.(check (option int))

let fresh name =
  let heap = Heap.create ~name () in
  (Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap, heap)

(* --- Deque: basics shared by every implementation --- *)

let deque_impls : (string * (module Lfrc_structures.Deque_intf.DEQUE) * bool) list =
  [
    ("snark-lfrc", (module Snark_lfrc), true);
    ("snark-gc", (module Snark_gc), false);
    ("fixed-lfrc", (module Fixed_lfrc), true);
    ("fixed-gc", (module Fixed_gc), false);
    ("locked", (module Locked), true);
  ]

let test_deque_fifo_lifo () =
  List.iter
    (fun (name, (module D : Lfrc_structures.Deque_intf.DEQUE), _) ->
      let env, _ = fresh name in
      let d = D.create env in
      let h = D.register d in
      (* queue usage: push right, pop left *)
      List.iter (D.push_right h) [ 1; 2; 3 ];
      check_opt (name ^ " fifo 1") (Some 1) (D.pop_left h);
      check_opt (name ^ " fifo 2") (Some 2) (D.pop_left h);
      (* stack usage: push right, pop right *)
      D.push_right h 4;
      check_opt (name ^ " lifo 4") (Some 4) (D.pop_right h);
      check_opt (name ^ " lifo 3") (Some 3) (D.pop_right h);
      check_opt (name ^ " empty l") None (D.pop_left h);
      check_opt (name ^ " empty r") None (D.pop_right h);
      D.unregister h;
      D.destroy d)
    deque_impls

let test_deque_mixed_ends () =
  List.iter
    (fun (name, (module D : Lfrc_structures.Deque_intf.DEQUE), _) ->
      let env, _ = fresh name in
      let d = D.create env in
      let h = D.register d in
      D.push_left h 2;
      D.push_left h 1;
      D.push_right h 3;
      check_opt (name ^ " left") (Some 1) (D.pop_left h);
      check_opt (name ^ " right") (Some 3) (D.pop_right h);
      check_opt (name ^ " middle") (Some 2) (D.pop_left h);
      D.unregister h;
      D.destroy d)
    deque_impls

let test_deque_empty_after_create () =
  List.iter
    (fun (name, (module D : Lfrc_structures.Deque_intf.DEQUE), _) ->
      let env, _ = fresh name in
      let d = D.create env in
      let h = D.register d in
      check_opt (name ^ " empty") None (D.pop_left h);
      check_opt (name ^ " empty") None (D.pop_right h);
      (* empty again after emptying *)
      D.push_left h 9;
      check_opt (name ^ " got it") (Some 9) (D.pop_right h);
      check_opt (name ^ " re-empty") None (D.pop_left h);
      D.unregister h;
      D.destroy d)
    deque_impls

let random_ops_vs_spec (module D : Lfrc_structures.Deque_intf.DEQUE) name n
    seed =
  let env, heap = fresh name in
  let d = D.create env in
  let h = D.register d in
  let rng = Lfrc_util.Rng.create seed in
  let model = ref Spec.Deque.empty in
  let ok = ref true in
  for i = 0 to n - 1 do
    match Lfrc_util.Rng.int rng 4 with
    | 0 ->
        D.push_left h i;
        model := Spec.Deque.push_left i !model
    | 1 ->
        D.push_right h i;
        model := Spec.Deque.push_right i !model
    | 2 ->
        let got = D.pop_left h in
        let want =
          match Spec.Deque.pop_left !model with
          | None -> None
          | Some (v, m) ->
              model := m;
              Some v
        in
        if got <> want then ok := false
    | _ ->
        let got = D.pop_right h in
        let want =
          match Spec.Deque.pop_right !model with
          | None -> None
          | Some (v, m) ->
              model := m;
              Some v
        in
        if got <> want then ok := false
  done;
  D.unregister h;
  D.destroy d;
  (!ok, heap)

let test_deque_random_vs_spec () =
  List.iter
    (fun (name, impl, leak_check) ->
      let ok, heap = random_ops_vs_spec impl name 3_000 77 in
      checkb (name ^ " matches spec") true ok;
      if leak_check then begin
        Report.assert_no_leaks heap;
        checki (name ^ " counts exact") 0
          (List.length (Report.check_rc_exact heap))
      end)
    deque_impls

let test_snark_gc_reclaimed_by_tracer () =
  let env, heap = fresh "snark-gc-trace" in
  let d = Snark_gc.create env in
  let h = Snark_gc.register d in
  for i = 1 to 100 do
    Snark_gc.push_right h i
  done;
  for _ = 1 to 100 do
    ignore (Snark_gc.pop_left h)
  done;
  Snark_gc.unregister h;
  Snark_gc.destroy d;
  checkb "garbage pending" true (Heap.live_count heap > 0);
  ignore (Lfrc_simmem.Gc_trace.collect heap);
  checki "tracer reclaims all" 0 (Heap.live_count heap)

let test_deque_destroy_nonempty () =
  (* The paper's destructor drains remaining nodes (Figure 1 line 41). *)
  List.iter
    (fun (name, (module D : Lfrc_structures.Deque_intf.DEQUE), leak_check) ->
      let env, heap = fresh name in
      let d = D.create env in
      let h = D.register d in
      for i = 1 to 50 do
        D.push_left h i;
        D.push_right h (-i)
      done;
      D.unregister h;
      D.destroy d;
      if leak_check then
        checki (name ^ " destroy frees contents") 0 (Heap.live_count heap))
    deque_impls

(* --- qcheck: deque conformance over arbitrary op sequences --- *)

let apply_spec_op model (op : Scenario.op) =
  match op with
  | Scenario.Push_left v -> (Spec.Deque.push_left v model, None)
  | Scenario.Push_right v -> (Spec.Deque.push_right v model, None)
  | Scenario.Pop_left -> (
      match Spec.Deque.pop_left model with
      | None -> (model, Some None)
      | Some (v, m) -> (m, Some (Some v)))
  | Scenario.Pop_right -> (
      match Spec.Deque.pop_right model with
      | None -> (model, Some None)
      | Some (v, m) -> (m, Some (Some v)))

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun v -> Scenario.Push_left v) (int_bound 1000);
        map (fun v -> Scenario.Push_right v) (int_bound 1000);
        return Scenario.Pop_left;
        return Scenario.Pop_right;
      ])

let prop_deque_conforms (name, (module D : Lfrc_structures.Deque_intf.DEQUE), leak_check) =
  QCheck2.Test.make
    ~name:(Printf.sprintf "%s conforms to the sequential deque" name)
    ~count:60
    QCheck2.Gen.(list_size (int_range 0 120) op_gen)
    (fun ops ->
      let env, heap = fresh name in
      let d = D.create env in
      let h = D.register d in
      let model = ref Spec.Deque.empty in
      let ok = ref true in
      List.iter
        (fun op ->
          let model', expected = apply_spec_op !model op in
          model := model';
          let got =
            match op with
            | Scenario.Push_left v ->
                D.push_left h v;
                None
            | Scenario.Push_right v ->
                D.push_right h v;
                None
            | Scenario.Pop_left -> Some (D.pop_left h)
            | Scenario.Pop_right -> Some (D.pop_right h)
          in
          if got <> expected then ok := false)
        ops;
      D.unregister h;
      D.destroy d;
      !ok && ((not leak_check) || Heap.live_count heap = 0))

(* --- Stack and queue conformance --- *)

let test_stack_vs_spec () =
  let run (module S : Lfrc_structures.Stack_intf.STACK) name leak_check =
    let env, heap = fresh name in
    let s = S.create env in
    let h = S.register s in
    let rng = Lfrc_util.Rng.create 13 in
    let model = ref Spec.Stack.empty in
    for i = 0 to 2_000 do
      if Lfrc_util.Rng.bool rng then begin
        S.push h i;
        model := Spec.Stack.push i !model
      end
      else begin
        let got = S.pop h in
        let want =
          match Spec.Stack.pop !model with
          | None -> None
          | Some (v, m) ->
              model := m;
              Some v
        in
        checkb (name ^ " pop matches") true (got = want)
      end
    done;
    S.unregister h;
    S.destroy s;
    if leak_check then checki (name ^ " clean") 0 (Heap.live_count heap)
  in
  run (module Treiber_lfrc) "treiber-lfrc" true;
  run (module Treiber_gc) "treiber-gc" false

let test_queue_vs_spec () =
  let run (module Q : Lfrc_structures.Queue_intf.QUEUE) name leak_check =
    let env, heap = fresh name in
    let q = Q.create env in
    let h = Q.register q in
    let rng = Lfrc_util.Rng.create 14 in
    let model = ref Spec.Queue.empty in
    for i = 0 to 2_000 do
      if Lfrc_util.Rng.bool rng then begin
        Q.enqueue h i;
        model := Spec.Queue.enqueue i !model
      end
      else begin
        let got = Q.dequeue h in
        let want =
          match Spec.Queue.dequeue !model with
          | None -> None
          | Some (v, m) ->
              model := m;
              Some v
        in
        checkb (name ^ " dequeue matches") true (got = want)
      end
    done;
    Q.unregister h;
    Q.destroy q;
    if leak_check then checki (name ^ " clean") 0 (Heap.live_count heap)
  in
  run (module Ms_lfrc) "msqueue-lfrc" true;
  run (module Ms_gc) "msqueue-gc" false

(* --- Concurrent linearizability (randomized schedules) --- *)

let lin_scenarios : (string * int list * Scenario.op list list) list =
  Scenario.
    [
      ("2 pops vs push", [ 1; 2 ],
       [ [ Pop_right ]; [ Pop_left ]; [ Push_right 3 ] ]);
      ("crossing pushes", [],
       [ [ Push_right 1; Pop_left ]; [ Push_left 2; Pop_right ] ]);
      ("double pop right", [ 1 ],
       [ [ Pop_right ]; [ Pop_right ]; [ Push_right 2 ] ]);
    ]

let run_lin name dq ~seeds =
  List.iter
    (fun (sc_name, preload, threads) ->
      for seed = 0 to seeds - 1 do
        let o = Scenario.run dq ~preload ~threads (Strategy.Random seed) in
        if not o.Scenario.ok then
          Alcotest.fail
            (Printf.sprintf "%s/%s seed %d not linearizable" name sc_name seed)
      done)
    lin_scenarios

let test_fixed_snark_linearizable () =
  run_lin "fixed-lfrc" (module Fixed_lfrc) ~seeds:300

let test_fixed_snark_gc_linearizable () =
  (* The same algorithm in the GC-dependent world: the tracer reclaims at
     the end (gc_final) and the histories must linearize identically. *)
  List.iter
    (fun (sc_name, preload, threads) ->
      for seed = 0 to 99 do
        let o =
          Scenario.run (module Fixed_gc) ~gc_final:true ~preload ~threads
            (Strategy.Random seed)
        in
        if not o.Scenario.ok then
          Alcotest.fail
            (Printf.sprintf "fixed-gc/%s seed %d not linearizable" sc_name
               seed)
      done)
    lin_scenarios

let test_deque_with_deferred_policy () =
  (* The §7 incremental-destroy policy under a whole structure: pops and
     the destructor enqueue dead nodes; pumping drains them all. *)
  let heap = Heap.create ~name:"deferred-deque" () in
  let env =
    Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step
      ~policy:(Lfrc_core.Env.Deferred { budget_per_op = 4 })
      heap
  in
  let d = Fixed_lfrc.create env in
  let h = Fixed_lfrc.register d in
  for i = 1 to 300 do
    Fixed_lfrc.push_right h i
  done;
  for _ = 1 to 300 do
    ignore (Fixed_lfrc.pop_left h)
  done;
  Fixed_lfrc.unregister h;
  Fixed_lfrc.destroy d;
  while
    Lfrc_core.Lfrc.pump_deferred env ~budget:50 > 0
    || Lfrc_core.Env.deferred_pending env > 0
  do
    ()
  done;
  checki "deferred drain leaves nothing" 0 (Heap.live_count heap)

let test_locked_deque_linearizable () =
  run_lin "locked" (module Locked) ~seeds:150

(* --- The published algorithm's race: regression for A4 --- *)

let test_published_snark_bug_reproduces () =
  (* Deterministic counterexample found by bin/hunt_snark.exe: preload
     [1], concurrent popRight / popLeft / pushLeft 3, random seed 120053.
     popLeft returns empty although the deque provably never is — the
     Doherty et al. (SPAA 2004) false-empty race, rediscovered here.
     If this test ever "fails", the published algorithm would have
     executed correctly on this schedule — which would mean the
     simulation lost determinism. *)
  let o =
    Scenario.run
      (module Snark_lfrc)
      ~preload:[ 1 ]
      ~threads:Scenario.[ [ Pop_right ]; [ Pop_left ]; [ Push_left 3 ] ]
      (Strategy.Pct { seed = 120053; change_points = 3 })
  in
  checkb "published Snark violates linearizability on the known schedule"
    false o.Scenario.ok

let test_published_snark_bug_rate () =
  (* The race is rare but not vanishing: it must appear within a few
     thousand seeds, and the fixed variant must survive the same ones. *)
  let violations dq =
    let bad = ref 0 in
    for seed = 120_000 to 121_000 do
      let strategy =
        if seed land 1 = 0 then Strategy.Random seed
        else Strategy.Pct { seed; change_points = 3 }
      in
      let o =
        Scenario.run dq ~preload:[ 1 ]
          ~threads:Scenario.[ [ Pop_right ]; [ Pop_left ]; [ Push_left 3 ] ]
          strategy
      in
      if not o.Scenario.ok then incr bad
    done;
    !bad
  in
  checkb "published shows violations" true (violations (module Snark_lfrc) > 0);
  checki "fixed shows none" 0 (violations (module Fixed_lfrc))

let () =
  Alcotest.run "structures"
    [
      ( "deque-basics",
        [
          Alcotest.test_case "fifo+lifo" `Quick test_deque_fifo_lifo;
          Alcotest.test_case "mixed ends" `Quick test_deque_mixed_ends;
          Alcotest.test_case "empty states" `Quick test_deque_empty_after_create;
          Alcotest.test_case "random vs spec" `Quick test_deque_random_vs_spec;
          Alcotest.test_case "gc-mode tracer reclaims" `Quick test_snark_gc_reclaimed_by_tracer;
          Alcotest.test_case "destroy non-empty" `Quick test_deque_destroy_nonempty;
        ] );
      ( "deque-properties",
        List.map
          (fun impl -> QCheck_alcotest.to_alcotest (prop_deque_conforms impl))
          deque_impls );
      ( "stack-queue",
        [
          Alcotest.test_case "treiber vs spec" `Quick test_stack_vs_spec;
          Alcotest.test_case "msqueue vs spec" `Quick test_queue_vs_spec;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "fixed snark" `Slow test_fixed_snark_linearizable;
          Alcotest.test_case "fixed snark (gc mode)" `Slow test_fixed_snark_gc_linearizable;
          Alcotest.test_case "locked deque" `Slow test_locked_deque_linearizable;
          Alcotest.test_case "deferred destroy policy" `Quick test_deque_with_deferred_policy;
        ] );
      ( "published-bug",
        [
          Alcotest.test_case "A4 counterexample reproduces" `Quick
            test_published_snark_bug_reproduces;
          Alcotest.test_case "A4 rate: published fails, fixed holds" `Slow
            test_published_snark_bug_rate;
        ] );
    ]
