(* Tests for the methodology extensions: the DCAS-based ordered set (a
   further "candidate implementation" in the paper's §2.1 sense), the
   LL/SC operations (§2.1's suggested extension), and the Handicap
   scheduling strategy behind experiment E9. *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env
module Report = Lfrc_simmem.Report
module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module Ll_sc = Lfrc_core.Ll_sc
module Lfrc = Lfrc_core.Lfrc

module Set_lfrc = Lfrc_structures.Dlist_set.Make (Lfrc_core.Lfrc_ops)
module Set_gc = Lfrc_structures.Dlist_set.Make (Lfrc_core.Gc_ops)
module Skip_lfrc = Lfrc_structures.Skiplist.Make (Lfrc_core.Lfrc_ops)
module Skip_gc = Lfrc_structures.Skiplist.Make (Lfrc_core.Gc_ops)

module Int_set = Set.Make (Int)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let fresh name =
  let heap = Heap.create ~name () in
  (Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap, heap)

(* --- ordered set: sequential semantics --- *)

let test_set_basics () =
  let env, heap = fresh "set1" in
  let s = Set_lfrc.create env in
  let h = Set_lfrc.register s in
  checkb "insert new" true (Set_lfrc.insert h 5);
  checkb "insert dup" false (Set_lfrc.insert h 5);
  checkb "contains" true (Set_lfrc.contains h 5);
  checkb "not contains" false (Set_lfrc.contains h 6);
  checkb "remove" true (Set_lfrc.remove h 5);
  checkb "remove absent" false (Set_lfrc.remove h 5);
  checkb "gone" false (Set_lfrc.contains h 5);
  Set_lfrc.unregister h;
  Set_lfrc.destroy s;
  Report.assert_no_leaks heap

let test_set_sorted () =
  let env, _ = fresh "set2" in
  let s = Set_lfrc.create env in
  let h = Set_lfrc.register s in
  List.iter (fun v -> ignore (Set_lfrc.insert h v)) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check (list int)) "ascending" [ 1; 3; 5; 7; 9 ] (Set_lfrc.to_list h);
  Set_lfrc.unregister h;
  Set_lfrc.destroy s

let test_set_negative_keys () =
  let env, _ = fresh "set3" in
  let s = Set_lfrc.create env in
  let h = Set_lfrc.register s in
  checkb "negative insert" true (Set_lfrc.insert h (-10));
  checkb "zero" true (Set_lfrc.insert h 0);
  checkb "negative found" true (Set_lfrc.contains h (-10));
  Alcotest.(check (list int)) "order with negatives" [ -10; 0 ]
    (Set_lfrc.to_list h);
  Set_lfrc.unregister h;
  Set_lfrc.destroy s

module type SET = sig
  type t
  type handle

  val create : Env.t -> t
  val register : t -> handle
  val unregister : handle -> unit
  val insert : handle -> int -> bool
  val remove : handle -> int -> bool
  val contains : handle -> int -> bool
  val to_list : handle -> int list
  val destroy : t -> unit
end

let random_set_run (type t h) name
    (module S : SET with type t = t and type handle = h) ~leak_check =
  let env, heap = fresh name in
  let s : t = S.create env in
  let hd : h = S.register s in
  let rng = Lfrc_util.Rng.create 55 in
  let model = ref Int_set.empty in
  for _ = 0 to 3_000 do
    let key = Lfrc_util.Rng.int rng 50 in
    match Lfrc_util.Rng.int rng 3 with
    | 0 ->
        let got = S.insert hd key in
        let want = not (Int_set.mem key !model) in
        model := Int_set.add key !model;
        if got <> want then Alcotest.fail (name ^ ": insert mismatch")
    | 1 ->
        let got = S.remove hd key in
        let want = Int_set.mem key !model in
        model := Int_set.remove key !model;
        if got <> want then Alcotest.fail (name ^ ": remove mismatch")
    | _ ->
        if S.contains hd key <> Int_set.mem key !model then
          Alcotest.fail (name ^ ": contains mismatch")
  done;
  Alcotest.(check (list int)) (name ^ " final content")
    (Int_set.elements !model) (S.to_list hd);
  S.unregister hd;
  S.destroy s;
  if leak_check then Report.assert_no_leaks heap

let test_set_random_vs_model () =
  random_set_run "set-lfrc" (module Set_lfrc) ~leak_check:true

let test_set_random_vs_model_gc () =
  random_set_run "set-gc" (module Set_gc) ~leak_check:false

(* qcheck: arbitrary op sequences against the functional set *)
let prop_set_conforms =
  QCheck2.Test.make ~name:"dlist set conforms to Set.Make(Int)" ~count:80
    QCheck2.Gen.(list_size (int_range 0 150) (pair (int_bound 2) (int_bound 20)))
    (fun ops ->
      let env, heap = fresh "set-qc" in
      let s = Set_lfrc.create env in
      let h = Set_lfrc.register s in
      let model = ref Int_set.empty in
      let ok = ref true in
      List.iter
        (fun (kind, key) ->
          match kind with
          | 0 ->
              let got = Set_lfrc.insert h key in
              if got <> not (Int_set.mem key !model) then ok := false;
              model := Int_set.add key !model
          | 1 ->
              let got = Set_lfrc.remove h key in
              if got <> Int_set.mem key !model then ok := false;
              model := Int_set.remove key !model
          | _ ->
              if Set_lfrc.contains h key <> Int_set.mem key !model then
                ok := false)
        ops;
      let content_ok = Set_lfrc.to_list h = Int_set.elements !model in
      Set_lfrc.unregister h;
      Set_lfrc.destroy s;
      !ok && content_ok && Heap.live_count heap = 0)

(* --- ordered set: concurrent linearizability --- *)

module Set_spec = struct
  type state = Int_set.t
  type op = Insert of int | Remove of int | Contains of int
  type res = bool

  let init = Int_set.empty

  let apply state = function
    | Insert k -> (Int_set.add k state, not (Int_set.mem k state))
    | Remove k -> (Int_set.remove k state, Int_set.mem k state)
    | Contains k -> (state, Int_set.mem k state)

  let equal_res = Bool.equal

  let pp_op ppf = function
    | Insert k -> Format.fprintf ppf "insert %d" k
    | Remove k -> Format.fprintf ppf "remove %d" k
    | Contains k -> Format.fprintf ppf "contains %d" k

  let pp_res = Format.pp_print_bool
end

module Set_checker = Lfrc_linearize.Checker.Make (Set_spec)

let run_set_scenario ~preload ~threads seed =
  let history = Lfrc_linearize.History.create () in
  let body () =
    let env, _heap = fresh "set-lin" in
    let s = Set_lfrc.create env in
    let h0 = Set_lfrc.register s in
    List.iter (fun k -> ignore (Set_lfrc.insert h0 k)) preload;
    List.iter
      (fun k ->
        ignore
          (Lfrc_linearize.History.record history ~thread:0
             (Set_spec.Insert k) (fun () -> true)))
      preload;
    let tids =
      List.mapi
        (fun i ops ->
          Sched.spawn (fun () ->
              let h = Set_lfrc.register s in
              List.iter
                (fun op ->
                  ignore
                    (Lfrc_linearize.History.record history ~thread:(i + 1) op
                       (fun () ->
                         match op with
                         | Set_spec.Insert k -> Set_lfrc.insert h k
                         | Set_spec.Remove k -> Set_lfrc.remove h k
                         | Set_spec.Contains k -> Set_lfrc.contains h k)))
                ops;
              Set_lfrc.unregister h))
        threads
    in
    Sched.join tids;
    Set_lfrc.unregister h0
  in
  ignore (Sched.run ~max_steps:1_000_000 (Strategy.Random seed) body);
  match Set_checker.check history with
  | Set_checker.Linearizable _ -> true
  | Set_checker.Not_linearizable -> false

let test_set_linearizable () =
  let scenarios =
    Set_spec.
      [
        ([ 5 ], [ [ Remove 5 ]; [ Remove 5 ]; [ Insert 5 ] ]);
        ([ 1; 2 ], [ [ Insert 3; Remove 1 ]; [ Remove 2; Contains 3 ] ]);
        ([], [ [ Insert 7; Contains 7 ]; [ Insert 7; Remove 7 ] ]);
        ([ 4 ], [ [ Remove 4; Insert 4 ]; [ Contains 4; Contains 4 ] ]);
      ]
  in
  List.iteri
    (fun i (preload, threads) ->
      for seed = 0 to 199 do
        if not (run_set_scenario ~preload ~threads seed) then
          Alcotest.fail
            (Printf.sprintf "set scenario %d seed %d not linearizable" i seed)
      done)
    scenarios

let test_set_exhaustive_small () =
  (* Bounded-exhaustive exploration (the Snark hunt's deep oracle) on the
     smallest contended scenario: two removers and an inserter on one
     key. *)
  let captured = ref None in
  let body () =
    let history = Lfrc_linearize.History.create () in
    let env, heap = fresh "set-exh" in
    let s = Set_lfrc.create env in
    let h0 = Set_lfrc.register s in
    ignore (Set_lfrc.insert h0 5);
    ignore
      (Lfrc_linearize.History.record history ~thread:0 (Set_spec.Insert 5)
         (fun () -> true));
    captured := Some (history, heap);
    let worker i op =
      Sched.spawn (fun () ->
          let h = Set_lfrc.register s in
          ignore
            (Lfrc_linearize.History.record history ~thread:i op (fun () ->
                 match op with
                 | Set_spec.Insert k -> Set_lfrc.insert h k
                 | Set_spec.Remove k -> Set_lfrc.remove h k
                 | Set_spec.Contains k -> Set_lfrc.contains h k));
          Set_lfrc.unregister h)
    in
    let tids =
      [ worker 1 (Set_spec.Remove 5); worker 2 (Set_spec.Remove 5);
        worker 3 (Set_spec.Insert 5) ]
    in
    Sched.join tids;
    Set_lfrc.unregister h0
  in
  let check () =
    match !captured with
    | None -> failwith "no history"
    | Some (history, _heap) -> (
        match Set_checker.check history with
        | Set_checker.Linearizable _ -> ()
        | Set_checker.Not_linearizable -> failwith "set not linearizable")
  in
  match
    Lfrc_sched.Explore.check ~max_preemptions:2 ~max_schedules:30_000 ~body
      ~check ()
  with
  | Lfrc_sched.Explore.Ok { schedules } ->
      checkb "complete exploration" true (schedules > 100)
  | Lfrc_sched.Explore.Budget_exhausted { schedules } ->
      checkb "no violation within budget" true (schedules = 30_000)
  | Lfrc_sched.Explore.Violation { exn; _ } ->
      Alcotest.fail ("set violation: " ^ Printexc.to_string exn)

let test_set_concurrent_stress () =
  (* Conservation under churn: the final content equals a serial replay
     of the successful operations is too strong; instead check structural
     sanity (sorted, duplicate-free) and memory cleanliness. *)
  for seed = 0 to 19 do
    let leftover = ref None in
    let body () =
      let env, heap = fresh "set-stress" in
      let s = Set_lfrc.create env in
      let tids =
        List.init 3 (fun t ->
            Sched.spawn (fun () ->
                let h = Set_lfrc.register s in
                let rng = Lfrc_util.Rng.create (seed + (t * 313)) in
                for _ = 1 to 80 do
                  let k = Lfrc_util.Rng.int rng 20 in
                  match Lfrc_util.Rng.int rng 3 with
                  | 0 -> ignore (Set_lfrc.insert h k)
                  | 1 -> ignore (Set_lfrc.remove h k)
                  | _ -> ignore (Set_lfrc.contains h k)
                done;
                Set_lfrc.unregister h))
      in
      Sched.join tids;
      leftover := Some (s, heap)
    in
    ignore (Sched.run ~max_steps:10_000_000 (Strategy.Random seed) body);
    let s, heap = Option.get !leftover in
    let h = Set_lfrc.register s in
    let content = Set_lfrc.to_list h in
    let sorted_nodup = List.sort_uniq compare content in
    checkb "sorted and duplicate-free" true (content = sorted_nodup);
    Set_lfrc.unregister h;
    Set_lfrc.destroy s;
    Report.assert_no_leaks heap;
    checki "counts exact" 0 (List.length (Report.check_rc_exact heap))
  done

(* --- skip list --- *)

let test_skip_basics () =
  let env, heap = fresh "sk1" in
  let s = Skip_lfrc.create env in
  let h = Skip_lfrc.register s in
  checkb "insert new" true (Skip_lfrc.insert h 5);
  checkb "insert dup" false (Skip_lfrc.insert h 5);
  checkb "contains" true (Skip_lfrc.contains h 5);
  checkb "absent" false (Skip_lfrc.contains h 4);
  checkb "remove" true (Skip_lfrc.remove h 5);
  checkb "remove absent" false (Skip_lfrc.remove h 5);
  Skip_lfrc.unregister h;
  Skip_lfrc.destroy s;
  Report.assert_no_leaks heap

let skip_random_run (type t h)
    (module S : SET with type t = t and type handle = h) name ~leak_check =
  let env, heap = fresh name in
  let s : t = S.create env in
  let hd : h = S.register s in
  let rng = Lfrc_util.Rng.create 91 in
  let model = ref Int_set.empty in
  for _ = 0 to 4_000 do
    let key = Lfrc_util.Rng.int rng 120 in
    match Lfrc_util.Rng.int rng 3 with
    | 0 ->
        let got = S.insert hd key in
        if got <> not (Int_set.mem key !model) then
          Alcotest.fail (name ^ ": insert mismatch");
        model := Int_set.add key !model
    | 1 ->
        let got = S.remove hd key in
        if got <> Int_set.mem key !model then
          Alcotest.fail (name ^ ": remove mismatch");
        model := Int_set.remove key !model
    | _ ->
        if S.contains hd key <> Int_set.mem key !model then
          Alcotest.fail (name ^ ": contains mismatch")
  done;
  Alcotest.(check (list int)) (name ^ " content") (Int_set.elements !model)
    (S.to_list hd);
  S.unregister hd;
  S.destroy s;
  if leak_check then Report.assert_no_leaks heap

module Skip_as_set_lfrc = struct
  include Skip_lfrc

  let register t = Skip_lfrc.register t
end

module Skip_as_set_gc = struct
  include Skip_gc

  let register t = Skip_gc.register t
end

let test_skip_random_vs_model () =
  skip_random_run (module Skip_as_set_lfrc) "skip-lfrc" ~leak_check:true

let test_skip_random_vs_model_gc () =
  skip_random_run (module Skip_as_set_gc) "skip-gc" ~leak_check:false

let test_skip_height_distribution () =
  let env, _ = fresh "sk-h" in
  let s = Skip_lfrc.create env in
  let h = Skip_lfrc.register s in
  for k = 1 to 2_000 do
    ignore (Skip_lfrc.insert h k)
  done;
  let hist = Skip_lfrc.height_histogram h in
  checkb "roughly half at level 1" true
    (hist.(0) > 800 && hist.(0) < 1200);
  checkb "towers thin out" true (hist.(1) > hist.(3));
  Skip_lfrc.unregister h;
  Skip_lfrc.destroy s

let test_skip_linearizable () =
  (* same scenarios as the ordered list, same oracle *)
  let run_scenario ~preload ~threads seed =
    let history = Lfrc_linearize.History.create () in
    let body () =
      let env, _heap = fresh "sk-lin" in
      let s = Skip_lfrc.create env in
      let h0 = Skip_lfrc.register s in
      List.iter (fun k -> ignore (Skip_lfrc.insert h0 k)) preload;
      List.iter
        (fun k ->
          ignore
            (Lfrc_linearize.History.record history ~thread:0
               (Set_spec.Insert k) (fun () -> true)))
        preload;
      let tids =
        List.mapi
          (fun i ops ->
            Sched.spawn (fun () ->
                let h = Skip_lfrc.register ~seed:(i + 1) s in
                List.iter
                  (fun op ->
                    ignore
                      (Lfrc_linearize.History.record history ~thread:(i + 1)
                         op (fun () ->
                           match op with
                           | Set_spec.Insert k -> Skip_lfrc.insert h k
                           | Set_spec.Remove k -> Skip_lfrc.remove h k
                           | Set_spec.Contains k -> Skip_lfrc.contains h k)))
                  ops;
                Skip_lfrc.unregister h))
          threads
      in
      Sched.join tids;
      Skip_lfrc.unregister h0
    in
    ignore (Sched.run ~max_steps:2_000_000 (Strategy.Random seed) body);
    match Set_checker.check history with
    | Set_checker.Linearizable _ -> true
    | Set_checker.Not_linearizable -> false
  in
  let scenarios =
    Set_spec.
      [
        ([ 5 ], [ [ Remove 5 ]; [ Remove 5 ]; [ Insert 5 ] ]);
        ([ 1; 2 ], [ [ Insert 3; Remove 1 ]; [ Remove 2; Contains 3 ] ]);
        ([], [ [ Insert 7; Contains 7 ]; [ Insert 7; Remove 7 ] ]);
      ]
  in
  List.iteri
    (fun i (preload, threads) ->
      for seed = 0 to 149 do
        if not (run_scenario ~preload ~threads seed) then
          Alcotest.fail
            (Printf.sprintf "skiplist scenario %d seed %d not linearizable" i
               seed)
      done)
    scenarios

(* --- LL/SC --- *)

let node = Lfrc_simmem.Layout.make ~name:"llsc" ~n_ptrs:1 ~n_vals:0

let test_llsc_success () =
  let env, heap = fresh "llsc1" in
  let cell = Heap.root heap () in
  let a = Lfrc.alloc env node and b = Lfrc.alloc env node in
  Lfrc.store_alloc env ~dst:cell a;
  let r = Ll_sc.load_linked env cell in
  checki "linked value" a (Ll_sc.value r);
  checkb "validates" true (Ll_sc.validate env r);
  checkb "sc succeeds" true (Ll_sc.store_conditional env r b);
  checki "stored" b (Lfrc.read_ptr env cell);
  checkb "a reclaimed" false (Heap.is_live heap a);
  Lfrc.store env ~dst:cell Heap.null;
  Lfrc.destroy env b;
  Report.assert_no_leaks heap

let test_llsc_fails_after_change () =
  let env, heap = fresh "llsc2" in
  let cell = Heap.root heap () in
  let a = Lfrc.alloc env node and b = Lfrc.alloc env node in
  Lfrc.store env ~dst:cell a;
  let r = Ll_sc.load_linked env cell in
  Lfrc.store env ~dst:cell b (* interference *);
  checkb "no longer validates" false (Ll_sc.validate env r);
  checkb "sc fails" false (Ll_sc.store_conditional env r a);
  checki "b kept" b (Lfrc.read_ptr env cell);
  Lfrc.store env ~dst:cell Heap.null;
  Lfrc.destroy env a;
  Lfrc.destroy env b;
  Report.assert_no_leaks heap

let test_llsc_no_false_positive_via_recycling () =
  (* The CAS-emulation weakness: value changes A -> B -> A and SC wrongly
     succeeds. With LFRC the reservation holds a counted reference, so
     the id cannot be recycled; a *genuine* A->B->A (the same object
     re-stored) is a legitimate success. Show both facts. *)
  let env, heap = fresh "llsc3" in
  let cell = Heap.root heap () in
  let a = Lfrc.alloc env node and b = Lfrc.alloc env node in
  Lfrc.store env ~dst:cell a;
  let r = Ll_sc.load_linked env cell in
  (* A -> B -> A with the same object: SC succeeding is linearizable *)
  Lfrc.store env ~dst:cell b;
  Lfrc.store env ~dst:cell a;
  checkb "same-object ABA may succeed" true (Ll_sc.store_conditional env r a);
  (* now: remove a entirely; its id must NOT be recycled while linked *)
  let r2 = Ll_sc.load_linked env cell in
  Lfrc.store env ~dst:cell Heap.null;
  Lfrc.destroy env a;
  Lfrc.destroy env b;
  checkb "object survives while reservation held" true
    (Heap.is_live heap (Ll_sc.value r2));
  let fresh_obj = Lfrc.alloc env node in
  checkb "allocator did not recycle the linked id" true
    (fresh_obj <> Ll_sc.value r2);
  Lfrc.destroy env fresh_obj;
  Ll_sc.abandon env r2;
  Report.assert_no_leaks heap

let test_llsc_reuse_rejected () =
  let env, heap = fresh "llsc4" in
  let cell = Heap.root heap () in
  let r = Ll_sc.load_linked env cell in
  checkb "first use ok" true (Ll_sc.store_conditional env r Heap.null);
  checkb "second use rejected" true
    (match Ll_sc.store_conditional env r Heap.null with
    | _ -> false
    | exception Invalid_argument _ -> true);
  ignore heap

let test_llsc_counter_object () =
  (* The classic LL/SC use: atomically replace an immutable object. *)
  let env, heap = fresh "llsc5" in
  let boxed = Lfrc_simmem.Layout.make ~name:"box" ~n_ptrs:0 ~n_vals:1 in
  let cell = Heap.root heap () in
  let first = Lfrc.alloc env boxed in
  Lfrc.store_alloc env ~dst:cell first;
  let incr_box () =
    let rec attempt () =
      let r = Ll_sc.load_linked env cell in
      let v =
        Lfrc_simmem.Cell.get (Heap.val_cell heap (Ll_sc.value r) 0)
      in
      let fresh_box = Lfrc.alloc env boxed in
      Lfrc_simmem.Cell.set (Heap.val_cell heap fresh_box 0) (v + 1);
      let ok = Ll_sc.store_conditional env r fresh_box in
      Lfrc.destroy env fresh_box;
      if not ok then attempt ()
    in
    attempt ()
  in
  for _ = 1 to 100 do
    incr_box ()
  done;
  let final = Lfrc.read_ptr env cell in
  checki "hundred increments" 100
    (Lfrc_simmem.Cell.get (Heap.val_cell heap final 0));
  checki "intermediate boxes reclaimed" 1 (Heap.live_count heap);
  Lfrc.store env ~dst:cell Heap.null;
  Report.assert_no_leaks heap

(* --- Handicap strategy --- *)

let test_handicap_starves_victim () =
  let victim_steps = ref 0 and other_steps = ref 0 in
  ignore
    (Sched.run
       (Strategy.Handicap { seed = 3; victim = 1; period = 50 })
       (fun () ->
         let work me () =
           for _ = 1 to 200 do
             Sched.point ();
             incr me
           done
         in
         ignore (Sched.spawn (work victim_steps));
         ignore (Sched.spawn (work other_steps))));
  checki "victim completed eventually" 200 !victim_steps;
  checki "other completed" 200 !other_steps

let test_handicap_victim_only_runs () =
  (* With only the victim runnable, the freeze must not deadlock. *)
  let done_ = ref false in
  ignore
    (Sched.run
       (Strategy.Handicap { seed = 1; victim = 1; period = 10 })
       (fun () ->
         let t =
           Sched.spawn (fun () ->
               for _ = 1 to 100 do
                 Sched.point ()
               done;
               done_ := true)
         in
         Sched.join [ t ]));
  checkb "completed" true !done_

let () =
  Alcotest.run "extensions"
    [
      ( "dlist-set",
        [
          Alcotest.test_case "basics" `Quick test_set_basics;
          Alcotest.test_case "sorted" `Quick test_set_sorted;
          Alcotest.test_case "negative keys" `Quick test_set_negative_keys;
          Alcotest.test_case "random vs model (lfrc)" `Quick test_set_random_vs_model;
          Alcotest.test_case "random vs model (gc)" `Quick test_set_random_vs_model_gc;
          QCheck_alcotest.to_alcotest prop_set_conforms;
          Alcotest.test_case "linearizable" `Slow test_set_linearizable;
          Alcotest.test_case "exhaustive small" `Slow test_set_exhaustive_small;
          Alcotest.test_case "concurrent stress" `Slow test_set_concurrent_stress;
        ] );
      ( "skiplist",
        [
          Alcotest.test_case "basics" `Quick test_skip_basics;
          Alcotest.test_case "random vs model (lfrc)" `Quick test_skip_random_vs_model;
          Alcotest.test_case "random vs model (gc)" `Quick test_skip_random_vs_model_gc;
          Alcotest.test_case "height distribution" `Quick test_skip_height_distribution;
          Alcotest.test_case "linearizable" `Slow test_skip_linearizable;
        ] );
      ( "ll-sc",
        [
          Alcotest.test_case "success" `Quick test_llsc_success;
          Alcotest.test_case "fails after change" `Quick test_llsc_fails_after_change;
          Alcotest.test_case "no recycling false-positive" `Quick
            test_llsc_no_false_positive_via_recycling;
          Alcotest.test_case "reuse rejected" `Quick test_llsc_reuse_rejected;
          Alcotest.test_case "counter object" `Quick test_llsc_counter_object;
        ] );
      ( "handicap",
        [
          Alcotest.test_case "starves but completes" `Quick test_handicap_starves_victim;
          Alcotest.test_case "victim-only no deadlock" `Quick test_handicap_victim_only_runs;
        ] );
    ]
