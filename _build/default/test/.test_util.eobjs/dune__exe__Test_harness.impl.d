test/test_harness.ml: Alcotest Array Lfrc_core Lfrc_harness Lfrc_sched Lfrc_structures Lfrc_util Lfrc_workload List Printexc String
