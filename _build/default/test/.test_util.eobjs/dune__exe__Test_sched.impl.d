test/test_sched.ml: Alcotest Array Atomic Lfrc_sched List Option Printf
