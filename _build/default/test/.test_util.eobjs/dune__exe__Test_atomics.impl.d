test/test_atomics.ml: Alcotest Array Atomic Domain Lfrc_atomics Lfrc_sched Lfrc_simmem List Option Printexc Printf QCheck2 QCheck_alcotest
