test/test_simmem.ml: Alcotest Fun Hashtbl Lfrc_simmem List QCheck2 QCheck_alcotest
