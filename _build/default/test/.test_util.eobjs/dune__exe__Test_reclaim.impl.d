test/test_reclaim.ml: Alcotest Atomic Lfrc_atomics Lfrc_core Lfrc_reclaim Lfrc_sched Lfrc_simmem Lfrc_structures Lfrc_util List Printf
