test/test_atomics.mli:
