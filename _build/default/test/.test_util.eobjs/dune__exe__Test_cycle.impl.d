test/test_cycle.ml: Alcotest Lfrc_atomics Lfrc_core Lfrc_cycle Lfrc_simmem List
