test/test_incremental.ml: Alcotest Atomic Lfrc_atomics Lfrc_core Lfrc_sched Lfrc_simmem Lfrc_structures Lfrc_util List Option Printf
