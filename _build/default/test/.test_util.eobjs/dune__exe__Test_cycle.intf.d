test/test_cycle.mli:
