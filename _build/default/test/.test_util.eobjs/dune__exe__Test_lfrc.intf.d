test/test_lfrc.mli:
