test/test_structures.ml: Alcotest Lfrc_atomics Lfrc_core Lfrc_harness Lfrc_sched Lfrc_simmem Lfrc_structures Lfrc_util List Printf QCheck2 QCheck_alcotest
