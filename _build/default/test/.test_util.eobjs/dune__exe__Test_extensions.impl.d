test/test_extensions.ml: Alcotest Array Bool Format Int Lfrc_atomics Lfrc_core Lfrc_linearize Lfrc_sched Lfrc_simmem Lfrc_structures Lfrc_util List Option Printexc Printf QCheck2 QCheck_alcotest Set
