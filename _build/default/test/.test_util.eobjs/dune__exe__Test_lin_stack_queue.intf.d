test/test_lin_stack_queue.mli:
