test/test_parallel.ml: Alcotest Array Atomic Domain Hashtbl Lfrc_atomics Lfrc_core Lfrc_simmem Lfrc_structures Lfrc_util List Option
