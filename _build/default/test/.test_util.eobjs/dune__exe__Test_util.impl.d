test/test_util.ml: Alcotest Array Float Fun Lfrc_util List String
