test/test_linearize.ml: Alcotest Lfrc_harness Lfrc_linearize List
