test/test_lfrc.ml: Alcotest Array Format Lfrc_atomics Lfrc_core Lfrc_cycle Lfrc_sched Lfrc_simmem Lfrc_structures Lfrc_util List Option Printf QCheck2 QCheck_alcotest
