(* Real-domain stress: the same structures driven by OCaml domains with
   the striped-lock DCAS substrate (the hardware-DCAS stand-in for true
   parallelism). The machine may have a single core; domains still
   interleave preemptively, exercising the real atomics.

   Each test checks value conservation and, for LFRC structures, that
   quiescent teardown leaves an empty heap with exact counts. *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env
module Report = Lfrc_simmem.Report

module Treiber = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)
module Msq = Lfrc_structures.Msqueue.Make (Lfrc_core.Lfrc_ops)
module Fixed = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)
module Locked = Lfrc_structures.Locked_deque

let checki = Alcotest.(check int)
let _checkb = Alcotest.(check bool)

let n_domains = 3
let ops_per_domain = 2_000

let fresh name =
  let heap = Heap.create ~name () in
  (Env.create ~dcas_impl:Lfrc_atomics.Dcas.Striped_lock heap, heap)

let sum_range a b = (a + b) * (b - a + 1) / 2

(* Each domain pushes a disjoint range and pops whatever it can; after
   joining, drain the rest: pushed sum must equal popped sum. *)
let test_treiber_domains () =
  let env, heap = fresh "par-treiber" in
  let s = Treiber.create env in
  let popped = Atomic.make 0 in
  let worker d () =
    let h = Treiber.register s in
    let base = (d + 1) * 1_000_000 in
    for i = 1 to ops_per_domain do
      Treiber.push h (base + i);
      if i land 1 = 0 then
        match Treiber.pop h with
        | Some v -> ignore (Atomic.fetch_and_add popped v)
        | None -> ()
    done;
    Treiber.unregister h
  in
  let domains = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  let h0 = Treiber.register s in
  let rec drain () =
    match Treiber.pop h0 with
    | Some v ->
        ignore (Atomic.fetch_and_add popped v);
        drain ()
    | None -> ()
  in
  drain ();
  Treiber.unregister h0;
  let expected =
    List.init n_domains (fun d ->
        let base = (d + 1) * 1_000_000 in
        sum_range (base + 1) (base + ops_per_domain))
    |> List.fold_left ( + ) 0
  in
  checki "conservation" expected (Atomic.get popped);
  Treiber.destroy s;
  Report.assert_no_leaks heap;
  checki "counts exact at quiescence" 0 (List.length (Report.check_rc_exact heap))

let test_msqueue_domains () =
  let env, heap = fresh "par-msq" in
  let q = Msq.create env in
  let popped = Atomic.make 0 in
  let per_thread_order_ok = Atomic.make 1 in
  let producer d () =
    let h = Msq.register q in
    let base = (d + 1) * 1_000_000 in
    for i = 1 to ops_per_domain do
      Msq.enqueue h (base + i)
    done;
    Msq.unregister h
  in
  let consumer () =
    let h = Msq.register q in
    (* FIFO per producer: values from one producer must arrive in
       ascending order. *)
    let last = Hashtbl.create 4 in
    for _ = 1 to ops_per_domain do
      match Msq.dequeue h with
      | Some v ->
          ignore (Atomic.fetch_and_add popped v);
          let producer_id = v / 1_000_000 in
          let prev = Option.value ~default:0 (Hashtbl.find_opt last producer_id) in
          if v <= prev then Atomic.set per_thread_order_ok 0;
          Hashtbl.replace last producer_id v
      | None -> Domain.cpu_relax ()
    done;
    Msq.unregister h
  in
  let producers = List.init 2 (fun d -> Domain.spawn (producer d)) in
  let consumers = List.init 1 (fun _ -> Domain.spawn consumer) in
  List.iter Domain.join producers;
  List.iter Domain.join consumers;
  let h0 = Msq.register q in
  let rec drain () =
    match Msq.dequeue h0 with
    | Some v ->
        ignore (Atomic.fetch_and_add popped v);
        drain ()
    | None -> ()
  in
  drain ();
  Msq.unregister h0;
  let expected =
    sum_range 1_000_001 (1_000_000 + ops_per_domain)
    + sum_range 2_000_001 (2_000_000 + ops_per_domain)
  in
  checki "conservation" expected (Atomic.get popped);
  checki "per-producer FIFO held" 1 (Atomic.get per_thread_order_ok);
  Msq.destroy q;
  Report.assert_no_leaks heap

let deque_conservation (module D : Lfrc_structures.Deque_intf.DEQUE) name
    ~leak_check =
  let env, heap = fresh name in
  let d = D.create env in
  let popped = Atomic.make 0 and pushed = Atomic.make 0 in
  let worker w () =
    let h = D.register d in
    let rng = Lfrc_util.Rng.create (w * 7919) in
    let base = (w + 1) * 1_000_000 in
    for i = 1 to ops_per_domain do
      match Lfrc_util.Rng.int rng 4 with
      | 0 ->
          D.push_left h (base + i);
          ignore (Atomic.fetch_and_add pushed (base + i))
      | 1 ->
          D.push_right h (base + i);
          ignore (Atomic.fetch_and_add pushed (base + i))
      | 2 -> (
          match D.pop_left h with
          | Some v -> ignore (Atomic.fetch_and_add popped v)
          | None -> ())
      | _ -> (
          match D.pop_right h with
          | Some v -> ignore (Atomic.fetch_and_add popped v)
          | None -> ())
    done;
    D.unregister h
  in
  let domains = List.init n_domains (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join domains;
  let h0 = D.register d in
  let rec drain () =
    match D.pop_left h0 with
    | Some v ->
        ignore (Atomic.fetch_and_add popped v);
        drain ()
    | None -> ()
  in
  drain ();
  D.unregister h0;
  checki (name ^ " conservation") (Atomic.get pushed) (Atomic.get popped);
  D.destroy d;
  if leak_check then begin
    Report.assert_no_leaks heap;
    checki (name ^ " counts exact") 0 (List.length (Report.check_rc_exact heap))
  end

let test_fixed_snark_domains () =
  deque_conservation (module Fixed) "par-fixed" ~leak_check:true

let test_locked_deque_domains () =
  deque_conservation (module Locked) "par-locked" ~leak_check:true

let test_lfrc_ops_domains () =
  (* Raw LFRC operations from several domains on shared cells: the weak
     invariant must leave exact counts at quiescence. *)
  let env, heap = fresh "par-lfrc" in
  let node = Lfrc_simmem.Layout.make ~name:"n" ~n_ptrs:1 ~n_vals:0 in
  let cells = Array.init 4 (fun _ -> Heap.root heap ()) in
  let worker w () =
    let rng = Lfrc_util.Rng.create (w * 104729) in
    Lfrc_core.Lfrc.with_locals env 2 (fun ls ->
        for _ = 1 to 1_000 do
          let c = Lfrc_util.Rng.pick rng cells in
          match Lfrc_util.Rng.int rng 4 with
          | 0 -> Lfrc_core.Lfrc.load env ~src:c ~dest:ls.(0)
          | 1 -> Lfrc_core.Lfrc.store env ~dst:c !(ls.(0))
          | 2 ->
              let p = Lfrc_core.Lfrc.alloc env node in
              Lfrc_core.Lfrc.store_alloc env ~dst:c p
          | _ ->
              ignore
                (Lfrc_core.Lfrc.cas env c ~old_ptr:!(ls.(0))
                   ~new_ptr:!(ls.(1)))
        done)
  in
  let domains = List.init n_domains (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join domains;
  checki "counts exact" 0 (List.length (Report.check_rc_exact heap));
  Array.iter (fun c -> Lfrc_core.Lfrc.store env ~dst:c Heap.null) cells;
  checki "no leaks" 0 (Heap.live_count heap)

let () =
  Alcotest.run "parallel"
    [
      ( "domains",
        [
          Alcotest.test_case "treiber stack" `Slow test_treiber_domains;
          Alcotest.test_case "michael-scott queue" `Slow test_msqueue_domains;
          Alcotest.test_case "fixed snark deque" `Slow test_fixed_snark_domains;
          Alcotest.test_case "locked deque" `Slow test_locked_deque_domains;
          Alcotest.test_case "raw lfrc ops" `Slow test_lfrc_ops_domains;
        ] );
    ]
