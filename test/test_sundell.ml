(* The CAS-only Sundell–Tsigas deque port: sequential semantics, the
   destroy-time hint-cycle regression, and concurrent linearizability via
   the Scenario engine (full Wing–Gong checking against the sequential
   deque spec) under randomized and PCT scheduling, in eager and both
   deferred-rc coalescing modes. Every scenario ends with a drain,
   destroy, and whole-heap leak assertion, so "pure reference counting
   reclaims everything the marker protocol retires" is checked on every
   run, not just the quickcheck suite. *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env
module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module Scenario = Lfrc_harness.Scenario

module D = Lfrc_structures.Sundell_deque.Make (Lfrc_core.Lfrc_ops)

let checki = Alcotest.(check int)

let check_popped what got want =
  Alcotest.(check (option int)) what want got

(* Deterministic single-threaded run over a fresh env; asserts no leaks
   after teardown. *)
let solo ?rc_mode f =
  ignore
    (Sched.run ~max_steps:10_000_000 Strategy.Round_robin (fun () ->
         let heap = Heap.create ~name:"sundell-test" () in
         let env =
           Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step ?rc_mode heap
         in
         let t = D.create env in
         let h = D.register t in
         f h;
         D.unregister h;
         D.destroy t;
         Lfrc_simmem.Report.assert_no_leaks heap))

(* --- sequential semantics --- *)

let test_fifo_lifo_faces () =
  solo (fun h ->
      (* right face behaves as a stack against push_right... *)
      D.push_right h 1;
      D.push_right h 2;
      D.push_right h 3;
      check_popped "pop_right" (D.pop_right h) (Some 3);
      (* ...and the left face as a queue. *)
      check_popped "pop_left" (D.pop_left h) (Some 1);
      check_popped "pop_left" (D.pop_left h) (Some 2);
      check_popped "empty left" (D.pop_left h) None;
      check_popped "empty right" (D.pop_right h) None)

let test_both_ends_interleaved () =
  solo (fun h ->
      D.push_left h 10;
      D.push_right h 20;
      D.push_left h 5;
      (* deque is now 5,10,20 *)
      check_popped "pop_right 20" (D.pop_right h) (Some 20);
      check_popped "pop_left 5" (D.pop_left h) (Some 5);
      check_popped "pop_right 10" (D.pop_right h) (Some 10);
      check_popped "exhausted" (D.pop_right h) None)

let test_many_values_roundtrip () =
  solo (fun h ->
      for i = 1 to 200 do
        D.push_right h i
      done;
      for i = 1 to 200 do
        check_popped "fifo order" (D.pop_left h) (Some i)
      done;
      check_popped "drained" (D.pop_left h) None)

(* destroy must break the tail hint's reference into the popped chain
   (hint -> popped node -> frozen markers -> tail sentinel is a cycle no
   pure reference count ever collects). pop_right leaves the hint stale
   on purpose; the leak assertion inside [solo] is the actual check. *)
let test_destroy_breaks_hint_cycle () =
  solo (fun h ->
      for i = 1 to 20 do
        D.push_right h i
      done;
      for _ = 1 to 20 do
        ignore (D.pop_right h)
      done)

let test_deferred_rc_solo () =
  List.iter
    (fun epoch ->
      solo ~rc_mode:(Env.Deferred_rc { epoch }) (fun h ->
          for i = 1 to 100 do
            D.push_left h i;
            if i mod 3 = 0 then ignore (D.pop_right h)
          done;
          let rec drain n =
            match D.pop_left h with None -> n | Some _ -> drain (n + 1)
          in
          checki "remaining elements" (100 - 33) (drain 0)))
    [ 4; 64 ]

(* --- concurrent linearizability (Wing–Gong via the Scenario engine) --- *)

let scripts =
  Scenario.
    [
      (* two pushers racing one popper at each end *)
      [
        [ Push_left 1; Push_left 2; Pop_right ];
        [ Push_right 11; Pop_left; Push_right 12 ];
        [ Pop_left; Pop_right ];
      ];
      (* pop-heavy over a preload, both ends contended *)
      [
        [ Pop_left; Pop_left; Push_left 3 ];
        [ Pop_right; Pop_right; Push_right 13 ];
      ];
      (* right-end pile-up: hint churn *)
      [
        [ Push_right 1; Push_right 2; Pop_right ];
        [ Push_right 21; Pop_right; Pop_right ];
        [ Push_right 31; Pop_right ];
      ];
    ]

let rc_modes =
  [
    ("eager", None);
    ("deferred-4", Some (Env.Deferred_rc { epoch = 4 }));
    ("deferred-64", Some (Env.Deferred_rc { epoch = 64 }));
    ("wait-free", Some (Env.Wait_free { weight = 64 }));
  ]

let sweep ~mk_strategy ~seeds () =
  List.iter
    (fun (mode, rc_mode) ->
      List.iteri
        (fun si threads ->
          for seed = 1 to seeds do
            let o =
              Scenario.run (module D) ?rc_mode ~preload:[ 101; 102 ] ~threads
                (mk_strategy seed)
            in
            if not o.Scenario.ok then
              Alcotest.failf "script %d/%s: seed %d not linearizable" si mode
                seed
          done)
        scripts)
    rc_modes

let test_random_sweep () =
  sweep ~mk_strategy:(fun seed -> Strategy.Random seed) ~seeds:12 ()

let test_pct_sweep () =
  sweep
    ~mk_strategy:(fun seed -> Strategy.Pct { seed; change_points = 3 })
    ~seeds:8 ()

(* Bounded-exhaustive exploration of the smallest contended scenario:
   every schedule within the budget, not a sample. *)
let test_explore_smallest () =
  let body, check =
    Scenario.body_and_check
      (module D)
      ~preload:[ 1 ]
      ~threads:Scenario.[ [ Pop_right ]; [ Push_left 2; Pop_left ] ]
      ()
  in
  match Lfrc_sched.Explore.check ~max_schedules:2_000 ~body ~check () with
  | Lfrc_sched.Explore.Ok _ | Lfrc_sched.Explore.Budget_exhausted _ -> ()
  | Lfrc_sched.Explore.Violation { exn; _ } ->
      Alcotest.fail (Printexc.to_string exn)

let () =
  Alcotest.run "sundell"
    [
      ( "sequential",
        [
          Alcotest.test_case "stack/queue faces" `Quick test_fifo_lifo_faces;
          Alcotest.test_case "both ends" `Quick test_both_ends_interleaved;
          Alcotest.test_case "200-value roundtrip" `Quick
            test_many_values_roundtrip;
          Alcotest.test_case "destroy breaks hint cycle" `Quick
            test_destroy_breaks_hint_cycle;
          Alcotest.test_case "deferred-rc solo" `Quick test_deferred_rc_solo;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "random sweep (4 rc modes)" `Slow
            test_random_sweep;
          Alcotest.test_case "pct sweep (4 rc modes)" `Slow test_pct_sweep;
          Alcotest.test_case "bounded-exhaustive smallest" `Slow
            test_explore_smallest;
        ] );
    ]
