(* Tests for the fault-injection subsystem: plan replay round-trips, the
   OOM graceful-degradation contract, spurious CAS/DCAS compensation, the
   livelock watchdog, deferred-queue drain after a crash, and — the
   centerpiece — an exhaustive crash sweep over every yield point of a
   full Snark push/pop cycle, each post-state judged by the audit. *)

module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Layout = Lfrc_simmem.Layout
module Lfrc = Lfrc_core.Lfrc
module Env = Lfrc_core.Env
module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module Fault_plan = Lfrc_faults.Fault_plan
module Audit = Lfrc_faults.Audit
module Chaos = Lfrc_faults.Chaos
module E11 = Lfrc_harness.E11_chaos

module Stack = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)
module Deque = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Small matrix by default so [dune runtest] stays quick; set
   LFRC_CHAOS_FULL=1 for the long soak. *)
let full_matrix = Sys.getenv_opt "LFRC_CHAOS_FULL" <> None
let matrix_seeds = if full_matrix then List.init 8 (fun i -> i + 1) else [ 1; 2 ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let fresh ?policy name =
  let heap = Heap.create ~name () in
  let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step ?policy heap in
  (env, heap)

let node = Layout.make ~name:"node" ~n_ptrs:2 ~n_vals:1

(* --- Fault_plan spec replay round-trip --- *)

let test_spec_round_trip () =
  let specs =
    [
      Fault_plan.default;
      {
        Fault_plan.seed = 42;
        cas_fail_at = [ 0; 7; 19 ];
        dcas_fail_at = [ 3 ];
        cas_fail_prob = 0.05;
        dcas_fail_prob = 0.125;
        alloc_fail_at = [ 1 ];
        alloc_fail_prob = 0.3;
        max_spurious = 17;
        crashes = [ (2, 31) ];
      };
    ]
  in
  List.iter
    (fun spec ->
      let s = Fault_plan.spec_to_string spec in
      match Fault_plan.spec_of_string s with
      | Some spec' -> checkb ("round-trip: " ^ s) true (spec = spec')
      | None -> Alcotest.failf "spec_of_string rejected %S" s)
    specs

let test_spec_of_string_rejects_garbage () =
  checkb "garbage" true (Fault_plan.spec_of_string "not a spec" = None);
  checkb "truncated" true (Fault_plan.spec_of_string "seed=3 cas@=" = None)

(* --- OOM: graceful degradation at exact allocation indices --- *)

let test_try_alloc_indexed_oom () =
  let env, heap = fresh "oom-indexed" in
  let plan =
    Fault_plan.make { Fault_plan.default with alloc_fail_at = [ 1 ] }
  in
  Fault_plan.install plan env;
  Fun.protect
    ~finally:(fun () -> Fault_plan.uninstall env)
    (fun () ->
      let p0 =
        match Lfrc.try_alloc env node with
        | Ok p -> p
        | Error `Out_of_memory -> Alcotest.fail "alloc 0 should succeed"
      in
      (match Lfrc.try_alloc env node with
      | Error `Out_of_memory -> ()
      | Ok _ -> Alcotest.fail "alloc 1 should fail");
      let p2 =
        match Lfrc.try_alloc env node with
        | Ok p -> p
        | Error `Out_of_memory -> Alcotest.fail "alloc 2 should succeed"
      in
      checki "failed alloc touched nothing" 2 (Heap.live_count heap);
      checki "plan fired once" 1 (Fault_plan.injected plan);
      Lfrc.destroy env p0;
      Lfrc.destroy env p2;
      checki "clean teardown" 0 (Heap.live_count heap))

let test_structure_try_push_oom_backs_out () =
  let env, heap = fresh "oom-stack" in
  let t = Stack.create env in
  let h = Stack.register t in
  let plan =
    (* The plan counts allocations from installation (the stack object is
       already allocated), so index 1 is the second push's node. *)
    Fault_plan.make { Fault_plan.default with alloc_fail_at = [ 1 ] }
  in
  Fault_plan.install plan env;
  Fun.protect
    ~finally:(fun () -> Fault_plan.uninstall env)
    (fun () ->
      checkb "push 1" true (Stack.try_push h 1 = Ok ());
      checkb "push 2 hits OOM" true (Stack.try_push h 2 = Error `Out_of_memory);
      checkb "push 3" true (Stack.try_push h 3 = Ok ());
      checkb "pop 3" true (Stack.pop h = Some 3);
      checkb "pop 1" true (Stack.pop h = Some 1);
      checkb "empty" true (Stack.pop h = None);
      Stack.unregister h;
      Stack.destroy t;
      checki "no leak after failed push" 0 (Heap.live_count heap))

let test_plain_push_raises_on_oom () =
  let env, _ = fresh "oom-raise" in
  let t = Stack.create env in
  let h = Stack.register t in
  let plan =
    Fault_plan.make { Fault_plan.default with alloc_fail_at = [ 0 ] }
  in
  Fault_plan.install plan env;
  Fun.protect
    ~finally:(fun () -> Fault_plan.uninstall env)
    (fun () ->
      match Stack.push h 7 with
      | () -> Alcotest.fail "push should raise Simulated_oom"
      | exception Heap.Simulated_oom -> ())

(* --- Spurious CAS/DCAS: every retry loop compensates --- *)

(* Fail the first few CAS attempts of a [store] (its retry loop is
   single-word CAS): the count effect must be exactly as if the operation
   had succeeded first try. *)
let test_spurious_cas_compensated () =
  let env, heap = fresh "spurious-store" in
  let plan =
    Fault_plan.make { Fault_plan.default with cas_fail_at = [ 0; 1; 2 ] }
  in
  let src = Lfrc.alloc env node in
  Fault_plan.install plan env;
  Fun.protect
    ~finally:(fun () -> Fault_plan.uninstall env)
    (fun () ->
      let root = Heap.root heap ~name:"r" () in
      Lfrc.store env ~dst:root src;
      checki "three spurious failures" 3 (Fault_plan.injected plan);
      checki "rc = root + local, retries compensated" 2
        (Cell.get (Heap.rc_cell heap src));
      Lfrc.store env ~dst:root Heap.null;
      Lfrc.destroy env src;
      checki "clean" 0 (Heap.live_count heap))

let chosen_faults names =
  List.filter (fun f -> List.mem (E11.fault_name f) names) E11.fault_kinds

let test_chaos_matrix_spurious_and_oom () =
  List.iter
    (fun structure ->
      List.iter
        (fun fault ->
          List.iter
            (fun seed ->
              let r = E11.run_one ~structure ~fault ~seed () in
              let label =
                Printf.sprintf "%s/%s seed=%d"
                  (E11.structure_name structure)
                  (E11.fault_name fault) seed
              in
              (match r.Chaos.status with
              | Chaos.Completed _ -> ()
              | _ -> Alcotest.failf "%s did not complete: %s" label r.Chaos.repro);
              match r.Chaos.audit with
              | Some a ->
                  checkb (label ^ " audit") true (Audit.ok a);
                  checki (label ^ " no crash => no leak") 0
                    a.Audit.leaked
              | None -> Alcotest.failf "%s: no audit" label)
            matrix_seeds)
        (chosen_faults [ "spurious"; "oom" ]))
    E11.structures

let test_chaos_matrix_crash_and_mixed () =
  List.iter
    (fun structure ->
      List.iter
        (fun fault ->
          List.iter
            (fun seed ->
              let r = E11.run_one ~structure ~fault ~seed () in
              let label =
                Printf.sprintf "%s/%s seed=%d"
                  (E11.structure_name structure)
                  (E11.fault_name fault) seed
              in
              checkb
                (label ^ " completed with clean audit (repro: " ^ r.Chaos.repro
               ^ ")")
                true (Chaos.ok r))
            matrix_seeds)
        (chosen_faults [ "crash"; "mixed" ]))
    E11.structures

(* --- Replay: same strategy + spec => identical run --- *)

let test_replay_is_deterministic () =
  let structure = List.hd E11.structures in
  let fault = List.hd (chosen_faults [ "mixed" ]) in
  let r1 = E11.run_one ~structure ~fault ~seed:5 () in
  let r2 = E11.run_one ~structure ~fault ~seed:5 () in
  checkb "same repro token" true (r1.Chaos.repro = r2.Chaos.repro);
  checki "same injected count" r1.Chaos.injected r2.Chaos.injected;
  (match (r1.Chaos.status, r2.Chaos.status) with
  | Chaos.Completed a, Chaos.Completed b ->
      checki "same step count" a.steps b.steps;
      checkb "same crash set" true (a.crashed = b.crashed)
  | _ -> Alcotest.fail "both runs should complete");
  match (r1.Chaos.audit, r2.Chaos.audit) with
  | Some a, Some b ->
      checki "same live" a.Audit.live b.Audit.live;
      checki "same leaked" a.Audit.leaked b.Audit.leaked
  | _ -> Alcotest.fail "both runs should be audited"

(* --- The acceptance sweep: crash at EVERY yield point of a full
   Snark_fixed push/pop cycle. The victim thread performs one push_right
   and one pop_left; we kill it at its n-th resume for n = 0,1,2,...
   until the crash no longer fires (the cycle finished), auditing the
   heap after every kill. --- *)

let snark_cycle_body env =
  let t = Deque.create env in
  let worker =
    Sched.spawn (fun () ->
        let h = Deque.register t in
        (match Deque.try_push_right h 42 with
        | Ok () -> ignore (Deque.pop_left h)
        | Error `Out_of_memory -> ());
        Deque.unregister h)
  in
  Sched.join [ worker ]

let test_crash_sweep_every_yield_point () =
  let strategy = Strategy.Round_robin in
  let rec sweep n covered =
    let spec = { Fault_plan.default with crashes = [ (1, n) ] } in
    let r = Chaos.run ~max_steps:100_000 ~strategy ~spec snark_cycle_body in
    match r.Chaos.status with
    | Chaos.Completed { crashed = []; _ } ->
        (* The victim finished before resume [n]: sweep is complete. *)
        covered
    | Chaos.Completed { crashed = [ 1 ]; _ } ->
        (match r.Chaos.audit with
        | Some a ->
            if not (Audit.ok a) then
              Alcotest.failf "crash at resume %d: audit failed:@ %s (repro: %s)"
                n
                (Format.asprintf "%a" Audit.pp a)
                r.Chaos.repro
        | None -> Alcotest.failf "crash at resume %d: no audit" n);
        sweep (n + 1) (covered + 1)
    | _ ->
        Alcotest.failf "crash at resume %d: unexpected outcome (repro: %s)" n
          r.Chaos.repro
  in
  let covered = sweep 0 0 in
  (* A push_right + pop_left cycle crosses many yield points; make sure
     the sweep actually exercised them rather than exiting early. *)
  checkb
    (Printf.sprintf "swept %d yield points (want >= 20)" covered)
    true (covered >= 20)

(* --- Deferred policy: the pending queue drains after a crash --- *)

let test_deferred_drains_after_crash () =
  let spec = { Fault_plan.default with crashes = [ (1, 25) ] } in
  let r =
    Chaos.run ~max_steps:200_000
      ~policy:(Env.Deferred { budget_per_op = 0 })
      ~strategy:(Strategy.Random 3) ~spec snark_cycle_body
  in
  (match r.Chaos.status with
  | Chaos.Completed { crashed = [ 1 ]; _ } -> ()
  | _ -> Alcotest.failf "expected a crashed completion (repro: %s)" r.Chaos.repro);
  checkb "audit before flush" true (Chaos.ok r);
  ignore (Lfrc.flush r.Chaos.env);
  checki "deferred queue fully drained" 0 (Env.deferred_pending r.Chaos.env);
  checkb "audit after flush" true (Audit.ok (Audit.run r.Chaos.env))

(* --- Livelock watchdog: uncompensated-by-construction failure storms
   become a replayable report instead of a hang --- *)

let test_livelock_watchdog () =
  let spec =
    {
      Fault_plan.default with
      seed = 9;
      cas_fail_prob = 1.0;
      dcas_fail_prob = 1.0;
      max_spurious = max_int;
    }
  in
  let r =
    Chaos.run ~max_steps:20_000 ~strategy:(Strategy.Random 9) ~spec
      (fun env ->
        let t = Stack.create env in
        let h = Stack.register t in
        Stack.push h 1;
        Stack.unregister h)
  in
  (match r.Chaos.status with
  | Chaos.Livelock { max_steps } -> checki "budget in report" 20_000 max_steps
  | _ -> Alcotest.fail "expected Livelock");
  (* A non-completed run still gets a best-effort audit for triage, but
     flagged advisory and never enough to make the run ok. *)
  checkb "advisory audit of a mid-operation heap" true
    (r.Chaos.audit <> None && r.Chaos.audit_advisory);
  checkb "advisory audit never makes a livelock ok" false (Chaos.ok r);
  checkb "repro has strategy" true (contains r.Chaos.repro "strategy=random:9");
  checkb "repro has budget" true (contains r.Chaos.repro "max_steps=20000");
  (* The spec half of the token parses back to the exact spec. *)
  let idx =
    let rec find i =
      if i >= String.length r.Chaos.repro then Alcotest.fail "no spec in repro"
      else if contains (String.sub r.Chaos.repro i 5) "seed=" then i
      else find (i + 1)
    in
    find 0
  in
  let tail =
    String.sub r.Chaos.repro idx (String.length r.Chaos.repro - idx)
  in
  checkb "repro spec parses back" true
    (Fault_plan.spec_of_string tail = Some spec)

(* --- Thread_failure carries a replay token (and the printer shows it) --- *)

let test_thread_failure_repro_token () =
  match
    Sched.run (Strategy.Random 42) (fun () ->
        Sched.point ();
        failwith "boom")
  with
  | _ -> Alcotest.fail "expected Thread_failure"
  | exception Sched.Thread_failure ({ tid; repro; _ } as tf) ->
      checki "failing tid" 0 tid;
      checkb "token names strategy" true (contains repro "strategy=random:42");
      checkb "token names budget" true (contains repro "max_steps=");
      let printed = Printexc.to_string (Sched.Thread_failure tf) in
      checkb "printer includes token" true (contains printed repro)

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "spec round-trip" `Quick test_spec_round_trip;
          Alcotest.test_case "spec rejects garbage" `Quick
            test_spec_of_string_rejects_garbage;
        ] );
      ( "oom",
        [
          Alcotest.test_case "try_alloc indexed" `Quick
            test_try_alloc_indexed_oom;
          Alcotest.test_case "try_push backs out" `Quick
            test_structure_try_push_oom_backs_out;
          Alcotest.test_case "plain push raises" `Quick
            test_plain_push_raises_on_oom;
        ] );
      ( "spurious",
        [
          Alcotest.test_case "store compensates" `Quick
            test_spurious_cas_compensated;
        ] );
      ( "chaos-matrix",
        [
          Alcotest.test_case "spurious+oom clean" `Slow
            test_chaos_matrix_spurious_and_oom;
          Alcotest.test_case "crash+mixed audited" `Slow
            test_chaos_matrix_crash_and_mixed;
          Alcotest.test_case "replay deterministic" `Quick
            test_replay_is_deterministic;
        ] );
      ( "crash",
        [
          Alcotest.test_case "sweep every yield point" `Slow
            test_crash_sweep_every_yield_point;
          Alcotest.test_case "deferred drains after crash" `Quick
            test_deferred_drains_after_crash;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "livelock report" `Quick test_livelock_watchdog;
          Alcotest.test_case "thread failure repro" `Quick
            test_thread_failure_repro_token;
        ] );
    ]
