(* Concurrent linearizability of the LFRC set structures (dlist-set and
   skiplist), closing the coverage gap left by test_lin_stack_queue
   (stack/queue) and test_structures (deque): randomized scheduling and
   PCT sweeps, full Wing–Gong checking against a functional set model,
   in eager, deferred-rc and wait-free modes. After the workers join, thread 0
   probes every key quiescently so lost or resurrected elements make the
   history non-linearizable. *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env
module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module History = Lfrc_linearize.History
module Scenario = Lfrc_harness.Scenario
module IntSet = Set.Make (Int)

module Dset = Lfrc_structures.Dlist_set.Make (Lfrc_core.Lfrc_ops)
module Skipset = Lfrc_structures.Skiplist.As_set (Lfrc_core.Lfrc_ops)

module Set_spec = struct
  type state = IntSet.t
  type op = Insert of int | Remove of int | Contains of int
  type res = B of bool

  let init = IntSet.empty

  let apply state = function
    | Insert v -> (IntSet.add v state, B (not (IntSet.mem v state)))
    | Remove v -> (IntSet.remove v state, B (IntSet.mem v state))
    | Contains v -> (state, B (IntSet.mem v state))

  let equal_res (B a) (B b) = a = b

  let pp_op ppf = function
    | Insert v -> Format.fprintf ppf "insert %d" v
    | Remove v -> Format.fprintf ppf "remove %d" v
    | Contains v -> Format.fprintf ppf "contains %d" v

  let pp_res ppf (B b) = Format.fprintf ppf "%b" b
end

module Set_checker = Lfrc_linearize.Checker.Make (Set_spec)

(* Keys the quiescent probe sweeps after the workers join. *)
let key_space = [ 1; 2; 3 ]

let run_set_scenario (module S : Lfrc_structures.Container_intf.SET)
    ~rc_mode ~preload ~threads strategy =
  let history = History.create () in
  let body () =
    let heap = Heap.create ~name:("lin-" ^ S.name) () in
    let env =
      Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step
      ~rc_mode heap
    in
    let t = S.create env in
    let h0 = S.register t in
    List.iter
      (fun v ->
        let r = S.insert h0 v in
        ignore
          (History.record history ~thread:0 (Set_spec.Insert v) (fun () ->
               Set_spec.B r)))
      preload;
    let tids =
      List.mapi
        (fun i ops ->
          Sched.spawn (fun () ->
              let h = S.register t in
              List.iter
                (fun op ->
                  ignore
                    (History.record history ~thread:(i + 1) op (fun () ->
                         match op with
                         | Set_spec.Insert v -> Set_spec.B (S.insert h v)
                         | Set_spec.Remove v -> Set_spec.B (S.remove h v)
                         | Set_spec.Contains v -> Set_spec.B (S.contains h v))))
                ops;
              S.unregister h))
        threads
    in
    Sched.join tids;
    (* Quiescent membership probe joins the history: a lost insert or a
       resurrected remove shows up as an impossible Contains answer. *)
    List.iter
      (fun v ->
        ignore
          (History.record history ~thread:0 (Set_spec.Contains v) (fun () ->
               Set_spec.B (S.contains h0 v))))
      key_space;
    S.unregister h0;
    S.destroy t;
    Lfrc_simmem.Report.assert_no_leaks heap
  in
  ignore (Sched.run ~max_steps:1_000_000 strategy body);
  match Set_checker.check history with
  | Set_checker.Linearizable _ -> true
  | Set_checker.Not_linearizable -> false

let scenarios =
  Set_spec.
    [
      ([ 2 ], [ [ Insert 1 ]; [ Remove 2 ]; [ Contains 2 ] ]);
      ([], [ [ Insert 1; Remove 1 ]; [ Insert 1 ]; [ Contains 1 ] ]);
      ([ 1; 3 ], [ [ Insert 2; Contains 1 ]; [ Remove 3; Insert 3 ] ]);
      ([ 1; 2 ], [ [ Remove 1; Remove 2 ]; [ Insert 1 ]; [ Remove 1 ] ]);
    ]

let modes =
  [
    ("eager", Env.Eager);
    ("deferred", Env.Deferred_rc { epoch = Scenario.deferred_rc_epoch });
    ("wait-free", Env.Wait_free { weight = Scenario.wait_free_weight });
  ]

let impls : (string * (module Lfrc_structures.Container_intf.SET)) list =
  [ ("dlist-set", (module Dset)); ("skiplist", (module Skipset)) ]

let test_randomized (name, impl) () =
  List.iter
    (fun (mode, rc_mode) ->
      List.iteri
        (fun i (preload, threads) ->
          for seed = 0 to 99 do
            if
              not
                (run_set_scenario impl ~rc_mode ~preload ~threads
                   (Strategy.Random seed))
            then
              Alcotest.failf "%s/%s scenario %d seed %d not linearizable"
                name mode i seed
          done)
        scenarios)
    modes

let test_pct (name, impl) () =
  let preload, threads = List.hd scenarios in
  List.iter
    (fun (mode, rc_mode) ->
      for seed = 0 to 299 do
        if
          not
            (run_set_scenario impl ~rc_mode ~preload ~threads
               (Strategy.Pct { seed; change_points = 3 }))
        then
          Alcotest.failf "%s/%s: PCT seed %d not linearizable" name mode seed
      done)
    modes

(* Oracle sanity: a fabricated impossible history must be rejected. *)
let test_oracle_catches_lost_insert () =
  let history = History.create () in
  ignore
    (History.record history ~thread:0 (Set_spec.Insert 5) (fun () ->
         Set_spec.B true));
  ignore
    (History.record history ~thread:1 (Set_spec.Contains 5) (fun () ->
         Set_spec.B false));
  ignore
    (History.record history ~thread:2 (Set_spec.Insert 5) (fun () ->
         Set_spec.B true));
  Alcotest.(check bool)
    "double successful insert without a remove rejected" true
    (match Set_checker.check history with
    | Set_checker.Not_linearizable -> true
    | Set_checker.Linearizable _ -> false)

let () =
  Alcotest.run "lin-sets"
    (List.map
       (fun (name, impl) ->
         ( name,
           [
             Alcotest.test_case "randomized scenarios" `Slow
               (test_randomized (name, impl));
             Alcotest.test_case "pct scenarios" `Slow (test_pct (name, impl));
           ] ))
       impls
    @ [
        ( "oracle",
          [
            Alcotest.test_case "catches lost insert" `Quick
              test_oracle_catches_lost_insert;
          ] );
      ])
