(* Tests for LFRC-San, the shadow-memory sanitizer: every seeded-bug
   fixture must be detected with a stable, replayable witness; the
   shipped catalog must come back clean under a (reduced) schedule
   budget; and the whole pipeline must be deterministic — the same seed
   and schedule matrix yields byte-identical findings. *)

module Shadow = Lfrc_sanitize.Shadow
module Strategy = Lfrc_sched.Strategy
module San = Lfrc_harness.Sanitize_run

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let run_fixture_exn name =
  match San.run_fixture name with
  | Ok o -> o
  | Error e -> Alcotest.fail e

let run_structure_exn ?schedules name =
  match
    San.run_structure ~workers:2 ~ops_per_worker:12 ?schedules name
  with
  | Ok o -> o
  | Error e -> Alcotest.fail e

(* A canonical rendering of a witness: everything that must be stable
   run-to-run (class, slot, sites, schedule token, dedup count). The
   scheduler step is included too — the runs are fully deterministic. *)
let witness_signature (w : San.witness) =
  let f = w.San.w_finding in
  let acc (a : Shadow.access) =
    Printf.sprintf "%s@%s:%d" a.Shadow.a_thread a.Shadow.a_site
      a.Shadow.a_step
  in
  Printf.sprintf "%s|%s|%s|%s|%s|%s|%d" w.San.w_schedule
    (Shadow.kind_name f.Shadow.f_kind)
    f.Shadow.f_slot
    (acc f.Shadow.f_access)
    (match f.Shadow.f_prev with Some p -> acc p | None -> "-")
    f.Shadow.f_message f.Shadow.f_count

let outcome_signature (o : San.outcome) =
  String.concat "\n" (List.map witness_signature o.San.o_witnesses)

(* --- every fixture class is detected --- *)

let test_fixture_detected name () =
  let o = run_fixture_exn name in
  checkb (name ^ " detected") true (San.fixture_detected o);
  checkb (name ^ " has a witness") true (o.San.o_witnesses <> []);
  (* every witness carries a parseable replay token *)
  List.iter
    (fun (w : San.witness) ->
      match Strategy.of_string w.San.w_schedule with
      | Some _ -> ()
      | None ->
          Alcotest.fail
            (Printf.sprintf "unparseable replay token %S" w.San.w_schedule))
    o.San.o_witnesses

(* The race witness names both racing operations. *)
let test_race_witness_names_both_ops () =
  let o = run_fixture_exn "plain-race" in
  let race =
    List.find
      (fun (w : San.witness) ->
        w.San.w_finding.Shadow.f_kind = Shadow.Race)
      o.San.o_witnesses
  in
  let f = race.San.w_finding in
  checkb "current access has a thread" true
    (f.Shadow.f_access.Shadow.a_thread <> "");
  match f.Shadow.f_prev with
  | None -> Alcotest.fail "race witness lacks the conflicting access"
  | Some prev ->
      checkb "distinct racing threads" true
        (prev.Shadow.a_tid <> f.Shadow.f_access.Shadow.a_tid)

(* The ABA fixture's finding is harmful (recycled incarnation). *)
let test_aba_witness_harmful () =
  let o = run_fixture_exn "aba-pop" in
  checkb "harmful aba counted" true (o.San.o_totals.Shadow.aba_harmful > 0);
  let aba =
    List.find
      (fun (w : San.witness) -> w.San.w_finding.Shadow.f_kind = Shadow.Aba)
      o.San.o_witnesses
  in
  checkb "aba witness has lineage" true (aba.San.w_lineage <> "")

(* --- determinism: same seed, same findings --- *)

let test_fixture_determinism () =
  List.iter
    (fun (name, _) ->
      let a = run_fixture_exn name and b = run_fixture_exn name in
      checks
        (name ^ " deterministic")
        (outcome_signature a) (outcome_signature b))
    San.fixtures

(* --- the catalog is clean under the sanitizer --- *)

(* A reduced budget keeps the suite quick; the CLI gate in CI runs the
   full default matrix. *)
let catalog_schedules = [ Strategy.Round_robin; Strategy.Random 1 ]

let test_catalog_clean () =
  List.iter
    (fun name ->
      let o = run_structure_exn ~schedules:catalog_schedules name in
      checki (name ^ ": no witnesses") 0 (List.length o.San.o_witnesses);
      checkb (name ^ ": accesses checked") true
        (o.San.o_totals.Shadow.checks > 0))
    (San.structure_names ())

let test_structure_determinism () =
  let a = run_structure_exn ~schedules:catalog_schedules "treiber"
  and b = run_structure_exn ~schedules:catalog_schedules "treiber" in
  checki "same checks count" a.San.o_totals.Shadow.checks
    b.San.o_totals.Shadow.checks;
  checki "same benign aba" a.San.o_totals.Shadow.aba
    b.San.o_totals.Shadow.aba

(* --- the runner covers the whole catalog --- *)

let test_runner_covers_catalog () =
  let catalog = Lfrc_structures.Catalog.names () in
  let covered = San.structure_names () in
  List.iter
    (fun n ->
      checkb (Printf.sprintf "driver for %s" n) true (List.mem n covered))
    catalog;
  checki "no stray drivers" (List.length catalog) (List.length covered)

let () =
  Alcotest.run "sanitize"
    [
      ( "fixtures",
        [
          Alcotest.test_case "plain-race detected" `Quick
            (test_fixture_detected "plain-race");
          Alcotest.test_case "torn-weight detected" `Quick
            (test_fixture_detected "torn-weight");
          Alcotest.test_case "use-after-retire detected" `Quick
            (test_fixture_detected "use-after-retire");
          Alcotest.test_case "aba-pop detected" `Quick
            (test_fixture_detected "aba-pop");
          Alcotest.test_case "race witness names both ops" `Quick
            test_race_witness_names_both_ops;
          Alcotest.test_case "aba witness harmful" `Quick
            test_aba_witness_harmful;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fixtures" `Quick test_fixture_determinism;
          Alcotest.test_case "treiber totals" `Quick
            test_structure_determinism;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "clean under sanitizer" `Slow
            test_catalog_clean;
          Alcotest.test_case "drivers cover catalog" `Quick
            test_runner_covers_catalog;
        ] );
    ]
