(* Tests for the observability layer: the metrics registry, the event
   tracer, and their wiring into the LFRC environment. *)

module Metrics = Lfrc_obs.Metrics
module Tracer = Lfrc_obs.Tracer
module Stats = Lfrc_util.Stats
module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Env = Lfrc_core.Env
module Lfrc = Lfrc_core.Lfrc

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let is_infix ~affix s =
  let la = String.length affix and ls = String.length s in
  let rec go i = i + la <= ls && (String.sub s i la = affix || go (i + 1)) in
  la = 0 || go 0

let close eps a b =
  Alcotest.(check bool)
    (Printf.sprintf "%.3f ~ %.3f" a b)
    true
    (Float.abs (a -. b) <= eps)

(* --- Metrics registry --- *)

let test_counter_exact () =
  let m = Metrics.create () in
  for _ = 1 to 3 do
    Metrics.incr m "a.x"
  done;
  Metrics.add m "a.x" 5;
  Metrics.incr m "b.y";
  let s = Metrics.snapshot m in
  checki "a.x" 8 (Metrics.counter_value s "a.x");
  checki "b.y" 1 (Metrics.counter_value s "b.y");
  checki "absent" 0 (Metrics.counter_value s "c.z")

let test_gauge_high_water () =
  let m = Metrics.create () in
  Metrics.set_gauge m "g" 5;
  Metrics.set_gauge m "g" 2;
  let s = Metrics.snapshot m in
  checkb "last 2, max 5" true (Metrics.gauge_value s "g" = Some (2, 5))

let test_disabled_records_nothing () =
  let m = Metrics.disabled in
  checkb "not enabled" false (Metrics.enabled m);
  Metrics.incr m "a";
  Metrics.add m "a" 10;
  Metrics.set_gauge m "g" 1;
  Metrics.observe m "h" 1.0;
  checkb "snapshot empty" true (Metrics.is_empty (Metrics.snapshot m))

let test_merge () =
  let m1 = Metrics.create () and m2 = Metrics.create () in
  Metrics.add m1 "c" 3;
  Metrics.add m2 "c" 4;
  Metrics.add m2 "only2" 1;
  Metrics.set_gauge m1 "g" 7;
  Metrics.set_gauge m2 "g" 2;
  Metrics.observe m1 "h" 1.0;
  Metrics.observe m2 "h" 3.0;
  let s = Metrics.merge (Metrics.snapshot m1) (Metrics.snapshot m2) in
  checki "counters add" 7 (Metrics.counter_value s "c");
  checki "disjoint kept" 1 (Metrics.counter_value s "only2");
  (match Metrics.gauge_value s "g" with
  | Some (_, mx) -> checki "gauge max of maxima" 7 mx
  | None -> Alcotest.fail "gauge lost");
  match List.assoc_opt "h" s.Metrics.samples with
  | Some arr -> checki "samples concatenated" 2 (Array.length arr)
  | None -> Alcotest.fail "histogram lost"

let test_quantile_sanity () =
  let xs = Array.init 101 (fun i -> Float.of_int i) in
  close 0.5 50.0 (Stats.quantile xs 0.5);
  close 1.0 99.0 (Stats.quantile xs 0.99);
  close 0.001 0.0 (Stats.quantile xs 0.0);
  close 0.001 100.0 (Stats.quantile xs 1.0);
  (* merge: pooled n and size-weighted quantiles stay in range *)
  let s1 = Stats.summarize (Array.init 50 (fun i -> Float.of_int i)) in
  let s2 = Stats.summarize (Array.init 50 (fun i -> Float.of_int (i + 50))) in
  let m = Stats.merge s1 s2 in
  checki "pooled n" 100 m.Stats.n;
  close 0.5 49.5 m.Stats.mean;
  checkb "p50 within range" true (m.Stats.p50 > 0.0 && m.Stats.p50 < 100.0)

let test_metrics_json_shape () =
  let m = Metrics.create () in
  Metrics.incr m "dcas.reads";
  Metrics.set_gauge m "heap.live" 3;
  Metrics.observe m "pause" 2.5;
  let j = Metrics.to_json (Metrics.snapshot m) in
  List.iter
    (fun frag ->
      checkb (frag ^ " present") true
        (is_infix ~affix:frag j))
    [
      "\"counters\"";
      "\"dcas.reads\":1";
      "\"gauges\"";
      "\"heap.live\"";
      "\"last\":3";
      "\"histograms\"";
      "\"p50\"";
    ]

(* --- wiring: a scripted single-threaded LFRC sequence has exact counts --- *)

let test_env_wiring_exact () =
  let layout = Layout.make ~name:"obs-node" ~n_ptrs:1 ~n_vals:0 in
  let m = Metrics.create () in
  let heap = Heap.create ~name:"obs" () in
  let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step ~metrics:m heap in
  let root = Heap.root heap ~name:"r" () in
  let p = Lfrc.alloc env layout in
  Lfrc.store_alloc env ~dst:root p;
  let dest = ref Heap.null in
  Lfrc.load env ~src:root ~dest;
  Lfrc.destroy env !dest;
  Lfrc.store env ~dst:root Heap.null;
  Heap.release_root heap root;
  let s = Metrics.snapshot m in
  checki "one alloc" 1 (Metrics.counter_value s "lfrc.alloc");
  checki "heap alloc" 1 (Metrics.counter_value s "heap.allocs");
  checki "one load" 1 (Metrics.counter_value s "lfrc.load");
  checki "one store" 1 (Metrics.counter_value s "lfrc.store");
  checki "one free" 1 (Metrics.counter_value s "lfrc.frees");
  checki "heap free" 1 (Metrics.counter_value s "heap.frees");
  (* single-threaded: no retries anywhere *)
  checki "no load retries" 0 (Metrics.counter_value s "lfrc.load_retry");
  match Metrics.gauge_value s "heap.live" with
  | Some (last, mx) ->
      checki "live back to 0" 0 last;
      checki "live peaked at 1" 1 mx
  | None -> Alcotest.fail "heap.live gauge missing"

let test_disabled_metrics_zero_cost_path () =
  (* The same sequence against the disabled registry records nothing. *)
  let layout = Layout.make ~name:"obs-node2" ~n_ptrs:1 ~n_vals:0 in
  let heap = Heap.create ~name:"obs2" () in
  let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
  let p = Lfrc.alloc env layout in
  Lfrc.destroy env p;
  checkb "default env records nothing" true
    (Metrics.is_empty (Metrics.snapshot (Env.metrics env)))

(* --- Tracer --- *)

let test_ring_wrap () =
  let t = Tracer.create ~capacity:8 in
  for i = 1 to 20 do
    Tracer.emit t ~arg:i Tracer.Instant "ev"
  done;
  let evs = Tracer.events t in
  checki "retained = capacity" 8 (List.length evs);
  checki "recorded = all" 20 (Tracer.recorded t);
  checki "dropped = excess" 12 (Tracer.dropped t);
  (* oldest first: the survivors are events 13..20 *)
  checki "oldest survivor" 13 (List.hd evs).Tracer.arg;
  checki "newest survivor" 20
    (List.nth evs 7).Tracer.arg

let test_disabled_tracer () =
  let t = Tracer.disabled in
  checkb "not enabled" false (Tracer.enabled t);
  Tracer.emit t Tracer.Begin "x";
  checki "no events" 0 (List.length (Tracer.events t));
  checki "nothing recorded" 0 (Tracer.recorded t);
  checkb "capacity<=0 is disabled" false
    (Tracer.enabled (Tracer.create ~capacity:0))

let test_chrome_json_well_formed () =
  let t = Tracer.create ~capacity:64 in
  Tracer.emit t Tracer.Begin "lfrc.load";
  Tracer.emit t Tracer.Retry "dcas.dcas_attempts";
  Tracer.emit t Tracer.End "lfrc.load";
  Tracer.emit t ~arg:42 Tracer.Free "free";
  let j = Tracer.to_chrome_json t in
  let count affix =
    let n = ref 0 in
    let la = String.length affix in
    for i = 0 to String.length j - la do
      if String.sub j i la = affix then incr n
    done;
    !n
  in
  checkb "object" true
    (String.length j > 2 && j.[0] = '{' && j.[String.length j - 1] = '}');
  checkb "traceEvents key" true
    (is_infix ~affix:"\"traceEvents\"" j);
  (* Begin+End pair into one "X" complete record; Retry and Free export
     as instants. *)
  checki "three records" 3 (count "\"ph\"");
  checki "one complete span" 1 (count "\"ph\":\"X\"");
  checki "instants" 2 (count "\"ph\":\"i\"");
  checki "balanced braces" (count "{") (count "}");
  checki "balanced brackets" (count "[") (count "]")

let test_timeline_lines () =
  let t = Tracer.create ~capacity:16 in
  Tracer.emit t Tracer.Begin "op";
  Tracer.emit t Tracer.End "op";
  let lines =
    String.split_on_char '\n' (String.trim (Tracer.to_timeline t))
  in
  (* one line per event plus the accounting footer *)
  checki "event lines + footer" 3 (List.length lines);
  let footer = List.nth lines 2 in
  checkb "footer has drop count" true
    (is_infix ~affix:"2 retained, 0 dropped" footer)

let test_orphaned_begin_degrades () =
  (* Begin A, Begin B (B's End lost), End A: B must degrade to an
     "op-open" instant and A must still pair into a complete span. *)
  let t = Tracer.create ~capacity:16 in
  Tracer.emit t Tracer.Begin "A";
  Tracer.emit t Tracer.Begin "B";
  Tracer.emit t Tracer.End "A";
  let j = Tracer.to_chrome_json t in
  let count affix =
    let n = ref 0 in
    let la = String.length affix in
    for i = 0 to String.length j - la do
      if String.sub j i la = affix then incr n
    done;
    !n
  in
  checki "A pairs into a complete span" 1 (count "\"ph\":\"X\"");
  checki "B degrades to an instant" 1 (count "\"ph\":\"i\"");
  checki "B is marked op-open" 1 (count "\"op-open\"")

(* The traced steps are exercised under the scheduler in test_harness's
   experiment runs; here we only need emit to be harmless outside one. *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter exact" `Quick test_counter_exact;
          Alcotest.test_case "gauge high-water" `Quick test_gauge_high_water;
          Alcotest.test_case "disabled" `Quick test_disabled_records_nothing;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "quantiles" `Quick test_quantile_sanity;
          Alcotest.test_case "json shape" `Quick test_metrics_json_shape;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "scripted counts exact" `Quick
            test_env_wiring_exact;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_metrics_zero_cost_path;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
          Alcotest.test_case "disabled" `Quick test_disabled_tracer;
          Alcotest.test_case "chrome json" `Quick test_chrome_json_well_formed;
          Alcotest.test_case "orphaned begin" `Quick
            test_orphaned_begin_degrades;
          Alcotest.test_case "timeline" `Quick test_timeline_lines;
        ] );
    ]
